// Property-based test suites (parameterized over RNG seeds): randomized
// cross-checks of the core invariants against brute-force reference
// implementations and against each other.
//
//   * homomorphism solver vs exhaustive assignment enumeration
//   * injective rewriting / specializations vs Proposition 6
//   * rewriting soundness+completeness vs the chase (bdd cases)
//   * chase variants (oblivious / semi-oblivious / restricted) agree
//   * valley detection vs a brute-force reading of Definition 39
//   * multiset <_lex vs the paper-literal recursive definition
//   * tournament search vs exhaustive subset enumeration

#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "base/rng.h"
#include "chase/chase.h"
#include "generators/workload.h"
#include "graph/tournament.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "multiset/multiset.h"
#include "rewriting/rewriter.h"
#include "surgery/encode_instance.h"
#include "surgery/properties.h"
#include "surgery/streamline.h"
#include "valley/valley_query.h"

namespace bddfc {
namespace {

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

// --- Homomorphism solver vs brute force -------------------------------------

// Reference: try every assignment of query variables to target terms.
bool BruteForceEntails(const Instance& target, const Cq& q) {
  std::vector<Term> vars = q.vars();
  const std::vector<Term>& domain = target.ActiveDomain();
  std::function<bool(std::size_t, Substitution*)> rec =
      [&](std::size_t i, Substitution* sigma) {
        if (i == vars.size()) {
          for (const Atom& a : q.atoms()) {
            if (!target.Contains(sigma->Apply(a))) return false;
          }
          return true;
        }
        for (Term t : domain) {
          sigma->Bind(vars[i], t);
          if (rec(i + 1, sigma)) return true;
        }
        return false;
      };
  Substitution sigma;
  return rec(0, &sigma);
}

TEST_P(SeededTest, HomSolverMatchesBruteForce) {
  Rng rng(GetParam());
  Universe u;
  RuleSet dummy = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)\n");
  for (int round = 0; round < 8; ++round) {
    Instance db = generators::RandomInstance(&u, dummy, 4, 5, &rng);
    Cq q = generators::RandomBooleanCq(&u, dummy, 3, 3, &rng);
    EXPECT_EQ(Entails(db, q), BruteForceEntails(db, q))
        << "seed " << GetParam() << " round " << round;
  }
}

// Injective check with a simpler (fully correct) reference: enumerate
// *injective* variable assignments only.
bool BruteForceInjective(const Instance& target, const Cq& q) {
  std::vector<Term> vars = q.vars();
  const std::vector<Term>& domain = target.ActiveDomain();
  std::vector<bool> used(domain.size(), false);
  // Constants occupy their own images.
  std::unordered_set<Term> rigid;
  for (const Atom& a : q.atoms()) {
    for (Term t : a.args()) {
      if (t.IsRigid()) rigid.insert(t);
    }
  }
  std::function<bool(std::size_t, Substitution*)> rec =
      [&](std::size_t i, Substitution* sigma) {
        if (i == vars.size()) {
          for (const Atom& a : q.atoms()) {
            if (!target.Contains(sigma->Apply(a))) return false;
          }
          return true;
        }
        for (std::size_t d = 0; d < domain.size(); ++d) {
          if (used[d]) continue;
          if (rigid.find(domain[d]) != rigid.end()) continue;
          used[d] = true;
          sigma->Bind(vars[i], domain[d]);
          if (rec(i + 1, sigma)) return true;
          used[d] = false;
        }
        return false;
      };
  Substitution sigma;
  return rec(0, &sigma);
}

TEST_P(SeededTest, InjectiveSolverMatchesBruteForce) {
  Rng rng(GetParam() ^ 0x9e3779b9u);
  Universe u;
  RuleSet dummy = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)\n");
  for (int round = 0; round < 8; ++round) {
    Instance db = generators::RandomInstance(&u, dummy, 5, 6, &rng);
    Cq q = generators::RandomBooleanCq(&u, dummy, 3, 3, &rng);
    EXPECT_EQ(EntailsInjectively(db, q), BruteForceInjective(db, q))
        << "seed " << GetParam() << " round " << round;
  }
}

// --- Proposition 6: specializations realize injective semantics -------------

TEST_P(SeededTest, SpecializationsRealizeProposition6) {
  Rng rng(GetParam() * 31 + 7);
  Universe u;
  RuleSet dummy = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)\n");
  for (int round = 0; round < 10; ++round) {
    Instance db = generators::RandomInstance(&u, dummy, 4, 6, &rng);
    Cq q = generators::RandomBooleanCq(&u, dummy, 3, 4, &rng);
    Ucq specs = AllSpecializations(q);
    EXPECT_EQ(Entails(db, q), EntailsInjectively(db, specs))
        << "seed " << GetParam() << " round " << round;
  }
}

// --- Rewriting vs chase ------------------------------------------------------

TEST_P(SeededTest, RewritingAgreesWithChase) {
  Rng rng(GetParam() * 131 + 3);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 3;
  spec.datalog_fraction = 0.4;
  spec.forward_existential_only = true;  // keeps rewritings well-behaved
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  UcqRewriter rewriter(rules, &u, {.max_depth = 6, .max_disjuncts = 512});

  for (int round = 0; round < 4; ++round) {
    Instance db = generators::RandomInstance(&u, rules, 4, 5, &rng);
    Cq q = generators::RandomBooleanCq(&u, rules, 2, 3, &rng);
    RewriteResult r = rewriter.Rewrite(q);
    if (!r.saturated) continue;  // not bdd for this query within bounds
    ObliviousChase chase(db, rules, {.exec = {.max_steps = 8, .max_atoms = 20000}});
    chase.Run();
    if (chase.HitBounds()) continue;
    // Saturated rewriting at depth d ⟺ witnessed within d rule
    // applications ⟹ within Ch_d; the chase either saturated or ran 8 ≥ 6
    // steps.
    EXPECT_EQ(Entails(db, r.ucq), Entails(chase.Result(), q))
        << "seed " << GetParam() << " round " << round;
  }
}

// --- Chase variants -----------------------------------------------------------

TEST_P(SeededTest, DatalogChaseVariantsProduceTheSameAtoms) {
  Rng rng(GetParam() * 17 + 1);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 3;
  spec.datalog_fraction = 1.0;  // pure Datalog: all variants saturate
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  Instance db = generators::RandomInstance(&u, rules, 4, 5, &rng);

  auto run = [&](ChaseVariant variant) {
    ObliviousChase chase(db, rules,
                         {.variant = variant,
                          .exec = {.max_steps = 32, .max_atoms = 50000}});
    chase.Run();
    EXPECT_TRUE(chase.Saturated());
    return chase.Result().size();
  };
  std::size_t oblivious = run(ChaseVariant::kOblivious);
  std::size_t semi = run(ChaseVariant::kSemiOblivious);
  std::size_t restricted = run(ChaseVariant::kRestricted);
  // Datalog rules create no nulls: all three compute the closure.
  EXPECT_EQ(oblivious, semi);
  EXPECT_EQ(oblivious, restricted);
}

TEST_P(SeededTest, ChaseVariantsHomEquivalentOnExistentialRules) {
  Rng rng(GetParam() * 23 + 5);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 2;
  spec.datalog_fraction = 0.3;
  spec.forward_existential_only = true;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  Instance db = generators::RandomInstance(&u, rules, 3, 4, &rng);

  ObliviousChase oblivious(db, rules, {.exec = {.max_steps = 4, .max_atoms = 20000}});
  oblivious.Run();
  ObliviousChase semi(db, rules,
                      {.variant = ChaseVariant::kSemiOblivious,
                       .exec = {.max_steps = 4, .max_atoms = 20000}});
  semi.Run();
  // The semi-oblivious result always maps into the oblivious one (it is a
  // subset up to null renaming); when both saturate they are equivalent.
  EXPECT_TRUE(MapsInto(semi.Result(), oblivious.Result()));
  EXPECT_LE(semi.Result().size(), oblivious.Result().size());
  if (oblivious.Saturated() && semi.Saturated()) {
    EXPECT_TRUE(MapsInto(oblivious.Result(), semi.Result()));
  }
}

// --- Valley detection vs Definition 39 ---------------------------------------

TEST_P(SeededTest, ValleyDetectionMatchesDefinition) {
  Rng rng(GetParam() * 41 + 11);
  Universe u;
  RuleSet dummy = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)\n");
  for (int round = 0; round < 12; ++round) {
    Cq boolean_q = generators::RandomBooleanCq(&u, dummy, 3, 4, &rng);
    if (boolean_q.vars().size() < 2) continue;
    Cq q(boolean_q.atoms(), {boolean_q.vars()[0], boolean_q.vars()[1]});

    // Reference: reachability closure, maximal = no strictly-greater var.
    const std::vector<Term>& vars = q.vars();
    auto index_of = [&](Term t) {
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == t) return i;
      }
      return SIZE_MAX;
    };
    std::size_t n = vars.size();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (const Atom& a : q.atoms()) {
      reach[index_of(a.arg(0))][index_of(a.arg(1))] = true;
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (reach[i][k] && reach[k][j]) reach[i][j] = true;
        }
      }
    }
    bool dag = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (reach[i][i]) dag = false;
    }
    bool ref_valley = dag;
    if (dag) {
      for (std::size_t i = 0; i < n && ref_valley; ++i) {
        bool maximal = true;
        for (std::size_t j = 0; j < n; ++j) {
          if (reach[i][j]) maximal = false;
        }
        if (maximal && vars[i] != q.answers()[0] &&
            vars[i] != q.answers()[1]) {
          ref_valley = false;
        }
      }
    }
    EXPECT_EQ(IsValleyQuery(q), ref_valley)
        << "seed " << GetParam() << " round " << round;
  }
}

// --- Multiset order vs paper-literal definition -------------------------------

// The recursive definition of Section 2.4, verbatim.
bool PaperLexLess(Multiset<int> m, Multiset<int> n) {
  if (m.Empty()) return !n.Empty();
  if (n.Empty()) return false;
  int mm = *m.Max();
  int nm = *n.Max();
  if (mm != nm) return mm < nm;
  m.Remove(mm);
  n.Remove(nm);
  return PaperLexLess(std::move(m), std::move(n));
}

TEST_P(SeededTest, LexLessMatchesPaperDefinition) {
  Rng rng(GetParam() * 71 + 13);
  for (int round = 0; round < 40; ++round) {
    Multiset<int> a;
    Multiset<int> b;
    std::size_t na = rng.Below(6);
    std::size_t nb = rng.Below(6);
    for (std::size_t i = 0; i < na; ++i) a.Add(static_cast<int>(rng.Below(4)));
    for (std::size_t i = 0; i < nb; ++i) b.Add(static_cast<int>(rng.Below(4)));
    EXPECT_EQ(LexLess(a, b), PaperLexLess(a, b))
        << "seed " << GetParam() << " round " << round;
    EXPECT_EQ(LexLess(b, a), PaperLexLess(b, a));
  }
}

// --- Tournament search vs exhaustive enumeration -------------------------------

TEST_P(SeededTest, TournamentSearchMatchesBruteForce) {
  Rng rng(GetParam() * 101 + 29);
  for (int round = 0; round < 6; ++round) {
    const int n = 7;
    Digraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.Flip(0.3)) g.AddEdge(i, j);  // loops allowed (i == j)
      }
    }
    // Brute force over all vertex subsets.
    int best = 0;
    for (int mask = 1; mask < (1 << n); ++mask) {
      std::vector<int> verts;
      for (int v = 0; v < n; ++v) {
        if (mask & (1 << v)) verts.push_back(v);
      }
      bool ok = true;
      for (std::size_t i = 0; i < verts.size() && ok; ++i) {
        for (std::size_t j = i + 1; j < verts.size(); ++j) {
          if (!g.AdjacentEitherWay(verts[i], verts[j])) {
            ok = false;
            break;
          }
        }
      }
      if (ok) best = std::max(best, static_cast<int>(verts.size()));
    }
    TournamentSearch search(&g);
    EXPECT_EQ(search.MaximumSize(), best)
        << "seed " << GetParam() << " round " << round;
    if (best >= 3) {
      EXPECT_TRUE(search.FindOfSize(3).has_value());
    }
    EXPECT_FALSE(search.FindOfSize(best + 1).has_value());
  }
}

// --- Surgeries on random rule sets ---------------------------------------------

TEST_P(SeededTest, StreamlineAlwaysYieldsDefinition21And22) {
  Rng rng(GetParam() * 211 + 17);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 4;
  spec.datalog_fraction = 0.3;
  spec.forward_existential_only = false;  // arbitrary head shapes in
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  RuleSet streamlined = surgery::Streamline(rules, &u);
  EXPECT_TRUE(surgery::IsForwardExistential(streamlined));
  EXPECT_TRUE(surgery::IsPredicateUnique(streamlined));
  // Rule count: 3 per non-Datalog rule, 1 per Datalog rule.
  std::size_t expected = 0;
  for (const Rule& r : rules) expected += r.IsDatalog() ? 1 : 3;
  EXPECT_EQ(streamlined.size(), expected);
}

TEST_P(SeededTest, StreamlineChaseEquivalenceOnRandomInputs) {
  Rng rng(GetParam() * 307 + 19);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 2;
  spec.datalog_fraction = 0.4;
  spec.forward_existential_only = true;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  Instance db = generators::RandomInstance(&u, rules, 3, 4, &rng);
  auto signature = SignatureOf(rules);
  for (PredicateId p : SignatureOf(db)) signature.insert(p);
  RuleSet streamlined = surgery::Streamline(rules, &u);

  ObliviousChase plain(db, rules, {.exec = {.max_steps = 2, .max_atoms = 20000}});
  plain.Run();
  ObliviousChase tri(db, streamlined, {.exec = {.max_steps = 6, .max_atoms = 60000}});
  tri.Run();
  if (plain.HitBounds() || tri.HitBounds()) return;  // skip heavy draws
  Instance lhs = plain.Result().Restrict(signature);
  Instance rhs = tri.Result().Restrict(signature);
  // Lemma 24 (at matching depth 3k ≥ k): the original prefix maps into
  // the dilated streamlined one.
  EXPECT_TRUE(MapsInto(lhs, rhs)) << "seed " << GetParam();
}

TEST_P(SeededTest, EncodeInstanceCorollary15OnRandomInputs) {
  Rng rng(GetParam() * 401 + 23);
  Universe u;
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 2;
  spec.datalog_fraction = 0.5;
  spec.forward_existential_only = true;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  Instance db = generators::RandomInstance(&u, rules, 3, 3, &rng);

  RuleSet encoded = surgery::EncodeInstance(rules, db, &u);
  ObliviousChase lhs_chase(surgery::FlexibleCopy(db), rules,
                           {.exec = {.max_steps = 2, .max_atoms = 20000}});
  lhs_chase.Run();
  Instance top(&u);
  ObliviousChase rhs_chase(top, encoded,
                           {.exec = {.max_steps = 3, .max_atoms = 20000}});
  rhs_chase.Run();
  if (lhs_chase.HitBounds() || rhs_chase.HitBounds()) return;
  // One extra step on the right pays for the ⊤→J trigger; the left-hand
  // prefix then maps into the right-hand one.
  EXPECT_TRUE(MapsInto(lhs_chase.Result(), rhs_chase.Result()))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace bddfc
