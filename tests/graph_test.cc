// Unit tests for the graph substrate: digraphs, tournament search, Ramsey
// machinery, chromatic number and girth.

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "graph/digraph.h"
#include "graph/ramsey.h"
#include "graph/tournament.h"
#include "graph/undirected.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

TEST(DigraphTest, EdgesAndAdjacency) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.AdjacentEitherWay(1, 0));
  EXPECT_FALSE(g.AdjacentEitherWay(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  g.AddEdge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DigraphTest, LoopsAndAcyclicity) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_FALSE(g.HasLoop());
  g.AddEdge(2, 0);
  EXPECT_FALSE(g.IsAcyclic());
  Digraph with_loop(1);
  with_loop.AddEdge(0, 0);
  EXPECT_TRUE(with_loop.HasLoop());
  EXPECT_FALSE(with_loop.IsAcyclic());
}

TEST(DigraphTest, TopologicalOrder) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  std::vector<int> order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(DigraphTest, Reachability) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.Reaches(0, 2));
  EXPECT_FALSE(g.Reaches(2, 0));
  EXPECT_FALSE(g.Reaches(0, 0));  // no cycle through 0
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.Reaches(0, 0));
}

TEST(DigraphTest, InducedSubgraph) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  Digraph sub = g.InducedSubgraph({1, 2});
  EXPECT_EQ(sub.num_vertices(), 2);
  EXPECT_TRUE(sub.HasEdge(0, 1));  // 1 -> 2 survives
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(DigraphTest, TournamentRecognition) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_FALSE(g.IsTournament());
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.IsTournament());
  // Inclusive-or: both directions allowed.
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.IsTournament());
}

TEST(DigraphTest, FromInstance) {
  Universe u;
  Instance inst = MustParseInstance(&u, "E(a,b). E(b,c). F(c,d).");
  PredicateId e = u.FindPredicate("E");
  InstanceGraph ig = GraphOfPredicate(inst, e);
  EXPECT_EQ(ig.graph.num_vertices(), 3);
  EXPECT_EQ(ig.graph.num_edges(), 2u);
  InstanceGraph all = GraphOfAllBinaryAtoms(inst);
  EXPECT_EQ(all.graph.num_vertices(), 4);
  EXPECT_EQ(all.graph.num_edges(), 3u);
}

class TournamentSearchTest : public ::testing::Test {
 protected:
  // A 4-tournament (0..3) plus two pendant vertices.
  Digraph MakeGraph() {
    Digraph g(6);
    g.AddEdge(0, 1);
    g.AddEdge(1, 2);
    g.AddEdge(2, 0);
    g.AddEdge(3, 0);
    g.AddEdge(3, 1);
    g.AddEdge(2, 3);
    g.AddEdge(4, 0);
    g.AddEdge(5, 4);
    return g;
  }
};

TEST_F(TournamentSearchTest, FindsMaximum) {
  Digraph g = MakeGraph();
  TournamentSearch search(&g);
  std::vector<int> best = search.FindMaximum();
  EXPECT_EQ(best.size(), 4u);
  EXPECT_TRUE(g.InducedSubgraph(best).IsTournament());
}

TEST_F(TournamentSearchTest, DecisionVariant) {
  Digraph g = MakeGraph();
  TournamentSearch search(&g);
  auto t3 = search.FindOfSize(3);
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(t3->size(), 3u);
  EXPECT_TRUE(g.InducedSubgraph(*t3).IsTournament());
  EXPECT_TRUE(search.FindOfSize(4).has_value());
  EXPECT_FALSE(search.FindOfSize(5).has_value());
}

TEST_F(TournamentSearchTest, EmptyAndSingleton) {
  Digraph empty(0);
  TournamentSearch s1(&empty);
  EXPECT_EQ(s1.MaximumSize(), 0);
  Digraph one(1);
  TournamentSearch s2(&one);
  EXPECT_EQ(s2.MaximumSize(), 1);
  EXPECT_TRUE(s2.FindOfSize(1).has_value());
}

TEST_F(TournamentSearchTest, LoopsDoNotHideTournaments) {
  // Regression: a self-loop on a tournament member must not make
  // Bron–Kerbosch drop it from its own pivot candidates.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(1, 1);  // loop on the middle vertex
  TournamentSearch search(&g);
  EXPECT_EQ(search.MaximumSize(), 3);
}

TEST_F(TournamentSearchTest, CompleteBidirectedGraph) {
  const int n = 8;
  Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) g.AddEdge(i, j);
    }
  }
  TournamentSearch search(&g);
  EXPECT_EQ(search.MaximumSize(), n);
}

TEST(RamseyTest, UpperBoundBaseCases) {
  EXPECT_EQ(Ramsey::UpperBound({1}), 1u);
  EXPECT_EQ(Ramsey::UpperBound({4}), 4u);
  EXPECT_EQ(Ramsey::UpperBound({1, 7}), 1u);
  EXPECT_EQ(Ramsey::UpperBound({2, 2}), 2u);
}

TEST(RamseyTest, ClassicalTwoColorBound) {
  // The recurrence gives R(3,3) ≤ 6 (tight) and R(3,4) ≤ 10; without the
  // parity refinement R(4,4) comes out as 20 (true value 18).
  EXPECT_LE(Ramsey::UpperBound({3, 3}), 6u);
  EXPECT_LE(Ramsey::UpperBound({3, 4}), 10u);
  EXPECT_LE(Ramsey::UpperBound({4, 4}), 20u);
  // Monotone in each argument.
  EXPECT_LE(Ramsey::UpperBound({3, 3}), Ramsey::UpperBound({3, 4}));
}

TEST(RamseyTest, VerifyR33AtSix) {
  // Every 2-coloring of K6 has a monochromatic triangle...
  EXPECT_TRUE(Ramsey::VerifyAllColorings(6, {3, 3}));
  // ...but K5 has a coloring without one (the pentagon/pentagram split).
  EXPECT_FALSE(Ramsey::VerifyAllColorings(5, {3, 3}));
}

TEST(RamseyTest, VerifySmallMulticolor) {
  // R(2,2,2) = 2: any coloring of one pair works.
  EXPECT_TRUE(Ramsey::VerifyAllColorings(2, {2, 2, 2}));
  // R(3,2) = 3.
  EXPECT_TRUE(Ramsey::VerifyAllColorings(3, {3, 2}));
  EXPECT_FALSE(Ramsey::VerifyAllColorings(2, {3, 2}));
}

TEST(RamseyTest, FindMonochromaticInColoredTournament) {
  // A 6-tournament with all pairs colored 0 must contain a color-0
  // triangle.
  Digraph t(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) t.AddEdge(i, j);
  }
  auto mono = Ramsey::FindMonochromatic(
      t, [](int, int) { return 0; }, 2, {3, 3});
  ASSERT_TRUE(mono.has_value());
  EXPECT_EQ(mono->color, 0);
  EXPECT_GE(mono->vertices.size(), 3u);
}

TEST(RamseyTest, FindMonochromaticRespectsColors) {
  // Color by parity of i+j; look for a monochromatic triangle in a
  // 6-tournament — guaranteed by R(3,3)=6.
  Digraph t(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) t.AddEdge(i, j);
  }
  auto coloring = [](int u, int v) { return (u + v) % 2; };
  auto mono = Ramsey::FindMonochromatic(t, coloring, 2, {3, 3});
  ASSERT_TRUE(mono.has_value());
  const auto& vs = mono->vertices;
  ASSERT_EQ(vs.size(), 3u);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      EXPECT_EQ(coloring(vs[i], vs[j]), mono->color);
    }
  }
}

TEST(RamseyTest, FindMonochromaticReturnsNulloptBelowBound) {
  // K2 with distinct colors cannot contain a mono triangle.
  Digraph t(2);
  t.AddEdge(0, 1);
  auto mono = Ramsey::FindMonochromatic(
      t, [](int, int) { return 0; }, 2, {3, 3});
  EXPECT_FALSE(mono.has_value());
}

TEST(UndirectedTest, EdgesAndGirth) {
  UndirectedGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.Girth(), UndirectedGraph::kInfiniteGirth);
  g.AddEdge(3, 0);
  EXPECT_EQ(g.Girth(), 4);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.Girth(), 3);
}

TEST(UndirectedTest, FromDigraphDropsDirectionsAndLoops) {
  Digraph d(3);
  d.AddEdge(0, 1);
  d.AddEdge(1, 0);
  d.AddEdge(2, 2);
  UndirectedGraph g = UndirectedGraph::FromDigraph(d);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(ChromaticTest, SmallGraphs) {
  // Triangle: χ = 3.
  UndirectedGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  EXPECT_EQ(ChromaticNumber::Exact(triangle), 3);
  EXPECT_GE(ChromaticNumber::GreedyUpperBound(triangle), 3);

  // Even cycle: χ = 2.
  UndirectedGraph c4(4);
  c4.AddEdge(0, 1);
  c4.AddEdge(1, 2);
  c4.AddEdge(2, 3);
  c4.AddEdge(3, 0);
  EXPECT_EQ(ChromaticNumber::Exact(c4), 2);

  // Odd cycle: χ = 3.
  UndirectedGraph c5(5);
  for (int i = 0; i < 5; ++i) c5.AddEdge(i, (i + 1) % 5);
  EXPECT_EQ(ChromaticNumber::Exact(c5), 3);

  // Empty graph: χ = 1.
  UndirectedGraph empty(4);
  EXPECT_EQ(ChromaticNumber::Exact(empty), 1);
}

TEST(ChromaticTest, CompleteGraph) {
  const int n = 7;
  UndirectedGraph kn(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) kn.AddEdge(i, j);
  }
  EXPECT_EQ(ChromaticNumber::Exact(kn), n);
}

TEST(ChromaticTest, IsColorableBoundary) {
  UndirectedGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  EXPECT_FALSE(ChromaticNumber::IsColorable(triangle, 2));
  EXPECT_TRUE(ChromaticNumber::IsColorable(triangle, 3));
}

TEST(ErdosTest, HighGirthConstructionRespectsGirth) {
  Rng rng(123);
  UndirectedGraph g = ErdosHighGirthGraph(40, 0.15, 5, &rng);
  EXPECT_GE(g.Girth(), 5);
}

TEST(ErdosTest, DenseSamplesKeepEdges) {
  Rng rng(9);
  UndirectedGraph g = ErdosHighGirthGraph(30, 0.2, 4, &rng);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_GE(g.Girth(), 4);
}

}  // namespace
}  // namespace bddfc
