// Tests for the rule reliance analysis (src/analysis/reliance.h): the
// positive-reliance and restraint edges, the SCC stratification, and the
// weak/joint acyclicity termination certificates — plus the Reasoner's
// kAuto consultation of the certificate.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "analysis/reliance.h"
#include "api/reasoner.h"
#include "chase/chase.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  RuleSet Rules(const std::string& text) {
    return MustParseRuleSet(&u_, text);
  }

  Universe u_;
};

TEST_F(AnalysisTest, PositiveRelianceChain) {
  // 0 feeds 1 feeds 2; nothing flows backwards.
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "B(x,y) -> C(x,y)\n"
      "C(x,y) -> D(x,y)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasPositive(0, 1));
  EXPECT_TRUE(g.HasPositive(1, 2));
  EXPECT_FALSE(g.HasPositive(1, 0));
  EXPECT_FALSE(g.HasPositive(2, 1));
  EXPECT_FALSE(g.HasPositive(0, 2));  // no shared predicate
  EXPECT_FALSE(g.HasPositive(0, 0));
}

TEST_F(AnalysisTest, SelfRelianceOfRecursiveRule) {
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasPositive(0, 0));
}

TEST_F(AnalysisTest, NoEdgeWithoutPredicateOverlap) {
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "C(x,y) -> D(x,y)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_EQ(g.num_positive_edges(), 0u);
}

TEST_F(AnalysisTest, RestraintOnlyTowardExistentialRules) {
  // Rule 1 invents B-atoms; rule 0 also produces B-atoms, so firing 0 can
  // satisfy a pending trigger of 1 (restraint 0 ⊸ 1). Rule 0 has no
  // existentials, so nothing restrains it.
  RuleSet rules = Rules(
      "C(x,y) -> B(x,y)\n"
      "A(x) -> B(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasRestraint(0, 1));
  EXPECT_FALSE(g.HasRestraint(1, 0));
  EXPECT_FALSE(g.HasRestraint(0, 0));
}

TEST_F(AnalysisTest, RestraintRespectsPinnedFrontier) {
  // Rule 1's head B(x,x) needs the two arguments equal; rule 0 invents
  // B(x,z) with z existential — a null can never cover the pinned frontier
  // pair (x,x) ... but piece-unification is an over-approximation that only
  // forbids unifying *answer* (frontier) variables of the query with
  // existentials of the producing rule. Here the frontier x of rule 1
  // would have to unify with rule 0's existential z, which is forbidden.
  RuleSet rules = Rules(
      "A(x) -> B(x,z)\n"
      "D(x) -> B(x,x), C(w)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_FALSE(g.HasRestraint(0, 1));
}

TEST_F(AnalysisTest, StratificationTopologicalOrder) {
  // Chain of three strata plus one disconnected recursive stratum.
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "B(x,y) -> C(x,y)\n"
      "E(x,y), E(y,z) -> E(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  Stratification s = Stratify(g);
  ASSERT_EQ(s.stratum_of.size(), 3u);
  // Every positive edge runs topologically forward.
  for (std::size_t j = 0; j < g.num_rules(); ++j) {
    for (std::size_t i : g.positive[j]) {
      EXPECT_LE(s.stratum_of[j], s.stratum_of[i]);
    }
  }
  EXPECT_LT(s.stratum_of[0], s.stratum_of[1]);
  // The TC rule is alone in its stratum and depends on nothing.
  EXPECT_TRUE(s.predecessors[s.stratum_of[2]].empty());
  EXPECT_EQ(s.strata[s.stratum_of[2]].size(), 1u);
}

TEST_F(AnalysisTest, MutuallyRecursiveRulesShareAStratum) {
  RuleSet rules = Rules(
      "A(x,y) -> B(y,x)\n"
      "B(x,y) -> A(y,x)\n");
  Stratification s = Stratify(BuildRelianceGraph(rules, &u_));
  EXPECT_EQ(s.num_strata(), 1u);
  EXPECT_EQ(s.stratum_of[0], s.stratum_of[1]);
}

TEST_F(AnalysisTest, DatalogIsWeaklyAcyclic) {
  RuleSet rules = Rules(
      "E(x,y), E(y,z) -> E(x,z)\n"
      "E(x,y) -> F(y,x)\n");
  EXPECT_TRUE(IsWeaklyAcyclic(rules));
  EXPECT_TRUE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kWeaklyAcyclic);
}

TEST_F(AnalysisTest, WeaklyAcyclicButObliviouslyDivergent) {
  // The canonical gap between the certificate and the oblivious chase:
  // P(x,y) -> ∃z P(x,z) is weakly acyclic (the existential position P#2
  // has no outgoing edge), yet the oblivious chase fires once per body
  // homomorphism and diverges. The certificate must still be granted —
  // consumers gate on the variant.
  RuleSet rules = Rules("P(x,y) -> P(x,z)\n");
  EXPECT_TRUE(IsWeaklyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kWeaklyAcyclic);

  Instance db = MustParseInstance(&u_, "P(a,b).");
  ObliviousChase oblivious(db, rules, {.exec = {.max_steps = 50}});
  oblivious.Run();
  EXPECT_FALSE(oblivious.Saturated());  // divergent under oblivious
  ObliviousChase semi(db, rules,
                      {.variant = ChaseVariant::kSemiOblivious,
                       .exec = {.max_steps = 50}});
  semi.Run();
  EXPECT_TRUE(semi.Saturated());  // terminating, as certified
}

TEST_F(AnalysisTest, ExistentialCycleHasNoCertificate) {
  // A(x,y) -> ∃z A(y,z): the special edge A#2 ⇒ A#2 closes a cycle and
  // the Ω-fixpoint feeds the existential back into itself.
  RuleSet rules = Rules("A(x,y) -> A(y,z)\n");
  EXPECT_FALSE(IsWeaklyAcyclic(rules));
  EXPECT_FALSE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kNone);
}

TEST_F(AnalysisTest, JointlyButNotWeaklyAcyclic) {
  // A(x,y), A(y,x) -> ∃z A(x,z): weak acyclicity sees the special
  // self-loop on A#2; the joint Ω-fixpoint notices that no frontier
  // variable reads *only* positions the null can reach (both x and y also
  // occur at A#1), so the existential never feeds itself.
  RuleSet rules = Rules("A(x,y), A(y,x) -> A(x,z)\n");
  EXPECT_FALSE(IsWeaklyAcyclic(rules));
  EXPECT_TRUE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules),
            TerminationCertificate::kJointlyAcyclic);
}

TEST_F(AnalysisTest, ReasonerAutoConsultsCertificateForNonOblivious) {
  // Transitivity has no finite UCQ rewriting for the edge query, so the
  // probe would fail and kAuto would fall back to materialization anyway —
  // but the weak-acyclicity certificate lets it skip the probe outright.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  options.chase.variant = ChaseVariant::kSemiOblivious;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  EXPECT_EQ(q.strategy(), AnswerStrategy::kMaterialize);
  EXPECT_EQ(reasoner.stats().auto_certified_materialize, 1u);
  EXPECT_EQ(reasoner.stats().rewrites_run, 0u);  // probe skipped
  EXPECT_EQ(reasoner.certificate(), TerminationCertificate::kWeaklyAcyclic);
  EXPECT_EQ(q.Count(), 3u);
}

TEST_F(AnalysisTest, ReasonerAutoStillProbesUnderOblivious) {
  // Same rules, oblivious variant: the certificate says nothing about the
  // oblivious chase, so kAuto must keep probing.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  EXPECT_EQ(reasoner.stats().auto_certified_materialize, 0u);
  EXPECT_GE(reasoner.stats().rewrites_run, 1u);
  EXPECT_EQ(q.Count(), 3u);
}

}  // namespace
}  // namespace bddfc
