// Tests for the rule reliance analysis (src/analysis/reliance.h): the
// positive-reliance and restraint edges, the SCC stratification, and the
// weak/joint acyclicity termination certificates — plus the Reasoner's
// kAuto consultation of the certificate.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include <algorithm>
#include <vector>

#include "analysis/program_analysis.h"
#include "analysis/reliance.h"
#include "api/reasoner.h"
#include "chase/chase.h"
#include "generators/workload.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  RuleSet Rules(const std::string& text) {
    return MustParseRuleSet(&u_, text);
  }

  Universe u_;
};

TEST_F(AnalysisTest, PositiveRelianceChain) {
  // 0 feeds 1 feeds 2; nothing flows backwards.
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "B(x,y) -> C(x,y)\n"
      "C(x,y) -> D(x,y)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasPositive(0, 1));
  EXPECT_TRUE(g.HasPositive(1, 2));
  EXPECT_FALSE(g.HasPositive(1, 0));
  EXPECT_FALSE(g.HasPositive(2, 1));
  EXPECT_FALSE(g.HasPositive(0, 2));  // no shared predicate
  EXPECT_FALSE(g.HasPositive(0, 0));
}

TEST_F(AnalysisTest, SelfRelianceOfRecursiveRule) {
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasPositive(0, 0));
}

TEST_F(AnalysisTest, NoEdgeWithoutPredicateOverlap) {
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "C(x,y) -> D(x,y)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_EQ(g.num_positive_edges(), 0u);
}

TEST_F(AnalysisTest, RestraintOnlyTowardExistentialRules) {
  // Rule 1 invents B-atoms; rule 0 also produces B-atoms, so firing 0 can
  // satisfy a pending trigger of 1 (restraint 0 ⊸ 1). Rule 0 has no
  // existentials, so nothing restrains it.
  RuleSet rules = Rules(
      "C(x,y) -> B(x,y)\n"
      "A(x) -> B(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_TRUE(g.HasRestraint(0, 1));
  EXPECT_FALSE(g.HasRestraint(1, 0));
  EXPECT_FALSE(g.HasRestraint(0, 0));
}

TEST_F(AnalysisTest, RestraintRespectsPinnedFrontier) {
  // Rule 1's head B(x,x) needs the two arguments equal; rule 0 invents
  // B(x,z) with z existential — a null can never cover the pinned frontier
  // pair (x,x) ... but piece-unification is an over-approximation that only
  // forbids unifying *answer* (frontier) variables of the query with
  // existentials of the producing rule. Here the frontier x of rule 1
  // would have to unify with rule 0's existential z, which is forbidden.
  RuleSet rules = Rules(
      "A(x) -> B(x,z)\n"
      "D(x) -> B(x,x), C(w)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  EXPECT_FALSE(g.HasRestraint(0, 1));
}

TEST_F(AnalysisTest, StratificationTopologicalOrder) {
  // Chain of three strata plus one disconnected recursive stratum.
  RuleSet rules = Rules(
      "A(x,y) -> B(x,y)\n"
      "B(x,y) -> C(x,y)\n"
      "E(x,y), E(y,z) -> E(x,z)\n");
  RelianceGraph g = BuildRelianceGraph(rules, &u_);
  Stratification s = Stratify(g);
  ASSERT_EQ(s.stratum_of.size(), 3u);
  // Every positive edge runs topologically forward.
  for (std::size_t j = 0; j < g.num_rules(); ++j) {
    for (std::size_t i : g.positive[j]) {
      EXPECT_LE(s.stratum_of[j], s.stratum_of[i]);
    }
  }
  EXPECT_LT(s.stratum_of[0], s.stratum_of[1]);
  // The TC rule is alone in its stratum and depends on nothing.
  EXPECT_TRUE(s.predecessors[s.stratum_of[2]].empty());
  EXPECT_EQ(s.strata[s.stratum_of[2]].size(), 1u);
}

TEST_F(AnalysisTest, MutuallyRecursiveRulesShareAStratum) {
  RuleSet rules = Rules(
      "A(x,y) -> B(y,x)\n"
      "B(x,y) -> A(y,x)\n");
  Stratification s = Stratify(BuildRelianceGraph(rules, &u_));
  EXPECT_EQ(s.num_strata(), 1u);
  EXPECT_EQ(s.stratum_of[0], s.stratum_of[1]);
}

TEST_F(AnalysisTest, DatalogIsWeaklyAcyclic) {
  RuleSet rules = Rules(
      "E(x,y), E(y,z) -> E(x,z)\n"
      "E(x,y) -> F(y,x)\n");
  EXPECT_TRUE(IsWeaklyAcyclic(rules));
  EXPECT_TRUE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kWeaklyAcyclic);
}

TEST_F(AnalysisTest, WeaklyAcyclicButObliviouslyDivergent) {
  // The canonical gap between the certificate and the oblivious chase:
  // P(x,y) -> ∃z P(x,z) is weakly acyclic (the existential position P#2
  // has no outgoing edge), yet the oblivious chase fires once per body
  // homomorphism and diverges. The certificate must still be granted —
  // consumers gate on the variant.
  RuleSet rules = Rules("P(x,y) -> P(x,z)\n");
  EXPECT_TRUE(IsWeaklyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kWeaklyAcyclic);

  Instance db = MustParseInstance(&u_, "P(a,b).");
  ObliviousChase oblivious(db, rules, {.exec = {.max_steps = 50}});
  oblivious.Run();
  EXPECT_FALSE(oblivious.Saturated());  // divergent under oblivious
  ObliviousChase semi(db, rules,
                      {.variant = ChaseVariant::kSemiOblivious,
                       .exec = {.max_steps = 50}});
  semi.Run();
  EXPECT_TRUE(semi.Saturated());  // terminating, as certified
}

TEST_F(AnalysisTest, ExistentialCycleHasNoCertificate) {
  // A(x,y) -> ∃z A(y,z): the special edge A#2 ⇒ A#2 closes a cycle and
  // the Ω-fixpoint feeds the existential back into itself.
  RuleSet rules = Rules("A(x,y) -> A(y,z)\n");
  EXPECT_FALSE(IsWeaklyAcyclic(rules));
  EXPECT_FALSE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules), TerminationCertificate::kNone);
}

TEST_F(AnalysisTest, JointlyButNotWeaklyAcyclic) {
  // A(x,y), A(y,x) -> ∃z A(x,z): weak acyclicity sees the special
  // self-loop on A#2; the joint Ω-fixpoint notices that no frontier
  // variable reads *only* positions the null can reach (both x and y also
  // occur at A#1), so the existential never feeds itself.
  RuleSet rules = Rules("A(x,y), A(y,x) -> A(x,z)\n");
  EXPECT_FALSE(IsWeaklyAcyclic(rules));
  EXPECT_TRUE(IsJointlyAcyclic(rules));
  EXPECT_EQ(CertifyTermination(rules),
            TerminationCertificate::kJointlyAcyclic);
}

TEST_F(AnalysisTest, ReasonerAutoConsultsCertificateForNonOblivious) {
  // Transitivity has no finite UCQ rewriting for the edge query, so the
  // probe would fail and kAuto would fall back to materialization anyway —
  // but the weak-acyclicity certificate lets it skip the probe outright.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  options.chase.variant = ChaseVariant::kSemiOblivious;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  EXPECT_EQ(q.strategy(), AnswerStrategy::kMaterialize);
  EXPECT_EQ(reasoner.stats().auto_certified_materialize, 1u);
  EXPECT_EQ(reasoner.stats().rewrites_run, 0u);  // probe skipped
  EXPECT_EQ(reasoner.certificate(), TerminationCertificate::kWeaklyAcyclic);
  EXPECT_EQ(q.Count(), 3u);
}

TEST_F(AnalysisTest, ReasonerAutoStillProbesUnderOblivious) {
  // Same rules, oblivious variant: the certificate says nothing about the
  // oblivious chase, so kAuto must keep probing.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  EXPECT_EQ(reasoner.stats().auto_certified_materialize, 0u);
  EXPECT_GE(reasoner.stats().rewrites_run, 1u);
  EXPECT_EQ(q.Count(), 3u);
}

// Class-boundary witnesses: one program per edge of the class lattice,
// asserting both the verdict and the machine-checkable witness rule.

TEST_F(AnalysisTest, GuardedButNotLinear) {
  // Two body atoms, but N(x,y,z) guards every body variable.
  RuleSet rules = Rules("E(x,y), N(x,y,z) -> H(z)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_FALSE(r.linear.holds);
  EXPECT_EQ(r.linear.witness_rule, 0u);
  EXPECT_TRUE(r.guarded.holds);
  EXPECT_TRUE(r.frontier_guarded.holds);
}

TEST_F(AnalysisTest, FrontierGuardedButNotGuarded) {
  // No atom holds {x,y,z}, but the frontier is just {y} and every atom
  // holds it.
  RuleSet rules = Rules("E(x,y), E(y,z) -> H(y)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_FALSE(r.guarded.holds);
  EXPECT_EQ(r.guarded.witness_rule, 0u);
  EXPECT_TRUE(r.frontier_guarded.holds);
}

TEST_F(AnalysisTest, StickyButNotWeaklyAcyclic) {
  // The right-recursive existential loop: linear and sticky (so FUS), but
  // P[1] feeds its own null-creating position — no acyclicity
  // certificate, so not FES. The FUS/FES gap in one rule.
  RuleSet rules = Rules("P(x,y) -> P(y,z)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_TRUE(r.linear.holds);
  EXPECT_TRUE(r.sticky.holds);
  EXPECT_FALSE(r.weakly_acyclic.holds);
  EXPECT_EQ(r.weakly_acyclic.witness_rule, 0u);
  EXPECT_FALSE(r.divergence.empty());
  EXPECT_TRUE(r.fus);
  EXPECT_FALSE(r.fes);
  EXPECT_EQ(r.certificate, TerminationCertificate::kNone);
}

TEST_F(AnalysisTest, WeaklyAcyclicButNotSticky) {
  // Transitivity: the join variable y is marked (it is dropped from the
  // head), so not sticky; Datalog, so trivially weakly acyclic.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_FALSE(r.sticky.holds);
  EXPECT_EQ(r.sticky.witness_rule, 0u);
  EXPECT_NE(r.sticky.detail.find("join"), std::string::npos);
  EXPECT_TRUE(r.weakly_acyclic.holds);
  EXPECT_TRUE(r.fes);
  EXPECT_FALSE(r.fus);
}

TEST_F(AnalysisTest, GuardedAndWeaklyStickyButNotSticky) {
  // z is a marked join variable (not sticky), but the program is Datalog:
  // every position has finite rank, so weak stickiness holds.
  RuleSet rules = Rules("G(x,y,z), E(y,z) -> H(x,y)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_TRUE(r.guarded.holds);
  EXPECT_FALSE(r.sticky.holds);
  EXPECT_EQ(r.sticky.witness_rule, 0u);
  EXPECT_TRUE(r.weakly_sticky.holds);
  EXPECT_TRUE(r.weakly_acyclic.holds);
}

TEST_F(AnalysisTest, NotEvenWeaklySticky) {
  // Transitivity plus an existential feeder: every E position has
  // infinite rank, so the marked join variable y of the transitivity rule
  // never touches a finite-rank position. Outside every class we decide.
  RuleSet rules = Rules(
      "E(x,y), E(y,z) -> E(x,z)\n"
      "E(x,y) -> E(y,w)\n");
  ProgramReport r = AnalyzeProgram(rules, u_);
  EXPECT_FALSE(r.sticky.holds);
  EXPECT_FALSE(r.weakly_sticky.holds);
  EXPECT_EQ(r.weakly_sticky.witness_rule, 0u);
  EXPECT_FALSE(r.weakly_acyclic.holds);
  EXPECT_FALSE(r.jointly_acyclic.holds);
  EXPECT_FALSE(r.fus);
  EXPECT_FALSE(r.fes);
  EXPECT_EQ(r.ClassList(), "none");
}

// Analysis-first kAuto: certified programs must spend zero probe budget.

TEST_F(AnalysisTest, AutoCertifiedFusSkipsProbeEntirely) {
  // Linear + sticky, not FES: kAuto must go straight to the full rewriter
  // (no probe, no chase) even under the oblivious variant, where the
  // chase on this program would diverge.
  RuleSet rules = Rules("P(x,y) -> P(y,z)\n");
  Instance db = MustParseInstance(&u_, "P(a,b).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- P(x,y)"));
  EXPECT_EQ(q.strategy(), AnswerStrategy::kRewrite);
  const ReasonerStats& stats = reasoner.stats();
  EXPECT_EQ(stats.auto_probes_run, 0u);
  EXPECT_EQ(stats.auto_certified_rewrite, 1u);
  EXPECT_EQ(stats.last_decision, StrategyDecision::kCertifiedFus);
  EXPECT_TRUE(stats.program_fus);
  EXPECT_FALSE(stats.program_fes);
  EXPECT_EQ(q.Count(), 1u);  // nulls are not certain answers
}

TEST_F(AnalysisTest, AutoRecordsCertifiedFesDecision) {
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  options.chase.variant = ChaseVariant::kSemiOblivious;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  const ReasonerStats& stats = reasoner.stats();
  EXPECT_EQ(stats.last_decision, StrategyDecision::kCertifiedFes);
  EXPECT_EQ(stats.auto_probes_run, 0u);
  EXPECT_FALSE(stats.program_fus);
  EXPECT_TRUE(stats.program_fes);
  EXPECT_EQ(q.Count(), 3u);
}

TEST_F(AnalysisTest, AutoStillRecordsProbeDecisionInUndecidedGap) {
  // Transitivity under the oblivious variant: FES says nothing about the
  // oblivious chase and the program is not FUS, so kAuto must probe.
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kAuto;
  Reasoner reasoner(db, rules, options);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  const ReasonerStats& stats = reasoner.stats();
  EXPECT_EQ(stats.auto_probes_run, 1u);
  EXPECT_TRUE(stats.last_decision == StrategyDecision::kProbeRewrite ||
              stats.last_decision == StrategyDecision::kProbeMaterialize);
  EXPECT_EQ(q.Count(), 3u);
}

TEST_F(AnalysisTest, ExplicitStrategyBypassesAnalysis) {
  RuleSet rules = Rules("E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kMaterialize;
  Reasoner reasoner(db, rules, options);
  (void)reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  EXPECT_EQ(reasoner.stats().last_decision, StrategyDecision::kExplicit);
  EXPECT_EQ(reasoner.stats().auto_probes_run, 0u);
}

// Differential: on the bench_strategy chain workload (linear => FUS,
// Datalog => FES) every kAuto decision path is complete, so the answers
// must match both forced strategies under both chase variants — and kAuto
// must never probe.
TEST_F(AnalysisTest, AutoMatchesForcedStrategiesOnChainWorkload) {
  const AnswerStrategy kStrategies[] = {AnswerStrategy::kMaterialize,
                                        AnswerStrategy::kRewrite,
                                        AnswerStrategy::kAuto};
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious}) {
    std::vector<std::vector<std::string>> per_strategy;
    for (AnswerStrategy strategy : kStrategies) {
      // Fresh universe per run so each strategy sees identical interning.
      Universe u;
      RuleSet rules = generators::UnaryChain(&u, 8);
      Instance db(&u);
      PredicateId u0 = u.FindPredicate("U0");
      for (int i = 0; i < 16; ++i) {
        db.AddAtom(Atom(u0, {u.InternConstant("c" + std::to_string(i))}));
      }
      ReasonerOptions options;
      options.strategy = strategy;
      options.chase.variant = variant;
      Reasoner reasoner(db, rules, options);
      PreparedQuery q = reasoner.Prepare(MustParseCq(&u, "?(x) :- U8(x)"));
      std::vector<std::string> answers;
      for (const AnswerTuple& tuple : q.All()) {
        answers.push_back(u.TermName(tuple.front()));
      }
      std::sort(answers.begin(), answers.end());
      EXPECT_EQ(answers.size(), 16u);
      if (strategy == AnswerStrategy::kAuto) {
        EXPECT_EQ(reasoner.stats().auto_probes_run, 0u);
        EXPECT_EQ(reasoner.stats().last_decision,
                  variant == ChaseVariant::kOblivious
                      ? StrategyDecision::kCertifiedFus
                      : StrategyDecision::kCertifiedFes);
      }
      per_strategy.push_back(std::move(answers));
    }
    EXPECT_EQ(per_strategy[0], per_strategy[1]);
    EXPECT_EQ(per_strategy[0], per_strategy[2]);
  }
}

}  // namespace
}  // namespace bddfc
