// Unit tests for the Section 4 rule-set surgeries: instance encoding,
// reification, streamlining, body rewriting, and the regality checkers.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "surgery/body_rewrite.h"
#include "surgery/encode_instance.h"
#include "surgery/properties.h"
#include "surgery/reify.h"
#include "surgery/streamline.h"

namespace bddfc {
namespace {

using surgery::BodyRewrite;
using surgery::CheckRegal;
using surgery::DefineRelationByUcq;
using surgery::EncodeInstance;
using surgery::FlexibleCopy;
using surgery::IsBinarySignature;
using surgery::IsForwardExistential;
using surgery::IsPredicateUnique;
using surgery::IsQuick;
using surgery::Reifier;
using surgery::Streamline;
using surgery::TopToInstanceRule;

class SurgeryTest : public ::testing::Test {
 protected:
  Universe u_;
};

// --- Section 4.1: encoding instances -------------------------------------

TEST_F(SurgeryTest, TopToInstanceRuleShape) {
  Instance j = MustParseInstance(&u_, "E(a,b). P(a).");
  Rule rule = TopToInstanceRule(j, &u_);
  EXPECT_EQ(rule.body().size(), 1u);
  EXPECT_EQ(rule.body()[0].pred(), u_.top());
  EXPECT_EQ(rule.head().size(), 2u);
  // Every head variable is existential (Definition 12's fresh renaming).
  EXPECT_EQ(rule.frontier().size(), 0u);
  EXPECT_EQ(rule.existentials().size(), 2u);
}

TEST_F(SurgeryTest, Corollary15ChaseEquivalence) {
  // Ch(J,S) ↔ Ch({⊤}, S ∪ {⊤→J}) with J read over variables.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y) -> F(x)\n");
  Instance j = MustParseInstance(&u_, "E(a,b). E(b,c).");
  RuleSet encoded = EncodeInstance(rules, j, &u_);

  Instance lhs = Chase(FlexibleCopy(j), rules, {.exec = {.max_steps = 4}});
  Instance top_only(&u_);
  // One extra step pays for the ⊤→J trigger.
  Instance rhs = Chase(top_only, encoded, {.exec = {.max_steps = 5}});
  EXPECT_TRUE(MapsInto(lhs, rhs));
  EXPECT_TRUE(MapsInto(rhs, lhs));
}

TEST_F(SurgeryTest, FlexibleCopyHasNoRigidTerms) {
  Instance j = MustParseInstance(&u_, "E(a,b).");
  Instance flexible = FlexibleCopy(j);
  for (Term t : flexible.ActiveDomain()) {
    EXPECT_FALSE(t.IsRigid());
  }
  EXPECT_EQ(flexible.size(), j.size());
}

// --- Section 4.2: reification --------------------------------------------

TEST_F(SurgeryTest, ReifyAtomsOfHighArity) {
  PredicateId r3 = u_.InternPredicate("R", 3);
  Reifier reifier(&u_);
  EXPECT_EQ(reifier.ComponentsOf(r3).size(), 3u);
  // Arity ≤ 2 predicates are untouched.
  PredicateId e = u_.InternPredicate("E", 2);
  EXPECT_TRUE(reifier.ComponentsOf(e).empty());
}

TEST_F(SurgeryTest, ComponentsOfSurvivesSymbolTableGrowth) {
  // Regression: ComponentsOf held a reference to the predicate's name while
  // interning the fresh component predicates; growing the symbol table
  // reallocated its storage and left the reference dangling
  // (heap-use-after-free under ASan). The name must survive intact.
  const std::string base(40, 'R');  // long enough to defeat SSO
  PredicateId r8 = u_.InternPredicate(base, 8);
  Reifier reifier(&u_);
  const std::vector<PredicateId>& comps = reifier.ComponentsOf(r8);
  ASSERT_EQ(comps.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const std::string want = base + "_r" + std::to_string(i + 1);
    EXPECT_EQ(u_.PredicateName(comps[i]).compare(0, want.size(), want), 0)
        << "component " << i << " named " << u_.PredicateName(comps[i]);
  }
}

TEST_F(SurgeryTest, ReifyInstancePreservesArity2) {
  Instance j = MustParseInstance(&u_, "E(a,b). R(a,b,c).");
  Reifier reifier(&u_);
  Instance reified = reifier.ReifyInstance(j);
  PredicateId e = u_.FindPredicate("E");
  EXPECT_EQ(reified.AtomsWith(e).size(), 1u);
  // R(a,b,c) became 3 binary atoms sharing one fresh witness.
  EXPECT_EQ(reified.size(), 1u + 1u + 3u);  // ⊤ + E + 3 components
}

TEST_F(SurgeryTest, ReifiedRulesAreBinary) {
  RuleSet rules = MustParseRuleSet(
      &u_, "R(x,y,z) -> S(y,z,w)\nS(x,y,z) -> E(x,y)\n");
  EXPECT_FALSE(IsBinarySignature(rules, u_));
  Reifier reifier(&u_);
  RuleSet reified = reifier.ReifyRules(rules);
  EXPECT_TRUE(IsBinarySignature(reified, u_));
  EXPECT_EQ(reified.size(), 2u);
}

TEST_F(SurgeryTest, Lemma19ChaseCommutesWithReification) {
  // Ch(reify(J), reify(S)) ↔ reify(Ch(J,S)).
  RuleSet rules = MustParseRuleSet(&u_, "R(x,y,z) -> R(y,z,w)");
  Instance j = MustParseInstance(&u_, "R(a,b,c).");
  Reifier reifier(&u_);
  RuleSet reified_rules = reifier.ReifyRules(rules);
  Instance reified_j = reifier.ReifyInstance(j);

  Instance chase_then_reify =
      reifier.ReifyInstance(Chase(j, rules, {.exec = {.max_steps = 4}}));
  Instance reify_then_chase =
      Chase(reified_j, reified_rules, {.exec = {.max_steps = 4}});
  EXPECT_TRUE(MapsInto(chase_then_reify, reify_then_chase));
  EXPECT_TRUE(MapsInto(reify_then_chase, chase_then_reify));
}

TEST_F(SurgeryTest, ProjectionRulesShape) {
  PredicateId r3 = u_.InternPredicate("R", 3);
  Reifier reifier(&u_);
  reifier.ComponentsOf(r3);
  RuleSet projections = reifier.ProjectionRules();
  ASSERT_EQ(projections.size(), 1u);
  EXPECT_EQ(projections[0].body().size(), 1u);
  EXPECT_EQ(projections[0].head().size(), 3u);
  EXPECT_EQ(projections[0].existentials().size(), 1u);
}

TEST_F(SurgeryTest, ReifyCqKeepsAnswers) {
  u_.InternPredicate("R", 3);
  Cq q = MustParseCq(&u_, "?(x) :- R(x,y,z)");
  Reifier reifier(&u_);
  Cq reified = reifier.ReifyCq(q);
  EXPECT_EQ(reified.answers().size(), 1u);
  EXPECT_EQ(reified.atoms().size(), 3u);
}

// --- Section 4.3: streamlining -------------------------------------------

TEST_F(SurgeryTest, StreamlineProducesThreeRules) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  RuleSet streamlined = Streamline(rules, &u_);
  EXPECT_EQ(streamlined.size(), 3u);
  EXPECT_TRUE(IsForwardExistential(streamlined));
  EXPECT_TRUE(IsPredicateUnique(streamlined));
  // Exactly one Datalog rule (ρ_DL).
  auto [datalog, existential] = SplitDatalog(streamlined);
  EXPECT_EQ(datalog.size(), 1u);
  EXPECT_EQ(existential.size(), 2u);
}

TEST_F(SurgeryTest, StreamlineKeepsDatalogRules) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y), E(y,z) -> E(x,z)\n"
                                   "E(x,y) -> E(y,w)\n");
  RuleSet streamlined = Streamline(rules, &u_);
  EXPECT_EQ(streamlined.size(), 4u);  // 1 untouched + 3 split
}

TEST_F(SurgeryTest, Lemma24RestrictedEquivalence) {
  // Ch(J,S)|_S ↔ Ch(J,▽(S))|_S.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  auto signature = SignatureOf(rules);
  Instance j = MustParseInstance(&u_, "E(a,b).");
  RuleSet streamlined = Streamline(rules, &u_);
  Instance plain = Chase(j, rules, {.exec = {.max_steps = 3}});
  // Lemma 48: each original step takes 3 streamlined steps.
  Instance tri = Chase(j, streamlined, {.exec = {.max_steps = 9}});
  Instance plain_restricted = plain.Restrict(signature);
  Instance tri_restricted = tri.Restrict(signature);
  EXPECT_TRUE(MapsInto(plain_restricted, tri_restricted));
  EXPECT_TRUE(MapsInto(tri_restricted, plain_restricted));
}

TEST_F(SurgeryTest, StreamlinedChaseIsSlowerByFactorThree) {
  RuleSet rules = MustParseRuleSet(&u_, "A(x) -> E(x,y), A(y)");
  RuleSet streamlined = Streamline(rules, &u_);
  Instance j = MustParseInstance(&u_, "A(a).");
  PredicateId e = u_.FindPredicate("E");
  Instance plain = Chase(j, rules, {.exec = {.max_steps = 4}});
  Instance tri_same_steps = Chase(j, streamlined, {.exec = {.max_steps = 4}});
  Instance tri_dilated = Chase(j, streamlined, {.exec = {.max_steps = 12}});
  EXPECT_LT(tri_same_steps.AtomsWith(e).size(),
            plain.AtomsWith(e).size());
  EXPECT_EQ(tri_dilated.AtomsWith(e).size(), plain.AtomsWith(e).size());
}

// --- Section 4.4: body rewriting and regality ------------------------------

TEST_F(SurgeryTest, BodyRewriteAddsShortcutRules) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> E(x,z)\n");
  auto result = BodyRewrite(rules, &u_);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.added, 0u);
  // The shortcut P(x) -> E(x,z) must now be derivable in one step.
  Instance j = MustParseInstance(&u_, "P(a).");
  PredicateId e = u_.FindPredicate("E");
  ObliviousChase chase(j, result.rules, {.exec = {.max_steps = 1}});
  chase.Run();
  EXPECT_EQ(chase.Result().AtomsWith(e).size(), 1u);
}

TEST_F(SurgeryTest, Lemma30ChaseEquivalence) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> E(x,z)\n"
                                   "E(x,y) -> F(y)\n");
  auto result = BodyRewrite(rules, &u_);
  ASSERT_TRUE(result.complete);
  Instance j = MustParseInstance(&u_, "P(a). Q(b).");
  Instance lhs = Chase(j, rules, {.exec = {.max_steps = 6}});
  Instance rhs = Chase(j, result.rules, {.exec = {.max_steps = 6}});
  EXPECT_TRUE(MapsInto(lhs, rhs));
  EXPECT_TRUE(MapsInto(rhs, lhs));
}

TEST_F(SurgeryTest, QuicknessDetection) {
  RuleSet slow = MustParseRuleSet(&u_,
                                  "P(x) -> Q(x)\n"
                                  "Q(x) -> R(x)\n");
  std::vector<Instance> tests;
  tests.push_back(MustParseInstance(&u_, "P(a)."));
  EXPECT_FALSE(IsQuick(slow, tests, {.exec = {.max_steps = 4}}));

  auto rewritten = BodyRewrite(slow, &u_);
  ASSERT_TRUE(rewritten.complete);
  EXPECT_TRUE(IsQuick(rewritten.rules, tests, {.exec = {.max_steps = 4}}));
}

TEST_F(SurgeryTest, Lemma32RewOfStreamlinedIsQuick) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  RuleSet streamlined = Streamline(rules, &u_);
  auto rewritten = BodyRewrite(streamlined, &u_, {.max_depth = 6});
  ASSERT_TRUE(rewritten.complete);
  std::vector<Instance> tests;
  tests.push_back(MustParseInstance(&u_, "E(a,b)."));
  EXPECT_TRUE(IsQuick(rewritten.rules, tests,
                      {.exec = {.max_steps = 4, .max_atoms = 100000}}));
}

TEST_F(SurgeryTest, Lemma31PreservationOfProperties) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  RuleSet streamlined = Streamline(rules, &u_);
  ASSERT_TRUE(IsForwardExistential(streamlined));
  ASSERT_TRUE(IsPredicateUnique(streamlined));
  auto rewritten = BodyRewrite(streamlined, &u_);
  EXPECT_TRUE(IsForwardExistential(rewritten.rules));
  EXPECT_TRUE(IsPredicateUnique(rewritten.rules));
}

TEST_F(SurgeryTest, FullPipelineYieldsRegalSet) {
  // Section 4 end-to-end: binary bdd rule set → streamline → body-rewrite
  // → regal.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  RuleSet streamlined = Streamline(rules, &u_);
  auto rewritten = BodyRewrite(streamlined, &u_, {.max_depth = 6});
  ASSERT_TRUE(rewritten.complete);
  std::vector<Instance> tests;
  tests.push_back(MustParseInstance(&u_, "E(a,b)."));
  Instance top(&u_);
  tests.push_back(top);
  auto report = CheckRegal(rewritten.rules, &u_, tests,
                           {.max_depth = 8},
                           {.exec = {.max_steps = 3, .max_atoms = 100000}});
  EXPECT_TRUE(report.binary_signature) << report.ToString();
  EXPECT_TRUE(report.forward_existential) << report.ToString();
  EXPECT_TRUE(report.predicate_unique) << report.ToString();
  EXPECT_TRUE(report.quick) << report.ToString();
  EXPECT_TRUE(report.ucq_rewritable) << report.ToString();
  EXPECT_TRUE(report.IsRegal());
}

TEST_F(SurgeryTest, NonForwardExistentialDetected) {
  // Backward edge in the head: E(z, x) with z existential first.
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> E(z,x)");
  EXPECT_FALSE(IsForwardExistential(rules));
}

TEST_F(SurgeryTest, NonPredicateUniqueDetected) {
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> E(x,z), E(z,w)");
  EXPECT_FALSE(IsPredicateUnique(rules));
  // Datalog rules are exempt.
  RuleSet datalog = MustParseRuleSet(&u_, "P(x), P(y) -> E(x,y), E(y,x)");
  EXPECT_TRUE(IsPredicateUnique(datalog));
}

TEST_F(SurgeryTest, DefineRelationByUcq) {
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> F(x,z)");
  PredicateId e = u_.InternPredicate("E", 2);
  Ucq definition({MustParseCq(&u_, "?(x,y) :- F(x,y)"),
                  MustParseCq(&u_, "?(x,y) :- F(y,x)")});
  RuleSet extended = DefineRelationByUcq(rules, definition, e);
  EXPECT_EQ(extended.size(), 3u);
  // Chase: F(a,n) gives both E(a,n) and E(n,a).
  Instance j = MustParseInstance(&u_, "P(a).");
  Instance result = Chase(j, extended, {.exec = {.max_steps = 3}});
  EXPECT_EQ(result.AtomsWith(e).size(), 2u);
}

}  // namespace
}  // namespace bddfc
