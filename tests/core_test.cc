// Integration tests for the core module: the empirical Property (p) probe
// and the full Theorem 1 pipeline (TournamentAnalyzer).

#include <gtest/gtest.h>

#include "core/property_p.h"
#include "core/tournament_analyzer.h"
#include "core/tournament_bound.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "surgery/encode_instance.h"

namespace bddfc {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(CoreTest, PropertyPOnBddifiedExample1) {
  // The bdd variant of Example 1: tournaments grow with the chase and the
  // loop appears almost immediately — Property (p) live.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  PropertyPReport report = CheckPropertyP(
      db, rules, e, {.chase = {.exec = {.max_steps = 3, .max_atoms = 60000}}});
  EXPECT_TRUE(report.loop_entailed);
  EXPECT_GE(report.max_tournament, 3);
  EXPECT_LE(report.first_loop_step, 2);
  EXPECT_FALSE(report.counterexample_signal);
  // The curve is monotone in tournament size.
  for (std::size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_GE(report.curve[i].max_tournament,
              report.curve[i - 1].max_tournament);
  }
}

TEST_F(CoreTest, PropertyPOnNonBddExample1) {
  // Example 1 itself (not bdd): the chase is loop-free at every finite
  // stage and its tournaments keep growing — the infinite-model escape
  // hatch that the bdd ⇒ fc conjecture is about.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  PropertyPReport report = CheckPropertyP(
      db, rules, e, {.chase = {.exec = {.max_steps = 4, .max_atoms = 60000}}});
  EXPECT_FALSE(report.loop_entailed);
  EXPECT_GE(report.max_tournament, 3);  // transitive closure of a chain
  EXPECT_FALSE(report.saturated);
}

TEST_F(CoreTest, PropertyPOnHarmlessRuleSet) {
  // A bdd set that never builds tournaments at all.
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> E(x,z)");
  Instance db = MustParseInstance(&u_, "P(a). P(b).");
  PredicateId e = u_.FindPredicate("E");
  PropertyPReport report =
      CheckPropertyP(db, rules, e, {.chase = {.exec = {.max_steps = 4}}});
  EXPECT_FALSE(report.loop_entailed);
  EXPECT_LE(report.max_tournament, 2);
  EXPECT_TRUE(report.saturated);
  EXPECT_FALSE(report.counterexample_signal);
}

TEST_F(CoreTest, CounterexampleSignalOnExplicitTournament) {
  // A rule set that materializes a fixed loop-free 4-tournament: the
  // signal (saturated, 4-tournament, no loop) fires; Theorem 1 is not
  // violated (the tournament is bounded), which is exactly what the flag
  // documents.
  RuleSet rules = MustParseRuleSet(
      &u_, "true -> E(k1,k2), E(k1,k3), E(k1,k4), E(k2,k3), E(k2,k4), "
           "E(k3,k4)");
  Instance top(&u_);
  PredicateId e = u_.FindPredicate("E");
  PropertyPReport report =
      CheckPropertyP(top, rules, e, {.chase = {.exec = {.max_steps = 4}}});
  EXPECT_TRUE(report.saturated);
  EXPECT_EQ(report.max_tournament, 4);
  EXPECT_FALSE(report.loop_entailed);
  EXPECT_TRUE(report.counterexample_signal);
}

TEST_F(CoreTest, TournamentBoundForTinyRewriting) {
  // P(x) -> E(x,z): rew(E) = {E(x,y)}; Q♦ = {E(x,y), E(x,x)} → 2 colors
  // → N(4,4) = 20 by the recurrence.
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> E(x,z)");
  PredicateId e = u_.FindPredicate("E");
  TournamentBoundResult r = TournamentSizeBound(rules, e, &u_);
  EXPECT_TRUE(r.rewriting_saturated);
  EXPECT_EQ(r.rewriting_size, 1u);
  EXPECT_EQ(r.q_inj_size, 2u);
  EXPECT_EQ(r.bound, 20u);
}

TEST_F(CoreTest, TournamentBoundUnavailableForNonBdd) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  PredicateId e = u_.FindPredicate("E");
  TournamentBoundResult r =
      TournamentSizeBound(rules, e, &u_, {.max_depth = 5});
  EXPECT_FALSE(r.rewriting_saturated);
}

TEST_F(CoreTest, TournamentBoundAstronomicalForRealisticSets) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  PredicateId e = u_.FindPredicate("E");
  TournamentBoundResult r =
      TournamentSizeBound(rules, e, &u_, {.max_depth = 8});
  EXPECT_TRUE(r.rewriting_saturated);
  EXPECT_GT(r.q_inj_size, 2u);
  EXPECT_EQ(r.bound, TournamentBoundResult::kAstronomical);
}

class AnalyzerTest : public ::testing::Test {
 protected:
  Universe u_;

  AnalyzerResult RunPipeline(const char* rules_text, AnalyzerOptions opts) {
    RuleSet rules = MustParseRuleSet(&u_, rules_text);
    PredicateId e = u_.FindPredicate("E");
    TournamentAnalyzer analyzer(rules, e, &u_, opts);
    return analyzer.Run();
  }
};

TEST_F(AnalyzerTest, FullPipelineOnBddifiedExample1) {
  // The flagship integration test: instance encoded as ⊤ → E(a0,b0), the
  // bdd-ified Example 1 rules, full Section 4 + Section 5 pipeline.
  AnalyzerOptions opts;
  opts.rewriter.max_depth = 10;
  opts.chase.exec.max_steps = 10;
  opts.chase.exec.max_atoms = 50000;
  opts.tournament_size = 4;
  AnalyzerResult result = RunPipeline(
      "true -> E(a0,b0)\n"
      "E(x,y) -> E(y,z)\n"
      "E(x,x1), E(y,y1) -> E(x,y1)\n",
      opts);
  SCOPED_TRACE(result.Summary(u_));
  EXPECT_TRUE(result.regality.IsRegal());
  EXPECT_GE(result.tournament.size(), 4u);
  EXPECT_TRUE(result.loop_in_chase);
  EXPECT_GT(result.injective_rewriting_size, 0u);
  // The pipeline should carry through Ramsey and Proposition 43 and derive
  // a loop element explicitly.
  EXPECT_TRUE(result.AllOk());
  EXPECT_TRUE(result.pipeline_loop_derived);
  EXPECT_TRUE(result.prop43.loop_term.IsValid());
}

TEST_F(AnalyzerTest, PipelineStopsGracefullyWithoutTournaments) {
  // A tame bdd set: the pipeline reports "no tournament" and stops.
  AnalyzerOptions opts;
  opts.rewriter.max_depth = 8;
  opts.chase.exec.max_steps = 4;
  AnalyzerResult result = RunPipeline(
      "true -> P(c0)\n"
      "P(x) -> E(x,z)\n",
      opts);
  SCOPED_TRACE(result.Summary(u_));
  EXPECT_FALSE(result.AllOk());
  EXPECT_TRUE(result.tournament.empty());
  EXPECT_FALSE(result.loop_in_chase);
  EXPECT_FALSE(result.pipeline_loop_derived);
  // The failing stage is the tournament search, not an earlier one.
  bool tournament_stage_failed = false;
  for (const auto& stage : result.stages) {
    if (stage.name.find("tournament search") != std::string::npos) {
      tournament_stage_failed = !stage.ok;
    }
  }
  EXPECT_TRUE(tournament_stage_failed);
}

TEST_F(AnalyzerTest, SummaryMentionsStages) {
  AnalyzerOptions opts;
  opts.rewriter.max_depth = 8;
  opts.chase.exec.max_steps = 3;
  AnalyzerResult result = RunPipeline("true -> P(c0)\nP(x) -> E(x,z)\n",
                                      opts);
  std::string summary = result.Summary(u_);
  EXPECT_NE(summary.find("streamline"), std::string::npos);
  EXPECT_NE(summary.find("regality"), std::string::npos);
}

}  // namespace
}  // namespace bddfc
