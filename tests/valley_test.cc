// Unit tests for the Section 5 machinery: the chase order, valley queries,
// witnesses, the peak-removal descent (Lemma 40), functionality (Lemma 42)
// and the Proposition 43 analyzer.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "rewriting/rewriter.h"
#include "surgery/body_rewrite.h"
#include "surgery/streamline.h"
#include "valley/chase_order.h"
#include "valley/functionality.h"
#include "valley/peak_removal.h"
#include "valley/valley_query.h"
#include "valley/statistics.h"
#include "valley/valley_tournament.h"
#include "valley/witnesses.h"

namespace bddfc {
namespace {

class ValleyTest : public ::testing::Test {
 protected:
  Universe u_;
};

// --- ChaseOrder ------------------------------------------------------------

TEST_F(ValleyTest, ChaseOrderBasics) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(b,c). F(c,d).");
  ChaseOrder order(inst);
  EXPECT_TRUE(order.IsDag());
  Term a = u_.FindConstant("a");
  Term c = u_.FindConstant("c");
  Term d = u_.FindConstant("d");
  EXPECT_TRUE(order.Less(a, c));
  EXPECT_TRUE(order.Less(a, d));  // through F as well: all binary atoms
  EXPECT_FALSE(order.Less(c, a));
  EXPECT_TRUE(order.Leq(a, a));
  EXPECT_FALSE(order.Less(a, a));
  // d is the unique sink.
  auto maximal = order.MaximalTerms();
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], d);
}

TEST_F(ValleyTest, ChaseOrderDetectsCycles) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(b,a).");
  ChaseOrder order(inst);
  EXPECT_FALSE(order.IsDag());
}

// --- Valley query recognition ------------------------------------------------

TEST_F(ValleyTest, ClassicValleyShape) {
  // x ← z → y: z below both answers; x, y the only sinks.
  Cq q = MustParseCq(&u_, "?(x,y) :- E(z,x), E(z,y)");
  ValleyAnalysis a = AnalyzeValley(q);
  EXPECT_TRUE(a.is_dag);
  EXPECT_TRUE(a.is_valley);
  EXPECT_TRUE(a.connected);
  EXPECT_EQ(a.maximal_vars.size(), 2u);
}

TEST_F(ValleyTest, PeakDisqualifies) {
  // extra sink z: not a valley.
  Cq q = MustParseCq(&u_, "?(x,y) :- E(x,z), E(x,y)");
  EXPECT_FALSE(IsValleyQuery(q));
}

TEST_F(ValleyTest, SingleMaximalAnswerIsStillValley) {
  // y → x: only x maximal; Proposition 43's second case.
  Cq q = MustParseCq(&u_, "?(x,y) :- E(y,x)");
  EXPECT_TRUE(IsValleyQuery(q));
}

TEST_F(ValleyTest, CycleDisqualifies) {
  Cq q = MustParseCq(&u_, "?(x,y) :- E(x,y), E(y,x)");
  EXPECT_FALSE(IsValleyQuery(q));
}

TEST_F(ValleyTest, DisconnectedValley) {
  // Two isolated answer variables with their own sources.
  Cq q = MustParseCq(&u_, "?(x,y) :- E(u,x), E(v,y)");
  ValleyAnalysis a = AnalyzeValley(q);
  EXPECT_TRUE(a.is_valley);
  EXPECT_FALSE(a.connected);
}

TEST_F(ValleyTest, EdgeQueryIsValley) {
  // E(x,y): y the only sink.
  Cq q = MustParseCq(&u_, "?(x,y) :- E(x,y)");
  EXPECT_TRUE(IsValleyQuery(q));
}

// --- Witnesses ---------------------------------------------------------------

TEST_F(ValleyTest, WitnessEnumeration) {
  Instance chase = MustParseInstance(&u_, "E(a,b). F(a,b).");
  Ucq q_inj({MustParseCq(&u_, "?(x,y) :- E(x,y)"),
             MustParseCq(&u_, "?(x,y) :- F(x,y)"),
             MustParseCq(&u_, "?(x,y) :- E(y,x)")});
  Term a = u_.FindConstant("a");
  Term b = u_.FindConstant("b");
  auto w = Witnesses(chase, q_inj, a, b);
  EXPECT_EQ(w, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(FirstWitness(chase, q_inj, a, b), 0u);
  EXPECT_EQ(FirstWitness(chase, q_inj, b, b), SIZE_MAX);
  auto valleys = ValleyWitnesses(chase, q_inj, a, b);
  EXPECT_EQ(valleys.size(), 2u);
}

// --- Peak removal -------------------------------------------------------------

// A regal-style pipeline fixture: the bdd-ified Example 1 with its instance
// encoded, streamlined and body-rewritten.
class PeakFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    RuleSet base = MustParseRuleSet(&u_,
                                    "true -> E(a0,b0)\n"
                                    "E(x,y) -> E(y,z)\n"
                                    "E(x,x1), E(y,y1) -> E(x,y1)\n");
    RuleSet streamlined = surgery::Streamline(base, &u_);
    auto rewritten =
        surgery::BodyRewrite(streamlined, &u_, {.max_depth = 10});
    ASSERT_TRUE(rewritten.complete);
    rules_ = rewritten.rules;
    auto [datalog, existential] = SplitDatalog(rules_);
    Instance top(&u_);
    chase_ = std::make_unique<ObliviousChase>(
        top, existential,
        ChaseOptions{.exec = {.max_steps = 6, .max_atoms = 50000}});
    chase_->Run();
    ChaseOptions dl;
    dl.exec.max_steps = 32;
    dl.variant = ChaseVariant::kRestricted;
    saturation_ = std::make_unique<ObliviousChase>(chase_->Result(), datalog,
                                                   dl);
    saturation_->Run();

    UcqRewriter rewriter(rules_, &u_, {.max_depth = 10});
    e_ = u_.FindPredicate("E");
    Cq edge = EdgeQuery(&u_, e_);
    RewriteResult rr = rewriter.Rewrite(edge);
    ASSERT_TRUE(rr.saturated);
    q_inj_ = rewriter.InjectiveRewriting(edge);
  }

  Universe u_;
  RuleSet rules_;
  std::unique_ptr<ObliviousChase> chase_;
  std::unique_ptr<ObliviousChase> saturation_;
  PredicateId e_ = 0;
  Ucq q_inj_;
};

TEST_F(PeakFixture, ChaseOfExistentialPartIsDag) {
  EXPECT_TRUE(chase_->IsDag());
}

TEST_F(PeakFixture, EveryEdgeHasAWitness) {
  // Observation 37 on a sample of saturation edges.
  int checked = 0;
  for (const Atom& a : saturation_->Result().atoms()) {
    if (a.pred() != e_ || a.arg(0) == a.arg(1)) continue;
    EXPECT_NE(FirstWitness(chase_->Result(), q_inj_, a.arg(0), a.arg(1)),
              SIZE_MAX);
    if (++checked >= 5) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(PeakFixture, MinimalStartIsImmediatelyValley) {
  // Lemma 40 read as an invariant: the lex-minimal witness is a valley.
  int checked = 0;
  PeakRemover remover(chase_.get(), &q_inj_, 16, PeakStart::kMinimal);
  for (const Atom& a : saturation_->Result().atoms()) {
    if (a.pred() != e_ || a.arg(0) == a.arg(1)) continue;
    PeakRemovalResult r = remover.Run(a.arg(0), a.arg(1));
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_EQ(r.trajectory.size(), 1u);
    EXPECT_TRUE(r.trajectory.back().is_valley);
    if (++checked >= 4) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(PeakFixture, MaximalStartDescendsToValley) {
  PeakRemover remover(chase_.get(), &q_inj_, 32, PeakStart::kMaximal);
  int checked = 0;
  std::size_t longest = 0;
  for (const Atom& a : saturation_->Result().atoms()) {
    if (a.pred() != e_ || a.arg(0) == a.arg(1)) continue;
    PeakRemovalResult r = remover.Run(a.arg(0), a.arg(1));
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_TRUE(r.strictly_decreasing);
    EXPECT_TRUE(r.trajectory.back().is_valley);
    // TS multisets strictly decrease along the trajectory.
    for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
      EXPECT_TRUE(LexLess(r.trajectory[i].timestamps,
                          r.trajectory[i - 1].timestamps));
    }
    longest = std::max(longest, r.trajectory.size());
    if (++checked >= 4) break;
  }
  EXPECT_GT(checked, 0);
}

// --- Functionality (Lemma 42) -------------------------------------------------

TEST_F(ValleyTest, FunctionalityOnForwardExistentialChase) {
  // true -> A(r); A(x) -> S(x,y), A(y): S is the successor function.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "true -> A(r)\n"
                                   "A(x) -> S(x,y), A(y)\n");
  Instance top(&u_);
  Instance chase = Chase(top, rules, {.exec = {.max_steps = 6}});
  // q(x,y) = S(y,x): y <q x, so x ↦ y is a function (the predecessor).
  Cq q = MustParseCq(&u_, "?(p,q) :- S(q,p)");
  EXPECT_TRUE(AllBelowFirstAnswer(q));
  FunctionalityReport report = CheckFunctionality(q, chase);
  EXPECT_TRUE(report.is_function);
  EXPECT_GT(report.function.size(), 2u);
}

TEST_F(ValleyTest, FunctionalityViolationDetected) {
  // A branching relation is not functional.
  Instance chase = MustParseInstance(&u_, "S(a,b). S(a,c).");
  Cq q = MustParseCq(&u_, "?(p,q) :- S(p,q)");
  FunctionalityReport report = CheckFunctionality(q, chase);
  EXPECT_FALSE(report.is_function);
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_EQ(*report.counterexample, u_.FindConstant("a"));
}

TEST_F(ValleyTest, AllBelowFirstAnswerRequiresPath) {
  Cq no_path = MustParseCq(&u_, "?(p,q) :- S(p,q)");
  EXPECT_FALSE(AllBelowFirstAnswer(no_path));  // p not below itself... q !< p
  Cq with_path = MustParseCq(&u_, "?(p,q) :- S(q,w), S(w,p)");
  EXPECT_TRUE(AllBelowFirstAnswer(with_path));
}

// --- Proposition 43 ------------------------------------------------------------

TEST_F(ValleyTest, DisconnectedCaseDerivesLoop) {
  // Valley query q(x,y) = P(u,x) ∧ Q(v,y) — disconnected. A 4-tournament
  // where every vertex satisfies both halves yields a loop.
  Instance chase = MustParseInstance(
      &u_,
      "P(u1,k1). P(u1,k2). P(u1,k3). P(u1,k4). "
      "Q(v1,k1). Q(v1,k2). Q(v1,k3). Q(v1,k4).");
  Cq valley = MustParseCq(&u_, "?(x,y) :- P(u,x), Q(v,y)");
  std::vector<Term> tournament = {
      u_.FindConstant("k1"), u_.FindConstant("k2"), u_.FindConstant("k3"),
      u_.FindConstant("k4")};
  auto edge = [](Term, Term) { return true; };
  ValleyTournamentResult r =
      AnalyzeValleyTournament(valley, chase, tournament, edge);
  EXPECT_EQ(r.valley_case, ValleyCase::kDisconnected);
  EXPECT_TRUE(r.loop_derived);
  EXPECT_TRUE(r.loop_term.IsValid());
}

TEST_F(ValleyTest, SingleMaximalCaseReportsImpossibility) {
  // q(x,y) = S(y,x) over a functional S: no 4-tournament definable.
  Instance chase = MustParseInstance(&u_, "S(a,b). S(b,c). S(c,d).");
  Cq valley = MustParseCq(&u_, "?(x,y) :- S(y,x)");
  std::vector<Term> tournament = {u_.FindConstant("a"),
                                  u_.FindConstant("b"),
                                  u_.FindConstant("c"),
                                  u_.FindConstant("d")};
  auto edge = [](Term, Term) { return true; };
  ValleyTournamentResult r =
      AnalyzeValleyTournament(valley, chase, tournament, edge);
  EXPECT_EQ(r.valley_case, ValleyCase::kSingleMaximal);
  EXPECT_TRUE(r.impossible);
  EXPECT_TRUE(r.functionality_held);
}

TEST_F(ValleyTest, TwoMaximalCaseDerivesLoopAtTriangleMiddle) {
  // q(x,y) = P(w,x) ∧ R(w,y): two maximal answers sharing the source w.
  // Craft the chase so a transitive triangle k1→k2→k3 is q-defined and the
  // middle vertex carries the loop: q(k2,k2) requires P(w,k2) ∧ R(w,k2).
  // Functionality forces one shared witness w: f_x(k1)=f_x(k2)=wa and
  // f_y(k2)=f_y(k3)=wa, exactly as the chain of equalities in the proof.
  Instance chase = MustParseInstance(
      &u_,
      "P(wa,k1). R(wa,k2). "  // edge (k1,k2)
      "R(wa,k3). "            // with P(wa,k1): edge (k1,k3)
      "P(wa,k2). ");          // with R(wa,k3): edge (k2,k3); loop at k2
  Cq valley = MustParseCq(&u_, "?(x,y) :- P(w,x), R(w,y)");
  ASSERT_TRUE(IsValleyQuery(valley));
  std::vector<Term> tournament = {u_.FindConstant("k1"),
                                  u_.FindConstant("k2"),
                                  u_.FindConstant("k3")};
  std::vector<std::pair<std::string, std::string>> edges = {
      {"k1", "k2"}, {"k1", "k3"}, {"k2", "k3"}};
  auto edge = [&](Term s, Term t) {
    for (auto& [a, b] : edges) {
      if (s == u_.FindConstant(a) && t == u_.FindConstant(b)) return true;
    }
    return false;
  };
  ValleyTournamentResult r =
      AnalyzeValleyTournament(valley, chase, tournament, edge);
  EXPECT_EQ(r.valley_case, ValleyCase::kTwoMaximal);
  EXPECT_TRUE(r.loop_derived) << r.detail;
  EXPECT_EQ(r.loop_term, u_.FindConstant("k2"));
}

TEST_F(ValleyTest, UcqValleyStatistics) {
  Ucq q({
      MustParseCq(&u_, "?(x,y) :- E(x,y)"),            // single-maximal
      MustParseCq(&u_, "?(x,y) :- E(z,x), E(z,y)"),    // two-maximal
      MustParseCq(&u_, "?(x,y) :- E(u,x), F(v,y)"),    // disconnected
      MustParseCq(&u_, "?(x,y) :- E(x,z), E(x,y)"),    // peaked
      MustParseCq(&u_, "?(x,y) :- E(x,y), E(y,x)"),    // cyclic
  });
  UcqValleyStats stats = AnalyzeUcqValleys(q);
  EXPECT_EQ(stats.total, 5u);
  EXPECT_EQ(stats.valleys, 3u);
  EXPECT_EQ(stats.single_maximal, 1u);
  EXPECT_EQ(stats.two_maximal, 1u);
  EXPECT_EQ(stats.disconnected, 1u);
  EXPECT_EQ(stats.peaked, 1u);
  EXPECT_EQ(stats.cyclic, 1u);
  EXPECT_NE(stats.ToString().find("valleys: 3"), std::string::npos);
}

TEST_F(ValleyTest, UcqValleyStatisticsNonBinaryAnswers) {
  Ucq q({MustParseCq(&u_, "?(x) :- E(x,y)")});
  UcqValleyStats stats = AnalyzeUcqValleys(q);
  EXPECT_EQ(stats.non_binary_answers, 1u);
  EXPECT_EQ(stats.valleys, 0u);
}

TEST_F(ValleyTest, NonValleyInputRejected) {
  Instance chase = MustParseInstance(&u_, "E(a,b).");
  Cq not_valley = MustParseCq(&u_, "?(x,y) :- E(x,z), E(x,y)");
  auto edge = [](Term, Term) { return true; };
  ValleyTournamentResult r = AnalyzeValleyTournament(
      not_valley, chase, {u_.FindConstant("a")}, edge);
  EXPECT_EQ(r.valley_case, ValleyCase::kNotValley);
  EXPECT_FALSE(r.loop_derived);
}

}  // namespace
}  // namespace bddfc
