// Tests for the segment-at-a-time chase engine (src/chase/segment_engine.h):
// plan-compiler unit tests over the canonical body shapes, plus the
// trigger-vs-segment differential — the ISSUE contract is saturated
// atom-set equality, but the engines are designed to be bit-identical
// (same atoms in the same order, same nulls, same provenance, same
// truncation verdicts), so the differential asserts the stronger property
// across all three chase variants, both storage backends, and serial as
// well as pooled execution.
//
// Each engine runs in its own Universe built by an identical interning
// sequence, so ids and invented nulls line up exactly and instances can be
// compared atom for atom across universes (the chase_differential_test
// idiom).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.h"
#include "chase/chase.h"
#include "chase/segment_engine.h"
#include "generators/workload.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

using Kind = SegmentJoinStep::Kind;
using Range = SegmentJoinStep::Range;

// --- Plan compiler ----------------------------------------------------------

TEST(SegmentPlanTest, SingleAtomBodyCompilesToOneDeltaScan) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "A(x,y) -> B(x)");
  SegmentRulePlan plan = CompileSegmentPlan(rules[0]);
  ASSERT_EQ(plan.anchors.size(), 1u);
  const SegmentAnchorPlan& ap = plan.anchors[0];
  EXPECT_EQ(ap.anchor, 0u);
  ASSERT_EQ(ap.steps.size(), 1u);
  EXPECT_EQ(ap.steps[0].kind, Kind::kScan);
  EXPECT_EQ(ap.steps[0].range, Range::kDelta);
  EXPECT_EQ(ap.steps[0].body_index, 0u);
  // Both positions bind new variables.
  EXPECT_EQ(ap.steps[0].outputs.size(), 2u);
  EXPECT_TRUE(ap.steps[0].const_checks.empty());
  EXPECT_TRUE(ap.steps[0].slot_checks.empty());
  EXPECT_TRUE(ap.steps[0].dup_checks.empty());
  EXPECT_EQ(ap.num_slots, 2u);
  EXPECT_EQ(ap.body_var_slots.size(), rules[0].body_vars().size());
}

TEST(SegmentPlanTest, ChainJoinCompilesToMergeJoinsPerAnchor) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "E(x,y), E(y,z) -> E(x,z)");
  SegmentRulePlan plan = CompileSegmentPlan(rules[0]);
  ASSERT_EQ(plan.anchors.size(), 2u);

  // Anchor 0: scan atom 0 in the delta, merge-join atom 1 over the full
  // range, probing position 0 (where the shared y sits in atom 1).
  {
    const SegmentAnchorPlan& ap = plan.anchors[0];
    ASSERT_EQ(ap.steps.size(), 2u);
    EXPECT_EQ(ap.steps[0].kind, Kind::kScan);
    EXPECT_EQ(ap.steps[0].range, Range::kDelta);
    EXPECT_EQ(ap.steps[0].body_index, 0u);
    EXPECT_EQ(ap.steps[1].kind, Kind::kMergeJoin);
    EXPECT_EQ(ap.steps[1].range, Range::kFull);
    EXPECT_EQ(ap.steps[1].body_index, 1u);
    EXPECT_EQ(ap.steps[1].probe_pos, 0);
    EXPECT_EQ(ap.steps[1].probe_slot, 1);  // y was slotted second
    EXPECT_EQ(ap.steps[1].outputs.size(), 1u);  // z
    EXPECT_EQ(ap.num_slots, 3u);
  }
  // Anchor 1: scan atom 1 in the delta, merge-join atom 0 over the *old*
  // prefix (atoms strictly before the delta), probing position 1.
  {
    const SegmentAnchorPlan& ap = plan.anchors[1];
    ASSERT_EQ(ap.steps.size(), 2u);
    EXPECT_EQ(ap.steps[0].kind, Kind::kScan);
    EXPECT_EQ(ap.steps[0].range, Range::kDelta);
    EXPECT_EQ(ap.steps[0].body_index, 1u);
    EXPECT_EQ(ap.steps[1].kind, Kind::kMergeJoin);
    EXPECT_EQ(ap.steps[1].range, Range::kOld);
    EXPECT_EQ(ap.steps[1].body_index, 0u);
    EXPECT_EQ(ap.steps[1].probe_pos, 1);
    EXPECT_EQ(ap.steps[1].probe_slot, 0);  // y was slotted first here
  }
}

TEST(SegmentPlanTest, DisconnectedBodyFallsBackToCrossJoin) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "A(x), B(y) -> C(x,y)");
  SegmentRulePlan plan = CompileSegmentPlan(rules[0]);
  ASSERT_EQ(plan.anchors.size(), 2u);
  const SegmentAnchorPlan& ap = plan.anchors[0];
  ASSERT_EQ(ap.steps.size(), 2u);
  EXPECT_EQ(ap.steps[0].kind, Kind::kScan);
  EXPECT_EQ(ap.steps[1].kind, Kind::kCross);
  EXPECT_EQ(ap.steps[1].range, Range::kFull);
  EXPECT_EQ(ap.num_slots, 2u);
}

TEST(SegmentPlanTest, RepeatedVariableBecomesDupCheck) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "E(x,x) -> P(x)");
  SegmentRulePlan plan = CompileSegmentPlan(rules[0]);
  ASSERT_EQ(plan.anchors.size(), 1u);
  const SegmentJoinStep& scan = plan.anchors[0].steps[0];
  ASSERT_EQ(scan.dup_checks.size(), 1u);
  EXPECT_EQ(scan.dup_checks[0].first, 1);
  EXPECT_EQ(scan.dup_checks[0].second, 0);
  EXPECT_EQ(scan.outputs.size(), 1u);
  EXPECT_EQ(plan.anchors[0].num_slots, 1u);
}

// --- Trigger-vs-segment differential ----------------------------------------

struct EngineRun {
  Universe universe;
  std::unique_ptr<ObliviousChase> chase;
};

// Builds the seed workload inside run->universe and executes the chase
// with the given engine/backend/thread configuration. The construction
// only depends on (text|spec, seed), never on the configuration, so twin
// runs intern identical ids.
void RunOnText(const std::string& rules_text, const std::string& db_text,
               ChaseOptions options, ChaseEngine engine, StorageKind storage,
               std::size_t threads, EngineRun* run) {
  RuleSet rules = MustParseRuleSet(&run->universe, rules_text);
  Instance db = MustParseInstance(&run->universe, db_text);
  options.exec.engine = engine;
  options.exec.storage = storage;
  options.exec.num_threads = threads;
  run->chase =
      std::make_unique<ObliviousChase>(db, std::move(rules), options);
  run->chase->Run();
}

void RunOnRandomWorkload(std::uint64_t seed,
                         const generators::RuleSetSpec& spec,
                         ChaseOptions options, ChaseEngine engine,
                         StorageKind storage, std::size_t threads,
                         EngineRun* run) {
  Rng rng(seed);
  RuleSet rules =
      generators::RandomBinaryRuleSet(&run->universe, spec, &rng);
  Instance db = generators::RandomInstance(&run->universe, rules,
                                           /*num_constants=*/5,
                                           /*num_atoms=*/8, &rng);
  options.exec.engine = engine;
  options.exec.storage = storage;
  options.exec.num_threads = threads;
  run->chase =
      std::make_unique<ObliviousChase>(db, std::move(rules), options);
  run->chase->Run();
}

// The full cross-check: every observable of the two runs must agree —
// including the saturation/truncation verdicts the ISSUE contract names.
void ExpectIdentical(const EngineRun& a, const EngineRun& b) {
  const ObliviousChase& x = *a.chase;
  const ObliviousChase& y = *b.chase;
  EXPECT_EQ(x.Saturated(), y.Saturated());
  EXPECT_EQ(x.HitBounds(), y.HitBounds());
  EXPECT_EQ(x.LastStepTruncated(), y.LastStepTruncated());
  ASSERT_EQ(x.StepsExecuted(), y.StepsExecuted());
  EXPECT_EQ(x.TriggersFired(), y.TriggersFired());
  for (std::size_t k = 0; k <= x.StepsExecuted(); ++k) {
    EXPECT_EQ(x.AtomCountAtStep(k), y.AtomCountAtStep(k)) << "step " << k;
  }
  ASSERT_EQ(x.Result().size(), y.Result().size());
  for (std::size_t i = 0; i < x.Result().size(); ++i) {
    ASSERT_EQ(x.Result().atoms()[i], y.Result().atoms()[i]) << "atom " << i;
    EXPECT_EQ(x.StepOfAtom(i), y.StepOfAtom(i));
    const auto& px = x.ProvenanceOf(i);
    const auto& py = y.ProvenanceOf(i);
    EXPECT_EQ(px.database, py.database);
    EXPECT_EQ(px.step, py.step);
    EXPECT_EQ(px.rule_index, py.rule_index);
    EXPECT_EQ(px.trigger.entries(), py.trigger.entries());
  }
  ASSERT_EQ(a.universe.num_nulls(), b.universe.num_nulls());
  for (Term t : x.Result().ActiveDomain()) {
    EXPECT_EQ(x.TimestampOf(t), y.TimestampOf(t));
    const ChaseTermInfo* ix = x.InfoOf(t);
    const ChaseTermInfo* iy = y.InfoOf(t);
    ASSERT_EQ(ix == nullptr, iy == nullptr);
    if (ix == nullptr) continue;
    EXPECT_EQ(ix->timestamp, iy->timestamp);
    EXPECT_EQ(ix->frontier, iy->frontier);
    EXPECT_EQ(ix->rule_index, iy->rule_index);
    EXPECT_EQ(ix->trigger.entries(), iy->trigger.entries());
  }
}

constexpr ChaseVariant kVariants[] = {ChaseVariant::kOblivious,
                                      ChaseVariant::kSemiOblivious,
                                      ChaseVariant::kRestricted};
constexpr StorageKind kBackends[] = {StorageKind::kRow, StorageKind::kColumn};
constexpr std::size_t kThreadCounts[] = {1, 4};

const char* VariantName(ChaseVariant v) {
  switch (v) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

std::string ConfigName(ChaseVariant v, StorageKind s, std::size_t threads) {
  return std::string(VariantName(v)) + " " + ToString(s) + " threads " +
         std::to_string(threads);
}

// Runs the full variant × backend × thread matrix of one text workload:
// the trigger engine (serial, row — the spec baseline) against the segment
// engine in every configuration.
void DifferentialOnText(const std::string& rules, const std::string& db,
                        ChaseOptions options) {
  for (ChaseVariant variant : kVariants) {
    options.variant = variant;
    EngineRun trigger;
    RunOnText(rules, db, options, ChaseEngine::kTrigger, StorageKind::kRow,
              /*threads=*/1, &trigger);
    for (StorageKind storage : kBackends) {
      for (std::size_t threads : kThreadCounts) {
        SCOPED_TRACE(ConfigName(variant, storage, threads));
        EngineRun segment;
        RunOnText(rules, db, options, ChaseEngine::kSegment, storage,
                  threads, &segment);
        ExpectIdentical(trigger, segment);
      }
    }
  }
}

TEST(SegmentEngineDifferentialTest, Example1AllVariants) {
  DifferentialOnText(
      "E(x,y) -> E(y,z)\n"
      "E(x,y), E(y,z) -> E(x,z)\n",
      "E(a,b).", ChaseOptions{.exec = {.max_steps = 4, .max_atoms = 20000}});
}

TEST(SegmentEngineDifferentialTest, DatalogSaturationReachesSameFixpoint) {
  // Saturating runs: both engines must agree that (and when) the chase
  // saturates, not just on bounded prefixes.
  DifferentialOnText("E(x,y), E(y,z) -> E(x,z)",
                     "E(a,b). E(b,c). E(c,d). E(d,e).",
                     ChaseOptions{.exec = {.max_steps = 64}});
}

TEST(SegmentEngineDifferentialTest, BoundedRunsAgreeOnTruncation) {
  // The atom bound cuts a step short: the canonical firing order makes the
  // truncation point well-defined, so both engines must stop at exactly
  // the same trigger.
  DifferentialOnText("E(x,y) -> E(y,z), E(x,z)", "E(a,b).",
                     ChaseOptions{.exec = {.max_steps = 100, .max_atoms = 40}});
}

TEST(SegmentEngineDifferentialTest, ConstantsAndRepeatedVariables) {
  // Constant positions compile to const_checks (and drive the indexed
  // anchor scan); repeated variables compile to dup_checks.
  DifferentialOnText(
      "E(a,y) -> E(y,a)\n"
      "E(x,x) -> P(x)\n"
      "P(x), E(x,y) -> P(y)\n",
      "E(a,b). E(b,b). E(b,c).", ChaseOptions{.exec = {.max_steps = 8}});
}

TEST(SegmentEngineDifferentialTest, DisconnectedBodies) {
  // Cross-join plan execution (atoms sharing no variable).
  DifferentialOnText("A(x), B(y) -> E(x,y)\nE(x,y), B(y) -> A(y)\n",
                     "A(a). A(b). B(c). B(d).",
                     ChaseOptions{.exec = {.max_steps = 6, .max_atoms = 5000}});
}

TEST(SegmentEngineDifferentialTest, RandomizedWorkloadsAllVariants) {
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 4;
  spec.max_body_atoms = 3;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (ChaseVariant variant : kVariants) {
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 4, .max_atoms = 4000}};
      EngineRun trigger;
      RunOnRandomWorkload(seed, spec, options, ChaseEngine::kTrigger,
                          StorageKind::kRow, /*threads=*/1, &trigger);
      for (StorageKind storage : kBackends) {
        for (std::size_t threads : kThreadCounts) {
          SCOPED_TRACE(ConfigName(variant, storage, threads) + " seed " +
                       std::to_string(seed));
          EngineRun segment;
          RunOnRandomWorkload(seed, spec, options, ChaseEngine::kSegment,
                              storage, threads, &segment);
          ExpectIdentical(trigger, segment);
        }
      }
    }
  }
}

TEST(SegmentEngineDifferentialTest, RandomizedForwardExistentialWorkloads) {
  // The forward-existential shape drives the Section 5 experiments; sweep
  // it with deeper runs.
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 3;
  spec.max_body_atoms = 2;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.25;
  spec.forward_existential_only = true;
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    for (ChaseVariant variant : kVariants) {
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 5, .max_atoms = 3000}};
      EngineRun trigger;
      RunOnRandomWorkload(seed, spec, options, ChaseEngine::kTrigger,
                          StorageKind::kRow, /*threads=*/1, &trigger);
      for (StorageKind storage : kBackends) {
        for (std::size_t threads : kThreadCounts) {
          SCOPED_TRACE(ConfigName(variant, storage, threads) + " seed " +
                       std::to_string(seed));
          EngineRun segment;
          RunOnRandomWorkload(seed, spec, options, ChaseEngine::kSegment,
                              storage, threads, &segment);
          ExpectIdentical(trigger, segment);
        }
      }
    }
  }
}

TEST(SegmentEngineDifferentialTest, NaiveEnumerationMatchesTriggerNaive) {
  // naive_enumeration degrades the segment engine to a full [0, size)
  // enumeration per step (delta_begin == 0); the fired ledger filters the
  // re-derived candidates exactly as it does for the naive trigger engine.
  const std::string rules =
      "E(x,y) -> E(y,z)\n"
      "E(x,y), E(y,z) -> E(x,z)\n";
  for (ChaseVariant variant : kVariants) {
    SCOPED_TRACE(VariantName(variant));
    ChaseOptions options{.variant = variant,
                         .exec = {.max_steps = 4, .max_atoms = 20000}};
    options.naive_enumeration = true;
    EngineRun trigger, segment;
    RunOnText(rules, "E(a,b).", options, ChaseEngine::kTrigger,
              StorageKind::kRow, /*threads=*/1, &trigger);
    RunOnText(rules, "E(a,b).", options, ChaseEngine::kSegment,
              StorageKind::kColumn, /*threads=*/1, &segment);
    ExpectIdentical(trigger, segment);
  }
}

TEST(SegmentEngineDifferentialTest, IncrementalInsertionMatchesTrigger) {
  // AddBaseFacts re-arms the delta; the segment engine's anchor plans must
  // pick up triggers enabled by the inserted facts exactly like the
  // trigger engine does.
  const std::string rules = "E(x,y), E(y,z) -> E(x,z)";
  for (ChaseEngine engine :
       {ChaseEngine::kTrigger, ChaseEngine::kSegment}) {
    SCOPED_TRACE(ToString(engine));
    EngineRun run;
    RuleSet rs = MustParseRuleSet(&run.universe, rules);
    Instance db = MustParseInstance(&run.universe, "E(a,b). E(b,c).");
    ChaseOptions options{.exec = {.max_steps = 64}};
    options.exec.engine = engine;
    run.chase = std::make_unique<ObliviousChase>(db, std::move(rs), options);
    run.chase->Run();
    ASSERT_TRUE(run.chase->Saturated());
    // Insert a fact linking into the existing chain and resume (atoms()[0]
    // of a parsed instance is the implicit ⊤ fact — take the last atom).
    const Atom fact =
        MustParseInstance(&run.universe, "E(c,d).").atoms().back();
    EXPECT_EQ(run.chase->AddBaseFacts({fact}), 1u);
    run.chase->RunSteps(run.chase->StepsExecuted() + 64);
    EXPECT_TRUE(run.chase->Saturated());
    // Saturation closure of a 3-chain: all 6 pairs.
    EXPECT_EQ(run.chase->Result().size(), 6u + 1u);  // + the top fact
  }
}

}  // namespace
}  // namespace bddfc
