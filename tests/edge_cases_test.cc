// Edge-case and failure-path coverage across modules: parser robustness,
// degenerate instances and queries, bound/limit behaviours, and the
// graceful-degradation paths of the Section 5 machinery.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/tournament_analyzer.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "rewriting/rewriter.h"
#include "valley/peak_removal.h"
#include "valley/valley_tournament.h"

namespace bddfc {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  Universe u_;
};

// --- Parser robustness --------------------------------------------------------

TEST_F(EdgeCaseTest, ParserRejectsEmptyRule) {
  ParseError error;
  EXPECT_FALSE(ParseRule(&u_, "", &error).has_value());
  EXPECT_FALSE(ParseRule(&u_, "-> E(x,y)", &error).has_value());
  EXPECT_FALSE(ParseRule(&u_, "E(x,y) ->", &error).has_value());
}

TEST_F(EdgeCaseTest, ParserRejectsDanglingTokens) {
  ParseError error;
  EXPECT_FALSE(ParseRule(&u_, "E(x,y -> E(y,x)", &error).has_value());
  EXPECT_FALSE(ParseCq(&u_, "?(x :- E(x,y)", &error).has_value());
  EXPECT_FALSE(ParseInstance(&u_, "E(a,)", &error).has_value());
}

TEST_F(EdgeCaseTest, ParserHandlesWeirdWhitespaceAndComments) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "\n\n  # leading comment\n"
                                   "E( x , y )   ->   E( y , x )\n"
                                   "% trailing\n\n");
  EXPECT_EQ(rules.size(), 1u);
}

TEST_F(EdgeCaseTest, ParserAcceptsPrimedAndUnderscoredNames) {
  Rule r = MustParseRule(&u_, "E(x',y_1) -> E(y_1,x')");
  EXPECT_EQ(r.body_vars().size(), 2u);
}

TEST_F(EdgeCaseTest, ParserErrorsCarryLineNumbers) {
  ParseError error;
  auto bad = ParseRuleSet(&u_, "E(x,y) -> E(y,x)\nE(x) -> E(x,x)\n", &error);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(error.line, 2);
}

// --- Degenerate instances/queries ----------------------------------------------

TEST_F(EdgeCaseTest, EmptyInstanceEntailsOnlyTop) {
  Instance empty(&u_);
  Cq top_query({Atom(u_.top(), {})}, {});
  EXPECT_TRUE(Entails(empty, top_query));
  u_.InternPredicate("E", 2);
  EXPECT_FALSE(Entails(empty, MustParseCq(&u_, "? :- E(x,y)")));
}

TEST_F(EdgeCaseTest, SelfLoopOnlyInstance) {
  Instance inst = MustParseInstance(&u_, "E(a,a).");
  EXPECT_TRUE(Entails(inst, MustParseCq(&u_, "? :- E(x,x)")));
  EXPECT_TRUE(Entails(inst, MustParseCq(&u_, "? :- E(x,y), E(y,z)")));
  EXPECT_FALSE(
      EntailsInjectively(inst, MustParseCq(&u_, "? :- E(x,y), E(y,z)")));
}

TEST_F(EdgeCaseTest, RepeatedAnswerBindingConflicts) {
  Instance inst = MustParseInstance(&u_, "E(a,b).");
  // The parser rejects duplicate answer variables, but the Cq value type
  // supports them; build ?(x,x) :- E(x,x) programmatically.
  Term x = u_.InternVariable("x");
  Cq q(std::vector<Atom>{Atom(u_.FindPredicate("E"), {x, x})}, {x, x});
  Term a = u_.FindConstant("a");
  Term b = u_.FindConstant("b");
  // Binding the repeated answer variable to two distinct values is
  // unsatisfiable, not a crash.
  EXPECT_FALSE(Entails(inst, q, {a, b}));
  EXPECT_FALSE(EntailsInjectively(inst, q, {a, b}));
}

TEST_F(EdgeCaseTest, FindAllRespectsLimit) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(a,c). E(a,d). E(a,e).");
  Cq q = MustParseCq(&u_, "? :- E(x,y)");
  HomSearch search(q.atoms(), &inst);
  EXPECT_EQ(search.FindAll({}, 2).size(), 2u);
  EXPECT_EQ(search.FindAll().size(), 4u);
}

TEST_F(EdgeCaseTest, SubsumptionWithConstants) {
  MustParseInstance(&u_, "E(a,a).");  // interns constant a
  Cq general = MustParseCq(&u_, "? :- E(x,y)");
  Cq with_constant = MustParseCq(&u_, "? :- E(a,y)");
  EXPECT_TRUE(Subsumes(general, with_constant));
  EXPECT_FALSE(Subsumes(with_constant, general));
}

TEST_F(EdgeCaseTest, CoreOfAlreadyMinimalQueryIsIdentity) {
  Cq q = MustParseCq(&u_, "? :- E(x,y), E(y,z), E(z,x)");
  Cq core = Core(q, &u_);
  EXPECT_EQ(core.atoms().size(), 3u);  // directed triangle is a core
}

// --- Chase bounds and degenerate rule sets -------------------------------------

TEST_F(EdgeCaseTest, ChaseWithNoApplicableRules) {
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> Q(x)");
  Instance db = MustParseInstance(&u_, "R(a).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 5}});
  chase.Run();
  EXPECT_TRUE(chase.Saturated());
  EXPECT_EQ(chase.StepsExecuted(), 0u);
  EXPECT_EQ(chase.Result().size(), db.size());
}

TEST_F(EdgeCaseTest, ChaseZeroStepBudget) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 0}});
  chase.Run();
  EXPECT_EQ(chase.StepsExecuted(), 0u);
  EXPECT_FALSE(chase.Saturated());  // nothing was attempted
  EXPECT_EQ(chase.Result().size(), db.size());
}

TEST_F(EdgeCaseTest, PrefixBeyondExecutedStepsIsFullResult) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 2}});
  chase.Run();
  EXPECT_EQ(chase.Prefix(100).size(), chase.Result().size());
}

TEST_F(EdgeCaseTest, RuleWithConstantInHead) {
  // Constants in rules are rigid: the chase emits them literally.
  MustParseInstance(&u_, "Seed(s).");  // interns constant s
  Cq probe = MustParseCq(&u_, "? :- Mark(s,y)");
  RuleSet rules;
  Term x = u_.InternVariable("x");
  Term s = u_.FindConstant("s");
  PredicateId seed = u_.FindPredicate("Seed");
  PredicateId mark = u_.InternPredicate("Mark", 2);
  rules.push_back(Rule({Atom(seed, {x})}, {Atom(mark, {s, x})}));
  Instance db = MustParseInstance(&u_, "Seed(s).");
  Instance result = Chase(db, rules, {.exec = {.max_steps = 2}});
  EXPECT_TRUE(Entails(result, probe));
}

// --- Rewriter bounds -----------------------------------------------------------

TEST_F(EdgeCaseTest, RewriterDisjunctCapReportsBounds) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  PredicateId e = u_.FindPredicate("E");
  UcqRewriter rewriter(rules, &u_,
                       {.max_depth = 20, .max_disjuncts = 2});
  RewriteResult r = rewriter.Rewrite(LoopQuery(&u_, e));
  EXPECT_TRUE(r.hit_bounds);
  EXPECT_FALSE(r.saturated);
}

TEST_F(EdgeCaseTest, RewriterAtomCapSkipsLargeQueries) {
  RuleSet rules = MustParseRuleSet(
      &u_, "A(x1,x2), A(x2,x3), A(x3,x4), A(x4,x5) -> E(x1,z)");
  UcqRewriter rewriter(rules, &u_, {.max_atoms_per_query = 2});
  RewriteResult r = rewriter.Rewrite(MustParseCq(&u_, "? :- E(u,v)"));
  // The only rewriting exceeds 2 atoms: bounds flagged, original kept.
  EXPECT_TRUE(r.hit_bounds);
  EXPECT_EQ(r.ucq.size(), 1u);
}

TEST_F(EdgeCaseTest, RewritingOfUnreachablePredicate) {
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> Q(x)");
  u_.InternPredicate("Z", 1);
  RewriteResult r =
      UcqRewriter(rules, &u_).Rewrite(MustParseCq(&u_, "? :- Z(x)"));
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.ucq.size(), 1u);  // nothing rewrites into Z
}

// --- Valley machinery failure paths ---------------------------------------------

TEST_F(EdgeCaseTest, PeakRemovalWithoutWitnessFails) {
  RuleSet rules = MustParseRuleSet(&u_, "true -> F(c0)\nF(x) -> G(x)\n");
  Instance top(&u_);
  ObliviousChase chase(top, rules, {.exec = {.max_steps = 3}});
  chase.Run();
  u_.InternPredicate("E", 2);
  Ucq q_inj({MustParseCq(&u_, "?(x,y) :- E(x,y)")});
  PeakRemover remover(&chase, &q_inj);
  Term t0 = chase.Result().ActiveDomain().empty()
                ? u_.InternConstant("zz")
                : chase.Result().ActiveDomain()[0];
  PeakRemovalResult r = remover.Run(t0, t0);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("no injective witness"),
            std::string::npos);
}

TEST_F(EdgeCaseTest, PeakRemovalDatabasePeakFails) {
  // A non-valley witness whose peak maps to a *database* term: no
  // creating trigger to splice, reported as such.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> F(x,y)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 2}});
  chase.Run();
  // Witness with a maximal existential z mapping onto database term c.
  Ucq q_inj({MustParseCq(&u_, "?(x,y) :- E(x,y), E(y,z)")});
  PeakRemover remover(&chase, &q_inj);
  Term a = u_.FindConstant("a");
  Term b = u_.FindConstant("b");
  PeakRemovalResult r = remover.Run(a, b);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("database term"), std::string::npos);
}

TEST_F(EdgeCaseTest, ValleyTournamentWithUndefinedEdges) {
  // Edges not actually defined by the valley query: the two-maximal case
  // reports failure instead of inventing a loop.
  Instance chase = MustParseInstance(&u_, "P(w,k1). R(w,k2).");
  Cq valley = MustParseCq(&u_, "?(x,y) :- P(w,x), R(w,y)");
  std::vector<Term> tournament = {u_.FindConstant("k1"),
                                  u_.FindConstant("k2")};
  auto no_edges = [](Term, Term) { return false; };
  ValleyTournamentResult r =
      AnalyzeValleyTournament(valley, chase, tournament, no_edges);
  EXPECT_FALSE(r.loop_derived);
}

// --- Analyzer degradation ---------------------------------------------------

TEST_F(EdgeCaseTest, AnalyzerOnNonBddSetFailsAtRegality) {
  // Example 1 (not bdd): body rewriting cannot complete; the analyzer
  // stops early with an audit trail instead of crashing.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "true -> E(a0,b0)\n"
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  PredicateId e = u_.FindPredicate("E");
  AnalyzerOptions opts;
  opts.rewriter.max_depth = 4;
  opts.rewriter.max_disjuncts = 64;
  opts.chase.exec.max_steps = 3;
  TournamentAnalyzer analyzer(rules, e, &u_, opts);
  AnalyzerResult result = analyzer.Run();
  EXPECT_FALSE(result.AllOk());
  ASSERT_FALSE(result.stages.empty());
  // It fails at (or before) the regality audit / body rewriting.
  bool early_failure = false;
  for (const auto& stage : result.stages) {
    if (!stage.ok &&
        (stage.name.find("body rewriting") != std::string::npos ||
         stage.name.find("regality") != std::string::npos)) {
      early_failure = true;
    }
  }
  EXPECT_TRUE(early_failure) << result.Summary(u_);
}

// --- Printer round trips ---------------------------------------------------

TEST_F(EdgeCaseTest, PrinterHandlesNullaryAndUnary) {
  Rule r = MustParseRule(&u_, "true -> P(x), Q(x,y)");
  std::string text = ToString(u_, r);
  EXPECT_NE(text.find("true"), std::string::npos);
  Universe u2;
  Rule round = MustParseRule(&u2, text);
  EXPECT_EQ(round.head().size(), 2u);
}

TEST_F(EdgeCaseTest, PrinterRendersNulls) {
  PredicateId e = u_.InternPredicate("E", 2);
  Instance inst(&u_);
  inst.AddAtom(Atom(e, {u_.FreshNull(), u_.FreshNull()}));
  std::string text = ToString(u_, inst);
  EXPECT_NE(text.find("_n"), std::string::npos);
}

TEST_F(EdgeCaseTest, UcqPrinting) {
  Ucq q({MustParseCq(&u_, "? :- E(x,x)"), MustParseCq(&u_, "? :- E(x,y)")});
  std::string text = ToString(u_, q);
  EXPECT_NE(text.find("E(x,x)"), std::string::npos);
  EXPECT_NE(text.find("E(x,y)"), std::string::npos);
}

}  // namespace
}  // namespace bddfc
