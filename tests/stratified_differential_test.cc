// Differential tests for the stratified rule schedule
// (ExecutionConfig::schedule = kStratified): against the flat schedule it
// must produce the same final atom set up to null renaming
// (CanonicalAtoms() equality) for the oblivious and semi-oblivious
// variants, and a hom-equivalent universal model for the restricted
// variant — across both execution engines, both storage backends, and
// serial/parallel execution. The flat schedule itself must remain
// bit-identical to the default configuration.
//
// Each run gets its own Universe built by an identical interning sequence,
// so constants line up exactly across runs and only invented nulls (which
// CanonicalAtoms renames away) differ.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/rule_scheduler.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

struct Workload {
  const char* name;
  const char* rules;
  const char* facts;
};

// All three saturate under every variant; each exercises a different
// stratification shape (layers with an existential mid-chain, disconnected
// rule groups, a mutually-recursive stratum feeding an existential).
constexpr Workload kWorkloads[] = {
    {"layered",
     "A(x,y) -> B(x,y)\n"
     "B(x,y), B(y,z) -> B(x,z)\n"
     "B(x,y) -> C(y,w)\n"
     "C(x,y) -> D(x,y)\n",
     "A(a,b). A(b,c). A(c,d)."},
    {"disconnected",
     "E(x,y), E(y,z) -> E(x,z)\n"
     "F(x,y) -> G(y,x)\n"
     "G(x,y), G(y,z) -> G(x,z)\n",
     "E(a,b). E(b,c). F(p,q). F(q,r)."},
    {"mutual",
     "P(x,y) -> Q(y,x)\n"
     "Q(x,y) -> P(y,x)\n"
     "P(x,y) -> R(x,w)\n",
     "P(a,b). Q(b,c)."},
};

constexpr ChaseVariant kVariants[] = {ChaseVariant::kOblivious,
                                      ChaseVariant::kSemiOblivious,
                                      ChaseVariant::kRestricted};
constexpr ChaseEngine kEngines[] = {ChaseEngine::kTrigger,
                                    ChaseEngine::kSegment};
constexpr StorageKind kStorages[] = {StorageKind::kRow, StorageKind::kColumn};
constexpr std::size_t kThreadCounts[] = {1, 4};

const char* VariantName(ChaseVariant v) {
  switch (v) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

struct ChaseRun {
  Universe universe;
  std::unique_ptr<ObliviousChase> chase;
};

void Execute(const Workload& w, ChaseOptions options, ChaseRun* run) {
  RuleSet rules = MustParseRuleSet(&run->universe, w.rules);
  Instance db = MustParseInstance(&run->universe, w.facts);
  run->chase = std::make_unique<ObliviousChase>(db, std::move(rules),
                                                options);
  run->chase->Run();
}

TEST(StratifiedDifferentialTest, MatchesFlatAcrossEnginesStoragesThreads) {
  for (const Workload& w : kWorkloads) {
    for (ChaseVariant variant : kVariants) {
      for (ChaseEngine engine : kEngines) {
        for (StorageKind storage : kStorages) {
          for (std::size_t threads : kThreadCounts) {
            SCOPED_TRACE(std::string(w.name) + " " + VariantName(variant) +
                         " " + ToString(engine) + " " + ToString(storage) +
                         " threads " + std::to_string(threads));
            ChaseOptions options{
                .variant = variant,
                .exec = {.engine = engine,
                         .storage = storage,
                         .num_threads = threads,
                         .max_steps = 64,
                         .max_atoms = 100000}};
            ChaseRun flat, stratified;
            options.exec.schedule = ChaseSchedule::kFlat;
            Execute(w, options, &flat);
            options.exec.schedule = ChaseSchedule::kStratified;
            Execute(w, options, &stratified);

            ASSERT_TRUE(flat.chase->Saturated());
            ASSERT_TRUE(stratified.chase->Saturated());
            if (variant == ChaseVariant::kRestricted) {
              // Firing order changes which triggers the restricted chase
              // pre-empts, so only hom-equivalence is promised.
              EXPECT_TRUE(HomEquivalent(flat.chase->Result(),
                                        stratified.chase->Result()));
            } else {
              EXPECT_EQ(flat.chase->CanonicalAtoms(),
                        stratified.chase->CanonicalAtoms());
            }
          }
        }
      }
    }
  }
}

TEST(StratifiedDifferentialTest, StratifiedSkipsRuleSearches) {
  // The layered workload has >1 stratum, so the stratified schedule must
  // actually skip rule enumerations the flat one would run.
  ChaseOptions options{.exec = {.schedule = ChaseSchedule::kStratified,
                                .max_steps = 64,
                                .max_atoms = 100000}};
  ChaseRun run;
  Execute(kWorkloads[0], options, &run);
  ASSERT_TRUE(run.chase->Saturated());
  const RuleScheduler& scheduler = run.chase->scheduler();
  EXPECT_TRUE(scheduler.stratified());
  EXPECT_GT(scheduler.num_strata(), 1u);
  EXPECT_GT(scheduler.stats().skipped_total(), 0u);
  EXPECT_EQ(scheduler.stats().fired_total(), run.chase->TriggersFired());
}

TEST(StratifiedDifferentialTest, FlatScheduleIsBitIdenticalToDefault) {
  for (const Workload& w : kWorkloads) {
    SCOPED_TRACE(w.name);
    ChaseRun default_run, flat_run;
    ChaseOptions options{.exec = {.max_steps = 64, .max_atoms = 100000}};
    Execute(w, options, &default_run);
    options.exec.schedule = ChaseSchedule::kFlat;
    Execute(w, options, &flat_run);
    ASSERT_EQ(default_run.chase->StepsExecuted(),
              flat_run.chase->StepsExecuted());
    EXPECT_EQ(default_run.chase->TriggersFired(),
              flat_run.chase->TriggersFired());
    ASSERT_EQ(default_run.chase->Result().size(),
              flat_run.chase->Result().size());
    for (std::size_t i = 0; i < default_run.chase->Result().size(); ++i) {
      ASSERT_EQ(default_run.chase->Result().atoms()[i],
                flat_run.chase->Result().atoms()[i])
          << "atom " << i;
    }
  }
}

TEST(StratifiedDifferentialTest, NaiveEnumerationAgreesWhenStratified) {
  // The scheduler's naive mode re-enumerates full prefixes each round;
  // results must not change.
  for (const Workload& w : kWorkloads) {
    SCOPED_TRACE(w.name);
    ChaseOptions options{.exec = {.schedule = ChaseSchedule::kStratified,
                                  .max_steps = 64,
                                  .max_atoms = 100000}};
    ChaseRun delta, naive;
    Execute(w, options, &delta);
    options.naive_enumeration = true;
    Execute(w, options, &naive);
    ASSERT_TRUE(delta.chase->Saturated());
    ASSERT_TRUE(naive.chase->Saturated());
    EXPECT_EQ(delta.chase->CanonicalAtoms(), naive.chase->CanonicalAtoms());
  }
}

// Satellite: incremental insertion resume under the segment engine. After
// saturation, AddBaseFacts must resume the chase and converge to the same
// model (up to null renaming) as chasing the extended database from
// scratch — under both schedules and both storage backends.
TEST(StratifiedDifferentialTest, SegmentEngineIncrementalResume) {
  const char* rules_text =
      "A(x,y) -> B(x,y)\n"
      "B(x,y), B(y,z) -> B(x,z)\n"
      "B(x,y) -> C(y,w)\n";
  const char* base_facts = "A(a,b). A(b,c).";
  const char* full_facts = "A(a,b). A(b,c). A(c,d). A(d,e).";
  for (ChaseSchedule schedule :
       {ChaseSchedule::kFlat, ChaseSchedule::kStratified}) {
    for (StorageKind storage : kStorages) {
      SCOPED_TRACE(std::string(ToString(schedule)) + " " +
                   ToString(storage));
      ChaseOptions options{.exec = {.engine = ChaseEngine::kSegment,
                                    .schedule = schedule,
                                    .storage = storage,
                                    .max_steps = 64,
                                    .max_atoms = 100000}};
      ChaseRun incremental;
      {
        RuleSet rules =
            MustParseRuleSet(&incremental.universe, rules_text);
        Instance db = MustParseInstance(&incremental.universe, base_facts);
        incremental.chase = std::make_unique<ObliviousChase>(
            db, std::move(rules), options);
        incremental.chase->Run();
        ASSERT_TRUE(incremental.chase->Saturated());
        // Interning parity with the from-scratch twin: d and e enter the
        // universe now, via the same parse the twin performs up front.
        Instance extra =
            MustParseInstance(&incremental.universe, "A(c,d). A(d,e).");
        std::vector<Atom> added(extra.atoms().begin(), extra.atoms().end());
        EXPECT_GT(incremental.chase->AddBaseFacts(added), 0u);
        incremental.chase->Run();
        ASSERT_TRUE(incremental.chase->Saturated());
      }
      ChaseRun scratch;
      {
        RuleSet rules = MustParseRuleSet(&scratch.universe, rules_text);
        Instance db = MustParseInstance(&scratch.universe, full_facts);
        scratch.chase = std::make_unique<ObliviousChase>(
            db, std::move(rules), options);
        scratch.chase->Run();
        ASSERT_TRUE(scratch.chase->Saturated());
      }
      EXPECT_EQ(incremental.chase->CanonicalAtoms(),
                scratch.chase->CanonicalAtoms());
    }
  }
}

}  // namespace
}  // namespace bddfc
