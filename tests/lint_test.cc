// Tests for the program linter (src/analysis/lint.h): every diagnostic id
// firing and not firing, the severity counters, and the exit-code contract
// bddfc_lint and CI key on.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "analysis/lint.h"
#include "analysis/program_analysis.h"
#include "logic/atom.h"
#include "logic/parser.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace {

class LintTest : public ::testing::Test {
 protected:
  RuleSet Rules(const std::string& text) {
    return MustParseRuleSet(&u_, text);
  }

  // Diagnostics with the given id.
  static std::size_t CountOf(const LintReport& report, const std::string& id) {
    std::size_t n = 0;
    for (const LintDiagnostic& d : report.diagnostics) {
      if (d.id == id) ++n;
    }
    return n;
  }

  Universe u_;
};

TEST_F(LintTest, CleanProgramIsQuiet) {
  // Every derived predicate is read, every rule reachable from the EDB
  // predicate E, no duplicates, bodies connected.
  RuleSet rules = Rules(
      "E(x,y) -> A(x)\n"
      "A(x) -> B(x)\n"
      "B(x), E(x,y) -> A(y)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.warnings, 0u);
  EXPECT_EQ(report.notes, 0u);
  EXPECT_EQ(report.ExitCode(), 0);
  EXPECT_EQ(report.ExitCode(/*werror=*/true), 0);
}

// ---- unused-predicate ----------------------------------------------------

TEST_F(LintTest, UnusedPredicateIsANote) {
  RuleSet rules = Rules("E(x) -> B(x)\n");
  LintReport report = LintProgram(rules, &u_);
  ASSERT_TRUE(report.Has("unused-predicate"));
  EXPECT_EQ(CountOf(report, "unused-predicate"), 1u);
  const LintDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.severity, LintSeverity::kNote);
  EXPECT_EQ(d.rule, LintDiagnostic::kNoRule);
  EXPECT_NE(d.message.find("B"), std::string::npos);
  // Notes never affect the exit code, even under --Werror.
  EXPECT_EQ(report.ExitCode(), 0);
  EXPECT_EQ(report.ExitCode(/*werror=*/true), 0);
}

TEST_F(LintTest, EdbPredicateIsNotUnused) {
  // E appears in no head: it is EDB, not an unused derived predicate —
  // and a head predicate some body reads is not unused either.
  RuleSet rules = Rules(
      "E(x) -> B(x)\n"
      "B(x) -> B(x)\n");  // B read; the self-duplicate is not the point
  LintReport report = LintProgram(rules, &u_);
  EXPECT_FALSE(report.Has("unused-predicate"));
}

// ---- unreachable-rule ----------------------------------------------------

TEST_F(LintTest, MutualRecursionWithoutBaseCaseIsUnreachable) {
  RuleSet rules = Rules(
      "P(x) -> Q(x)\n"
      "Q(x) -> P(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_EQ(CountOf(report, "unreachable-rule"), 2u);
  EXPECT_EQ(report.warnings, 2u);
  EXPECT_EQ(report.ExitCode(), 1);
  EXPECT_EQ(report.ExitCode(/*werror=*/true), 2);
}

TEST_F(LintTest, BaseCaseMakesMutualRecursionReachable) {
  RuleSet rules = Rules(
      "E(x) -> P(x)\n"
      "P(x) -> Q(x)\n"
      "Q(x) -> P(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_FALSE(report.Has("unreachable-rule"));
}

TEST_F(LintTest, FactlessEdbPredicateWithDatabaseIsAnError) {
  // With a database in hand, an EDB predicate with no facts and no
  // deriving rule is a hard never-matching error (reachability still
  // treats it as suppliable — a later add could fill it).
  RuleSet rules = Rules("E(x) -> P(x)\n");
  Instance db(&u_);
  LintReport report = LintProgram(rules, &u_, &db);
  EXPECT_TRUE(report.Has("never-matching-body"));
  EXPECT_FALSE(report.Has("unreachable-rule"));
  EXPECT_GE(report.errors, 1u);
  EXPECT_EQ(report.ExitCode(), 2);
}

TEST_F(LintTest, DatabaseFactsSeedReachability) {
  RuleSet rules = Rules("E(x) -> P(x)\n");
  Instance db = MustParseInstance(&u_, "E(a).");
  LintReport report = LintProgram(rules, &u_, &db);
  EXPECT_FALSE(report.Has("never-matching-body"));
  EXPECT_FALSE(report.Has("unreachable-rule"));
}

// ---- never-matching-body (programmatic shapes) ---------------------------

TEST_F(LintTest, ArityMismatchIsAnError) {
  // Unreachable through the parser (interning aborts on arity conflict),
  // but programmatically assembled rules can disagree with the signature.
  const PredicateId p = u_.InternPredicate("P", 2);
  const PredicateId q = u_.InternPredicate("Q", 1);
  const Term x = Term::MakeVariable(0);
  RuleSet rules;
  rules.emplace_back(std::vector<Atom>{Atom(p, {x})},
                     std::vector<Atom>{Atom(q, {x})});
  LintReport report = LintProgram(rules, &u_);
  ASSERT_TRUE(report.Has("never-matching-body"));
  const LintDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.severity, LintSeverity::kError);
  EXPECT_EQ(d.rule, 0u);
  EXPECT_NE(d.message.find("arity"), std::string::npos);
  EXPECT_EQ(report.ExitCode(), 2);
}

TEST_F(LintTest, ConstantContradictionIsAnError) {
  // P is derived-only and every deriving rule writes constant a at
  // position 0, but the consumer demands constant b there.
  const PredicateId e = u_.InternPredicate("E", 1);
  const PredicateId p = u_.InternPredicate("P", 2);
  const PredicateId q = u_.InternPredicate("Q", 1);
  const Term x = Term::MakeVariable(0);
  const Term a = u_.InternConstant("a");
  const Term b = u_.InternConstant("b");
  RuleSet rules;
  rules.emplace_back(std::vector<Atom>{Atom(e, {x})},
                     std::vector<Atom>{Atom(p, {a, x})});
  rules.emplace_back(std::vector<Atom>{Atom(p, {b, x})},
                     std::vector<Atom>{Atom(q, {x})});
  LintReport report = LintProgram(rules, &u_);
  ASSERT_TRUE(report.Has("never-matching-body"));
  bool found = false;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id != "never-matching-body") continue;
    found = true;
    EXPECT_EQ(d.rule, 1u);
    EXPECT_NE(d.message.find("constant"), std::string::npos);
  }
  EXPECT_TRUE(found);

  // The same consumer asking for the produced constant is fine.
  RuleSet ok;
  ok.emplace_back(std::vector<Atom>{Atom(e, {x})},
                  std::vector<Atom>{Atom(p, {a, x})});
  ok.emplace_back(std::vector<Atom>{Atom(p, {a, x})},
                  std::vector<Atom>{Atom(q, {x})});
  EXPECT_FALSE(LintProgram(ok, &u_).Has("never-matching-body"));
}

// ---- duplicate-rule ------------------------------------------------------

TEST_F(LintTest, DuplicateUpToRenamingIsFlaggedOnce) {
  RuleSet rules = Rules(
      "E(x,y) -> P(x)\n"
      "E(u,v) -> P(u)\n"
      "P(x) -> Seen(x)\n"
      "Seen(x) -> Done(x)\n"
      "Done(x) -> P(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_EQ(CountOf(report, "duplicate-rule"), 1u);
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id != "duplicate-rule") continue;
    EXPECT_EQ(d.rule, 1u);  // the later copy is the offender
    EXPECT_EQ(d.severity, LintSeverity::kWarning);
  }
}

TEST_F(LintTest, DifferentProjectionIsNotADuplicate) {
  RuleSet rules = Rules(
      "E(x,y) -> P(x)\n"
      "E(u,v) -> P(v)\n"
      "P(x) -> Q(x)\n"
      "Q(x) -> P(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_FALSE(report.Has("duplicate-rule"));
  EXPECT_FALSE(report.Has("subsumed-rule"));
}

// ---- subsumed-rule -------------------------------------------------------

TEST_F(LintTest, StricterBodyWithSameHeadIsSubsumed) {
  // Rule 1 demands an extra E-step but concludes no more than rule 0.
  RuleSet rules = Rules(
      "E(x,y) -> P(x)\n"
      "E(x,y), E(y,z) -> P(x)\n"
      "P(x) -> Q(x)\n"
      "Q(x) -> P(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_EQ(CountOf(report, "subsumed-rule"), 1u);
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id != "subsumed-rule") continue;
    EXPECT_EQ(d.rule, 1u);
    EXPECT_NE(d.message.find("more general"), std::string::npos);
  }
}

TEST_F(LintTest, MutualSubsumptionKeepsTheEarlierRule) {
  // Reordered bodies: not syntactic duplicates, but logically equivalent.
  RuleSet rules = Rules(
      "A(x), B(x) -> P(x)\n"
      "B(x), A(x) -> P(x)\n"
      "P(x) -> A(x)\n"
      "E(x) -> A(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_FALSE(report.Has("duplicate-rule"));
  EXPECT_EQ(CountOf(report, "subsumed-rule"), 1u);
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id == "subsumed-rule") {
      EXPECT_EQ(d.rule, 1u);
    }
  }
}

TEST_F(LintTest, ExistentialRulesAreNeverSubsumptionCandidates) {
  RuleSet rules = Rules(
      "E(x,y) -> P(x,z)\n"
      "E(x,y), E(y,w) -> P(x,z)\n"
      "P(x,y) -> Out(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_FALSE(report.Has("subsumed-rule"));
}

// ---- cartesian-body ------------------------------------------------------

TEST_F(LintTest, VariableDisjointBodyIsCartesian) {
  RuleSet rules = Rules(
      "A(x), B(y) -> C(x,y)\n"
      "C(x,y) -> A(x)\n"
      "C(x,y) -> B(y)\n"
      "E(x) -> A(x)\n"
      "F(x) -> B(x)\n");
  LintReport report = LintProgram(rules, &u_);
  EXPECT_EQ(CountOf(report, "cartesian-body"), 1u);
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id != "cartesian-body") continue;
    EXPECT_EQ(d.rule, 0u);
    EXPECT_NE(d.message.find("2"), std::string::npos);
  }
}

TEST_F(LintTest, SharedVariableConnectsTheBody) {
  RuleSet rules = Rules(
      "A(x), B(x) -> C(x)\n"
      "C(x) -> A(x)\n"
      "C(x) -> B(x)\n");
  EXPECT_FALSE(LintProgram(rules, &u_).Has("cartesian-body"));
}

// ---- divergence-risk -----------------------------------------------------

TEST_F(LintTest, UncertifiedExistentialCycleIsDivergenceRisk) {
  RuleSet rules = Rules(
      "P(x,y) -> P(y,z)\n"
      "P(x,y) -> Q(x)\n"
      "Q(x) -> Seen(x)\n"
      "Seen(x) -> Q(x)\n"
      "S(x,y) -> P(x,y)\n");
  ProgramReport analysis = AnalyzeProgram(rules, u_);
  ASSERT_EQ(analysis.certificate, TerminationCertificate::kNone);
  LintReport report = LintProgram(rules, &u_, nullptr, &analysis);
  EXPECT_EQ(CountOf(report, "divergence-risk"), 1u);
  for (const LintDiagnostic& d : report.diagnostics) {
    if (d.id != "divergence-risk") continue;
    EXPECT_EQ(d.rule, 0u);
    EXPECT_EQ(d.severity, LintSeverity::kWarning);
    EXPECT_NE(d.message.find("P[1]"), std::string::npos);
  }
  // Without the analysis report the check cannot run.
  EXPECT_FALSE(LintProgram(rules, &u_).Has("divergence-risk"));
}

TEST_F(LintTest, CertifiedProgramHasNoDivergenceRisk) {
  // Weakly acyclic: the existential position is never fed back.
  RuleSet rules = Rules(
      "E(x,y) -> F(x,z)\n"
      "F(x,y) -> E2(x)\n"
      "E2(x) -> E3(x)\n"
      "E3(x) -> E2(x)\n");
  ProgramReport analysis = AnalyzeProgram(rules, u_);
  EXPECT_NE(analysis.certificate, TerminationCertificate::kNone);
  EXPECT_FALSE(
      LintProgram(rules, &u_, nullptr, &analysis).Has("divergence-risk"));
}

// ---- severity accounting -------------------------------------------------

TEST_F(LintTest, SeverityCountersMatchDiagnostics) {
  // One error (factless EDB predicate), one note (unused Out).
  RuleSet rules = Rules(
      "E(x) -> P(x)\n"
      "P(x) -> Out(x)\n");
  Instance db(&u_);
  LintReport report = LintProgram(rules, &u_, &db);
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const LintDiagnostic& d : report.diagnostics) {
    switch (d.severity) {
      case LintSeverity::kError:
        ++errors;
        break;
      case LintSeverity::kWarning:
        ++warnings;
        break;
      case LintSeverity::kNote:
        ++notes;
        break;
    }
  }
  EXPECT_EQ(report.errors, errors);
  EXPECT_EQ(report.warnings, warnings);
  EXPECT_EQ(report.notes, notes);
  EXPECT_GE(errors, 1u);
  EXPECT_EQ(report.ExitCode(), 2);
  EXPECT_EQ(report.ExitCode(/*werror=*/true), 2);
}

}  // namespace
}  // namespace bddfc
