// The serve wire codec: the hardened JSON parser (base/json.h), the
// incremental line framer, and request decoding. The protocol promise
// under test: a malformed, truncated, or oversized client line yields an
// error reply — never a crash, CHECK failure, or unbounded buffer.

#include <string>
#include <vector>

#include "base/json.h"
#include "gtest/gtest.h"
#include "serve/codec.h"

namespace bddfc {
namespace serve {
namespace {

// --- JsonValue / JsonParse ---------------------------------------------------

TEST(JsonParse, ParsesScalars) {
  EXPECT_TRUE(JsonParse("null")->is_null());
  EXPECT_EQ(JsonParse("true")->AsBool(), true);
  EXPECT_EQ(JsonParse("false")->AsBool(), false);
  EXPECT_EQ(JsonParse("42")->AsInt(), 42);
  EXPECT_EQ(JsonParse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(JsonParse("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonParse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(JsonParse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParse, ParsesNestedDocument) {
  auto doc =
      JsonParse(R"json({"op":"query","id":3,"args":[1,2,{"k":true}]})json");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindString("op")->AsString(), "query");
  EXPECT_EQ(doc->FindInt("id")->AsInt(), 3);
  const JsonValue* args = doc->Find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_TRUE(args->is_array());
  ASSERT_EQ(args->AsArray().size(), 3u);
  EXPECT_EQ(args->AsArray()[2].FindBool("k")->AsBool(), true);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonParse(R"json("a\nb\t\"\\")json")->AsString(), "a\nb\t\"\\");
  // \uXXXX incl. a surrogate pair (U+1F600) and plain BMP.
  EXPECT_EQ(JsonParse(R"json("\u0041")json")->AsString(), "A");
  EXPECT_EQ(JsonParse(R"json("\u00e9")json")->AsString(), "\xc3\xa9");
  EXPECT_EQ(JsonParse(R"json("\ud83d\ude00")json")->AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, IntOverflowFallsBackToDouble) {
  auto doc = JsonParse("99999999999999999999999999");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->is_number());
  EXPECT_FALSE(doc->is_int());
}

TEST(JsonParse, RejectsMalformedInput) {
  // Every entry must fail cleanly: nullopt plus a position-annotated
  // message, no aborts.
  const char* bad[] = {
      "",
      "   ",
      "{",
      "}",
      "[1,2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"\\u12\"",
      "\"\\ud83d\"",  // lone high surrogate
      "tru",
      "nulll",
      "01",
      "1.2.3",
      "+1",
      "- 1",
      "{\"a\":1} trailing",
      "\x01",
      "{\xff}",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(JsonParse(text, &error).has_value()) << text;
    EXPECT_NE(error.find("offset"), std::string::npos) << text;
  }
}

TEST(JsonParse, RejectsControlCharactersInStrings) {
  EXPECT_FALSE(JsonParse("\"a\nb\"").has_value());
  EXPECT_FALSE(JsonParse(std::string_view("\"a\0b\"", 5)).has_value());
}

TEST(JsonParse, DepthCapRejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(JsonParse(deep, &error).has_value());
  EXPECT_NE(error.find("nest"), std::string::npos);
  // At or under the cap it parses.
  std::string ok;
  for (int i = 0; i < 64; ++i) ok += '[';
  for (int i = 0; i < 64; ++i) ok += ']';
  EXPECT_TRUE(JsonParse(ok).has_value());
}

TEST(JsonParse, ArbitraryBytePrefixesNeverCrash) {
  // Truncations of a valid request at every byte: all must fail or parse
  // without aborting (only the full line parses).
  const std::string line =
      R"json({"op":"query","id":9,"query":"?(x) :- E(x,\"y\")","mode":"all"})json";
  for (std::size_t n = 0; n < line.size(); ++n) {
    std::string error;
    auto doc = JsonParse(line.substr(0, n), &error);
    EXPECT_FALSE(doc.has_value()) << n;
  }
  EXPECT_TRUE(JsonParse(line).has_value());
}

TEST(JsonValue, DumpRoundTrips) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("n", JsonValue::Int(-3));
  obj.Set("s", JsonValue::Str("a\"b\n"));
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue::Null());
  arr.Push(JsonValue::Double(0.5));
  obj.Set("a", std::move(arr));
  const std::string dumped = obj.Dump();
  auto parsed = JsonParse(dumped);
  ASSERT_TRUE(parsed.has_value()) << dumped;
  EXPECT_EQ(parsed->FindBool("ok")->AsBool(), true);
  EXPECT_EQ(parsed->FindInt("n")->AsInt(), -3);
  EXPECT_EQ(parsed->FindString("s")->AsString(), "a\"b\n");
  EXPECT_DOUBLE_EQ(parsed->Find("a")->AsArray()[1].AsDouble(), 0.5);
  // Insertion order is preserved on the wire.
  EXPECT_EQ(dumped.find("\"ok\""), 1u);
}

TEST(JsonValue, FindToleratesWrongKinds) {
  auto doc = JsonParse(R"json({"s":"x","n":1})json");
  EXPECT_EQ(doc->FindInt("s"), nullptr);
  EXPECT_EQ(doc->FindString("n"), nullptr);
  EXPECT_EQ(doc->Find("missing"), nullptr);
  // Find on a non-object is a clean nullptr, not an abort.
  EXPECT_EQ(JsonParse("[1]")->Find("k"), nullptr);
}

// --- LineFramer --------------------------------------------------------------

std::vector<Frame> FeedAll(LineFramer& framer, std::string_view data) {
  std::vector<Frame> frames;
  framer.Feed(data, &frames);
  return frames;
}

TEST(LineFramer, SplitsLinesAcrossArbitraryReads) {
  const std::string stream = "first line\nsecond\nthird one\n";
  // Every chunking of the stream must produce the same three frames.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    LineFramer framer;
    std::vector<Frame> frames;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      framer.Feed(stream.substr(at, chunk), &frames);
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].line, "first line");
    EXPECT_EQ(frames[1].line, "second");
    EXPECT_EQ(frames[2].line, "third one");
    Frame tail;
    EXPECT_FALSE(framer.Flush(&tail));
  }
}

TEST(LineFramer, StripsCarriageReturnsAndDropsEmptyLines) {
  LineFramer framer;
  auto frames = FeedAll(framer, "a\r\n\r\n\nb\n");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].line, "a");
  EXPECT_EQ(frames[1].line, "b");
}

TEST(LineFramer, FlushReturnsTrailingUnterminatedLine) {
  LineFramer framer;
  auto frames = FeedAll(framer, "complete\npartial");
  ASSERT_EQ(frames.size(), 1u);
  Frame tail;
  ASSERT_TRUE(framer.Flush(&tail));
  EXPECT_EQ(tail.line, "partial");
  EXPECT_FALSE(tail.oversized);
  EXPECT_FALSE(framer.Flush(&tail));  // flush is one-shot
}

TEST(LineFramer, OversizedLineIsDiscardedWhileStreaming) {
  LineFramer framer(8);
  std::vector<Frame> frames;
  // A 3 x 100-byte line arrives in pieces: the framer must not buffer it.
  for (int i = 0; i < 3; ++i) {
    framer.Feed(std::string(100, 'x'), &frames);
    EXPECT_TRUE(frames.empty());
  }
  framer.Feed("\nok\n", &frames);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[1].line, "ok");
  EXPECT_FALSE(frames[1].oversized);
}

TEST(LineFramer, OversizedLineInOneFeed) {
  LineFramer framer(4);
  auto frames = FeedAll(framer, "toolong\nok\n");
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[1].line, "ok");
}

TEST(LineFramer, FlushReportsUnterminatedOversizedLine) {
  LineFramer framer(4);
  std::vector<Frame> frames;
  framer.Feed("waytoolong", &frames);
  EXPECT_TRUE(frames.empty());
  Frame tail;
  ASSERT_TRUE(framer.Flush(&tail));
  EXPECT_TRUE(tail.oversized);
}

// --- DecodeRequest -----------------------------------------------------------

std::optional<Request> Decode(std::string_view text, std::string* error,
                              std::optional<std::int64_t>* id) {
  auto doc = JsonParse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return DecodeRequest(*doc, error, id);
}

TEST(DecodeRequest, DecodesEveryOp) {
  std::string error;
  std::optional<std::int64_t> id;

  auto ping = Decode(R"json({"op":"ping","id":7})json", &error, &id);
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->op, RequestOp::kPing);
  EXPECT_EQ(ping->id, 7);

  auto status = Decode(R"json({"op":"status"})json", &error, &id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->op, RequestOp::kStatus);
  EXPECT_FALSE(status->id.has_value());

  auto metrics = Decode(R"json({"op":"metrics"})json", &error, &id);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->op, RequestOp::kMetrics);

  auto prepare = Decode(
      R"json({"op":"prepare","name":"q1","query":"?(x) :- P(x)"})json",
      &error, &id);
  ASSERT_TRUE(prepare.has_value());
  EXPECT_EQ(prepare->op, RequestOp::kPrepare);
  EXPECT_EQ(prepare->name, "q1");
  EXPECT_EQ(prepare->query, "?(x) :- P(x)");

  auto inline_query = Decode(
      R"json({"op":"query","query":"? :- P(x)","mode":"ask"})json", &error,
      &id);
  ASSERT_TRUE(inline_query.has_value());
  EXPECT_EQ(inline_query->op, RequestOp::kQuery);
  EXPECT_FALSE(inline_query->use_prepared);
  EXPECT_EQ(inline_query->mode, QueryMode::kAsk);

  auto prepared_query =
      Decode(R"json({"op":"query","prepared":"q1","mode":"count"})json",
             &error, &id);
  ASSERT_TRUE(prepared_query.has_value());
  EXPECT_TRUE(prepared_query->use_prepared);
  EXPECT_EQ(prepared_query->prepared, "q1");
  EXPECT_EQ(prepared_query->mode, QueryMode::kCount);

  auto add = Decode(R"json({"op":"add","facts":"P(a)."})json", &error, &id);
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ(add->op, RequestOp::kAdd);
  EXPECT_EQ(add->facts, "P(a).");
}

TEST(DecodeRequest, ModeDefaultsToAll) {
  std::string error;
  std::optional<std::int64_t> id;
  auto req = Decode(R"json({"op":"query","query":"?(x) :- P(x)"})json",
                    &error, &id);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->mode, QueryMode::kAll);
}

TEST(DecodeRequest, RejectsInvalidRequests) {
  const char* bad[] = {
      R"json([1,2,3])json",                                   // not an object
      R"json({"id":1})json",                                  // no op
      R"json({"op":42})json",                                 // op not a string
      R"json({"op":"nope"})json",                             // unknown op
      R"json({"op":"ping","id":"seven"})json",                // id not an int
      R"json({"op":"prepare","query":"? :- P(x)"})json",  // prepare sans name
      R"json({"op":"prepare","name":"","query":"?"})json",    // empty name
      R"json({"op":"prepare","name":"q"})json",  // prepare without query
      R"json({"op":"query"})json",  // neither query nor plan
      R"json({"op":"query","query":"?","prepared":"q"})json", // both
      R"json({"op":"query","query":"?","mode":"sum"})json",   // bad mode
      R"json({"op":"query","query":"?","mode":3})json",  // mode not a string
      R"json({"op":"add"})json",  // add without facts
      R"json({"op":"add","facts":17})json",  // facts not a string
  };
  for (const char* text : bad) {
    std::string error;
    std::optional<std::int64_t> id;
    EXPECT_FALSE(Decode(text, &error, &id).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(DecodeRequest, RecoversIdFromInvalidRequest) {
  // The id is surfaced even when validation fails later, so the error
  // reply can echo it.
  std::string error;
  std::optional<std::int64_t> id;
  EXPECT_FALSE(
      Decode(R"json({"id":31,"op":"add"})json", &error, &id).has_value());
  EXPECT_EQ(id, 31);
}

TEST(Replies, ErrorReplyShape) {
  auto doc = JsonParse(ErrorReply(5, "bad_request", "a \"quoted\" detail"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindBool("ok")->AsBool(), false);
  EXPECT_EQ(doc->FindInt("id")->AsInt(), 5);
  EXPECT_EQ(doc->FindString("error")->AsString(), "bad_request");
  EXPECT_EQ(doc->FindString("message")->AsString(), "a \"quoted\" detail");

  auto anonymous = JsonParse(ErrorReply(std::nullopt, "bad_json", "x"));
  EXPECT_EQ(anonymous->Find("id"), nullptr);
}

TEST(Replies, OkReplyShape) {
  auto doc = JsonParse(OkReply(9).Dump());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->FindBool("ok")->AsBool(), true);
  EXPECT_EQ(doc->FindInt("id")->AsInt(), 9);
}

}  // namespace
}  // namespace serve
}  // namespace bddfc
