// Unit tests for the chase engine, including the paper's Example 1 and the
// structural facts of Section 5 (timestamps, DAG shape, Lemma 33).

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

class ChaseTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(ChaseTest, SingleRuleFiresOnce) {
  // Observation 13: a ⊤-bodied rule triggers exactly once.
  RuleSet rules = MustParseRuleSet(&u_, "true -> E(x,y)");
  Instance db(&u_);
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 10}});
  chase.Run();
  EXPECT_TRUE(chase.Saturated());
  EXPECT_EQ(chase.TriggersFired(), 1u);
  PredicateId e = u_.FindPredicate("E");
  EXPECT_EQ(chase.Result().AtomsWith(e).size(), 1u);
}

TEST_F(ChaseTest, DatalogSaturation) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> E(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c). E(c,d).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 32}});
  chase.Run();
  EXPECT_TRUE(chase.Saturated());
  // Transitive closure of the path a->b->c->d: 6 edges.
  PredicateId e = u_.FindPredicate("E");
  EXPECT_EQ(chase.Result().AtomsWith(e).size(), 6u);
}

TEST_F(ChaseTest, Example1NeverEntailsLoop) {
  // Example 1: E(a,b), successor rule + transitivity. The chase (of any
  // finite prefix) never entails ∃x E(x,x).
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 5, .max_atoms = 20000}});
  chase.Run();
  PredicateId e = u_.FindPredicate("E");
  Cq loop = LoopQuery(&u_, e);
  EXPECT_FALSE(Entails(chase.Result(), loop));
  // And the chase keeps growing (not saturated).
  EXPECT_FALSE(chase.Saturated());
  EXPECT_GT(chase.Result().AtomsWith(e).size(), 5u);
}

TEST_F(ChaseTest, BddifiedExample1EntailsLoop) {
  // The bdd variant from the introduction: replacing transitivity with
  // E(x,x'), E(y,y') -> E(x,y') makes the loop derivable from any edge —
  // Property (p) in action.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 3, .max_atoms = 50000}});
  chase.Run();
  PredicateId e = u_.FindPredicate("E");
  EXPECT_TRUE(Entails(chase.Result(), LoopQuery(&u_, e)));
}

TEST_F(ChaseTest, TimestampsAndFrontiers) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 3}});
  chase.Run();
  // Database terms have timestamp 0.
  Term a = u_.FindConstant("a");
  Term b = u_.FindConstant("b");
  EXPECT_EQ(chase.TimestampOf(a), 0);
  EXPECT_EQ(chase.TimestampOf(b), 0);
  EXPECT_EQ(chase.InfoOf(a), nullptr);
  // Chase terms have increasing timestamps and their frontier is the
  // previous node of the chain.
  int seen_depth[4] = {0, 0, 0, 0};
  for (Term t : chase.Result().ActiveDomain()) {
    const ChaseTermInfo* info = chase.InfoOf(t);
    if (info == nullptr) continue;
    ASSERT_GE(info->timestamp, 1);
    ASSERT_LE(info->timestamp, 3);
    ++seen_depth[info->timestamp];
    ASSERT_EQ(info->frontier.size(), 1u);
    EXPECT_EQ(chase.TimestampOf(info->frontier[0]), info->timestamp - 1);
  }
  EXPECT_EQ(seen_depth[1], 1);
  EXPECT_EQ(seen_depth[2], 1);
  EXPECT_EQ(seen_depth[3], 1);
}

TEST_F(ChaseTest, StepPrefixesAreMonotone) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 4}});
  chase.Run();
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_LE(chase.AtomCountAtStep(k), chase.AtomCountAtStep(k + 1));
    Instance prefix = chase.Prefix(k);
    EXPECT_EQ(prefix.size(), chase.AtomCountAtStep(k));
  }
}

TEST_F(ChaseTest, ForwardExistentialChaseIsDag) {
  // Observation 35: with forward-existential rules and no database edges,
  // the chase is a DAG.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "true -> A(x)\n"
                                   "A(x) -> E(x,y), A(y)\n");
  Instance db(&u_);
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 5}});
  chase.Run();
  EXPECT_TRUE(chase.IsDag());
}

TEST_F(ChaseTest, LoopBreaksDag) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,y)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 2}});
  chase.Run();
  EXPECT_FALSE(chase.IsDag());
}

TEST_F(ChaseTest, RestrictedChaseTerminatesWhenObliviousDoesNot) {
  // E(x,y) -> E(y,x): oblivious keeps inventing, restricted saturates.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,a).");
  ObliviousChase restricted(
      db, rules, {.variant = ChaseVariant::kRestricted, .exec = {.max_steps = 50}});
  restricted.Run();
  EXPECT_TRUE(restricted.Saturated());
  ObliviousChase oblivious(db, rules, {.exec = {.max_steps = 50, .max_atoms = 500}});
  oblivious.Run();
  EXPECT_FALSE(oblivious.Saturated());
}

TEST_F(ChaseTest, ChaseThenDatalogMatchesLemma33Shape) {
  // Lemma 33: Ch(S) ↔ Ch(Ch(S∃), S_DL) for quick rule sets. Here we only
  // check the engine plumbing: Datalog applied after the existential part
  // produces a hom-equivalent result for a quick set.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "A(x) -> E(x,y), A(y)\n"
                                   "E(x,y) -> F(x,y)\n");
  Instance db = MustParseInstance(&u_, "A(a).");
  auto [datalog, existential] = SplitDatalog(rules);
  Instance combined = Chase(db, rules, {.exec = {.max_steps = 6}});
  Instance staged = ChaseThenDatalog(db, existential, datalog,
                                     {.exec = {.max_steps = 6}});
  EXPECT_TRUE(MapsInto(staged, combined) || MapsInto(combined, staged));
}

TEST_F(ChaseTest, MaxAtomBoundStopsRun) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z), E(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 100, .max_atoms = 50}});
  chase.Run();
  EXPECT_TRUE(chase.HitBounds());
  EXPECT_LE(chase.Result().size(), 60u);  // bound plus one step's slack
}

TEST_F(ChaseTest, ExhaustedBoundDoesNotCountPhantomStep) {
  // Regression: when max_atoms is already exhausted before any trigger of
  // the next step fires, no step must be counted and no duplicate entry
  // pushed onto the per-step atom counts.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");  // 2 atoms with ⊤
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 10, .max_atoms = 2}});
  chase.Run();
  EXPECT_EQ(chase.StepsExecuted(), 0u);
  EXPECT_TRUE(chase.HitBounds());
  EXPECT_FALSE(chase.LastStepTruncated());  // nothing fired at all
  EXPECT_FALSE(chase.Saturated());
  EXPECT_EQ(chase.TriggersFired(), 0u);
  EXPECT_EQ(chase.AtomCountAtStep(0), 2u);
  EXPECT_EQ(chase.Result().size(), 2u);
}

TEST_F(ChaseTest, PartiallyFiredStepIsMarkedTruncated) {
  // Step 1 has two triggers on the path a->b->c->d but the bound admits
  // only one: the step counts, and it is flagged as truncated.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> F(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c). E(c,d).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 10, .max_atoms = 5}});
  chase.Run();
  EXPECT_EQ(chase.StepsExecuted(), 1u);
  EXPECT_TRUE(chase.HitBounds());
  EXPECT_TRUE(chase.LastStepTruncated());
  EXPECT_EQ(chase.TriggersFired(), 1u);
  EXPECT_EQ(chase.AtomCountAtStep(1), 5u);
}

TEST_F(ChaseTest, CompleteRunIsNotTruncated) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> E(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c). E(c,d).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 32}});
  chase.Run();
  EXPECT_TRUE(chase.Saturated());
  EXPECT_FALSE(chase.HitBounds());
  EXPECT_FALSE(chase.LastStepTruncated());
}

TEST_F(ChaseTest, NaiveEnumerationFlagKeepsEngineBehavior) {
  // The escape hatch re-enumerates everything but must not change any
  // observable: the differential suite covers this exhaustively; here we
  // pin the basics on Example 1.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase naive(db, rules,
                       {.naive_enumeration = true, .exec = {.max_steps = 4}});
  naive.Run();
  // Same universe: run the delta engine on a twin universe so the labeled
  // nulls are invented with identical indices.
  Universe u2;
  RuleSet rules2 = MustParseRuleSet(&u2,
                                    "E(x,y) -> E(y,z)\n"
                                    "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db2 = MustParseInstance(&u2, "E(a,b).");
  ObliviousChase delta(db2, rules2, {.exec = {.max_steps = 4}});
  delta.Run();
  EXPECT_EQ(naive.TriggersFired(), delta.TriggersFired());
  EXPECT_EQ(naive.Result().size(), delta.Result().size());
  ASSERT_EQ(naive.Result().atoms().size(), delta.Result().atoms().size());
  for (std::size_t i = 0; i < naive.Result().atoms().size(); ++i) {
    EXPECT_EQ(naive.Result().atoms()[i], delta.Result().atoms()[i]);
  }
}

TEST_F(ChaseTest, ProvenanceTracksTriggers) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "[succ] E(x,y) -> E(y,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 2}});
  chase.Run();
  // Atom 0 is ⊤, atom 1 is E(a,b): database provenance.
  EXPECT_TRUE(chase.ProvenanceOf(1).database);
  // Atom 2 is the first derived edge.
  const auto& p = chase.ProvenanceOf(2);
  EXPECT_FALSE(p.database);
  EXPECT_EQ(p.step, 1);
  EXPECT_EQ(p.rule_index, 0u);
}

TEST_F(ChaseTest, ExplainRendersDerivationTree) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "[pq] P(x) -> Q(x)\n"
                                   "[qr] Q(x) -> R(x)\n");
  Instance db = MustParseInstance(&u_, "P(a).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 4}});
  chase.Run();
  PredicateId r = u_.FindPredicate("R");
  Term a = u_.FindConstant("a");
  std::string explanation = chase.Explain(Atom(r, {a}));
  // R(a) via qr from Q(a) via pq from database P(a).
  EXPECT_NE(explanation.find("R(a)"), std::string::npos);
  EXPECT_NE(explanation.find("rule qr"), std::string::npos);
  EXPECT_NE(explanation.find("Q(a)"), std::string::npos);
  EXPECT_NE(explanation.find("rule pq"), std::string::npos);
  EXPECT_NE(explanation.find("[database]"), std::string::npos);
}

TEST_F(ChaseTest, ExplainDepthLimit) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 5}});
  chase.Run();
  // The deepest edge: last atom.
  const Atom& deepest = chase.Result().atoms().back();
  std::string shallow = chase.Explain(deepest, 1);
  EXPECT_NE(shallow.find("..."), std::string::npos);
  std::string full = chase.Explain(deepest, 10);
  EXPECT_EQ(full.find("..."), std::string::npos);
  EXPECT_NE(full.find("[database]"), std::string::npos);
}

TEST_F(ChaseTest, ExplainUnknownAtom) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 1}});
  chase.Run();
  PredicateId e = u_.FindPredicate("E");
  Term a = u_.FindConstant("a");
  std::string text = chase.Explain(Atom(e, {a, a}));
  EXPECT_NE(text.find("NOT IN CHASE"), std::string::npos);
}

TEST_F(ChaseTest, SemiObliviousCollapsesNonFrontierVariables) {
  // Rule with a non-frontier body variable: E(x,y), E(x,z) -> E(y,w).
  // The oblivious chase fires once per (x,y,z) triple; the semi-oblivious
  // chase once per frontier image (y).
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(x,z) -> F(y,w)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(a,c). E(a,d).");
  PredicateId f = u_.FindPredicate("F");

  ObliviousChase oblivious(db, rules, {.exec = {.max_steps = 2}});
  oblivious.Run();
  ObliviousChase semi(db, rules,
                      {.variant = ChaseVariant::kSemiOblivious,
                       .exec = {.max_steps = 2}});
  semi.Run();
  // Oblivious: 3 choices of y × 3 of z = 9 triggers; semi: 3 frontier
  // images.
  EXPECT_EQ(oblivious.Result().AtomsWith(f).size(), 9u);
  EXPECT_EQ(semi.Result().AtomsWith(f).size(), 3u);
  // Same universal model up to homomorphic equivalence.
  EXPECT_TRUE(MapsInto(semi.Result(), oblivious.Result()));
  EXPECT_TRUE(MapsInto(oblivious.Result(), semi.Result()));
}

TEST_F(ChaseTest, SemiObliviousStillFiresDistinctFrontiers) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> F(y,w)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(c,d).");
  ObliviousChase semi(db, rules,
                      {.variant = ChaseVariant::kSemiOblivious,
                       .exec = {.max_steps = 2}});
  semi.Run();
  PredicateId f = u_.FindPredicate("F");
  EXPECT_EQ(semi.Result().AtomsWith(f).size(), 2u);
}

TEST_F(ChaseTest, AddBaseFactsResumesAfterSaturation) {
  // Saturate a Datalog transitive closure, insert a bridging edge, resume:
  // only the new closure atoms are derived, and the result matches a
  // from-scratch chase of the extended instance exactly (Datalog invents
  // no nulls, so plain atom-set equality holds).
  const char* rules_text = "E(x,y), E(y,z) -> E(x,z)";
  RuleSet rules = MustParseRuleSet(&u_, rules_text);
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c). E(d,e).");
  ObliviousChase chase(db, rules, {});
  chase.Run();
  ASSERT_TRUE(chase.Saturated());
  const std::size_t atoms_before = chase.Result().size();
  const std::size_t triggers_before = chase.TriggersFired();

  PredicateId e = u_.FindPredicate("E");
  Term c = u_.InternConstant("c");
  Term d = u_.InternConstant("d");
  EXPECT_EQ(chase.AddBaseFacts({Atom(e, {c, d})}), 1u);
  EXPECT_FALSE(chase.Saturated());
  chase.Run();
  EXPECT_TRUE(chase.Saturated());
  EXPECT_GT(chase.Result().size(), atoms_before + 1);
  EXPECT_GT(chase.TriggersFired(), triggers_before);

  Instance extended = MustParseInstance(
      &u_, "E(a,b). E(b,c). E(d,e). E(c,d).");
  ObliviousChase scratch(extended, rules, {});
  scratch.Run();
  ASSERT_TRUE(scratch.Saturated());
  EXPECT_EQ(chase.Result().size(), scratch.Result().size());
  for (const Atom& atom : scratch.Result().atoms()) {
    EXPECT_TRUE(chase.Result().Contains(atom));
  }
  EXPECT_EQ(chase.CanonicalAtoms(), scratch.CanonicalAtoms());
}

TEST_F(ChaseTest, AddBaseFactsSkipsKnownAtoms) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> E(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ObliviousChase chase(db, rules, {});
  chase.Run();
  ASSERT_TRUE(chase.Saturated());
  PredicateId e = u_.FindPredicate("E");
  Term a = u_.InternConstant("a");
  Term b = u_.InternConstant("b");
  Term c = u_.InternConstant("c");
  // E(a,b) is a database atom, E(a,c) was derived: both add nothing, and
  // the chase stays saturated.
  EXPECT_EQ(chase.AddBaseFacts({Atom(e, {a, b}), Atom(e, {a, c})}), 0u);
  EXPECT_TRUE(chase.Saturated());
}

TEST_F(ChaseTest, AddBaseFactsWithExistentialRules) {
  // Resume across null-inventing rules: the incremental result must be
  // isomorphic (CanonicalAtoms-equal) to the from-scratch chase — null
  // *numbering* differs, which plain atom equality would reject.
  const char* rules_text =
      "Student(s) -> Advises(p,s), Prof(p)\n"
      "Advises(p,s), Advises(q,s) -> Colleague(p,q)\n";
  RuleSet rules = MustParseRuleSet(&u_, rules_text);
  Instance db = MustParseInstance(&u_, "Student(alice).");
  ObliviousChase chase(db, rules, {});
  chase.Run();
  ASSERT_TRUE(chase.Saturated());

  PredicateId student = u_.FindPredicate("Student");
  Term bob = u_.InternConstant("bob");
  EXPECT_EQ(chase.AddBaseFacts({Atom(student, {bob})}), 1u);
  chase.Run();
  ASSERT_TRUE(chase.Saturated());

  Instance extended = MustParseInstance(&u_, "Student(alice). Student(bob).");
  ObliviousChase scratch(extended, rules, {});
  scratch.Run();
  ASSERT_TRUE(scratch.Saturated());
  EXPECT_EQ(chase.CanonicalAtoms(), scratch.CanonicalAtoms());
}

TEST_F(ChaseTest, CanonicalAtomsInvariantUnderDatabaseOrder) {
  // The same database parsed in two different orders chases to different
  // null numberings; CanonicalAtoms erases exactly that difference.
  RuleSet rules1 = MustParseRuleSet(&u_, "P(x,y) -> Q(y,z)");
  Instance db1 = MustParseInstance(&u_, "P(a,b). P(b,c).");
  ObliviousChase chase1(db1, rules1, {});
  chase1.Run();

  Universe u2;
  RuleSet rules2 = MustParseRuleSet(&u2, "P(x,y) -> Q(y,z)");
  Instance db2 = MustParseInstance(&u2, "P(b,c). P(a,b).");
  ObliviousChase chase2(db2, rules2, {});
  chase2.Run();

  EXPECT_EQ(chase1.CanonicalAtoms(), chase2.CanonicalAtoms());
}

TEST_F(ChaseTest, ChaseOfTopOnlyInstance) {
  // Ch(R) := Ch({⊤}, R) — the Section 4.1 normal form.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "true -> E(x,y)\n"
                                   "E(x,y) -> E(y,z)\n");
  Instance db(&u_);
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 4}});
  chase.Run();
  PredicateId e = u_.FindPredicate("E");
  EXPECT_EQ(chase.Result().AtomsWith(e).size(), 4u);
}

}  // namespace
}  // namespace bddfc
