// The storage differential suite: the RowStore and ColumnStore backends
// must answer every FactStore query identically — same atoms() sequence,
// same index-lookup results, same delta views, same active domain — and
// produce bit-identical chase transcripts (atoms, trigger order,
// provenance, fresh-null numbering) across all three chase variants and
// thread counts. Plus targeted regressions: the debug-build IndexView
// generation guard, the bulk-AddAtoms Restrict/Map/DisjointUnion paths,
// and the column store's lazy run-merge discipline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "chase/chase.h"
#include "generators/workload.h"
#include "logic/instance.h"
#include "logic/parser.h"
#include "storage/column_store.h"
#include "storage/fact_store.h"
#include "storage/row_store.h"

namespace bddfc {
namespace {

constexpr StorageKind kBackends[] = {StorageKind::kRow, StorageKind::kColumn};

std::vector<std::uint32_t> Materialize(const IndexView& view) {
  return std::vector<std::uint32_t>(view.begin(), view.end());
}

// Walks a SortedRunsView checking the per-run contract — strictly
// ascending (term, global) within every run — and returns the flattened
// (term, global) multiset in sorted order, so two views with different run
// structures (column store: O(log n) native runs; row store: one
// materialized run) can be compared for content equality.
std::vector<std::pair<Term, std::uint32_t>> CheckAndFlattenRuns(
    const SortedRunsView& runs) {
  std::vector<std::pair<Term, std::uint32_t>> flat;
  flat.reserve(runs.size());
  for (std::size_t r = 0; r < runs.num_runs(); ++r) {
    for (std::uint32_t k = runs.run_begin(r); k < runs.run_end(r); ++k) {
      if (k > runs.run_begin(r)) {
        const bool ascending =
            runs.term(k - 1) < runs.term(k) ||
            (runs.term(k - 1) == runs.term(k) &&
             runs.global(k - 1) < runs.global(k));
        EXPECT_TRUE(ascending) << "run " << r << " entry " << k;
      }
      flat.push_back({runs.term(k), runs.global(k)});
    }
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

// The SortedRuns leg of the differential: both backends must expose the
// same (term, global) content at every (pred, pos), covering every atom of
// the predicate exactly once and agreeing with the point-lookup index.
void ExpectSortedRunsAgree(const Instance& row, const Instance& column) {
  for (PredicateId pred = 0; pred < row.universe()->num_predicates();
       ++pred) {
    const int arity = row.universe()->ArityOf(pred);
    for (int pos = 0; pos < arity; ++pos) {
      const auto row_flat =
          CheckAndFlattenRuns(row.store().SortedRuns(pred, pos));
      const auto column_flat =
          CheckAndFlattenRuns(column.store().SortedRuns(pred, pos));
      EXPECT_EQ(row_flat, column_flat) << "pred " << pred << " pos " << pos;
      // Exactly the predicate's atoms, each exactly once, with the term
      // actually stored at the viewed position.
      std::vector<std::uint32_t> globals;
      globals.reserve(row_flat.size());
      for (const auto& [t, g] : row_flat) {
        EXPECT_EQ(row.atoms()[g].arg(static_cast<std::size_t>(pos)), t);
        globals.push_back(g);
      }
      std::sort(globals.begin(), globals.end());
      EXPECT_EQ(globals, row.AtomsWith(pred))
          << "pred " << pred << " pos " << pos;
      // Consistency with the point lookup: the runs' equal-term entries
      // are AtomsWith(pred, pos, t) for every active-domain term.
      for (Term t : row.ActiveDomain()) {
        std::vector<std::uint32_t> expected =
            Materialize(row.AtomsWith(pred, pos, t));
        std::vector<std::uint32_t> from_runs;
        for (const auto& [term, g] : row_flat) {
          if (term == t) from_runs.push_back(g);
        }
        EXPECT_EQ(from_runs, expected) << "pred " << pred << " pos " << pos;
      }
    }
    // A position beyond the arity is an empty view on every backend.
    EXPECT_TRUE(row.store().SortedRuns(pred, arity).empty());
    EXPECT_TRUE(column.store().SortedRuns(pred, arity).empty());
  }
}

// Every query of the FactStore contract, cross-checked between two
// instances that were built from the same atom sequence.
void ExpectStoresAgree(const Instance& row, const Instance& column) {
  ASSERT_EQ(row.size(), column.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    ASSERT_EQ(row.atoms()[i], column.atoms()[i]) << "atom " << i;
  }
  EXPECT_EQ(row.ActiveDomain(), column.ActiveDomain());
  for (Term t : row.ActiveDomain()) {
    EXPECT_TRUE(column.InActiveDomain(t));
  }
  // Membership, positions, and every per-(pred, pos, term) lookup over the
  // active domain plus one absent term.
  std::vector<Term> probes = row.ActiveDomain();
  probes.push_back(Term::MakeConstant(0x2fffffu));  // never interned
  const std::uint32_t n = static_cast<std::uint32_t>(row.size());
  for (const Atom& a : row.atoms()) {
    EXPECT_TRUE(column.Contains(a));
    EXPECT_EQ(row.IndexOf(a), column.IndexOf(a));
  }
  for (PredicateId pred = 0; pred < row.universe()->num_predicates();
       ++pred) {
    EXPECT_EQ(row.AtomsWith(pred), column.AtomsWith(pred)) << "pred " << pred;
    const int arity = row.universe()->ArityOf(pred);
    for (int pos = 0; pos < arity; ++pos) {
      for (Term t : probes) {
        EXPECT_EQ(Materialize(row.AtomsWith(pred, pos, t)),
                  Materialize(column.AtomsWith(pred, pos, t)))
            << "pred " << pred << " pos " << pos;
        // Delta views over a few representative ranges, including empty
        // and partial windows.
        const std::uint32_t ranges[][2] = {
            {0, n}, {0, n / 2}, {n / 2, n}, {n / 3, (2 * n) / 3}, {n, n}};
        for (const auto& range : ranges) {
          EXPECT_EQ(
              Materialize(row.AtomsWithIn(pred, pos, t, range[0], range[1])),
              Materialize(
                  column.AtomsWithIn(pred, pos, t, range[0], range[1])))
              << "pred " << pred << " pos " << pos << " range ["
              << range[0] << "," << range[1] << ")";
        }
      }
    }
    for (std::uint32_t lo = 0; lo <= n; lo += n / 3 + 1) {
      EXPECT_EQ(Materialize(row.AtomsWithIn(pred, lo, n)),
                Materialize(column.AtomsWithIn(pred, lo, n)));
    }
  }
  ExpectSortedRunsAgree(row, column);
}

TEST(StorageDifferentialTest, HandWrittenWorkload) {
  for (bool bulk : {false, true}) {
    SCOPED_TRACE(bulk ? "bulk" : "atomwise");
    Universe u;
    PredicateId e = u.InternPredicate("E", 2);
    PredicateId p = u.InternPredicate("P", 1);
    Term a = u.InternConstant("a"), b = u.InternConstant("b"),
         c = u.InternConstant("c");
    std::vector<Atom> atoms = {Atom(e, {a, b}), Atom(e, {b, c}),
                               Atom(e, {a, c}), Atom(e, {c, a}),
                               Atom(p, {a}),    Atom(p, {c}),
                               Atom(e, {a, b})};  // duplicate
    Instance row(&u, StorageKind::kRow);
    Instance column(&u, StorageKind::kColumn);
    if (bulk) {
      row.AddAtoms(atoms);
      column.AddAtoms(atoms);
    } else {
      for (const Atom& atom : atoms) {
        EXPECT_EQ(row.AddAtom(atom), column.AddAtom(atom));
      }
    }
    EXPECT_EQ(row.size(), 7u);  // ⊤ + 6 distinct
    ExpectStoresAgree(row, column);
  }
}

TEST(StorageDifferentialTest, RandomizedGeneratorWorkloads) {
  generators::RuleSetSpec spec;
  spec.num_predicates = 4;
  spec.num_rules = 4;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Universe u;
    Rng rng(seed);
    RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
    Instance row = generators::RandomInstance(&u, rules, /*num_constants=*/9,
                                              /*num_atoms=*/60, &rng);
    Instance column(row, StorageKind::kColumn);
    EXPECT_EQ(row.storage(), StorageKind::kRow);
    EXPECT_EQ(column.storage(), StorageKind::kColumn);
    ExpectStoresAgree(row, column);
  }
}

TEST(StorageDifferentialTest, InterleavedInsertAndLookup) {
  // Interleaving queries with single-atom inserts forces the column store
  // through many seal/merge cycles; results must stay identical at every
  // point, not just at the end.
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Rng rng(7);
  Instance row(&u, StorageKind::kRow);
  Instance column(&u, StorageKind::kColumn);
  std::vector<Term> terms;
  for (int i = 0; i < 12; ++i) {
    terms.push_back(u.InternConstant("t" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    Term x = terms[rng.Below(12)];
    Term y = terms[rng.Below(12)];
    Atom atom(e, {x, y});
    EXPECT_EQ(row.AddAtom(atom), column.AddAtom(atom));
    Term probe = terms[rng.Below(12)];
    const int pos = static_cast<int>(rng.Below(2));
    EXPECT_EQ(Materialize(row.AtomsWith(e, pos, probe)),
              Materialize(column.AtomsWith(e, pos, probe)))
        << "after insert " << i;
  }
  ExpectStoresAgree(row, column);
}

TEST(StorageDifferentialTest, WideArityPositions) {
  // Positions beyond 255 exercised on both backends (the historical packed
  // pos-key regression, now part of the shared contract).
  Universe u;
  PredicateId wide = u.InternPredicate("W", 258);
  Term a = u.InternConstant("a"), b = u.InternConstant("b");
  std::vector<Term> args(258, a);
  args[257] = b;
  Instance row(&u, StorageKind::kRow);
  Instance column(&u, StorageKind::kColumn);
  row.AddAtom(Atom(wide, args));
  column.AddAtom(Atom(wide, args));
  for (const Instance* inst : {&row, &column}) {
    ASSERT_EQ(inst->AtomsWith(wide, 257, b).size(), 1u);
    EXPECT_EQ(inst->AtomsWith(wide, 257, b)[0], 1u);
    EXPECT_TRUE(inst->AtomsWith(wide, 257, a).empty());
    EXPECT_EQ(inst->AtomsWith(wide, 0, a).size(), 1u);
  }
}

// --- Chase transcripts ------------------------------------------------------
// Bit-identical chase runs on both backends: the full differential
// observable set (atoms, order, steps, provenance, null numbering), all
// three variants, serial and parallel.

struct EngineRun {
  Universe universe;
  std::unique_ptr<ObliviousChase> chase;
};

void RunChase(std::uint64_t seed, const generators::RuleSetSpec& spec,
              ChaseOptions options, EngineRun* run) {
  Rng rng(seed);
  RuleSet rules = generators::RandomBinaryRuleSet(&run->universe, spec, &rng);
  Instance db = generators::RandomInstance(&run->universe, rules,
                                           /*num_constants=*/5,
                                           /*num_atoms=*/8, &rng);
  run->chase = std::make_unique<ObliviousChase>(db, std::move(rules),
                                                options);
  run->chase->Run();
}

void ExpectTranscriptsIdentical(const EngineRun& a, const EngineRun& b) {
  const ObliviousChase& x = *a.chase;
  const ObliviousChase& y = *b.chase;
  EXPECT_EQ(x.Saturated(), y.Saturated());
  EXPECT_EQ(x.HitBounds(), y.HitBounds());
  ASSERT_EQ(x.StepsExecuted(), y.StepsExecuted());
  EXPECT_EQ(x.TriggersFired(), y.TriggersFired());
  for (std::size_t k = 0; k <= x.StepsExecuted(); ++k) {
    EXPECT_EQ(x.AtomCountAtStep(k), y.AtomCountAtStep(k)) << "step " << k;
  }
  ASSERT_EQ(x.Result().size(), y.Result().size());
  ASSERT_EQ(a.universe.num_nulls(), b.universe.num_nulls());
  for (std::size_t i = 0; i < x.Result().size(); ++i) {
    ASSERT_EQ(x.Result().atoms()[i], y.Result().atoms()[i]) << "atom " << i;
    EXPECT_EQ(x.StepOfAtom(i), y.StepOfAtom(i));
    const auto& px = x.ProvenanceOf(i);
    const auto& py = y.ProvenanceOf(i);
    EXPECT_EQ(px.database, py.database);
    EXPECT_EQ(px.step, py.step);
    EXPECT_EQ(px.rule_index, py.rule_index);
    EXPECT_EQ(px.trigger.entries(), py.trigger.entries());
  }
}

TEST(StorageDifferentialTest, ChaseTranscriptsAllVariantsAndThreads) {
  constexpr ChaseVariant kVariants[] = {ChaseVariant::kOblivious,
                                        ChaseVariant::kSemiOblivious,
                                        ChaseVariant::kRestricted};
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 4;
  spec.max_body_atoms = 3;
  spec.datalog_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    for (ChaseVariant variant : kVariants) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " variant " +
                     std::to_string(static_cast<int>(variant)) + " threads " +
                     std::to_string(threads));
        ChaseOptions options{.variant = variant,
                             .exec = {.max_steps = 4, .max_atoms = 4000}};
        options.exec.num_threads = threads;
        EngineRun row, column;
        options.exec.storage = StorageKind::kRow;
        RunChase(seed, spec, options, &row);
        options.exec.storage = StorageKind::kColumn;
        RunChase(seed, spec, options, &column);
        EXPECT_EQ(row.chase->Result().storage(), StorageKind::kRow);
        EXPECT_EQ(column.chase->Result().storage(), StorageKind::kColumn);
        ExpectTranscriptsIdentical(row, column);
      }
    }
  }
}

// --- Bulk construction paths ------------------------------------------------
// Restrict/Map/DisjointUnion now route through one bulk AddAtoms (deferred
// index construction); the results must be indistinguishable from the
// historical atom-by-atom construction on either backend.

TEST(StorageBulkOpsTest, RestrictMapUnionMatchAtomwiseConstruction) {
  for (StorageKind kind : kBackends) {
    SCOPED_TRACE(ToString(kind));
    Universe u;
    PredicateId e = u.InternPredicate("E", 2);
    PredicateId p = u.InternPredicate("P", 1);
    Term a = u.InternConstant("a"), b = u.InternConstant("b"),
         c = u.InternConstant("c");
    Instance inst(&u, kind);
    inst.AddAtoms({Atom(e, {a, b}), Atom(e, {b, c}), Atom(p, {a}),
                   Atom(p, {b})});

    // Restrict.
    Instance restricted = inst.Restrict({p});
    Instance restricted_ref(&u, kind);
    for (const Atom& atom : inst.atoms()) {
      if (atom.pred() == p) restricted_ref.AddAtom(atom);
    }
    ASSERT_EQ(restricted.atoms(), restricted_ref.atoms());
    EXPECT_EQ(restricted.ActiveDomain(), restricted_ref.ActiveDomain());
    EXPECT_EQ(restricted.AtomsWith(p), restricted_ref.AtomsWith(p));
    EXPECT_EQ(restricted.storage(), kind);

    // Map with a non-injective substitution (bulk dedup must kick in).
    Substitution collapse;
    collapse.Bind(b, a);
    Instance mapped = inst.Map(collapse);
    Instance mapped_ref(&u, kind);
    for (const Atom& atom : inst.atoms()) {
      mapped_ref.AddAtom(collapse.Apply(atom));
    }
    ASSERT_EQ(mapped.atoms(), mapped_ref.atoms());
    EXPECT_EQ(mapped.IndexOf(Atom(p, {a})), mapped_ref.IndexOf(Atom(p, {a})));

    // DisjointUnion: null renaming and the atom sequence must match the
    // historical construction (checked against a twin universe so the
    // fresh-null counters line up).
    Universe u2;
    PredicateId e2 = u2.InternPredicate("E", 2);
    PredicateId p2 = u2.InternPredicate("P", 1);
    Term a2 = u2.InternConstant("a"), b2 = u2.InternConstant("b"),
         c2 = u2.InternConstant("c");
    auto build = [&](Universe* uu, PredicateId ee, PredicateId pp, Term aa,
                     Term bb, Term cc) {
      Instance left(uu, kind);
      left.AddAtoms({Atom(ee, {aa, bb}), Atom(pp, {aa})});
      Instance right(uu, kind);
      right.AddAtoms({Atom(ee, {bb, cc}), Atom(pp, {cc})});
      return Instance::DisjointUnion(left, right);
    };
    Instance joined = build(&u, e, p, a, b, c);
    Instance joined_ref = build(&u2, e2, p2, a2, b2, c2);
    ASSERT_EQ(joined.size(), joined_ref.size());
    for (std::size_t i = 0; i < joined.size(); ++i) {
      EXPECT_EQ(joined.atoms()[i], joined_ref.atoms()[i]) << "atom " << i;
    }
  }
}

// --- Column-store internals -------------------------------------------------

TEST(ColumnStoreTest, LazyMergeKeepsRunCountLogarithmic) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Instance inst(&u, StorageKind::kColumn);
  const auto& store = static_cast<const ColumnStore&>(inst.store());
  Rng rng(3);
  // Many small batches, each sealed by the interleaved lookup: the merge
  // discipline must keep the run count O(log n), not one run per batch.
  for (int batch = 0; batch < 64; ++batch) {
    std::vector<Atom> atoms;
    for (int i = 0; i < 16; ++i) {
      atoms.push_back(
          Atom(e, {Term::MakeConstant(rng.Below(5000)),
                   Term::MakeConstant(rng.Below(5000))}));
    }
    inst.AddAtoms(atoms);
    (void)inst.AtomsWith(e, 0, atoms[0].arg(0));  // forces a seal
    EXPECT_LE(store.NumRuns(e), 11u) << "batch " << batch;
  }
  EXPECT_GE(inst.size(), 512u);
}

TEST(ColumnStoreTest, PerPredicateIndexReferenceSurvivesNewPredicates) {
  // AtomsWith(pred) hands out a reference to the predicate's row index;
  // it must stay valid when later insertions introduce higher predicate
  // ids (the per-predicate tables are heap-stable, matching the row
  // store's node-based map).
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a"), b = u.InternConstant("b");
  Instance inst(&u, StorageKind::kColumn);
  inst.AddAtom(Atom(e, {a, b}));
  const std::vector<std::uint32_t>& rows = inst.AtomsWith(e);
  ASSERT_EQ(rows.size(), 1u);
  for (int p = 0; p < 40; ++p) {
    PredicateId fresh = u.InternPredicate("F" + std::to_string(p), 1);
    inst.AddAtom(Atom(fresh, {a}));
  }
  inst.AddAtom(Atom(e, {b, a}));
  EXPECT_EQ(rows.size(), 2u);  // same reference, grown in place
  EXPECT_EQ(rows[0], 1u);
}

TEST(ColumnStoreTest, EmptyAndAbsentPredicates) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  PredicateId lonely = u.InternPredicate("L", 1);
  Instance inst(&u, StorageKind::kColumn);
  Term a = u.InternConstant("a");
  inst.AddAtom(Atom(e, {a, a}));
  EXPECT_TRUE(inst.AtomsWith(lonely).empty());
  EXPECT_TRUE(inst.AtomsWith(lonely, 0, a).empty());
  EXPECT_TRUE(inst.AtomsWithIn(lonely, 0, a, 0, 10).empty());
  EXPECT_FALSE(inst.Contains(Atom(lonely, {a})));
  EXPECT_EQ(inst.IndexOf(Atom(lonely, {a})), SIZE_MAX);
  // The implicit ⊤ is a nullary atom: position lookups must stay empty.
  EXPECT_TRUE(inst.AtomsWith(u.top(), 0, a).empty());
  EXPECT_EQ(inst.AtomsWith(u.top()).size(), 1u);
}

// --- SortedRuns lifetime ----------------------------------------------------

TEST(SortedRunsTest, AbsentPredicateAndNullaryPositionsAreEmpty) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  PredicateId lonely = u.InternPredicate("L", 1);
  for (StorageKind kind : kBackends) {
    SCOPED_TRACE(ToString(kind));
    Instance inst(&u, kind);
    Term a = u.InternConstant("a");
    inst.AddAtom(Atom(e, {a, a}));
    EXPECT_TRUE(inst.store().SortedRuns(lonely, 0).empty());
    EXPECT_TRUE(inst.store().SortedRuns(e, 2).empty());
    EXPECT_TRUE(inst.store().SortedRuns(u.top(), 0).empty());
    EXPECT_EQ(inst.store().SortedRuns(e, 0).size(), 1u);
  }
}

TEST(SortedRunsTest, RowStoreSnapshotSurvivesMutationAndRebuilds) {
  // The row store's SortedRuns hands out a snapshot that shares ownership
  // with the cache: it stays dereferenceable (just stale) across mutation,
  // and a fresh call after growth sees the new atoms.
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a"), b = u.InternConstant("b"),
       c = u.InternConstant("c");
  Instance inst(&u, StorageKind::kRow);
  inst.AddAtom(Atom(e, {b, a}));
  inst.AddAtom(Atom(e, {a, c}));
  SortedRunsView before = inst.store().SortedRuns(e, 0);
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before.term(0), a);  // sorted by term, not insertion order
  EXPECT_EQ(before.term(1), b);
  inst.AddAtom(Atom(e, {a, b}));
  // The old snapshot is stale but safe.
  EXPECT_EQ(before.size(), 2u);
  EXPECT_EQ(before.term(0), a);
  // A fresh view reflects the grown predicate.
  SortedRunsView after = inst.store().SortedRuns(e, 0);
  ASSERT_EQ(after.size(), 3u);
  // Atom indices: ⊤ = 0, E(b,a) = 1, E(a,c) = 2, E(a,b) = 3; equal-term
  // entries ascend by global index.
  EXPECT_EQ(after.term(0), a);
  EXPECT_EQ(after.global(0), 2u);
  EXPECT_EQ(after.term(1), a);
  EXPECT_EQ(after.global(1), 3u);
  EXPECT_EQ(after.term(2), b);
}

// --- Clone equivalence -------------------------------------------------------
// FactStore::Clone() (reached through the Instance copy constructor — the
// path serve/ snapshots take) must preserve atom order, index answers and
// sorted-run content on both backends, and the copy must be fully
// independent of the original afterwards.

TEST(Storage, CloneEquivalenceAndIndependence) {
  for (StorageKind kind : kBackends) {
    SCOPED_TRACE(ToString(kind));
    Universe u;
    PredicateId e = u.InternPredicate("E", 2);
    PredicateId p = u.InternPredicate("P", 1);
    Term a = u.InternConstant("a"), b = u.InternConstant("b"),
         c = u.InternConstant("c");
    Instance inst(&u, kind);
    inst.AddAtom(Atom(e, {a, b}));
    inst.AddAtom(Atom(e, {b, c}));
    inst.AddAtom(Atom(p, {c}));
    inst.AddAtom(Atom(e, {a, c}));

    Instance copy(inst);
    EXPECT_EQ(copy.store().kind(), kind);
    ASSERT_EQ(copy.size(), inst.size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      EXPECT_EQ(copy.atoms()[i], inst.atoms()[i]) << "atom " << i;
    }
    EXPECT_EQ(Materialize(copy.AtomsWith(e, 0, a)),
              Materialize(inst.AtomsWith(e, 0, a)));
    EXPECT_EQ(Materialize(copy.AtomsWith(e, 1, c)),
              Materialize(inst.AtomsWith(e, 1, c)));
    EXPECT_EQ(CheckAndFlattenRuns(copy.store().SortedRuns(e, 0)),
              CheckAndFlattenRuns(inst.store().SortedRuns(e, 0)));

    // Independence both ways: growing one side is invisible to the other.
    const std::size_t size_before = inst.size();
    copy.AddAtom(Atom(e, {c, a}));
    EXPECT_EQ(inst.size(), size_before);
    EXPECT_EQ(Materialize(inst.AtomsWith(e, 0, c)).size(), 0u);
    inst.AddAtom(Atom(p, {a}));
    EXPECT_EQ(Materialize(copy.AtomsWith(p, 0, a)).size(), 0u);
    EXPECT_EQ(Materialize(copy.AtomsWith(e, 0, c)).size(), 1u);
  }
}

// Cross-backend clone: Instance(other, storage) re-ingests into the target
// backend; content must survive the conversion in both directions.
TEST(Storage, CloneAcrossBackendsPreservesContent) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a"), b = u.InternConstant("b");
  for (StorageKind from : kBackends) {
    for (StorageKind to : kBackends) {
      SCOPED_TRACE(ToString(from) + std::string("->") + ToString(to));
      Instance inst(&u, from);
      inst.AddAtom(Atom(e, {a, b}));
      inst.AddAtom(Atom(e, {b, a}));
      Instance converted(inst, to);
      EXPECT_EQ(converted.store().kind(), to);
      ASSERT_EQ(converted.size(), inst.size());
      for (std::size_t i = 0; i < inst.size(); ++i) {
        EXPECT_EQ(converted.atoms()[i], inst.atoms()[i]);
      }
      EXPECT_EQ(Materialize(converted.AtomsWith(e, 0, a)),
                Materialize(inst.AtomsWith(e, 0, a)));
    }
  }
}

// --- IndexView generation guard ---------------------------------------------
// Borrowed views are invalidated by mutation; in debug builds the captured
// generation counter turns a deref of a stale view into a CHECK failure.

#ifndef NDEBUG
using StorageDeathTest = ::testing::Test;

TEST(StorageDeathTest, StaleBorrowedViewDiesOnDeref) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  for (StorageKind kind : kBackends) {
    SCOPED_TRACE(ToString(kind));
    Universe u;
    PredicateId e = u.InternPredicate("E", 2);
    Term a = u.InternConstant("a"), b = u.InternConstant("b");
    Instance inst(&u, kind);
    inst.AddAtom(Atom(e, {a, b}));
    IndexView view = inst.AtomsWithIn(e, 0, static_cast<std::uint32_t>(
                                                inst.size()));
    EXPECT_EQ(view.size(), 1u);  // valid while the store is unchanged
    inst.AddAtom(Atom(e, {b, a}));
    EXPECT_DEATH((void)view.size(), "CHECK failed");
  }
}

TEST(StorageDeathTest, OwnedViewsSurviveMutation) {
  // Owning views (column-store point lookups) hold a private buffer; they
  // must stay dereferenceable across mutations.
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a"), b = u.InternConstant("b");
  Instance inst(&u, StorageKind::kColumn);
  inst.AddAtom(Atom(e, {a, b}));
  IndexView view = inst.AtomsWith(e, 0, a);
  ASSERT_EQ(view.size(), 1u);
  inst.AddAtom(Atom(e, {b, a}));
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 1u);
}
#endif  // NDEBUG

}  // namespace
}  // namespace bddfc
