// The serve subsystem: epoch snapshots (SnapshotManager), sessions, the
// Server request loop end to end, and the concurrency differential the
// server's correctness claim rests on — answers computed at a pinned epoch
// equal the answers of a one-shot chase of exactly that epoch's base
// facts, with readers racing the writer. The concurrency suites run under
// TSan in CI (see .github/workflows/ci.yml).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/reasoner.h"
#include "base/json.h"
#include "gtest/gtest.h"
#include "logic/parser.h"
#include "obs/obs.h"
#include "serve/server.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bddfc {
namespace serve {
namespace {

// Semi-oblivious everywhere: its incremental chase derives the same atom
// set as a from-scratch chase of the union, making per-epoch answers
// exactly reproducible by a one-shot oracle.
ReasonerOptions TestReasonerOptions(
    StorageKind storage = StorageKind::kRow) {
  ReasonerOptions options;
  options.strategy = AnswerStrategy::kMaterialize;
  options.chase.variant = ChaseVariant::kSemiOblivious;
  options.chase.exec.storage = storage;
  return options;
}

std::string ChainFacts(int from, int to) {
  std::string text;
  for (int i = from; i < to; ++i) {
    text += "E(c" + std::to_string(i) + ",c" + std::to_string(i + 1) + "). ";
  }
  return text;
}

std::vector<AnswerTuple> Sorted(std::vector<AnswerTuple> answers) {
  std::sort(answers.begin(), answers.end());
  return answers;
}

constexpr char kRules[] =
    "E(x,y) -> R(x,y)\n"
    "E(x,y), E(y,z) -> T(x,z)\n"
    "T(x,y) -> S(x,w)\n";

// --- SnapshotManager ---------------------------------------------------------

TEST(SnapshotManager, PublishesEpochZeroOnConstruction) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  SnapshotManager manager(base, rules, TestReasonerOptions());

  auto snap = manager.Pin();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->base_atoms, base.size());
  EXPECT_GT(snap->atoms, base.size());  // the chase derived something
  EXPECT_TRUE(snap->saturated);
  EXPECT_FALSE(snap->hit_bounds);
  ASSERT_NE(snap->materialization, nullptr);
  EXPECT_EQ(snap->materialization->size(), snap->atoms);
}

TEST(SnapshotManager, ApplyFactsAdvancesTheEpoch) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  Instance batch = MustParseInstance(&universe, ChainFacts(4, 6));
  const std::vector<Atom> facts(batch.atoms().begin() + 1,
                                batch.atoms().end());
  SnapshotManager manager(base, rules, TestReasonerOptions());

  auto before = manager.Pin();
  auto result = manager.ApplyFacts(facts);
  EXPECT_EQ(result.added, facts.size());
  EXPECT_EQ(result.snapshot->epoch, 1u);
  EXPECT_GT(result.snapshot->atoms, before->atoms);
  EXPECT_EQ(manager.Pin()->epoch, 1u);
  // The pinned old snapshot is untouched by the publish.
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_LT(before->atoms, result.snapshot->atoms);
}

TEST(SnapshotManager, DuplicateBatchPublishesNothing) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  SnapshotManager manager(base, rules, TestReasonerOptions());

  const std::vector<Atom> dup(base.atoms().begin() + 1, base.atoms().end());
  auto result = manager.ApplyFacts(dup);
  EXPECT_EQ(result.added, 0u);
  EXPECT_EQ(result.snapshot->epoch, 0u);
  EXPECT_EQ(manager.Pin()->epoch, 0u);
}

TEST(SnapshotManager, PinnedSnapshotKeepsAnsweringItsEpoch) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  Instance batch = MustParseInstance(&universe, ChainFacts(4, 6));
  const std::vector<Atom> facts(batch.atoms().begin() + 1,
                                batch.atoms().end());
  const Cq query = MustParseCq(&universe, "?(x,y) :- T(x,y)");
  SnapshotManager manager(base, rules, TestReasonerOptions());
  const PreparedQuery plan = manager.reasoner().PrepareDetached(query);

  auto old_snap = manager.Pin();
  const auto old_answers = Sorted(plan.AllOn(*old_snap->materialization));
  manager.ApplyFacts(facts);

  // The old pin is frozen at epoch 0; the new pin sees more tuples.
  EXPECT_EQ(Sorted(plan.AllOn(*old_snap->materialization)), old_answers);
  auto new_snap = manager.Pin();
  EXPECT_EQ(new_snap->epoch, 1u);
  EXPECT_GT(plan.AllOn(*new_snap->materialization).size(),
            old_answers.size());
}

// --- Sessions ----------------------------------------------------------------

TEST(SessionRegistry, OpensClosesAndCounts) {
  SessionRegistry registry;
  EXPECT_EQ(registry.active(), 0u);
  EXPECT_EQ(registry.opened_total(), 0u);
  auto a = registry.Open();
  auto b = registry.Open();
  EXPECT_EQ(a->id(), 1u);
  EXPECT_EQ(b->id(), 2u);
  EXPECT_EQ(registry.active(), 2u);
  EXPECT_EQ(registry.opened_total(), 2u);
  registry.Close(a->id());
  EXPECT_EQ(registry.active(), 1u);
  EXPECT_EQ(registry.opened_total(), 2u);
  // The closed session object itself stays valid for holders.
  EXPECT_EQ(a->num_plans(), 0u);
}

// --- Server::HandleLine end to end ------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    rules_ = MustParseRuleSet(&universe_, kRules);
    base_.emplace(MustParseInstance(&universe_, ChainFacts(0, 4)));
    ServerOptions options;
    options.reasoner = TestReasonerOptions();
    options.dispatch_threads = 1;  // inline: HandleLine tests stay serial
    server_ = std::make_unique<Server>(*base_, rules_, options);
    session_ = server_->sessions().Open();
  }

  JsonValue Handle(const std::string& line) {
    const std::string reply = server_->HandleLine(*session_, line);
    auto doc = JsonParse(reply);
    EXPECT_TRUE(doc.has_value()) << reply;
    return doc.has_value() ? *doc : JsonValue::Null();
  }

  Universe universe_;
  RuleSet rules_;
  std::optional<Instance> base_;
  std::unique_ptr<Server> server_;
  std::shared_ptr<Session> session_;
};

TEST_F(ServerTest, PingStatusMetrics) {
  auto ping = Handle(R"json({"op":"ping","id":1})json");
  EXPECT_TRUE(ping.FindBool("ok")->AsBool());
  EXPECT_EQ(ping.FindInt("id")->AsInt(), 1);
  EXPECT_EQ(ping.FindInt("epoch")->AsInt(), 0);

  auto status = Handle(R"json({"op":"status"})json");
  EXPECT_TRUE(status.FindBool("ok")->AsBool());
  EXPECT_EQ(status.FindInt("epoch")->AsInt(), 0);
  EXPECT_GT(status.FindInt("atoms")->AsInt(), status.FindInt(
                "base_atoms")->AsInt());
  EXPECT_TRUE(status.FindBool("saturated")->AsBool());
  EXPECT_EQ(status.FindInt("sessions")->AsInt(), 1);

  auto metrics = Handle(R"json({"op":"metrics"})json");
  ASSERT_NE(metrics.Find("metrics"), nullptr);
  EXPECT_TRUE(metrics.Find("metrics")->is_object());
}

TEST_F(ServerTest, InlineQueryAllCountAsk) {
  auto all =
      Handle(R"json({"op":"query","id":2,"query":"?(x,y) :- T(x,y)"})json");
  EXPECT_TRUE(all.FindBool("ok")->AsBool());
  EXPECT_EQ(all.FindInt("epoch")->AsInt(), 0);
  EXPECT_TRUE(all.FindBool("complete")->AsBool());
  // Chain c0..c4: T holds for (c0,c2),(c1,c3),(c2,c4).
  EXPECT_EQ(all.FindInt("count")->AsInt(), 3);
  ASSERT_NE(all.Find("answers"), nullptr);
  ASSERT_EQ(all.Find("answers")->AsArray().size(), 3u);
  const auto& first = all.Find("answers")->AsArray()[0].AsArray();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(first[0].is_string());

  auto count =
      Handle(R"json({"op":"query","query":"?(x,y) :- T(x,y)","mode":"count"})json");
  EXPECT_EQ(count.FindInt("count")->AsInt(), 3);
  EXPECT_EQ(count.Find("answers"), nullptr);

  auto ask_yes =
      Handle(R"json({"op":"query","query":"? :- T(c0,c2)","mode":"ask"})json");
  EXPECT_TRUE(ask_yes.FindBool("answer")->AsBool());
  auto ask_no =
      Handle(R"json({"op":"query","query":"? :- T(c0,c3)","mode":"ask"})json");
  EXPECT_FALSE(ask_no.FindBool("answer")->AsBool());
}

TEST_F(ServerTest, PreparedPlansAndAddAdvanceEpochs) {
  auto prep = Handle(
      R"json({"op":"prepare","id":3,"name":"t","query":"?(x,y) :- T(x,y)"})json");
  EXPECT_TRUE(prep.FindBool("ok")->AsBool());
  EXPECT_EQ(prep.FindString("name")->AsString(), "t");
  EXPECT_EQ(prep.FindInt("arity")->AsInt(), 2);
  EXPECT_EQ(session_->num_plans(), 1u);

  auto q0 = Handle(R"json({"op":"query","prepared":"t"})json");
  EXPECT_EQ(q0.FindInt("count")->AsInt(), 3);
  EXPECT_EQ(q0.FindInt("epoch")->AsInt(), 0);

  auto add =
      Handle(R"json({"op":"add","id":4,"facts":"E(c4,c5). E(c5,c6)."})json");
  EXPECT_TRUE(add.FindBool("ok")->AsBool());
  EXPECT_EQ(add.FindInt("added")->AsInt(), 2);
  EXPECT_EQ(add.FindInt("epoch")->AsInt(), 1);
  EXPECT_TRUE(add.FindBool("saturated")->AsBool());

  // The same plan now answers at the new epoch, with the new tuples.
  auto q1 = Handle(R"json({"op":"query","prepared":"t"})json");
  EXPECT_EQ(q1.FindInt("epoch")->AsInt(), 1);
  EXPECT_EQ(q1.FindInt("count")->AsInt(), 5);

  // A duplicate add publishes nothing.
  auto dup = Handle(R"json({"op":"add","facts":"E(c4,c5)."})json");
  EXPECT_EQ(dup.FindInt("added")->AsInt(), 0);
  EXPECT_EQ(dup.FindInt("epoch")->AsInt(), 1);
}

TEST_F(ServerTest, MalformedLinesYieldErrorRepliesNeverCrash) {
  const char* bad[] = {
      "",
      "not json",
      "{",
      "[1,2,3]",
      R"json({"id":1})json",
      R"json({"op":"nope","id":2})json",
      R"json({"op":"ping","id":"x"})json",
      R"json({"op":"query"})json",
      R"json({"op":"query","query":"?(x :- broken(","mode":"all"})json",
      R"json({"op":"query","prepared":"never_prepared"})json",
      R"json({"op":"prepare","name":"","query":"? :- T(x,y)"})json",
      R"json({"op":"add","facts":"E(only_one_arg)."})json",
      R"json({"op":"add","facts":"NotInterned(a,b,c)?!"})json",
      "\x01\x02\xff",
      R"json("just a string")json",
  };
  for (const char* line : bad) {
    auto reply = Handle(line);
    ASSERT_NE(reply.FindBool("ok"), nullptr) << line;
    EXPECT_FALSE(reply.FindBool("ok")->AsBool()) << line;
    EXPECT_NE(reply.FindString("error"), nullptr) << line;
    EXPECT_NE(reply.FindString("message"), nullptr) << line;
  }
  // The server still works afterwards.
  auto ping = Handle(R"json({"op":"ping"})json");
  EXPECT_TRUE(ping.FindBool("ok")->AsBool());
  EXPECT_GE(server_->errors_total(), std::size(bad));
}

TEST_F(ServerTest, ErrorRepliesEchoTheRecoverableId) {
  auto reply = Handle(R"json({"id":77,"op":"add"})json");
  EXPECT_FALSE(reply.FindBool("ok")->AsBool());
  EXPECT_EQ(reply.FindInt("id")->AsInt(), 77);
  auto parse_err =
      Handle(R"json({"id":78,"op":"query","query":"?(x :- ("})json");
  EXPECT_EQ(parse_err.FindInt("id")->AsInt(), 78);
  EXPECT_EQ(parse_err.FindString("error")->AsString(), "parse_error");
}

TEST_F(ServerTest, OversizedFrameYieldsErrorReply) {
  Frame oversized{std::string(), /*oversized=*/true};
  auto doc = JsonParse(server_->HandleFrame(*session_, oversized));
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->FindBool("ok")->AsBool());
  EXPECT_EQ(doc->FindString("error")->AsString(), "oversized");
}

// --- Concurrency differential ------------------------------------------------
//
// Many reader threads evaluate a prepared plan against pinned snapshots
// while one writer folds batches in. Every reader answer must equal the
// one-shot oracle of the pinned epoch — whatever interleaving happens.

void RunConcurrentDifferential(StorageKind storage) {
  constexpr int kBaseEdges = 12;
  constexpr int kBatches = 4;
  constexpr int kEdgesPerBatch = 2;
  constexpr std::size_t kReaders = 4;

  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base =
      MustParseInstance(&universe, ChainFacts(0, kBaseEdges));
  std::vector<std::vector<Atom>> batches;
  for (int b = 0; b < kBatches; ++b) {
    const int from = kBaseEdges + b * kEdgesPerBatch;
    Instance parsed = MustParseInstance(
        &universe, ChainFacts(from, from + kEdgesPerBatch));
    batches.emplace_back(parsed.atoms().begin() + 1, parsed.atoms().end());
  }
  const Cq query = MustParseCq(&universe, "?(x,y) :- T(x,y)");

  // One-shot oracle per epoch, in the same Universe (term ids compare
  // bitwise; answers are all-constant, so racing null invention in the
  // shared universe cannot affect them).
  std::vector<std::vector<AnswerTuple>> expected;
  {
    Instance accumulated = base;
    for (int e = 0; e <= kBatches; ++e) {
      Reasoner oracle(accumulated, rules, TestReasonerOptions(storage));
      expected.push_back(Sorted(oracle.Prepare(query).All()));
      if (e < kBatches) accumulated.AddAtoms(batches[e]);
    }
  }
  // More facts must mean more answers, or the differential is vacuous.
  ASSERT_LT(expected.front().size(), expected.back().size());

  SnapshotManager manager(base, rules, TestReasonerOptions(storage));
  const PreparedQuery plan = manager.reasoner().PrepareDetached(query);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = manager.Pin();
        const Instance& target = *snap->materialization;
        if ((r + i++) % 3 == 0) {
          if (plan.CountOn(target) != expected[snap->epoch].size()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (Sorted(plan.AllOn(target)) != expected[snap->epoch]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto early = manager.Pin();  // epoch 0, held across all publishes
  for (const auto& batch : batches) {
    auto result = manager.ApplyFacts(batch);
    EXPECT_EQ(result.added, batch.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Let readers observe the final epoch too.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(manager.Pin()->epoch, static_cast<std::uint64_t>(kBatches));
  // The snapshot pinned before any publish still answers epoch 0 exactly.
  EXPECT_EQ(early->epoch, 0u);
  EXPECT_EQ(Sorted(plan.AllOn(*early->materialization)), expected[0]);
}

TEST(ServeConcurrency, ReadersAgreeWithOneShotChaseOnRowStorage) {
  RunConcurrentDifferential(StorageKind::kRow);
}

TEST(ServeConcurrency, ReadersAgreeWithOneShotChaseOnColumnStorage) {
  RunConcurrentDifferential(StorageKind::kColumn);
}

// Concurrent requests through the full server path (dispatch pool, plan
// cache, universe lock): readers issue protocol queries while a writer
// issues adds. Each reply's count must match the oracle at the reply's
// epoch.
TEST(ServeConcurrency, ProtocolRequestsRaceWriterConsistently) {
  constexpr int kBaseEdges = 12;
  constexpr int kBatches = 4;

  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, kBaseEdges));

  // Oracle counts per epoch (batches are one edge each here).
  std::vector<std::size_t> expected_counts;
  {
    Instance accumulated = base;
    for (int e = 0; e <= kBatches; ++e) {
      Reasoner oracle(accumulated, rules, TestReasonerOptions());
      expected_counts.push_back(oracle.Prepare(
          MustParseCq(&universe, "?(x,y) :- T(x,y)")).All().size());
      if (e < kBatches) {
        const int i = kBaseEdges + e;
        Instance batch = MustParseInstance(&universe, ChainFacts(i, i + 1));
        accumulated.AddAtoms(std::vector<Atom>(batch.atoms().begin() + 1,
                                               batch.atoms().end()));
      }
    }
  }

  ServerOptions options;
  options.reasoner = TestReasonerOptions();
  options.dispatch_threads = 4;
  Server server(base, rules, options);
  auto reader_session = server.sessions().Open();
  auto writer_session = server.sessions().Open();
  {
    const std::string reply = server.HandleLine(
        *reader_session,
        R"json({"op":"prepare","name":"t","query":"?(x,y) :- T(x,y)"})json");
    ASSERT_TRUE(JsonParse(reply)->FindBool("ok")->AsBool()) << reply;
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string reply = server.HandleLine(
            *reader_session,
            R"json({"op":"query","prepared":"t","mode":"count"})json");
        auto doc = JsonParse(reply);
        if (!doc.has_value() || !doc->FindBool("ok")->AsBool()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const auto epoch =
            static_cast<std::size_t>(doc->FindInt("epoch")->AsInt());
        const auto count =
            static_cast<std::size_t>(doc->FindInt("count")->AsInt());
        if (epoch >= expected_counts.size() ||
            count != expected_counts[epoch]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int b = 0; b < kBatches; ++b) {
    const int i = kBaseEdges + b;
    const std::string add_line =
        std::string(R"json({"op":"add","facts":")json") + "E(c" +
        std::to_string(i) +
        ",c" + std::to_string(i + 1) + R"json()."})json";
    const std::string reply = server.HandleLine(*writer_session, add_line);
    ASSERT_TRUE(JsonParse(reply)->FindBool("ok")->AsBool()) << reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.snapshots().Pin()->epoch,
            static_cast<std::uint64_t>(kBatches));
}

// --- ServeStream over pipes --------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(ServeStream, ServesAPipedSessionToEndOfStream) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  ServerOptions options;
  options.reasoner = TestReasonerOptions();
  options.dispatch_threads = 1;
  Server server(base, rules, options);

  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(pipe(in_pipe), 0);
  ASSERT_EQ(pipe(out_pipe), 0);
  const std::string input =
      "{\"op\":\"ping\",\"id\":1}\n"
      "garbage\n"
      "{\"op\":\"query\",\"id\":2,\"query\":\"?(x,y) :- T(x,y)\","
      "\"mode\":\"count\"}\n"
      "{\"op\":\"status\",\"id\":3}";  // no trailing newline: Flush path
  ASSERT_EQ(write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  close(in_pipe[1]);

  obs::ClearCancel();
  const int rc = server.ServeStream(in_pipe[0], out_pipe[1]);
  close(in_pipe[0]);
  close(out_pipe[1]);
  EXPECT_EQ(rc, 0);

  std::string output;
  char buf[4096];
  ssize_t n;
  while ((n = read(out_pipe[0], buf, sizeof(buf))) > 0) {
    output.append(buf, static_cast<std::size_t>(n));
  }
  close(out_pipe[0]);

  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at < output.size()) {
    const std::size_t nl = output.find('\n', at);
    ASSERT_NE(nl, std::string::npos);
    lines.push_back(output.substr(at, nl - at));
    at = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u) << output;
  EXPECT_TRUE(JsonParse(lines[0])->FindBool("ok")->AsBool());
  EXPECT_FALSE(JsonParse(lines[1])->FindBool("ok")->AsBool());
  auto query = JsonParse(lines[2]);
  EXPECT_EQ(query->FindInt("id")->AsInt(), 2);
  EXPECT_EQ(query->FindInt("count")->AsInt(), 3);
  auto status = JsonParse(lines[3]);
  EXPECT_EQ(status->FindInt("id")->AsInt(), 3);
  // The piped session closed with the stream.
  EXPECT_EQ(server.sessions().active(), 0u);
  EXPECT_EQ(server.sessions().opened_total(), 1u);
}

TEST(ServeStream, CancellationDrainsAndReturnsInterrupted) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(&universe, kRules);
  Instance base = MustParseInstance(&universe, ChainFacts(0, 4));
  ServerOptions options;
  options.reasoner = TestReasonerOptions();
  options.dispatch_threads = 1;
  Server server(base, rules, options);

  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(pipe(in_pipe), 0);
  ASSERT_EQ(pipe(out_pipe), 0);

  obs::ClearCancel();
  int rc = -1;
  std::thread serving(
      [&] { rc = server.ServeStream(in_pipe[0], out_pipe[1]); });
  // A request the server must finish serving before it drains.
  const std::string request = "{\"op\":\"ping\",\"id\":1}\n";
  ASSERT_EQ(write(in_pipe[1], request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  char buf[4096];
  const ssize_t n = read(out_pipe[0], buf, sizeof(buf));  // its reply
  ASSERT_GT(n, 0);

  obs::RequestCancel();  // the SIGINT handler's exact effect
  serving.join();
  EXPECT_EQ(rc, obs::kExitInterrupted);
  obs::ClearCancel();

  close(in_pipe[0]);
  close(in_pipe[1]);
  close(out_pipe[0]);
  close(out_pipe[1]);
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace serve
}  // namespace bddfc
