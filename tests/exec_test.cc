// Tests for the execution subsystem: the work-stealing ThreadPool and
// ParallelFor in src/base, the exec::ParallelChase building blocks, and
// the pool-parallel HomSearch queries (which must be bit-identical to
// their serial counterparts).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "exec/parallel_chase.h"
#include "generators/workload.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitAll();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineInWaitAll) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  int count = 0;  // no synchronization needed: everything runs inline
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.WaitAll();
  EXPECT_EQ(count, 50);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.WaitAll();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPoolTest, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.WaitAll();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, 0, hits.size(), /*grain=*/10,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
              });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolAndEmptyRangeAreFine) {
  int calls = 0;
  ParallelFor(nullptr, 5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::size_t sum = 0;
  ParallelFor(nullptr, 0, 100, 8, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(calls, 1);  // inline: the whole range in one chunk
  EXPECT_EQ(sum, 4950u);
}

TEST(SortCanonicalTest, OrdersByRuleThenBodyImage) {
  Universe u;
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  std::vector<exec::TriggerCandidate> candidates;
  candidates.push_back({1, {a}});
  candidates.push_back({0, {b, a}});
  candidates.push_back({0, {a, b}});
  exec::SortCanonical(&candidates);
  EXPECT_EQ(candidates[0].rule_index, 0u);
  EXPECT_EQ(candidates[0].body_image, (std::vector<Term>{a, b}));
  EXPECT_EQ(candidates[1].body_image, (std::vector<Term>{b, a}));
  EXPECT_EQ(candidates[2].rule_index, 1u);
}

// Builds a mid-sized random instance and a connected CQ, then checks every
// pool-parallel HomSearch query against its serial counterpart.
class ParallelHomTest : public ::testing::Test {
 protected:
  void Build(std::uint64_t seed, int num_atoms) {
    Rng rng(seed);
    generators::RuleSetSpec spec;
    spec.num_predicates = 3;
    rules_ = generators::RandomBinaryRuleSet(&universe_, spec, &rng);
    instance_.emplace(
        generators::RandomInstance(&universe_, rules_, /*num_constants=*/12,
                                   num_atoms, &rng));
    query_ = generators::RandomBooleanCq(&universe_, rules_, /*num_atoms=*/3,
                                         /*num_vars=*/4, &rng);
  }

  Universe universe_;
  RuleSet rules_;
  std::optional<Instance> instance_;
  std::optional<Cq> query_;
};

TEST_F(ParallelHomTest, FindAllParallelMatchesSerialOrder) {
  for (std::uint64_t seed : {7u, 21u, 33u}) {
    Build(seed, /*num_atoms=*/300);
    HomSearch search(query_->atoms(), &*instance_);
    const std::vector<Substitution> serial = search.FindAll();
    for (std::size_t workers : {1u, 3u, 7u}) {
      ThreadPool pool(workers);
      const std::vector<Substitution> parallel =
          search.FindAllParallel(&pool);
      ASSERT_EQ(serial.size(), parallel.size()) << "seed " << seed;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].entries(), parallel[i].entries())
            << "seed " << seed << " hom " << i;
      }
    }
  }
}

TEST_F(ParallelHomTest, CountAndExistsMatchSerial) {
  for (std::uint64_t seed : {5u, 11u}) {
    Build(seed, /*num_atoms=*/250);
    HomSearch search(query_->atoms(), &*instance_);
    const std::size_t serial_count = search.FindAll().size();
    ThreadPool pool(4);
    EXPECT_EQ(search.CountParallel(&pool), serial_count);
    EXPECT_EQ(search.ExistsParallel(&pool), serial_count > 0);
  }
}

TEST_F(ParallelHomTest, FindAllParallelRespectsLimit) {
  Build(/*seed=*/7, /*num_atoms=*/300);
  HomSearch search(query_->atoms(), &*instance_);
  const std::vector<Substitution> serial = search.FindAll({}, 10);
  ThreadPool pool(4);
  const std::vector<Substitution> parallel =
      search.FindAllParallel(&pool, {}, 10);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].entries(), parallel[i].entries());
  }
}

TEST(ForEachFirstInTest, PartitionReproducesForEach) {
  Universe u;
  Instance instance = MustParseInstance(
      &u, "E(a,b). E(b,c). E(c,d). E(d,a). E(a,c). E(b,d).");
  Cq q = MustParseCq(&u, "? :- E(x,y), E(y,z)");
  HomSearch search(q.atoms(), &instance);
  std::vector<Substitution> serial;
  search.ForEach({}, [&](const Substitution& h) {
    serial.push_back(h);
    return true;
  });
  // Any partition of [0, size) must reproduce the serial enumeration when
  // chunks are visited in index order.
  const std::uint32_t n = static_cast<std::uint32_t>(instance.size());
  for (std::uint32_t split = 0; split <= n; ++split) {
    std::vector<Substitution> chunked;
    const auto visit = [&](const Substitution& h) {
      chunked.push_back(h);
      return true;
    };
    search.ForEachFirstIn(0, split, {}, visit);
    search.ForEachFirstIn(split, n, {}, visit);
    ASSERT_EQ(serial.size(), chunked.size()) << "split " << split;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].entries(), chunked[i].entries())
          << "split " << split << " hom " << i;
    }
  }
}

TEST(ForEachDeltaAnchorTest, ChunkedAnchorsReproduceForEachDelta) {
  Universe u;
  // Two chase-like "generations": treat the last four atoms as the delta.
  Instance instance = MustParseInstance(
      &u,
      "E(a,b). E(b,c). E(c,d). E(d,e). "
      "E(e,f). E(f,g). E(g,a). E(e,a).");
  Cq q = MustParseCq(&u, "? :- E(x,y), E(y,z)");
  HomSearch search(q.atoms(), &instance);
  const std::uint32_t delta_begin = 5;  // ⊤ + first four atoms before it
  const std::uint32_t delta_end = static_cast<std::uint32_t>(instance.size());
  std::multiset<std::vector<std::pair<Term, Term>>> expected, chunked;
  const auto keyed = [](const Substitution& h) {
    std::vector<std::pair<Term, Term>> key(h.entries().begin(),
                                           h.entries().end());
    std::sort(key.begin(), key.end());
    return key;
  };
  search.ForEachDelta({}, delta_begin, delta_end, [&](const Substitution& h) {
    expected.insert(keyed(h));
    return true;
  });
  EXPECT_FALSE(expected.empty());
  search.PrepareDelta();
  for (std::size_t anchor = 0; anchor < search.source_size(); ++anchor) {
    for (std::uint32_t lo = delta_begin; lo < delta_end; ++lo) {
      search.ForEachDeltaAnchor(anchor, delta_begin, delta_end, lo, lo + 1,
                                {}, [&](const Substitution& h) {
                                  chunked.insert(keyed(h));
                                  return true;
                                });
    }
  }
  EXPECT_EQ(expected, chunked);
}

}  // namespace
}  // namespace bddfc
