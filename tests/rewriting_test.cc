// Unit tests for UCQ rewriting: piece-unifiers, saturation/bdd detection,
// minimization, injective rewritings (Proposition 6), and the soundness/
// completeness cross-check against the chase.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "rewriting/piece_unifier.h"
#include "api/bdd_probe.h"
#include "rewriting/rewriter.h"

namespace bddfc {
namespace {

class RewritingTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(RewritingTest, AtomicRuleRewriting) {
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> S(x)");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result = rewriter.Rewrite(MustParseCq(&u_, "?(x) :- S(x)"));
  EXPECT_TRUE(result.saturated);
  // {S(x)} ∪ {R(x)}.
  EXPECT_EQ(result.ucq.size(), 2u);
}

TEST_F(RewritingTest, ChainOfRules) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> R(x)\n"
                                   "R(x) -> S(x)\n");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result = rewriter.Rewrite(MustParseCq(&u_, "?(x) :- S(x)"));
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 4u);
  EXPECT_EQ(result.depth, 3u);
}

TEST_F(RewritingTest, ExistentialBlocksUnificationOfSeparatingVariable) {
  // Rule: R(x) -> E(x,z) with z existential. Query ? :- E(x,y), P(y).
  // y occurs outside the E-atom: unifying y with z is inadmissible, so the
  // only rewriting of the E-atom alone is blocked.
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> E(x,z)");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result =
      rewriter.Rewrite(MustParseCq(&u_, "? :- E(x,y), P(y)"));
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 1u);  // only the original query
}

TEST_F(RewritingTest, ExistentialAllowsNonSeparatingVariable) {
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> E(x,z)");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result = rewriter.Rewrite(MustParseCq(&u_, "? :- E(x,y)"));
  EXPECT_TRUE(result.saturated);
  // {E(x,y)} ∪ {R(x)}.
  EXPECT_EQ(result.ucq.size(), 2u);
}

TEST_F(RewritingTest, AnswerVariableIsSeparating) {
  // Same rule, but y is an answer variable: rewriting blocked.
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> E(x,z)");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result =
      rewriter.Rewrite(MustParseCq(&u_, "?(y) :- E(x,y)"));
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 1u);
}

TEST_F(RewritingTest, PieceOfSizeTwo) {
  // Rule: R(x) -> E(x,z), F(x,z). Query ? :- E(x,y), F(x,y) needs the
  // aggregated piece {E,F} (single-atom pieces are blocked by z).
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> E(x,z), F(x,z)");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result =
      rewriter.Rewrite(MustParseCq(&u_, "? :- E(x,y), F(x,y)"));
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 2u);
  bool has_r = false;
  for (const Cq& q : result.ucq.disjuncts()) {
    if (q.size() == 1 &&
        q.atoms()[0].pred() == u_.FindPredicate("R")) {
      has_r = true;
    }
  }
  EXPECT_TRUE(has_r);
}

TEST_F(RewritingTest, TransitivityDoesNotSaturate) {
  // Example 1's rule set is not bdd: the loop query keeps rewriting into
  // ever-longer paths.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  UcqRewriter rewriter(rules, &u_, {.max_depth = 4});
  PredicateId e = u_.FindPredicate("E");
  RewriteResult result = rewriter.Rewrite(LoopQuery(&u_, e));
  EXPECT_FALSE(result.saturated);
  EXPECT_TRUE(result.hit_bounds);
  // The loop query rewrites to the directed k-cycle for every k; the
  // minimized UCQ keeps an antichain of them (even cycles fold onto
  // shorter ones) while the frontier never dries up — doubling the depth
  // keeps producing new candidates.
  EXPECT_GE(result.ucq.size(), 3u);
  UcqRewriter deeper(rules, &u_, {.max_depth = 8});
  RewriteResult deep_result = deeper.Rewrite(LoopQuery(&u_, e));
  EXPECT_FALSE(deep_result.saturated);
  EXPECT_GT(deep_result.candidates_generated, result.candidates_generated);
}

TEST_F(RewritingTest, BddifiedExample1Saturates) {
  // The introduction's bdd variant: E(x,x'), E(y,y') -> E(x,y').
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  UcqRewriter rewriter(rules, &u_, {.max_depth = 8});
  PredicateId e = u_.FindPredicate("E");
  RewriteResult result = rewriter.Rewrite(LoopQuery(&u_, e));
  EXPECT_TRUE(result.saturated);
  // Property (p): once any edge exists, a loop is entailed, so the
  // single-edge query must appear among the disjuncts.
  Instance one_edge = MustParseInstance(&u_, "E(a,b).");
  EXPECT_TRUE(Entails(one_edge, result.ucq));
}

TEST_F(RewritingTest, RewritingSoundAndCompleteAgainstChase) {
  // For a bdd rule set, I |= rew(q) iff Ch(I,R) |= q, on a family of
  // small instances.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> E(x,z)\n"
                                   "E(x,y) -> F(y,x)\n");
  UcqRewriter rewriter(rules, &u_);
  Cq q = MustParseCq(&u_, "? :- F(y,x), P(x)");
  RewriteResult result = rewriter.Rewrite(q);
  ASSERT_TRUE(result.saturated);
  const char* instances[] = {
      "P(a).", "E(a,b).", "F(b,a).", "P(a). F(c,d).", "Q(a,b).",
  };
  for (const char* text : instances) {
    Universe v;
    Instance db = MustParseInstance(&v, text);
    // Rebuild rules/query in the fresh universe to keep names aligned.
    Universe w;
    RuleSet rules2 = MustParseRuleSet(&w,
                                      "P(x) -> E(x,z)\n"
                                      "E(x,y) -> F(y,x)\n");
    Instance db2 = MustParseInstance(&w, text);
    UcqRewriter rewriter2(rules2, &w);
    Cq q2 = MustParseCq(&w, "? :- F(y,x), P(x)");
    RewriteResult r2 = rewriter2.Rewrite(q2);
    ASSERT_TRUE(r2.saturated);
    Instance chased = Chase(db2, rules2, {.exec = {.max_steps = 8}});
    EXPECT_EQ(Entails(db2, r2.ucq), Entails(chased, q2))
        << "instance: " << text;
  }
}

TEST_F(RewritingTest, MinimizationPrunesSubsumed) {
  Ucq ucq;
  EXPECT_TRUE(AddMinimized(&ucq, MustParseCq(&u_, "? :- E(x,x)")));
  // The more general single-edge query replaces the loop query.
  EXPECT_TRUE(AddMinimized(&ucq, MustParseCq(&u_, "? :- E(x,y)")));
  EXPECT_EQ(ucq.size(), 1u);
  // Re-adding the loop query: subsumed, rejected.
  EXPECT_FALSE(AddMinimized(&ucq, MustParseCq(&u_, "? :- E(z,z)")));
  EXPECT_EQ(ucq.size(), 1u);
}

TEST_F(RewritingTest, UcqRewriteComposition) {
  // Lemma 5 flavor: rewriting a UCQ = union of disjunct rewritings,
  // minimized.
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> S(x)");
  UcqRewriter rewriter(rules, &u_);
  Ucq q({MustParseCq(&u_, "? :- S(x)"), MustParseCq(&u_, "? :- R(x)")});
  RewriteResult result = rewriter.Rewrite(q);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 2u);  // {S(x)}, {R(x)}
}

TEST_F(RewritingTest, SpecializationsOfTwoVariableQuery) {
  Cq q = MustParseCq(&u_, "? :- E(x,y)");
  Ucq specs = AllSpecializations(q);
  // Partitions of {x,y}: {{x},{y}} and {{x,y}} → E(x,y) and E(x,x).
  EXPECT_EQ(specs.size(), 2u);
}

TEST_F(RewritingTest, SpecializationsKeepAnswerVariables) {
  Cq q = MustParseCq(&u_, "?(x) :- E(x,y)");
  Ucq specs = AllSpecializations(q);
  EXPECT_EQ(specs.size(), 2u);
  for (const Cq& s : specs.disjuncts()) {
    ASSERT_EQ(s.answers().size(), 1u);
    EXPECT_TRUE(s.IsAnswerVar(s.answers()[0]));
  }
}

TEST_F(RewritingTest, InjectiveRewritingRealizesProposition6) {
  // I |= Q(ā) iff some disjunct of Q_inj maps injectively: check on the
  // 2-cycle, where the 3-path query holds classically via folding.
  RuleSet no_rules;
  UcqRewriter rewriter(no_rules, &u_);
  Cq path3 = MustParseCq(&u_, "? :- E(x,y), E(y,z)");
  Ucq inj = rewriter.InjectiveRewriting(path3);
  Instance two_cycle = MustParseInstance(&u_, "E(a,b). E(b,a).");
  EXPECT_TRUE(Entails(two_cycle, path3));
  EXPECT_FALSE(EntailsInjectively(two_cycle, path3));
  EXPECT_TRUE(EntailsInjectively(two_cycle, inj));

  Instance single = MustParseInstance(&u_, "E(c,c).");
  EXPECT_TRUE(Entails(single, path3));
  EXPECT_TRUE(EntailsInjectively(single, inj));
}

TEST_F(RewritingTest, PieceEnumerationCountsForSimpleCase) {
  RuleSet rules = MustParseRuleSet(&u_, "R(x) -> E(x,z)");
  Cq q = MustParseCq(&u_, "? :- E(u,v), E(v,w)");
  // Pieces: {E(u,v)} blocked (v separating), {E(v,w)} ok, {both} blocked
  // (z would merge v and w across atoms — actually z in two classes, each
  // inadmissible because v and w are separating or shared). Exactly the
  // single admissible unifier must be found.
  std::vector<PieceRewriting> rewritings =
      EnumeratePieceRewritings(q, rules, &u_);
  ASSERT_EQ(rewritings.size(), 1u);
  EXPECT_EQ(rewritings[0].piece.size(), 1u);
  // Result: E(u,v), R(v).
  EXPECT_EQ(rewritings[0].result.size(), 2u);
}

TEST_F(RewritingTest, BddProbeMeasuresDerivationDepth) {
  // A three-rule chain: the query becomes entailed exactly at step 3 for
  // the deepest instance.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> R(x)\n"
                                   "R(x) -> S(x)\n");
  Cq q = MustParseCq(&u_, "? :- S(x)");
  std::vector<Instance> family;
  family.push_back(MustParseInstance(&u_, "S(a)."));  // step 0
  family.push_back(MustParseInstance(&u_, "R(a)."));  // step 1
  family.push_back(MustParseInstance(&u_, "P(a)."));  // step 3
  BddProbeReport report =
      ProbeBddConstant(q, rules, family, {.exec = {.max_steps = 8}});
  EXPECT_FALSE(report.inconclusive);
  EXPECT_EQ(report.measured_constant, 3);
  EXPECT_EQ(report.entries[0].first_entailed_step, 0);
  EXPECT_EQ(report.entries[1].first_entailed_step, 1);
  EXPECT_EQ(report.entries[2].first_entailed_step, 3);
}

TEST_F(RewritingTest, Proposition4HoldsOnChain) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> R(x)\n");
  Cq q = MustParseCq(&u_, "? :- R(x)");
  std::vector<Instance> family;
  family.push_back(MustParseInstance(&u_, "P(a)."));
  family.push_back(MustParseInstance(&u_, "Q(b)."));
  Proposition4Report report = CheckProposition4(
      q, rules, family, &u_, {.max_depth = 8}, {.exec = {.max_steps = 8}});
  EXPECT_TRUE(report.rewriting_saturated);
  EXPECT_EQ(report.rewriting_depth, 2u);
  EXPECT_EQ(report.probe.measured_constant, 2);
  EXPECT_TRUE(report.consistent);
}

TEST_F(RewritingTest, Proposition4DetectsUnboundedDepth) {
  // Example 1: the loop query needs ever deeper chases as the database
  // path grows — the probe keeps climbing while the rewriting refuses to
  // saturate.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Cq q = MustParseCq(&u_, "? :- E(u,v), W(u), V(v)");
  u_.InternPredicate("W", 1);
  u_.InternPredicate("V", 1);
  std::vector<Instance> family;
  family.push_back(
      MustParseInstance(&u_, "W(a). E(a,b). V(b)."));
  family.push_back(
      MustParseInstance(&u_, "W(a). E(a,b). E(b,c). V(c)."));
  family.push_back(MustParseInstance(
      &u_, "W(a). E(a,b). E(b,c). E(c,d). E(d,e). V(e)."));
  BddProbeReport probe =
      ProbeBddConstant(q, rules, family, {.exec = {.max_steps = 10}});
  EXPECT_FALSE(probe.inconclusive);
  // Deeper instances need deeper chases — unbounded growth signal.
  EXPECT_GT(probe.entries[2].first_entailed_step,
            probe.entries[1].first_entailed_step);
  UcqRewriter rewriter(rules, &u_, {.max_depth = 4});
  EXPECT_FALSE(rewriter.Rewrite(q).saturated);
}

TEST_F(RewritingTest, Lemma5CompositionMatchesDirectRewriting) {
  // Stratified sets: r_first feeds r_second, so
  // Ch(Ch(I,r1),r2) ↔ Ch(I,r1∪r2) and the staged rewriting is a
  // rewriting for the union.
  RuleSet r_first = MustParseRuleSet(&u_, "P(x) -> Q(x)");
  RuleSet r_second = MustParseRuleSet(&u_, "Q(x) -> R(x)");
  RuleSet both = r_first;
  for (const Rule& r : r_second) both.push_back(r);

  Cq q = MustParseCq(&u_, "?(x) :- R(x)");
  RewriteResult staged = ComposeRewrite(q, r_first, r_second, &u_);
  UcqRewriter direct(both, &u_);
  RewriteResult whole = direct.Rewrite(q);
  ASSERT_TRUE(staged.saturated);
  ASSERT_TRUE(whole.saturated);
  EXPECT_TRUE(UcqEquivalent(staged.ucq, whole.ucq));
  EXPECT_EQ(staged.ucq.size(), 3u);  // {R, Q, P}
}

TEST_F(RewritingTest, Lemma5WithInstanceEncodingRule) {
  // Observation 13/16 flavor: the ⊤→J rule composes with any rule set.
  RuleSet r_first = MustParseRuleSet(&u_, "true -> P(c)");
  RuleSet r_second = MustParseRuleSet(&u_, "P(x) -> S(x)");
  RuleSet both = r_first;
  for (const Rule& r : r_second) both.push_back(r);
  Cq q = MustParseCq(&u_, "? :- S(x)");
  RewriteResult staged = ComposeRewrite(q, r_first, r_second, &u_);
  UcqRewriter direct(both, &u_);
  RewriteResult whole = direct.Rewrite(q);
  ASSERT_TRUE(staged.saturated);
  ASSERT_TRUE(whole.saturated);
  EXPECT_TRUE(UcqEquivalent(staged.ucq, whole.ucq));
}

TEST_F(RewritingTest, UcqEquivalenceIsSemanticNotSyntactic) {
  Ucq a({MustParseCq(&u_, "? :- E(x,y)")});
  Ucq b({MustParseCq(&u_, "? :- E(v,w)"),
         MustParseCq(&u_, "? :- E(z,z)")});
  // b's loop disjunct is redundant; both cover the same instances.
  EXPECT_TRUE(UcqEquivalent(a, b));
  Ucq c({MustParseCq(&u_, "? :- E(z,z)")});
  EXPECT_FALSE(UcqEquivalent(a, c));
}

TEST_F(RewritingTest, AblationTogglesAffectOnlySizeNotSoundness) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> Q(x)\n"
                                   "Q(x) -> R(x)\n");
  Cq q = MustParseCq(&u_, "?(x) :- R(x)");
  Instance db = MustParseInstance(&u_, "P(a).");
  Term a = u_.FindConstant("a");

  for (bool minimize : {true, false}) {
    for (bool core : {true, false}) {
      RewriterOptions opts;
      opts.minimize = minimize;
      opts.core_queries = core;
      UcqRewriter rewriter(rules, &u_, opts);
      RewriteResult r = rewriter.Rewrite(q);
      EXPECT_TRUE(r.saturated);
      EXPECT_TRUE(Entails(db, r.ucq, {a}))
          << "minimize=" << minimize << " core=" << core;
    }
  }
}

TEST_F(RewritingTest, NoMinimizationKeepsRedundantDisjuncts) {
  // Both R(x) and the more specific loop-shaped query survive without
  // subsumption pruning.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> F(x,y)");
  Cq q = MustParseCq(&u_, "? :- F(x,x)");
  UcqRewriter minimized(rules, &u_);
  RewriterOptions no_min;
  no_min.minimize = false;
  UcqRewriter unminimized(rules, &u_, no_min);
  EXPECT_LE(minimized.Rewrite(q).ucq.size(),
            unminimized.Rewrite(q).ucq.size());
}

TEST_F(RewritingTest, GuardedExistentialDepthTwo) {
  // Two chained existential rules: P(x) -> E(x,z); E(x,y) -> F(y,w).
  // Query ? :- F(u,v) rewrites to F, E (depth 1), P (depth 2).
  RuleSet rules = MustParseRuleSet(&u_,
                                   "P(x) -> E(x,z)\n"
                                   "E(x,y) -> F(y,w)\n");
  UcqRewriter rewriter(rules, &u_);
  RewriteResult result = rewriter.Rewrite(MustParseCq(&u_, "? :- F(u,v)"));
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.ucq.size(), 3u);
  EXPECT_EQ(result.depth, 2u);
}

}  // namespace
}  // namespace bddfc
