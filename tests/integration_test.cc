// Cross-module integration tests:
//   * Example 1's finite-model argument (every finite model has a loop —
//     the unrestricted/finite semantics gap the bdd⇒fc conjecture is
//     about), by exhaustive finite-model enumeration
//   * the Section 6 "Tournament Definition" device (E defined by a UCQ)
//     composed with the Theorem 1 pipeline
//   * the full surgery chain on a higher-arity rule set (reify →
//     streamline → body-rewrite → regal)
//   * rewriting-based certification that the analyzer's bdd premise holds

#include <gtest/gtest.h>

#include "core/property_p.h"
#include "core/tournament_analyzer.h"
#include "graph/digraph.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "rewriting/rewriter.h"
#include "surgery/body_rewrite.h"
#include "surgery/encode_instance.h"
#include "surgery/properties.h"
#include "surgery/reify.h"
#include "surgery/streamline.h"

namespace bddfc {
namespace {

// --- Example 1 in the finite ------------------------------------------------

// Enumerates every E-relation over `n` elements that contains the edge
// 0 -> 1 and is a model of Example 1's rules (every node with an incoming
// edge has an outgoing one; transitivity). Returns true if each such
// model has a loop.
bool EveryFiniteModelHasLoop(int n) {
  const int bits = n * n;
  for (int mask = 0; mask < (1 << bits); ++mask) {
    auto edge = [&](int i, int j) { return (mask >> (i * n + j)) & 1; };
    if (!edge(0, 1)) continue;
    // Successor rule: every node with an incoming edge needs an outgoing
    // edge (the rule E(x,y) -> ∃z E(y,z) quantifies over edge targets).
    bool model = true;
    for (int i = 0; i < n && model; ++i) {
      for (int j = 0; j < n && model; ++j) {
        if (!edge(i, j)) continue;
        bool has_successor = false;
        for (int k = 0; k < n; ++k) {
          if (edge(j, k)) has_successor = true;
        }
        if (!has_successor) model = false;
      }
    }
    if (!model) continue;
    // Transitivity.
    for (int i = 0; i < n && model; ++i) {
      for (int j = 0; j < n && model; ++j) {
        for (int k = 0; k < n && model; ++k) {
          if (edge(i, j) && edge(j, k) && !edge(i, k)) model = false;
        }
      }
    }
    if (!model) continue;
    bool loop = false;
    for (int i = 0; i < n; ++i) {
      if (edge(i, i)) loop = true;
    }
    if (!loop) return false;
  }
  return true;
}

TEST(FiniteControllabilityTest, Example1FiniteModelsAllHaveLoops) {
  // The finite half of Example 1: in every finite model of the successor
  // + transitivity rules containing E(a,b), a loop exists — while the
  // (infinite) chase never entails one (ChaseTest covers that side).
  EXPECT_TRUE(EveryFiniteModelHasLoop(2));
  EXPECT_TRUE(EveryFiniteModelHasLoop(3));
}

TEST(FiniteControllabilityTest, WithoutTransitivityLoopFreeModelsExist) {
  // Dropping transitivity, the 2-cycle is a loop-free finite model: the
  // enumeration must find it.
  const int n = 2;
  bool found_loop_free = false;
  for (int mask = 0; mask < (1 << (n * n)); ++mask) {
    auto edge = [&](int i, int j) { return (mask >> (i * n + j)) & 1; };
    if (!edge(0, 1)) continue;
    bool model = true;
    for (int i = 0; i < n && model; ++i) {
      for (int j = 0; j < n && model; ++j) {
        if (!edge(i, j)) continue;
        bool has_successor = false;
        for (int k = 0; k < n; ++k) {
          if (edge(j, k)) has_successor = true;
        }
        if (!has_successor) model = false;
      }
    }
    if (!model) continue;
    bool loop = false;
    for (int i = 0; i < n; ++i) {
      if (edge(i, i)) loop = true;
    }
    if (!loop) found_loop_free = true;
  }
  EXPECT_TRUE(found_loop_free);
}

// --- Section 6: E defined by a UCQ -------------------------------------------

TEST(Section6Test, UcqDefinedRelationThroughPropertyP) {
  // Work over F; define E(x,y) by the UCQ {F(x,y), F(y,x)} (the
  // symmetric closure). Property (p) must hold for the defined E as well.
  Universe u;
  RuleSet rules = MustParseRuleSet(&u,
                                   "F(x,y) -> F(y,z)\n"
                                   "F(x,x1), F(y,y1) -> F(x,y1)\n");
  PredicateId e = u.InternPredicate("E", 2);
  Ucq definition({MustParseCq(&u, "?(x,y) :- F(x,y)"),
                  MustParseCq(&u, "?(x,y) :- F(y,x)")});
  RuleSet extended = surgery::DefineRelationByUcq(rules, definition, e);
  Instance db = MustParseInstance(&u, "F(a,b).");
  PropertyPOptions options;
  options.chase.exec.max_steps = 4;
  options.chase.exec.max_atoms = 60000;
  PropertyPReport report = CheckPropertyP(db, extended, e, options);
  EXPECT_GE(report.max_tournament, 3);
  EXPECT_TRUE(report.loop_entailed);
}

TEST(Section6Test, UcqDefinedRelationKeepsRewritability) {
  // Adding the defining rules for a fresh E must not break saturation of
  // E's own rewriting (the Discussion's observation).
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "P(x) -> F(x,z)");
  PredicateId e = u.InternPredicate("E", 2);
  Ucq definition({MustParseCq(&u, "?(x,y) :- F(x,y)")});
  RuleSet extended = surgery::DefineRelationByUcq(rules, definition, e);
  UcqRewriter rewriter(extended, &u, {.max_depth = 8});
  RewriteResult r = rewriter.Rewrite(EdgeQuery(&u, e));
  EXPECT_TRUE(r.saturated);
  // E(x,y) ∨ F(x,y) ∨ P(x)-with-free-y? No: y is an answer; the P rule
  // cannot fire. Exactly {E(x,y), F(x,y)}.
  EXPECT_EQ(r.ucq.size(), 2u);
}

// --- Higher-arity input through the whole Section 4 chain --------------------

TEST(FullChainTest, TernaryRuleSetBecomesRegal) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u,
                                   "T(x,y,z) -> T(y,z,w)\n"
                                   "T(x,y,z) -> E(x,y)\n");
  Instance db = MustParseInstance(&u, "T(a,b,c).");

  // Encode, reify, streamline, rewrite.
  RuleSet encoded = surgery::EncodeInstance(rules, db, &u);
  surgery::Reifier reifier(&u);
  RuleSet binary = reifier.ReifyRules(encoded);
  ASSERT_TRUE(surgery::IsBinarySignature(binary, u));
  RuleSet streamlined = surgery::Streamline(binary, &u);
  auto rewritten = surgery::BodyRewrite(streamlined, &u, {.max_depth = 12});

  EXPECT_TRUE(surgery::IsForwardExistential(rewritten.rules));
  EXPECT_TRUE(surgery::IsPredicateUnique(rewritten.rules));
  std::vector<Instance> probes;
  probes.push_back(Instance(&u));
  EXPECT_TRUE(surgery::IsQuick(rewritten.rules, probes,
                               {.exec = {.max_steps = 3, .max_atoms = 100000}}));

  // The chase of the regal set, restricted to E, matches the original's.
  Instance top(&u);
  Instance regal_chase = Chase(top, rewritten.rules,
                               {.exec = {.max_steps = 12, .max_atoms = 100000}});
  Instance original_chase =
      Chase(surgery::FlexibleCopy(db), rules, {.exec = {.max_steps = 3}});
  PredicateId e = u.FindPredicate("E");
  Instance lhs = original_chase.Restrict({e});
  Instance rhs = regal_chase.Restrict({e});
  EXPECT_TRUE(MapsInto(lhs, rhs));
}

// --- bdd certification for the analyzer's premise ----------------------------

TEST(BddCertificationTest, AnalyzerInputsAreBdd) {
  // The flagship pipeline input: certify that every predicate's atomic
  // query saturates — the analyzer's Theorem 1 premise.
  Universe u;
  RuleSet rules = MustParseRuleSet(&u,
                                   "true -> E(a0,b0)\n"
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  UcqRewriter rewriter(rules, &u, {.max_depth = 10});
  for (PredicateId p : SignatureOf(rules)) {
    int arity = u.ArityOf(p);
    std::vector<Term> args;
    for (int i = 0; i < arity; ++i) args.push_back(u.FreshVariable("b"));
    Cq atomic({Atom(p, args)}, args);
    RewriteResult r = rewriter.Rewrite(atomic);
    EXPECT_TRUE(r.saturated) << "predicate " << u.PredicateName(p);
  }
}

}  // namespace
}  // namespace bddfc
