// Unit tests for the homomorphism solver: entailment, injective entailment,
// hom-equivalence, subsumption and cores.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "homomorphism/homomorphism.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

class HomTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(HomTest, SimpleEntailment) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(b,c).");
  EXPECT_TRUE(Entails(inst, MustParseCq(&u_, "? :- E(x,y), E(y,z)")));
  EXPECT_FALSE(Entails(inst, MustParseCq(&u_, "? :- E(x,x)")));
}

TEST_F(HomTest, PathQueryNeedsComposition) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(c,d).");
  EXPECT_FALSE(Entails(inst, MustParseCq(&u_, "? :- E(x,y), E(y,z)")));
}

TEST_F(HomTest, ConstantsAreRigid) {
  Instance inst = MustParseInstance(&u_, "E(a,b).");
  EXPECT_TRUE(Entails(inst, MustParseCq(&u_, "? :- E(a,x)")));
  EXPECT_FALSE(Entails(inst, MustParseCq(&u_, "? :- E(b,x)")));
}

TEST_F(HomTest, AnswerBinding) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(b,c).");
  Cq q = MustParseCq(&u_, "?(x) :- E(x,y)");
  Term a = u_.FindConstant("a");
  Term c = u_.FindConstant("c");
  EXPECT_TRUE(Entails(inst, q, {a}));
  EXPECT_FALSE(Entails(inst, q, {c}));
}

TEST_F(HomTest, InjectiveEntailment) {
  // q: x -> y -> z maps into the 2-cycle classically but the injective
  // image needs 3 distinct vertices.
  Instance two_cycle = MustParseInstance(&u_, "E(a,b). E(b,a).");
  Cq path3 = MustParseCq(&u_, "? :- E(x,y), E(y,z)");
  EXPECT_TRUE(Entails(two_cycle, path3));
  EXPECT_FALSE(EntailsInjectively(two_cycle, path3));

  Instance path = MustParseInstance(&u_, "E(c,d). E(d,e).");
  EXPECT_TRUE(EntailsInjectively(path, path3));
}

TEST_F(HomTest, InjectiveWithRigidCollision) {
  // x cannot injectively map onto the image of constant a.
  Instance inst = MustParseInstance(&u_, "E(a,a).");
  Cq q = MustParseCq(&u_, "? :- E(a,x)");
  EXPECT_TRUE(Entails(inst, q));
  EXPECT_FALSE(EntailsInjectively(inst, q));
}

TEST_F(HomTest, UcqEntailment) {
  Instance inst = MustParseInstance(&u_, "E(a,b).");
  Ucq ucq(
      {MustParseCq(&u_, "? :- E(x,x)"), MustParseCq(&u_, "? :- E(x,y)")});
  EXPECT_TRUE(Entails(inst, ucq));
}

TEST_F(HomTest, FindAllCountsHomomorphisms) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(a,c).");
  Cq q = MustParseCq(&u_, "? :- E(x,y)");
  HomSearch search(q.atoms(), &inst);
  EXPECT_EQ(search.FindAll().size(), 2u);
  EXPECT_EQ(search.FindAll({}, 1).size(), 1u);
}

TEST_F(HomTest, MapsIntoAndEquivalence) {
  Instance a = MustParseInstance(&u_, "E(a,b).");
  Universe u2;
  // Instances share the universe in practice; build the bigger one in u_.
  Instance b = MustParseInstance(&u_, "E(a,b). E(b,c).");
  EXPECT_TRUE(MapsInto(a, b));
  EXPECT_FALSE(MapsInto(b, a));  // E(b,c) has no image fixing constants
  EXPECT_FALSE(HomEquivalent(a, b));
  EXPECT_TRUE(HomEquivalent(a, a));
}

TEST_F(HomTest, NullsAreFlexible) {
  PredicateId e = u_.InternPredicate("E", 2);
  Term a = u_.InternConstant("a");
  Term n = u_.FreshNull();
  Instance with_null(&u_);
  with_null.AddAtom(Atom(e, {a, n}));
  Instance with_const = MustParseInstance(&u_, "E(a,b).");
  // The null can map onto b, but b cannot map onto the null.
  EXPECT_TRUE(MapsInto(with_null, with_const));
  EXPECT_FALSE(MapsInto(with_const, with_null));
}

TEST_F(HomTest, SubsumptionDirection) {
  // E(x,y) is more general than E(x,x).
  Cq general = MustParseCq(&u_, "? :- E(x,y)");
  Cq specific = MustParseCq(&u_, "? :- E(z,z)");
  EXPECT_TRUE(Subsumes(general, specific));
  EXPECT_FALSE(Subsumes(specific, general));
}

TEST_F(HomTest, SubsumptionRespectsAnswers) {
  Cq general = MustParseCq(&u_, "?(x,y) :- E(x,y)");
  Cq swapped = MustParseCq(&u_, "?(v,w) :- E(w,v)");
  // E(x,y) with answers (x,y) does not subsume E(w,v) with answers (v,w):
  // the hom must send x↦v, y↦w but the edge goes the other way.
  EXPECT_FALSE(Subsumes(general, swapped));
  EXPECT_TRUE(Subsumes(general, general));
}

TEST_F(HomTest, CoreRemovesRedundantAtoms) {
  // E(x,y) ∧ E(x,z) cores to E(x,y) for a Boolean query.
  Cq q = MustParseCq(&u_, "? :- E(x,y), E(x,z)");
  Cq core = Core(q, &u_);
  EXPECT_EQ(core.atoms().size(), 1u);
}

TEST_F(HomTest, CoreKeepsAnswerVariables) {
  Cq q = MustParseCq(&u_, "?(y,z) :- E(x,y), E(x,z)");
  Cq core = Core(q, &u_);
  // y and z are answer variables: both atoms must survive.
  EXPECT_EQ(core.atoms().size(), 2u);
}

TEST_F(HomTest, CoreOfTriangleWithLoopIsLoop) {
  // A triangle plus a loop retracts onto the loop.
  Cq q = MustParseCq(&u_, "? :- E(x,y), E(y,z), E(z,x), E(w,w)");
  Cq core = Core(q, &u_);
  EXPECT_EQ(core.atoms().size(), 1u);
  EXPECT_EQ(core.atoms()[0].arg(0), core.atoms()[0].arg(1));
}

TEST_F(HomTest, SeedContradictionReturnsNothing) {
  Instance inst = MustParseInstance(&u_, "E(a,b).");
  Cq q = MustParseCq(&u_, "?(x) :- E(x,y)");
  HomSearch search(q.atoms(), &inst);
  Substitution seed;
  seed.Bind(u_.FindConstant("b"), u_.FindConstant("a"));
  EXPECT_FALSE(search.Exists(seed));
}

// Serializes a homomorphism restricted to the variables of `atoms` into a
// canonical, comparable form.
std::vector<std::pair<std::uint32_t, std::uint32_t>> Canonical(
    const std::vector<Atom>& atoms, const Substitution& h) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.IsRigid()) continue;
      out.emplace_back(t.raw(), h.Apply(t).raw());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST_F(HomTest, ForEachDeltaMatchesFilteredForEach) {
  // Two insertion waves; the delta-anchored enumeration must visit exactly
  // the homomorphisms that use at least one second-wave atom, each once.
  Instance grown = MustParseInstance(&u_, "E(a,b). E(b,c). E(c,a).");
  const std::uint32_t wave1 = static_cast<std::uint32_t>(grown.size());
  Instance extras = MustParseInstance(&u_, "E(c,d). E(d,a). E(b,d).");
  for (const Atom& extra : extras.atoms()) grown.AddAtom(extra);
  const std::uint32_t wave2 = static_cast<std::uint32_t>(grown.size());
  Cq q = MustParseCq(&u_, "? :- E(x,y), E(y,z)");
  HomSearch search(q.atoms(), &grown);

  // Brute force: all homomorphisms, filtered by "some image in the delta".
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> expected;
  search.ForEach({}, [&](const Substitution& h) {
    bool touches_delta = false;
    for (const Atom& a : q.atoms()) {
      std::size_t idx = grown.IndexOf(h.Apply(a));
      EXPECT_NE(idx, SIZE_MAX);
      if (idx >= wave1 && idx < wave2) touches_delta = true;
    }
    if (touches_delta) expected.push_back(Canonical(q.atoms(), h));
    return true;
  });

  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> actual;
  std::size_t visited = search.ForEachDelta({}, wave1, wave2,
                                            [&](const Substitution& h) {
                                              actual.push_back(
                                                  Canonical(q.atoms(), h));
                                              return true;
                                            });
  EXPECT_EQ(visited, actual.size());
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);  // same multiset: exactly once each
  EXPECT_FALSE(actual.empty());
}

TEST_F(HomTest, ForEachDeltaEmptyOrInvertedDelta) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(b,c).");
  Cq q = MustParseCq(&u_, "? :- E(x,y)");
  HomSearch search(q.atoms(), &inst);
  EXPECT_EQ(search.ForEachDelta({}, 2, 2, [](const Substitution&) {
    return true;
  }), 0u);
  EXPECT_EQ(search.ForEachDelta({}, 3, 1, [](const Substitution&) {
    return true;
  }), 0u);
  // Delta covering the whole instance behaves like ForEach.
  EXPECT_EQ(search.ForEachDelta(
                {}, 0, static_cast<std::uint32_t>(inst.size()),
                [](const Substitution&) { return true; }),
            2u);
}

TEST_F(HomTest, ForEachDeltaHonorsSeedAndEarlyStop) {
  Instance inst = MustParseInstance(&u_, "E(a,b). E(a,c). E(b,c).");
  Cq q = MustParseCq(&u_, "?(x) :- E(x,y)");
  HomSearch search(q.atoms(), &inst);
  Substitution seed;
  seed.Bind(q.answers()[0], u_.FindConstant("a"));
  // Delta = the last two atoms; only E(a,c) extends the seed.
  std::size_t n = search.ForEachDelta(seed, 2, 4, [&](const Substitution& h) {
    EXPECT_EQ(h.Apply(q.answers()[0]), u_.FindConstant("a"));
    return true;
  });
  EXPECT_EQ(n, 1u);
  // Early stop after the first visit.
  std::size_t stops = search.ForEachDelta({}, 1, 4, [](const Substitution&) {
    return false;
  });
  EXPECT_EQ(stops, 1u);
}

TEST_F(HomTest, OrderForSearchPrefersFewerFreshVariables) {
  // Regression: the documented "fewer fresh variables" tiebreak was not
  // implemented — among atoms with equal shared/rigid counts, the one that
  // introduces fewer fresh variables must be searched first.
  Instance inst = MustParseInstance(&u_, "E(a,b).");
  Term x = u_.InternVariable("x");
  Term y = u_.InternVariable("y");
  Term z = u_.InternVariable("z");
  PredicateId p3 = u_.InternPredicate("P", 3);
  PredicateId q2 = u_.InternPredicate("Q", 2);
  Atom wide(p3, {x, y, z});
  Atom narrow(q2, {x, y});
  HomSearch search({wide, narrow}, &inst);
  ASSERT_EQ(search.ordered_source().size(), 2u);
  EXPECT_EQ(search.ordered_source()[0], narrow);
  EXPECT_EQ(search.ordered_source()[1], wide);
  // Repeated variables only count once: R(w,w) introduces one fresh
  // variable and beats Q(x,y) with two.
  PredicateId r2 = u_.InternPredicate("R", 2);
  Term w = u_.InternVariable("w");
  Atom repeated(r2, {w, w});
  HomSearch search2({narrow, repeated}, &inst);
  EXPECT_EQ(search2.ordered_source()[0], repeated);
}

}  // namespace
}  // namespace bddfc
