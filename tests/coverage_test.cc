// Coverage round-up: small public APIs not exercised elsewhere.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "graph/undirected.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "multiset/multiset.h"
#include "valley/chase_order.h"

namespace bddfc {
namespace {

TEST(CoverageTest, UcqSizeHelpers) {
  Universe u;
  Ucq q({MustParseCq(&u, "? :- E(x,y)"),
         MustParseCq(&u, "? :- E(x,y), E(y,z), E(z,w)")});
  EXPECT_EQ(q.TotalAtoms(), 4u);
  EXPECT_EQ(q.MaxDisjunctSize(), 3u);
  EXPECT_FALSE(q.empty());
  Ucq empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.TotalAtoms(), 0u);
  EXPECT_EQ(empty.MaxDisjunctSize(), 0u);
}

TEST(CoverageTest, InstanceIndexOf) {
  Universe u;
  Instance inst = MustParseInstance(&u, "E(a,b). E(b,c).");
  PredicateId e = u.FindPredicate("E");
  Term a = u.FindConstant("a");
  Term b = u.FindConstant("b");
  Term c = u.FindConstant("c");
  EXPECT_EQ(inst.IndexOf(Atom(e, {a, b})), 1u);  // 0 is ⊤
  EXPECT_EQ(inst.IndexOf(Atom(e, {b, c})), 2u);
  EXPECT_EQ(inst.IndexOf(Atom(e, {c, a})), SIZE_MAX);
}

TEST(CoverageTest, InstanceMapSubstitution) {
  Universe u;
  Instance inst = MustParseInstance(&u, "E(a,b).");
  Substitution sigma;
  sigma.Bind(u.FindConstant("b"), u.FindConstant("a"));
  Instance mapped = inst.Map(sigma);
  PredicateId e = u.FindPredicate("E");
  Term a = u.FindConstant("a");
  EXPECT_TRUE(mapped.Contains(Atom(e, {a, a})));
}

TEST(CoverageTest, MultisetOverStrings) {
  Multiset<std::string> m{"b", "a", "b"};
  EXPECT_EQ(m.Count("b"), 2u);
  EXPECT_EQ(*m.Max(), "b");
  Multiset<std::string> n{"c"};
  EXPECT_TRUE(LexLess(m, n));  // "c" > "b"
}

TEST(CoverageTest, UndirectedRemoveEdge) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  g.RemoveEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  g.RemoveEdge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 1u);
  // Self-edges are ignored on insert.
  g.AddEdge(2, 2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CoverageTest, ChaseOrderOnEdgelessInstance) {
  Universe u;
  Instance inst = MustParseInstance(&u, "P(a). P(b).");
  ChaseOrder order(inst);
  EXPECT_TRUE(order.IsDag());
  EXPECT_TRUE(order.terms().empty());  // unary atoms define no order
  EXPECT_FALSE(order.Less(u.FindConstant("a"), u.FindConstant("b")));
}

TEST(CoverageTest, FreshPredicateNamesAreUnique) {
  Universe u;
  PredicateId p1 = u.FreshPredicate("Gen", 2);
  PredicateId p2 = u.FreshPredicate("Gen", 2);
  EXPECT_NE(p1, p2);
  EXPECT_NE(u.PredicateName(p1), u.PredicateName(p2));
  EXPECT_EQ(u.ArityOf(p1), 2);
}

TEST(CoverageTest, ChaseUniverseAccessor) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u, "E(a,b).");
  ObliviousChase chase(db, rules, {.exec = {.max_steps = 1}});
  EXPECT_EQ(chase.universe(), &u);
  EXPECT_EQ(chase.rules().size(), 1u);
}

TEST(CoverageTest, PrintInstanceIncludesTop) {
  Universe u;
  Instance inst(&u);
  std::string text = ToString(u, inst);
  EXPECT_NE(text.find("true"), std::string::npos);
}

TEST(CoverageTest, DisjointUnionOfFlexibleInstances) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Instance i1(&u);
  i1.AddAtom(Atom(e, {u.FreshNull(), u.FreshNull()}));
  Instance i2(&u);
  i2.AddAtom(Atom(e, {u.FreshNull(), u.FreshNull()}));
  Instance both = Instance::DisjointUnion(i1, i2);
  EXPECT_EQ(both.AtomsWith(e).size(), 2u);
  EXPECT_EQ(both.ActiveDomain().size(), 4u);
}

TEST(CoverageTest, AtomMentions) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Term c = u.InternConstant("c");
  Atom atom(e, {a, b});
  EXPECT_TRUE(atom.Mentions(a));
  EXPECT_TRUE(atom.Mentions(b));
  EXPECT_FALSE(atom.Mentions(c));
}

TEST(CoverageTest, SubstitutionLookupVsApply) {
  Universe u;
  Term x = u.InternVariable("x");
  Term y = u.InternVariable("y");
  Substitution s;
  s.Bind(x, y);
  EXPECT_EQ(s.Lookup(x), y);
  EXPECT_FALSE(s.Lookup(y).IsValid());
  EXPECT_EQ(s.Apply(y), y);
  EXPECT_TRUE(s.IsBound(x));
  EXPECT_FALSE(s.IsBound(y));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace bddfc
