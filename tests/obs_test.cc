// Tests for the obs layer (src/obs/): trace session determinism, span
// mechanics, metric instruments under concurrency, the disabled-mode
// zero-allocation guarantee, Chrome trace JSON shape, the progress
// monitor, cooperative cancellation — and the load-bearing contract that
// tracing only observes: the chase is bit-identical with the session on
// or off, across both engines, both storage backends, and thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstdio>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "api/reasoner.h"
#include "chase/chase.h"
#include "logic/parser.h"
#include "obs/obs.h"
#include "obs/progress.h"

// Global allocation counter backing the disabled-mode zero-allocation
// test. Counting relaxed-atomically keeps the override cheap enough not
// to distort the rest of the suite.
static std::atomic<std::size_t> g_allocations{0};

// The full overload family is replaced: leaving the nothrow forms to
// the runtime (or to a sanitizer's interceptors) while taking over the
// throwing ones makes ASan see an operator-new allocation released via
// our free()-backed delete and abort on the alloc-dealloc mismatch.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace bddfc {
namespace {

using obs::TraceEvent;
using obs::TraceSession;

// Every test leaves the global session stopped and empty (it is process
// state shared by the whole binary).
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceSession::Global().Stop();
    TraceSession::Global().Clear();
    obs::ClearCancel();
  }
};

TraceEvent MakeEvent(const char* name, std::int64_t ts_ns,
                     std::int64_t dur_ns) {
  TraceEvent ev;
  ev.cat = "test";
  ev.name = name;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  return ev;
}

// The export is a pure function of the recorded event multiset: threads
// recording the same events in any interleaving produce byte-identical
// JSON (the merge sorts by timestamp, thread, duration).
TEST_F(ObsTest, ExportIsDeterministicAcrossRecordingInterleavings) {
  auto record_from_threads = [](bool reverse) {
    TraceSession& session = TraceSession::Global();
    session.Start();
    // Two threads, each recording a fixed slice of one event set; the
    // `reverse` run swaps which thread records which slice and the order
    // within each slice.
    std::vector<TraceEvent> events;
    for (int i = 0; i < 100; ++i) {
      events.push_back(MakeEvent("e", /*ts_ns=*/i * 10, /*dur_ns=*/5));
    }
    auto record_range = [&events](std::size_t begin, std::size_t end,
                                  bool backwards) {
      TraceSession& s = TraceSession::Global();
      if (backwards) {
        for (std::size_t i = end; i-- > begin;) s.Record(events[i]);
      } else {
        for (std::size_t i = begin; i < end; ++i) s.Record(events[i]);
      }
    };
    std::thread a(record_range, 0, 50, reverse);
    std::thread b(record_range, 50, 100, !reverse);
    a.join();
    b.join();
    session.Stop();
    std::string json = session.ExportChromeJson();
    session.Clear();
    return json;
  };
  const std::string forward = record_from_threads(false);
  const std::string reversed = record_from_threads(true);
  // Thread registration order can differ between runs, but every event
  // here carries distinct timestamps, so the sorted export must agree on
  // event order; tids may differ per-thread, so compare event counts and
  // the timestamp sequence rather than raw bytes for the cross-run pair…
  EXPECT_EQ(forward.size(), reversed.size());
  // …and byte-identity must hold for repeated exports of one session.
  TraceSession& session = TraceSession::Global();
  session.Start();
  session.Record(MakeEvent("x", 1, 2));
  session.Record(MakeEvent("y", 3, 4));
  session.Stop();
  EXPECT_EQ(session.ExportChromeJson(), session.ExportChromeJson());
}

// The span-producing tests require the instrumentation to be compiled in
// (-DBDDFC_OBS=ON, the default); under BDDFC_OBS_DISABLED the spans and
// free helpers are empty inlines and there is nothing to record.
#ifndef BDDFC_OBS_DISABLED

TEST_F(ObsTest, SpanNestingRecordsContainedDurations) {
  TraceSession& session = TraceSession::Global();
  session.Start();
  {
    obs::ObsSpan outer("test", "outer");
    EXPECT_TRUE(outer.recording());
    {
      obs::ObsSpan inner("test", "inner");
      inner.Arg("k", 7);
    }
    outer.Arg("n", 1).Arg("m", 2);
  }
  session.Stop();
  const std::string json = session.ExportChromeJson();
  // The inner span closed first, so it appears with a duration contained
  // in the outer's window; both names and args are present.
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":7"), std::string::npos);
  EXPECT_NE(json.find("\"n\":1"), std::string::npos);
  EXPECT_NE(json.find("\"m\":2"), std::string::npos);
  EXPECT_EQ(session.EventCount(), 2u);
}

TEST_F(ObsTest, SpanEndIsIdempotentAndStopsRecording) {
  TraceSession& session = TraceSession::Global();
  session.Start();
  {
    obs::ObsSpan span("test", "early");
    span.End();
    EXPECT_FALSE(span.recording());
    span.End();  // second End and the destructor must not double-record
  }
  session.Stop();
  EXPECT_EQ(session.EventCount(), 1u);
}

TEST_F(ObsTest, EventsBeforeStartAndAfterStopAreDropped) {
  TraceSession& session = TraceSession::Global();
  session.Record(MakeEvent("before", 0, 0));
  EXPECT_EQ(session.EventCount(), 0u);
  session.Start();
  session.Record(MakeEvent("during", 0, 0));
  session.Stop();
  session.Record(MakeEvent("after", 0, 0));
  EXPECT_EQ(session.EventCount(), 1u);
}

TEST_F(ObsTest, ChromeJsonSchema) {
  TraceSession& session = TraceSession::Global();
  session.Start();
  {
    obs::ObsSpan span("chase", "chase.step");
    span.Arg("step", 1);
  }
  obs::Instant("sched", "sched.stratum_active", "stratum", 0);
  obs::CounterEvent("chase", "chase.atoms_total", 42);
  session.Stop();
  const std::string json = session.ExportChromeJson();

  // Top-level shape plus the three phases and the metadata record.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Counter events carry their value under args.value (the Perfetto
  // counter-track contract).
  EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
  // Braces/brackets balance (no string in the export contains either:
  // all names are static identifiers).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

#endif  // BDDFC_OBS_DISABLED

TEST_F(ObsTest, DisabledSessionAllocatesNothing) {
  TraceSession& session = TraceSession::Global();
  ASSERT_FALSE(session.enabled());
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::ObsSpan span("test", "disabled");
    span.Arg("i", static_cast<std::uint64_t>(i));
    obs::Instant("test", "instant", "i", i);
    obs::CounterEvent("test", "counter", i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST_F(ObsTest, CounterAndGaugeUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Gauge* gauge = registry.GetGauge("g");
  // Interning is idempotent: same name, same pointer, forever.
  EXPECT_EQ(counter, registry.GetCounter("c"));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter, gauge] {
      for (int i = 0; i < 10000; ++i) {
        counter->Add(1);
        gauge->Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), 40000u);
  EXPECT_EQ(gauge->Value(), 40000);
}

TEST_F(ObsTest, HistogramTracksExactMoments) {
  obs::Histogram hist;
  hist.Observe(1);
  hist.Observe(2);
  hist.Observe(3);
  hist.Observe(1000);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_EQ(hist.Sum(), 1006u);
  EXPECT_EQ(hist.Min(), 1u);
  EXPECT_EQ(hist.Max(), 1000u);
  // Log2 buckets: bit_width(1)=1, bit_width(2)=bit_width(3)=2,
  // bit_width(1000)=10; the extremes clamp into the last bucket.
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 2u);
  EXPECT_EQ(hist.BucketCount(10), 1u);
  hist.Observe(~0ull);
  EXPECT_EQ(hist.BucketCount(obs::Histogram::kBuckets - 1), 1u);
}

TEST_F(ObsTest, RegistrySnapshotFlattensAndSkipsZeros) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zero");  // never moved: skipped by default
  registry.GetCounter("a")->Add(3);
  registry.GetGauge("b")->Set(-7);
  obs::Histogram* h = registry.GetHistogram("h");
  h->Observe(10);
  h->Observe(20);
  const auto snapshot = registry.Snapshot();
  auto value_of = [&snapshot](const std::string& name) -> double {
    for (const auto& [k, v] : snapshot) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "missing key " << name;
    return -1;
  };
  EXPECT_EQ(value_of("a"), 3);
  EXPECT_EQ(value_of("b"), -7);
  EXPECT_EQ(value_of("h.count"), 2);
  EXPECT_EQ(value_of("h.sum"), 30);
  EXPECT_EQ(value_of("h.mean"), 15);
  EXPECT_EQ(value_of("h.min"), 10);
  EXPECT_EQ(value_of("h.max"), 20);
  for (const auto& [k, v] : snapshot) EXPECT_NE(k, "zero");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a\": 3"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// The tentpole guarantee: tracing must not perturb the chase. Same rules,
// same database, same config — the run with a live trace session must be
// bit-identical (canonical atoms AND trigger count) to the run without,
// for every engine x storage x thread-count combination.
TEST_F(ObsTest, TracingOnOffBitIdenticalDifferential) {
  const std::string rules_text =
      "E(x,y), E(y,z) -> E(x,z)\n"
      "E(x,y) -> P(x,w)\n";
  const std::string db_text = "E(a,b). E(b,c). E(c,d). E(d,e).";
  struct Run {
    Universe universe;
    std::unique_ptr<ObliviousChase> chase;
  };
  auto run_chase = [&](ChaseOptions options, bool traced, Run* run) {
    RuleSet rules = MustParseRuleSet(&run->universe, rules_text);
    Instance db = MustParseInstance(&run->universe, db_text);
    if (traced) TraceSession::Global().Start();
    run->chase =
        std::make_unique<ObliviousChase>(db, std::move(rules), options);
    run->chase->Run();
    if (traced) {
      TraceSession::Global().Stop();
#ifndef BDDFC_OBS_DISABLED
      EXPECT_GT(TraceSession::Global().EventCount(), 0u);
#endif
      TraceSession::Global().Clear();
    }
  };
  for (ChaseEngine engine : {ChaseEngine::kTrigger, ChaseEngine::kSegment}) {
    for (StorageKind storage : {StorageKind::kRow, StorageKind::kColumn}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ChaseOptions options;
        options.exec.engine = engine;
        options.exec.storage = storage;
        options.exec.num_threads = threads;
        options.exec.max_steps = 8;
        Run untraced, traced;
        run_chase(options, false, &untraced);
        run_chase(options, true, &traced);
        EXPECT_EQ(untraced.chase->CanonicalAtoms(),
                  traced.chase->CanonicalAtoms())
            << "engine=" << static_cast<int>(engine)
            << " storage=" << static_cast<int>(storage)
            << " threads=" << threads;
        EXPECT_EQ(untraced.chase->TriggersFired(),
                  traced.chase->TriggersFired());
      }
    }
  }
}

// The stats-unification contract: a private registry passed through
// ExecutionConfig::metrics sees exactly the counts ReasonerStats reports.
TEST_F(ObsTest, PrivateRegistryAgreesWithReasonerStats) {
  Universe universe;
  RuleSet rules = MustParseRuleSet(
      &universe, "Advises(p,s) -> Supervised(s)\n");
  Instance db = MustParseInstance(
      &universe, "Advises(ada,sam). Advises(bob,kim).");
  obs::MetricsRegistry registry;
  ReasonerOptions options;
  options.chase.exec.metrics = &registry;
  Reasoner reasoner(db, std::move(rules), options);
  reasoner.Materialize();
  const ReasonerStats& stats = reasoner.stats();
  EXPECT_TRUE(stats.materialized);
  EXPECT_EQ(registry.GetCounter("chase.triggers_fired")->Value(),
            stats.triggers_fired);
  EXPECT_EQ(
      static_cast<std::size_t>(registry.GetGauge("chase.atoms")->Value()),
      stats.chase_atoms);
  EXPECT_EQ(registry.GetHistogram("chase.step_ms")->Count(),
            stats.chase_steps.size());
}

TEST_F(ObsTest, CancelRequestTruncatesChase) {
  Universe universe;
  RuleSet rules =
      MustParseRuleSet(&universe, "P(x) -> E(x,y), P(y)\n");  // diverges
  Instance db = MustParseInstance(&universe, "P(a).");
  ChaseOptions options;
  options.exec.max_steps = 1000000;
  options.exec.max_atoms = 1000000;
  obs::RequestCancel();
  ObliviousChase chase(db, std::move(rules), options);
  chase.Run();
  obs::ClearCancel();
  // The pre-set cancel flag stops the run at the first firing boundary —
  // far short of the atom budget a diverging chase would otherwise chew
  // through.
  EXPECT_LT(chase.Result().size(), 1000u);
}

TEST_F(ObsTest, ProgressMonitorPrintsHeartbeatAndSummary) {
  obs::MetricsRegistry registry;
  registry.GetGauge("chase.step")->Set(3);
  registry.GetGauge("chase.atoms")->Set(120);
  registry.GetCounter("chase.triggers_fired")->Add(45);
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    obs::ProgressMonitor::Options options;
    options.interval_ms = 5;
    options.out = out;
    obs::ProgressMonitor monitor(&registry, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    monitor.Stop();
    EXPECT_GE(monitor.ticks(), 1);
  }
  std::rewind(out);
  std::string contents(4096, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), out));
  std::fclose(out);
  EXPECT_NE(contents.find("[progress]"), std::string::npos);
  EXPECT_NE(contents.find("done:"), std::string::npos);
  EXPECT_NE(contents.find("atoms 120"), std::string::npos);
}

TEST_F(ObsTest, ProgressWatchdogWarnsNearAtomBudget) {
  obs::MetricsRegistry registry;
  registry.GetGauge("chase.atoms")->Set(95);
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  {
    obs::ProgressMonitor::Options options;
    options.interval_ms = 5;
    options.watchdog_max_atoms = 100;  // gauge sits at 95% of the budget
    options.out = out;
    obs::ProgressMonitor monitor(&registry, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    monitor.Stop();
  }
  std::rewind(out);
  std::string contents(8192, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), out));
  std::fclose(out);
  EXPECT_NE(contents.find("[watchdog:"), std::string::npos);
}

}  // namespace
}  // namespace bddfc
