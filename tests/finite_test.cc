// Unit tests for the finite-model search: the finite-semantics side of
// the bdd ⇒ fc conjecture.

#include <gtest/gtest.h>

#include "finite/model_search.h"
#include "graph/digraph.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

class FiniteTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(FiniteTest, IsFiniteModelChecksRules) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  // The 2-cycle satisfies the successor rule.
  Instance cycle = MustParseInstance(&u_, "E(a,b). E(b,a).");
  EXPECT_TRUE(IsFiniteModel(cycle, rules));
  // A dead-end path does not (b has no successor).
  Instance path = MustParseInstance(&u_, "E(a,b).");
  EXPECT_FALSE(IsFiniteModel(path, rules));
}

TEST_F(FiniteTest, IsFiniteModelWithDatalog) {
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> E(x,z)");
  Instance closed = MustParseInstance(&u_, "E(a,b). E(b,c). E(a,c).");
  EXPECT_TRUE(IsFiniteModel(closed, rules));
  Instance open = MustParseInstance(&u_, "E(a,b). E(b,c).");
  EXPECT_FALSE(IsFiniteModel(open, rules));
}

TEST_F(FiniteTest, SuccessorRuleHasLoopFreeFiniteModel) {
  // Without transitivity, the 2-cycle is a loop-free finite model: the
  // finite and unrestricted semantics agree on Loop_E (both "no").
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,z)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  ModelSearchResult r =
      FindLoopFreeFiniteModel(db, rules, e, &u_, {.domain_size = 2});
  EXPECT_TRUE(r.found);
  ASSERT_TRUE(r.model.has_value());
  EXPECT_TRUE(IsFiniteModel(*r.model, rules));
  InstanceGraph eg = GraphOfPredicate(*r.model, e);
  EXPECT_FALSE(eg.graph.HasLoop());
}

TEST_F(FiniteTest, Example1HasNoLoopFreeFiniteModel) {
  // The fc gap of Example 1: with transitivity added, every finite model
  // containing E(a,b) has a loop — exhaustively verified over domains of
  // size 2 and 3.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  for (int n : {2, 3}) {
    ModelSearchResult r =
        FindLoopFreeFiniteModel(db, rules, e, &u_, {.domain_size = n});
    EXPECT_FALSE(r.found) << "domain " << n;
    EXPECT_TRUE(r.exhaustive) << "domain " << n;
    EXPECT_GT(r.candidates_checked, 0u);
  }
}

TEST_F(FiniteTest, BddifiedExample1AlsoHasNoLoopFreeFiniteModel) {
  // Theorem 1's consistency: the bdd-ified set entails the loop already
  // in the chase, so of course no loop-free finite model exists either —
  // the two semantics agree, as fc demands.
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,x1), E(y,y1) -> E(x,y1)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  ModelSearchResult r =
      FindLoopFreeFiniteModel(db, rules, e, &u_, {.domain_size = 3});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhaustive);
}

TEST_F(FiniteTest, AvoidArbitraryQuery) {
  // Find a model of the symmetric-closure rule avoiding a 2-cycle — it
  // must put b's back-edge elsewhere… impossible: E(x,y)→E(y,x) forces
  // the 2-cycle. Exhaustive "not found" expected.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y) -> E(y,x)");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  Cq two_cycle = MustParseCq(&u_, "? :- E(x,y), E(y,x)");
  ModelSearchResult r = FindFiniteModelAvoiding(db, rules, two_cycle, &u_,
                                                {.domain_size = 3});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.exhaustive);
}

TEST_F(FiniteTest, UnaryPredicatesParticipate) {
  RuleSet rules = MustParseRuleSet(&u_, "P(x) -> E(x,y), P(y)");
  Instance db = MustParseInstance(&u_, "P(a).");
  PredicateId e = u_.FindPredicate("E");
  // P propagates along E: a loop-free finite model needs an E-cycle
  // through P-elements — a 2-cycle works.
  ModelSearchResult r =
      FindLoopFreeFiniteModel(db, rules, e, &u_, {.domain_size = 2});
  EXPECT_TRUE(r.found);
}

TEST_F(FiniteTest, CandidateCapReportsTruncation) {
  RuleSet rules = MustParseRuleSet(&u_,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  Instance db = MustParseInstance(&u_, "E(a,b).");
  PredicateId e = u_.FindPredicate("E");
  ModelSearchResult r = FindLoopFreeFiniteModel(
      db, rules, e, &u_, {.domain_size = 3, .max_candidates = 4});
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_EQ(r.candidates_checked, 4u);
}

}  // namespace
}  // namespace bddfc
