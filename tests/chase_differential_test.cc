// Differential tests for the chase's trigger enumerators: the delta-driven
// (semi-naive) engine, the naive full re-enumeration escape hatch, and the
// parallel executor (ChaseOptions::num_threads > 1) must produce
// bit-identical results — same atoms in the same order, same labeled
// nulls, same trigger counts, same per-step accounting, same provenance —
// across all three chase variants and every tested thread count, on
// deterministic and randomized generator workloads.
//
// Each engine runs in its own Universe built by an identical interning
// sequence, so predicate/constant ids and invented nulls line up exactly
// and instances can be compared atom for atom across universes.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.h"
#include "chase/chase.h"
#include "generators/workload.h"
#include "logic/parser.h"

namespace bddfc {
namespace {

struct EngineRun {
  Universe universe;
  std::unique_ptr<ObliviousChase> chase;
};

// Builds the seed workload inside run->universe and executes the chase with
// the given enumeration mode. The construction only depends on (text|spec,
// seed), never on the enumeration mode, so twin runs intern identical ids.
void RunOnText(const std::string& rules_text, const std::string& db_text,
               ChaseOptions options, bool naive, EngineRun* run) {
  RuleSet rules = MustParseRuleSet(&run->universe, rules_text);
  Instance db = MustParseInstance(&run->universe, db_text);
  options.naive_enumeration = naive;
  run->chase = std::make_unique<ObliviousChase>(db, std::move(rules),
                                                options);
  run->chase->Run();
}

void RunOnRandomWorkload(std::uint64_t seed,
                         const generators::RuleSetSpec& spec,
                         ChaseOptions options, bool naive, EngineRun* run) {
  Rng rng(seed);
  RuleSet rules =
      generators::RandomBinaryRuleSet(&run->universe, spec, &rng);
  Instance db = generators::RandomInstance(&run->universe, rules,
                                           /*num_constants=*/5,
                                           /*num_atoms=*/8, &rng);
  options.naive_enumeration = naive;
  run->chase = std::make_unique<ObliviousChase>(db, std::move(rules),
                                                options);
  run->chase->Run();
}

// The full cross-check: every observable of the two runs must agree.
void ExpectIdentical(const EngineRun& a, const EngineRun& b) {
  const ObliviousChase& x = *a.chase;
  const ObliviousChase& y = *b.chase;
  EXPECT_EQ(x.Saturated(), y.Saturated());
  EXPECT_EQ(x.HitBounds(), y.HitBounds());
  EXPECT_EQ(x.LastStepTruncated(), y.LastStepTruncated());
  ASSERT_EQ(x.StepsExecuted(), y.StepsExecuted());
  EXPECT_EQ(x.TriggersFired(), y.TriggersFired());
  for (std::size_t k = 0; k <= x.StepsExecuted(); ++k) {
    EXPECT_EQ(x.AtomCountAtStep(k), y.AtomCountAtStep(k)) << "step " << k;
  }
  ASSERT_EQ(x.Result().size(), y.Result().size());
  for (std::size_t i = 0; i < x.Result().size(); ++i) {
    // Atom equality is structural over ids, which the twin universes
    // interned identically — this compares order, predicates and nulls.
    ASSERT_EQ(x.Result().atoms()[i], y.Result().atoms()[i]) << "atom " << i;
    EXPECT_EQ(x.StepOfAtom(i), y.StepOfAtom(i));
    const auto& px = x.ProvenanceOf(i);
    const auto& py = y.ProvenanceOf(i);
    EXPECT_EQ(px.database, py.database);
    EXPECT_EQ(px.step, py.step);
    EXPECT_EQ(px.rule_index, py.rule_index);
    EXPECT_EQ(px.trigger.entries(), py.trigger.entries());
  }
  // Term-level provenance: timestamps and creating triggers of every null.
  ASSERT_EQ(a.universe.num_nulls(), b.universe.num_nulls());
  for (Term t : x.Result().ActiveDomain()) {
    EXPECT_EQ(x.TimestampOf(t), y.TimestampOf(t));
    const ChaseTermInfo* ix = x.InfoOf(t);
    const ChaseTermInfo* iy = y.InfoOf(t);
    ASSERT_EQ(ix == nullptr, iy == nullptr);
    if (ix == nullptr) continue;
    EXPECT_EQ(ix->timestamp, iy->timestamp);
    EXPECT_EQ(ix->frontier, iy->frontier);
    EXPECT_EQ(ix->rule_index, iy->rule_index);
    EXPECT_EQ(ix->trigger.entries(), iy->trigger.entries());
  }
}

constexpr ChaseVariant kVariants[] = {ChaseVariant::kOblivious,
                                      ChaseVariant::kSemiOblivious,
                                      ChaseVariant::kRestricted};

const char* VariantName(ChaseVariant v) {
  switch (v) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

TEST(ChaseDifferentialTest, Example1AllVariants) {
  const std::string rules =
      "E(x,y) -> E(y,z)\n"
      "E(x,y), E(y,z) -> E(x,z)\n";
  for (ChaseVariant variant : kVariants) {
    SCOPED_TRACE(VariantName(variant));
    ChaseOptions options{.variant = variant,
                         .exec = {.max_steps = 4, .max_atoms = 20000}};
    EngineRun semi, naive;
    RunOnText(rules, "E(a,b).", options, /*naive=*/false, &semi);
    RunOnText(rules, "E(a,b).", options, /*naive=*/true, &naive);
    ExpectIdentical(semi, naive);
  }
}

TEST(ChaseDifferentialTest, BddifiedExample1AllVariants) {
  const std::string rules =
      "E(x,y) -> E(y,z)\n"
      "E(x,x1), E(y,y1) -> E(x,y1)\n";
  for (ChaseVariant variant : kVariants) {
    SCOPED_TRACE(VariantName(variant));
    ChaseOptions options{.variant = variant,
                         .exec = {.max_steps = 3, .max_atoms = 60000}};
    EngineRun semi, naive;
    RunOnText(rules, "E(a,b).", options, /*naive=*/false, &semi);
    RunOnText(rules, "E(a,b).", options, /*naive=*/true, &naive);
    ExpectIdentical(semi, naive);
  }
}

TEST(ChaseDifferentialTest, DatalogSaturationReachesSameFixpoint) {
  // Saturating runs: both engines must agree that (and when) the chase
  // saturates, not just on bounded prefixes.
  const std::string rules = "E(x,y), E(y,z) -> E(x,z)";
  for (ChaseVariant variant : kVariants) {
    SCOPED_TRACE(VariantName(variant));
    ChaseOptions options{.variant = variant, .exec = {.max_steps = 64}};
    EngineRun semi, naive;
    RunOnText(rules, "E(a,b). E(b,c). E(c,d). E(d,e).", options,
              /*naive=*/false, &semi);
    RunOnText(rules, "E(a,b). E(b,c). E(c,d). E(d,e).", options,
              /*naive=*/true, &naive);
    EXPECT_TRUE(semi.chase->Saturated());
    ExpectIdentical(semi, naive);
  }
}

TEST(ChaseDifferentialTest, BoundedRunsAgreeOnTruncation) {
  // The atom bound cuts a step short: both engines must truncate at the
  // same trigger (the canonical firing order makes this well-defined).
  const std::string rules = "E(x,y) -> E(y,z), E(x,z)";
  for (ChaseVariant variant : kVariants) {
    SCOPED_TRACE(VariantName(variant));
    ChaseOptions options{.variant = variant,
                         .exec = {.max_steps = 100, .max_atoms = 40}};
    EngineRun semi, naive;
    RunOnText(rules, "E(a,b).", options, /*naive=*/false, &semi);
    RunOnText(rules, "E(a,b).", options, /*naive=*/true, &naive);
    ExpectIdentical(semi, naive);
  }
}

TEST(ChaseDifferentialTest, RandomizedWorkloadsAllVariants) {
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 4;
  spec.max_body_atoms = 3;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    for (ChaseVariant variant : kVariants) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " seed " +
                   std::to_string(seed));
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 4, .max_atoms = 4000}};
      EngineRun semi, naive;
      RunOnRandomWorkload(seed, spec, options, /*naive=*/false, &semi);
      RunOnRandomWorkload(seed, spec, options, /*naive=*/true, &naive);
      ExpectIdentical(semi, naive);
    }
  }
}

TEST(ChaseDifferentialTest, RandomizedForwardExistentialWorkloads) {
  // The forward-existential shape (Definition 21) drives the Section 5
  // experiments; give it its own differential sweep with deeper runs.
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 3;
  spec.max_body_atoms = 2;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.25;
  spec.forward_existential_only = true;
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    for (ChaseVariant variant : kVariants) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " seed " +
                   std::to_string(seed));
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 5, .max_atoms = 3000}};
      EngineRun semi, naive;
      RunOnRandomWorkload(seed, spec, options, /*naive=*/false, &semi);
      RunOnRandomWorkload(seed, spec, options, /*naive=*/true, &naive);
      ExpectIdentical(semi, naive);
    }
  }
}

// --- Parallel-vs-serial axis ------------------------------------------------
// The parallel executor must be bit-identical to the serial engine at every
// thread count (thread 1 short-circuits to the serial path and doubles as a
// baseline sanity check).

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

TEST(ChaseDifferentialTest, ParallelMatchesSerialOnExample1) {
  const std::string rules =
      "E(x,y) -> E(y,z)\n"
      "E(x,y), E(y,z) -> E(x,z)\n";
  for (ChaseVariant variant : kVariants) {
    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " threads " +
                   std::to_string(threads));
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 4, .max_atoms = 20000}};
      EngineRun serial, parallel;
      RunOnText(rules, "E(a,b).", options, /*naive=*/false, &serial);
      options.exec.num_threads = threads;
      RunOnText(rules, "E(a,b).", options, /*naive=*/false, &parallel);
      ExpectIdentical(serial, parallel);
    }
  }
}

TEST(ChaseDifferentialTest, ParallelAgreesOnTruncation) {
  // The atom bound cuts a step short; the canonical merge must make the
  // parallel engine truncate at exactly the same trigger.
  const std::string rules = "E(x,y) -> E(y,z), E(x,z)";
  for (ChaseVariant variant : kVariants) {
    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " threads " +
                   std::to_string(threads));
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 100, .max_atoms = 40}};
      EngineRun serial, parallel;
      RunOnText(rules, "E(a,b).", options, /*naive=*/false, &serial);
      options.exec.num_threads = threads;
      RunOnText(rules, "E(a,b).", options, /*naive=*/false, &parallel);
      ExpectIdentical(serial, parallel);
    }
  }
}

TEST(ChaseDifferentialTest, ParallelSaturatesWithSerialOnDatalog) {
  // Saturation (and the restricted variant's satisfaction skipping) must
  // agree: this workload exercises the parallel precheck, whose negative
  // answers get re-checked serially once the step has fired atoms.
  const std::string rules = "E(x,y), E(y,z) -> E(x,z)";
  for (ChaseVariant variant : kVariants) {
    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " threads " +
                   std::to_string(threads));
      ChaseOptions options{.variant = variant, .exec = {.max_steps = 64}};
      EngineRun serial, parallel;
      RunOnText(rules, "E(a,b). E(b,c). E(c,d). E(d,e). E(e,f).", options,
                /*naive=*/false, &serial);
      options.exec.num_threads = threads;
      RunOnText(rules, "E(a,b). E(b,c). E(c,d). E(d,e). E(e,f).", options,
                /*naive=*/false, &parallel);
      EXPECT_TRUE(parallel.chase->Saturated());
      ExpectIdentical(serial, parallel);
    }
  }
}

TEST(ChaseDifferentialTest, ParallelMatchesSerialOnRandomizedWorkloads) {
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 4;
  spec.max_body_atoms = 3;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (ChaseVariant variant : kVariants) {
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 4, .max_atoms = 4000}};
      EngineRun serial;
      RunOnRandomWorkload(seed, spec, options, /*naive=*/false, &serial);
      for (std::size_t threads : kThreadCounts) {
        SCOPED_TRACE(std::string(VariantName(variant)) + " seed " +
                     std::to_string(seed) + " threads " +
                     std::to_string(threads));
        ChaseOptions parallel_options = options;
        parallel_options.exec.num_threads = threads;
        EngineRun parallel;
        RunOnRandomWorkload(seed, spec, parallel_options, /*naive=*/false,
                            &parallel);
        ExpectIdentical(serial, parallel);
      }
    }
  }
}

TEST(ChaseDifferentialTest, ParallelNaiveEnumerationMatchesSerialNaive) {
  // The parallel executor also backs the naive escape hatch (full
  // re-enumeration chunked over the first body atom's image range).
  generators::RuleSetSpec spec;
  spec.num_predicates = 2;
  spec.num_rules = 3;
  spec.max_body_atoms = 2;
  spec.max_head_atoms = 2;
  spec.datalog_fraction = 0.25;
  spec.forward_existential_only = true;
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    for (ChaseVariant variant : kVariants) {
      SCOPED_TRACE(std::string(VariantName(variant)) + " seed " +
                   std::to_string(seed));
      ChaseOptions options{.variant = variant,
                           .exec = {.max_steps = 4, .max_atoms = 3000}};
      EngineRun serial, parallel;
      RunOnRandomWorkload(seed, spec, options, /*naive=*/true, &serial);
      options.exec.num_threads = 4;
      RunOnRandomWorkload(seed, spec, options, /*naive=*/true, &parallel);
      ExpectIdentical(serial, parallel);
    }
  }
}

TEST(ChaseDifferentialTest, IncrementalRunStepsMatchesOneShotRun) {
  // Driving the delta engine step by step (as the Section 5 probes do)
  // must land on the same result as a single Run().
  const std::string rules =
      "E(x,y) -> E(y,z)\n"
      "E(x,y), E(y,z) -> E(x,z)\n";
  ChaseOptions options{.exec = {.max_steps = 4, .max_atoms = 20000}};
  EngineRun incremental, oneshot;
  {
    RuleSet rs = MustParseRuleSet(&incremental.universe, rules);
    Instance db = MustParseInstance(&incremental.universe, "E(a,b).");
    incremental.chase =
        std::make_unique<ObliviousChase>(db, std::move(rs), options);
    for (std::size_t k = 1; k <= 4; ++k) incremental.chase->RunSteps(k);
  }
  RunOnText(rules, "E(a,b).", options, /*naive=*/false, &oneshot);
  ExpectIdentical(incremental, oneshot);
}

}  // namespace
}  // namespace bddfc
