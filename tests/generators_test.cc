// Unit tests for the workload generators.

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "generators/workload.h"
#include "graph/digraph.h"
#include "graph/tournament.h"
#include "homomorphism/homomorphism.h"
#include "logic/parser.h"
#include "surgery/properties.h"

namespace bddfc {
namespace {

using generators::RuleSetSpec;

TEST(GeneratorsTest, RandomRuleSetRespectsSpec) {
  Universe u;
  Rng rng(99);
  RuleSetSpec spec;
  spec.num_predicates = 4;
  spec.num_rules = 6;
  spec.max_body_atoms = 3;
  spec.max_head_atoms = 2;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  ASSERT_EQ(rules.size(), 6u);
  for (const Rule& r : rules) {
    EXPECT_GE(r.body().size(), 1u);
    EXPECT_LE(r.body().size(), 3u);
    EXPECT_GE(r.head().size(), 1u);
    EXPECT_LE(r.head().size(), 2u);
    for (const Atom& a : r.body()) EXPECT_EQ(a.arity(), 2u);
    for (const Atom& a : r.head()) EXPECT_EQ(a.arity(), 2u);
  }
}

TEST(GeneratorsTest, ForwardExistentialSpecHolds) {
  Universe u;
  Rng rng(7);
  RuleSetSpec spec;
  spec.num_rules = 10;
  spec.datalog_fraction = 0.0;
  spec.forward_existential_only = true;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  EXPECT_TRUE(surgery::IsForwardExistential(rules));
  for (const Rule& r : rules) {
    EXPECT_FALSE(r.IsDatalog());
  }
}

TEST(GeneratorsTest, DatalogFractionOne) {
  Universe u;
  Rng rng(13);
  RuleSetSpec spec;
  spec.num_rules = 10;
  spec.datalog_fraction = 1.0;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  for (const Rule& r : rules) {
    EXPECT_TRUE(r.IsDatalog());
  }
}

TEST(GeneratorsTest, GeneratedBodiesAreConnected) {
  // Connected bodies: any generated rule is triggerable on a clique
  // instance (every variable assignment pattern realizable).
  Universe u;
  Rng rng(21);
  RuleSetSpec spec;
  spec.num_rules = 8;
  spec.max_body_atoms = 3;
  RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
  // Build the all-pairs instance over 2 constants for every predicate.
  Instance db(&u);
  Term c0 = u.InternConstant("c0");
  Term c1 = u.InternConstant("c1");
  for (PredicateId p : SignatureOf(rules)) {
    if (u.ArityOf(p) != 2) continue;
    for (Term a : {c0, c1}) {
      for (Term b : {c0, c1}) {
        db.AddAtom(Atom(p, {a, b}));
      }
    }
  }
  for (const Rule& r : rules) {
    HomSearch search(r.body(), &db);
    EXPECT_TRUE(search.Exists());
  }
}

TEST(GeneratorsTest, RandomInstanceShape) {
  Universe u;
  Rng rng(3);
  RuleSet rules = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)");
  Instance db = generators::RandomInstance(&u, rules, 5, 12, &rng);
  EXPECT_LE(db.size(), 13u);  // ⊤ + up to 12 (duplicates collapse)
  EXPECT_LE(db.ActiveDomain().size(), 5u);
  for (Term t : db.ActiveDomain()) {
    EXPECT_TRUE(t.IsConstant());
  }
}

TEST(GeneratorsTest, RandomCqIsWellFormed) {
  Universe u;
  Rng rng(5);
  RuleSet rules = MustParseRuleSet(&u, "P0(x,y) -> P1(x,y)");
  for (int i = 0; i < 10; ++i) {
    Cq q = generators::RandomBooleanCq(&u, rules, 3, 4, &rng);
    EXPECT_EQ(q.atoms().size(), 3u);
    EXPECT_TRUE(q.IsBoolean());
    EXPECT_LE(q.vars().size(), 4u);
  }
}

TEST(GeneratorsTest, UnaryChainChasesToTheEnd) {
  Universe u;
  RuleSet chain = generators::UnaryChain(&u, 5);
  EXPECT_EQ(chain.size(), 5u);
  Instance db = MustParseInstance(&u, "U0(a).");
  Instance result = Chase(db, chain, {.exec = {.max_steps = 8}});
  PredicateId last = u.FindPredicate("U5");
  ASSERT_NE(last, Universe::kNoPredicate);
  EXPECT_EQ(result.AtomsWith(last).size(), 1u);
}

TEST(GeneratorsTest, ExplicitTournamentRuleBuildsTournament) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Rule rule = generators::ExplicitTournamentRule(&u, e, 5);
  EXPECT_EQ(rule.head().size(), 10u);  // C(5,2)
  EXPECT_EQ(rule.existentials().size(), 5u);
  Instance top(&u);
  Instance result = Chase(top, {rule}, {.exec = {.max_steps = 2}});
  InstanceGraph eg = GraphOfPredicate(result, e);
  TournamentSearch search(&eg.graph);
  EXPECT_EQ(search.MaximumSize(), 5);
  EXPECT_FALSE(eg.graph.HasLoop());
}

TEST(GeneratorsTest, Example1FamiliesParse) {
  Universe u;
  RuleSet ex1 = generators::Example1(&u);
  RuleSet bdd = generators::BddifiedExample1(&u);
  EXPECT_EQ(ex1.size(), 2u);
  EXPECT_EQ(bdd.size(), 2u);
  auto [dl1, ex1e] = SplitDatalog(ex1);
  EXPECT_EQ(dl1.size(), 1u);
  EXPECT_EQ(ex1e.size(), 1u);
}

TEST(GeneratorsTest, DeterministicAcrossRuns) {
  Universe u1;
  Universe u2;
  Rng rng1(42);
  Rng rng2(42);
  RuleSetSpec spec;
  RuleSet a = generators::RandomBinaryRuleSet(&u1, spec, &rng1);
  RuleSet b = generators::RandomBinaryRuleSet(&u2, spec, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].body().size(), b[i].body().size());
    EXPECT_EQ(a[i].head().size(), b[i].head().size());
    EXPECT_EQ(a[i].IsDatalog(), b[i].IsDatalog());
  }
}

}  // namespace
}  // namespace bddfc
