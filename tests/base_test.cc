// Unit tests for the base utilities.

#include <gtest/gtest.h>

#include <unordered_set>

#include "base/hash.h"
#include "base/rng.h"
#include "base/symbol_table.h"
#include "base/table_printer.h"

namespace bddfc {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("alpha");
  SymbolId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.Intern("alpha"));
  EXPECT_EQ(b, table.Intern("beta"));
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  SymbolId a = table.Intern("some_name");
  EXPECT_EQ(table.NameOf(a), "some_name");
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), SymbolTable::kNotFound);
  EXPECT_EQ(table.size(), 0u);
  table.Intern("present");
  EXPECT_NE(table.Find("present"), SymbolTable::kNotFound);
}

TEST(SymbolTableTest, FreshAvoidsCollisions) {
  SymbolTable table;
  table.Intern("p#0");
  SymbolId fresh = table.Fresh("p");
  EXPECT_NE(table.NameOf(fresh), "p#0");
  std::unordered_set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    names.insert(table.NameOf(table.Fresh("p")));
  }
  EXPECT_EQ(names.size(), 100u);
}

TEST(HashTest, HashCombineChangesSeed) {
  std::size_t seed1 = 0;
  HashCombine(&seed1, 42);
  std::size_t seed2 = 0;
  HashCombine(&seed2, 43);
  EXPECT_NE(seed1, seed2);
}

TEST(HashTest, PairHashDistinguishesOrder) {
  PairHash h;
  EXPECT_NE(h(std::make_pair(1, 2)), h(std::make_pair(2, 1)));
}

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, UnitStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only_one"});
  EXPECT_NE(table.ToString().find("only_one"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatBool(true), "yes");
  EXPECT_EQ(FormatBool(false), "no");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace bddfc
