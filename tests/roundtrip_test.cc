// Parser ↔ printer round-trips: for rules, rule sets, instances and CQs,
// parse → print → parse is the identity (within one Universe, so interned
// ids line up and equality is structural). Exercised on hand-written
// inputs covering the full grammar and on the src/generators families,
// whose output is the input of the differential and strategy suites.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "generators/workload.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace bddfc {
namespace {

void ExpectRuleRoundTrip(Universe* u, const Rule& rule) {
  const std::string text = ToString(*u, rule);
  Rule reparsed = MustParseRule(u, text);
  EXPECT_EQ(reparsed, rule) << text;
  EXPECT_EQ(reparsed.label(), rule.label()) << text;
  EXPECT_EQ(ToString(*u, reparsed), text);
}

void ExpectRuleSetRoundTrip(Universe* u, const RuleSet& rules) {
  const std::string text = ToString(*u, rules);
  RuleSet reparsed = MustParseRuleSet(u, text);
  EXPECT_EQ(reparsed, rules) << text;
  EXPECT_EQ(ToString(*u, reparsed), text);
}

void ExpectInstanceRoundTrip(Universe* u, const Instance& instance) {
  const std::string text = ToString(*u, instance);
  Instance reparsed = MustParseInstance(u, text);
  // Insertion order is preserved (⊤ prints first and re-dedups on parse),
  // so the atom vectors must match position for position.
  EXPECT_EQ(reparsed.atoms(), instance.atoms()) << text;
  EXPECT_EQ(ToString(*u, reparsed), text);
}

void ExpectCqRoundTrip(Universe* u, const Cq& cq) {
  const std::string text = ToString(*u, cq);
  Cq reparsed = MustParseCq(u, text);
  EXPECT_EQ(reparsed, cq) << text;
  EXPECT_EQ(ToString(*u, reparsed), text);
}

TEST(RoundTripTest, HandWrittenRules) {
  Universe u;
  for (const char* text : {
           "E(x,y), E(y,z) -> E(x,z)",
           "[advisor] Student(s) -> Advises(p,s), Prof(p)",
           "R(x) -> S(x,z), T(z)",
           "true -> P(x)",
           "P(x) -> true",
       }) {
    ExpectRuleRoundTrip(&u, MustParseRule(&u, text));
  }
}

TEST(RoundTripTest, HandWrittenRuleSets) {
  Universe u;
  ExpectRuleSetRoundTrip(
      &u, MustParseRuleSet(&u,
                           "[advisor]    Student(s) -> Advises(p,s), Prof(p)\n"
                           "[dept]       Prof(p) -> WorksIn(p,d), Dept(d)\n"
                           "[coadvised]  Advises(p,s), Advises(q,s) -> "
                           "Colleague(p,q)\n"));
}

TEST(RoundTripTest, HandWrittenInstances) {
  Universe u;
  for (const char* text : {
           "E(a,b). E(b,c). P(a).",
           "Nullary. E(a,a).",
           "Wide(a,b,c,d,e).",
       }) {
    ExpectInstanceRoundTrip(&u, MustParseInstance(&u, text));
  }
}

TEST(RoundTripTest, HandWrittenCqs) {
  Universe u;
  MustParseInstance(&u, "E(a,b).");  // interns constants for query mode
  for (const char* text : {
           "?(x,y) :- E(x,z), E(z,y)",
           "? :- E(x,x)",
           "?(x) :- E(a,x)",  // constant in the query body
           "? :- E(a,b)",     // fully ground Boolean query
       }) {
    ExpectCqRoundTrip(&u, MustParseCq(&u, text));
  }
}

TEST(RoundTripTest, GeneratorRuleFamilies) {
  Universe u;
  ExpectRuleSetRoundTrip(&u, generators::Example1(&u));
  ExpectRuleSetRoundTrip(&u, generators::BddifiedExample1(&u));
  ExpectRuleSetRoundTrip(&u, generators::UnaryChain(&u, 5));
}

TEST(RoundTripTest, RandomizedGeneratorWorkloads) {
  generators::RuleSetSpec spec;
  spec.num_predicates = 4;
  spec.num_rules = 5;
  spec.datalog_fraction = 0.5;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Universe u;
    Rng rng(seed);
    RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
    ExpectRuleSetRoundTrip(&u, rules);
    Instance db = generators::RandomInstance(&u, rules, /*num_constants=*/5,
                                             /*num_atoms=*/10, &rng);
    ExpectInstanceRoundTrip(&u, db);
    Cq cq = generators::RandomBooleanCq(&u, rules, /*num_atoms=*/3,
                                        /*num_vars=*/3, &rng);
    ExpectCqRoundTrip(&u, cq);
  }
}

}  // namespace
}  // namespace bddfc
