// Tests for the bddfc::Reasoner facade (src/api/reasoner.h): strategy
// agreement (kMaterialize vs kRewrite return the same answer set on
// terminating workloads), kAuto resolution, prepared-query reuse, cursor
// determinism across thread counts, and AddFacts() incremental maintenance
// being atom-for-atom identical (via CanonicalAtoms) to a from-scratch
// chase of the extended instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/reasoner.h"
#include "base/rng.h"
#include "chase/chase.h"
#include "generators/workload.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace bddfc {
namespace {

std::set<AnswerTuple> AsSet(const std::vector<AnswerTuple>& answers) {
  return std::set<AnswerTuple>(answers.begin(), answers.end());
}

ReasonerOptions WithStrategy(AnswerStrategy strategy,
                             ChaseOptions chase = ChaseOptions()) {
  ReasonerOptions options;
  options.strategy = strategy;
  options.chase = chase;
  return options;
}

ReasonerOptions WithChase(ChaseOptions chase) {
  ReasonerOptions options;
  options.chase = chase;
  return options;
}

ReasonerOptions WithThreads(std::size_t num_threads) {
  ReasonerOptions options;
  options.chase.exec.num_threads = num_threads;
  return options;
}

// The university ontology of examples/: two existential rules (invented
// advisors and departments) + two Datalog rules. Every chase variant
// terminates on it.
const char kUniversityRules[] =
    "[advisor]    Student(s) -> Advises(p,s), Prof(p)\n"
    "[dept]       Prof(p) -> WorksIn(p,d), Dept(d)\n"
    "[coadvised]  Advises(p,s), Advises(q,s) -> Colleague(p,q)\n"
    "[colltrans]  Colleague(p,q), Colleague(q,r) -> Colleague(p,r)\n";
const char kUniversityFacts[] =
    "Student(alice). Student(bob). Student(carol).\n"
    "Prof(turing).\n"
    "Advises(turing,alice). Advises(turing,bob).\n";

class ReasonerTest : public ::testing::Test {
 protected:
  Universe u_;
};

TEST_F(ReasonerTest, UniversityAllStrategiesAgree) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Cq advised = MustParseCq(&u_, "?(s) :- Advises(p,s)");

  Reasoner materialize(db, rules,
                       WithStrategy(AnswerStrategy::kMaterialize));
  Reasoner rewrite(db, rules, WithStrategy(AnswerStrategy::kRewrite));
  Reasoner automatic(db, rules, WithStrategy(AnswerStrategy::kAuto));

  // carol's advisor is a labeled null, but carol is a certain answer.
  const std::set<AnswerTuple> expected = {
      {u_.FindConstant("alice")}, {u_.FindConstant("bob")},
      {u_.FindConstant("carol")}};
  EXPECT_EQ(AsSet(materialize.Answer(advised)), expected);
  EXPECT_EQ(AsSet(rewrite.Answer(advised)), expected);
  EXPECT_EQ(AsSet(automatic.Answer(advised)), expected);

  // The advisor query is UCQ-rewritable, so kAuto avoided materializing.
  EXPECT_EQ(automatic.stats().auto_picked_rewrite, 1u);
  EXPECT_FALSE(automatic.stats().materialized);
}

TEST_F(ReasonerTest, CertainAnswersExcludeNulls) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules, WithStrategy(AnswerStrategy::kMaterialize));

  // Colleague(n,n) holds for carol's invented advisor n, but only the
  // all-constant pair (turing, turing) is a certain answer.
  auto answers = reasoner.Answer(MustParseCq(&u_, "?(p,q) :- Colleague(p,q)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0],
            AnswerTuple({u_.FindConstant("turing"), u_.FindConstant("turing")}));

  // The materialization does contain null colleague pairs.
  const Instance& chase = reasoner.Materialize();
  PredicateId colleague = u_.FindPredicate("Colleague");
  EXPECT_GT(chase.AtomsWith(colleague).size(), 1u);
}

TEST_F(ReasonerTest, BooleanQueries) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules);

  // Entailed only through two existential rules: advisor, then department.
  EXPECT_TRUE(reasoner.Ask(MustParseCq(&u_, "? :- Prof(p), WorksIn(p,d)")));
  EXPECT_FALSE(reasoner.Ask(MustParseCq(&u_, "? :- Dept(d), Student(d)")));
  // A Boolean query that holds yields exactly one empty tuple.
  auto answers = reasoner.Answer(MustParseCq(&u_, "? :- WorksIn(p,d)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

TEST_F(ReasonerTest, AutoPicksMaterializeForNonBddRules) {
  // Example 1's transitivity set is not bdd: the rewriting cannot
  // saturate, so kAuto must fall back to the chase.
  RuleSet rules = generators::Example1(&u_);
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ChaseOptions chase;
  chase.exec.max_steps = 4;  // the chase of Example 1 is infinite; bound it
  Reasoner reasoner(db, rules, WithChase(chase));
  PredicateId e = u_.FindPredicate("E");
  PreparedQuery q = reasoner.Prepare(LoopQuery(&u_, e));
  EXPECT_EQ(q.strategy(), AnswerStrategy::kMaterialize);
  EXPECT_FALSE(q.complete());  // bounded prefix of an infinite chase
  EXPECT_EQ(reasoner.stats().auto_picked_materialize, 1u);
}

TEST_F(ReasonerTest, AutoPicksRewriteWhenChaseWouldDiverge) {
  // The bdd-ified Example 1 from the introduction: the chase is infinite,
  // but every CQ has a finite rewriting — kAuto answers completely
  // without materializing anything.
  RuleSet rules = generators::BddifiedExample1(&u_);
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  Reasoner reasoner(db, rules);
  PredicateId e = u_.FindPredicate("E");
  Term x = u_.InternVariable("qx");
  Term y = u_.InternVariable("qy");
  PreparedQuery q = reasoner.Prepare(Cq({Atom(e, {x, y})}, {x, y}));
  EXPECT_EQ(q.strategy(), AnswerStrategy::kRewrite);
  EXPECT_TRUE(q.complete());
  EXPECT_FALSE(reasoner.stats().materialized);
  // Under these rules E(u,v) is certain iff u has an out-edge and v an
  // in-edge (the Datalog rule splices any such pair): {a,b} × {b,c}.
  EXPECT_EQ(q.Count(), 6u);
  // Soundness cross-check: every rewriting answer holds in a chase prefix.
  ChaseOptions bounded;
  bounded.exec.max_steps = 5;
  bounded.exec.max_atoms = 20000;
  Instance prefix = Chase(db, rules, bounded);
  for (const AnswerTuple& tuple : q.All()) {
    EXPECT_TRUE(Entails(prefix, Cq({Atom(e, {x, y})}, {x, y}), tuple));
  }
}

// Strategy agreement on terminating generator workloads: when both the
// chase and the rewriting saturate, both strategies are complete and must
// return the same answer set.
TEST_F(ReasonerTest, StrategyAgreementUnaryChain) {
  RuleSet rules = generators::UnaryChain(&u_, 6);
  Instance db(&u_);
  for (const char* name : {"c0", "c1", "c2"}) {
    db.AddAtom(Atom(u_.FindPredicate("U0"), {u_.InternConstant(name)}));
  }
  db.AddAtom(Atom(u_.FindPredicate("U3"), {u_.InternConstant("mid")}));
  Cq q = MustParseCq(&u_, "?(x) :- U6(x)");

  Reasoner materialize(db, rules,
                       WithStrategy(AnswerStrategy::kMaterialize));
  Reasoner rewrite(db, rules, WithStrategy(AnswerStrategy::kRewrite));
  PreparedQuery pm = materialize.Prepare(q);
  PreparedQuery pr = rewrite.Prepare(q);
  ASSERT_TRUE(pm.complete());
  ASSERT_TRUE(pr.complete());
  EXPECT_EQ(AsSet(pm.All()), AsSet(pr.All()));
  EXPECT_EQ(pm.Count(), 4u);
}

TEST_F(ReasonerTest, StrategyAgreementRandomizedWorkloads) {
  // Random forward-existential rule sets over random instances; seeds
  // where either side fails to saturate are skipped (neither strategy
  // would be complete there). The acceptance bar is ≥3 genuinely
  // compared workloads; with these specs most seeds qualify.
  generators::RuleSetSpec spec;
  spec.num_predicates = 3;
  spec.num_rules = 3;
  spec.max_body_atoms = 2;
  spec.max_head_atoms = 1;
  spec.datalog_fraction = 0.5;
  spec.forward_existential_only = true;
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 24 && compared < 6; ++seed) {
    Universe u;
    Rng rng(seed);
    RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
    Instance db = generators::RandomInstance(&u, rules, /*num_constants=*/4,
                                             /*num_atoms=*/6, &rng);
    ChaseOptions chase;
    chase.exec.max_steps = 8;
    chase.exec.max_atoms = 4000;
    chase.variant = ChaseVariant::kRestricted;  // saturates most often
    Reasoner materialize(
        db, rules,
        WithStrategy(AnswerStrategy::kMaterialize, chase));
    Reasoner rewrite(db, rules, WithStrategy(AnswerStrategy::kRewrite));
    // A query with answers over the generators' shared binary signature.
    PredicateId p0 = u.FindPredicate("P0");
    ASSERT_NE(p0, Universe::kNoPredicate);
    PreparedQuery pm = materialize.Prepare(EdgeQuery(&u, p0));
    PreparedQuery pr = rewrite.Prepare(EdgeQuery(&u, p0));
    if (!pm.complete() || !pr.complete()) continue;
    EXPECT_EQ(AsSet(pm.All()), AsSet(pr.All())) << "seed " << seed;
    ++compared;
  }
  EXPECT_GE(compared, 3);
}

TEST_F(ReasonerTest, PreparedQuerySeesAddedFacts) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner materialize(db, rules,
                       WithStrategy(AnswerStrategy::kMaterialize));
  Reasoner rewrite(db, rules, WithStrategy(AnswerStrategy::kRewrite));
  Cq advised = MustParseCq(&u_, "?(s) :- Advises(p,s)");
  PreparedQuery pm = materialize.Prepare(advised);
  PreparedQuery pr = rewrite.Prepare(advised);
  EXPECT_EQ(pm.Count(), 3u);
  EXPECT_EQ(pr.Count(), 3u);

  PredicateId student = u_.FindPredicate("Student");
  std::vector<Atom> facts = {Atom(student, {u_.InternConstant("dave")})};
  EXPECT_EQ(materialize.AddFacts(facts), 1u);
  EXPECT_EQ(rewrite.AddFacts(facts), 1u);
  // Both prepared handles see the new student without re-preparing.
  EXPECT_EQ(AsSet(pm.All()), AsSet(pr.All()));
  EXPECT_EQ(pm.Count(), 4u);
  // Re-inserting is a no-op.
  EXPECT_EQ(materialize.AddFacts(facts), 0u);
  EXPECT_EQ(pm.Count(), 4u);
  EXPECT_EQ(materialize.stats().incremental_runs, 1u);
}

TEST_F(ReasonerTest, AddFactsMatchesFromScratchChase) {
  // The acceptance differential: maintaining the materialization through
  // AddFacts must be atom-for-atom identical (up to null renaming, i.e.
  // CanonicalAtoms) to chasing the extended instance from scratch.
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious}) {
    int compared = 0;
    for (std::uint64_t seed = 1; seed <= 16 && compared < 4; ++seed) {
      Universe u;
      Rng rng(seed);
      generators::RuleSetSpec spec;
      spec.num_predicates = 3;
      spec.num_rules = 4;
      spec.datalog_fraction = 0.5;
      spec.forward_existential_only = true;
      RuleSet rules = generators::RandomBinaryRuleSet(&u, spec, &rng);
      Instance base = generators::RandomInstance(&u, rules,
                                                 /*num_constants=*/4,
                                                 /*num_atoms=*/5, &rng);
      Instance delta = generators::RandomInstance(&u, rules,
                                                  /*num_constants=*/6,
                                                  /*num_atoms=*/4, &rng);
      ChaseOptions chase_options;
      chase_options.variant = variant;
      chase_options.exec.max_steps = 8;
      chase_options.exec.max_atoms = 5000;

      Reasoner incremental(base, rules,
                           WithStrategy(AnswerStrategy::kMaterialize,
                                        chase_options));
      incremental.Materialize();
      std::vector<Atom> facts(delta.atoms().begin() + 1,  // skip ⊤
                              delta.atoms().end());
      incremental.AddFacts(facts);

      Instance extended(base);
      extended.AddAtoms(facts);
      ObliviousChase scratch(extended, rules, chase_options);
      scratch.Run();

      const ObliviousChase* maintained = incremental.materialization();
      ASSERT_NE(maintained, nullptr);
      if (!maintained->Saturated() || !scratch.Saturated()) continue;
      EXPECT_EQ(maintained->CanonicalAtoms(), scratch.CanonicalAtoms())
          << "variant " << static_cast<int>(variant) << " seed " << seed;
      EXPECT_EQ(maintained->Result().size(), scratch.Result().size());
      ++compared;
    }
    EXPECT_GE(compared, 3) << "variant " << static_cast<int>(variant);
  }
}

TEST_F(ReasonerTest, CompletenessIsLiveAfterAddFactsHitsBounds) {
  // Regression: complete() must not cache chase saturation at Prepare
  // time. A query prepared while the chase was saturated must report
  // incomplete once AddFacts() drives the maintained materialization into
  // its atom bound.
  RuleSet rules = MustParseRuleSet(&u_, "E(x,y), E(y,z) -> E(x,z)");
  Instance db = MustParseInstance(&u_, "E(a,b). E(b,c).");
  ChaseOptions chase;
  chase.exec.max_atoms = 12;
  Reasoner reasoner(db, rules,
                    WithStrategy(AnswerStrategy::kMaterialize, chase));
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(x,y) :- E(x,y)"));
  ASSERT_TRUE(q.complete());

  std::vector<Atom> chain;
  PredicateId e = u_.FindPredicate("E");
  for (int i = 0; i < 8; ++i) {
    chain.push_back(
        Atom(e, {u_.InternConstant("k" + std::to_string(i)),
                 u_.InternConstant("k" + std::to_string(i + 1))}));
  }
  reasoner.AddFacts(chain);
  ASSERT_TRUE(reasoner.stats().chase_hit_bounds);
  EXPECT_FALSE(q.complete());  // the handle reports the truncation live
}

TEST_F(ReasonerTest, AddFactsBeforeMaterializationIsLazy) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules, WithStrategy(AnswerStrategy::kMaterialize));
  PredicateId student = u_.FindPredicate("Student");
  reasoner.AddFacts({Atom(student, {u_.InternConstant("erin")})});
  EXPECT_FALSE(reasoner.stats().materialized);
  EXPECT_EQ(reasoner.stats().incremental_runs, 0u);
  // The lazily built materialization includes the pre-insert facts.
  EXPECT_EQ(reasoner.Answer(MustParseCq(&u_, "?(s) :- Advises(p,s)")).size(),
            4u);
}

TEST_F(ReasonerTest, AnswersIdenticalAtEveryThreadCount) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Cq colleagues = MustParseCq(&u_, "?(p,q) :- Colleague(p,q)");
  Cq advised = MustParseCq(&u_, "?(s) :- Advises(p,s)");
  std::vector<std::vector<AnswerTuple>> per_thread_answers;
  for (std::size_t threads : {1u, 2u, 4u}) {
    Reasoner reasoner(db, rules, WithThreads(threads));
    std::vector<AnswerTuple> answers = reasoner.Answer(colleagues);
    auto more = reasoner.Answer(advised);
    answers.insert(answers.end(), more.begin(), more.end());
    per_thread_answers.push_back(std::move(answers));
  }
  // Not just the same set: the same deterministic enumeration order.
  EXPECT_EQ(per_thread_answers[0], per_thread_answers[1]);
  EXPECT_EQ(per_thread_answers[0], per_thread_answers[2]);
}

TEST_F(ReasonerTest, CursorMatchesAllAndStreams) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules);
  PreparedQuery q = reasoner.Prepare(MustParseCq(&u_, "?(s) :- Advises(p,s)"));
  std::vector<AnswerTuple> streamed;
  AnswerCursor cursor = q.Open();
  while (auto tuple = cursor.Next()) streamed.push_back(*tuple);
  EXPECT_EQ(streamed, q.All());
  EXPECT_EQ(streamed.size(), q.Count());
  // A fresh cursor restarts from the beginning.
  AnswerCursor again = q.Open();
  ASSERT_TRUE(again.Next().has_value());
}

TEST_F(ReasonerTest, PrepareUcq) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules);
  Ucq union_query({MustParseCq(&u_, "?(x) :- Student(x)"),
                   MustParseCq(&u_, "?(x) :- Prof(x)")});
  PreparedQuery q = reasoner.Prepare(union_query);
  EXPECT_EQ(q.Count(), 4u);  // alice, bob, carol, turing
  EXPECT_EQ(q.answer_arity(), 1u);
}

TEST_F(ReasonerTest, StatsAccounting) {
  RuleSet rules = MustParseRuleSet(&u_, kUniversityRules);
  Instance db = MustParseInstance(&u_, kUniversityFacts);
  Reasoner reasoner(db, rules, WithStrategy(AnswerStrategy::kMaterialize));
  reasoner.Materialize();
  const ReasonerStats& stats = reasoner.stats();
  EXPECT_TRUE(stats.materialized);
  EXPECT_TRUE(stats.chase_saturated);
  EXPECT_FALSE(stats.chase_steps.empty());
  EXPECT_EQ(stats.chase_steps.back().atoms_total, stats.chase_atoms);
  // Materialize() is idempotent: no second chase run.
  const std::size_t steps = stats.chase_steps.size();
  reasoner.Materialize();
  EXPECT_EQ(reasoner.stats().chase_steps.size(), steps);
}

}  // namespace
}  // namespace bddfc
