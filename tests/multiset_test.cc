// Unit and property tests for multisets and the lexicographic order of
// Section 2.4, including Lemma 8 (well-foundedness on bounded sizes).

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "multiset/multiset.h"

namespace bddfc {
namespace {

TEST(MultisetTest, BasicCounts) {
  Multiset<int> m{1, 2, 2, 3};
  EXPECT_EQ(m.Size(), 4u);
  EXPECT_EQ(m.Count(2), 2u);
  EXPECT_EQ(m.Count(5), 0u);
  EXPECT_FALSE(m.Empty());
  EXPECT_EQ(m.Max(), 3);
}

TEST(MultisetTest, EmptyMultiset) {
  Multiset<int> m;
  EXPECT_TRUE(m.Empty());
  EXPECT_EQ(m.Size(), 0u);
  EXPECT_FALSE(m.Max().has_value());
}

TEST(MultisetTest, FromList) {
  Multiset<int> m = Multiset<int>::FromList({5, 5, 5, 1});
  EXPECT_EQ(m.Count(5), 3u);
  EXPECT_EQ(m.Count(1), 1u);
}

TEST(MultisetTest, UnionAddsMultiplicities) {
  Multiset<int> a{1, 2};
  Multiset<int> b{2, 3};
  Multiset<int> u = a.Union(b);
  EXPECT_EQ(u.Count(1), 1u);
  EXPECT_EQ(u.Count(2), 2u);
  EXPECT_EQ(u.Count(3), 1u);
}

TEST(MultisetTest, IntersectTakesMin) {
  Multiset<int> a{1, 2, 2, 2};
  Multiset<int> b{2, 2, 3};
  Multiset<int> i = a.Intersect(b);
  EXPECT_EQ(i.Count(2), 2u);
  EXPECT_EQ(i.Count(1), 0u);
  EXPECT_EQ(i.Count(3), 0u);
}

TEST(MultisetTest, DifferenceSaturatesAtZero) {
  Multiset<int> a{1, 2, 2};
  Multiset<int> b{2, 2, 2, 3};
  Multiset<int> d = a.Difference(b);
  EXPECT_EQ(d.Count(1), 1u);
  EXPECT_EQ(d.Count(2), 0u);
  EXPECT_EQ(d.Count(3), 0u);
}

TEST(MultisetTest, RemoveErasesWhenExhausted) {
  Multiset<int> m{7, 7};
  m.Remove(7);
  EXPECT_EQ(m.Count(7), 1u);
  m.Remove(7);
  EXPECT_TRUE(m.Empty());
  m.Remove(7);  // no-op
  EXPECT_TRUE(m.Empty());
}

TEST(LexOrderTest, EmptyIsSmallest) {
  Multiset<int> empty;
  Multiset<int> one{0};
  EXPECT_TRUE(LexLess(empty, one));
  EXPECT_FALSE(LexLess(one, empty));
  EXPECT_FALSE(LexLess(empty, empty));
}

TEST(LexOrderTest, MaxDominates) {
  // {5} > {4,4,4,4,4}: the maximum decides first.
  Multiset<int> five{5};
  Multiset<int> fours{4, 4, 4, 4, 4};
  EXPECT_TRUE(LexLess(fours, five));
  EXPECT_FALSE(LexLess(five, fours));
}

TEST(LexOrderTest, MultiplicityOfMaxDecidesNext) {
  // {5,5} > {5,4,4,4}: equal maxima, then multiplicity of the max.
  Multiset<int> a{5, 5};
  Multiset<int> b{5, 4, 4, 4};
  EXPECT_TRUE(LexLess(b, a));
  EXPECT_FALSE(LexLess(a, b));
}

TEST(LexOrderTest, PaperDefinitionRecursion) {
  // M <lex N iff max equal and M∖{max} <lex N∖{max}.
  Multiset<int> m{3, 2, 1};
  Multiset<int> n{3, 2, 2};
  EXPECT_TRUE(LexLess(m, n));
  Multiset<int> m2 = m.Difference(Multiset<int>{3});
  Multiset<int> n2 = n.Difference(Multiset<int>{3});
  EXPECT_TRUE(LexLess(m2, n2));
}

TEST(LexOrderTest, EqualityIsNotLess) {
  Multiset<int> a{1, 2, 3};
  Multiset<int> b{3, 2, 1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(LexLess(a, b));
  EXPECT_TRUE(LexLessEq(a, b));
}

// Property: <lex is a strict total order on random multisets.
TEST(LexOrderPropertyTest, StrictTotalOrder) {
  Rng rng(42);
  std::vector<Multiset<int>> samples;
  for (int i = 0; i < 60; ++i) {
    Multiset<int> m;
    std::size_t n = rng.Below(6);
    for (std::size_t j = 0; j < n; ++j) {
      m.Add(static_cast<int>(rng.Below(5)));
    }
    samples.push_back(std::move(m));
  }
  for (const auto& a : samples) {
    EXPECT_FALSE(LexLess(a, a));  // irreflexive
    for (const auto& b : samples) {
      // total: exactly one of <, >, ==
      int rel = (a == b ? 1 : 0) + (LexLess(a, b) ? 1 : 0) +
                (LexLess(b, a) ? 1 : 0);
      EXPECT_EQ(rel, 1);
      for (const auto& c : samples) {
        if (LexLess(a, b) && LexLess(b, c)) {
          EXPECT_TRUE(LexLess(a, c));  // transitive
        }
      }
    }
  }
}

// Property (Lemma 8): on multisets over {0..V-1} of size ≤ k, every
// strictly descending chain is finite. We verify the stronger concrete
// fact: the order embeds into a finite linear order, by generating all
// multisets of bounded size over a small domain and checking that sorting
// by LexLess gives a strict chain whose length matches the count.
TEST(LexOrderPropertyTest, WellFoundedOnBoundedSize) {
  const int kDomain = 4;
  const int kMaxSize = 3;
  std::vector<Multiset<int>> all;
  // Enumerate all multisets of size ≤ kMaxSize via counters.
  std::function<void(int, Multiset<int>*)> gen = [&](int next,
                                                     Multiset<int>* cur) {
    all.push_back(*cur);
    if (cur->Size() >= kMaxSize) return;
    for (int v = next; v < kDomain; ++v) {
      cur->Add(v);
      gen(v, cur);
      cur->Remove(v);
    }
  };
  Multiset<int> empty;
  gen(0, &empty);
  std::sort(all.begin(), all.end(),
            [](const Multiset<int>& a, const Multiset<int>& b) {
              return LexLess(a, b);
            });
  // Strictly increasing chain with no duplicates: finite descending chains.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(LexLess(all[i - 1], all[i]));
  }
  // C(kDomain + kMaxSize, kMaxSize) multisets of size ≤ 3 over 4 values:
  // sizes 0,1,2,3 give 1 + 4 + 10 + 20 = 35.
  EXPECT_EQ(all.size(), 35u);
}

// The descending-chain experiment behind Lemma 40's termination argument:
// starting anywhere, repeatedly stepping to a random strictly smaller
// multiset terminates.
TEST(LexOrderPropertyTest, RandomDescentTerminates) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Multiset<int> current;
    for (int j = 0; j < 5; ++j) current.Add(static_cast<int>(rng.Below(6)));
    int steps = 0;
    for (;;) {
      // Random candidate: mutate by removing the max and adding smaller
      // elements (mimicking peak removal: peak swapped for lower
      // timestamps).
      auto max = current.Max();
      if (!max.has_value() || *max == 0) break;
      Multiset<int> next = current;
      next.Remove(*max);
      std::size_t extra = rng.Below(3);
      for (std::size_t j = 0; j < extra; ++j) {
        next.Add(static_cast<int>(rng.Below(*max)));
      }
      ASSERT_TRUE(LexLess(next, current));
      current = next;
      ++steps;
      ASSERT_LT(steps, 10000);
    }
  }
}

}  // namespace
}  // namespace bddfc
