// Unit tests for the logic substrate: terms, atoms, instances, rules,
// queries, parser and printer.

#include <gtest/gtest.h>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace {

TEST(TermTest, KindsAndEquality) {
  Term c = Term::MakeConstant(3);
  Term v = Term::MakeVariable(3);
  Term n = Term::MakeNull(3);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_TRUE(v.IsVariable());
  EXPECT_TRUE(n.IsNull());
  EXPECT_NE(c, v);
  EXPECT_NE(v, n);
  EXPECT_EQ(c.index(), 3u);
  EXPECT_TRUE(c.IsRigid());
  EXPECT_FALSE(v.IsRigid());
  EXPECT_FALSE(n.IsRigid());
}

TEST(TermTest, InvalidTerm) {
  Term t;
  EXPECT_FALSE(t.IsValid());
  EXPECT_FALSE(t.IsConstant());
}

TEST(UniverseTest, PredicateInterning) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  EXPECT_EQ(u.ArityOf(e), 2);
  EXPECT_EQ(u.PredicateName(e), "E");
  EXPECT_EQ(u.InternPredicate("E", 2), e);
  EXPECT_EQ(u.FindPredicate("E"), e);
  EXPECT_EQ(u.FindPredicate("missing"), Universe::kNoPredicate);
}

TEST(UniverseTest, TopIsNullaryTrue) {
  Universe u;
  EXPECT_EQ(u.ArityOf(u.top()), 0);
  EXPECT_EQ(u.PredicateName(u.top()), "true");
}

TEST(UniverseTest, TermNaming) {
  Universe u;
  Term a = u.InternConstant("a");
  Term x = u.InternVariable("x");
  Term n = u.FreshNull();
  EXPECT_EQ(u.TermName(a), "a");
  EXPECT_EQ(u.TermName(x), "x");
  EXPECT_EQ(u.TermName(n), "_n0");
  EXPECT_EQ(u.FindConstant("a"), a);
  EXPECT_FALSE(u.FindConstant("b").IsValid());
}

TEST(UniverseTest, ConstantsAndVariablesAreDistinctSpaces) {
  Universe u;
  Term a_const = u.InternConstant("a");
  Term a_var = u.InternVariable("a");
  EXPECT_NE(a_const, a_var);
}

TEST(InstanceTest, AddAndContains) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Instance inst(&u);
  EXPECT_TRUE(inst.AddAtom(Atom(e, {a, b})));
  EXPECT_FALSE(inst.AddAtom(Atom(e, {a, b})));  // duplicate
  EXPECT_TRUE(inst.Contains(Atom(e, {a, b})));
  EXPECT_FALSE(inst.Contains(Atom(e, {b, a})));
  // ⊤ plus the edge.
  EXPECT_EQ(inst.size(), 2u);
}

TEST(InstanceTest, ContainsTopByDefault) {
  Universe u;
  Instance inst(&u);
  EXPECT_TRUE(inst.Contains(Atom(u.top(), {})));
}

TEST(InstanceTest, IndexesWork) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Term c = u.InternConstant("c");
  Instance inst(&u);
  inst.AddAtom(Atom(e, {a, b}));
  inst.AddAtom(Atom(e, {a, c}));
  inst.AddAtom(Atom(e, {b, c}));
  EXPECT_EQ(inst.AtomsWith(e).size(), 3u);
  EXPECT_EQ(inst.AtomsWith(e, 0, a).size(), 2u);
  EXPECT_EQ(inst.AtomsWith(e, 1, c).size(), 2u);
  EXPECT_EQ(inst.AtomsWith(e, 0, c).size(), 0u);
}

TEST(InstanceTest, RangeFilteredIndexViews) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Term c = u.InternConstant("c");
  Instance inst(&u);
  inst.AddAtom(Atom(e, {a, b}));  // index 1 (⊤ is 0)
  inst.AddAtom(Atom(e, {a, c}));  // index 2
  inst.AddAtom(Atom(e, {b, c}));  // index 3
  // Whole-instance ranges reproduce the plain indexes.
  EXPECT_EQ(inst.AtomsWithIn(e, 0, 4).size(), 3u);
  EXPECT_EQ(inst.AtomsWithIn(e, 0, a, 0, 4).size(), 2u);
  // Half-open prefix/suffix windows.
  EXPECT_EQ(inst.AtomsWithIn(e, 0, 2).size(), 1u);
  EXPECT_EQ(inst.AtomsWithIn(e, 2, 4).size(), 2u);
  EXPECT_EQ(*inst.AtomsWithIn(e, 2, 4).begin(), 2u);
  EXPECT_EQ(inst.AtomsWithIn(e, 0, a, 2, 4).size(), 1u);
  EXPECT_EQ(inst.AtomsWithIn(e, 1, c, 0, 3).size(), 1u);
  // Empty and inverted ranges.
  EXPECT_TRUE(inst.AtomsWithIn(e, 2, 2).empty());
  EXPECT_TRUE(inst.AtomsWithIn(e, 3, 1).empty());
  EXPECT_TRUE(inst.AtomsWithIn(u.top(), 1, 4).empty());
  EXPECT_EQ(inst.AtomsWithIn(u.top(), 0, 1).size(), 1u);
}

TEST(InstanceTest, WideArityIndexingDoesNotCollide) {
  // Regression: the by-position index key used to pack (pred << 8) | pos,
  // so predicate p at position 257 collided with predicate p+1 at
  // position 1. The widened 32/32 packing keeps them apart.
  Universe u;
  PredicateId pa = u.InternPredicate("Wide", 300);
  PredicateId pb = u.InternPredicate("Pair", 2);
  ASSERT_EQ(pb, pa + 1);
  Term a = u.InternConstant("a");
  Term c = u.InternConstant("c");
  std::vector<Term> args(300, a);
  args[257] = c;
  Instance inst(&u);
  inst.AddAtom(Atom(pa, args));
  inst.AddAtom(Atom(pb, {u.InternConstant("d"), c}));
  ASSERT_EQ(inst.AtomsWith(pb, 1, c).size(), 1u);
  EXPECT_EQ(inst.AtomsWith(pb, 1, c)[0], 2u);
  ASSERT_EQ(inst.AtomsWith(pa, 257, c).size(), 1u);
  EXPECT_EQ(inst.AtomsWith(pa, 257, c)[0], 1u);
  EXPECT_TRUE(inst.AtomsWith(pa, 258, c).empty());
}

TEST(InstanceTest, ActiveDomain) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Instance inst(&u);
  inst.AddAtom(Atom(e, {a, b}));
  inst.AddAtom(Atom(e, {b, a}));
  EXPECT_EQ(inst.ActiveDomain().size(), 2u);
  EXPECT_TRUE(inst.InActiveDomain(a));
  EXPECT_TRUE(inst.InActiveDomain(b));
}

TEST(InstanceTest, DisjointUnionRenamesFlexibleTerms) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Term a = u.InternConstant("a");
  Instance i1(&u);
  Term n1 = u.FreshNull();
  i1.AddAtom(Atom(e, {a, n1}));
  Instance i2(&u);
  Term n2 = u.FreshNull();
  i2.AddAtom(Atom(e, {a, n2}));
  Instance both = Instance::DisjointUnion(i1, i2);
  // a is rigid and shared; the nulls stay distinct.
  EXPECT_EQ(both.AtomsWith(e).size(), 2u);
  EXPECT_EQ(both.AtomsWith(e, 0, a).size(), 2u);
}

TEST(InstanceTest, RestrictKeepsOnlyGivenPredicates) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  PredicateId f = u.InternPredicate("F", 2);
  Term a = u.InternConstant("a");
  Term b = u.InternConstant("b");
  Instance inst(&u);
  inst.AddAtom(Atom(e, {a, b}));
  inst.AddAtom(Atom(f, {a, b}));
  Instance restricted = inst.Restrict({e});
  EXPECT_TRUE(restricted.Contains(Atom(e, {a, b})));
  EXPECT_FALSE(restricted.Contains(Atom(f, {a, b})));
}

TEST(RuleTest, FrontierAndExistentials) {
  Universe u;
  Rule r = MustParseRule(&u, "E(x,y) -> E(y,z)");
  EXPECT_EQ(r.body_vars().size(), 2u);
  EXPECT_EQ(r.frontier().size(), 1u);  // y
  EXPECT_EQ(r.existentials().size(), 1u);  // z
  EXPECT_FALSE(r.IsDatalog());
  Term y = u.FindVariable("y");
  Term z = u.FindVariable("z");
  EXPECT_TRUE(r.IsFrontierVar(y));
  EXPECT_TRUE(r.IsExistentialVar(z));
}

TEST(RuleTest, DatalogDetection) {
  Universe u;
  Rule r = MustParseRule(&u, "E(x,y), E(y,z) -> E(x,z)");
  EXPECT_TRUE(r.IsDatalog());
  EXPECT_EQ(r.frontier().size(), 2u);  // x and z
}

TEST(RuleTest, SplitDatalog) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u,
                                   "E(x,y) -> E(y,z)\n"
                                   "E(x,y), E(y,z) -> E(x,z)\n");
  auto [datalog, existential] = SplitDatalog(rules);
  EXPECT_EQ(datalog.size(), 1u);
  EXPECT_EQ(existential.size(), 1u);
}

TEST(RuleTest, SignatureOf) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u, "R(x) -> S(x,z), T(z)");
  auto sig = SignatureOf(rules);
  EXPECT_EQ(sig.size(), 3u);
  EXPECT_EQ(MaxArity(rules, u), 2);
}

TEST(CqTest, AnswerVariables) {
  Universe u;
  Cq q = MustParseCq(&u, "?(x,y) :- E(x,z), E(z,y)");
  EXPECT_EQ(q.answers().size(), 2u);
  EXPECT_EQ(q.vars().size(), 3u);
  EXPECT_EQ(q.ExistentialVars().size(), 1u);
  EXPECT_FALSE(q.IsBoolean());
}

TEST(CqTest, BooleanQuery) {
  Universe u;
  Cq q = MustParseCq(&u, "? :- E(x,x)");
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_EQ(q.atoms().size(), 1u);
}

TEST(CqTest, FreshenPreservesShape) {
  Universe u;
  Cq q = MustParseCq(&u, "?(x) :- E(x,y), E(y,x)");
  Cq fresh = q.Freshen(&u);
  EXPECT_EQ(fresh.atoms().size(), q.atoms().size());
  EXPECT_EQ(fresh.answers().size(), 1u);
  EXPECT_NE(fresh.answers()[0], q.answers()[0]);
}

TEST(CqTest, LoopAndEdgeQueries) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Cq loop = LoopQuery(&u, e);
  EXPECT_TRUE(loop.IsBoolean());
  EXPECT_EQ(loop.atoms().size(), 1u);
  EXPECT_EQ(loop.atoms()[0].arg(0), loop.atoms()[0].arg(1));
  Cq edge = EdgeQuery(&u, e);
  EXPECT_EQ(edge.answers().size(), 2u);
}

TEST(CqTest, TournamentQueryOrientationCount) {
  Universe u;
  PredicateId e = u.InternPredicate("E", 2);
  Ucq t3 = TournamentQuery(&u, e, 3);
  // 3 pairs, 2^3 orientations.
  EXPECT_EQ(t3.size(), 8u);
  for (const Cq& q : t3.disjuncts()) {
    EXPECT_EQ(q.atoms().size(), 3u);
  }
}

TEST(ParserTest, ParsesInstance) {
  Universe u;
  Instance inst = MustParseInstance(&u, "E(a,b). E(b,c). P(a).");
  PredicateId e = u.FindPredicate("E");
  EXPECT_EQ(inst.AtomsWith(e).size(), 2u);
  EXPECT_EQ(inst.ActiveDomain().size(), 3u);
  for (Term t : inst.ActiveDomain()) {
    EXPECT_TRUE(t.IsConstant());
  }
}

TEST(ParserTest, ParsesRuleWithLabel) {
  Universe u;
  Rule r = MustParseRule(&u, "[trans] E(x,y), E(y,z) -> E(x,z)");
  EXPECT_EQ(r.label(), "trans");
}

TEST(ParserTest, ParsesNullaryAtoms) {
  Universe u;
  Rule r = MustParseRule(&u, "true -> P(x)");
  EXPECT_EQ(r.body().size(), 1u);
  EXPECT_TRUE(r.body()[0].IsNullary());
  EXPECT_EQ(r.body()[0].pred(), u.top());
}

TEST(ParserTest, QueryConstantsResolve) {
  Universe u;
  MustParseInstance(&u, "E(a,b).");
  Cq q = MustParseCq(&u, "? :- E(a,x)");
  EXPECT_TRUE(q.atoms()[0].arg(0).IsConstant());
  EXPECT_TRUE(q.atoms()[0].arg(1).IsVariable());
}

TEST(ParserTest, RejectsArityMismatch) {
  Universe u;
  MustParseRule(&u, "E(x,y) -> E(y,x)");
  ParseError error;
  auto bad = ParseRule(&u, "E(x) -> E(x,x)", &error);
  EXPECT_FALSE(bad.has_value());
  EXPECT_NE(error.message.find("arity"), std::string::npos);
}

TEST(ParserTest, RejectsGarbage) {
  Universe u;
  ParseError error;
  EXPECT_FALSE(ParseRule(&u, "E(x,y) E(y,x)", &error).has_value());
  EXPECT_FALSE(ParseCq(&u, "E(x,y)", &error).has_value());
}

TEST(ParserTest, ReportsLineAndColumn) {
  Universe u;
  ParseError error;
  // The offending token is the second 'y' (column 15): a term list can
  // only continue with ',' or close with ')'.
  EXPECT_FALSE(ParseRule(&u, "E(x,y) -> E(x y)", &error).has_value());
  EXPECT_EQ(error.message, "expected ')' but found 'y'");
  EXPECT_EQ(error.line, 1);
  EXPECT_EQ(error.column, 15);

  // Errors on later lines carry the line too; the arity mismatch points at
  // the atom's predicate name.
  EXPECT_FALSE(
      ParseRuleSet(&u, "E(x,y) -> E(y,x)\nE(x) -> E(x,x)", &error)
          .has_value());
  EXPECT_EQ(error.message,
            "predicate 'E' used with arity 1 but declared with arity 2");
  EXPECT_EQ(error.line, 2);
  EXPECT_EQ(error.column, 1);
}

TEST(ParserTest, RejectsDuplicateAnswerVariable) {
  Universe u;
  ParseError error;
  EXPECT_FALSE(ParseCq(&u, "?(x,y,x) :- E(x,y)", &error).has_value());
  EXPECT_EQ(error.message, "duplicate answer variable 'x'");
  EXPECT_EQ(error.line, 1);
  EXPECT_EQ(error.column, 7);  // the second 'x'
}

TEST(ParserTest, RejectsUnboundAnswerVariable) {
  Universe u;
  ParseError error;
  EXPECT_FALSE(ParseCq(&u, "?(x,z) :- E(x,y)", &error).has_value());
  EXPECT_EQ(error.message,
            "answer variable 'z' does not occur in the query body");
  EXPECT_EQ(error.line, 1);
  EXPECT_EQ(error.column, 5);  // where 'z' was announced

  // An answer identifier naming an interned constant is a variable in the
  // answer tuple but a constant in the body — so it is unbound, not a
  // crash inside the Cq constructor.
  MustParseInstance(&u, "E(a,b).");
  EXPECT_FALSE(ParseCq(&u, "?(a) :- E(a,y)", &error).has_value());
  EXPECT_EQ(error.message,
            "answer variable 'a' does not occur in the query body");
}

TEST(ParserTest, ParseCqListReadsQueryFiles) {
  Universe u;
  MustParseInstance(&u, "E(a,b).");
  ParseError error;
  auto queries = ParseCqList(&u,
                             "# a comment\n"
                             "?(x) :- E(x,y)\n"
                             "? :- E(a,y).\n"
                             "?(x,y) :- E(x,y)\n",
                             &error);
  ASSERT_TRUE(queries.has_value());
  ASSERT_EQ(queries->size(), 3u);
  EXPECT_EQ((*queries)[0].answers().size(), 1u);
  EXPECT_TRUE((*queries)[1].IsBoolean());
  EXPECT_EQ((*queries)[2].answers().size(), 2u);

  // A failure anywhere in the file reports its position.
  EXPECT_FALSE(ParseCqList(&u, "?(x) :- E(x,y)\n?(q) :- E(x,y)\n", &error)
                   .has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_EQ(error.column, 3);
}

TEST(ParserTest, SkipsComments) {
  Universe u;
  RuleSet rules = MustParseRuleSet(&u,
                                   "# a comment\n"
                                   "E(x,y) -> E(y,x)\n"
                                   "% another\n");
  EXPECT_EQ(rules.size(), 1u);
}

TEST(PrinterTest, RoundTripsRule) {
  Universe u;
  Rule r = MustParseRule(&u, "E(x,y), E(y,z) -> E(x,z)");
  std::string text = ToString(u, r);
  Universe u2;
  Rule r2 = MustParseRule(&u2, text);
  EXPECT_EQ(r2.body().size(), 2u);
  EXPECT_EQ(r2.head().size(), 1u);
}

TEST(PrinterTest, PrintsQuery) {
  Universe u;
  Cq q = MustParseCq(&u, "?(x) :- E(x,y)");
  std::string text = ToString(u, q);
  EXPECT_NE(text.find("?(x)"), std::string::npos);
  EXPECT_NE(text.find("E(x,y)"), std::string::npos);
}

TEST(SubstitutionTest, ApplyAndCompose) {
  Universe u;
  Term x = u.InternVariable("x");
  Term y = u.InternVariable("y");
  Term a = u.InternConstant("a");
  Substitution s1;
  s1.Bind(x, y);
  Substitution s2;
  s2.Bind(y, a);
  Substitution composed = s1.ComposeWith(s2);
  EXPECT_EQ(composed.Apply(x), a);
  EXPECT_EQ(composed.Apply(y), a);
  EXPECT_EQ(s1.Apply(a), a);  // unbound terms unchanged
}

}  // namespace
}  // namespace bddfc
