#include "valley/functionality.h"

#include <unordered_map>

#include "base/check.h"
#include "graph/digraph.h"
#include "homomorphism/homomorphism.h"

namespace bddfc {

FunctionalityReport CheckFunctionality(const Cq& q,
                                       const Instance& chase_exists) {
  BDDFC_CHECK_GE(q.answers().size(), 1u);
  FunctionalityReport report;
  report.is_function = true;

  HomSearch search(q.atoms(), &chase_exists);
  search.ForEach({}, [&](const Substitution& h) {
    Term s = h.Apply(q.answers()[0]);
    std::vector<Term> tuple;
    for (std::size_t i = 1; i < q.answers().size(); ++i) {
      tuple.push_back(h.Apply(q.answers()[i]));
    }
    auto [it, inserted] = report.function.emplace(s, tuple);
    if (!inserted && it->second != tuple) {
      report.is_function = false;
      report.counterexample = s;
      return false;
    }
    return true;
  });
  return report;
}

bool AllBelowFirstAnswer(const Cq& q) {
  BDDFC_CHECK_GE(q.answers().size(), 1u);
  // Build the variable digraph and test reachability to the first answer.
  Digraph graph;
  std::unordered_map<Term, int> ids;
  auto vertex = [&](Term t) {
    auto it = ids.find(t);
    if (it != ids.end()) return it->second;
    int v = graph.AddVertex();
    ids.emplace(t, v);
    return v;
  };
  for (Term v : q.vars()) vertex(v);
  for (const Atom& a : q.atoms()) {
    if (a.IsBinary()) graph.AddEdge(vertex(a.arg(0)), vertex(a.arg(1)));
  }
  int x = ids[q.answers()[0]];
  for (std::size_t i = 1; i < q.answers().size(); ++i) {
    int y = ids[q.answers()[i]];
    if (y == x) return false;
    if (!graph.Reaches(y, x)) return false;
  }
  return true;
}

}  // namespace bddfc
