#include "valley/statistics.h"

#include <unordered_map>

#include "graph/digraph.h"
#include "obs/obs.h"
#include "valley/valley_query.h"

namespace bddfc {

std::string UcqValleyStats::ToString() const {
  std::string out;
  out += "total: " + std::to_string(total);
  out += ", valleys: " + std::to_string(valleys);
  out += " (disconnected: " + std::to_string(disconnected);
  out += ", single-maximal: " + std::to_string(single_maximal);
  out += ", two-maximal: " + std::to_string(two_maximal);
  out += "), peaked: " + std::to_string(peaked);
  out += ", cyclic: " + std::to_string(cyclic);
  out += ", non-binary answers: " + std::to_string(non_binary_answers);
  return out;
}

UcqValleyStats AnalyzeUcqValleys(const Ucq& q) {
  UcqValleyStats stats;
  stats.total = q.size();
  for (const Cq& disjunct : q.disjuncts()) {
    if (disjunct.answers().size() != 2) {
      ++stats.non_binary_answers;
      continue;
    }
    ValleyAnalysis analysis = AnalyzeValley(disjunct);
    if (!analysis.is_dag) {
      ++stats.cyclic;
      continue;
    }
    if (!analysis.is_valley) {
      ++stats.peaked;
      continue;
    }
    ++stats.valleys;
    // Case split, mirroring AnalyzeValleyTournament.
    Term x = disjunct.answers()[0];
    Term y = disjunct.answers()[1];
    if (!analysis.connected) {
      // Only disconnected *between the answers* counts as the
      // Proposition 43 first case; recompute components.
      Digraph graph;
      std::unordered_map<Term, int> ids;
      auto vertex = [&](Term t) {
        auto it = ids.find(t);
        if (it != ids.end()) return it->second;
        int v = graph.AddVertex();
        ids.emplace(t, v);
        return v;
      };
      for (Term v : disjunct.vars()) vertex(v);
      for (const Atom& a : disjunct.atoms()) {
        if (a.IsBinary()) graph.AddEdge(vertex(a.arg(0)), vertex(a.arg(1)));
      }
      // Weak reachability from x.
      std::vector<bool> seen(graph.num_vertices(), false);
      std::vector<int> stack = {ids.at(x)};
      seen[ids.at(x)] = true;
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        auto push = [&](int w) {
          if (!seen[w]) {
            seen[w] = true;
            stack.push_back(w);
          }
        };
        for (int w : graph.OutNeighbors(v)) push(w);
        for (int w : graph.InNeighbors(v)) push(w);
      }
      if (x != y && !seen[ids.at(y)]) {
        ++stats.disconnected;
        continue;
      }
    }
    bool x_maximal = false;
    bool y_maximal = false;
    for (Term m : analysis.maximal_vars) {
      if (m == x) x_maximal = true;
      if (m == y) y_maximal = true;
    }
    if (x_maximal && y_maximal) {
      ++stats.two_maximal;
    } else {
      ++stats.single_maximal;
    }
  }
  // Publish through the metrics registry (cumulative across analyses), so
  // the valley counters surface in the same flat metrics JSON as every
  // other subsystem's.
  obs::MetricsRegistry& metrics = obs::Metrics();
  metrics.GetCounter("valley.analyzed")->Add(stats.total);
  metrics.GetCounter("valley.valleys")->Add(stats.valleys);
  metrics.GetCounter("valley.peaked")->Add(stats.peaked);
  metrics.GetCounter("valley.cyclic")->Add(stats.cyclic);
  metrics.GetCounter("valley.non_binary_answers")
      ->Add(stats.non_binary_answers);
  return stats;
}

}  // namespace bddfc
