#include "valley/peak_removal.h"

#include <unordered_set>

#include "base/check.h"
#include "homomorphism/homomorphism.h"
#include "valley/valley_query.h"

namespace bddfc {

PeakRemover::PeakRemover(const ObliviousChase* chase_exists, const Ucq* q_inj,
                         std::size_t max_iterations, PeakStart start)
    : chase_(chase_exists),
      q_inj_(q_inj),
      max_iterations_(max_iterations),
      start_(start) {
  BDDFC_CHECK(chase_exists != nullptr);
  BDDFC_CHECK(q_inj != nullptr);
}

Multiset<int> PeakRemover::ImageTimestamps(const Cq& q,
                                           const Substitution& hom) const {
  // TS_m over the terms of h(q) (Definition 34 lifted to sets of terms).
  std::unordered_set<Term> image_terms;
  for (const Atom& a : q.atoms()) {
    for (Term t : a.args()) image_terms.insert(hom.Apply(t));
  }
  Multiset<int> ts;
  for (Term t : image_terms) ts.Add(chase_->TimestampOf(t));
  return ts;
}

std::optional<PeakRemover::WitnessCandidate> PeakRemover::ExtremalWitness(
    const Instance& target, Term s, Term t, bool minimal) const {
  std::optional<WitnessCandidate> best;
  for (std::size_t i = 0; i < q_inj_->size(); ++i) {
    const Cq& q = q_inj_->disjuncts()[i];
    if (q.answers().size() != 2) continue;
    Substitution seed;
    Term x = q.answers()[0];
    Term y = q.answers()[1];
    if (x == y && s != t) continue;  // merged answers need s == t
    seed.Bind(x, s);
    seed.Bind(y, t);
    HomSearch search(q.atoms(), &target, {.injective = true});
    search.ForEach(seed, [&](const Substitution& h) {
      Multiset<int> ts = ImageTimestamps(q, h);
      bool better = !best.has_value() ||
                    (minimal ? LexLess(ts, best->timestamps)
                             : LexLess(best->timestamps, ts));
      if (better) best = WitnessCandidate{i, h, std::move(ts)};
      return true;
    });
  }
  return best;
}

PeakRemovalResult PeakRemover::Run(Term s, Term t) const {
  PeakRemovalResult result;
  std::optional<WitnessCandidate> current = ExtremalWitness(
      chase_->Result(), s, t, start_ == PeakStart::kMinimal);
  if (!current.has_value()) {
    result.failure_reason = "no injective witness for the edge in Ch(R∃)";
    return result;
  }

  for (std::size_t iter = 0; iter < max_iterations_; ++iter) {
    const Cq& q = q_inj_->disjuncts()[current->index];
    ValleyAnalysis analysis = AnalyzeValley(q);

    PeakStep step;
    step.witness_index = current->index;
    step.query = q;
    step.timestamps = current->timestamps;
    step.is_valley = analysis.is_valley;
    result.trajectory.push_back(step);

    if (analysis.is_valley) {
      result.success = true;
      return result;
    }

    // A ≤_q-maximal existential variable exists because q is not a valley.
    Term peak;
    for (Term m : analysis.maximal_vars) {
      if (m != q.answers()[0] && m != q.answers()[1]) {
        peak = m;
        break;
      }
    }
    if (!peak.IsValid()) {
      result.failure_reason =
          "query is not a valley but has no existential maximal variable "
          "(cyclic or non-binary witness)";
      return result;
    }

    Term image = current->hom.Apply(peak);
    const ChaseTermInfo* info = chase_->InfoOf(image);
    if (info == nullptr) {
      result.failure_reason =
          "peak image is a database term; no creating trigger to splice";
      return result;
    }

    // I = h(q) ∖ h(Z) ∪ π(body(ρ)).
    Instance reduced(chase_->universe());
    for (const Atom& a : q.atoms()) {
      if (a.Mentions(peak)) continue;
      reduced.AddAtom(current->hom.Apply(a));
    }
    const Rule& rule = chase_->rules()[info->rule_index];
    for (const Atom& a : rule.body()) {
      reduced.AddAtom(info->trigger.Apply(a));
    }

    // Inside the spliced instance, always descend to the minimum — this is
    // what guarantees strict <_lex progress from any starting point.
    std::optional<WitnessCandidate> next =
        ExtremalWitness(reduced, s, t, /*minimal=*/true);
    if (!next.has_value()) {
      result.failure_reason =
          "no witness inside the spliced instance (incomplete injective "
          "rewriting?)";
      return result;
    }
    if (!LexLess(next->timestamps, current->timestamps)) {
      result.strictly_decreasing = false;
      result.failure_reason =
          "timestamp multiset did not strictly decrease (would refute "
          "Lemma 40)";
      return result;
    }
    current = std::move(next);
  }
  result.failure_reason = "iteration bound reached";
  return result;
}

}  // namespace bddfc
