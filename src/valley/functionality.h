// The functionality lemma (Lemma 42): on the chase of a regal rule set's
// existential part, a CQ q(x, ȳ) whose non-distinguished tuple lies
// strictly below x defines a *function* from images of x to images of ȳ.
// This is the engine of Proposition 43.

#ifndef BDDFC_VALLEY_FUNCTIONALITY_H_
#define BDDFC_VALLEY_FUNCTIONALITY_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "logic/cq.h"
#include "logic/instance.h"

namespace bddfc {

/// Outcome of the functionality check.
struct FunctionalityReport {
  /// True if {⟨s, t̄⟩ | Ch ⊨ q(s, t̄)} is a function (at most one t̄ per s).
  bool is_function = false;
  /// The function, as computed: image of x ↦ image tuple of ȳ.
  std::unordered_map<Term, std::vector<Term>> function;
  /// A violating s with two distinct tuples, when !is_function.
  std::optional<Term> counterexample;
};

/// Checks Lemma 42's conclusion for q(x, ȳ) over `chase_exists`, where the
/// first answer variable of q plays the role of x and the remaining ones
/// form ȳ. (The lemma's premise — every y ∈ ȳ is <_q below x on a chase of
/// a forward-existential, predicate-unique set — is the caller's
/// responsibility; the check itself is sound for any q.)
FunctionalityReport CheckFunctionality(const Cq& q,
                                       const Instance& chase_exists);

/// Lemma 42 premise check: every non-first answer variable of q is
/// strictly <_q-below the first one.
bool AllBelowFirstAnswer(const Cq& q);

}  // namespace bddfc

#endif  // BDDFC_VALLEY_FUNCTIONALITY_H_
