#include "valley/valley_tournament.h"

#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "graph/digraph.h"
#include "homomorphism/homomorphism.h"
#include "valley/functionality.h"
#include "valley/valley_query.h"

namespace bddfc {

const char* ValleyCaseName(ValleyCase c) {
  switch (c) {
    case ValleyCase::kNotValley:
      return "not a valley query";
    case ValleyCase::kDisconnected:
      return "disconnected";
    case ValleyCase::kSingleMaximal:
      return "single maximal";
    case ValleyCase::kTwoMaximal:
      return "two maximal";
  }
  return "?";
}

namespace {

// Variable digraph of a binary CQ plus reachability helpers.
struct VarGraph {
  Digraph graph;
  std::unordered_map<Term, int> ids;

  explicit VarGraph(const Cq& q) {
    for (Term v : q.vars()) Vertex(v);
    for (const Atom& a : q.atoms()) {
      if (a.IsBinary()) graph.AddEdge(Vertex(a.arg(0)), Vertex(a.arg(1)));
    }
  }

  int Vertex(Term t) {
    auto it = ids.find(t);
    if (it != ids.end()) return it->second;
    int v = graph.AddVertex();
    ids.emplace(t, v);
    return v;
  }

  bool Leq(Term a, Term b) {
    if (a == b) return true;
    return graph.Reaches(ids.at(a), ids.at(b));
  }

  // Weak component id of every variable.
  std::unordered_map<Term, int> WeakComponents() {
    std::unordered_map<Term, int> comp;
    std::vector<int> comp_of(graph.num_vertices(), -1);
    int next = 0;
    for (int start = 0; start < graph.num_vertices(); ++start) {
      if (comp_of[start] != -1) continue;
      std::vector<int> stack = {start};
      comp_of[start] = next;
      while (!stack.empty()) {
        int v = stack.back();
        stack.pop_back();
        auto push = [&](int w) {
          if (comp_of[w] == -1) {
            comp_of[w] = next;
            stack.push_back(w);
          }
        };
        for (int w : graph.OutNeighbors(v)) push(w);
        for (int w : graph.InNeighbors(v)) push(w);
      }
      ++next;
    }
    for (const auto& [t, v] : ids) comp.emplace(t, comp_of[v]);
    return comp;
  }
};

// Atoms of q whose variables all lie in `keep` (unary atoms included when
// their variable is kept).
std::vector<Atom> AtomsWithin(const Cq& q,
                              const std::unordered_set<Term>& keep) {
  std::vector<Atom> out;
  for (const Atom& a : q.atoms()) {
    bool inside = true;
    for (Term t : a.args()) {
      if (!t.IsRigid() && keep.find(t) == keep.end()) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(a);
  }
  return out;
}

}  // namespace

ValleyTournamentResult AnalyzeValleyTournament(
    const Cq& valley, const Instance& chase_exists,
    const std::vector<Term>& tournament,
    const std::function<bool(Term, Term)>& edge) {
  ValleyTournamentResult result;
  ValleyAnalysis analysis = AnalyzeValley(valley);
  if (!analysis.is_valley) {
    result.valley_case = ValleyCase::kNotValley;
    result.detail = "input query is not a valley query";
    return result;
  }

  Term x = valley.answers()[0];
  Term y = valley.answers()[1];
  VarGraph vars(valley);

  // --- Case 1: x and y live in different weak components. ------------------
  std::unordered_map<Term, int> comp = vars.WeakComponents();
  if (comp.at(x) != comp.at(y)) {
    result.valley_case = ValleyCase::kDisconnected;
    std::unordered_set<Term> comp_x;
    std::unordered_set<Term> comp_y;
    for (const auto& [t, c] : comp) {
      if (c == comp.at(x)) comp_x.insert(t);
      if (c == comp.at(y)) comp_y.insert(t);
    }
    Cq q1(AtomsWithin(valley, comp_x), {x});
    Cq q2(AtomsWithin(valley, comp_y), {y});
    for (Term u : tournament) {
      if (Entails(chase_exists, q1, {u}) && Entails(chase_exists, q2, {u})) {
        // q3 (the remaining components) holds because some edge is defined
        // by q; hence q(u,u) and so E(u,u).
        result.loop_derived = true;
        result.loop_term = u;
        result.detail =
            "disconnected case: q1 and q2 both hold at one tournament "
            "element";
        return result;
      }
    }
    result.detail =
        "disconnected case: no element satisfies both halves (tournament "
        "edges not all defined by this query?)";
    return result;
  }

  // Which answer variables are maximal?
  bool x_maximal = false;
  bool y_maximal = false;
  for (Term m : analysis.maximal_vars) {
    if (m == x) x_maximal = true;
    if (m == y) y_maximal = true;
  }

  // --- Case 2: a single maximal answer variable. ---------------------------
  if (!(x_maximal && y_maximal)) {
    result.valley_case = ValleyCase::kSingleMaximal;
    // Reorder answers so the maximal variable comes first; Lemma 42 then
    // says the defined relation is functional.
    Cq reordered = x_maximal ? Cq(valley.atoms(), {x, y})
                             : Cq(valley.atoms(), {y, x});
    FunctionalityReport fn = CheckFunctionality(reordered, chase_exists);
    result.functionality_held = fn.is_function;
    result.impossible = fn.is_function;
    result.detail = fn.is_function
                        ? "single-maximal case: relation is functional, "
                          "out-degree <= 1, no 4-tournament definable"
                        : "single-maximal case: functionality VIOLATED "
                          "(refutes Lemma 42 premises)";
    return result;
  }

  // --- Case 3: both x and y maximal. ---------------------------------------
  result.valley_case = ValleyCase::kTwoMaximal;
  // v̄: variables below both x and y; q_x / q_y: atoms within the down-sets
  // of x / y.
  std::unordered_set<Term> below_x;
  std::unordered_set<Term> below_y;
  std::vector<Term> shared;
  for (Term v : valley.vars()) {
    bool bx = vars.Leq(v, x);
    bool by = vars.Leq(v, y);
    if (bx) below_x.insert(v);
    if (by) below_y.insert(v);
    if (bx && by && v != x && v != y) shared.push_back(v);
  }

  std::vector<Term> fx_answers = {x};
  fx_answers.insert(fx_answers.end(), shared.begin(), shared.end());
  std::vector<Term> fy_answers = {y};
  fy_answers.insert(fy_answers.end(), shared.begin(), shared.end());
  Cq qx(AtomsWithin(valley, below_x), fx_answers);
  Cq qy(AtomsWithin(valley, below_y), fy_answers);

  FunctionalityReport fx = CheckFunctionality(qx, chase_exists);
  FunctionalityReport fy = CheckFunctionality(qy, chase_exists);
  result.functionality_held = fx.is_function && fy.is_function;
  if (!result.functionality_held) {
    result.detail = "two-maximal case: f_x or f_y not functional (refutes "
                    "Lemma 42 premises)";
    return result;
  }

  // Find a transitive triangle E(k1,k2), E(k1,k3), E(k2,k3); every
  // tournament on >= 4 vertices contains one. The loop then sits at k2.
  for (Term k1 : tournament) {
    for (Term k2 : tournament) {
      if (k2 == k1 || !edge(k1, k2)) continue;
      for (Term k3 : tournament) {
        if (k3 == k1 || k3 == k2) continue;
        if (!edge(k1, k3) || !edge(k2, k3)) continue;
        // Chain: f_x(k1)=f_y(k2), f_x(k1)=f_y(k3), f_x(k2)=f_y(k3)
        //   ⇒ f_x(k2)=f_y(k2) ⇒ q(k2,k2).
        if (Entails(chase_exists, valley, {k2, k2})) {
          result.loop_derived = true;
          result.loop_term = k2;
          result.detail =
              "two-maximal case: transitive triangle forces "
              "f_x(k2) = f_y(k2); loop verified at the middle vertex";
          return result;
        }
      }
    }
  }
  result.detail =
      "two-maximal case: no transitive triangle with a verifiable loop "
      "(tournament edges not all defined by this query?)";
  return result;
}

}  // namespace bddfc
