// The peak-removing argument (Lemma 40), executable.
//
// Given an edge E(s,t) of the Datalog saturation and the injective
// rewriting Q♦ of E(x,y) against a regal rule set, the procedure starts
// from the TS_m-lex-minimal injective witness ⟨q,h⟩ of (s,t) in Ch(R∃) and,
// while q is not a valley query:
//   * picks a ≤_q-maximal existential variable z (exists since q is not a
//     valley),
//   * cuts the atoms Z ∋ z from the image and splices in the body of the
//     trigger that created h(z):  I = h(q) ∖ h(Z) ∪ π(body(ρ)),
//   * re-finds a witness inside I — whose timestamp multiset is strictly
//     <_lex-smaller, because the trigger body's terms all predate h(z).
// Lemma 8 (well-foundedness of <_lex on bounded sizes) makes this
// terminate; the procedure records the full descent trajectory so the
// benches can chart it.

#ifndef BDDFC_VALLEY_PEAK_REMOVAL_H_
#define BDDFC_VALLEY_PEAK_REMOVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "logic/cq.h"
#include "multiset/multiset.h"

namespace bddfc {

/// One point of the descent trajectory.
struct PeakStep {
  /// Disjunct of Q♦ witnessing the edge at this step.
  std::size_t witness_index = 0;
  /// The witness query.
  Cq query;
  /// TS_m of the witness image's terms.
  Multiset<int> timestamps;
  /// Whether this witness is already a valley query.
  bool is_valley = false;
};

/// Outcome of the descent.
struct PeakRemovalResult {
  /// Reached a valley-query witness.
  bool success = false;
  std::vector<PeakStep> trajectory;
  /// Human-readable reason when !success (incomplete rewriting, database
  /// peak, bound hit, or a non-decreasing step, which would refute
  /// Lemma 40).
  std::string failure_reason;
  /// Every step strictly decreased TS_m (Lemma 40's invariant).
  bool strictly_decreasing = true;
};

/// Where the descent starts.
enum class PeakStart {
  /// The TS_m-lex-minimal witness, as in Lemma 40's proof. On a complete
  /// injective rewriting the minimum is already a valley (that *is* the
  /// lemma), so success is typically immediate — a failure here exposes an
  /// incomplete rewriting or a Lemma 40 violation.
  kMinimal,
  /// The lex-maximal witness: exercises genuine multi-step descents, which
  /// is what the benches chart.
  kMaximal,
};

/// Runs the peak-removal descent on the chase `chase_exists` = Ch(R∃)
/// (which must expose trigger provenance) for the injective rewriting
/// `q_inj` of E(x,y).
class PeakRemover {
 public:
  PeakRemover(const ObliviousChase* chase_exists, const Ucq* q_inj,
              std::size_t max_iterations = 64,
              PeakStart start = PeakStart::kMinimal);

  /// Descends from the chosen starting witness of (s,t). E(s,t) need not
  /// be an atom of the chase itself — only witnessed by Q♦.
  PeakRemovalResult Run(Term s, Term t) const;

 private:
  struct WitnessCandidate {
    std::size_t index;
    Substitution hom;
    Multiset<int> timestamps;
  };

  std::optional<WitnessCandidate> ExtremalWitness(const Instance& target,
                                                  Term s, Term t,
                                                  bool minimal) const;
  Multiset<int> ImageTimestamps(const Cq& q, const Substitution& hom) const;

  const ObliviousChase* chase_;
  const Ucq* q_inj_;
  std::size_t max_iterations_;
  PeakStart start_;
};

}  // namespace bddfc

#endif  // BDDFC_VALLEY_PEAK_REMOVAL_H_
