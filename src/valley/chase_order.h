// The strict partial order <_I of Definition 38: s <_I t iff a directed
// path (through binary atoms) leads from s to t. On the chase of a
// forward-existential rule set this is a DAG order (Observation 35) and the
// backbone of the valley-query machinery.

#ifndef BDDFC_VALLEY_CHASE_ORDER_H_
#define BDDFC_VALLEY_CHASE_ORDER_H_

#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "logic/instance.h"

namespace bddfc {

/// Reachability order over the terms of an instance, viewing every binary
/// atom as a directed edge.
class ChaseOrder {
 public:
  explicit ChaseOrder(const Instance& instance);

  /// s <_I t: non-trivial directed path from s to t.
  bool Less(Term s, Term t) const;

  /// s ≤_I t: reflexive closure.
  bool Leq(Term s, Term t) const { return s == t || Less(s, t); }

  /// Observation 35's premise: the binary atoms form a DAG.
  bool IsDag() const { return is_dag_; }

  /// ≤-maximal terms (no outgoing edge). Terms that occur only in unary or
  /// nullary atoms do not participate in the order.
  std::vector<Term> MaximalTerms() const;

  /// All terms participating in the order.
  const std::vector<Term>& terms() const { return graph_.vertex_terms; }

 private:
  InstanceGraph graph_;
  bool is_dag_ = false;
};

}  // namespace bddfc

#endif  // BDDFC_VALLEY_CHASE_ORDER_H_
