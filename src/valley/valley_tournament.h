// Proposition 43, executable: a valley query that defines an E-tournament
// of size 4 also defines an E-loop. The analyzer reproduces the proof's
// three-way case split and, in the two cases where a loop is forced,
// actually derives and verifies the looping element.
//
//   * Disconnected (x and y in different weak components):
//     q = q1(x) ∧ q2(y) ∧ q3; among any 4 tournament vertices some u
//     satisfies both q1 and q2, so q(u,u) holds.
//   * Single maximal answer variable: Lemma 42 makes the defined relation
//     functional, so out-degrees are ≤ 1 and no 4-tournament can be
//     defined at all (`impossible` is set; supplying one anyway refutes
//     functionality and is reported).
//   * Two maximal answer variables: with q = ∃v̄ q_x(x,v̄) ∧ q_y(v̄,y) and
//     f_x, f_y the Lemma 42 functions, a transitive triangle
//     E(k1,k2), E(k1,k3), E(k2,k3) forces f_x(k2) = f_y(k2), hence
//     q(k2,k2): the loop sits at the triangle's middle vertex.

#ifndef BDDFC_VALLEY_VALLEY_TOURNAMENT_H_
#define BDDFC_VALLEY_VALLEY_TOURNAMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"

namespace bddfc {

/// Which case of Proposition 43's proof applies.
enum class ValleyCase {
  kNotValley,
  kDisconnected,
  kSingleMaximal,
  kTwoMaximal,
};

const char* ValleyCaseName(ValleyCase c);

/// Outcome of the Proposition 43 analysis.
struct ValleyTournamentResult {
  ValleyCase valley_case = ValleyCase::kNotValley;
  /// A loop q(u,u) was derived and verified on the chase.
  bool loop_derived = false;
  /// The looping element (valid iff loop_derived).
  Term loop_term;
  /// Single-maximal case: q cannot define a 4-tournament at all.
  bool impossible = false;
  /// The Lemma 42 premise/conclusion held wherever used.
  bool functionality_held = true;
  /// Narrative of the derivation (for the benches/examples).
  std::string detail;
};

/// Analyzes the valley query `valley` (answers (x,y)) against
/// `chase_exists` = Ch(R∃), for a tournament given as terms plus an edge
/// oracle over the Datalog saturation (edge(s,t) ⇔ E(s,t) holds). The
/// tournament should have ≥ 4 vertices with every edge defined by
/// `valley`; smaller inputs degrade gracefully (no loop derived).
ValleyTournamentResult AnalyzeValleyTournament(
    const Cq& valley, const Instance& chase_exists,
    const std::vector<Term>& tournament,
    const std::function<bool(Term, Term)>& edge);

}  // namespace bddfc

#endif  // BDDFC_VALLEY_VALLEY_TOURNAMENT_H_
