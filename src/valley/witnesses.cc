#include "valley/witnesses.h"

#include <cstdint>

#include "homomorphism/homomorphism.h"
#include "valley/valley_query.h"

namespace bddfc {

std::vector<std::size_t> Witnesses(const Instance& chase_exists,
                                   const Ucq& q_inj, Term s, Term t) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < q_inj.size(); ++i) {
    if (EntailsInjectively(chase_exists, q_inj.disjuncts()[i], {s, t})) {
      out.push_back(i);
    }
  }
  return out;
}

std::size_t FirstWitness(const Instance& chase_exists, const Ucq& q_inj,
                         Term s, Term t) {
  for (std::size_t i = 0; i < q_inj.size(); ++i) {
    if (EntailsInjectively(chase_exists, q_inj.disjuncts()[i], {s, t})) {
      return i;
    }
  }
  return SIZE_MAX;
}

std::vector<std::size_t> ValleyWitnesses(const Instance& chase_exists,
                                         const Ucq& q_inj, Term s, Term t) {
  std::vector<std::size_t> out;
  for (std::size_t i : Witnesses(chase_exists, q_inj, s, t)) {
    const Cq& q = q_inj.disjuncts()[i];
    if (q.answers().size() == 2 && IsValleyQuery(q)) out.push_back(i);
  }
  return out;
}

}  // namespace bddfc
