// Witness sets (Definition 36): for an edge E(s,t) of Ch(Ch(R∃),R_DL), the
// disjuncts of the injective rewriting Q♦ of E(x,y) that hold injectively
// for (s,t) in Ch(R∃).

#ifndef BDDFC_VALLEY_WITNESSES_H_
#define BDDFC_VALLEY_WITNESSES_H_

#include <cstddef>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"

namespace bddfc {

/// Indices (into q_inj.disjuncts()) of the witnesses W(s,t) of E(s,t) in
/// `chase_exists` = Ch(R∃).
std::vector<std::size_t> Witnesses(const Instance& chase_exists,
                                   const Ucq& q_inj, Term s, Term t);

/// Observation 37: W(s,t) non-empty for every E-edge of the Datalog
/// saturation — the first witness index, or SIZE_MAX if none (which, on a
/// complete injective rewriting, refutes the edge).
std::size_t FirstWitness(const Instance& chase_exists, const Ucq& q_inj,
                         Term s, Term t);

/// The indices of W(s,t) that are valley queries (Lemma 40 guarantees at
/// least one on complete rewritings of regal sets).
std::vector<std::size_t> ValleyWitnesses(const Instance& chase_exists,
                                         const Ucq& q_inj, Term s, Term t);

}  // namespace bddfc

#endif  // BDDFC_VALLEY_WITNESSES_H_
