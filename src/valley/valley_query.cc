#include "valley/valley_query.h"

#include <unordered_map>

#include "base/check.h"
#include "graph/digraph.h"

namespace bddfc {

ValleyAnalysis AnalyzeValley(const Cq& q) {
  BDDFC_CHECK_EQ(q.answers().size(), 2u);
  ValleyAnalysis out;

  Digraph graph;
  std::unordered_map<Term, int> ids;
  auto vertex = [&](Term t) {
    auto it = ids.find(t);
    if (it != ids.end()) return it->second;
    int v = graph.AddVertex();
    ids.emplace(t, v);
    return v;
  };
  // Every variable participates (unary atoms give isolated vertices).
  for (Term v : q.vars()) vertex(v);

  for (const Atom& a : q.atoms()) {
    if (a.arity() > 2) return out;  // non-binary: not a valley query
    if (!a.IsBinary()) continue;
    graph.AddEdge(vertex(a.arg(0)), vertex(a.arg(1)));
  }

  out.is_dag = graph.IsAcyclic();

  // Maximal = no outgoing edge.
  std::vector<Term> terms(ids.size());
  for (const auto& [t, v] : ids) terms[v] = t;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutNeighbors(v).empty()) out.maximal_vars.push_back(terms[v]);
  }

  // Weak connectivity.
  if (graph.num_vertices() > 0) {
    std::vector<bool> visited(graph.num_vertices(), false);
    std::vector<int> stack = {0};
    visited[0] = true;
    int count = 1;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      auto push = [&](int w) {
        if (!visited[w]) {
          visited[w] = true;
          ++count;
          stack.push_back(w);
        }
      };
      for (int w : graph.OutNeighbors(v)) push(w);
      for (int w : graph.InNeighbors(v)) push(w);
    }
    out.connected = count == graph.num_vertices();
  }

  if (!out.is_dag) return out;

  // Definition 39 asks that the only ≤_q-maximal variables are x and y.
  // Proposition 43's case analysis explicitly covers valley queries where
  // just one of the two is maximal, so the right reading is
  // maximal_vars ⊆ {x, y} (and non-emptiness, which holds in any finite
  // DAG with at least one variable).
  Term x = q.answers()[0];
  Term y = q.answers()[1];
  bool only_answers_maximal = true;
  for (Term t : out.maximal_vars) {
    if (t != x && t != y) only_answers_maximal = false;
  }
  out.is_valley = only_answers_maximal && !out.maximal_vars.empty();
  return out;
}

bool IsValleyQuery(const Cq& q) { return AnalyzeValley(q).is_valley; }

}  // namespace bddfc
