// Valley queries (Definition 39): binary CQs q(x,y) that are DAGs whose
// only ≤_q-maximal variables are the two answer variables.

#ifndef BDDFC_VALLEY_VALLEY_QUERY_H_
#define BDDFC_VALLEY_VALLEY_QUERY_H_

#include <vector>

#include "logic/cq.h"

namespace bddfc {

/// Structural analysis of a binary CQ as a directed graph over its
/// variables.
struct ValleyAnalysis {
  /// The binary atoms of q form a DAG (no loops, no directed cycles).
  bool is_dag = false;
  /// ≤_q-maximal variables (sinks plus isolated variables).
  std::vector<Term> maximal_vars;
  /// Definition 39 verdict: DAG, and maximal vars ⊆ {x, y} with both
  /// answers maximal.
  bool is_valley = false;
  /// The query's variable graph is (weakly) connected.
  bool connected = false;
};

/// Analyzes q(x,y); q must have exactly two answer variables. Unary atoms
/// contribute isolated vertices unless their variable also occurs in a
/// binary atom; atoms of arity > 2 make the query trivially non-valley
/// (the machinery lives on binary signatures).
ValleyAnalysis AnalyzeValley(const Cq& q);

/// Convenience: Definition 39 check.
bool IsValleyQuery(const Cq& q);

}  // namespace bddfc

#endif  // BDDFC_VALLEY_VALLEY_QUERY_H_
