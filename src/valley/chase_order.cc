#include "valley/chase_order.h"

namespace bddfc {

ChaseOrder::ChaseOrder(const Instance& instance)
    : graph_(GraphOfAllBinaryAtoms(instance)) {
  is_dag_ = graph_.graph.IsAcyclic();
}

bool ChaseOrder::Less(Term s, Term t) const {
  auto is_ = graph_.term_ids.find(s);
  auto it = graph_.term_ids.find(t);
  if (is_ == graph_.term_ids.end() || it == graph_.term_ids.end()) {
    return false;
  }
  return graph_.graph.Reaches(is_->second, it->second);
}

std::vector<Term> ChaseOrder::MaximalTerms() const {
  std::vector<Term> out;
  for (int v = 0; v < graph_.graph.num_vertices(); ++v) {
    if (graph_.graph.OutNeighbors(v).empty()) {
      out.push_back(graph_.vertex_terms[v]);
    }
  }
  return out;
}

}  // namespace bddfc
