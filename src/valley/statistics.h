// Shape statistics over UCQ disjuncts: how many are valley queries, and
// of which Proposition 43 case. Feeds the EXP-9 reporting and the
// tournament analyzer's diagnostics.

#ifndef BDDFC_VALLEY_STATISTICS_H_
#define BDDFC_VALLEY_STATISTICS_H_

#include <cstddef>
#include <string>

#include "logic/cq.h"

namespace bddfc {

/// Counts of disjunct shapes within a binary UCQ.
struct UcqValleyStats {
  std::size_t total = 0;
  std::size_t non_binary_answers = 0;  // answer tuple not of length 2
  std::size_t cyclic = 0;              // not a DAG
  std::size_t peaked = 0;              // DAG but extra maximal variables
  std::size_t valleys = 0;
  // Among the valleys:
  std::size_t disconnected = 0;   // answers in different weak components
  std::size_t single_maximal = 0; // exactly one answer maximal
  std::size_t two_maximal = 0;    // both answers maximal, connected

  std::string ToString() const;
};

/// Classifies every disjunct of `q` (intended: an injective rewriting Q♦
/// of an edge query).
UcqValleyStats AnalyzeUcqValleys(const Ucq& q);

}  // namespace bddfc

#endif  // BDDFC_VALLEY_STATISTICS_H_
