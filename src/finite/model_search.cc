#include "finite/model_search.h"

#include <vector>

#include "base/check.h"
#include "homomorphism/homomorphism.h"

namespace bddfc {

bool IsFiniteModel(const Instance& candidate, const RuleSet& rules) {
  for (const Rule& rule : rules) {
    HomSearch body_search(rule.body(), &candidate);
    bool satisfied = true;
    body_search.ForEach({}, [&](const Substitution& h) {
      // The trigger must be satisfied: some extension of the frontier
      // image makes the head true.
      HomSearch head_search(rule.head(), &candidate);
      Substitution seed;
      for (Term v : rule.frontier()) seed.Bind(v, h.Apply(v));
      if (!head_search.Exists(seed)) {
        satisfied = false;
        return false;  // stop: found a violated trigger
      }
      return true;
    });
    if (!satisfied) return false;
  }
  return true;
}

ModelSearchResult FindFiniteModelAvoiding(const Instance& db,
                                          const RuleSet& rules,
                                          const Cq& avoid,
                                          Universe* universe,
                                          ModelSearchOptions options) {
  BDDFC_CHECK(avoid.IsBoolean());
  ModelSearchResult result;

  // Participating predicates (arity ≤ 2, ⊤ excluded — implicit).
  std::vector<PredicateId> preds;
  auto add_pred = [&](PredicateId p) {
    if (p == universe->top()) return;
    BDDFC_CHECK_LE(universe->ArityOf(p), 2);
    for (PredicateId q : preds) {
      if (q == p) return;
    }
    preds.push_back(p);
  };
  for (PredicateId p : SignatureOf(rules)) add_pred(p);
  for (PredicateId p : SignatureOf(db)) add_pred(p);
  for (const Atom& a : avoid.atoms()) add_pred(a.pred());

  // Domain: the database constants first, then fresh elements.
  std::vector<Term> domain;
  for (Term t : db.ActiveDomain()) domain.push_back(t);
  BDDFC_CHECK_LE(static_cast<int>(domain.size()), options.domain_size);
  for (int i = static_cast<int>(domain.size()); i < options.domain_size;
       ++i) {
    domain.push_back(universe->InternConstant("d" + std::to_string(i)));
  }
  const int n = options.domain_size;

  // Cell layout: per predicate, n^arity presence bits. Database atoms are
  // forced on.
  struct Cell {
    PredicateId pred;
    std::vector<Term> args;
    bool forced = false;
  };
  std::vector<Cell> cells;
  for (PredicateId p : preds) {
    int arity = universe->ArityOf(p);
    if (arity == 0) {
      continue;  // nullary predicates other than ⊤ unsupported here
    } else if (arity == 1) {
      for (int i = 0; i < n; ++i) {
        cells.push_back({p, {domain[i]}, false});
      }
    } else {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          cells.push_back({p, {domain[i], domain[j]}, false});
        }
      }
    }
  }
  for (Cell& cell : cells) {
    if (db.Contains(Atom(cell.pred, cell.args))) cell.forced = true;
  }

  // Enumerate subsets of the *free* cells only; forced cells are always on.
  std::vector<std::size_t> free_cells;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!cells[c].forced) free_cells.push_back(c);
  }
  BDDFC_CHECK_LE(free_cells.size(), 48u);  // small-domain tool by design

  const std::uint64_t limit = free_cells.size() >= 63
                                  ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << free_cells.size());
  bool truncated = false;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (result.candidates_checked >= options.max_candidates) {
      truncated = true;
      break;
    }
    ++result.candidates_checked;

    Instance candidate(universe);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].forced) candidate.AddAtom(Atom(cells[c].pred, cells[c].args));
    }
    for (std::size_t f = 0; f < free_cells.size(); ++f) {
      if (mask & (std::uint64_t{1} << f)) {
        const Cell& cell = cells[free_cells[f]];
        candidate.AddAtom(Atom(cell.pred, cell.args));
      }
    }
    if (Entails(candidate, avoid)) continue;
    if (!IsFiniteModel(candidate, rules)) continue;
    result.found = true;
    result.model = std::move(candidate);
    return result;
  }
  result.exhaustive = !truncated;
  return result;
}

ModelSearchResult FindLoopFreeFiniteModel(const Instance& db,
                                          const RuleSet& rules,
                                          PredicateId e, Universe* universe,
                                          ModelSearchOptions options) {
  return FindFiniteModelAvoiding(db, rules, LoopQuery(universe, e), universe,
                                 options);
}

}  // namespace bddfc
