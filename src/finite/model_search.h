// Finite-model search: the "finite semantics" side of the bdd ⇒ fc
// conjecture (Section 1).
//
// A rule set R is finitely controllable when unrestricted and finite
// entailment coincide for all databases and queries. The gap is witnessed
// by queries — like Loop_E in Example 1 — that fail in the chase but hold
// in every *finite* model. This module enumerates finite models over
// small domains and answers exactly that question:
//
//   * does a finite model of (I, R) over ≤ n elements exist in which a
//     given Boolean query FAILS?
//
// For Example 1 the answer is no (every finite model has a loop); for its
// bdd-ification the chase itself entails the loop, so the semantics agree
// — the pattern Theorem 1 makes systematic.
//
// Complexity: enumeration over all 2^(Σ_P n^ar(P)) candidate relations —
// strictly a small-domain tool (n ≤ 3–4 over a couple of predicates).

#ifndef BDDFC_FINITE_MODEL_SEARCH_H_
#define BDDFC_FINITE_MODEL_SEARCH_H_

#include <cstdint>
#include <optional>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// Options for the finite-model enumeration.
struct ModelSearchOptions {
  /// Domain size (elements d0..d{n-1}).
  int domain_size = 3;
  /// Safety cap on enumerated candidates.
  std::uint64_t max_candidates = 1u << 24;
};

/// Result of a finite-model search.
struct ModelSearchResult {
  /// A model was found (within the candidate cap).
  bool found = false;
  /// The search exhausted every candidate (so "not found" is a proof for
  /// this domain size).
  bool exhaustive = false;
  /// The witness model (valid iff found).
  std::optional<Instance> model;
  /// Candidates inspected.
  std::uint64_t candidates_checked = 0;
};

/// True iff `candidate` satisfies every rule of `rules`: each body
/// homomorphism extends to a head homomorphism into `candidate`.
bool IsFiniteModel(const Instance& candidate, const RuleSet& rules);

/// Searches for a finite model of (db, rules) over `domain_size` fresh
/// elements in which the Boolean CQ `avoid` does NOT hold. The database's
/// constants are embedded as the first domain elements (db must have at
/// most domain_size constants). Only predicates of arity ≤ 2 that occur
/// in `rules`/`db`/`avoid` participate.
ModelSearchResult FindFiniteModelAvoiding(const Instance& db,
                                          const RuleSet& rules,
                                          const Cq& avoid,
                                          Universe* universe,
                                          ModelSearchOptions options = {});

/// Convenience: is there a loop-free finite model of (db, rules) over the
/// given domain size? (The Example 1 question.)
ModelSearchResult FindLoopFreeFiniteModel(const Instance& db,
                                          const RuleSet& rules,
                                          PredicateId e, Universe* universe,
                                          ModelSearchOptions options = {});

}  // namespace bddfc

#endif  // BDDFC_FINITE_MODEL_SEARCH_H_
