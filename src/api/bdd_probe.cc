#include "api/bdd_probe.h"

#include "homomorphism/homomorphism.h"

namespace bddfc {

BddProbeReport ProbeBddConstant(const Cq& q, const RuleSet& rules,
                                const std::vector<Instance>& instances,
                                ChaseOptions options) {
  BddProbeReport report;
  for (const Instance& db : instances) {
    BddProbeEntry entry;
    ObliviousChase chase(db, rules, options);
    for (std::size_t step = 0;; ++step) {
      if (Entails(chase.Result(), q)) {
        entry.first_entailed_step = static_cast<int>(step);
        break;
      }
      if (chase.Saturated() || chase.HitBounds() ||
          step >= options.max_steps) {
        break;
      }
      chase.RunSteps(step + 1);
    }
    entry.chase_saturated = chase.Saturated();
    if (entry.first_entailed_step < 0 && !chase.Saturated()) {
      report.inconclusive = true;  // truncated before an answer
    }
    if (entry.first_entailed_step > report.measured_constant) {
      report.measured_constant = entry.first_entailed_step;
    }
    report.entries.push_back(entry);
  }
  return report;
}

Proposition4Report CheckProposition4(const Cq& q, const RuleSet& rules,
                                     const std::vector<Instance>& instances,
                                     Universe* universe,
                                     RewriterOptions rewriter_options,
                                     ChaseOptions chase_options) {
  Proposition4Report report;
  UcqRewriter rewriter(rules, universe, rewriter_options);
  RewriteResult rewriting = rewriter.Rewrite(q);
  report.rewriting_saturated = rewriting.saturated;
  report.rewriting_depth = rewriting.depth;
  report.probe = ProbeBddConstant(q, rules, instances, chase_options);
  if (report.rewriting_saturated && !report.probe.inconclusive) {
    report.consistent =
        report.probe.measured_constant <=
        static_cast<int>(report.rewriting_depth);
  }
  return report;
}

}  // namespace bddfc
