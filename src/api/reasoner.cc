#include "api/reasoner.h"

#include <chrono>
#include <utility>

#include "base/check.h"
#include "chase/rule_scheduler.h"
#include "obs/obs.h"

namespace bddfc {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ExecutionConfig ReasonerOptions::ResolvedExec() const {
  ExecutionConfig resolved = chase.ResolvedExec();
  const ExecutionConfig defaults;
  // Same contract as ChaseOptions::ResolvedExec: a non-default deprecated
  // alias overrides its twin, and conflicting non-default settings
  // CHECK-fail instead of resolving silently.
  if (num_threads != defaults.num_threads) {
    BDDFC_CHECK(resolved.num_threads == defaults.num_threads ||
                resolved.num_threads == num_threads);
    resolved.num_threads = num_threads;
  }
  if (storage.has_value()) {
    BDDFC_CHECK(!resolved.storage.has_value() ||
                *resolved.storage == *storage);
    resolved.storage = storage;
  }
  return resolved;
}

const char* ToString(AnswerStrategy strategy) {
  switch (strategy) {
    case AnswerStrategy::kMaterialize:
      return "materialize";
    case AnswerStrategy::kRewrite:
      return "rewrite";
    case AnswerStrategy::kAuto:
      return "auto";
  }
  return "?";
}

const char* ToString(StrategyDecision decision) {
  switch (decision) {
    case StrategyDecision::kNone:
      return "none";
    case StrategyDecision::kExplicit:
      return "explicit";
    case StrategyDecision::kCertifiedFes:
      return "certified-fes";
    case StrategyDecision::kCertifiedFus:
      return "certified-fus";
    case StrategyDecision::kFusFallback:
      return "fus-budget-materialize";
    case StrategyDecision::kProbeRewrite:
      return "probe-rewrite";
    case StrategyDecision::kProbeMaterialize:
      return "probe-materialize";
  }
  return "?";
}

// --- AnswerCursor ------------------------------------------------------------

std::optional<AnswerTuple> AnswerCursor::Next() {
  for (;;) {
    while (buffer_pos_ < buffer_.size()) {
      AnswerTuple& tuple = buffer_[buffer_pos_++];
      if (seen_.insert(tuple).second) return std::move(tuple);
    }
    if (disjunct_ >= query_->searches_.size()) return std::nullopt;
    buffer_ = query_->EvaluateDisjunct(disjunct_++);
    buffer_pos_ = 0;
  }
}

// --- PreparedQuery -----------------------------------------------------------

namespace {

// Projected, null-filtered (not yet deduplicated) answers of one disjunct
// through one bound search, in homomorphism enumeration order. Shared by
// the live path (the plan's own searches) and the snapshot-pinned path
// (searches built per call against a pinned target).
std::vector<AnswerTuple> EvaluateOne(const Cq& disjunct,
                                     const HomSearch& search,
                                     ThreadPool* pool) {
  // A Boolean disjunct contributes at most the empty tuple: an existence
  // check (with short-circuiting) replaces materializing every
  // homomorphism just to project it away.
  if (disjunct.answers().empty()) {
    if (search.ExistsParallel(pool)) return {AnswerTuple{}};
    return {};
  }
  std::vector<AnswerTuple> out;
  for (const Substitution& h : search.FindAllParallel(pool)) {
    AnswerTuple tuple = h.ApplyTuple(disjunct.answers());
    bool certain = true;
    for (Term t : tuple) {
      if (t.IsNull()) {
        certain = false;
        break;
      }
    }
    if (certain) out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace

std::vector<AnswerTuple> PreparedQuery::EvaluateDisjunct(
    std::size_t index) const {
  return EvaluateOne(evaluated_.disjuncts()[index], searches_[index], pool_);
}

bool PreparedQuery::complete() const {
  if (strategy_ == AnswerStrategy::kRewrite) return rewrite_saturated_;
  const ObliviousChase* chase = reasoner_->materialization();
  return chase != nullptr && chase->Saturated();
}

bool PreparedQuery::Ask() const {
  for (std::size_t i = 0; i < searches_.size(); ++i) {
    const Cq& disjunct = evaluated_.disjuncts()[i];
    if (disjunct.answers().empty()) {
      if (searches_[i].ExistsParallel(pool_)) return true;
      continue;
    }
    bool found = false;
    searches_[i].ForEach({}, [&](const Substitution& h) {
      for (Term v : disjunct.answers()) {
        if (h.Apply(v).IsNull()) return true;  // not certain; keep searching
      }
      found = true;
      return false;
    });
    if (found) return true;
  }
  return false;
}

std::size_t PreparedQuery::Count() const {
  std::size_t n = 0;
  AnswerCursor cursor = Open();
  while (cursor.Next().has_value()) ++n;
  return n;
}

std::vector<AnswerTuple> PreparedQuery::All() const {
  std::vector<AnswerTuple> out;
  AnswerCursor cursor = Open();
  while (auto tuple = cursor.Next()) out.push_back(std::move(*tuple));
  return out;
}

std::vector<AnswerTuple> PreparedQuery::AllOn(const Instance& target,
                                              ThreadPool* pool) const {
  std::vector<AnswerTuple> out;
  std::unordered_set<AnswerTuple, AnswerTupleHash> seen;
  for (const Cq& disjunct : evaluated_.disjuncts()) {
    HomSearch search(disjunct.atoms(), &target);
    for (AnswerTuple& tuple : EvaluateOne(disjunct, search, pool)) {
      if (seen.insert(tuple).second) out.push_back(std::move(tuple));
    }
  }
  return out;
}

std::size_t PreparedQuery::CountOn(const Instance& target,
                                   ThreadPool* pool) const {
  return AllOn(target, pool).size();
}

bool PreparedQuery::AskOn(const Instance& target, ThreadPool* pool) const {
  (void)pool;  // existence short-circuits; fan-out never pays for itself
  for (const Cq& disjunct : evaluated_.disjuncts()) {
    HomSearch search(disjunct.atoms(), &target);
    if (disjunct.answers().empty()) {
      if (search.Exists()) return true;
      continue;
    }
    bool found = false;
    search.ForEach({}, [&](const Substitution& h) {
      for (Term v : disjunct.answers()) {
        if (h.Apply(v).IsNull()) return true;  // not certain; keep searching
      }
      found = true;
      return false;
    });
    if (found) return true;
  }
  return false;
}

// --- Reasoner ----------------------------------------------------------------

Reasoner::Reasoner(const Instance& database, RuleSet rules,
                   ReasonerOptions options)
    : options_(options),
      database_(database, options.ResolvedExec().storage.value_or(
                              database.storage())),
      rules_(std::move(rules)),
      rewriter_(rules_, database_.universe(), options.rewriter),
      probe_rewriter_(rules_, database_.universe(), options.auto_probe),
      num_threads_(
          ThreadPool::ResolveThreadCount(options.ResolvedExec().num_threads)) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
  // Freeze the resolved configuration into options_.chase.exec — one pool
  // per session (the chase borrows it, prepared-query evaluation fans out
  // over it), one storage backend (the materialization inherits the
  // session backend through the database copy), one engine.
  options_.chase.exec = options_.ResolvedExec();
  options_.chase.exec.num_threads = num_threads_;
  options_.chase.exec.pool = pool_.get();
  options_.chase.exec.storage = database_.storage();
  // Mirror the resolved values into the deprecated alias fields so code
  // reading either view of options() agrees (the re-merge inside the chase
  // is then a no-op).
  options_.chase.max_steps = options_.chase.exec.max_steps;
  options_.chase.max_atoms = options_.chase.exec.max_atoms;
  options_.chase.num_threads = num_threads_;
  options_.chase.pool = pool_.get();
  options_.chase.storage = database_.storage();
  options_.num_threads = num_threads_;
  options_.storage = database_.storage();
  metrics_ = obs::ResolveMetrics(options_.chase.exec.metrics);
}

Reasoner::~Reasoner() = default;

void Reasoner::DriveChase(std::size_t target_steps, bool incremental) {
  BDDFC_OBS_SPAN(drive_span, "reasoner", "reasoner.materialize");
  drive_span.Arg("incremental", incremental ? 1 : 0);
  obs::Histogram* step_ms_hist = metrics_->GetHistogram("chase.step_ms");
  const auto total_start = std::chrono::steady_clock::now();
  while (chase_->StepsExecuted() < target_steps && !chase_->Saturated() &&
         !chase_->HitBounds()) {
    const std::size_t atoms_before = chase_->Result().size();
    const std::size_t steps_before = chase_->StepsExecuted();
    const auto step_start = std::chrono::steady_clock::now();
    chase_->RunSteps(steps_before + 1);
    if (chase_->StepsExecuted() == steps_before) break;  // nothing fired
    const double step_ms = MsSince(step_start);
    step_ms_hist->Observe(static_cast<std::uint64_t>(step_ms));
    stats_.chase_steps.push_back(
        {chase_->StepsExecuted(), chase_->Result().size() - atoms_before,
         chase_->Result().size(), step_ms, incremental});
  }
  stats_.materialize_ms += MsSince(total_start);
  stats_.materialized = true;
  stats_.chase_saturated = chase_->Saturated();
  stats_.chase_hit_bounds = chase_->HitBounds();
  stats_.chase_atoms = chase_->Result().size();
  stats_.triggers_fired = chase_->TriggersFired();
  stats_.num_strata = chase_->scheduler().num_strata();
  stats_.rules_skipped = chase_->scheduler().stats().skipped_total();
}

TerminationCertificate Reasoner::certificate() {
  if (!certificate_.has_value()) {
    certificate_ = analysis_.has_value() ? analysis_->certificate
                                         : CertifyTermination(rules_);
    stats_.certificate = *certificate_;
  }
  return *certificate_;
}

const ProgramReport& Reasoner::analysis() {
  if (!analysis_.has_value()) {
    BDDFC_OBS_SPAN(analysis_span, "reasoner", "reasoner.analyze");
    analysis_ = AnalyzeProgram(rules_, *database_.universe());
    certificate_ = analysis_->certificate;
    stats_.certificate = *certificate_;
    stats_.program_classes = analysis_->ClassList();
    stats_.program_fus = analysis_->fus;
    stats_.program_fes = analysis_->fes;
  }
  return *analysis_;
}

void Reasoner::EnsureMaterialized() {
  if (chase_ != nullptr) return;
  chase_ = std::make_unique<ObliviousChase>(database_, rules_, options_.chase);
  DriveChase(options_.chase.exec.max_steps, /*incremental=*/false);
}

const Instance& Reasoner::Materialize() {
  EnsureMaterialized();
  return chase_->Result();
}

PreparedQuery Reasoner::Prepare(const Cq& q) { return Prepare(Ucq({q})); }

PreparedQuery Reasoner::Prepare(const Ucq& q) {
  BDDFC_OBS_SPAN(prepare_span, "reasoner", "reasoner.prepare");
  ++stats_.queries_prepared;
  metrics_->GetCounter("reasoner.queries_prepared")->Add(1);
  AnswerStrategy resolved = options_.strategy;
  StrategyDecision decision = StrategyDecision::kExplicit;
  RewriteResult rewrite;
  const auto run_rewrite = [&](UcqRewriter& rewriter, bool probe) {
    BDDFC_OBS_SPAN(rewrite_span, "reasoner", "reasoner.rewrite");
    rewrite_span.Arg("probe", probe ? 1 : 0);
    rewrite = rewriter.Rewrite(q);
    rewrite_span.Arg("saturated", rewrite.saturated ? 1 : 0);
    ++stats_.rewrites_run;
    metrics_->GetCounter("reasoner.rewrites_run")->Add(1);
  };
  if (resolved == AnswerStrategy::kAuto) {
    // Analysis-first selection: decide from the rule set's decidable-class
    // verdicts where they apply, probe only in the undecided gap.
    const ProgramReport& report = analysis();
    if (options_.chase.variant != ChaseVariant::kOblivious && report.fes) {
      // FES (weak/joint acyclicity): the semi-oblivious/restricted chase
      // provably saturates, so materialization is safe, complete, and
      // amortizes across every later query — no rewriting budget spent.
      // (No certificate covers the oblivious chase: weakly acyclic rules
      // can still diverge under it, so kAuto falls through there.)
      resolved = AnswerStrategy::kMaterialize;
      decision = StrategyDecision::kCertifiedFes;
      ++stats_.auto_picked_materialize;
      ++stats_.auto_certified_materialize;
    } else if (report.fus) {
      // FUS (linear/sticky): every UCQ is first-order-rewritable against
      // these rules, so skip the probe and spend the full rewriting
      // budget directly. The class verdict promises a finite rewriting,
      // not one inside any particular budget — if the bounds are hit
      // anyway, fall back to materialization like an ordinary miss.
      run_rewrite(rewriter_, /*probe=*/false);
      if (rewrite.saturated) {
        resolved = AnswerStrategy::kRewrite;
        decision = StrategyDecision::kCertifiedFus;
        ++stats_.auto_picked_rewrite;
        ++stats_.auto_certified_rewrite;
      } else {
        resolved = AnswerStrategy::kMaterialize;
        decision = StrategyDecision::kFusFallback;
        ++stats_.auto_picked_materialize;
      }
    } else {
      // Undecided gap — the paper's dichotomy as a planner: a saturated
      // probe certifies the query is UCQ-rewritable against these rules,
      // so evaluating it over the raw database is complete; otherwise
      // fall back to the chase.
      run_rewrite(probe_rewriter_, /*probe=*/true);
      ++stats_.auto_probes_run;
      if (rewrite.saturated) {
        resolved = AnswerStrategy::kRewrite;
        decision = StrategyDecision::kProbeRewrite;
        ++stats_.auto_picked_rewrite;
      } else {
        resolved = AnswerStrategy::kMaterialize;
        decision = StrategyDecision::kProbeMaterialize;
        ++stats_.auto_picked_materialize;
      }
    }
  } else if (resolved == AnswerStrategy::kRewrite) {
    run_rewrite(rewriter_, /*probe=*/false);
  }
  stats_.last_decision = decision;

  PreparedQuery out;
  out.strategy_ = resolved;
  out.reasoner_ = this;
  out.pool_ = pool_.get();
  out.answer_arity_ =
      q.empty() ? 0 : q.disjuncts().front().answers().size();
  const Instance* target = nullptr;
  if (resolved == AnswerStrategy::kRewrite) {
    out.evaluated_ = std::move(rewrite.ucq);
    out.rewrite_saturated_ = rewrite.saturated;
    target = &database_;
  } else {
    EnsureMaterialized();
    out.evaluated_ = q;
    target = &chase_->Result();
  }
  out.searches_.reserve(out.evaluated_.size());
  for (const Cq& disjunct : out.evaluated_.disjuncts()) {
    out.searches_.emplace_back(disjunct.atoms(), target);
  }
  return out;
}

PreparedQuery Reasoner::PrepareDetached(const Cq& q) {
  return PrepareDetached(Ucq({q}));
}

PreparedQuery Reasoner::PrepareDetached(const Ucq& q) {
  BDDFC_OBS_SPAN(prepare_span, "reasoner", "reasoner.prepare_detached");
  ++stats_.queries_prepared;
  metrics_->GetCounter("reasoner.queries_prepared")->Add(1);
  PreparedQuery out;
  out.strategy_ = AnswerStrategy::kMaterialize;
  out.reasoner_ = this;
  out.evaluated_ = q;
  out.answer_arity_ = q.empty() ? 0 : q.disjuncts().front().answers().size();
  return out;
}

std::vector<AnswerTuple> Reasoner::Answer(const Cq& q) {
  return Prepare(q).All();
}

std::vector<AnswerTuple> Reasoner::Answer(const Ucq& q) {
  return Prepare(q).All();
}

bool Reasoner::Ask(const Cq& q) { return Prepare(q).Ask(); }

std::size_t Reasoner::AddFacts(const std::vector<Atom>& facts) {
  BDDFC_OBS_SPAN(add_span, "reasoner", "reasoner.add_facts");
  std::size_t added = 0;
  std::vector<Atom> fresh;
  fresh.reserve(facts.size());
  for (const Atom& fact : facts) {
    for (Term t : fact.args()) BDDFC_CHECK(t.IsConstant());
    if (!database_.AddAtom(fact)) continue;
    fresh.push_back(fact);
    ++added;
  }
  stats_.facts_added += added;
  if (added > 0) metrics_->GetCounter("reasoner.facts_added")->Add(added);
  add_span.Arg("added", added);
  if (added == 0 || chase_ == nullptr) return added;
  // Incremental maintenance: resume the existing chase from the new delta
  // with a fresh step budget, instead of re-chasing the extended instance.
  // A fact the chase had already derived adds nothing to the delta.
  if (chase_->AddBaseFacts(fresh) > 0) {
    ++stats_.incremental_runs;
    metrics_->GetCounter("reasoner.incremental_runs")->Add(1);
    DriveChase(chase_->StepsExecuted() + options_.chase.exec.max_steps,
               /*incremental=*/true);
  } else {
    stats_.chase_atoms = chase_->Result().size();
  }
  return added;
}

}  // namespace bddfc
