// Unified query-answering facade over the two pipelines the paper studies:
// materialize-with-the-chase-then-evaluate (src/chase + src/exec +
// src/homomorphism) and rewrite-into-a-UCQ-then-evaluate (src/rewriting).
//
// A Reasoner is a session over one rule set and one growing base instance.
// Queries are answered under certain-answer semantics — ans(q, I, R) is the
// set of all-constant tuples t̄ with Ch(I,R) |= q(t̄) — through a pluggable
// AnswerStrategy:
//
//   * kMaterialize — chase the base instance to saturation (or the
//     configured bounds), evaluate the query over the materialization, and
//     drop tuples that touch labeled nulls. Complete iff the chase
//     saturated. The materialization is built once, maintained
//     incrementally by AddFacts(), and shared by every query.
//   * kRewrite — compute the UCQ rewriting rew(q, R) and evaluate it over
//     the raw base instance (Definition 2 / the bdd way). Complete iff the
//     rewriting saturated within the configured bounds. Nothing is ever
//     materialized.
//   * kAuto — analysis-first selection. The decidable-class analysis of
//     the rule set (src/analysis/program_analysis.h) runs once per
//     session: an FES verdict (acyclicity certificate, on a terminating
//     chase variant) picks kMaterialize and an FUS verdict (linear or
//     sticky rules) picks kRewrite at the full budget — both without
//     spending any probe rewriting. Only programs the analysis cannot
//     place fall back to the old behavior: probe the rewriting within
//     tight bounds, answer by kRewrite if it saturates, else
//     kMaterialize. ReasonerStats::last_decision records the outcome.
//
// Prepare() turns a query into a PreparedQuery — strategy resolved,
// rewriting computed, per-disjunct homomorphism searches built — which can
// then be executed many times (Ask/Count/All/Open), including after
// AddFacts(): prepared queries always see the current state of the session.
// Enumeration order is deterministic at every thread count (first-derivation
// order: disjuncts in order, homomorphisms in the solver's canonical order,
// duplicates keep their first occurrence).

#ifndef BDDFC_API_REASONER_H_
#define BDDFC_API_REASONER_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/program_analysis.h"
#include "analysis/reliance.h"
#include "base/hash.h"
#include "base/thread_pool.h"
#include "chase/chase.h"
#include "homomorphism/homomorphism.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "rewriting/rewriter.h"

namespace bddfc {

/// How a Reasoner answers queries. See the file comment.
enum class AnswerStrategy {
  kMaterialize,
  kRewrite,
  kAuto,
};

/// Human-readable strategy name ("materialize" / "rewrite" / "auto").
const char* ToString(AnswerStrategy strategy);

/// Why the last Prepare() ended up on the strategy it did. kAuto resolves
/// analysis-first: a FES verdict (acyclicity certificate, non-oblivious
/// variant) picks materialization and a FUS verdict (linear or sticky
/// rules) picks rewriting — both without spending any probe budget; only
/// programs the analysis cannot place run the tight probe rewriting.
enum class StrategyDecision {
  kNone,              // no query prepared yet
  kExplicit,          // options.strategy was kMaterialize/kRewrite
  kCertifiedFes,      // FES class => materialize, no probe
  kCertifiedFus,      // FUS class => full-budget rewrite, no probe
  kFusFallback,       // FUS, but the rewriting outgrew even the full
                      // budget => materialize
  kProbeRewrite,      // undecided gap: probe saturated => rewrite
  kProbeMaterialize,  // undecided gap: probe missed => materialize
};

/// Human-readable decision name ("certified-fus", "probe-materialize", ...).
const char* ToString(StrategyDecision decision);

/// Session-wide configuration.
///
/// Execution knobs (engine, storage, threads, bounds) live in
/// `chase.exec` (ExecutionConfig) and govern the whole session: the chase
/// materialization and prepared-query evaluation share one resolved
/// configuration and one thread pool. The loose `num_threads` / `storage`
/// fields below are deprecated aliases kept for source compatibility; a
/// non-default alias overrides its `chase.exec` twin.
struct ReasonerOptions {
  AnswerStrategy strategy = AnswerStrategy::kAuto;
  /// Chase variant, engine and bounds for the kMaterialize path (see
  /// ChaseOptions::exec for the unified execution configuration).
  ChaseOptions chase;
  /// Rewriting bounds for the explicit kRewrite strategy. The facade trims
  /// the library-wide caps (depth 12 → 10, 4096 → 1024 disjuncts, 24 → 16
  /// atoms per query): non-saturating rewritings grow the frontier by
  /// ~2.5× per generation (and subsumption/coring costs compound on top),
  /// so a session-facing rewriting should give up within seconds, not
  /// minutes — measured on a transitive rule set, depth 12 burns ~80 s
  /// where depth 10 fails in ~3 s. Raise the caps for genuinely deep (but
  /// saturating) rewritings.
  RewriterOptions rewriter{
      .max_depth = 10, .max_disjuncts = 1024, .max_atoms_per_query = 16};
  /// Bounds for the kAuto rewriting probe — intentionally much tighter
  /// than `rewriter`, because a non-saturating probe is pure loss (the
  /// query then materializes anyway) and subsumption pruning is quadratic
  /// in the disjunct count. A rule set that is bdd but only saturates
  /// beyond these bounds falls back to materialization under kAuto; ask
  /// for kRewrite explicitly to spend the full budget.
  RewriterOptions auto_probe{
      .max_depth = 6, .max_disjuncts = 128, .max_atoms_per_query = 16};
  /// Deprecated alias of chase.exec.num_threads. Execution threads,
  /// plumbed both into the chase and into prepared-query evaluation
  /// (HomSearch::FindAllParallel over the session pool). 1 = serial,
  /// 0 = all hardware threads. Answers are identical at any thread count.
  std::size_t num_threads = 1;
  /// Deprecated alias of chase.exec.storage. Storage backend for the
  /// session's base instance and materialization. Defaults to the backend
  /// of the database the session was constructed from. Answers and chase
  /// runs are identical on every backend; kColumn trades point-lookup
  /// speed for O(atoms) index memory (see src/storage/fact_store.h).
  std::optional<StorageKind> storage = std::nullopt;

  /// The effective session-wide execution configuration: chase.exec with
  /// every non-default deprecated alias (ChaseOptions' and this struct's)
  /// overriding its twin.
  ExecutionConfig ResolvedExec() const;
};

/// One answer: the images of the query's answer tuple, all constants. A
/// Boolean query that holds yields a single empty tuple.
using AnswerTuple = std::vector<Term>;

/// Hash for AnswerTuple (dedup sets, user-side caches).
struct AnswerTupleHash {
  std::size_t operator()(const AnswerTuple& tuple) const {
    std::size_t seed = tuple.size();
    for (Term t : tuple) HashCombine(&seed, std::hash<Term>{}(t));
    return seed;
  }
};

/// Wall-clock and size accounting of one executed chase step, as recorded
/// by the facade's chase driver (chase_cli prints these; --json emits them).
struct ChaseStepStats {
  std::size_t step = 0;         // 1-based chase step number
  std::size_t atoms_added = 0;  // atoms this step derived
  std::size_t atoms_total = 0;  // cumulative atom count after the step
  double wall_ms = 0;
  bool incremental = false;  // ran during AddFacts() maintenance
};

/// Session counters. Monotone; read via Reasoner::stats().
struct ReasonerStats {
  bool materialized = false;
  bool chase_saturated = false;
  bool chase_hit_bounds = false;
  std::size_t chase_atoms = 0;
  std::size_t triggers_fired = 0;
  double materialize_ms = 0;
  std::vector<ChaseStepStats> chase_steps;
  std::size_t queries_prepared = 0;
  std::size_t rewrites_run = 0;
  std::size_t auto_picked_rewrite = 0;
  std::size_t auto_picked_materialize = 0;
  std::size_t facts_added = 0;
  std::size_t incremental_runs = 0;
  /// Rule-scheduling counters of the materialization (see
  /// src/chase/rule_scheduler.h): strata of the schedule (1 under kFlat)
  /// and rule-enumerations the stratified schedule avoided.
  std::size_t num_strata = 0;
  std::size_t rules_skipped = 0;
  /// The structural termination certificate of the rule set, as computed
  /// by the first kAuto Prepare() on a non-oblivious chase variant
  /// (kNone until then — the analysis is lazy).
  TerminationCertificate certificate = TerminationCertificate::kNone;
  /// kAuto picks decided by the certificate alone: the chase provably
  /// terminates, so Prepare() chose kMaterialize without spending any
  /// probe-rewriting budget. Also counted in auto_picked_materialize.
  std::size_t auto_certified_materialize = 0;
  /// kAuto picks decided by a FUS class verdict (linear/sticky rules):
  /// Prepare() ran the full-budget rewriter directly, no probe. Also
  /// counted in auto_picked_rewrite.
  std::size_t auto_certified_rewrite = 0;
  /// Tight probe rewritings actually spent by kAuto — stays 0 while every
  /// Prepare() was decided by the class analysis.
  std::size_t auto_probes_run = 0;
  /// How the most recent Prepare() chose its strategy.
  StrategyDecision last_decision = StrategyDecision::kNone;
  /// Decidable-class summary of the rule set, filled by the first call
  /// that runs the program analysis (kAuto Prepare(), analysis()):
  /// ProgramReport::ClassList(), and the derived FUS/FES verdicts.
  std::string program_classes;
  bool program_fus = false;
  bool program_fes = false;
};

class PreparedQuery;
class Reasoner;

/// Streaming answer enumeration over a PreparedQuery, in the deterministic
/// first-derivation order. Evaluates one disjunct at a time, so a UCQ with
/// many disjuncts (a typical rewriting) starts yielding answers before the
/// whole union has been evaluated. The cursor references the PreparedQuery:
/// it must not outlive it (or survive a move of it).
class AnswerCursor {
 public:
  /// The next answer tuple, or nullopt when the enumeration is exhausted.
  std::optional<AnswerTuple> Next();

 private:
  friend class PreparedQuery;
  explicit AnswerCursor(const PreparedQuery* query) : query_(query) {}

  const PreparedQuery* query_;
  std::size_t disjunct_ = 0;  // next disjunct to evaluate
  std::vector<AnswerTuple> buffer_;
  std::size_t buffer_pos_ = 0;
  std::unordered_set<AnswerTuple, AnswerTupleHash> seen_;
};

/// A query planned once — strategy resolved, rewriting (if any) computed,
/// per-disjunct homomorphism searches built — and executable many times.
/// Execution always reflects the Reasoner's current state: answers grow as
/// AddFacts() inserts data. Movable but not copyable; must not outlive the
/// Reasoner that prepared it.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;
  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// The strategy this query executes with (kMaterialize or kRewrite —
  /// kAuto has been resolved at Prepare time).
  AnswerStrategy strategy() const { return strategy_; }

  /// True when the answers are guaranteed complete *right now*: the
  /// rewriting saturated (kRewrite — a property of the plan), or the
  /// maintained chase is currently saturated (kMaterialize — re-checked
  /// live, because a later AddFacts() can drive the incremental chase
  /// into its bounds after this query was prepared). When false, every
  /// returned answer is still sound (certain), but some certain answers
  /// may be missing.
  bool complete() const;

  /// The UCQ actually evaluated: the rewriting under kRewrite, the input
  /// query under kMaterialize.
  const Ucq& evaluated() const { return evaluated_; }

  /// Arity of the answer tuples (0 = Boolean).
  std::size_t answer_arity() const { return answer_arity_; }

  /// True iff the query has at least one (certain) answer. Short-circuits.
  bool Ask() const;

  /// Number of distinct answers.
  std::size_t Count() const;

  /// All distinct answers, in the deterministic first-derivation order.
  std::vector<AnswerTuple> All() const;

  /// Opens a streaming cursor over the same enumeration.
  AnswerCursor Open() const { return AnswerCursor(this); }

  // --- Snapshot-pinned execution -------------------------------------------
  //
  // Evaluates this plan against an arbitrary `target` instance instead of
  // the session's live state: the caller picks the data the query runs
  // over (an immutable epoch snapshot in the server, src/serve/). The
  // caller must supply the kind of instance the plan's strategy expects —
  // a materialization for kMaterialize, base facts for kRewrite. Results
  // and enumeration order are exactly those of All()/Count()/Ask() run
  // against the same data. Thread-safe: the plan is immutable after
  // Prepare, and each call builds its own homomorphism searches, so many
  // threads can execute one plan against (the same or different) snapshots
  // concurrently. Pass a pool for intra-query parallelism only when no
  // other thread is driving that pool.

  std::vector<AnswerTuple> AllOn(const Instance& target,
                                 ThreadPool* pool = nullptr) const;
  std::size_t CountOn(const Instance& target, ThreadPool* pool = nullptr) const;
  bool AskOn(const Instance& target, ThreadPool* pool = nullptr) const;

 private:
  friend class AnswerCursor;
  friend class Reasoner;
  PreparedQuery() = default;

  // Projected, null-filtered (not yet deduplicated) answers of disjunct
  // `index`, in homomorphism enumeration order.
  std::vector<AnswerTuple> EvaluateDisjunct(std::size_t index) const;

  AnswerStrategy strategy_ = AnswerStrategy::kMaterialize;
  const Reasoner* reasoner_ = nullptr;  // the preparing session
  bool rewrite_saturated_ = false;      // kRewrite: rew(q,R) saturated
  Ucq evaluated_;
  std::size_t answer_arity_ = 0;
  ThreadPool* pool_ = nullptr;  // owned by the Reasoner; null = serial
  std::vector<HomSearch> searches_;  // one per disjunct, into the target
};

/// The session facade: one rule set, one growing base instance, one
/// (lazily built, incrementally maintained) materialization, one rewriter,
/// one thread pool. Not copyable or movable: PreparedQuery handles point
/// into the session.
class Reasoner {
 public:
  /// Starts a session over a copy of `database` (later AddFacts() calls
  /// grow the session's copy, not the caller's instance). The rule set is
  /// fixed for the session's lifetime.
  Reasoner(const Instance& database, RuleSet rules,
           ReasonerOptions options = {});

  Reasoner(const Reasoner&) = delete;
  Reasoner& operator=(const Reasoner&) = delete;
  ~Reasoner();

  Universe* universe() const { return database_.universe(); }
  const RuleSet& rules() const { return rules_; }
  /// The session's base instance (database atoms only, no chase output).
  const Instance& database() const { return database_; }
  const ReasonerOptions& options() const { return options_; }
  /// Resolved execution thread count (1 = serial).
  std::size_t num_threads() const { return num_threads_; }

  /// Plans a query under the session strategy. See PreparedQuery.
  PreparedQuery Prepare(const Cq& q);
  PreparedQuery Prepare(const Ucq& q);

  /// Plans `q` for snapshot-pinned execution only: materialize semantics,
  /// no rewriting probe, no materialization forced, no searches bound to
  /// live state — the plan evaluates exclusively via AllOn/CountOn/AskOn
  /// against instances the caller supplies (epoch snapshots). Unlike
  /// Prepare(), safe to call while another thread runs AddFacts(): it
  /// reads only the session's immutable rule set and bumps counters the
  /// writer path never touches. Concurrent PrepareDetached calls must be
  /// serialized by the caller (the server's plan lock). The live
  /// All/Count/Ask/Open entry points see an empty plan; completeness of a
  /// snapshot-pinned answer is the snapshot's saturation flag, not
  /// complete().
  PreparedQuery PrepareDetached(const Cq& q);
  PreparedQuery PrepareDetached(const Ucq& q);

  /// One-shot conveniences: Prepare + All / Ask.
  std::vector<AnswerTuple> Answer(const Cq& q);
  std::vector<AnswerTuple> Answer(const Ucq& q);
  bool Ask(const Cq& q);

  /// Inserts base facts (atoms over constants, interned in universe()).
  /// Returns the number of atoms new to the base instance. If the
  /// materialization exists it is maintained incrementally: the facts are
  /// appended as a delta and the chase resumes from the existing result
  /// (with a fresh step budget of options().chase.max_steps), firing only
  /// triggers the new atoms enable — never re-chasing from scratch.
  /// Prepared queries are not invalidated; they see the new state.
  std::size_t AddFacts(const std::vector<Atom>& facts);

  /// Forces the materialization (idempotent) and returns it. Most callers
  /// never need this: kMaterialize/kAuto queries materialize on demand.
  const Instance& Materialize();

  /// The chase engine backing kMaterialize, or nullptr while nothing has
  /// been materialized yet. Exposed for introspection (per-step provenance,
  /// Explain, CanonicalAtoms) — treat as read-only.
  const ObliviousChase* materialization() const { return chase_.get(); }

  const ReasonerStats& stats() const { return stats_; }

  /// The rule set's structural termination certificate (weak/joint
  /// acyclicity; src/analysis/reliance.h), computed lazily on first use
  /// and cached. A non-kNone certificate guarantees the semi-oblivious
  /// and restricted chase variants terminate on every instance; kAuto
  /// consults it before spending probe-rewriting budget.
  TerminationCertificate certificate();

  /// The full decidable-class analysis of the rule set
  /// (src/analysis/program_analysis.h), computed lazily on first use and
  /// cached; kAuto Prepare() consults it before anything else. Computing
  /// it also fills the certificate cache and the stats() class summary.
  const ProgramReport& analysis();

 private:
  void EnsureMaterialized();
  // Runs the chase one step at a time up to `target_steps` total executed
  // steps, recording per-step stats.
  void DriveChase(std::size_t target_steps, bool incremental);

  // The session's metrics sink (resolved from chase.exec.metrics; never
  // null). ReasonerStats counters are mirrored into it as they increment,
  // so stats(), chase_cli --json's metrics object and traces agree.
  obs::MetricsRegistry* metrics_ = nullptr;

  ReasonerOptions options_;
  Instance database_;
  RuleSet rules_;
  UcqRewriter rewriter_;        // full budget (kRewrite)
  UcqRewriter probe_rewriter_;  // tight budget (the kAuto probe)
  std::size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  std::unique_ptr<ObliviousChase> chase_;
  std::optional<TerminationCertificate> certificate_;  // lazy cache
  std::optional<ProgramReport> analysis_;              // lazy cache
  ReasonerStats stats_;
};

}  // namespace bddfc

#endif  // BDDFC_API_REASONER_H_
