// The bounded-derivation-depth property, probed chase-side
// (Definition 3), and the empirical face of Proposition 4
// (bdd ⟺ UCQ-rewritable).
//
// bdd(q, R) is the minimal k such that for all instances I,
// ⟨I,R⟩ ⊨ q iff Ch_k(I,R) ⊨ q. The exact constant quantifies over all
// instances; the probe measures, per test instance, the first chase step
// at which q becomes entailed (∞ if never within bounds) and reports the
// maximum — a lower bound for bdd(q,R) that is exact on families rich
// enough to exercise the deepest derivations. Proposition 4 predicts the
// probe stays bounded exactly when the rewriting saturates; the EXP-1
// bench and the tests cross-check the two.

#ifndef BDDFC_API_BDD_PROBE_H_
#define BDDFC_API_BDD_PROBE_H_

#include <vector>

#include "chase/chase.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "rewriting/rewriter.h"

namespace bddfc {

/// Per-instance measurement of Definition 3.
struct BddProbeEntry {
  /// First chase step at which the query is entailed; -1 when not
  /// entailed within the bounds.
  int first_entailed_step = -1;
  /// The chase saturated, so -1 means "never" definitively.
  bool chase_saturated = false;
};

/// Aggregate report.
struct BddProbeReport {
  std::vector<BddProbeEntry> entries;
  /// max over instances of first_entailed_step (the measured lower bound
  /// for the bdd-constant).
  int measured_constant = 0;
  /// Some instance entailed the query only deeper than the chase bound
  /// (or the chase was truncated while not yet entailing): the probe is
  /// then inconclusive about boundedness.
  bool inconclusive = false;
};

/// Runs the Definition 3 probe for `q` against `rules` over the supplied
/// instance family.
BddProbeReport ProbeBddConstant(const Cq& q, const RuleSet& rules,
                                const std::vector<Instance>& instances,
                                ChaseOptions options = {});

/// The Proposition 4 cross-check, empirically: rewriting saturation depth
/// vs measured chase constant for one query/family. Saturation with
/// depth d predicts measured_constant ≤ d on every instance.
struct Proposition4Report {
  bool rewriting_saturated = false;
  std::size_t rewriting_depth = 0;
  BddProbeReport probe;
  /// measured ≤ rewriting depth, whenever both sides are conclusive.
  bool consistent = true;
};

Proposition4Report CheckProposition4(const Cq& q, const RuleSet& rules,
                                     const std::vector<Instance>& instances,
                                     Universe* universe,
                                     RewriterOptions rewriter_options = {},
                                     ChaseOptions chase_options = {});

}  // namespace bddfc

#endif  // BDDFC_API_BDD_PROBE_H_
