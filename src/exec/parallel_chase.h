// Parallel chase execution engine.
//
// PR 2 made trigger enumeration delta-driven: each chase step searches for
// rule-body homomorphisms anchored in the contiguous atom range the
// previous step appended, against an instance that is read-only until the
// step's firing phase. That shape decomposes into independent
// (rule × delta-anchor × delta-chunk) homomorphism searches, which this
// engine fans out over a work-stealing ThreadPool. Workers collect trigger
// candidates into private batches; the batches are concatenated and merged
// into the canonical (rule, body-image) firing order — the same order the
// serial engine sorts into — so the parallel chase is bit-identical to the
// serial one (atoms, trigger sequence, provenance, fresh-null numbering)
// at any thread count. Firing itself stays serial: it is the only phase
// that mutates the instance and the universe, and it is a small fraction
// of a step's work on the wide steps where parallelism pays off.
//
// The restricted variant's satisfaction check is also parallelized, via a
// monotonicity argument: instances only grow, so a trigger whose head is
// satisfied *before* the step fires anything is satisfied at its serial
// check time too. The engine prechecks all candidates concurrently against
// the step-start instance; the serial firing phase trusts a positive
// precheck, and re-checks a negative one only if earlier triggers of the
// same step have already added atoms (exactly the case where the serial
// engine's answer could differ).

#ifndef BDDFC_EXEC_PARALLEL_CHASE_H_
#define BDDFC_EXEC_PARALLEL_CHASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/thread_pool.h"
#include "homomorphism/homomorphism.h"
#include "logic/substitution.h"
#include "logic/term.h"

namespace bddfc {
namespace exec {

/// One enumerated trigger candidate: a rule and the images of the rule's
/// body_vars() in rule-variable order. The body image doubles as the
/// canonical merge key and as the material to rebuild the trigger
/// homomorphism.
struct TriggerCandidate {
  std::size_t rule_index = 0;
  std::vector<Term> body_image;
};

/// One rule's enumeration assignment for a chase round, as planned by a
/// RuleScheduler (src/chase/rule_scheduler.h). The flat schedule gives
/// every rule the chase's global delta window; the stratified schedule
/// hands each rule its own window (rules of not-yet-active or saturated
/// strata simply get no job).
struct RuleJob {
  std::size_t rule_index = 0;
  /// Full enumeration over [0, delta_end) — the first-step / naive-mode
  /// search — instead of a delta-anchored one.
  bool full = false;
  /// Delta window start (ignored when `full`).
  std::uint32_t delta_begin = 0;
};

/// The canonical (rule, body-image) firing order shared by the serial and
/// parallel engines.
inline bool CanonicalTriggerLess(const TriggerCandidate& a,
                                 const TriggerCandidate& b) {
  if (a.rule_index != b.rule_index) return a.rule_index < b.rule_index;
  return a.body_image < b.body_image;
}

/// Sorts candidates into the canonical firing order. Candidates comparing
/// equal are structurally identical, so the result is deterministic
/// regardless of input (i.e. enumeration/merge) order.
void SortCanonical(std::vector<TriggerCandidate>* candidates);

/// Per-step parallel executor owned by a chase engine. All methods are
/// called from the chase's driving thread; they block until the fanned-out
/// work completes, so the caller may read the outputs without further
/// synchronization.
class ParallelChase {
 public:
  /// Collector invoked (concurrently, from pool workers) for every
  /// enumerated body homomorphism of rule `rule_index`; it decides whether
  /// to keep the trigger (e.g. by consulting the already-fired set, which
  /// is frozen during enumeration) and appends kept candidates to `batch`.
  /// Must be thread-safe: shared state it reads must not be mutated while
  /// a collection call is in flight.
  using CollectFn = std::function<void(
      std::size_t rule_index, const Substitution& h,
      std::vector<TriggerCandidate>* batch)>;

  /// Creates the executor with `num_threads` total execution threads: one
  /// is the caller (which participates while waiting), the rest are pool
  /// workers owned by this executor. `num_threads` 0 resolves to the
  /// hardware thread count.
  explicit ParallelChase(std::size_t num_threads);

  /// Creates the executor borrowing `pool` (not owned; must outlive the
  /// executor). Lets a session share one pool between chase execution and
  /// its other pool-parallel work instead of spinning up a second set of
  /// workers.
  explicit ParallelChase(ThreadPool* pool);

  /// Total execution threads (workers + the participating caller).
  std::size_t num_threads() const { return pool_->num_workers() + 1; }

  /// The underlying pool, shared with HomSearch's pool-parallel queries.
  ThreadPool* pool() { return pool_; }

  /// Parallel counterpart of the serial delta enumeration: appends to
  /// `out` the same candidate multiset that running ForEachDelta(seed={},
  /// [delta_begin, delta_end)) over every search in `searches` produces.
  /// Work units are (rule, anchor, delta-chunk) triples; a step narrow
  /// enough to yield a single unit runs inline on the caller.
  void CollectDelta(std::vector<HomSearch>* searches,
                    std::uint32_t delta_begin, std::uint32_t delta_end,
                    const CollectFn& collect,
                    std::vector<TriggerCandidate>* out);

  /// Parallel counterpart of the full (first-step / naive) enumeration:
  /// appends the candidate multiset of ForEach(seed={}) over every search.
  /// Work units are (rule, first-atom-chunk) pairs over the target prefix
  /// [0, target_size).
  void CollectFull(std::vector<HomSearch>* searches,
                   std::uint32_t target_size, const CollectFn& collect,
                   std::vector<TriggerCandidate>* out);

  /// Job-based enumeration: appends the candidate multiset of running
  /// each job's search — ForEach-equivalent over [0, delta_end) for a
  /// `full` job, ForEachDelta-equivalent over [job.delta_begin, delta_end)
  /// otherwise. With one job per rule and a common window this reproduces
  /// CollectDelta / CollectFull exactly; the scheduler's per-rule windows
  /// are the general case. Work units are (job, anchor, chunk) triples.
  void CollectJobs(std::vector<HomSearch>* searches,
                   const std::vector<RuleJob>& jobs, std::uint32_t delta_end,
                   const CollectFn& collect,
                   std::vector<TriggerCandidate>* out);

  /// Parallel map over candidates: (*out)[i] = check(candidates[i]).
  /// `check` runs concurrently and must be thread-safe and read-only with
  /// respect to shared state.
  void ParallelCheck(const std::vector<TriggerCandidate>& candidates,
                     const std::function<bool(const TriggerCandidate&)>& check,
                     std::vector<char>* out);

 private:
  std::unique_ptr<ThreadPool> owned_pool_;  // null when borrowing
  ThreadPool* pool_;  // owned_pool_.get(), or the borrowed pool
};

}  // namespace exec
}  // namespace bddfc

#endif  // BDDFC_EXEC_PARALLEL_CHASE_H_
