#include "exec/execution_config.h"

namespace bddfc {

const char* ToString(ChaseEngine engine) {
  switch (engine) {
    case ChaseEngine::kTrigger:
      return "trigger";
    case ChaseEngine::kSegment:
      return "segment";
  }
  return "?";
}

const char* ToString(ChaseSchedule schedule) {
  switch (schedule) {
    case ChaseSchedule::kFlat:
      return "flat";
    case ChaseSchedule::kStratified:
      return "stratified";
  }
  return "?";
}

}  // namespace bddfc
