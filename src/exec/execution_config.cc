#include "exec/execution_config.h"

namespace bddfc {

const char* ToString(ChaseEngine engine) {
  switch (engine) {
    case ChaseEngine::kTrigger:
      return "trigger";
    case ChaseEngine::kSegment:
      return "segment";
  }
  return "?";
}

}  // namespace bddfc
