#include "exec/parallel_chase.h"

#include <algorithm>

#include "obs/obs.h"

namespace bddfc {
namespace exec {

namespace {

// Minimum delta atoms per (rule, anchor) chunk; below this the scheduling
// overhead outweighs the search work.
constexpr std::uint32_t kDeltaGrain = 128;

// One unit of enumeration work.
struct Unit {
  std::size_t rule = 0;
  std::size_t anchor = 0;  // unused by full-enumeration units
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool full = false;             // CollectJobs: full-enumeration unit
  std::uint32_t delta_begin = 0;  // CollectJobs: the job's delta window
};

// Chunk width that splits [0, range) into at most 2*threads pieces of at
// least kDeltaGrain atoms each.
std::uint32_t ChunkSize(std::uint32_t range, std::size_t threads) {
  if (range == 0) return 1;  // never 0: chunk loops advance by ChunkSize
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(2 * threads,
                               (range + kDeltaGrain - 1) / kDeltaGrain));
  return (range + static_cast<std::uint32_t>(chunks) - 1) /
         static_cast<std::uint32_t>(chunks);
}

// Shared fan-out scaffolding: runs `run_unit(unit, batch)` for every unit,
// each into a private batch, and appends the batches to `out` in unit
// order (the caller's canonical sort erases even this order; keeping it
// deterministic is belt and braces). A single unit skips the pool — that
// is the narrow-step fast path that keeps e.g. one-trigger linear-chain
// steps at serial cost.
void RunUnits(ThreadPool* pool, const std::vector<Unit>& units,
              const std::function<void(const Unit&,
                                       std::vector<TriggerCandidate>*)>&
                  run_unit,
              std::vector<TriggerCandidate>* out) {
  if (units.size() <= 1) {
    for (const Unit& unit : units) {
      BDDFC_OBS_SPAN(search_span, "chase", "chase.hom_search");
      search_span.Arg("rule", unit.rule);
      run_unit(unit, out);
    }
    return;
  }
  std::vector<std::vector<TriggerCandidate>> batches(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    // One span per worker-side unit: recorded on the worker's own buffer,
    // so the fan-out shows up as parallel tracks in the trace viewer.
    pool->Submit([&, i] {
      BDDFC_OBS_SPAN(search_span, "chase", "chase.hom_search");
      search_span.Arg("rule", units[i].rule).Arg("anchor", units[i].anchor);
      run_unit(units[i], &batches[i]);
    });
  }
  pool->WaitAll();
  for (std::vector<TriggerCandidate>& batch : batches) {
    for (TriggerCandidate& c : batch) out->push_back(std::move(c));
  }
}

}  // namespace

void SortCanonical(std::vector<TriggerCandidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(), CanonicalTriggerLess);
}

ParallelChase::ParallelChase(std::size_t num_threads)
    : owned_pool_(std::make_unique<ThreadPool>(
          ThreadPool::ResolveThreadCount(num_threads) - 1)),
      pool_(owned_pool_.get()) {}

ParallelChase::ParallelChase(ThreadPool* pool) : pool_(pool) {}

void ParallelChase::CollectDelta(std::vector<HomSearch>* searches,
                                 std::uint32_t delta_begin,
                                 std::uint32_t delta_end,
                                 const CollectFn& collect,
                                 std::vector<TriggerCandidate>* out) {
  if (delta_begin >= delta_end) return;
  // Chunk the anchor's delta range: a qualifying homomorphism has exactly
  // one anchor atom and one anchor image index, so (rule, anchor, chunk)
  // units partition the enumeration.
  const std::uint32_t chunk_size =
      ChunkSize(delta_end - delta_begin, num_threads());
  std::vector<Unit> units;
  for (std::size_t r = 0; r < searches->size(); ++r) {
    HomSearch& search = (*searches)[r];
    search.PrepareDelta();  // build anchor orders before going concurrent
    for (std::size_t anchor = 0; anchor < search.source_size(); ++anchor) {
      for (std::uint32_t lo = delta_begin; lo < delta_end; lo += chunk_size) {
        units.push_back(
            {r, anchor, lo, std::min(delta_end, lo + chunk_size)});
      }
    }
  }
  RunUnits(
      pool_, units,
      [&](const Unit& unit, std::vector<TriggerCandidate>* batch) {
        (*searches)[unit.rule].ForEachDeltaAnchor(
            unit.anchor, delta_begin, delta_end, unit.lo, unit.hi, {},
            [&](const Substitution& h) {
              collect(unit.rule, h, batch);
              return true;
            });
      },
      out);
}

void ParallelChase::CollectFull(std::vector<HomSearch>* searches,
                                std::uint32_t target_size,
                                const CollectFn& collect,
                                std::vector<TriggerCandidate>* out) {
  const std::uint32_t chunk_size = ChunkSize(target_size, num_threads());
  std::vector<Unit> units;
  for (std::size_t r = 0; r < searches->size(); ++r) {
    if ((*searches)[r].source_size() == 0) continue;
    for (std::uint32_t lo = 0; lo < target_size; lo += chunk_size) {
      units.push_back({r, 0, lo, std::min(target_size, lo + chunk_size)});
    }
  }
  RunUnits(
      pool_, units,
      [&](const Unit& unit, std::vector<TriggerCandidate>* batch) {
        (*searches)[unit.rule].ForEachFirstIn(
            unit.lo, unit.hi, {}, [&](const Substitution& h) {
              collect(unit.rule, h, batch);
              return true;
            });
      },
      out);
}

void ParallelChase::CollectJobs(std::vector<HomSearch>* searches,
                                const std::vector<RuleJob>& jobs,
                                std::uint32_t delta_end,
                                const CollectFn& collect,
                                std::vector<TriggerCandidate>* out) {
  std::vector<Unit> units;
  for (const RuleJob& job : jobs) {
    HomSearch& search = (*searches)[job.rule_index];
    if (job.full) {
      if (search.source_size() == 0) continue;
      const std::uint32_t chunk_size = ChunkSize(delta_end, num_threads());
      for (std::uint32_t lo = 0; lo < delta_end; lo += chunk_size) {
        units.push_back({job.rule_index, 0, lo,
                         std::min(delta_end, lo + chunk_size), true, 0});
      }
      continue;
    }
    if (job.delta_begin >= delta_end) continue;
    search.PrepareDelta();  // build anchor orders before going concurrent
    const std::uint32_t chunk_size =
        ChunkSize(delta_end - job.delta_begin, num_threads());
    for (std::size_t anchor = 0; anchor < search.source_size(); ++anchor) {
      for (std::uint32_t lo = job.delta_begin; lo < delta_end;
           lo += chunk_size) {
        units.push_back({job.rule_index, anchor, lo,
                         std::min(delta_end, lo + chunk_size), false,
                         job.delta_begin});
      }
    }
  }
  RunUnits(
      pool_, units,
      [&](const Unit& unit, std::vector<TriggerCandidate>* batch) {
        const auto visit = [&](const Substitution& h) {
          collect(unit.rule, h, batch);
          return true;
        };
        if (unit.full) {
          (*searches)[unit.rule].ForEachFirstIn(unit.lo, unit.hi, {}, visit);
        } else {
          (*searches)[unit.rule].ForEachDeltaAnchor(unit.anchor,
                                                    unit.delta_begin,
                                                    delta_end, unit.lo,
                                                    unit.hi, {}, visit);
        }
      },
      out);
}

void ParallelChase::ParallelCheck(
    const std::vector<TriggerCandidate>& candidates,
    const std::function<bool(const TriggerCandidate&)>& check,
    std::vector<char>* out) {
  BDDFC_OBS_SPAN(check_span, "chase", "chase.precheck");
  check_span.Arg("candidates", candidates.size());
  out->assign(candidates.size(), 0);
  ParallelFor(pool_, 0, candidates.size(), /*grain=*/8,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  (*out)[i] = check(candidates[i]) ? 1 : 0;
                }
              });
}

}  // namespace exec
}  // namespace bddfc
