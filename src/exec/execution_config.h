// The unified execution configuration shared by every chase entry point.
//
// Before this header existed, the knobs steering *how* a chase executes —
// thread count, shared pool, storage backend, step/atom bounds — were
// duplicated across ChaseOptions, ReasonerOptions and ad-hoc chase_cli
// flags, each with its own override rules. ExecutionConfig collapses them
// into one struct, threaded verbatim through ObliviousChase, the Reasoner
// facade and chase_cli. The old fields survive one release as deprecated
// aliases (see ChaseOptions::ResolvedExec / the Reasoner's resolution) so
// existing code compiles unchanged.
//
// The `engine` knob selects between the two chase execution engines:
//
//   * kTrigger — the canonical engine: per-trigger homomorphism search
//     (semi-naive, optionally fanned out over a thread pool). This is the
//     spec every other engine is differentially tested against.
//   * kSegment — the set-at-a-time engine (src/chase/segment_engine.h):
//     each rule body is compiled once into per-anchor merge-join plans over
//     the FactStore's sorted runs, and each chase step executes every plan
//     once against the previous step's delta segment, producing the whole
//     candidate segment in bulk. Reaches the identical result (bit for
//     bit, not just atom-set equality) because both engines feed the same
//     canonical (rule, body-image) firing phase.
//
// Every combination of engine × storage × threads produces the same chase
// (atoms, trigger order, provenance, fresh-null numbering); the knobs only
// move the wall clock and the memory profile.

#ifndef BDDFC_EXEC_EXECUTION_CONFIG_H_
#define BDDFC_EXEC_EXECUTION_CONFIG_H_

#include <cstddef>
#include <optional>

#include "storage/fact_store.h"

namespace bddfc {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Which chase execution engine to run. See the file comment.
enum class ChaseEngine {
  kTrigger,
  kSegment,
};

/// Human-readable engine name ("trigger" / "segment").
const char* ToString(ChaseEngine engine);

/// How a chase schedules its rules across steps.
///
///   * kFlat — every step considers every rule (the historical behavior,
///     bit-identical to chases run before the knob existed).
///   * kStratified — rules are grouped into strata by the SCC condensation
///     of their positive-reliance graph (src/analysis/reliance.h) and
///     processed in topological order: a stratum is saturated before its
///     dependents ever enumerate, rules whose body predicates gained no
///     atoms since their last enumeration are skipped, and triggers fire
///     in restraint-aware order. Produces the same result up to null
///     renaming (CanonicalAtoms() compares equal; the restricted variant
///     is hom-equivalent), but the step boundaries — and hence the null
///     numbering and per-step provenance — may differ from kFlat.
enum class ChaseSchedule {
  kFlat,
  kStratified,
};

/// Human-readable schedule name ("flat" / "stratified").
const char* ToString(ChaseSchedule schedule);

/// The execution knobs of a chase (or a Reasoner session): everything that
/// steers *how* the work runs, as opposed to *what* is computed (rules,
/// variant, enumeration discipline — those stay on ChaseOptions).
struct ExecutionConfig {
  /// Execution engine. Both engines produce bit-identical chases.
  ChaseEngine engine = ChaseEngine::kTrigger;
  /// Rule scheduling discipline. kFlat is bit-identical to the historical
  /// behavior; kStratified reorders work along the reliance strata (same
  /// result up to null renaming).
  ChaseSchedule schedule = ChaseSchedule::kFlat;
  /// Storage backend for the working instance. Defaults to the backend of
  /// the database the chase (or session) starts from.
  std::optional<StorageKind> storage = std::nullopt;
  /// Execution threads: 1 = serial, 0 = all hardware threads. Ignored when
  /// `pool` is set.
  std::size_t num_threads = 1;
  /// Optional shared thread pool (not owned; must outlive the run). When
  /// set it overrides `num_threads`: the run uses pool->num_workers() + 1
  /// execution threads.
  ThreadPool* pool = nullptr;
  /// Chase step budget.
  std::size_t max_steps = 16;
  /// Chase atom budget.
  std::size_t max_atoms = 200000;
  /// Metrics sink (not owned; must outlive the run). Null routes to the
  /// process-global registry (obs::Metrics()). Instrument updates are
  /// relaxed atomics, so a monitor thread may sample the registry while
  /// the run is live.
  obs::MetricsRegistry* metrics = nullptr;
};

}  // namespace bddfc

#endif  // BDDFC_EXEC_EXECUTION_CONFIG_H_
