// Homomorphism search between atom sets and instances (Section 2.1).
//
// Semantics: a homomorphism maps every *rigid* term (constant) to itself and
// may map *flexible* terms (variables and labeled nulls) to arbitrary terms
// of the target. This uniform treatment covers all the uses in the paper:
//   * CQ entailment I |= q(t̄)            (source = query atoms)
//   * injective entailment I |=inj q(t̄)  (Definition 2 rephrased / Prop. 6)
//   * homomorphic equivalence of chases  (source = instance atoms; nulls
//     flexible, database constants fixed)
//   * query containment for rewriting minimization (target query's variables
//     act as frozen values simply because targets impose no constraints).

#ifndef BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_
#define BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/thread_pool.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/substitution.h"

namespace bddfc {

/// Options for homomorphism search.
struct HomOptions {
  /// Require the mapping to be injective on all source terms (the paper's
  /// |=inj). Rigid terms participate: two distinct constants never collide,
  /// but a flexible term may not map onto a value already used.
  bool injective = false;
};

/// Backtracking homomorphism solver from a set of atoms into an instance.
/// Construct once per (source, target) pair; queries share the computed
/// atom ordering.
class HomSearch {
 public:
  HomSearch(std::vector<Atom> source, const Instance* target,
            HomOptions options = {});

  /// Finds one homomorphism extending `seed`, or nullopt.
  std::optional<Substitution> FindOne(const Substitution& seed = {}) const;

  /// True iff some homomorphism extending `seed` exists.
  bool Exists(const Substitution& seed = {}) const;

  /// Enumerates homomorphisms extending `seed`; stops early when `visit`
  /// returns false. Returns the number of homomorphisms visited.
  std::size_t ForEach(const Substitution& seed,
                      const std::function<bool(const Substitution&)>& visit)
      const;

  /// Delta-anchored enumeration (semi-naive evaluation): visits exactly the
  /// homomorphisms extending `seed` whose image uses at least one target
  /// atom with index in [delta_begin, delta_end) and no atom with index
  /// >= delta_end. Equivalent to ForEach over the delta_end-prefix filtered
  /// a posteriori, but each source atom is iterated as the "delta anchor"
  /// (anchor in the delta, earlier atoms strictly below it, later atoms
  /// unconstrained), so every qualifying homomorphism is visited exactly
  /// once and the search only scans index ranges that can qualify.
  std::size_t ForEachDelta(
      const Substitution& seed, std::uint32_t delta_begin,
      std::uint32_t delta_end,
      const std::function<bool(const Substitution&)>& visit) const;

  /// One anchor run of ForEachDelta, exposed so the parallel executor can
  /// schedule (anchor × delta-chunk) units independently: visits exactly
  /// the homomorphisms extending `seed` whose anchor (the first source
  /// atom, in ordered_source() order, with image in the delta) is
  /// ordered_source()[anchor] and whose anchor image index lies in
  /// [anchor_begin, anchor_end) ⊆ [delta_begin, delta_end). Summing over
  /// all anchors with [anchor_begin, anchor_end) = [delta_begin, delta_end)
  /// — or over any partition of that range — reproduces ForEachDelta
  /// exactly. Call PrepareDelta() first when invoking from several threads.
  std::size_t ForEachDeltaAnchor(
      std::size_t anchor, std::uint32_t delta_begin, std::uint32_t delta_end,
      std::uint32_t anchor_begin, std::uint32_t anchor_end,
      const Substitution& seed,
      const std::function<bool(const Substitution&)>& visit) const;

  /// Like ForEach, but the image of ordered_source()[0] is restricted to
  /// target atom indices in [first_begin, first_end); later atoms are
  /// unconstrained. Partitioning [0, target size) across such calls
  /// partitions the full enumeration, each chunk visiting its
  /// homomorphisms in the same relative order ForEach would. The source
  /// must be non-empty.
  std::size_t ForEachFirstIn(
      std::uint32_t first_begin, std::uint32_t first_end,
      const Substitution& seed,
      const std::function<bool(const Substitution&)>& visit) const;

  /// Precomputes the per-anchor orderings so concurrent ForEachDeltaAnchor
  /// calls are read-only. Idempotent; must run before sharing this search
  /// across threads.
  void PrepareDelta() const { EnsureAnchorOrders(); }

  /// Number of source atoms — the delta-anchor index space.
  std::size_t source_size() const { return source_.size(); }

  /// Collects up to `limit` homomorphisms extending `seed`.
  std::vector<Substitution> FindAll(const Substitution& seed = {},
                                    std::size_t limit = SIZE_MAX) const;

  // --- Pool-parallel queries ------------------------------------------------
  // All three partition the image candidates of the first source atom into
  // index chunks fanned out over `pool`; results are bit-identical to the
  // serial counterparts (FindAllParallel preserves enumeration order by
  // concatenating chunks in index order). A null/empty pool falls back to
  // the serial path.

  /// Parallel FindAll. `limit` is applied after the merge, so the result
  /// equals FindAll(seed, limit); the parallel win is realized for
  /// unlimited enumeration.
  std::vector<Substitution> FindAllParallel(
      ThreadPool* pool, const Substitution& seed = {},
      std::size_t limit = SIZE_MAX) const;

  /// Parallel existence check; sibling chunks are cancelled as soon as one
  /// finds a witness.
  bool ExistsParallel(ThreadPool* pool, const Substitution& seed = {}) const;

  /// Parallel count of all homomorphisms extending `seed`.
  std::size_t CountParallel(ThreadPool* pool,
                            const Substitution& seed = {}) const;

  /// The source atoms in the (fully deterministic) search order. Exposed for
  /// tests of the ordering heuristic.
  const std::vector<Atom>& ordered_source() const { return source_; }

 private:
  void EnsureAnchorOrders() const;

  std::vector<Atom> source_;
  const Instance* target_;
  HomOptions options_;
  // anchor_orders_[i]: positions of source_ reordered for the search run
  // whose delta anchor is source_[i] (anchor first, rest by connectivity);
  // anchor_atoms_[i] is source_ permuted accordingly. Built lazily on the
  // first ForEachDelta call; both depend only on source_.
  mutable std::vector<std::vector<std::size_t>> anchor_orders_;
  mutable std::vector<std::vector<Atom>> anchor_atoms_;
};

// --- Convenience entry points ----------------------------------------------

/// I |= q(t̄): entailment of a CQ with answers bound to `binding`
/// (pointwise, same length as q.answers()). Empty binding = Boolean check
/// with answers unconstrained.
bool Entails(const Instance& instance, const Cq& q,
             const std::vector<Term>& binding = {});

/// I |=inj q(t̄): injective entailment.
bool EntailsInjectively(const Instance& instance, const Cq& q,
                        const std::vector<Term>& binding = {});

/// I |= Q(t̄) for a UCQ: some disjunct entailed.
bool Entails(const Instance& instance, const Ucq& q,
             const std::vector<Term>& binding = {});

/// I |=inj Q(t̄): some disjunct injectively entailed.
bool EntailsInjectively(const Instance& instance, const Ucq& q,
                        const std::vector<Term>& binding = {});

/// ∃ homomorphism from all atoms of `a` into `b` (constants fixed, nulls and
/// variables flexible).
bool MapsInto(const Instance& a, const Instance& b);

/// Homomorphic equivalence a ↔ b (Section 2.1).
bool HomEquivalent(const Instance& a, const Instance& b);

/// Query containment: true iff `general` maps homomorphically into
/// `specific` with answer variables mapped pointwise — i.e. every instance
/// satisfying `specific` satisfies `general`. Used for UCQ minimization.
bool Subsumes(const Cq& general, const Cq& specific);

/// Computes the core of `q`: a minimal retract fixing the answer variables.
/// The result is logically equivalent to `q` and unique up to isomorphism.
Cq Core(const Cq& q, Universe* universe);

}  // namespace bddfc

#endif  // BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_
