// Homomorphism search between atom sets and instances (Section 2.1).
//
// Semantics: a homomorphism maps every *rigid* term (constant) to itself and
// may map *flexible* terms (variables and labeled nulls) to arbitrary terms
// of the target. This uniform treatment covers all the uses in the paper:
//   * CQ entailment I |= q(t̄)            (source = query atoms)
//   * injective entailment I |=inj q(t̄)  (Definition 2 rephrased / Prop. 6)
//   * homomorphic equivalence of chases  (source = instance atoms; nulls
//     flexible, database constants fixed)
//   * query containment for rewriting minimization (target query's variables
//     act as frozen values simply because targets impose no constraints).

#ifndef BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_
#define BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/substitution.h"

namespace bddfc {

/// Options for homomorphism search.
struct HomOptions {
  /// Require the mapping to be injective on all source terms (the paper's
  /// |=inj). Rigid terms participate: two distinct constants never collide,
  /// but a flexible term may not map onto a value already used.
  bool injective = false;
};

/// Backtracking homomorphism solver from a set of atoms into an instance.
/// Construct once per (source, target) pair; queries share the computed
/// atom ordering.
class HomSearch {
 public:
  HomSearch(std::vector<Atom> source, const Instance* target,
            HomOptions options = {});

  /// Finds one homomorphism extending `seed`, or nullopt.
  std::optional<Substitution> FindOne(const Substitution& seed = {}) const;

  /// True iff some homomorphism extending `seed` exists.
  bool Exists(const Substitution& seed = {}) const;

  /// Enumerates homomorphisms extending `seed`; stops early when `visit`
  /// returns false. Returns the number of homomorphisms visited.
  std::size_t ForEach(const Substitution& seed,
                      const std::function<bool(const Substitution&)>& visit)
      const;

  /// Delta-anchored enumeration (semi-naive evaluation): visits exactly the
  /// homomorphisms extending `seed` whose image uses at least one target
  /// atom with index in [delta_begin, delta_end) and no atom with index
  /// >= delta_end. Equivalent to ForEach over the delta_end-prefix filtered
  /// a posteriori, but each source atom is iterated as the "delta anchor"
  /// (anchor in the delta, earlier atoms strictly below it, later atoms
  /// unconstrained), so every qualifying homomorphism is visited exactly
  /// once and the search only scans index ranges that can qualify.
  std::size_t ForEachDelta(
      const Substitution& seed, std::uint32_t delta_begin,
      std::uint32_t delta_end,
      const std::function<bool(const Substitution&)>& visit) const;

  /// Collects up to `limit` homomorphisms extending `seed`.
  std::vector<Substitution> FindAll(const Substitution& seed = {},
                                    std::size_t limit = SIZE_MAX) const;

  /// The source atoms in the (fully deterministic) search order. Exposed for
  /// tests of the ordering heuristic.
  const std::vector<Atom>& ordered_source() const { return source_; }

 private:
  void EnsureAnchorOrders() const;

  std::vector<Atom> source_;
  const Instance* target_;
  HomOptions options_;
  // anchor_orders_[i]: positions of source_ reordered for the search run
  // whose delta anchor is source_[i] (anchor first, rest by connectivity);
  // anchor_atoms_[i] is source_ permuted accordingly. Built lazily on the
  // first ForEachDelta call; both depend only on source_.
  mutable std::vector<std::vector<std::size_t>> anchor_orders_;
  mutable std::vector<std::vector<Atom>> anchor_atoms_;
};

// --- Convenience entry points ----------------------------------------------

/// I |= q(t̄): entailment of a CQ with answers bound to `binding`
/// (pointwise, same length as q.answers()). Empty binding = Boolean check
/// with answers unconstrained.
bool Entails(const Instance& instance, const Cq& q,
             const std::vector<Term>& binding = {});

/// I |=inj q(t̄): injective entailment.
bool EntailsInjectively(const Instance& instance, const Cq& q,
                        const std::vector<Term>& binding = {});

/// I |= Q(t̄) for a UCQ: some disjunct entailed.
bool Entails(const Instance& instance, const Ucq& q,
             const std::vector<Term>& binding = {});

/// I |=inj Q(t̄): some disjunct injectively entailed.
bool EntailsInjectively(const Instance& instance, const Ucq& q,
                        const std::vector<Term>& binding = {});

/// ∃ homomorphism from all atoms of `a` into `b` (constants fixed, nulls and
/// variables flexible).
bool MapsInto(const Instance& a, const Instance& b);

/// Homomorphic equivalence a ↔ b (Section 2.1).
bool HomEquivalent(const Instance& a, const Instance& b);

/// Query containment: true iff `general` maps homomorphically into
/// `specific` with answer variables mapped pointwise — i.e. every instance
/// satisfying `specific` satisfies `general`. Used for UCQ minimization.
bool Subsumes(const Cq& general, const Cq& specific);

/// Computes the core of `q`: a minimal retract fixing the answer variables.
/// The result is logically equivalent to `q` and unique up to isomorphism.
Cq Core(const Cq& q, Universe* universe);

}  // namespace bddfc

#endif  // BDDFC_HOMOMORPHISM_HOMOMORPHISM_H_
