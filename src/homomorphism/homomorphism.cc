#include "homomorphism/homomorphism.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"

namespace bddfc {

namespace {

// Greedy connectivity-based ordering: repeatedly pick the atom that shares
// the most terms with atoms already placed (ties: more rigid terms first,
// then fewer fresh variables, then lowest input position). Fully
// deterministic; keeps the backtracking search anchored. When `first` is
// non-negative, atoms[first] is placed up front (the delta-anchor runs of
// ForEachDelta seed the ordering with the anchor atom). Returns the
// positions of `atoms` in search order.
std::vector<std::size_t> GreedyOrderIndices(const std::vector<Atom>& atoms,
                                            int first) {
  std::vector<std::size_t> order;
  order.reserve(atoms.size());
  std::unordered_set<Term> seen;
  std::vector<bool> placed(atoms.size(), false);
  auto place = [&](std::size_t i) {
    placed[i] = true;
    for (Term t : atoms[i].args()) {
      if (!t.IsRigid()) seen.insert(t);
    }
    order.push_back(i);
  };
  if (first >= 0) place(static_cast<std::size_t>(first));
  while (order.size() < atoms.size()) {
    int best = -1;
    int best_shared = -1;
    int best_rigid = -1;
    int best_fresh = -1;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (placed[i]) continue;
      int shared = 0;
      int rigid = 0;
      int fresh = 0;
      const std::vector<Term>& args = atoms[i].args();
      for (std::size_t p = 0; p < args.size(); ++p) {
        Term t = args[p];
        if (t.IsRigid()) {
          ++rigid;
          continue;
        }
        if (seen.find(t) != seen.end()) {
          ++shared;
          continue;
        }
        // Fresh variables are counted once per distinct term.
        bool repeat = false;
        for (std::size_t q = 0; q < p; ++q) {
          if (args[q] == t) {
            repeat = true;
            break;
          }
        }
        if (!repeat) ++fresh;
      }
      if (shared > best_shared ||
          (shared == best_shared &&
           (rigid > best_rigid ||
            (rigid == best_rigid && fresh < best_fresh)))) {
        best = static_cast<int>(i);
        best_shared = shared;
        best_rigid = rigid;
        best_fresh = fresh;
      }
    }
    place(static_cast<std::size_t>(best));
  }
  return order;
}

std::vector<Atom> OrderForSearch(std::vector<Atom> atoms) {
  std::vector<std::size_t> order = GreedyOrderIndices(atoms, -1);
  std::vector<Atom> ordered;
  ordered.reserve(atoms.size());
  for (std::size_t i : order) ordered.push_back(std::move(atoms[i]));
  return ordered;
}

// Allowed target-atom index range [lo, hi) for one source atom.
using AtomRange = std::pair<std::uint32_t, std::uint32_t>;

// Mutable search state shared by the recursion.
struct SearchState {
  const std::vector<Atom>* source;
  const Instance* target;
  bool injective;
  // When non-null: per-depth image index ranges, parallel to *source
  // (semi-naive delta anchoring). Null means unconstrained.
  const std::vector<AtomRange>* ranges = nullptr;
  std::unordered_map<Term, Term> assignment;
  std::unordered_set<Term> used;  // images, for injectivity
  const std::function<bool(const Substitution&)>* visit;
  std::size_t visited = 0;
  bool stop = false;
};

// Resolves a source term under the current assignment; invalid if unbound.
Term Resolve(const SearchState& st, Term t) {
  if (t.IsRigid()) return t;
  auto it = st.assignment.find(t);
  return it == st.assignment.end() ? Term() : it->second;
}

void Search(SearchState* st, std::size_t depth);

// Attempts to match source atom `a` against target atom `b`, binding fresh
// variables; on success recurses, then undoes the bindings.
void TryMatch(SearchState* st, const Atom& a, const Atom& b,
              std::size_t depth) {
  std::vector<Term> bound_here;
  bool ok = true;
  for (std::size_t p = 0; p < a.arity(); ++p) {
    Term s = a.arg(p);
    Term v = b.arg(p);
    Term resolved = Resolve(*st, s);
    if (resolved.IsValid()) {
      if (resolved != v) {
        ok = false;
        break;
      }
      continue;
    }
    if (st->injective && st->used.find(v) != st->used.end()) {
      ok = false;
      break;
    }
    st->assignment.emplace(s, v);
    if (st->injective) st->used.insert(v);
    bound_here.push_back(s);
  }
  if (ok) Search(st, depth + 1);
  for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
    auto a_it = st->assignment.find(*it);
    if (st->injective) st->used.erase(a_it->second);
    st->assignment.erase(a_it);
  }
}

void Search(SearchState* st, std::size_t depth) {
  if (st->stop) return;
  if (depth == st->source->size()) {
    Substitution result;
    for (const auto& [from, to] : st->assignment) result.Bind(from, to);
    ++st->visited;
    if (!(*st->visit)(result)) st->stop = true;
    return;
  }
  const Atom& a = (*st->source)[depth];
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(st->target->size());
  if (st->ranges != nullptr) {
    lo = (*st->ranges)[depth].first;
    hi = std::min(hi, (*st->ranges)[depth].second);
  }
  if (a.IsNullary()) {
    std::size_t idx = st->target->IndexOf(a);
    if (idx != SIZE_MAX && idx >= lo && idx < hi) Search(st, depth + 1);
    return;
  }
  // Pick the most selective candidate list available, clamped to [lo, hi).
  IndexView candidates = st->target->AtomsWithIn(a.pred(), lo, hi);
  for (std::size_t p = 0; p < a.arity(); ++p) {
    Term resolved = Resolve(*st, a.arg(p));
    if (!resolved.IsValid()) continue;
    IndexView narrowed =
        st->target->AtomsWithIn(a.pred(), static_cast<int>(p), resolved, lo,
                                hi);
    // Column-store views own their (merged) result; move, don't copy.
    if (narrowed.size() < candidates.size()) candidates = std::move(narrowed);
  }
  for (std::uint32_t idx : candidates) {
    if (st->stop) return;
    TryMatch(st, a, st->target->atoms()[idx], depth);
  }
}

}  // namespace

HomSearch::HomSearch(std::vector<Atom> source, const Instance* target,
                     HomOptions options)
    : source_(OrderForSearch(std::move(source))),
      target_(target),
      options_(options) {
  BDDFC_CHECK(target != nullptr);
}

namespace {

// Seeds `st` from `seed` (and pre-populates the injectivity set). Returns
// false when the seed is contradictory, i.e. no extension can exist.
bool SeedState(const std::vector<Atom>& source, const Substitution& seed,
               SearchState* st) {
  for (const auto& [from, to] : seed.entries()) {
    if (from.IsRigid()) {
      if (from != to) return false;  // seed contradicts rigidity
      continue;
    }
    auto [it, inserted] = st->assignment.emplace(from, to);
    if (!inserted && it->second != to) return false;
  }
  if (st->injective) {
    // Pre-populate the used set with rigid images and seed images; a seed
    // collision means no injective extension exists.
    std::unordered_set<Term> rigid_seen;
    for (const Atom& a : source) {
      for (Term t : a.args()) {
        if (t.IsRigid() && rigid_seen.insert(t).second) {
          if (!st->used.insert(t).second) return false;
        }
      }
    }
    for (const auto& [from, to] : st->assignment) {
      (void)from;
      if (!st->used.insert(to).second) return false;
    }
  }
  return true;
}

}  // namespace

std::size_t HomSearch::ForEach(
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visit) const {
  SearchState st;
  st.source = &source_;
  st.target = target_;
  st.injective = options_.injective;
  st.visit = &visit;
  if (!SeedState(source_, seed, &st)) return 0;
  Search(&st, 0);
  return st.visited;
}

void HomSearch::EnsureAnchorOrders() const {
  if (!anchor_orders_.empty() || source_.empty()) return;
  anchor_orders_.reserve(source_.size());
  anchor_atoms_.reserve(source_.size());
  for (std::size_t i = 0; i < source_.size(); ++i) {
    anchor_orders_.push_back(
        GreedyOrderIndices(source_, static_cast<int>(i)));
    std::vector<Atom> atoms;
    atoms.reserve(source_.size());
    for (std::size_t pos : anchor_orders_.back()) {
      atoms.push_back(source_[pos]);
    }
    anchor_atoms_.push_back(std::move(atoms));
  }
}

std::size_t HomSearch::ForEachDelta(
    const Substitution& seed, std::uint32_t delta_begin,
    std::uint32_t delta_end,
    const std::function<bool(const Substitution&)>& visit) const {
  if (delta_begin >= delta_end || source_.empty()) return 0;
  EnsureAnchorOrders();
  // Partition the qualifying homomorphisms by their *anchor*: the first
  // source atom (in source_ order) whose image falls inside the delta.
  // Anchor run i constrains source_[i] to the delta, source_[j] for j < i
  // strictly below it, and later atoms to the delta_end prefix — each
  // qualifying homomorphism is generated by exactly one run.
  std::size_t total = 0;
  bool stopped = false;
  const auto wrapped = [&](const Substitution& h) {
    if (!visit(h)) {
      stopped = true;
      return false;
    }
    return true;
  };
  for (std::size_t anchor = 0; anchor < source_.size(); ++anchor) {
    total += ForEachDeltaAnchor(anchor, delta_begin, delta_end, delta_begin,
                                delta_end, seed, wrapped);
    if (stopped) break;
  }
  return total;
}

std::size_t HomSearch::ForEachDeltaAnchor(
    std::size_t anchor, std::uint32_t delta_begin, std::uint32_t delta_end,
    std::uint32_t anchor_begin, std::uint32_t anchor_end,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visit) const {
  if (anchor_begin >= anchor_end || source_.empty()) return 0;
  EnsureAnchorOrders();
  BDDFC_CHECK_LT(anchor, source_.size());
  std::vector<AtomRange> run_ranges(source_.size());
  const std::vector<std::size_t>& order = anchor_orders_[anchor];
  for (std::size_t d = 0; d < order.size(); ++d) {
    const std::size_t pos = order[d];
    if (pos < anchor) {
      run_ranges[d] = {0, delta_begin};
    } else if (pos == anchor) {
      run_ranges[d] = {anchor_begin, anchor_end};
    } else {
      run_ranges[d] = {0, delta_end};
    }
  }
  SearchState st;
  st.source = &anchor_atoms_[anchor];
  st.target = target_;
  st.injective = options_.injective;
  st.ranges = &run_ranges;
  st.visit = &visit;
  if (!SeedState(anchor_atoms_[anchor], seed, &st)) return 0;
  Search(&st, 0);
  return st.visited;
}

std::size_t HomSearch::ForEachFirstIn(
    std::uint32_t first_begin, std::uint32_t first_end,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visit) const {
  BDDFC_CHECK(!source_.empty());
  const std::uint32_t n = static_cast<std::uint32_t>(target_->size());
  std::vector<AtomRange> run_ranges(source_.size(), {0, n});
  run_ranges[0] = {first_begin, first_end};
  SearchState st;
  st.source = &source_;
  st.target = target_;
  st.injective = options_.injective;
  st.ranges = &run_ranges;
  st.visit = &visit;
  if (!SeedState(source_, seed, &st)) return 0;
  Search(&st, 0);
  return st.visited;
}

namespace {

// Deterministic first-atom chunking shared by the pool-parallel queries:
// chunk k of `chunks` covers [k*size, min(n, (k+1)*size)).
struct FirstAtomChunks {
  std::uint32_t size = 0;
  std::size_t count = 0;
};

FirstAtomChunks PlanFirstAtomChunks(std::uint32_t n, std::size_t workers) {
  // At least 64 target atoms per chunk, at most ~4 chunks per participant.
  constexpr std::uint32_t kGrain = 64;
  FirstAtomChunks plan;
  plan.count = std::min<std::size_t>(4 * (workers + 1),
                                     (n + kGrain - 1) / kGrain);
  if (plan.count == 0) plan.count = 1;
  plan.size = (n + static_cast<std::uint32_t>(plan.count) - 1) /
              static_cast<std::uint32_t>(plan.count);
  return plan;
}

}  // namespace

std::vector<Substitution> HomSearch::FindAllParallel(
    ThreadPool* pool, const Substitution& seed, std::size_t limit) const {
  const std::uint32_t n = static_cast<std::uint32_t>(target_->size());
  const FirstAtomChunks plan =
      PlanFirstAtomChunks(n, pool == nullptr ? 0 : pool->num_workers());
  if (pool == nullptr || pool->num_workers() == 0 || source_.empty() ||
      plan.count < 2) {
    return FindAll(seed, limit);
  }
  std::vector<std::vector<Substitution>> batches(plan.count);
  for (std::size_t k = 0; k < plan.count; ++k) {
    const std::uint32_t lo = static_cast<std::uint32_t>(k) * plan.size;
    const std::uint32_t hi = std::min(n, lo + plan.size);
    if (lo >= hi) break;
    pool->Submit([this, &seed, &batches, k, lo, hi, limit] {
      ForEachFirstIn(lo, hi, seed, [&](const Substitution& h) {
        batches[k].push_back(h);
        return batches[k].size() < limit;
      });
    });
  }
  pool->WaitAll();
  std::vector<Substitution> out;
  for (std::vector<Substitution>& batch : batches) {
    for (Substitution& h : batch) {
      if (out.size() >= limit) return out;
      out.push_back(std::move(h));
    }
  }
  return out;
}

bool HomSearch::ExistsParallel(ThreadPool* pool,
                               const Substitution& seed) const {
  const std::uint32_t n = static_cast<std::uint32_t>(target_->size());
  const FirstAtomChunks plan =
      PlanFirstAtomChunks(n, pool == nullptr ? 0 : pool->num_workers());
  if (pool == nullptr || pool->num_workers() == 0 || source_.empty() ||
      plan.count < 2) {
    return Exists(seed);
  }
  std::atomic<bool> found{false};
  for (std::size_t k = 0; k < plan.count; ++k) {
    const std::uint32_t lo = static_cast<std::uint32_t>(k) * plan.size;
    const std::uint32_t hi = std::min(n, lo + plan.size);
    if (lo >= hi) break;
    pool->Submit([this, &seed, &found, lo, hi] {
      if (found.load(std::memory_order_relaxed)) return;
      ForEachFirstIn(lo, hi, seed, [&](const Substitution&) {
        found.store(true, std::memory_order_relaxed);
        return false;
      });
    });
  }
  pool->WaitAll();
  return found.load(std::memory_order_relaxed);
}

std::size_t HomSearch::CountParallel(ThreadPool* pool,
                                     const Substitution& seed) const {
  const std::uint32_t n = static_cast<std::uint32_t>(target_->size());
  const FirstAtomChunks plan =
      PlanFirstAtomChunks(n, pool == nullptr ? 0 : pool->num_workers());
  if (pool == nullptr || pool->num_workers() == 0 || source_.empty() ||
      plan.count < 2) {
    return ForEach(seed, [](const Substitution&) { return true; });
  }
  std::vector<std::size_t> counts(plan.count, 0);
  for (std::size_t k = 0; k < plan.count; ++k) {
    const std::uint32_t lo = static_cast<std::uint32_t>(k) * plan.size;
    const std::uint32_t hi = std::min(n, lo + plan.size);
    if (lo >= hi) break;
    pool->Submit([this, &seed, &counts, k, lo, hi] {
      counts[k] = ForEachFirstIn(
          lo, hi, seed, [](const Substitution&) { return true; });
    });
  }
  pool->WaitAll();
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  return total;
}

std::optional<Substitution> HomSearch::FindOne(const Substitution& seed) const {
  std::optional<Substitution> found;
  ForEach(seed, [&](const Substitution& s) {
    found = s;
    return false;
  });
  return found;
}

bool HomSearch::Exists(const Substitution& seed) const {
  return FindOne(seed).has_value();
}

std::vector<Substitution> HomSearch::FindAll(const Substitution& seed,
                                             std::size_t limit) const {
  std::vector<Substitution> out;
  ForEach(seed, [&](const Substitution& s) {
    out.push_back(s);
    return out.size() < limit;
  });
  return out;
}

namespace {

// Builds the partial assignment pinning answer variables to `binding`.
// Returns false when the binding is inconsistent (a repeated answer
// variable asked to take two distinct values), in which case no
// homomorphism exists.
bool AnswerSeed(const Cq& q, const std::vector<Term>& binding,
                Substitution* seed) {
  BDDFC_CHECK(binding.empty() || binding.size() == q.answers().size());
  for (std::size_t i = 0; i < binding.size(); ++i) {
    Term var = q.answers()[i];
    if (seed->IsBound(var) && seed->Apply(var) != binding[i]) return false;
    seed->Bind(var, binding[i]);
  }
  return true;
}

}  // namespace

bool Entails(const Instance& instance, const Cq& q,
             const std::vector<Term>& binding) {
  Substitution seed;
  if (!AnswerSeed(q, binding, &seed)) return false;
  HomSearch search(q.atoms(), &instance);
  return search.Exists(seed);
}

bool EntailsInjectively(const Instance& instance, const Cq& q,
                        const std::vector<Term>& binding) {
  Substitution seed;
  if (!AnswerSeed(q, binding, &seed)) return false;
  HomSearch search(q.atoms(), &instance, {.injective = true});
  return search.Exists(seed);
}

bool Entails(const Instance& instance, const Ucq& q,
             const std::vector<Term>& binding) {
  for (const Cq& disjunct : q.disjuncts()) {
    if (Entails(instance, disjunct, binding)) return true;
  }
  return false;
}

bool EntailsInjectively(const Instance& instance, const Ucq& q,
                        const std::vector<Term>& binding) {
  for (const Cq& disjunct : q.disjuncts()) {
    if (EntailsInjectively(instance, disjunct, binding)) return true;
  }
  return false;
}

bool MapsInto(const Instance& a, const Instance& b) {
  HomSearch search(a.atoms(), &b);
  return search.Exists();
}

bool HomEquivalent(const Instance& a, const Instance& b) {
  return MapsInto(a, b) && MapsInto(b, a);
}

bool Subsumes(const Cq& general, const Cq& specific) {
  if (general.answers().size() != specific.answers().size()) return false;
  // Target: the atoms of `specific` viewed as a structure. Its variables are
  // plain values (nothing constrains them), which realizes the usual
  // "freeze" construction without renaming.
  if (specific.atoms().empty()) return general.atoms().empty();
  Substitution seed;
  for (std::size_t i = 0; i < general.answers().size(); ++i) {
    Term from = general.answers()[i];
    Term to = specific.answers()[i];
    if (seed.IsBound(from) && seed.Apply(from) != to) return false;
    seed.Bind(from, to);
  }
  // Build a throwaway instance over the same universe-independent data. We
  // only need the indexes, so a local instance suffices; ⊤ membership is
  // irrelevant because query atoms never use it unless present in both.
  // The instance requires a universe: reuse none — emulate by linear scan
  // matching instead when atoms are few.
  // For simplicity and because rewriting queries are small, use a direct
  // backtracking over a vector target via a temporary index-free search.
  // We reuse HomSearch by materializing a lightweight Instance is not
  // possible without a Universe, so we do the scan here.
  struct MiniSearch {
    const std::vector<Atom>& source;
    const std::vector<Atom>& target;
    std::unordered_map<Term, Term> assignment;

    bool Run(std::size_t depth) {
      if (depth == source.size()) return true;
      const Atom& a = source[depth];
      for (const Atom& b : target) {
        if (b.pred() != a.pred()) continue;
        std::vector<Term> bound_here;
        bool ok = true;
        for (std::size_t p = 0; p < a.arity(); ++p) {
          Term s = a.arg(p);
          Term v = b.arg(p);
          Term resolved;
          if (s.IsRigid()) {
            resolved = s;
          } else {
            auto it = assignment.find(s);
            resolved = it == assignment.end() ? Term() : it->second;
          }
          if (resolved.IsValid()) {
            if (resolved != v) {
              ok = false;
              break;
            }
            continue;
          }
          assignment.emplace(s, v);
          bound_here.push_back(s);
        }
        if (ok && Run(depth + 1)) return true;
        for (Term t : bound_here) assignment.erase(t);
      }
      return false;
    }
  };
  MiniSearch search{general.atoms(), specific.atoms(), {}};
  for (const auto& [from, to] : seed.entries()) {
    search.assignment.emplace(from, to);
  }
  return search.Run(0);
}

Cq Core(const Cq& q, Universe* universe) {
  Cq current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    Instance target(universe);
    target.AddAtoms(current.atoms());
    HomSearch search(current.atoms(), &target);
    Substitution seed;
    for (Term a : current.answers()) seed.Bind(a, a);
    search.ForEach(seed, [&](const Substitution& h) {
      std::unordered_set<Atom> image;
      for (const Atom& atom : current.atoms()) image.insert(h.Apply(atom));
      if (image.size() < current.atoms().size()) {
        std::vector<Atom> reduced(image.begin(), image.end());
        std::sort(reduced.begin(), reduced.end());
        current = Cq(std::move(reduced), current.answers());
        changed = true;
        return false;  // restart with the smaller query
      }
      return true;
    });
  }
  return current;
}

}  // namespace bddfc
