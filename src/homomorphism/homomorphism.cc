#include "homomorphism/homomorphism.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"

namespace bddfc {

namespace {

// Greedy connectivity-based ordering: repeatedly pick the atom that shares
// the most terms with atoms already placed (ties: more rigid terms first,
// then fewer fresh variables). This keeps the backtracking search anchored.
std::vector<Atom> OrderForSearch(std::vector<Atom> atoms) {
  std::vector<Atom> ordered;
  ordered.reserve(atoms.size());
  std::unordered_set<Term> seen;
  std::vector<bool> placed(atoms.size(), false);
  for (std::size_t step = 0; step < atoms.size(); ++step) {
    int best = -1;
    int best_shared = -1;
    int best_rigid = -1;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (placed[i]) continue;
      int shared = 0;
      int rigid = 0;
      for (Term t : atoms[i].args()) {
        if (t.IsRigid()) {
          ++rigid;
        } else if (seen.find(t) != seen.end()) {
          ++shared;
        }
      }
      if (shared > best_shared ||
          (shared == best_shared && rigid > best_rigid)) {
        best = static_cast<int>(i);
        best_shared = shared;
        best_rigid = rigid;
      }
    }
    placed[best] = true;
    for (Term t : atoms[best].args()) {
      if (!t.IsRigid()) seen.insert(t);
    }
    ordered.push_back(std::move(atoms[best]));
  }
  return ordered;
}

// Mutable search state shared by the recursion.
struct SearchState {
  const std::vector<Atom>* source;
  const Instance* target;
  bool injective;
  std::unordered_map<Term, Term> assignment;
  std::unordered_set<Term> used;  // images, for injectivity
  const std::function<bool(const Substitution&)>* visit;
  std::size_t visited = 0;
  bool stop = false;
};

// Resolves a source term under the current assignment; invalid if unbound.
Term Resolve(const SearchState& st, Term t) {
  if (t.IsRigid()) return t;
  auto it = st.assignment.find(t);
  return it == st.assignment.end() ? Term() : it->second;
}

void Search(SearchState* st, std::size_t depth);

// Attempts to match source atom `a` against target atom `b`, binding fresh
// variables; on success recurses, then undoes the bindings.
void TryMatch(SearchState* st, const Atom& a, const Atom& b,
              std::size_t depth) {
  std::vector<Term> bound_here;
  bool ok = true;
  for (std::size_t p = 0; p < a.arity(); ++p) {
    Term s = a.arg(p);
    Term v = b.arg(p);
    Term resolved = Resolve(*st, s);
    if (resolved.IsValid()) {
      if (resolved != v) {
        ok = false;
        break;
      }
      continue;
    }
    if (st->injective && st->used.find(v) != st->used.end()) {
      ok = false;
      break;
    }
    st->assignment.emplace(s, v);
    if (st->injective) st->used.insert(v);
    bound_here.push_back(s);
  }
  if (ok) Search(st, depth + 1);
  for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
    auto a_it = st->assignment.find(*it);
    if (st->injective) st->used.erase(a_it->second);
    st->assignment.erase(a_it);
  }
}

void Search(SearchState* st, std::size_t depth) {
  if (st->stop) return;
  if (depth == st->source->size()) {
    Substitution result;
    for (const auto& [from, to] : st->assignment) result.Bind(from, to);
    ++st->visited;
    if (!(*st->visit)(result)) st->stop = true;
    return;
  }
  const Atom& a = (*st->source)[depth];
  if (a.IsNullary()) {
    if (st->target->Contains(a)) Search(st, depth + 1);
    return;
  }
  // Pick the most selective candidate list available.
  const std::vector<std::uint32_t>* candidates =
      &st->target->AtomsWith(a.pred());
  for (std::size_t p = 0; p < a.arity(); ++p) {
    Term resolved = Resolve(*st, a.arg(p));
    if (!resolved.IsValid()) continue;
    const auto& narrowed =
        st->target->AtomsWith(a.pred(), static_cast<int>(p), resolved);
    if (narrowed.size() < candidates->size()) candidates = &narrowed;
  }
  for (std::uint32_t idx : *candidates) {
    if (st->stop) return;
    TryMatch(st, a, st->target->atoms()[idx], depth);
  }
}

}  // namespace

HomSearch::HomSearch(std::vector<Atom> source, const Instance* target,
                     HomOptions options)
    : source_(OrderForSearch(std::move(source))),
      target_(target),
      options_(options) {
  BDDFC_CHECK(target != nullptr);
}

std::size_t HomSearch::ForEach(
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& visit) const {
  SearchState st;
  st.source = &source_;
  st.target = target_;
  st.injective = options_.injective;
  st.visit = &visit;
  for (const auto& [from, to] : seed.entries()) {
    if (from.IsRigid()) {
      if (from != to) return 0;  // seed contradicts rigidity
      continue;
    }
    auto [it, inserted] = st.assignment.emplace(from, to);
    if (!inserted && it->second != to) return 0;
  }
  if (st.injective) {
    // Pre-populate the used set with rigid images and seed images; a seed
    // collision means no injective extension exists.
    std::unordered_set<Term> rigid_seen;
    for (const Atom& a : source_) {
      for (Term t : a.args()) {
        if (t.IsRigid() && rigid_seen.insert(t).second) {
          if (!st.used.insert(t).second) return 0;
        }
      }
    }
    for (const auto& [from, to] : st.assignment) {
      (void)from;
      if (!st.used.insert(to).second) return 0;
    }
  }
  Search(&st, 0);
  return st.visited;
}

std::optional<Substitution> HomSearch::FindOne(const Substitution& seed) const {
  std::optional<Substitution> found;
  ForEach(seed, [&](const Substitution& s) {
    found = s;
    return false;
  });
  return found;
}

bool HomSearch::Exists(const Substitution& seed) const {
  return FindOne(seed).has_value();
}

std::vector<Substitution> HomSearch::FindAll(const Substitution& seed,
                                             std::size_t limit) const {
  std::vector<Substitution> out;
  ForEach(seed, [&](const Substitution& s) {
    out.push_back(s);
    return out.size() < limit;
  });
  return out;
}

namespace {

// Builds the partial assignment pinning answer variables to `binding`.
// Returns false when the binding is inconsistent (a repeated answer
// variable asked to take two distinct values), in which case no
// homomorphism exists.
bool AnswerSeed(const Cq& q, const std::vector<Term>& binding,
                Substitution* seed) {
  BDDFC_CHECK(binding.empty() || binding.size() == q.answers().size());
  for (std::size_t i = 0; i < binding.size(); ++i) {
    Term var = q.answers()[i];
    if (seed->IsBound(var) && seed->Apply(var) != binding[i]) return false;
    seed->Bind(var, binding[i]);
  }
  return true;
}

}  // namespace

bool Entails(const Instance& instance, const Cq& q,
             const std::vector<Term>& binding) {
  Substitution seed;
  if (!AnswerSeed(q, binding, &seed)) return false;
  HomSearch search(q.atoms(), &instance);
  return search.Exists(seed);
}

bool EntailsInjectively(const Instance& instance, const Cq& q,
                        const std::vector<Term>& binding) {
  Substitution seed;
  if (!AnswerSeed(q, binding, &seed)) return false;
  HomSearch search(q.atoms(), &instance, {.injective = true});
  return search.Exists(seed);
}

bool Entails(const Instance& instance, const Ucq& q,
             const std::vector<Term>& binding) {
  for (const Cq& disjunct : q.disjuncts()) {
    if (Entails(instance, disjunct, binding)) return true;
  }
  return false;
}

bool EntailsInjectively(const Instance& instance, const Ucq& q,
                        const std::vector<Term>& binding) {
  for (const Cq& disjunct : q.disjuncts()) {
    if (EntailsInjectively(instance, disjunct, binding)) return true;
  }
  return false;
}

bool MapsInto(const Instance& a, const Instance& b) {
  HomSearch search(a.atoms(), &b);
  return search.Exists();
}

bool HomEquivalent(const Instance& a, const Instance& b) {
  return MapsInto(a, b) && MapsInto(b, a);
}

bool Subsumes(const Cq& general, const Cq& specific) {
  if (general.answers().size() != specific.answers().size()) return false;
  // Target: the atoms of `specific` viewed as a structure. Its variables are
  // plain values (nothing constrains them), which realizes the usual
  // "freeze" construction without renaming.
  if (specific.atoms().empty()) return general.atoms().empty();
  Substitution seed;
  for (std::size_t i = 0; i < general.answers().size(); ++i) {
    Term from = general.answers()[i];
    Term to = specific.answers()[i];
    if (seed.IsBound(from) && seed.Apply(from) != to) return false;
    seed.Bind(from, to);
  }
  // Build a throwaway instance over the same universe-independent data. We
  // only need the indexes, so a local instance suffices; ⊤ membership is
  // irrelevant because query atoms never use it unless present in both.
  // The instance requires a universe: reuse none — emulate by linear scan
  // matching instead when atoms are few.
  // For simplicity and because rewriting queries are small, use a direct
  // backtracking over a vector target via a temporary index-free search.
  // We reuse HomSearch by materializing a lightweight Instance is not
  // possible without a Universe, so we do the scan here.
  struct MiniSearch {
    const std::vector<Atom>& source;
    const std::vector<Atom>& target;
    std::unordered_map<Term, Term> assignment;

    bool Run(std::size_t depth) {
      if (depth == source.size()) return true;
      const Atom& a = source[depth];
      for (const Atom& b : target) {
        if (b.pred() != a.pred()) continue;
        std::vector<Term> bound_here;
        bool ok = true;
        for (std::size_t p = 0; p < a.arity(); ++p) {
          Term s = a.arg(p);
          Term v = b.arg(p);
          Term resolved;
          if (s.IsRigid()) {
            resolved = s;
          } else {
            auto it = assignment.find(s);
            resolved = it == assignment.end() ? Term() : it->second;
          }
          if (resolved.IsValid()) {
            if (resolved != v) {
              ok = false;
              break;
            }
            continue;
          }
          assignment.emplace(s, v);
          bound_here.push_back(s);
        }
        if (ok && Run(depth + 1)) return true;
        for (Term t : bound_here) assignment.erase(t);
      }
      return false;
    }
  };
  MiniSearch search{general.atoms(), specific.atoms(), {}};
  for (const auto& [from, to] : seed.entries()) {
    search.assignment.emplace(from, to);
  }
  return search.Run(0);
}

Cq Core(const Cq& q, Universe* universe) {
  Cq current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    Instance target(universe);
    target.AddAtoms(current.atoms());
    HomSearch search(current.atoms(), &target);
    Substitution seed;
    for (Term a : current.answers()) seed.Bind(a, a);
    search.ForEach(seed, [&](const Substitution& h) {
      std::unordered_set<Atom> image;
      for (const Atom& atom : current.atoms()) image.insert(h.Apply(atom));
      if (image.size() < current.atoms().size()) {
        std::vector<Atom> reduced(image.begin(), image.end());
        std::sort(reduced.begin(), reduced.end());
        current = Cq(std::move(reduced), current.answers());
        changed = true;
        return false;  // restart with the smaller query
      }
      return true;
    });
  }
  return current;
}

}  // namespace bddfc
