// The bddfc_server core: one knowledge base, one SnapshotManager, many
// concurrent client sessions over the newline-delimited JSON protocol of
// serve/codec.h. tools/bddfc_server.cc is a thin flag-parsing shell around
// this class; tests drive HandleLine/ServeStream directly.
//
// Request flow: a connection thread frames lines (LineFramer) and hands
// each frame to the dispatcher, which executes it on the shared ThreadPool
// (serial fallback when the pool is absent) and writes exactly one reply
// line back. Queries pin the current EpochSnapshot (one atomic load) and
// evaluate PreparedQuery::AllOn/CountOn/AskOn against the pinned immutable
// materialization — the read path takes no lock shared with the writer.
// "add" batches go through SnapshotManager::ApplyFacts (single writer
// lock, incremental chase, next epoch published).
//
// Universe thread model (the one mutable structure queries and writes
// share): symbol interning (parsing queries/facts) takes `universe_mu_`
// exclusive; name rendering and the writer's chase (which only *reads*
// interned symbols — its sole mutation is the atomic null counter) take it
// shared. Prepared-plan execution touches the Universe only to render
// answers, so the hot read path contends with nothing but other renders.
//
// Shutdown: SIGINT (via obs::InstallSigintCancel) flips the cooperative
// cancel flag. The accept loop stops accepting and closes the listening
// socket; connection loops finish the frames already read, then see
// end-of-stream (their sockets are shut down for reading) and drain;
// ServeTcp/ServeStream return obs::kExitInterrupted (130).

#ifndef BDDFC_SERVE_SERVER_H_
#define BDDFC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/thread_pool.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "serve/codec.h"
#include "serve/session.h"
#include "serve/snapshot.h"

namespace bddfc {
namespace serve {

struct ServerOptions {
  /// Session configuration (chase variant/engine/bounds/storage). The
  /// answer strategy is forced to materialize-semantics; leave
  /// num_threads at 1 — intra-request parallelism is not used, the server
  /// scales across requests instead.
  ReasonerOptions reasoner;
  /// Dispatcher worker threads executing requests (0 = all hardware
  /// threads, 1 = execute inline on the connection threads).
  std::size_t dispatch_threads = 0;
  /// Per-line byte budget; longer client lines yield an "oversized" error
  /// reply without ever being buffered whole.
  std::size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
};

class Server {
 public:
  /// Materializes epoch 0 of `database` under `rules` (blocking).
  Server(const Instance& database, RuleSet rules, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Decodes, dispatches and serializes one request line: always returns
  /// exactly one reply line (no trailing newline), whatever the input —
  /// malformed bytes yield {"ok":false,...}. Thread-safe; this is the
  /// whole protocol, sockets aside.
  std::string HandleLine(Session& session, std::string_view line);

  /// HandleLine plus the oversized-frame error path.
  std::string HandleFrame(Session& session, const Frame& frame);

  /// Serves one session over a byte-stream fd pair (the --stdio mode;
  /// tests use pipes) until end-of-stream or cancellation. Returns the
  /// process exit code: 0 on clean end-of-stream, obs::kExitInterrupted
  /// when cancelled.
  int ServeStream(int in_fd, int out_fd);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), announces the bound port on
  /// `announce_fd` as "LISTENING <port>\n", and serves one session per
  /// connection until cancellation. Returns like ServeStream.
  int ServeTcp(int port, int announce_fd);

  SessionRegistry& sessions() { return sessions_; }
  SnapshotManager& snapshots() { return snapshots_; }
  Universe* universe() const { return universe_; }

  /// Requests handled (including failed ones) / error replies sent.
  std::uint64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors_total() const {
    return errors_total_.load(std::memory_order_relaxed);
  }

 private:
  // Executes `frame` on the dispatch pool (inline when absent) and
  // returns its reply line.
  std::string Dispatch(Session& session, const Frame& frame);

  // Connection loop shared by stdio and TCP: frame, dispatch, reply.
  void ServeConnection(Session& session, int in_fd, int out_fd);

  std::string HandleRequest(Session& session, const Request& req);
  std::string HandlePrepare(Session& session, const Request& req);
  std::string HandleQuery(Session& session, const Request& req);
  std::string HandleAdd(const Request& req);
  std::string HandleStatus(const Request& req);
  std::string HandleMetrics(const Request& req);
  std::string HandleAnalyze(const Request& req);

  ServerOptions options_;
  Universe* universe_;
  SnapshotManager snapshots_;
  SessionRegistry sessions_;
  std::unique_ptr<ThreadPool> pool_;  // null = inline dispatch

  // Universe contract (file comment): exclusive to intern, shared to read.
  std::shared_mutex universe_mu_;
  // Serializes PrepareDetached calls (they bump shared plan counters).
  std::mutex plan_mu_;

  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> errors_total_{0};

  // Live connection sockets, shut down on drain to unblock readers.
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
};

}  // namespace serve
}  // namespace bddfc

#endif  // BDDFC_SERVE_SERVER_H_
