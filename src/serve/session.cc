#include "serve/session.h"

#include <utility>

namespace bddfc {
namespace serve {

void Session::AddPlan(const std::string& name, PreparedQuery plan) {
  auto handle = std::make_shared<const PreparedQuery>(std::move(plan));
  std::lock_guard<std::mutex> lock(mu_);
  plans_[name] = std::move(handle);
}

std::shared_ptr<const PreparedQuery> Session::FindPlan(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(name);
  return it == plans_.end() ? nullptr : it->second;
}

std::size_t Session::num_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::shared_ptr<Session> SessionRegistry::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  auto session = std::make_shared<Session>(next_id_);
  sessions_.emplace(next_id_, session);
  ++next_id_;
  return session;
}

void SessionRegistry::Close(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

std::size_t SessionRegistry::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::uint64_t SessionRegistry::opened_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace serve
}  // namespace bddfc
