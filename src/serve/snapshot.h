// Epoch-based copy-on-write snapshots over one Reasoner session: the
// concurrency core of bddfc_server.
//
// The FactStore is append-only and the incremental chase is resumable
// (Reasoner::AddFacts drives ObliviousChase::AddBaseFacts), so the server's
// read/write split is clean:
//
//   * The single writer takes `writer_mu_`, folds a facts batch into the
//     session (incremental chase, never from scratch), deep-copies the
//     resulting materialization via FactStore::Clone() — index structures
//     and sorted-run layout included, no re-hash, no re-seal — and
//     publishes it as the next EpochSnapshot through one atomic
//     shared_ptr store.
//   * Readers Pin() the current snapshot with one atomic shared_ptr load —
//     they never touch the writer lock — and evaluate prepared queries
//     against the pinned immutable Instance (concurrent const queries are
//     already the FactStore contract). A pinned snapshot stays alive for
//     as long as any reader holds it, however many epochs the writer has
//     published since.
//
// Readers therefore never block writers and writers never block readers;
// each reply reports the epoch its answers were computed at, and answers
// at epoch e are exactly the answers of a one-shot chase of the base facts
// as of epoch e (the AddBaseFacts ≡ from-scratch equivalence proven in the
// API tests; tests/serve_test.cc re-checks it through this layer under
// concurrency).
//
// Universe contract (see server.h): the chase only *reads* interned
// symbols (arity checks) and invents nulls through the atomic null
// counter, so ApplyFacts may run concurrently with readers rendering
// names; callers that intern new symbols (parsing) must be exclusive with
// ApplyFacts — the server's shared_mutex enforces exactly that.

#ifndef BDDFC_SERVE_SNAPSHOT_H_
#define BDDFC_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "api/reasoner.h"
#include "logic/instance.h"
#include "logic/rule.h"

namespace bddfc {
namespace serve {

/// One immutable published epoch: the materialization of the session's
/// base facts as of this epoch, plus the metadata replies report.
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  std::size_t base_atoms = 0;  // session base facts (incl. the implicit ⊤)
  std::size_t atoms = 0;       // materialization size
  bool saturated = false;      // the chase saturated (answers complete)
  bool hit_bounds = false;     // the chase stopped at its step/atom budget
  std::shared_ptr<const Instance> materialization;
};

/// Owns the Reasoner and the published snapshot chain. See file comment.
class SnapshotManager {
 public:
  /// Builds the session (the Reasoner copies `database`), materializes
  /// epoch 0 and publishes it. `options.strategy` is ignored — snapshot
  /// answering is materialize-semantics by construction.
  SnapshotManager(const Instance& database, RuleSet rules,
                  ReasonerOptions options);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The current snapshot: one atomic load, wait-free with respect to the
  /// writer. Never null after construction.
  std::shared_ptr<const EpochSnapshot> Pin() const {
    return current_.load(std::memory_order_acquire);
  }

  struct ApplyResult {
    std::size_t added = 0;  // atoms new to the base instance
    std::shared_ptr<const EpochSnapshot> snapshot;  // current after apply
  };

  /// Folds a facts batch into the session under the writer lock and, when
  /// anything was new, publishes the next epoch. A batch of duplicates
  /// publishes nothing and returns the unchanged current snapshot.
  /// Serialized internally; facts must be all-constant atoms interned in
  /// the session universe (Reasoner::AddFacts CHECKs this — validate
  /// client input before calling).
  ApplyResult ApplyFacts(const std::vector<Atom>& facts);

  /// The underlying session, for planning (PrepareDetached) and
  /// introspection. Plan calls must be serialized by the caller — the
  /// server's plan lock — but may overlap ApplyFacts.
  Reasoner& reasoner() { return reasoner_; }
  const Reasoner& reasoner() const { return reasoner_; }

 private:
  std::shared_ptr<const EpochSnapshot> BuildSnapshot(std::uint64_t epoch);

  Reasoner reasoner_;
  std::mutex writer_mu_;  // serializes ApplyFacts; readers never take it
  std::atomic<std::shared_ptr<const EpochSnapshot>> current_;
};

}  // namespace serve
}  // namespace bddfc

#endif  // BDDFC_SERVE_SNAPSHOT_H_
