// Client sessions: one per connection (or one for the whole stdio stream),
// each holding its private prepared-plan cache. Plans are planned once
// (Reasoner::PrepareDetached, no live-state binding) and then executed
// lock-free against pinned snapshots by any number of in-flight requests
// of the session — hence the shared_ptr<const PreparedQuery> handles.

#ifndef BDDFC_SERVE_SESSION_H_
#define BDDFC_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/reasoner.h"

namespace bddfc {
namespace serve {

class Session {
 public:
  explicit Session(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const { return id_; }

  /// Binds (or rebinds) `name` to a plan. Thread-safe.
  void AddPlan(const std::string& name, PreparedQuery plan);

  /// The plan bound to `name`, or nullptr. Thread-safe; the handle stays
  /// valid even if the name is rebound while a request executes it.
  std::shared_ptr<const PreparedQuery> FindPlan(const std::string& name) const;

  std::size_t num_plans() const;

 private:
  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const PreparedQuery>> plans_;
};

/// The set of live sessions. Open() assigns monotonically increasing ids;
/// Close() drops the registry's reference (in-flight requests holding the
/// shared_ptr finish safely).
class SessionRegistry {
 public:
  std::shared_ptr<Session> Open();
  void Close(std::uint64_t id);

  /// Currently open sessions.
  std::size_t active() const;
  /// Sessions ever opened (a monotone counter for status replies).
  std::uint64_t opened_total() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace serve
}  // namespace bddfc

#endif  // BDDFC_SERVE_SESSION_H_
