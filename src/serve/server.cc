#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <condition_variable>
#include <csignal>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "analysis/lint.h"
#include "analysis/program_analysis.h"
#include "logic/parser.h"
#include "obs/obs.h"

namespace bddfc {
namespace serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string Located(const ParseError& error) {
  return error.message + " (line " + std::to_string(error.line) + ", column " +
         std::to_string(error.column) + ")";
}

}  // namespace

Server::Server(const Instance& database, RuleSet rules, ServerOptions options)
    : options_(options),
      universe_(database.universe()),
      snapshots_(database, std::move(rules), options.reasoner) {
  const std::size_t workers =
      ThreadPool::ResolveThreadCount(options_.dispatch_threads);
  // Connection threads block while the pool executes, so every resolved
  // thread becomes a worker; 1 means "execute inline", no pool at all.
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
}

Server::~Server() = default;

// --- Dispatch ----------------------------------------------------------------

std::string Server::Dispatch(Session& session, const Frame& frame) {
  if (pool_ == nullptr) return HandleFrame(session, frame);
  // Per-request completion signal: many connection threads wait on their
  // own requests concurrently, so the pool-global WaitAll() (reserved for
  // one owning thread) is not usable here.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::string reply;
  pool_->Submit([&] {
    std::string out = HandleFrame(session, frame);
    {
      std::lock_guard<std::mutex> lock(mu);
      reply = std::move(out);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return reply;
}

std::string Server::HandleFrame(Session& session, const Frame& frame) {
  if (frame.oversized) {
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* errors = obs::Metrics().GetCounter("serve.errors");
    errors->Add(1);
    return ErrorReply(std::nullopt, "oversized",
                      "request line exceeds " +
                          std::to_string(options_.max_line_bytes) + " bytes");
  }
  return HandleLine(session, frame.line);
}

std::string Server::HandleLine(Session& session, std::string_view line) {
  const auto start = std::chrono::steady_clock::now();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* requests = obs::Metrics().GetCounter("serve.requests");
  static obs::Counter* errors = obs::Metrics().GetCounter("serve.errors");
  static obs::Histogram* request_ms =
      obs::Metrics().GetHistogram("serve.request_ms");
  requests->Add(1);
  BDDFC_OBS_SPAN(span, "serve", "serve.request");
  span.Arg("session", session.id());

  std::string reply;
  std::string error;
  std::optional<JsonValue> doc = JsonParse(line, &error);
  if (!doc.has_value()) {
    reply = ErrorReply(std::nullopt, "bad_json", error);
  } else {
    std::optional<std::int64_t> id;
    std::optional<Request> req = DecodeRequest(*doc, &error, &id);
    if (!req.has_value()) {
      reply = ErrorReply(id, "bad_request", error);
    } else {
      reply = HandleRequest(session, *req);
    }
  }
  // Error replies are exactly the lines whose leading bytes say so — the
  // codec pins the field order, so this stays in sync by construction.
  if (reply.compare(0, 11, "{\"ok\":false") == 0) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    errors->Add(1);
  }
  request_ms->Observe(static_cast<std::uint64_t>(MsSince(start)));
  return reply;
}

std::string Server::HandleRequest(Session& session, const Request& req) {
  switch (req.op) {
    case RequestOp::kPing: {
      JsonValue reply = OkReply(req.id);
      reply.Set("epoch",
                JsonValue::Int(static_cast<std::int64_t>(
                    snapshots_.Pin()->epoch)));
      return reply.Dump();
    }
    case RequestOp::kStatus:
      return HandleStatus(req);
    case RequestOp::kMetrics:
      return HandleMetrics(req);
    case RequestOp::kAnalyze:
      return HandleAnalyze(req);
    case RequestOp::kPrepare:
      return HandlePrepare(session, req);
    case RequestOp::kQuery:
      return HandleQuery(session, req);
    case RequestOp::kAdd:
      return HandleAdd(req);
  }
  return ErrorReply(req.id, "internal", "unhandled op");
}

// --- Verbs -------------------------------------------------------------------

std::string Server::HandleStatus(const Request& req) {
  std::shared_ptr<const EpochSnapshot> snap = snapshots_.Pin();
  JsonValue reply = OkReply(req.id);
  reply.Set("epoch", JsonValue::Int(static_cast<std::int64_t>(snap->epoch)));
  reply.Set("atoms", JsonValue::Int(static_cast<std::int64_t>(snap->atoms)));
  reply.Set("base_atoms",
            JsonValue::Int(static_cast<std::int64_t>(snap->base_atoms)));
  reply.Set("saturated", JsonValue::Bool(snap->saturated));
  reply.Set("hit_bounds", JsonValue::Bool(snap->hit_bounds));
  reply.Set("nulls", JsonValue::Int(
                         static_cast<std::int64_t>(universe_->num_nulls())));
  reply.Set("sessions",
            JsonValue::Int(static_cast<std::int64_t>(sessions_.active())));
  reply.Set("sessions_total",
            JsonValue::Int(
                static_cast<std::int64_t>(sessions_.opened_total())));
  reply.Set("requests",
            JsonValue::Int(static_cast<std::int64_t>(requests_total())));
  reply.Set("errors",
            JsonValue::Int(static_cast<std::int64_t>(errors_total())));
  return reply.Dump();
}

std::string Server::HandleMetrics(const Request& req) {
  // MetricsRegistry serializes itself; round-trip through the parser to
  // embed it as a structured value rather than splicing strings.
  std::optional<JsonValue> metrics = JsonParse(obs::Metrics().ToJson());
  JsonValue reply = OkReply(req.id);
  reply.Set("metrics", metrics.has_value() ? std::move(*metrics)
                                           : JsonValue::Object());
  return reply.Dump();
}

std::string Server::HandleAnalyze(const Request& req) {
  // The rule set is immutable for the server's lifetime, so the analysis
  // is computed into locals (never through the Reasoner's mutable caches —
  // those race the writer path). The lint's subsumption check freezes rule
  // variables into fresh interned constants: exclusive Universe access,
  // like parsing.
  const Reasoner& reasoner = snapshots_.reasoner();
  JsonValue analysis;
  {
    std::unique_lock<std::shared_mutex> lock(universe_mu_);
    const ProgramReport report = AnalyzeProgram(reasoner.rules(), *universe_);
    const LintReport lint = LintProgram(reasoner.rules(), universe_,
                                        &reasoner.database(), &report);
    analysis = report.ToJson();
    analysis.Set("lint", lint.ToJson());
  }
  JsonValue reply = OkReply(req.id);
  reply.Set("analysis", std::move(analysis));
  return reply.Dump();
}

std::string Server::HandlePrepare(Session& session, const Request& req) {
  ParseError parse_error;
  std::optional<Cq> cq;
  {
    // Parsing interns symbols: exclusive Universe access (file comment).
    std::unique_lock<std::shared_mutex> lock(universe_mu_);
    cq = ParseCq(universe_, req.query, &parse_error);
  }
  if (!cq.has_value()) {
    return ErrorReply(req.id, "parse_error", Located(parse_error));
  }
  std::optional<PreparedQuery> plan;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plan = snapshots_.reasoner().PrepareDetached(*cq);
  }
  JsonValue reply = OkReply(req.id);
  reply.Set("name", JsonValue::Str(req.name));
  reply.Set("arity", JsonValue::Int(
                         static_cast<std::int64_t>(plan->answer_arity())));
  session.AddPlan(req.name, std::move(*plan));
  return reply.Dump();
}

std::string Server::HandleQuery(Session& session, const Request& req) {
  std::shared_ptr<const PreparedQuery> plan;
  if (req.use_prepared) {
    plan = session.FindPlan(req.prepared);
    if (plan == nullptr) {
      return ErrorReply(req.id, "unknown_plan",
                        "no prepared query named \"" + req.prepared +
                            "\" on this session");
    }
  } else {
    ParseError parse_error;
    std::optional<Cq> cq;
    {
      std::unique_lock<std::shared_mutex> lock(universe_mu_);
      cq = ParseCq(universe_, req.query, &parse_error);
    }
    if (!cq.has_value()) {
      return ErrorReply(req.id, "parse_error", Located(parse_error));
    }
    std::optional<PreparedQuery> ad_hoc;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      ad_hoc = snapshots_.reasoner().PrepareDetached(*cq);
    }
    plan = std::make_shared<const PreparedQuery>(std::move(*ad_hoc));
  }

  // The read path: pin the current epoch (one atomic load — never the
  // writer lock) and evaluate against its immutable materialization. The
  // pinned snapshot stays alive for the whole evaluation even if the
  // writer publishes newer epochs meanwhile.
  std::shared_ptr<const EpochSnapshot> snap = snapshots_.Pin();
  const Instance& target = *snap->materialization;
  BDDFC_OBS_SPAN(span, "serve", "serve.query");
  span.Arg("epoch", snap->epoch);

  JsonValue reply = OkReply(req.id);
  reply.Set("epoch", JsonValue::Int(static_cast<std::int64_t>(snap->epoch)));
  // Snapshot answers are complete iff that epoch's chase saturated; the
  // plan's live complete() is meaningless here (it reads live state).
  reply.Set("complete", JsonValue::Bool(snap->saturated));
  switch (req.mode) {
    case QueryMode::kAsk:
      reply.Set("answer", JsonValue::Bool(plan->AskOn(target)));
      break;
    case QueryMode::kCount:
      reply.Set("count", JsonValue::Int(static_cast<std::int64_t>(
                             plan->CountOn(target))));
      break;
    case QueryMode::kAll: {
      std::vector<AnswerTuple> answers = plan->AllOn(target);
      reply.Set("count",
                JsonValue::Int(static_cast<std::int64_t>(answers.size())));
      JsonValue rows = JsonValue::Array();
      {
        // Rendering reads symbol names: shared Universe access, compatible
        // with concurrent renders and with the writer's chase.
        std::shared_lock<std::shared_mutex> lock(universe_mu_);
        for (const AnswerTuple& tuple : answers) {
          JsonValue row = JsonValue::Array();
          for (Term t : tuple) {
            row.Push(JsonValue::Str(universe_->TermName(t)));
          }
          rows.Push(std::move(row));
        }
      }
      reply.Set("answers", std::move(rows));
      break;
    }
  }
  return reply.Dump();
}

std::string Server::HandleAdd(const Request& req) {
  ParseError parse_error;
  std::optional<Instance> parsed;
  {
    std::unique_lock<std::shared_mutex> lock(universe_mu_);
    parsed = ParseInstance(universe_, req.facts, &parse_error);
  }
  if (!parsed.has_value()) {
    return ErrorReply(req.id, "parse_error", Located(parse_error));
  }
  // atoms()[0] is the implicit ⊤ of the scratch instance; the session adds
  // its own.
  const std::vector<Atom>& atoms = parsed->atoms();
  std::vector<Atom> facts(atoms.begin() + 1, atoms.end());
  SnapshotManager::ApplyResult result;
  {
    // The chase only reads interned symbols (plus the atomic null
    // counter), so the writer holds the Universe lock *shared*: renders
    // proceed concurrently, parses (exclusive) are ordered around it.
    std::shared_lock<std::shared_mutex> lock(universe_mu_);
    result = snapshots_.ApplyFacts(facts);
  }
  JsonValue reply = OkReply(req.id);
  reply.Set("added",
            JsonValue::Int(static_cast<std::int64_t>(result.added)));
  reply.Set("epoch", JsonValue::Int(
                         static_cast<std::int64_t>(result.snapshot->epoch)));
  reply.Set("atoms", JsonValue::Int(
                         static_cast<std::int64_t>(result.snapshot->atoms)));
  reply.Set("saturated", JsonValue::Bool(result.snapshot->saturated));
  return reply.Dump();
}

// --- Serve loops -------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

namespace {

// Blocks until `fd` is readable (true), end-of-stream-ish error (false),
// or cancellation (false). Polls in slices so a cancel requested while no
// client is talking still drains promptly.
bool WaitReadable(int fd) {
  while (!obs::CancelRequested()) {
    struct pollfd p = {fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r > 0) return true;
  }
  return false;
}

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

void Server::ServeConnection(Session& session, int in_fd, int out_fd) {
  LineFramer framer(options_.max_line_bytes);
  std::vector<Frame> frames;
  char buf[4096];
  bool eof = false;
  while (!eof) {
    if (!WaitReadable(in_fd)) break;  // cancelled or stream error
    const ssize_t n = ::read(in_fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    frames.clear();
    if (n == 0) {
      eof = true;
      Frame last;
      if (framer.Flush(&last)) frames.push_back(std::move(last));
    } else {
      framer.Feed(std::string_view(buf, static_cast<std::size_t>(n)),
                  &frames);
    }
    // Every frame already read is served — in-flight work drains even
    // when cancellation arrives mid-batch.
    for (const Frame& frame : frames) {
      std::string reply = Dispatch(session, frame);
      reply += '\n';
      if (!WriteAll(out_fd, reply)) {
        eof = true;
        break;
      }
    }
  }
}

int Server::ServeStream(int in_fd, int out_fd) {
  std::signal(SIGPIPE, SIG_IGN);  // a vanished peer is an error, not death
  std::shared_ptr<Session> session = sessions_.Open();
  ServeConnection(*session, in_fd, out_fd);
  sessions_.Close(session->id());
  return obs::CancelRequested() ? obs::kExitInterrupted : 0;
}

int Server::ServeTcp(int port, int announce_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("bddfc_server: socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("bddfc_server: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  {
    const std::string line =
        "LISTENING " + std::to_string(ntohs(addr.sin_port)) + "\n";
    WriteAll(announce_fd, line);
  }

  std::vector<std::thread> threads;
  while (!obs::CancelRequested()) {
    struct pollfd p = {listen_fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(conn_fd);
    }
    threads.emplace_back([this, conn_fd] {
      std::shared_ptr<Session> session = sessions_.Open();
      ServeConnection(*session, conn_fd, conn_fd);
      sessions_.Close(session->id());
      // Deregister before closing: the drain path only shuts down fds
      // still in the list, so a recycled descriptor can never be hit.
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
          if (conn_fds_[i] == conn_fd) {
            conn_fds_.erase(conn_fds_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      ::close(conn_fd);
    });
  }

  // Drain: refuse new connections, wake blocked readers (they finish the
  // frames already read first), join everyone.
  ::close(listen_fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : threads) t.join();
  return obs::CancelRequested() ? obs::kExitInterrupted : 0;
}

#else  // !(__unix__ || __APPLE__)

void Server::ServeConnection(Session&, int, int) {}

int Server::ServeStream(int, int) {
  std::fprintf(stderr, "bddfc_server: stream serving needs POSIX fds\n");
  return 1;
}

int Server::ServeTcp(int, int) {
  std::fprintf(stderr, "bddfc_server: TCP serving needs POSIX sockets\n");
  return 1;
}

#endif

}  // namespace serve
}  // namespace bddfc
