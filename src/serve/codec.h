// The bddfc_server wire codec: newline-delimited JSON requests in, one
// JSON reply line per request out.
//
// Protocol (one JSON object per line; see README "Serving"):
//
//   {"op":"ping"}
//   {"op":"status"}
//   {"op":"metrics"}
//   {"op":"analyze"}
//   {"op":"prepare","name":"q1","query":"?(x) :- Person(x)"}
//   {"op":"query","query":"?(x) :- Person(x)","mode":"all"}
//   {"op":"query","prepared":"q1","mode":"count"}
//   {"op":"add","facts":"Person(dana). Advises(dana,eli)."}
//
// Every request may carry an integer "id", echoed verbatim in the reply.
// Replies always carry "ok"; failures are {"ok":false,"error":CODE,
// "message":...} — a malformed, truncated or oversized client line yields
// such a reply, never a crash or CHECK failure (the hardened JsonParse in
// src/base/json.h does the heavy lifting; this layer adds line framing and
// request validation on top).

#ifndef BDDFC_SERVE_CODEC_H_
#define BDDFC_SERVE_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/json.h"

namespace bddfc {
namespace serve {

/// One framed input line. An `oversized` frame stands for a line that
/// exceeded the framer's byte budget: its text is dropped (the framer
/// never buffers unbounded client data) and the dispatcher replies with an
/// error instead of processing it.
struct Frame {
  std::string line;
  bool oversized = false;
};

/// Incremental newline framing over an arbitrary byte stream: feed network
/// reads of any granularity, get complete lines out. '\r\n' is tolerated
/// (the '\r' is stripped); empty lines are dropped (harmless keep-alive
/// noise). Lines longer than `max_line_bytes` are discarded as they
/// stream through and surface as one oversized Frame each.
class LineFramer {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;

  explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends `data` to the stream; every line completed by it is appended
  /// to `out`.
  void Feed(std::string_view data, std::vector<Frame>* out);

  /// Flushes a trailing unterminated line at end-of-stream (a client that
  /// closed without a final newline still gets its last request served).
  /// Returns false when nothing was pending.
  bool Flush(Frame* out);

 private:
  std::size_t max_line_bytes_;
  std::string partial_;
  bool discarding_ = false;  // inside an oversized line, dropping bytes
};

/// Parsed request operations. kQuery either carries inline query text or
/// references a plan prepared earlier on the same session.
enum class RequestOp {
  kPing,
  kStatus,
  kMetrics,
  kAnalyze,
  kPrepare,
  kQuery,
  kAdd,
};

/// How a kQuery responds: full answer set, count only, or Boolean.
enum class QueryMode { kAll, kCount, kAsk };

struct Request {
  RequestOp op = RequestOp::kPing;
  std::optional<std::int64_t> id;  // echoed in the reply when present
  std::string query;               // kQuery/kPrepare: inline CQ text
  bool use_prepared = false;       // kQuery: execute a prepared plan
  std::string prepared;            // kQuery: name of that plan
  std::string name;                // kPrepare: plan name to bind
  std::string facts;               // kAdd: facts text (parser.h syntax)
  QueryMode mode = QueryMode::kAll;
};

/// Validates a parsed JSON document as a Request. On failure returns
/// std::nullopt with a human-readable message in `*error` (and the
/// request's id, if one was readable, in `*id` so the error reply can echo
/// it).
std::optional<Request> DecodeRequest(const JsonValue& doc, std::string* error,
                                     std::optional<std::int64_t>* id);

/// One serialized error reply line (no trailing newline). `code` is a
/// stable machine-readable token (e.g. "bad_json", "bad_request",
/// "parse_error", "unknown_plan", "oversized"); `message` is free-form.
std::string ErrorReply(std::optional<std::int64_t> id, std::string_view code,
                       std::string_view message);

/// Starts a success reply: {"ok":true} with the id echoed when present.
JsonValue OkReply(std::optional<std::int64_t> id);

}  // namespace serve
}  // namespace bddfc

#endif  // BDDFC_SERVE_CODEC_H_
