#include "serve/codec.h"

#include <utility>

namespace bddfc {
namespace serve {

void LineFramer::Feed(std::string_view data, std::vector<Frame>* out) {
  std::size_t start = 0;
  while (start <= data.size()) {
    const std::size_t nl = data.find('\n', start);
    if (nl == std::string_view::npos) {
      std::string_view rest = data.substr(start);
      if (discarding_) return;
      if (partial_.size() + rest.size() > max_line_bytes_) {
        discarding_ = true;
        partial_.clear();
        partial_.shrink_to_fit();
      } else {
        partial_.append(rest);
      }
      return;
    }
    if (discarding_) {
      // The oversized line just ended; report it and resume framing.
      discarding_ = false;
      out->push_back(Frame{std::string(), /*oversized=*/true});
    } else if (partial_.size() + (nl - start) > max_line_bytes_) {
      partial_.clear();
      out->push_back(Frame{std::string(), /*oversized=*/true});
    } else {
      std::string line = std::move(partial_);
      partial_.clear();
      line.append(data.substr(start, nl - start));
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) out->push_back(Frame{std::move(line), false});
    }
    start = nl + 1;
  }
}

bool LineFramer::Flush(Frame* out) {
  if (discarding_) {
    discarding_ = false;
    *out = Frame{std::string(), /*oversized=*/true};
    return true;
  }
  if (partial_.empty()) return false;
  std::string line = std::move(partial_);
  partial_.clear();
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return false;
  *out = Frame{std::move(line), false};
  return true;
}

std::optional<Request> DecodeRequest(const JsonValue& doc, std::string* error,
                                     std::optional<std::int64_t>* id) {
  if (id != nullptr) id->reset();
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }
  Request req;
  if (const JsonValue* v = doc.Find("id"); v != nullptr) {
    if (!v->is_int()) {
      *error = "\"id\" must be an integer";
      return std::nullopt;
    }
    req.id = v->AsInt();
    if (id != nullptr) *id = req.id;
  }
  const JsonValue* op = doc.FindString("op");
  if (op == nullptr) {
    *error = "missing string field \"op\"";
    return std::nullopt;
  }
  const std::string& name = op->AsString();
  if (name == "ping") {
    req.op = RequestOp::kPing;
  } else if (name == "status") {
    req.op = RequestOp::kStatus;
  } else if (name == "metrics") {
    req.op = RequestOp::kMetrics;
  } else if (name == "analyze") {
    req.op = RequestOp::kAnalyze;
  } else if (name == "prepare") {
    req.op = RequestOp::kPrepare;
    const JsonValue* plan_name = doc.FindString("name");
    const JsonValue* query = doc.FindString("query");
    if (plan_name == nullptr || plan_name->AsString().empty()) {
      *error = "\"prepare\" needs a non-empty string \"name\"";
      return std::nullopt;
    }
    if (query == nullptr) {
      *error = "\"prepare\" needs a string \"query\"";
      return std::nullopt;
    }
    req.name = plan_name->AsString();
    req.query = query->AsString();
  } else if (name == "query") {
    req.op = RequestOp::kQuery;
    const JsonValue* query = doc.FindString("query");
    const JsonValue* prepared = doc.FindString("prepared");
    if ((query == nullptr) == (prepared == nullptr)) {
      *error = "\"query\" needs exactly one of \"query\" or \"prepared\"";
      return std::nullopt;
    }
    if (query != nullptr) req.query = query->AsString();
    if (prepared != nullptr) {
      req.use_prepared = true;
      req.prepared = prepared->AsString();
    }
    if (const JsonValue* mode = doc.Find("mode"); mode != nullptr) {
      if (!mode->is_string()) {
        *error = "\"mode\" must be a string";
        return std::nullopt;
      }
      const std::string& m = mode->AsString();
      if (m == "all") {
        req.mode = QueryMode::kAll;
      } else if (m == "count") {
        req.mode = QueryMode::kCount;
      } else if (m == "ask") {
        req.mode = QueryMode::kAsk;
      } else {
        *error = "\"mode\" must be \"all\", \"count\" or \"ask\"";
        return std::nullopt;
      }
    }
  } else if (name == "add") {
    req.op = RequestOp::kAdd;
    const JsonValue* facts = doc.FindString("facts");
    if (facts == nullptr) {
      *error = "\"add\" needs a string \"facts\"";
      return std::nullopt;
    }
    req.facts = facts->AsString();
  } else {
    *error = "unknown op \"" + name + "\"";
    return std::nullopt;
  }
  return req;
}

std::string ErrorReply(std::optional<std::int64_t> id, std::string_view code,
                       std::string_view message) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(false));
  if (id.has_value()) reply.Set("id", JsonValue::Int(*id));
  reply.Set("error", JsonValue::Str(std::string(code)));
  reply.Set("message", JsonValue::Str(std::string(message)));
  return reply.Dump();
}

JsonValue OkReply(std::optional<std::int64_t> id) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  if (id.has_value()) reply.Set("id", JsonValue::Int(*id));
  return reply;
}

}  // namespace serve
}  // namespace bddfc
