#include "serve/snapshot.h"

#include <utility>

#include "obs/obs.h"

namespace bddfc {
namespace serve {

namespace {

ReasonerOptions ForceMaterialize(ReasonerOptions options) {
  options.strategy = AnswerStrategy::kMaterialize;
  return options;
}

}  // namespace

SnapshotManager::SnapshotManager(const Instance& database, RuleSet rules,
                                 ReasonerOptions options)
    : reasoner_(database, std::move(rules), ForceMaterialize(options)) {
  reasoner_.Materialize();
  current_.store(BuildSnapshot(0), std::memory_order_release);
}

std::shared_ptr<const EpochSnapshot> SnapshotManager::BuildSnapshot(
    std::uint64_t epoch) {
  BDDFC_OBS_SPAN(span, "serve", "serve.snapshot_publish");
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = epoch;
  snap->base_atoms = reasoner_.database().size();
  const ReasonerStats& stats = reasoner_.stats();
  snap->saturated = stats.chase_saturated;
  snap->hit_bounds = stats.chase_hit_bounds;
  // The deep copy goes through FactStore::Clone(): atom order, index
  // structures and run layout are preserved, so queries against the
  // snapshot behave exactly like queries against the live result.
  snap->materialization =
      std::make_shared<const Instance>(reasoner_.Materialize());
  snap->atoms = snap->materialization->size();
  span.Arg("epoch", epoch);
  span.Arg("atoms", snap->atoms);
  static obs::Counter* published =
      obs::Metrics().GetCounter("serve.snapshots_published");
  published->Add(1);
  return snap;
}

SnapshotManager::ApplyResult SnapshotManager::ApplyFacts(
    const std::vector<Atom>& facts) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  BDDFC_OBS_SPAN(span, "serve", "serve.apply_facts");
  span.Arg("batch", facts.size());
  ApplyResult result;
  result.added = reasoner_.AddFacts(facts);
  span.Arg("added", result.added);
  if (result.added == 0) {
    result.snapshot = Pin();
    return result;
  }
  const std::uint64_t next_epoch = Pin()->epoch + 1;
  result.snapshot = BuildSnapshot(next_epoch);
  current_.store(result.snapshot, std::memory_order_release);
  return result;
}

}  // namespace serve
}  // namespace bddfc
