// Section 4.2 — reduction to binary signatures by reification.
//
// For every predicate A of arity n > 2, reify introduces binary predicates
// A_1, …, A_n, and an atom A(x_1,…,x_n) becomes { A_i(x_i, x_α) | i ≤ n }
// with x_α a fresh "atom witness" (a fresh existential variable in rule
// heads, a fresh universal variable in rule bodies and queries, a fresh
// null in instances). Lemma 19 gives Ch(reify(J),reify(S)) ↔
// reify(Ch(J,S)); Lemma 20 shows reification preserves UCQ-rewritability.
//
// (The paper's displayed index set reads 1 < i ≤ n; we include i = 1 as the
// surrounding definitions require — reify(A) is defined as the full set
// {A_1,…,A_{ar(A)}} — so no argument position is dropped.)

#ifndef BDDFC_SURGERY_REIFY_H_
#define BDDFC_SURGERY_REIFY_H_

#include <unordered_map>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace surgery {

/// Shared mapping from higher-arity predicates to their binary components.
/// Reifying rules, instances and queries against the same Reifier keeps the
/// component predicates aligned.
class Reifier {
 public:
  explicit Reifier(Universe* universe);

  /// The binary components reify(A); computed on first use. For predicates
  /// of arity ≤ 2 returns an empty vector (they are kept as-is).
  const std::vector<PredicateId>& ComponentsOf(PredicateId pred);

  /// reify(α) appended to `out`; fresh witness produced by `witness()`.
  void ReifyAtom(const Atom& atom, const std::function<Term()>& witness,
                 std::vector<Atom>* out);

  RuleSet ReifyRules(const RuleSet& rules);
  Instance ReifyInstance(const Instance& instance);
  Cq ReifyCq(const Cq& q);

  /// Lemma 20's auxiliary projection rules ρ_A:
  ///   A(x_1,…,x_n) → ∃z ⋀_i A_i(x_i, z)
  /// for every higher-arity predicate seen so far.
  RuleSet ProjectionRules();

  Universe* universe() const { return universe_; }

 private:
  Universe* universe_;
  std::unordered_map<PredicateId, std::vector<PredicateId>> components_;
};

/// True if every predicate of the rule set has arity ≤ 2.
bool IsBinarySignature(const RuleSet& rules, const Universe& universe);

}  // namespace surgery
}  // namespace bddfc

#endif  // BDDFC_SURGERY_REIFY_H_
