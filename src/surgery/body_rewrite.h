// Section 4.4 — rewriting bodies: the rew(S) surgery (Definition 29,
// following [26]).
//
// For every existential rule ρ = B(x̄,ȳ) → ∃z̄ H(ȳ,z̄), the rewriting of the
// body CQ ∃x̄ B (with the frontier ȳ as answer tuple) against S produces
// disjuncts q(x̄',ȳ'); each becomes a new rule q → ∃z̄ H(ȳ',z̄). Then
// rew(S) = S ∪ ⋃_ρ rew(ρ,S). Lemma 30: Ch(J,S) ↔ Ch(J,rew(S)) for bdd S;
// Lemma 31: rew preserves UCQ-rewritability, predicate-uniqueness and
// forward-existentiality; Lemma 32: rew(S) is quick.

#ifndef BDDFC_SURGERY_BODY_REWRITE_H_
#define BDDFC_SURGERY_BODY_REWRITE_H_

#include "logic/rule.h"
#include "logic/universe.h"
#include "rewriting/rewriter.h"

namespace bddfc {
namespace surgery {

/// Result of the rew surgery.
struct BodyRewriteResult {
  RuleSet rules;
  /// False when some body rewriting hit the rewriter bounds (then `rules`
  /// is an under-approximation of rew(S) and quickness may fail).
  bool complete = true;
  /// Rules added on top of S.
  std::size_t added = 0;
};

/// rew(S) of Definition 29, applied to every rule. (Definition 29 is
/// stated for existential rules; rewriting Datalog bodies as well is
/// harmless — heads are unchanged, so Lemma 31's preservation argument
/// goes through verbatim — and it is what makes the operational quickness
/// check of Definition 26 pass for atoms derived purely by Datalog chains
/// over database terms.)
BodyRewriteResult BodyRewrite(const RuleSet& rules, Universe* universe,
                              RewriterOptions options = {});

}  // namespace surgery
}  // namespace bddfc

#endif  // BDDFC_SURGERY_BODY_REWRITE_H_
