#include "surgery/streamline.h"

#include "base/check.h"

namespace bddfc {
namespace surgery {

StreamlinedRule StreamlineRule(const Rule& rule, Universe* universe,
                               const std::string& tag) {
  BDDFC_CHECK(!rule.IsDatalog());

  const std::vector<Term>& frontier = rule.frontier();
  const std::vector<Term>& existentials = rule.existentials();
  Term w = universe->FreshVariable("w");

  // Fresh predicates for this rule.
  PredicateId a0 = universe->FreshPredicate("A0_" + tag, 1);
  std::vector<PredicateId> a_y;
  a_y.reserve(frontier.size());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    a_y.push_back(
        universe->FreshPredicate("Ay" + std::to_string(i) + "_" + tag, 2));
  }
  // One B predicate per (y' ∈ ȳ ∪ {w}, z ∈ z̄) pair; index f = frontier
  // position or |frontier| for w.
  std::vector<std::vector<PredicateId>> b(frontier.size() + 1);
  for (std::size_t f = 0; f <= frontier.size(); ++f) {
    b[f].reserve(existentials.size());
    for (std::size_t zi = 0; zi < existentials.size(); ++zi) {
      b[f].push_back(universe->FreshPredicate(
          "B" + std::to_string(f) + "_" + std::to_string(zi) + "_" + tag, 2));
    }
  }

  // ρ_init.
  std::vector<Atom> init_head;
  init_head.push_back(Atom(a0, {w}));
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    init_head.push_back(Atom(a_y[i], {frontier[i], w}));
  }
  Rule init(rule.body(), init_head, tag + "_init");

  // ρ_∃: body = ρ_init's head; head = all B^ρ_{y',z}(y', z).
  std::vector<Atom> exists_head;
  for (std::size_t f = 0; f <= frontier.size(); ++f) {
    Term y_prime = f < frontier.size() ? frontier[f] : w;
    for (std::size_t zi = 0; zi < existentials.size(); ++zi) {
      exists_head.push_back(Atom(b[f][zi], {y_prime, existentials[zi]}));
    }
  }
  Rule exists(init_head, exists_head, tag + "_exists");

  // ρ_DL: body = ρ_∃'s head; head = the original head.
  Rule datalog(exists_head, rule.head(), tag + "_dl");

  return {std::move(init), std::move(exists), std::move(datalog)};
}

RuleSet Streamline(const RuleSet& rules, Universe* universe) {
  RuleSet out;
  int counter = 0;
  for (const Rule& rule : rules) {
    if (rule.IsDatalog()) {
      out.push_back(rule);
      continue;
    }
    std::string tag = rule.label().empty()
                          ? "r" + std::to_string(counter)
                          : rule.label();
    ++counter;
    StreamlinedRule split = StreamlineRule(rule, universe, tag);
    out.push_back(std::move(split.init));
    out.push_back(std::move(split.exists));
    out.push_back(std::move(split.datalog));
  }
  return out;
}

}  // namespace surgery
}  // namespace bddfc
