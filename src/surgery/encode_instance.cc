#include "surgery/encode_instance.h"

#include "base/check.h"
#include "logic/substitution.h"

namespace bddfc {
namespace surgery {

Rule TopToInstanceRule(const Instance& j, Universe* universe) {
  Substitution to_vars;
  for (Term t : j.ActiveDomain()) {
    to_vars.Bind(t, universe->FreshVariable("enc"));
  }
  std::vector<Atom> head;
  for (const Atom& a : j.atoms()) {
    if (a.pred() == universe->top()) continue;  // ⊤ is implicit
    head.push_back(to_vars.Apply(a));
  }
  BDDFC_CHECK(!head.empty());
  std::vector<Atom> body = {Atom(universe->top(), {})};
  return Rule(std::move(body), std::move(head), "top_to_instance");
}

RuleSet EncodeInstance(const RuleSet& rules, const Instance& j,
                       Universe* universe) {
  RuleSet out = rules;
  out.push_back(TopToInstanceRule(j, universe));
  return out;
}

Instance FlexibleCopy(const Instance& j) {
  Universe* universe = j.universe();
  Substitution to_nulls;
  for (Term t : j.ActiveDomain()) {
    to_nulls.Bind(t, universe->FreshNull());
  }
  return j.Map(to_nulls);
}

}  // namespace surgery
}  // namespace bddfc
