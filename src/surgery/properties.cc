#include "surgery/properties.h"

#include <unordered_set>

#include "base/check.h"
#include "homomorphism/homomorphism.h"

namespace bddfc {
namespace surgery {

bool IsForwardExistential(const RuleSet& rules) {
  for (const Rule& rule : rules) {
    if (rule.IsDatalog()) continue;
    for (const Atom& a : rule.head()) {
      switch (a.arity()) {
        case 0:
          break;
        case 1:
          // Allowed with any variable (see header).
          break;
        case 2:
          if (!rule.IsFrontierVar(a.arg(0)) ||
              !rule.IsExistentialVar(a.arg(1))) {
            return false;
          }
          break;
        default:
          return false;  // definition presupposes binary signature
      }
    }
  }
  return true;
}

bool IsPredicateUnique(const RuleSet& rules) {
  for (const Rule& rule : rules) {
    if (rule.IsDatalog()) continue;
    std::unordered_set<PredicateId> seen;
    for (const Atom& a : rule.head()) {
      if (!seen.insert(a.pred()).second) return false;
    }
  }
  return true;
}

bool IsQuick(const RuleSet& rules, const std::vector<Instance>& test_instances,
             ChaseOptions options) {
  for (const Instance& db : test_instances) {
    ObliviousChase chase(db, rules, options);
    chase.Run();
    const Instance& full = chase.Result();
    Instance one_step = chase.Prefix(std::min<std::size_t>(
        1, chase.StepsExecuted()));

    for (const Atom& beta : full.atoms()) {
      // Does β qualify? Every term must be a database term or a chase term
      // whose creating frontier lies inside adom(I).
      bool qualifies = true;
      for (Term t : beta.args()) {
        if (db.InActiveDomain(t)) continue;
        const ChaseTermInfo* info = chase.InfoOf(t);
        if (info == nullptr) {
          qualifies = false;  // foreign term (cannot happen in practice)
          break;
        }
        for (Term f : info->frontier) {
          if (!db.InActiveDomain(f)) {
            qualifies = false;
            break;
          }
        }
        if (!qualifies) break;
      }
      if (!qualifies) continue;

      // β must have an image in Ch_1 fixing its database terms.
      Substitution seed;
      for (Term t : beta.args()) {
        if (db.InActiveDomain(t)) seed.Bind(t, t);
      }
      HomSearch search({beta}, &one_step);
      if (!search.Exists(seed)) return false;
    }
  }
  return true;
}

std::string RegalityReport::ToString() const {
  std::string out;
  auto flag = [&out](const char* name, bool value) {
    out += name;
    out += value ? ": yes" : ": NO";
    out += '\n';
  };
  flag("binary signature", binary_signature);
  flag("forward-existential", forward_existential);
  flag("predicate-unique", predicate_unique);
  flag("quick", quick);
  flag("UCQ-rewritable (probed)", ucq_rewritable);
  out += IsRegal() ? "=> regal\n" : "=> not regal\n";
  return out;
}

RegalityReport CheckRegal(const RuleSet& rules, Universe* universe,
                          const std::vector<Instance>& test_instances,
                          RewriterOptions rewriter_options,
                          ChaseOptions chase_options) {
  RegalityReport report;
  report.binary_signature = true;
  for (PredicateId p : SignatureOf(rules)) {
    if (universe->ArityOf(p) > 2) report.binary_signature = false;
  }
  report.forward_existential = IsForwardExistential(rules);
  report.predicate_unique = IsPredicateUnique(rules);
  report.quick = IsQuick(rules, test_instances, chase_options);

  // Probe UCQ-rewritability with the atomic query of every predicate.
  report.ucq_rewritable = true;
  UcqRewriter rewriter(rules, universe, rewriter_options);
  for (PredicateId p : SignatureOf(rules)) {
    int arity = universe->ArityOf(p);
    std::vector<Term> args;
    for (int i = 0; i < arity; ++i) {
      args.push_back(universe->FreshVariable("probe"));
    }
    Cq atomic({Atom(p, args)}, args);
    RewriteResult result = rewriter.Rewrite(atomic);
    if (!result.saturated) {
      report.ucq_rewritable = false;
      break;
    }
  }
  return report;
}

RuleSet DefineRelationByUcq(const RuleSet& rules, const Ucq& definition,
                            PredicateId e) {
  RuleSet out = rules;
  for (const Cq& q : definition.disjuncts()) {
    BDDFC_CHECK_EQ(q.answers().size(), 2u);
    out.push_back(Rule(q.atoms(),
                       {Atom(e, {q.answers()[0], q.answers()[1]})},
                       "define_E"));
  }
  return out;
}

}  // namespace surgery
}  // namespace bddfc
