#include "surgery/reify.h"

#include "base/check.h"

namespace bddfc {
namespace surgery {

Reifier::Reifier(Universe* universe) : universe_(universe) {
  BDDFC_CHECK(universe != nullptr);
}

const std::vector<PredicateId>& Reifier::ComponentsOf(PredicateId pred) {
  auto it = components_.find(pred);
  if (it != components_.end()) return it->second;
  std::vector<PredicateId> comps;
  int arity = universe_->ArityOf(pred);
  if (arity > 2) {
    comps.reserve(arity);
    // Copy, not reference: FreshPredicate interns new names, which may
    // reallocate the symbol table's storage and invalidate the reference.
    const std::string base = universe_->PredicateName(pred);
    for (int i = 1; i <= arity; ++i) {
      comps.push_back(universe_->FreshPredicate(
          base + "_r" + std::to_string(i), 2));
    }
  }
  return components_.emplace(pred, std::move(comps)).first->second;
}

void Reifier::ReifyAtom(const Atom& atom,
                        const std::function<Term()>& witness,
                        std::vector<Atom>* out) {
  if (atom.arity() <= 2) {
    out->push_back(atom);
    return;
  }
  const std::vector<PredicateId>& comps = ComponentsOf(atom.pred());
  Term w = witness();
  for (std::size_t i = 0; i < atom.arity(); ++i) {
    out->push_back(Atom(comps[i], {atom.arg(i), w}));
  }
}

RuleSet Reifier::ReifyRules(const RuleSet& rules) {
  RuleSet out;
  out.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::vector<Atom> body;
    for (const Atom& a : rule.body()) {
      // Body witnesses are universally quantified fresh variables.
      ReifyAtom(a, [&] { return universe_->FreshVariable("rw"); }, &body);
    }
    std::vector<Atom> head;
    for (const Atom& a : rule.head()) {
      // Head witnesses are existential: a fresh variable not in the body.
      ReifyAtom(a, [&] { return universe_->FreshVariable("rw"); }, &head);
    }
    out.push_back(Rule(std::move(body), std::move(head), rule.label()));
  }
  return out;
}

Instance Reifier::ReifyInstance(const Instance& instance) {
  Instance out(universe_);
  std::vector<Atom> atoms;
  for (const Atom& a : instance.atoms()) {
    atoms.clear();
    ReifyAtom(a, [&] { return universe_->FreshNull(); }, &atoms);
    out.AddAtoms(atoms);
  }
  return out;
}

Cq Reifier::ReifyCq(const Cq& q) {
  std::vector<Atom> atoms;
  for (const Atom& a : q.atoms()) {
    ReifyAtom(a, [&] { return universe_->FreshVariable("rw"); }, &atoms);
  }
  return Cq(std::move(atoms), q.answers());
}

RuleSet Reifier::ProjectionRules() {
  RuleSet out;
  for (const auto& [pred, comps] : components_) {
    if (comps.empty()) continue;
    int arity = universe_->ArityOf(pred);
    std::vector<Term> args;
    for (int i = 0; i < arity; ++i) {
      args.push_back(universe_->FreshVariable("p"));
    }
    Term z = universe_->FreshVariable("p");
    std::vector<Atom> head;
    for (int i = 0; i < arity; ++i) {
      head.push_back(Atom(comps[i], {args[i], z}));
    }
    out.push_back(Rule({Atom(pred, args)}, std::move(head),
                       "project_" + universe_->PredicateName(pred)));
  }
  return out;
}

bool IsBinarySignature(const RuleSet& rules, const Universe& universe) {
  for (PredicateId p : SignatureOf(rules)) {
    if (universe.ArityOf(p) > 2) return false;
  }
  return true;
}

}  // namespace surgery
}  // namespace bddfc
