// Section 4.1 — encoding instances in rule sets.
//
// Definition 12: for an instance J, the rule ⊤ → J existentially quantifies
// a fresh variable for every element of adom(J). Corollary 15 then gives
// Ch(J,S) ↔ Ch({⊤}, S ∪ {⊤ → J}), and Observation 16 shows the surgery
// preserves UCQ-rewritability.
//
// Note on rigidity: the paper's instances are sets of atoms over
// *variables*, so every element of adom(J) is flexible. Our parsed database
// instances use constants (rigid under homomorphisms); FlexibleCopy
// produces the variable-style reading of an instance, which is the right
// left-hand side when verifying Corollary 15.

#ifndef BDDFC_SURGERY_ENCODE_INSTANCE_H_
#define BDDFC_SURGERY_ENCODE_INSTANCE_H_

#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace surgery {

/// Definition 12: the rule ⊤ → J (every adom element becomes an existential
/// variable of the head).
Rule TopToInstanceRule(const Instance& j, Universe* universe);

/// The surgery of Section 4.1: S ∪ {⊤ → J}.
RuleSet EncodeInstance(const RuleSet& rules, const Instance& j,
                       Universe* universe);

/// The instance with every term replaced by a fresh labeled null — the
/// paper's "instance over variables" reading of a database.
Instance FlexibleCopy(const Instance& j);

}  // namespace surgery
}  // namespace bddfc

#endif  // BDDFC_SURGERY_ENCODE_INSTANCE_H_
