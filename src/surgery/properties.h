// Rule-set property checkers of Sections 4.3–4.4: forward-existential
// (Definition 21), predicate-unique (Definition 22), quick (Definition 26),
// and regal (Definition 27), plus the Section 6 device for tournaments over
// UCQ-definable relations.

#ifndef BDDFC_SURGERY_PROPERTIES_H_
#define BDDFC_SURGERY_PROPERTIES_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"
#include "rewriting/rewriter.h"

namespace bddfc {
namespace surgery {

/// Definition 21: every binary head atom of a non-Datalog rule has a
/// frontier first argument and an existential second argument. Unary head
/// atoms are permitted with either kind of variable (the definition
/// constrains the edge-producing atoms; ▽(S)'s A^ρ_0(w) is unary with w
/// existential). Head atoms of arity > 2 in a non-Datalog rule fail the
/// check (the definition presupposes a binary signature).
bool IsForwardExistential(const RuleSet& rules);

/// Definition 22: in every non-Datalog rule, each predicate occurs at most
/// once in the head.
bool IsPredicateUnique(const RuleSet& rules);

/// Operational check of Definition 26 ("quick"): for each test instance I,
/// chase a bounded prefix of Ch(I,R); every atom β all of whose
/// adom(I)-anchored terms lie in adom(I) — i.e. β's terms are database
/// terms or chase terms created with frontier inside adom(I) — must have an
/// image in Ch_1(I,R) fixing β's database terms. Sound for refutation
/// (returns false only on a genuine violation); "true" certifies quickness
/// up to the chase bound on the supplied family.
bool IsQuick(const RuleSet& rules, const std::vector<Instance>& test_instances,
             ChaseOptions options = {});

/// Aggregate regality report (Definition 27) for a rule set over a binary
/// signature. UCQ-rewritability is probed by rewriting the atomic query of
/// every predicate of the signature; quickness by IsQuick on the supplied
/// instances.
struct RegalityReport {
  bool binary_signature = false;
  bool forward_existential = false;
  bool predicate_unique = false;
  bool quick = false;
  bool ucq_rewritable = false;  // all probe queries saturated
  bool IsRegal() const {
    return binary_signature && forward_existential && predicate_unique &&
           quick && ucq_rewritable;
  }
  std::string ToString() const;
};

RegalityReport CheckRegal(const RuleSet& rules, Universe* universe,
                          const std::vector<Instance>& test_instances,
                          RewriterOptions rewriter_options = {},
                          ChaseOptions chase_options = {});

/// Section 6 ("Tournament Definition"): extends the rule set with
/// q_i(x,y) → E(x,y) for every disjunct of a binary UCQ, making E the
/// UCQ-defined relation. E should be fresh to preserve UCQ-rewritability.
RuleSet DefineRelationByUcq(const RuleSet& rules, const Ucq& definition,
                            PredicateId e);

}  // namespace surgery
}  // namespace bddfc

#endif  // BDDFC_SURGERY_PROPERTIES_H_
