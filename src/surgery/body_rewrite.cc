#include "surgery/body_rewrite.h"

#include "base/check.h"
#include "logic/substitution.h"

namespace bddfc {
namespace surgery {

BodyRewriteResult BodyRewrite(const RuleSet& rules, Universe* universe,
                              RewriterOptions options) {
  BodyRewriteResult result;
  result.rules = rules;
  UcqRewriter rewriter(rules, universe, options);

  for (const Rule& rule : rules) {
    // The body as a CQ with the frontier as answer tuple.
    Cq body_query(rule.body(), rule.frontier());
    RewriteResult rewritten = rewriter.Rewrite(body_query);
    if (!rewritten.saturated) result.complete = false;

    for (const Cq& disjunct : rewritten.ucq.disjuncts()) {
      // σ: original frontier position i ↦ the disjunct's (possibly
      // specialized) answer variable i. Head existentials are untouched.
      BDDFC_CHECK_EQ(disjunct.answers().size(), rule.frontier().size());
      Substitution sigma;
      for (std::size_t i = 0; i < rule.frontier().size(); ++i) {
        sigma.Bind(rule.frontier()[i], disjunct.answers()[i]);
      }
      Rule candidate(disjunct.atoms(), sigma.Apply(rule.head()),
                     rule.label().empty() ? "rew" : rule.label() + "_rew");
      bool duplicate = false;
      for (const Rule& existing : result.rules) {
        if (existing == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        result.rules.push_back(std::move(candidate));
        ++result.added;
      }
    }
  }
  return result;
}

}  // namespace surgery
}  // namespace bddfc
