// Section 4.3 — streamlining heads: the ▽(S) surgery.
//
// Every non-Datalog rule ρ = B(x̄,ȳ) → ∃z̄ H(ȳ,z̄) is split into three:
//
//   ρ_init:  B  →  ∃w  A^ρ_0(w) ∧ ⋀_{y∈ȳ} A^ρ_y(y,w)
//   ρ_∃:     A^ρ_0(w) ∧ ⋀_{y∈ȳ} A^ρ_y(y,w)
//              →  ∃z̄  ⋀_{y'∈ȳ∪{w}} ⋀_{z∈z̄} B^ρ_{y',z}(y',z)
//   ρ_DL:    ⋀_{y'∈ȳ∪{w}} ⋀_{z∈z̄} B^ρ_{y',z}(y',z)  →  H(ȳ,z̄)
//
// with fresh predicates A^ρ_0 (unary), A^ρ_y and B^ρ_{y',z} (binary, one
// per index — which is what makes ▽(S) predicate-unique, Definition 22).
// Every binary head atom of ρ_init and ρ_∃ has a frontier first argument
// and an existential second argument (forward-existential, Definition 21).
// Lemma 24: Ch(J,S) ↔ Ch(J,▽(S)) restricted to the signature of S (the
// three stages dilate chase steps by a factor of 3, Lemma 48). Lemma 25:
// ▽ preserves UCQ-rewritability.
//
// Datalog rules of S are kept unchanged: Definitions 21/22 only constrain
// non-Datalog rules, and the split of a rule without existential variables
// would produce an empty ρ_∃ head.

#ifndef BDDFC_SURGERY_STREAMLINE_H_
#define BDDFC_SURGERY_STREAMLINE_H_

#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace surgery {

/// The three-way split of one non-Datalog rule.
struct StreamlinedRule {
  Rule init;
  Rule exists;
  Rule datalog;
};

/// Splits one non-Datalog rule (aborts on Datalog input).
StreamlinedRule StreamlineRule(const Rule& rule, Universe* universe,
                               const std::string& tag);

/// ▽(S): every non-Datalog rule replaced by its three-way split; Datalog
/// rules kept.
RuleSet Streamline(const RuleSet& rules, Universe* universe);

}  // namespace surgery
}  // namespace bddfc

#endif  // BDDFC_SURGERY_STREAMLINE_H_
