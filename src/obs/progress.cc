#include "obs/progress.h"

#include <chrono>
#include <cinttypes>

namespace bddfc {
namespace obs {

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressMonitor::ProgressMonitor(MetricsRegistry* registry, Options options)
    : registry_(ResolveMetrics(registry)),
      options_(options),
      out_(options.out != nullptr ? options.out : stderr) {
  start_ns_ = SteadyNowNs();
  last_atoms_ = registry_->GetGauge("chase.atoms")->Value();
  thread_ = std::thread([this] { Loop(); });
}

ProgressMonitor::~ProgressMonitor() { Stop(); }

void ProgressMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  PrintLine(/*final_line=*/true);
}

void ProgressMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                     [this] { return stop_requested_; })) {
      return;
    }
    PrintLine(/*final_line=*/false);
    ++ticks_;
  }
}

void ProgressMonitor::PrintLine(bool final_line) {
  const std::int64_t step = registry_->GetGauge("chase.step")->Value();
  const std::int64_t atoms = registry_->GetGauge("chase.atoms")->Value();
  const std::uint64_t triggers =
      registry_->GetCounter("chase.triggers_fired")->Value();
  const std::int64_t live_rules =
      registry_->GetGauge("sched.active_rules")->Value();
  const double rss_mb =
      static_cast<double>(CurrentRssBytes()) / (1024.0 * 1024.0);
  const double elapsed_s =
      static_cast<double>(SteadyNowNs() - start_ns_) / 1e9;

  if (final_line) {
    std::fprintf(out_,
                 "[progress] done: steps %" PRId64 "  atoms %" PRId64
                 "  triggers %" PRIu64 "  wall %.1fs  rss %.0f MB\n",
                 step, atoms, triggers, elapsed_s, rss_mb);
    std::fflush(out_);
    return;
  }

  const std::int64_t delta = atoms - last_atoms_;
  const double interval_s =
      static_cast<double>(options_.interval_ms) / 1000.0;
  const double rate =
      interval_s > 0 ? static_cast<double>(delta) / interval_s : 0.0;
  char suffix[128] = "";
  if (options_.watchdog_max_atoms > 0 && !budget_warned_ &&
      static_cast<double>(atoms) >=
          kBudgetWarnFraction *
              static_cast<double>(options_.watchdog_max_atoms)) {
    budget_warned_ = true;
    std::snprintf(suffix, sizeof(suffix),
                  "  [watchdog: %.0f%% of atom budget — possible divergence]",
                  100.0 * static_cast<double>(atoms) /
                      static_cast<double>(options_.watchdog_max_atoms));
  }
  if (delta == 0) {
    ++stalled_intervals_;
    if (options_.stall_intervals > 0 &&
        stalled_intervals_ == options_.stall_intervals) {
      std::snprintf(suffix, sizeof(suffix),
                    "  [watchdog: no new atoms for %.0fs]",
                    static_cast<double>(stalled_intervals_) * interval_s);
    }
  } else {
    stalled_intervals_ = 0;
  }
  last_atoms_ = atoms;

  std::fprintf(out_,
               "[progress] step %" PRId64 "  atoms %" PRId64 " (%+" PRId64
               ", %.0f/s)  triggers %" PRIu64 "  rules %" PRId64
               "  rss %.0f MB%s\n",
               step, atoms, delta, rate, triggers, live_rules, rss_mb,
               suffix);
  std::fflush(out_);
}

}  // namespace obs
}  // namespace bddfc
