// Low-overhead tracing + metrics for the whole engine (the "obs" layer).
//
// Two instruments, one discipline:
//
//   * TraceSession — an event recorder producing Chrome/Perfetto
//     trace-event JSON. Each thread appends fixed-size TraceEvents to its
//     own buffer (no lock, no allocation per event beyond the buffer's
//     amortized growth); buffers are merged and time-sorted only at export.
//     Every record site guards on a single relaxed atomic load, so a
//     disabled session costs one predictable branch. Event string fields
//     are `const char*` and must point at static storage — the recorder
//     never copies or frees them.
//
//   * MetricsRegistry — named Counter / Gauge / Histogram instruments with
//     stable addresses (look up once, then lock-free relaxed atomics).
//     Registries are always on: they are cheap enough to update
//     unconditionally, and the progress heartbeat samples them mid-run
//     from another thread, which is only race-free because every cell is
//     an atomic. A process-global registry (obs::Metrics()) serves CLI
//     runs; tests and embedders needing exact per-run counts pass their
//     own via ExecutionConfig::metrics (see obs::ResolveMetrics).
//
// Neither instrument may perturb engine behavior: recording only observes.
// The chase's bit-identical-run guarantee (atoms, trigger order, fresh-null
// numbering at any engine x storage x thread count) holds with tracing on,
// off, or compiled out — tests/obs_test.cc proves it differentially.
//
// Compile-time kill switch: configure with -DBDDFC_OBS=OFF to define
// BDDFC_OBS_DISABLED, which turns ObsSpan construction and the free
// recording helpers into empty inlines (metrics stay available — the
// stats-unification layer depends on them).

#ifndef BDDFC_OBS_OBS_H_
#define BDDFC_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bddfc {
namespace obs {

// ---------------------------------------------------------------------------
// Trace events

/// One trace event. All strings are unowned `const char*` expected to be
/// string literals (or otherwise outlive the session). Fixed-size on
/// purpose: recording must never allocate.
struct TraceEvent {
  const char* cat = nullptr;   ///< category ("chase", "sched", ...)
  const char* name = nullptr;  ///< event name ("chase.step", ...)
  char phase = 'X';            ///< 'X' complete, 'i' instant, 'C' counter
  std::uint32_t tid = 0;       ///< session-assigned dense thread id
  std::int64_t ts_ns = 0;      ///< start, ns since session start
  std::int64_t dur_ns = 0;     ///< duration ('X' only)
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
};

/// The process-wide trace recorder. Start()/Stop() bracket a recording
/// window; Record() appends to a per-thread buffer registered on first use.
/// Export/Clear must not run concurrently with recording threads (callers
/// quiesce first — chase_cli exports after the run; tests join threads).
class TraceSession {
 public:
  /// The singleton every ObsSpan / Instant site consults.
  static TraceSession& Global();

  /// Begins recording: resets the clock origin and bumps the buffer epoch
  /// so stale thread-local buffer pointers from a prior window are
  /// abandoned. Events recorded before Start() are dropped.
  void Start();

  /// Ends recording. Already-buffered events are kept for export.
  void Stop();

  /// The hot-path guard: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends `ev` (ts/dur already filled; tid is overwritten with the
  /// calling thread's session id). No-op when disabled.
  void Record(TraceEvent ev);

  /// Nanoseconds since Start() on the steady clock.
  std::int64_t NowNs() const;

  /// Merged, ts-sorted Chrome trace-event JSON
  /// (`{"traceEvents":[...]}`), loadable by Perfetto / chrome://tracing.
  std::string ExportChromeJson() const;

  /// Writes ExportChromeJson() to `path`. Returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Total buffered events across all threads.
  std::size_t EventCount() const;

  /// Drops all buffered events (and abandons thread-local buffers).
  void Clear();

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{1};
  std::int64_t origin_ns_ = 0;  // steady-clock origin, set by Start()

  mutable std::mutex mu_;  // guards buffers_ registration and export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII scope producing one complete ('X') event from construction to
/// destruction. When the session is disabled the constructor is a single
/// relaxed load and the object is inert (no allocation — asserted by
/// tests). Attach up to two integer args:
///
///   obs::ObsSpan span("chase", "chase.step");
///   span.Arg("step", step).Arg("delta", delta_size);
class ObsSpan {
 public:
  ObsSpan(const char* cat, const char* name) {
#ifndef BDDFC_OBS_DISABLED
    TraceSession& session = TraceSession::Global();
    if (session.enabled()) {
      session_ = &session;
      event_.cat = cat;
      event_.name = name;
      event_.ts_ns = session.NowNs();
    }
#else
    (void)cat;
    (void)name;
#endif
  }
  ~ObsSpan() {
    if (session_ != nullptr) Finish();
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches an integer arg (first call fills arg1, second arg2, further
  /// calls overwrite arg2). `name` must be a string literal.
  ObsSpan& Arg(const char* name, std::uint64_t value) {
    if (session_ != nullptr) {
      if (event_.arg1_name == nullptr) {
        event_.arg1_name = name;
        event_.arg1 = value;
      } else {
        event_.arg2_name = name;
        event_.arg2 = value;
      }
    }
    return *this;
  }

  /// Closes the span now instead of at destruction (for spans covering a
  /// phase that ends mid-scope). Idempotent; the destructor becomes a no-op.
  void End() {
    if (session_ != nullptr) {
      Finish();
      session_ = nullptr;
    }
  }

  /// True when this span is live (session enabled at construction). Lets
  /// call sites skip arg computation that is only needed for the trace.
  bool recording() const { return session_ != nullptr; }

 private:
  void Finish();

  TraceSession* session_ = nullptr;
  TraceEvent event_;
};

#ifndef BDDFC_OBS_DISABLED

/// Records an instant ('i') event, optionally with one integer arg.
void Instant(const char* cat, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg = 0);

/// Records a counter ('C') event: a named sampled value Perfetto renders
/// as a track chart.
void CounterEvent(const char* cat, const char* name, std::uint64_t value);

#else

inline void Instant(const char*, const char*, const char* = nullptr,
                    std::uint64_t = 0) {}
inline void CounterEvent(const char*, const char*, std::uint64_t) {}

#endif  // BDDFC_OBS_DISABLED

/// Declares a live RAII span named `var`. Compiled out (no object, no
/// atomic load) under BDDFC_OBS_DISABLED.
#ifndef BDDFC_OBS_DISABLED
#define BDDFC_OBS_SPAN(var, cat, name) ::bddfc::obs::ObsSpan var((cat), (name))
#else
#define BDDFC_OBS_SPAN(var, cat, name) \
  ::bddfc::obs::NullSpan var;          \
  (void)var
#endif

/// The inert stand-in BDDFC_OBS_SPAN declares when obs is compiled out.
struct NullSpan {
  NullSpan& Arg(const char*, std::uint64_t) { return *this; }
  void End() {}
  bool recording() const { return false; }
};

// ---------------------------------------------------------------------------
// Metrics

/// Monotonic counter. Relaxed atomics: racing writers and a sampling
/// reader are all well-defined.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (current step, live atom count).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer observations (latencies
/// in ns, batch sizes). Tracks count / sum / min / max exactly and the
/// distribution to power-of-two resolution.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(std::uint64_t value);
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max over all observations; min is 0 when empty.
  std::uint64_t Min() const;
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  /// Observations in bucket i, i.e. values whose bit width is i (the last
  /// bucket also absorbs wider values).
  std::uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Named instruments with stable addresses: GetX interns `name` on first
/// use (one mutex-guarded map lookup) and returns the same pointer
/// forever, so hot paths cache the pointer and touch only the atomic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Flat name -> value view of every instrument, sorted by name.
  /// Histograms are flattened to `<name>.count/.sum/.mean/.min/.max`.
  /// Instruments that never moved (zero counters, empty histograms) are
  /// skipped unless `include_zero`.
  std::vector<std::pair<std::string, double>> Snapshot(
      bool include_zero = false) const;

  /// Snapshot() as one flat JSON object (`{"chase.atoms": 42, ...}`).
  std::string ToJson(bool include_zero = false) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry (used whenever no explicit registry is
/// threaded through ExecutionConfig::metrics).
MetricsRegistry& Metrics();

/// `registry` if non-null, else the process-global registry. The standard
/// resolution every instrumented layer applies to its config pointer.
inline MetricsRegistry* ResolveMetrics(MetricsRegistry* registry) {
  return registry != nullptr ? registry : &Metrics();
}

// ---------------------------------------------------------------------------
// Process helpers

/// Current (not peak) resident set size in bytes; 0 where unsupported.
std::uint64_t CurrentRssBytes();

// Cooperative cancellation: a process-global flag the chase polls between
// candidate firings. RequestCancel is async-signal-safe (one relaxed store)
// so a SIGINT handler can call it directly.
void RequestCancel();
bool CancelRequested();
void ClearCancel();

/// Installs a SIGINT handler that calls RequestCancel() — the one shared
/// interrupt discipline of the tools (chase_cli, bddfc_server): the handler
/// only sets the flag; the tool polls CancelRequested() at its loop
/// boundaries, drains in-flight work, flushes any active trace, and exits
/// with the conventional 128+SIGINT status (kExitInterrupted).
void InstallSigintCancel();

/// 130 = 128 + SIGINT, the shell convention for "terminated by Ctrl-C".
inline constexpr int kExitInterrupted = 130;

}  // namespace obs
}  // namespace bddfc

#endif  // BDDFC_OBS_OBS_H_
