#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__APPLE__)
#include <mach/mach.h>
#endif

namespace bddfc {
namespace obs {

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Thread-local buffer cache. `epoch` ties the cached pointer to one
// recording window: Start()/Clear() bump the session epoch, invalidating
// every thread's cache, so a thread surviving across windows re-registers
// instead of appending to a buffer the session already discarded.
struct TlsCache {
  void* buffer = nullptr;  // TraceSession::ThreadBuffer*
  std::uint64_t epoch = 0;
};
thread_local TlsCache tls_cache;

std::atomic<bool> g_cancel_requested{false};

}  // namespace

// ---------------------------------------------------------------------------
// TraceSession

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  origin_ns_ = SteadyNowNs();
  enabled_.store(true, std::memory_order_release);
}

void TraceSession::Stop() {
  enabled_.store(false, std::memory_order_release);
}

std::int64_t TraceSession::NowNs() const {
  return SteadyNowNs() - origin_ns_;
}

TraceSession::ThreadBuffer* TraceSession::BufferForThisThread() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (tls_cache.buffer != nullptr && tls_cache.epoch == epoch) {
    return static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffer->events.reserve(1024);
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_cache.buffer = raw;
  tls_cache.epoch = epoch;
  return raw;
}

void TraceSession::Record(TraceEvent ev) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  ev.tid = buffer->tid;
  buffer->events.push_back(ev);
}

std::size_t TraceSession::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

void TraceSession::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

void AppendEventJson(const TraceEvent& ev, std::string* out) {
  char buf[256];
  // Chrome's ts/dur are microseconds; keep ns precision as fractions.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f", ev.phase,
                ev.tid, static_cast<double>(ev.ts_ns) / 1000.0);
  out->append(buf);
  if (ev.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                  static_cast<double>(ev.dur_ns) / 1000.0);
    out->append(buf);
  }
  if (ev.phase == 'i') out->append(",\"s\":\"t\"");
  out->append(",\"cat\":\"");
  out->append(ev.cat != nullptr ? ev.cat : "");
  out->append("\",\"name\":\"");
  out->append(ev.name != nullptr ? ev.name : "");
  out->append("\"");
  if (ev.phase == 'C') {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRIu64 "}",
                  ev.arg1);
    out->append(buf);
  } else if (ev.arg1_name != nullptr) {
    out->append(",\"args\":{\"");
    out->append(ev.arg1_name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, ev.arg1);
    out->append(buf);
    if (ev.arg2_name != nullptr) {
      out->append(",\"");
      out->append(ev.arg2_name);
      std::snprintf(buf, sizeof(buf), "\":%" PRIu64, ev.arg2);
      out->append(buf);
    }
    out->append("}");
  }
  out->append("}");
}

}  // namespace

std::string TraceSession::ExportChromeJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) total += buffer->events.size();
    events.reserve(total);
    for (const auto& buffer : buffers_) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Deterministic merge: order by start time, then thread, with ties
  // resolved parent-first (longer duration encloses shorter). Identical
  // event multisets export to identical JSON regardless of which thread
  // recorded what first.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.dur_ns > b.dur_ns;
                   });
  std::string out;
  out.reserve(events.size() * 128 + 256);
  out.append("{\"traceEvents\":[\n");
  out.append(
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"bddfc\"}}");
  for (const TraceEvent& ev : events) {
    out.append(",\n");
    AppendEventJson(ev, &out);
  }
  out.append("\n]}\n");
  return out;
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ExportChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void ObsSpan::Finish() {
  event_.dur_ns = session_->NowNs() - event_.ts_ns;
  session_->Record(event_);
}

#ifndef BDDFC_OBS_DISABLED

void Instant(const char* cat, const char* name, const char* arg_name,
             std::uint64_t arg) {
  TraceSession& session = TraceSession::Global();
  if (!session.enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_ns = session.NowNs();
  ev.arg1_name = arg_name;
  ev.arg1 = arg;
  session.Record(ev);
}

void CounterEvent(const char* cat, const char* name, std::uint64_t value) {
  TraceSession& session = TraceSession::Global();
  if (!session.enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.phase = 'C';
  ev.ts_ns = session.NowNs();
  ev.arg1 = value;
  session.Record(ev);
}

#endif  // BDDFC_OBS_DISABLED

// ---------------------------------------------------------------------------
// Metrics

void Histogram::Observe(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  const int bucket = std::min(static_cast<int>(std::bit_width(value)),
                              kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::Min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot(
    bool include_zero) const {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    const std::uint64_t v = counter->Value();
    if (v != 0 || include_zero) {
      out.emplace_back(name, static_cast<double>(v));
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::int64_t v = gauge->Value();
    if (v != 0 || include_zero) {
      out.emplace_back(name, static_cast<double>(v));
    }
  }
  for (const auto& [name, hist] : histograms_) {
    const std::uint64_t count = hist->Count();
    if (count == 0 && !include_zero) continue;
    out.emplace_back(name + ".count", static_cast<double>(count));
    out.emplace_back(name + ".sum", static_cast<double>(hist->Sum()));
    out.emplace_back(name + ".mean",
                     count == 0 ? 0.0
                                : static_cast<double>(hist->Sum()) /
                                      static_cast<double>(count));
    out.emplace_back(name + ".min", static_cast<double>(hist->Min()));
    out.emplace_back(name + ".max", static_cast<double>(hist->Max()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::ToJson(bool include_zero) const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : Snapshot(include_zero)) {
    if (!first) out.append(", ");
    first = false;
    out.append("\"");
    out.append(name);  // instrument names are plain identifiers
    out.append("\": ");
    char buf[64];
    const auto as_int = static_cast<long long>(value);
    if (static_cast<double>(as_int) == value) {
      std::snprintf(buf, sizeof(buf), "%lld", as_int);
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    out.append(buf);
  }
  out.append("}");
  return out;
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

// ---------------------------------------------------------------------------
// Process helpers

std::uint64_t CurrentRssBytes() {
#if defined(__APPLE__)
  mach_task_basic_info info;
  mach_msg_type_number_t count = MACH_TASK_BASIC_INFO_COUNT;
  if (task_info(mach_task_self(), MACH_TASK_BASIC_INFO,
                reinterpret_cast<task_info_t>(&info), &count) == KERN_SUCCESS) {
    return info.resident_size;
  }
  return 0;
#elif defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0, resident_pages = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  return resident_pages *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

void RequestCancel() {
  g_cancel_requested.store(true, std::memory_order_relaxed);
}

bool CancelRequested() {
  return g_cancel_requested.load(std::memory_order_relaxed);
}

void ClearCancel() {
  g_cancel_requested.store(false, std::memory_order_relaxed);
}

void InstallSigintCancel() {
  std::signal(SIGINT, [](int) { RequestCancel(); });
}

}  // namespace obs
}  // namespace bddfc
