// The chase progress heartbeat: an interval thread sampling the metrics
// registry and printing a one-line human status, doubling as a divergence
// watchdog.
//
// The monitor never touches engine state — it reads only the registry's
// relaxed-atomic gauges/counters (chase.step, chase.atoms,
// chase.triggers_fired, sched.active_rules) plus the process RSS, so it is
// race-free against a running chase at any thread count and costs the
// engine nothing. chase_cli starts one under `--progress[=MS]`; the
// watchdog arms automatically when the caller passes the chase's atom
// budget (approaching the budget is the observable signature of a
// diverging chase or of `kAuto`'s probe burning its budget).

#ifndef BDDFC_OBS_PROGRESS_H_
#define BDDFC_OBS_PROGRESS_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

#include "obs/obs.h"

namespace bddfc {
namespace obs {

class ProgressMonitor {
 public:
  struct Options {
    /// Heartbeat period.
    int interval_ms = 1000;
    /// Atom budget of the observed run; when > 0 the watchdog warns once
    /// past kBudgetWarnFraction of it (likely divergence).
    std::uint64_t watchdog_max_atoms = 0;
    /// Warn when the atom gauge has not moved for this many consecutive
    /// intervals (0 disables). A stalled gauge under a live process means
    /// work is not reaching the chase (e.g. a probe stuck rewriting).
    int stall_intervals = 0;
    /// Destination stream; stderr when null.
    std::FILE* out = nullptr;
  };

  static constexpr double kBudgetWarnFraction = 0.8;

  /// Starts the heartbeat thread immediately. `registry` must outlive the
  /// monitor; null means the process-global registry.
  ProgressMonitor(MetricsRegistry* registry, Options options);
  ~ProgressMonitor();
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Stops the thread (idempotent) and prints the final summary line.
  void Stop();

  /// Heartbeat lines printed so far (for tests).
  int ticks() const { return ticks_; }

 private:
  void Loop();
  void PrintLine(bool final_line);

  MetricsRegistry* registry_;
  Options options_;
  std::FILE* out_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;

  // Loop-thread state (read by PrintLine only from the loop / Stop path).
  std::int64_t start_ns_ = 0;
  std::int64_t last_atoms_ = 0;
  int stalled_intervals_ = 0;
  bool budget_warned_ = false;
  int ticks_ = 0;
};

}  // namespace obs
}  // namespace bddfc

#endif  // BDDFC_OBS_PROGRESS_H_
