// Tournament search: the largest set of pairwise either-way-adjacent
// vertices of a digraph (Definition 9's k-tournaments). With the paper's
// inclusive-or adjacency this is exactly maximum clique on the symmetrized
// graph; we run Bron–Kerbosch with pivoting plus a greedy fallback for
// large graphs.

#ifndef BDDFC_GRAPH_TOURNAMENT_H_
#define BDDFC_GRAPH_TOURNAMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace bddfc {

/// Options bounding the exact search.
struct TournamentSearchOptions {
  /// Maximum number of Bron–Kerbosch recursion nodes before giving up and
  /// reporting the best tournament found so far.
  std::uint64_t max_nodes = 5'000'000;
};

/// Exact (bounded) maximum-tournament search.
class TournamentSearch {
 public:
  explicit TournamentSearch(const Digraph* graph,
                            TournamentSearchOptions options = {});

  /// Vertices of a maximum tournament (exact unless ExceededBudget()).
  std::vector<int> FindMaximum();

  /// Some tournament of size `k`, or nullopt if none (exact unless
  /// ExceededBudget()).
  std::optional<std::vector<int>> FindOfSize(int k);

  /// Size of the maximum tournament.
  int MaximumSize();

  bool ExceededBudget() const { return exceeded_; }

 private:
  void Expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x,
              int target);

  const Digraph* graph_;
  TournamentSearchOptions options_;
  std::vector<int> best_;
  std::uint64_t nodes_ = 0;
  bool exceeded_ = false;
  bool found_target_ = false;
};

}  // namespace bddfc

#endif  // BDDFC_GRAPH_TOURNAMENT_H_
