#include "graph/undirected.h"

#include <algorithm>
#include <deque>

#include "base/check.h"

namespace bddfc {

UndirectedGraph::UndirectedGraph(int num_vertices) : adj_(num_vertices) {}

int UndirectedGraph::AddVertex() {
  adj_.emplace_back();
  return static_cast<int>(adj_.size()) - 1;
}

void UndirectedGraph::AddEdge(int u, int v) {
  BDDFC_CHECK_GE(u, 0);
  BDDFC_CHECK_LT(u, num_vertices());
  BDDFC_CHECK_GE(v, 0);
  BDDFC_CHECK_LT(v, num_vertices());
  if (u == v || HasEdge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

void UndirectedGraph::RemoveEdge(int u, int v) {
  if (!HasEdge(u, v)) return;
  adj_[u].erase(std::find(adj_[u].begin(), adj_[u].end(), v));
  adj_[v].erase(std::find(adj_[v].begin(), adj_[v].end(), u));
  --num_edges_;
}

bool UndirectedGraph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return false;
  }
  return std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end();
}

UndirectedGraph UndirectedGraph::FromDigraph(const Digraph& d) {
  UndirectedGraph g(d.num_vertices());
  for (int u = 0; u < d.num_vertices(); ++u) {
    for (int v : d.OutNeighbors(u)) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  return g;
}

int UndirectedGraph::Girth() const {
  // For each edge (u,v): remove it conceptually and find the shortest
  // alternative u-v path by BFS; cycle length = path + 1.
  int best = kInfiniteGirth;
  for (int u = 0; u < num_vertices(); ++u) {
    for (int v : adj_[u]) {
      if (v < u) continue;  // each edge once
      std::vector<int> dist(num_vertices(), -1);
      std::deque<int> queue;
      dist[u] = 0;
      queue.push_back(u);
      while (!queue.empty()) {
        int w = queue.front();
        queue.pop_front();
        if (w == v) break;
        if (dist[w] + 1 >= best) continue;  // cannot improve
        for (int x : adj_[w]) {
          if (w == u && x == v) continue;  // skip the edge itself
          if (dist[x] == -1) {
            dist[x] = dist[w] + 1;
            queue.push_back(x);
          }
        }
      }
      if (dist[v] != -1 && dist[v] + 1 < best) best = dist[v] + 1;
    }
  }
  return best;
}

int ChromaticNumber::GreedyUpperBound(const UndirectedGraph& g) {
  const int n = g.num_vertices();
  if (n == 0) return 0;
  // DSATUR: repeatedly color the vertex with the highest saturation degree.
  std::vector<int> color(n, -1);
  std::vector<std::vector<bool>> neighbor_colors(n);
  int used = 0;
  for (int step = 0; step < n; ++step) {
    int pick = -1;
    int pick_sat = -1;
    int pick_deg = -1;
    for (int v = 0; v < n; ++v) {
      if (color[v] != -1) continue;
      int sat = static_cast<int>(
          std::count(neighbor_colors[v].begin(), neighbor_colors[v].end(),
                     true));
      int deg = static_cast<int>(g.Neighbors(v).size());
      if (sat > pick_sat || (sat == pick_sat && deg > pick_deg)) {
        pick = v;
        pick_sat = sat;
        pick_deg = deg;
      }
    }
    int c = 0;
    while (c < static_cast<int>(neighbor_colors[pick].size()) &&
           neighbor_colors[pick][c]) {
      ++c;
    }
    color[pick] = c;
    used = std::max(used, c + 1);
    for (int u : g.Neighbors(pick)) {
      if (static_cast<int>(neighbor_colors[u].size()) <= c) {
        neighbor_colors[u].resize(c + 1, false);
      }
      neighbor_colors[u][c] = true;
    }
  }
  return used;
}

namespace {

bool ColorableRec(const UndirectedGraph& g, int k, std::vector<int>* color,
                  int v) {
  const int n = g.num_vertices();
  if (v == n) return true;
  // Limit the branching factor: only try colors 0..min(k, used+1)-1 to
  // break color-permutation symmetry.
  int used = 0;
  for (int u = 0; u < v; ++u) used = std::max(used, (*color)[u] + 1);
  int limit = std::min(k, used + 1);
  for (int c = 0; c < limit; ++c) {
    bool ok = true;
    for (int u : g.Neighbors(v)) {
      if (u < v && (*color)[u] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*color)[v] = c;
    if (ColorableRec(g, k, color, v + 1)) return true;
  }
  (*color)[v] = -1;
  return false;
}

}  // namespace

bool ChromaticNumber::IsColorable(const UndirectedGraph& g, int k) {
  if (g.num_vertices() == 0) return true;
  if (k <= 0) return g.num_vertices() == 0;
  std::vector<int> color(g.num_vertices(), -1);
  return ColorableRec(g, k, &color, 0);
}

int ChromaticNumber::Exact(const UndirectedGraph& g, int max_colors) {
  if (g.num_vertices() == 0) return 0;
  int hi = std::min(GreedyUpperBound(g), max_colors);
  for (int k = 1; k <= hi; ++k) {
    if (IsColorable(g, k)) return k;
  }
  return hi;
}

UndirectedGraph ErdosHighGirthGraph(int n, double p, int girth, Rng* rng) {
  BDDFC_CHECK(rng != nullptr);
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Flip(p)) g.AddEdge(u, v);
    }
  }
  // Delete one edge from every cycle shorter than `girth`. BFS from each
  // vertex finds short cycles; repeat until none survive.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int u = 0; u < n && !changed; ++u) {
      // BFS with parents; a non-tree edge closing a short cycle is removed.
      std::vector<int> dist(n, -1);
      std::vector<int> parent(n, -1);
      std::deque<int> queue;
      dist[u] = 0;
      queue.push_back(u);
      while (!queue.empty() && !changed) {
        int w = queue.front();
        queue.pop_front();
        for (int x : g.Neighbors(w)) {
          if (x == parent[w]) continue;
          if (dist[x] == -1) {
            dist[x] = dist[w] + 1;
            parent[x] = w;
            queue.push_back(x);
          } else if (dist[w] + dist[x] + 1 < girth) {
            g.RemoveEdge(w, x);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return g;
}

}  // namespace bddfc
