// Directed graphs (Section 2.4). Vertices are dense ints; the bridge from
// logic instances views every binary E-atom as an edge.
//
// The paper's tournament is the *inclusive-or* variant: a set of vertices
// such that for every distinct pair, an edge exists in at least one
// direction (footnote 2). Tournament search therefore reduces to clique
// search on the symmetrized adjacency.

#ifndef BDDFC_GRAPH_DIGRAPH_H_
#define BDDFC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logic/instance.h"
#include "logic/term.h"

namespace bddfc {

/// A finite directed graph with loops allowed.
class Digraph {
 public:
  explicit Digraph(int num_vertices = 0);

  int AddVertex();

  /// Adds edge u -> v (idempotent). Vertices must exist.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  /// True if u -> v or v -> u (the tournament adjacency).
  bool AdjacentEitherWay(int u, int v) const {
    return HasEdge(u, v) || HasEdge(v, u);
  }

  int num_vertices() const { return static_cast<int>(out_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  const std::unordered_set<int>& OutNeighbors(int u) const { return out_[u]; }
  const std::unordered_set<int>& InNeighbors(int u) const { return in_[u]; }

  /// True if some vertex has an edge to itself.
  bool HasLoop() const;

  /// True if the graph has no directed cycle (loops included).
  bool IsAcyclic() const;

  /// Topological order of the vertices; empty when cyclic (and non-empty
  /// input).
  std::vector<int> TopologicalOrder() const;

  /// The induced subgraph on `vertices` (Section 2.4); vertex i of the
  /// result corresponds to vertices[i].
  Digraph InducedSubgraph(const std::vector<int>& vertices) const;

  /// True if every pair of distinct vertices is adjacent in some direction.
  bool IsTournament() const;

  /// Directed reachability u ->* v (non-empty path when u == v).
  bool Reaches(int u, int v) const;

 private:
  std::vector<std::unordered_set<int>> out_;
  std::vector<std::unordered_set<int>> in_;
  std::size_t num_edges_ = 0;
};

/// View of an instance's E-atoms as a digraph, remembering which term each
/// vertex denotes.
struct InstanceGraph {
  Digraph graph;
  std::vector<Term> vertex_terms;          // vertex -> term
  std::unordered_map<Term, int> term_ids;  // term -> vertex
};

/// Builds the digraph of all `e`-atoms of `instance`. Only terms occurring
/// in some `e`-atom become vertices.
InstanceGraph GraphOfPredicate(const Instance& instance, PredicateId e);

/// Builds the digraph over *all* binary atoms of `instance` (used for the
/// chase order <_Ch(R∃) of Definition 38 and Observation 35).
InstanceGraph GraphOfAllBinaryAtoms(const Instance& instance);

}  // namespace bddfc

#endif  // BDDFC_GRAPH_DIGRAPH_H_
