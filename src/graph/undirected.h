// Undirected graphs with the chromatic-number and girth machinery used by
// the Conjecture 44 / Theorem 45 experiments (Section 6).

#ifndef BDDFC_GRAPH_UNDIRECTED_H_
#define BDDFC_GRAPH_UNDIRECTED_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "base/rng.h"
#include "graph/digraph.h"

namespace bddfc {

/// A finite simple undirected graph.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(int num_vertices = 0);

  int AddVertex();
  void AddEdge(int u, int v);  // idempotent; u == v ignored (simple graph)
  void RemoveEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  std::size_t num_edges() const { return num_edges_; }
  const std::vector<int>& Neighbors(int u) const { return adj_[u]; }

  /// Forgets edge directions of a digraph (loops dropped).
  static UndirectedGraph FromDigraph(const Digraph& d);

  /// Length of a shortest cycle, or kInfiniteGirth if acyclic.
  int Girth() const;

  static constexpr int kInfiniteGirth = std::numeric_limits<int>::max();

 private:
  std::vector<std::vector<int>> adj_;
  std::size_t num_edges_ = 0;
};

/// Chromatic-number computation.
class ChromaticNumber {
 public:
  /// DSATUR greedy upper bound (fast, any size).
  static int GreedyUpperBound(const UndirectedGraph& g);

  /// Exact chromatic number by branch and bound; practical for graphs up to
  /// a few dozen vertices.
  static int Exact(const UndirectedGraph& g, int max_colors = 64);

  /// True if g admits a proper coloring with `k` colors.
  static bool IsColorable(const UndirectedGraph& g, int k);
};

/// Theorem 45 (Erdős): graphs of high girth and high chromatic number
/// exist. This generator realizes the standard probabilistic construction:
/// sample G(n, p) and delete one edge from every cycle of length < `girth`;
/// for suitable n and p the survivor has girth ≥ `girth` while its
/// independence number stays small, forcing the chromatic number up.
UndirectedGraph ErdosHighGirthGraph(int n, double p, int girth, Rng* rng);

}  // namespace bddfc

#endif  // BDDFC_GRAPH_UNDIRECTED_H_
