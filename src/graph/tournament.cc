#include "graph/tournament.h"

#include <algorithm>

#include "base/check.h"

namespace bddfc {

TournamentSearch::TournamentSearch(const Digraph* graph,
                                   TournamentSearchOptions options)
    : graph_(graph), options_(options) {
  BDDFC_CHECK(graph != nullptr);
}

// Bron–Kerbosch with pivoting over the symmetrized adjacency. `target` > 0
// turns the search into a decision procedure that stops at the first
// tournament of that size; `target` == 0 looks for the maximum.
void TournamentSearch::Expand(std::vector<int>& r, std::vector<int> p,
                              std::vector<int> x, int target) {
  if (found_target_ || exceeded_) return;
  if (++nodes_ > options_.max_nodes) {
    exceeded_ = true;
    return;
  }
  if (p.empty() && x.empty()) {
    if (r.size() > best_.size()) best_ = r;
    if (target > 0 && static_cast<int>(r.size()) >= target) {
      found_target_ = true;
    }
    return;
  }
  if (target == 0 && r.size() + p.size() <= best_.size()) return;  // bound
  if (target > 0 && static_cast<int>(r.size() + p.size()) < target) return;

  // Pivot: vertex of p ∪ x with most neighbors in p.
  int pivot = -1;
  std::size_t pivot_degree = 0;
  auto degree_in_p = [&](int v) {
    std::size_t d = 0;
    for (int u : p) {
      if (u != v && graph_->AdjacentEitherWay(u, v)) ++d;
    }
    return d;
  };
  for (int v : p) {
    std::size_t d = degree_in_p(v);
    if (pivot == -1 || d > pivot_degree) {
      pivot = v;
      pivot_degree = d;
    }
  }
  for (int v : x) {
    std::size_t d = degree_in_p(v);
    if (pivot == -1 || d > pivot_degree) {
      pivot = v;
      pivot_degree = d;
    }
  }

  std::vector<int> candidates;
  for (int v : p) {
    // Self-loops are not tournament adjacency: the pivot itself must stay
    // a candidate even when it carries a loop edge.
    if (pivot == -1 || v == pivot ||
        !graph_->AdjacentEitherWay(pivot, v)) {
      candidates.push_back(v);
    }
  }
  for (int v : candidates) {
    std::vector<int> p2;
    std::vector<int> x2;
    for (int u : p) {
      if (u != v && graph_->AdjacentEitherWay(u, v)) p2.push_back(u);
    }
    for (int u : x) {
      if (graph_->AdjacentEitherWay(u, v)) x2.push_back(u);
    }
    r.push_back(v);
    // A partial tournament already meeting the target is enough: any
    // superset stays a tournament, so report r immediately.
    if (target > 0 && static_cast<int>(r.size()) >= target) {
      if (r.size() > best_.size()) best_ = r;
      found_target_ = true;
      r.pop_back();
      return;
    }
    Expand(r, std::move(p2), std::move(x2), target);
    r.pop_back();
    if (found_target_ || exceeded_) return;
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

std::vector<int> TournamentSearch::FindMaximum() {
  best_.clear();
  nodes_ = 0;
  exceeded_ = false;
  found_target_ = false;
  std::vector<int> r;
  std::vector<int> p;
  std::vector<int> x;
  for (int v = 0; v < graph_->num_vertices(); ++v) p.push_back(v);
  Expand(r, std::move(p), std::move(x), 0);
  return best_;
}

std::optional<std::vector<int>> TournamentSearch::FindOfSize(int k) {
  BDDFC_CHECK_GE(k, 1);
  if (k > graph_->num_vertices()) return std::nullopt;
  best_.clear();
  nodes_ = 0;
  exceeded_ = false;
  found_target_ = false;
  std::vector<int> r;
  std::vector<int> p;
  std::vector<int> x;
  for (int v = 0; v < graph_->num_vertices(); ++v) p.push_back(v);
  Expand(r, std::move(p), std::move(x), k);
  if (static_cast<int>(best_.size()) >= k) {
    best_.resize(k);
    return best_;
  }
  return std::nullopt;
}

int TournamentSearch::MaximumSize() {
  return static_cast<int>(FindMaximum().size());
}

}  // namespace bddfc
