#include "graph/ramsey.h"

#include <algorithm>
#include <map>

#include "base/check.h"

namespace bddfc {

namespace {

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  if (s < a) return Ramsey::kUnboundedlyLarge;
  return s;
}

std::uint64_t UpperBoundMemo(std::vector<int> sizes,
                             std::map<std::vector<int>, std::uint64_t>* memo) {
  // Normalize: order does not matter.
  std::sort(sizes.begin(), sizes.end());
  // Base cases.
  if (sizes.empty()) return 1;
  if (sizes.front() <= 1) return 1;  // a 1-tournament always exists
  if (sizes.size() == 1) return static_cast<std::uint64_t>(sizes[0]);
  auto it = memo->find(sizes);
  if (it != memo->end()) return it->second;
  // R(s_1,…,s_k) ≤ 2 − k + Σ_i R(…, s_i − 1, …).
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<int> smaller = sizes;
    --smaller[i];
    sum = SaturatingAdd(sum, UpperBoundMemo(std::move(smaller), memo));
  }
  std::uint64_t k = sizes.size();
  std::uint64_t bound =
      sum == Ramsey::kUnboundedlyLarge || sum + 2 < k
          ? Ramsey::kUnboundedlyLarge
          : sum + 2 - k;
  memo->emplace(std::move(sizes), bound);
  return bound;
}

// Exact search: a set S of size `need` all of whose pairs have color
// `color` under `coloring`, restricted to `allowed`.
bool FindColorClique(const std::vector<int>& allowed, int need, int color,
                     const PairColoring& coloring, std::vector<int>* out,
                     std::size_t start = 0) {
  if (need == 0) return true;
  if (allowed.size() - start < static_cast<std::size_t>(need)) return false;
  for (std::size_t i = start; i + need <= allowed.size() + 0; ++i) {
    int v = allowed[i];
    bool compatible = true;
    for (int u : *out) {
      if (coloring(u, v) != color) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    out->push_back(v);
    if (FindColorClique(allowed, need - 1, color, coloring, out, i + 1)) {
      return true;
    }
    out->pop_back();
  }
  return false;
}

}  // namespace

std::uint64_t Ramsey::UpperBound(std::vector<int> sizes) {
  std::map<std::vector<int>, std::uint64_t> memo;
  return UpperBoundMemo(std::move(sizes), &memo);
}

bool Ramsey::VerifyAllColorings(int n, const std::vector<int>& sizes) {
  const int num_colors = static_cast<int>(sizes.size());
  BDDFC_CHECK_GE(num_colors, 1);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) pairs.push_back({i, j});
  }
  // Enumerate colorings as base-k counters over the pairs.
  std::vector<int> coloring(pairs.size(), 0);
  std::vector<std::vector<int>> color_of(n, std::vector<int>(n, 0));
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (;;) {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      color_of[pairs[p].first][pairs[p].second] = coloring[p];
      color_of[pairs[p].second][pairs[p].first] = coloring[p];
    }
    PairColoring fn = [&](int u, int v) { return color_of[u][v]; };
    bool found = false;
    for (int c = 0; c < num_colors && !found; ++c) {
      std::vector<int> witness;
      found = FindColorClique(all, sizes[c], c, fn, &witness);
    }
    if (!found) return false;
    // Advance the counter.
    std::size_t p = 0;
    while (p < pairs.size()) {
      if (++coloring[p] < num_colors) break;
      coloring[p] = 0;
      ++p;
    }
    if (p == pairs.size()) break;
  }
  return true;
}

std::optional<MonochromaticTournament> Ramsey::FindMonochromatic(
    const Digraph& tournament, const PairColoring& coloring, int num_colors,
    const std::vector<int>& sizes) {
  BDDFC_CHECK_EQ(static_cast<int>(sizes.size()), num_colors);
  BDDFC_CHECK(tournament.IsTournament());
  const int n = tournament.num_vertices();

  // Phase 1: the inductive pigeonhole extraction. Starting from all
  // vertices, repeatedly pick a vertex v, bucket the rest by their pair
  // color with v, and descend into the largest bucket, reducing that
  // color's requirement. Succeeds whenever the vertex pool is at least the
  // recurrence bound; cheap, and certifies the constructive proof.
  {
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    std::vector<int> need = sizes;
    std::vector<std::vector<int>> picked(num_colors);
    while (!pool.empty()) {
      // A color already satisfied by the picked chain?
      for (int c = 0; c < num_colors; ++c) {
        if (need[c] <= 0) {
          return MonochromaticTournament{c, picked[c]};
        }
        if (need[c] == 1) {
          // One more vertex of any kind completes color c.
          std::vector<int> vertices = picked[c];
          vertices.push_back(pool.front());
          return MonochromaticTournament{c, std::move(vertices)};
        }
      }
      int v = pool.back();
      pool.pop_back();
      std::vector<std::vector<int>> buckets(num_colors);
      for (int u : pool) buckets[coloring(v, u)].push_back(u);
      int best_color = 0;
      for (int c = 1; c < num_colors; ++c) {
        if (buckets[c].size() > buckets[best_color].size()) best_color = c;
      }
      // v joins the chain for best_color: all of bucket[best_color] see v
      // in color best_color.
      picked[best_color].push_back(v);
      --need[best_color];
      pool = std::move(buckets[best_color]);
    }
    for (int c = 0; c < num_colors; ++c) {
      if (need[c] <= 0) {
        return MonochromaticTournament{c, picked[c]};
      }
    }
  }

  // Phase 2: exact fallback — the pigeonhole walk is not complete below
  // the Ramsey bound, so search each color exhaustively.
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int c = 0; c < num_colors; ++c) {
    std::vector<int> witness;
    if (FindColorClique(all, sizes[c], c, coloring, &witness)) {
      return MonochromaticTournament{c, std::move(witness)};
    }
  }
  return std::nullopt;
}

}  // namespace bddfc
