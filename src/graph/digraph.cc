#include "graph/digraph.h"

#include <algorithm>

#include "base/check.h"

namespace bddfc {

Digraph::Digraph(int num_vertices)
    : out_(num_vertices), in_(num_vertices) {}

int Digraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<int>(out_.size()) - 1;
}

void Digraph::AddEdge(int u, int v) {
  BDDFC_CHECK_GE(u, 0);
  BDDFC_CHECK_LT(u, num_vertices());
  BDDFC_CHECK_GE(v, 0);
  BDDFC_CHECK_LT(v, num_vertices());
  if (out_[u].insert(v).second) {
    in_[v].insert(u);
    ++num_edges_;
  }
}

bool Digraph::HasEdge(int u, int v) const {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    return false;
  }
  return out_[u].find(v) != out_[u].end();
}

bool Digraph::HasLoop() const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (HasEdge(v, v)) return true;
  }
  return false;
}

std::vector<int> Digraph::TopologicalOrder() const {
  std::vector<int> in_degree(num_vertices(), 0);
  for (int v = 0; v < num_vertices(); ++v) {
    for (int w : out_[v]) ++in_degree[w];
  }
  std::vector<int> order;
  std::vector<int> queue;
  for (int v = 0; v < num_vertices(); ++v) {
    if (in_degree[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    int v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (int w : out_[v]) {
      if (--in_degree[w] == 0) queue.push_back(w);
    }
  }
  if (order.size() != static_cast<std::size_t>(num_vertices())) {
    return {};
  }
  return order;
}

bool Digraph::IsAcyclic() const {
  if (num_vertices() == 0) return true;
  return !TopologicalOrder().empty() || num_edges_ == 0;
}

Digraph Digraph::InducedSubgraph(const std::vector<int>& vertices) const {
  Digraph sub(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = 0; j < vertices.size(); ++j) {
      if (HasEdge(vertices[i], vertices[j])) {
        sub.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return sub;
}

bool Digraph::IsTournament() const {
  for (int u = 0; u < num_vertices(); ++u) {
    for (int v = u + 1; v < num_vertices(); ++v) {
      if (!AdjacentEitherWay(u, v)) return false;
    }
  }
  return true;
}

bool Digraph::Reaches(int u, int v) const {
  std::vector<bool> visited(num_vertices(), false);
  std::vector<int> stack;
  for (int w : out_[u]) {
    if (!visited[w]) {
      visited[w] = true;
      stack.push_back(w);
    }
  }
  while (!stack.empty()) {
    int w = stack.back();
    stack.pop_back();
    if (w == v) return true;
    for (int x : out_[w]) {
      if (!visited[x]) {
        visited[x] = true;
        stack.push_back(x);
      }
    }
  }
  return false;
}

namespace {

int VertexFor(Term t, InstanceGraph* ig) {
  auto it = ig->term_ids.find(t);
  if (it != ig->term_ids.end()) return it->second;
  int v = ig->graph.AddVertex();
  ig->term_ids.emplace(t, v);
  ig->vertex_terms.push_back(t);
  return v;
}

}  // namespace

InstanceGraph GraphOfPredicate(const Instance& instance, PredicateId e) {
  InstanceGraph ig;
  for (std::uint32_t idx : instance.AtomsWith(e)) {
    const Atom& a = instance.atoms()[idx];
    BDDFC_CHECK(a.IsBinary());
    int u = VertexFor(a.arg(0), &ig);
    int v = VertexFor(a.arg(1), &ig);
    ig.graph.AddEdge(u, v);
  }
  return ig;
}

InstanceGraph GraphOfAllBinaryAtoms(const Instance& instance) {
  InstanceGraph ig;
  for (const Atom& a : instance.atoms()) {
    if (!a.IsBinary()) continue;
    int u = VertexFor(a.arg(0), &ig);
    int v = VertexFor(a.arg(1), &ig);
    ig.graph.AddEdge(u, v);
  }
  return ig;
}

}  // namespace bddfc
