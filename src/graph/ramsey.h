// Ramsey machinery for edge-colored tournaments (Theorem 7).
//
// The paper colors each tournament edge by a valley query (one of |Q♦|
// colors) and invokes Ramsey's theorem to extract a monochromatic
// subtournament. Because the paper's tournaments are inclusive-or cliques,
// the classical multicolor Ramsey numbers for complete graphs apply
// directly: any k-coloring of the pairs of a large enough tournament
// contains a subtournament of size s_i all of whose pairs are colored i.
//
// Provided here:
//   * UpperBound — the constructive recurrence
//       R(s_1,…,s_k) ≤ 2 − k + Σ_i R(s_1,…,s_i−1,…,s_k),
//     with R(…,1,…) = 1 and R(s) = s; this is the bound the extraction
//     algorithm certifies, and the N(4,…,4) bound of Question 46.
//   * FindMonochromatic — the pigeonhole extraction from the inductive
//     proof, plus an exact backtracking fallback so the result is correct
//     on inputs smaller than the bound.
//   * VerifyAllColorings — brute-force verification on tiny complete
//     graphs (used to confirm e.g. R(3,3) = 6 in the benches/tests).

#ifndef BDDFC_GRAPH_RAMSEY_H_
#define BDDFC_GRAPH_RAMSEY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace bddfc {

/// Edge-coloring callback: color of the (unordered) pair {u, v}, in
/// {0, …, num_colors-1}. Only called on adjacent pairs.
using PairColoring = std::function<int(int, int)>;

/// Monochromatic subtournament: the color and its vertices.
struct MonochromaticTournament {
  int color = 0;
  std::vector<int> vertices;
};

class Ramsey {
 public:
  /// The recurrence upper bound R(s_1,…,s_k). Saturates at
  /// kUnboundedlyLarge if intermediate values overflow.
  static std::uint64_t UpperBound(std::vector<int> sizes);

  /// Exhaustively checks that every `num_colors`-coloring of the pairs of
  /// {0..n-1} contains, for some i, a set of sizes[i] vertices whose pairs
  /// are all colored i. Exponential in n(n-1)/2 — tiny n only.
  static bool VerifyAllColorings(int n, const std::vector<int>& sizes);

  /// Finds a monochromatic subtournament of size sizes[i] in color i for
  /// some i, inside `tournament` (which must satisfy IsTournament()) under
  /// `coloring`. Uses the inductive pigeonhole extraction and falls back to
  /// exact search; returns nullopt only if no such subtournament exists
  /// (possible when the tournament is smaller than the Ramsey bound).
  static std::optional<MonochromaticTournament> FindMonochromatic(
      const Digraph& tournament, const PairColoring& coloring, int num_colors,
      const std::vector<int>& sizes);

  static constexpr std::uint64_t kUnboundedlyLarge = ~std::uint64_t{0};
};

}  // namespace bddfc

#endif  // BDDFC_GRAPH_RAMSEY_H_
