// Finite multisets over an ordered domain, with the strict lexicographic
// order <_lex of Section 2.4. The order is the termination measure of the
// peak-removing argument (Lemma 40); Lemma 8 (well-foundedness on bounded
// sizes) is exercised by the property tests.

#ifndef BDDFC_MULTISET_MULTISET_H_
#define BDDFC_MULTISET_MULTISET_H_

#include <cstddef>
#include <initializer_list>
#include <map>
#include <optional>
#include <vector>

#include "base/check.h"

namespace bddfc {

/// A finite multiset over `T` with the paper's operations: union ∪_m,
/// intersection ∩_m, difference ∖_m, max_m, and the lexicographic order.
template <typename T>
class Multiset {
 public:
  Multiset() = default;

  Multiset(std::initializer_list<T> elements) {
    for (const T& x : elements) Add(x);
  }

  /// {x_1, ..., x_n}_m of a list.
  static Multiset FromList(const std::vector<T>& elements) {
    Multiset m;
    for (const T& x : elements) m.Add(x);
    return m;
  }

  void Add(const T& x, std::size_t count = 1) {
    if (count > 0) counts_[x] += count;
  }

  /// Removes up to `count` copies of x.
  void Remove(const T& x, std::size_t count = 1) {
    auto it = counts_.find(x);
    if (it == counts_.end()) return;
    if (it->second <= count) {
      counts_.erase(it);
    } else {
      it->second -= count;
    }
  }

  std::size_t Count(const T& x) const {
    auto it = counts_.find(x);
    return it == counts_.end() ? 0 : it->second;
  }

  /// |M| = Σ_x M(x).
  std::size_t Size() const {
    std::size_t n = 0;
    for (const auto& [x, c] : counts_) n += c;
    return n;
  }

  bool Empty() const { return counts_.empty(); }

  /// max_m(M); nullopt on the empty multiset.
  std::optional<T> Max() const {
    if (counts_.empty()) return std::nullopt;
    return counts_.rbegin()->first;
  }

  /// M ∪_m N : x ↦ M(x) + N(x).
  Multiset Union(const Multiset& other) const {
    Multiset out = *this;
    for (const auto& [x, c] : other.counts_) out.Add(x, c);
    return out;
  }

  /// M ∩_m N : x ↦ min(M(x), N(x)).
  Multiset Intersect(const Multiset& other) const {
    Multiset out;
    for (const auto& [x, c] : counts_) {
      std::size_t m = std::min(c, other.Count(x));
      if (m > 0) out.Add(x, m);
    }
    return out;
  }

  /// M ∖_m N : x ↦ max(M(x) − N(x), 0).
  Multiset Difference(const Multiset& other) const {
    Multiset out;
    for (const auto& [x, c] : counts_) {
      std::size_t n = other.Count(x);
      if (c > n) out.Add(x, c - n);
    }
    return out;
  }

  /// Distinct elements in ascending order (with their multiplicities).
  const std::map<T, std::size_t>& counts() const { return counts_; }

  friend bool operator==(const Multiset& a, const Multiset& b) {
    return a.counts_ == b.counts_;
  }
  friend bool operator!=(const Multiset& a, const Multiset& b) {
    return !(a == b);
  }

 private:
  std::map<T, std::size_t> counts_;
};

/// The strict lexicographic order <_lex of Section 2.4:
///   ∅ <_lex N for non-empty N, and M <_lex N iff max(M) < max(N), or the
///   maxima agree and (M ∖ {max}) <_lex (N ∖ {max}).
/// Equivalently: compare the descending (value, multiplicity) runs; at the
/// first difference a smaller value — or an equal value with smaller
/// multiplicity — makes the multiset smaller, and a proper prefix is
/// smaller.
template <typename T>
bool LexLess(const Multiset<T>& a, const Multiset<T>& b) {
  auto ia = a.counts().rbegin();
  auto ib = b.counts().rbegin();
  while (ia != a.counts().rend() && ib != b.counts().rend()) {
    if (ia->first != ib->first) return ia->first < ib->first;
    if (ia->second != ib->second) return ia->second < ib->second;
    ++ia;
    ++ib;
  }
  return ia == a.counts().rend() && ib != b.counts().rend();
}

/// M ≤_lex N.
template <typename T>
bool LexLessEq(const Multiset<T>& a, const Multiset<T>& b) {
  return a == b || LexLess(a, b);
}

}  // namespace bddfc

#endif  // BDDFC_MULTISET_MULTISET_H_
