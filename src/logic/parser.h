// Text parser for rules, rule sets, instances and conjunctive queries.
//
// Syntax (one item per line; '#' and '%' start comments):
//
//   rule:      E(x,y), E(y,z) -> E(x,z)
//              R(x) -> S(x,z), T(z)            # z is existential (implicit)
//              [trans] E(x,y), E(y,z) -> E(x,z) # optional label
//   instance:  E(a,b). E(b,c).                  # terms are constants
//   CQ:        ?(x,y) :- E(x,z), E(z,y)         # answer tuple after '?'
//              ? :- E(x,x)                      # Boolean CQ
//   nullary:   true -> P(x)? no — nullary atoms are written bare: `true`
//
// Conventions: in rules, every identifier is a variable; in instances, every
// identifier is a constant; in queries, identifiers already interned as
// constants (e.g. parsed earlier from an instance) denote those constants,
// everything else is a variable.

#ifndef BDDFC_LOGIC_PARSER_H_
#define BDDFC_LOGIC_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// Description of a parse failure. Line and column are 1-based; the column
/// points at the offending token (for arity mismatches, at the atom's
/// predicate name).
struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;
};

/// Parses a single rule from `text`. Returns nullopt and fills `error` (if
/// non-null) on failure.
std::optional<Rule> ParseRule(Universe* universe, std::string_view text,
                              ParseError* error = nullptr);

/// Parses one rule per non-empty line.
std::optional<RuleSet> ParseRuleSet(Universe* universe, std::string_view text,
                                    ParseError* error = nullptr);

/// Parses a database instance: '.'-separated atoms over constants.
std::optional<Instance> ParseInstance(Universe* universe,
                                      std::string_view text,
                                      ParseError* error = nullptr);

/// Parses a conjunctive query. Answer tuples are validated: a duplicate
/// answer variable or an answer variable that does not occur in the query
/// body is a parse error (not a crash in the Cq constructor).
std::optional<Cq> ParseCq(Universe* universe, std::string_view text,
                          ParseError* error = nullptr);

/// Parses one CQ per '?'-led item (query files: one query per line, same
/// comment syntax as everywhere else).
std::optional<std::vector<Cq>> ParseCqList(Universe* universe,
                                           std::string_view text,
                                           ParseError* error = nullptr);

/// CHECK-failing convenience wrappers for statically known-good inputs
/// (used pervasively by tests, examples and benches).
Rule MustParseRule(Universe* universe, std::string_view text);
RuleSet MustParseRuleSet(Universe* universe, std::string_view text);
Instance MustParseInstance(Universe* universe, std::string_view text);
Cq MustParseCq(Universe* universe, std::string_view text);

}  // namespace bddfc

#endif  // BDDFC_LOGIC_PARSER_H_
