// Conjunctive queries and unions thereof (Section 2.1).
//
// A CQ q(x̄) is a conjunction of atoms with a tuple of answer variables; it
// is Boolean when the answer tuple is empty. A UCQ is a set of CQs sharing a
// compatible answer tuple.

#ifndef BDDFC_LOGIC_CQ_H_
#define BDDFC_LOGIC_CQ_H_

#include <unordered_set>
#include <vector>

#include "logic/atom.h"
#include "logic/substitution.h"
#include "logic/term.h"
#include "logic/universe.h"

namespace bddfc {

/// A conjunctive query: atoms plus answer tuple. Value type.
class Cq {
 public:
  Cq() = default;

  /// Builds a CQ. Every answer variable must occur in some atom.
  Cq(std::vector<Atom> atoms, std::vector<Term> answers);

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Term>& answers() const { return answers_; }

  bool IsBoolean() const { return answers_.empty(); }

  /// All variables, in first-occurrence order.
  const std::vector<Term>& vars() const { return vars_; }

  /// Variables that are not answer variables (the existentially quantified
  /// ones).
  std::vector<Term> ExistentialVars() const;

  bool IsAnswerVar(Term t) const {
    return answer_set_.find(t) != answer_set_.end();
  }

  /// Applies a substitution to atoms and answers.
  Cq Map(const Substitution& sigma) const;

  /// Renames all variables to fresh ones from `universe` (used to keep
  /// rewriting steps variable-disjoint).
  Cq Freshen(Universe* universe) const;

  /// Number of atoms.
  std::size_t size() const { return atoms_.size(); }

  friend bool operator==(const Cq& a, const Cq& b) {
    return a.atoms_ == b.atoms_ && a.answers_ == b.answers_;
  }

 private:
  std::vector<Atom> atoms_;
  std::vector<Term> answers_;
  std::vector<Term> vars_;
  std::unordered_set<Term> answer_set_;
};

/// A union of conjunctive queries. All disjuncts must have the same answer
/// arity.
class Ucq {
 public:
  Ucq() = default;
  explicit Ucq(std::vector<Cq> disjuncts);

  const std::vector<Cq>& disjuncts() const { return disjuncts_; }
  std::size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }

  void Add(Cq cq);

  /// Total number of atoms across disjuncts.
  std::size_t TotalAtoms() const;

  /// Maximum number of atoms of any disjunct (used for the multiset size
  /// bound in Lemma 40).
  std::size_t MaxDisjunctSize() const;

 private:
  std::vector<Cq> disjuncts_;
};

/// Builds the Boolean loop query Loop_E = ∃x E(x,x) (Definition 10).
Cq LoopQuery(Universe* universe, PredicateId e);

/// Builds the single-edge query q(x, y) = E(x, y).
Cq EdgeQuery(Universe* universe, PredicateId e);

/// Builds the Boolean k-tournament query: variables x_1..x_k, and for each
/// i<j the disjunct choice E(x_i,x_j) ∨ E(x_j,x_i) expanded into a UCQ of
/// all 2^(k(k-1)/2) orientations. For the (inclusive-or) tournament of
/// Definition 9; use only for very small k — the library's tournament search
/// in graph/ is the scalable path.
Ucq TournamentQuery(Universe* universe, PredicateId e, int k);

}  // namespace bddfc

#endif  // BDDFC_LOGIC_CQ_H_
