#include "logic/printer.h"

namespace bddfc {

std::string ToString(const Universe& universe, const Atom& atom) {
  std::string out = universe.PredicateName(atom.pred());
  if (atom.IsNullary()) return out;
  out += '(';
  for (std::size_t i = 0; i < atom.arity(); ++i) {
    if (i > 0) out += ',';
    out += universe.TermName(atom.arg(i));
  }
  out += ')';
  return out;
}

std::string ToString(const Universe& universe,
                     const std::vector<Atom>& atoms) {
  std::string out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(universe, atoms[i]);
  }
  return out;
}

std::string ToString(const Universe& universe, const Rule& rule) {
  std::string out;
  if (!rule.label().empty()) out += "[" + rule.label() + "] ";
  out += ToString(universe, rule.body());
  out += " -> ";
  out += ToString(universe, rule.head());
  return out;
}

std::string ToString(const Universe& universe, const RuleSet& rules) {
  std::string out;
  for (const Rule& r : rules) {
    out += ToString(universe, r);
    out += '\n';
  }
  return out;
}

std::string ToString(const Universe& universe, const Cq& cq) {
  std::string out = "?(";
  for (std::size_t i = 0; i < cq.answers().size(); ++i) {
    if (i > 0) out += ',';
    out += universe.TermName(cq.answers()[i]);
  }
  out += ") :- ";
  out += ToString(universe, cq.atoms());
  return out;
}

std::string ToString(const Universe& universe, const Ucq& ucq) {
  std::string out;
  for (const Cq& q : ucq.disjuncts()) {
    out += ToString(universe, q);
    out += '\n';
  }
  return out;
}

std::string ToString(const Universe& universe, const Instance& instance) {
  std::string out;
  for (const Atom& a : instance.atoms()) {
    out += ToString(universe, a);
    out += ". ";
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace bddfc
