// Text rendering of logic objects, inverse of the parser's syntax.

#ifndef BDDFC_LOGIC_PRINTER_H_
#define BDDFC_LOGIC_PRINTER_H_

#include <string>

#include "logic/atom.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

std::string ToString(const Universe& universe, const Atom& atom);
std::string ToString(const Universe& universe, const std::vector<Atom>& atoms);
std::string ToString(const Universe& universe, const Rule& rule);
std::string ToString(const Universe& universe, const RuleSet& rules);
std::string ToString(const Universe& universe, const Cq& cq);
std::string ToString(const Universe& universe, const Ucq& ucq);
std::string ToString(const Universe& universe, const Instance& instance);

}  // namespace bddfc

#endif  // BDDFC_LOGIC_PRINTER_H_
