// Instances: finite sets of atoms, with the indexes the homomorphism solver
// and the chase rely on. Instances are grow-only; restriction and union
// build new instances.
//
// Per the paper (Section 2.1), every instance implicitly contains the
// nullary fact ⊤; Instance adds it on construction.

#ifndef BDDFC_LOGIC_INSTANCE_H_
#define BDDFC_LOGIC_INSTANCE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "logic/atom.h"
#include "logic/substitution.h"
#include "logic/universe.h"

namespace bddfc {

/// A contiguous view into one of an instance's sorted index vectors. The
/// indices point into atoms() and are strictly increasing (the instance is
/// append-only, so every index vector is built in sorted order). Views are
/// invalidated by AddAtom/AddAtoms — the underlying vectors may reallocate —
/// so never hold one across an insertion.
class IndexView {
 public:
  IndexView() = default;
  IndexView(const std::uint32_t* begin, const std::uint32_t* end)
      : begin_(begin), end_(end) {}

  const std::uint32_t* begin() const { return begin_; }
  const std::uint32_t* end() const { return end_; }
  std::size_t size() const { return static_cast<std::size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }

 private:
  const std::uint32_t* begin_ = nullptr;
  const std::uint32_t* end_ = nullptr;
};

/// A set of atoms with per-predicate and per-(predicate, position, term)
/// indexes. Atom order is insertion order, which the chase uses to expose
/// creation steps: because instances are append-only, the atoms created by
/// chase step k form the contiguous index range [count(k-1), count(k)), and
/// the range-filtered AtomsWithIn views below let the semi-naive trigger
/// enumerator scan exactly such a delta.
class Instance {
 public:
  /// Creates an instance containing only the implicit ⊤ fact.
  explicit Instance(Universe* universe);

  Universe* universe() const { return universe_; }

  /// Adds an atom; returns true if it was not already present.
  bool AddAtom(const Atom& atom);

  /// Adds every atom of `atoms`.
  void AddAtoms(const std::vector<Atom>& atoms);

  bool Contains(const Atom& atom) const {
    return pos_.find(atom) != pos_.end();
  }

  /// Position of `atom` in atoms(), or SIZE_MAX when absent.
  std::size_t IndexOf(const Atom& atom) const {
    auto it = pos_.find(atom);
    return it == pos_.end() ? SIZE_MAX : it->second;
  }

  /// All atoms in insertion order (position 0 is ⊤).
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Number of atoms, including the implicit ⊤.
  std::size_t size() const { return atoms_.size(); }

  /// Indices (into atoms()) of atoms over `pred`.
  const std::vector<std::uint32_t>& AtomsWith(PredicateId pred) const;

  /// Indices of atoms over `pred` whose argument `pos` equals `t`.
  const std::vector<std::uint32_t>& AtomsWith(PredicateId pred, int pos,
                                              Term t) const;

  /// View of AtomsWith(pred) restricted to atom indices in [lo, hi).
  IndexView AtomsWithIn(PredicateId pred, std::uint32_t lo,
                        std::uint32_t hi) const;

  /// View of AtomsWith(pred, pos, t) restricted to atom indices in [lo, hi).
  IndexView AtomsWithIn(PredicateId pred, int pos, Term t, std::uint32_t lo,
                        std::uint32_t hi) const;

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<Term>& ActiveDomain() const { return adom_; }

  bool InActiveDomain(Term t) const {
    return adom_set_.find(t) != adom_set_.end();
  }

  /// New instance containing only atoms whose predicate is in `preds`
  /// (plus ⊤).
  Instance Restrict(const std::unordered_set<PredicateId>& preds) const;

  /// New instance containing σ(atom) for every atom.
  Instance Map(const Substitution& sigma) const;

  /// The disjoint union I ¯∪ J of the paper: atoms of `b` are renamed so
  /// that their non-rigid terms avoid `a`'s active domain.
  static Instance DisjointUnion(const Instance& a, const Instance& b);

 private:
  // (predicate, position) packed into disjoint 32-bit halves. PredicateId is
  // 32 bits and positions are bounded by the predicate arity (an int), so
  // neither half can truncate; PosIndexKey checks the position anyway.
  using PosKey = std::pair<std::uint64_t, Term>;
  static std::uint64_t PosIndexKey(PredicateId pred, int pos);
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint64_t>{}(k.first);
      HashCombine(&seed, std::hash<Term>{}(k.second));
      return seed;
    }
  };

  Universe* universe_;
  std::vector<Atom> atoms_;
  std::unordered_map<Atom, std::size_t> pos_;
  std::unordered_map<PredicateId, std::vector<std::uint32_t>> by_pred_;
  std::unordered_map<PosKey, std::vector<std::uint32_t>, PosKeyHash> by_pos_;
  std::vector<Term> adom_;
  std::unordered_set<Term> adom_set_;

  static const std::vector<std::uint32_t> kEmptyIndex;
};

}  // namespace bddfc

#endif  // BDDFC_LOGIC_INSTANCE_H_
