// Instances: finite sets of atoms, with the indexes the homomorphism solver
// and the chase rely on. Instances are grow-only; restriction and union
// build new instances.
//
// Since the storage-API redesign an Instance is a thin owner of a
// bddfc::FactStore (src/storage/): it binds the store to a Universe (arity
// checking, the implicit ⊤ fact) and forwards every query to the backend
// selected at construction — StorageKind::kRow (hash-map indexes, the
// historical layout) or StorageKind::kColumn (VLog-style columnar tables).
// Both backends answer every query identically, so engines never care
// which one is underneath.
//
// Per the paper (Section 2.1), every instance implicitly contains the
// nullary fact ⊤; Instance adds it on construction.

#ifndef BDDFC_LOGIC_INSTANCE_H_
#define BDDFC_LOGIC_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "logic/atom.h"
#include "logic/substitution.h"
#include "logic/universe.h"
#include "storage/fact_store.h"

namespace bddfc {

/// A set of atoms with per-predicate and per-(predicate, position, term)
/// indexes. Atom order is insertion order, which the chase uses to expose
/// creation steps: because instances are append-only, the atoms created by
/// chase step k form the contiguous index range [count(k-1), count(k)), and
/// the range-filtered AtomsWithIn views below let the semi-naive trigger
/// enumerator scan exactly such a delta.
class Instance {
 public:
  /// Creates an instance containing only the implicit ⊤ fact, stored in
  /// the given backend.
  explicit Instance(Universe* universe,
                    StorageKind storage = StorageKind::kRow);

  /// Deep copy, keeping (or overriding) the source's storage backend.
  Instance(const Instance& other);
  Instance(const Instance& other, StorageKind storage);
  Instance& operator=(const Instance& other);
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  Universe* universe() const { return universe_; }

  /// The storage backend this instance lives in.
  StorageKind storage() const { return store_->kind(); }

  /// The underlying store (index lookups not re-exported here, storage
  /// diagnostics). Treat as read-only.
  const FactStore& store() const { return *store_; }

  /// Adds an atom; returns true if it was not already present.
  bool AddAtom(const Atom& atom);

  /// Adds every atom of `atoms` as one bulk batch (index construction is
  /// deferred by the backends, so build-then-scan consumers never pay for
  /// indexes).
  void AddAtoms(const std::vector<Atom>& atoms) {
    AddAtoms(atoms.data(), atoms.data() + atoms.size());
  }

  /// Bulk append over a contiguous range — batch a slice of an existing
  /// sequence without copying it into a temporary vector first.
  void AddAtoms(const Atom* begin, const Atom* end);

  bool Contains(const Atom& atom) const { return store_->Contains(atom); }

  /// Position of `atom` in atoms(), or SIZE_MAX when absent.
  std::size_t IndexOf(const Atom& atom) const { return store_->IndexOf(atom); }

  /// All atoms in insertion order (position 0 is ⊤).
  const std::vector<Atom>& atoms() const { return store_->atoms(); }

  /// Number of atoms, including the implicit ⊤.
  std::size_t size() const { return store_->size(); }

  /// Indices (into atoms()) of atoms over `pred`.
  const std::vector<std::uint32_t>& AtomsWith(PredicateId pred) const {
    return store_->AtomsWith(pred);
  }

  /// Indices of atoms over `pred` whose argument `pos` equals `t`.
  IndexView AtomsWith(PredicateId pred, int pos, Term t) const {
    return store_->AtomsWith(pred, pos, t);
  }

  /// View of AtomsWith(pred) restricted to atom indices in [lo, hi).
  IndexView AtomsWithIn(PredicateId pred, std::uint32_t lo,
                        std::uint32_t hi) const {
    return store_->AtomsWithIn(pred, lo, hi);
  }

  /// View of AtomsWith(pred, pos, t) restricted to atom indices in [lo, hi).
  IndexView AtomsWithIn(PredicateId pred, int pos, Term t, std::uint32_t lo,
                        std::uint32_t hi) const {
    return store_->AtomsWithIn(pred, pos, t, lo, hi);
  }

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<Term>& ActiveDomain() const {
    return store_->ActiveDomain();
  }

  bool InActiveDomain(Term t) const { return store_->InActiveDomain(t); }

  /// New instance containing only atoms whose predicate is in `preds`
  /// (plus ⊤).
  Instance Restrict(const std::unordered_set<PredicateId>& preds) const;

  /// New instance containing σ(atom) for every atom.
  Instance Map(const Substitution& sigma) const;

  /// The disjoint union I ¯∪ J of the paper: atoms of `b` are renamed so
  /// that their non-rigid terms avoid `a`'s active domain.
  static Instance DisjointUnion(const Instance& a, const Instance& b);

 private:
  Universe* universe_;
  std::unique_ptr<FactStore> store_;
};

}  // namespace bddfc

#endif  // BDDFC_LOGIC_INSTANCE_H_
