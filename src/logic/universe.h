// The Universe owns all naming state for one logical workspace: the
// predicate signature (names + arities), constant and variable names, and the
// labeled-null counter used by the chase.
//
// All other logic types (Atom, Instance, Rule, Cq) are plain values that
// reference Universe ids; functions that need names or fresh symbols take a
// Universe (const for printing, mutable for interning).

#ifndef BDDFC_LOGIC_UNIVERSE_H_
#define BDDFC_LOGIC_UNIVERSE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/symbol_table.h"
#include "logic/term.h"

namespace bddfc {

/// Dense id of an interned predicate.
using PredicateId = std::uint32_t;

/// Naming context. Every parsed or programmatically built rule set, instance
/// and query lives inside exactly one Universe.
class Universe {
 public:
  Universe();

  // --- Predicates ---------------------------------------------------------

  /// Interns predicate `name` with the given arity. Aborts if `name` was
  /// already interned with a different arity.
  PredicateId InternPredicate(std::string_view name, int arity);

  /// Finds an interned predicate or returns `kNoPredicate`.
  PredicateId FindPredicate(std::string_view name) const;

  /// Interns a fresh predicate whose name starts with `prefix`.
  PredicateId FreshPredicate(std::string_view prefix, int arity);

  int ArityOf(PredicateId pred) const;
  const std::string& PredicateName(PredicateId pred) const;
  std::size_t num_predicates() const { return arities_.size(); }

  /// The distinguished nullary predicate `true` (the paper's ⊤), which every
  /// instance implicitly contains. Always interned as id 0.
  PredicateId top() const { return kTopPredicate; }

  // --- Terms ---------------------------------------------------------------

  Term InternConstant(std::string_view name);
  Term InternVariable(std::string_view name);

  /// Returns the constant named `name` if interned, else an invalid term.
  Term FindConstant(std::string_view name) const;

  /// Returns the variable named `name` if interned, else an invalid term.
  Term FindVariable(std::string_view name) const;

  /// Fresh variable whose name starts with `prefix`.
  Term FreshVariable(std::string_view prefix);

  /// Fresh labeled null (invented value), as created by chase triggers.
  Term FreshNull();

  /// Human-readable name of any valid term.
  std::string TermName(Term t) const;

  std::size_t num_constants() const { return constants_.size(); }
  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_nulls() const {
    return null_count_.load(std::memory_order_relaxed);
  }

  static constexpr PredicateId kNoPredicate = 0xffffffffu;

 private:
  static constexpr PredicateId kTopPredicate = 0;

  SymbolTable predicates_;
  std::vector<int> arities_;
  SymbolTable constants_;
  SymbolTable variables_;
  // Atomic so a server status/render thread can read num_nulls() while the
  // writer's chase invents nulls — the only Universe mutation the chase
  // performs (see src/serve/server.h for the full Universe thread model).
  std::atomic<std::uint32_t> null_count_{0};
};

}  // namespace bddfc

#endif  // BDDFC_LOGIC_UNIVERSE_H_
