#include "logic/cq.h"

#include "base/check.h"

namespace bddfc {

Cq::Cq(std::vector<Atom> atoms, std::vector<Term> answers)
    : atoms_(std::move(atoms)), answers_(std::move(answers)) {
  std::unordered_set<Term> seen;
  for (const Atom& a : atoms_) {
    for (Term t : a.args()) {
      if (t.IsVariable() && seen.insert(t).second) vars_.push_back(t);
    }
  }
  for (Term t : answers_) {
    BDDFC_CHECK(t.IsVariable());
    BDDFC_CHECK(seen.find(t) != seen.end());
    answer_set_.insert(t);
  }
}

std::vector<Term> Cq::ExistentialVars() const {
  std::vector<Term> out;
  for (Term v : vars_) {
    if (!IsAnswerVar(v)) out.push_back(v);
  }
  return out;
}

Cq Cq::Map(const Substitution& sigma) const {
  return Cq(sigma.Apply(atoms_), sigma.ApplyTuple(answers_));
}

Cq Cq::Freshen(Universe* universe) const {
  Substitution rename;
  for (Term v : vars_) rename.Bind(v, universe->FreshVariable("v"));
  return Map(rename);
}

Ucq::Ucq(std::vector<Cq> disjuncts) : disjuncts_(std::move(disjuncts)) {
  for (std::size_t i = 1; i < disjuncts_.size(); ++i) {
    BDDFC_CHECK_EQ(disjuncts_[i].answers().size(),
                   disjuncts_[0].answers().size());
  }
}

void Ucq::Add(Cq cq) {
  if (!disjuncts_.empty()) {
    BDDFC_CHECK_EQ(cq.answers().size(), disjuncts_[0].answers().size());
  }
  disjuncts_.push_back(std::move(cq));
}

std::size_t Ucq::TotalAtoms() const {
  std::size_t n = 0;
  for (const Cq& q : disjuncts_) n += q.size();
  return n;
}

std::size_t Ucq::MaxDisjunctSize() const {
  std::size_t n = 0;
  for (const Cq& q : disjuncts_) n = std::max(n, q.size());
  return n;
}

Cq LoopQuery(Universe* universe, PredicateId e) {
  Term x = universe->InternVariable("loop_x");
  return Cq({Atom(e, {x, x})}, {});
}

Cq EdgeQuery(Universe* universe, PredicateId e) {
  Term x = universe->InternVariable("edge_x");
  Term y = universe->InternVariable("edge_y");
  return Cq({Atom(e, {x, y})}, {x, y});
}

Ucq TournamentQuery(Universe* universe, PredicateId e, int k) {
  BDDFC_CHECK_GE(k, 1);
  std::vector<Term> xs;
  xs.reserve(k);
  for (int i = 0; i < k; ++i) {
    std::string name = "t";
    name += std::to_string(k);
    name += '_';
    name += std::to_string(i);
    xs.push_back(universe->InternVariable(name));
  }
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) pairs.push_back({i, j});
  }
  Ucq out;
  const std::size_t num_orientations = std::size_t{1} << pairs.size();
  for (std::size_t mask = 0; mask < num_orientations; ++mask) {
    std::vector<Atom> atoms;
    atoms.reserve(pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      auto [i, j] = pairs[p];
      if (mask & (std::size_t{1} << p)) {
        atoms.push_back(Atom(e, {xs[i], xs[j]}));
      } else {
        atoms.push_back(Atom(e, {xs[j], xs[i]}));
      }
    }
    out.Add(Cq(std::move(atoms), {}));
  }
  return out;
}

}  // namespace bddfc
