#include "logic/universe.h"

#include "base/check.h"

namespace bddfc {

Universe::Universe() {
  // Intern ⊤ as predicate 0 so `top()` is stable.
  PredicateId top_id = InternPredicate("true", 0);
  BDDFC_CHECK_EQ(top_id, kTopPredicate);
}

PredicateId Universe::InternPredicate(std::string_view name, int arity) {
  BDDFC_CHECK_GE(arity, 0);
  SymbolId existing = predicates_.Find(name);
  if (existing != SymbolTable::kNotFound) {
    BDDFC_CHECK_EQ(arities_[existing], arity);
    return existing;
  }
  SymbolId id = predicates_.Intern(name);
  arities_.push_back(arity);
  BDDFC_CHECK_EQ(arities_.size(), predicates_.size());
  return id;
}

PredicateId Universe::FindPredicate(std::string_view name) const {
  SymbolId id = predicates_.Find(name);
  return id == SymbolTable::kNotFound ? kNoPredicate : id;
}

PredicateId Universe::FreshPredicate(std::string_view prefix, int arity) {
  SymbolId id = predicates_.Fresh(prefix);
  arities_.push_back(arity);
  BDDFC_CHECK_EQ(arities_.size(), predicates_.size());
  return id;
}

int Universe::ArityOf(PredicateId pred) const {
  BDDFC_CHECK_LT(pred, arities_.size());
  return arities_[pred];
}

const std::string& Universe::PredicateName(PredicateId pred) const {
  return predicates_.NameOf(pred);
}

Term Universe::InternConstant(std::string_view name) {
  return Term::MakeConstant(constants_.Intern(name));
}

Term Universe::InternVariable(std::string_view name) {
  return Term::MakeVariable(variables_.Intern(name));
}

Term Universe::FindConstant(std::string_view name) const {
  SymbolId id = constants_.Find(name);
  return id == SymbolTable::kNotFound ? Term() : Term::MakeConstant(id);
}

Term Universe::FindVariable(std::string_view name) const {
  SymbolId id = variables_.Find(name);
  return id == SymbolTable::kNotFound ? Term() : Term::MakeVariable(id);
}

Term Universe::FreshVariable(std::string_view prefix) {
  return Term::MakeVariable(variables_.Fresh(prefix));
}

Term Universe::FreshNull() {
  return Term::MakeNull(null_count_.fetch_add(1, std::memory_order_relaxed));
}

std::string Universe::TermName(Term t) const {
  BDDFC_CHECK(t.IsValid());
  switch (t.kind()) {
    case TermKind::kConstant:
      return constants_.NameOf(t.index());
    case TermKind::kVariable:
      return variables_.NameOf(t.index());
    case TermKind::kNull:
      return "_n" + std::to_string(t.index());
  }
  return "<invalid>";
}

}  // namespace bddfc
