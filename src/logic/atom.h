// Atoms: a predicate applied to a tuple of terms.

#ifndef BDDFC_LOGIC_ATOM_H_
#define BDDFC_LOGIC_ATOM_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <vector>

#include "base/hash.h"
#include "logic/term.h"
#include "logic/universe.h"

namespace bddfc {

/// A predicate applied to terms. Value type; equality and hashing are
/// structural.
class Atom {
 public:
  Atom() : pred_(Universe::kNoPredicate) {}
  Atom(PredicateId pred, std::vector<Term> args)
      : pred_(pred), args_(std::move(args)) {}
  Atom(PredicateId pred, std::initializer_list<Term> args)
      : pred_(pred), args_(args) {}

  PredicateId pred() const { return pred_; }
  const std::vector<Term>& args() const { return args_; }
  std::size_t arity() const { return args_.size(); }
  Term arg(std::size_t i) const { return args_[i]; }

  bool IsNullary() const { return args_.empty(); }
  bool IsUnary() const { return args_.size() == 1; }
  bool IsBinary() const { return args_.size() == 2; }

  /// True if some argument is `t`.
  bool Mentions(Term t) const {
    for (Term a : args_) {
      if (a == t) return true;
    }
    return false;
  }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred_ == b.pred_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.pred_ != b.pred_) return a.pred_ < b.pred_;
    return a.args_ < b.args_;
  }

 private:
  PredicateId pred_;
  std::vector<Term> args_;
};

/// std::hash-compatible functor for Atom.
struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    std::size_t seed = std::hash<std::uint32_t>{}(a.pred());
    for (Term t : a.args()) {
      HashCombine(&seed, std::hash<Term>{}(t));
    }
    return seed;
  }
};

}  // namespace bddfc

namespace std {
template <>
struct hash<bddfc::Atom> {
  std::size_t operator()(const bddfc::Atom& a) const {
    return bddfc::AtomHash{}(a);
  }
};
}  // namespace std

#endif  // BDDFC_LOGIC_ATOM_H_
