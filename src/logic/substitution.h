// Substitutions: partial functions from terms to terms, applied to atoms and
// atom sets. Matches the paper's Section 2.1 ("a substitution π is a function
// from Vars to Vars"; we allow any term in the range, which is needed for
// triggers and homomorphisms into instances).

#ifndef BDDFC_LOGIC_SUBSTITUTION_H_
#define BDDFC_LOGIC_SUBSTITUTION_H_

#include <unordered_map>
#include <vector>

#include "logic/atom.h"
#include "logic/term.h"

namespace bddfc {

/// A partial map Term -> Term. Terms outside the domain are left unchanged
/// by Apply (the paper's convention: "replace x with π(x) if the latter is
/// defined").
class Substitution {
 public:
  Substitution() = default;

  /// Binds `from` to `to`, overwriting any previous binding.
  void Bind(Term from, Term to) { map_[from] = to; }

  /// Returns the image of `t`, or `t` itself if unbound.
  Term Apply(Term t) const {
    auto it = map_.find(t);
    return it == map_.end() ? t : it->second;
  }

  /// Returns the image of `t` if bound, otherwise an invalid term.
  Term Lookup(Term t) const {
    auto it = map_.find(t);
    return it == map_.end() ? Term() : it->second;
  }

  bool IsBound(Term t) const { return map_.find(t) != map_.end(); }

  Atom Apply(const Atom& a) const {
    std::vector<Term> args;
    args.reserve(a.arity());
    for (Term t : a.args()) args.push_back(Apply(t));
    return Atom(a.pred(), std::move(args));
  }

  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const {
    std::vector<Atom> out;
    out.reserve(atoms.size());
    for (const Atom& a : atoms) out.push_back(Apply(a));
    return out;
  }

  std::vector<Term> ApplyTuple(const std::vector<Term>& tuple) const {
    std::vector<Term> out;
    out.reserve(tuple.size());
    for (Term t : tuple) out.push_back(Apply(t));
    return out;
  }

  /// Composition: returns the substitution t -> other.Apply(this->Apply(t)),
  /// with domain = dom(this) ∪ dom(other).
  Substitution ComposeWith(const Substitution& other) const {
    Substitution out;
    for (const auto& [from, to] : map_) out.Bind(from, other.Apply(to));
    for (const auto& [from, to] : other.map_) {
      if (!out.IsBound(from)) out.Bind(from, to);
    }
    return out;
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  const std::unordered_map<Term, Term>& entries() const { return map_; }

 private:
  std::unordered_map<Term, Term> map_;
};

}  // namespace bddfc

#endif  // BDDFC_LOGIC_SUBSTITUTION_H_
