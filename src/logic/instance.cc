#include "logic/instance.h"

#include <utility>

#include "base/check.h"

namespace bddfc {

Instance::Instance(Universe* universe, StorageKind storage)
    : universe_(universe), store_(FactStore::Create(storage)) {
  BDDFC_CHECK(universe != nullptr);
  AddAtom(Atom(universe->top(), {}));
}

Instance::Instance(const Instance& other)
    : universe_(other.universe_), store_(other.store_->Clone()) {}

Instance::Instance(const Instance& other, StorageKind storage)
    : universe_(other.universe_) {
  if (storage == other.storage()) {
    // Same backend: the store's deep copy preserves index structures and
    // run layout instead of replaying every atom through the hash paths.
    store_ = other.store_->Clone();
    return;
  }
  store_ = FactStore::Create(storage);
  // atoms()[0] is ⊤, so the bulk append reconstructs the full sequence
  // (including the implicit fact) in order.
  store_->AddAtoms(other.atoms());
}

Instance& Instance::operator=(const Instance& other) {
  if (this == &other) return *this;
  Instance copy(other);
  universe_ = copy.universe_;
  store_ = std::move(copy.store_);
  return *this;
}

bool Instance::AddAtom(const Atom& atom) {
  BDDFC_CHECK_EQ(static_cast<int>(atom.arity()),
                 universe_->ArityOf(atom.pred()));
  return store_->AddAtom(atom);
}

void Instance::AddAtoms(const Atom* begin, const Atom* end) {
  for (const Atom* a = begin; a != end; ++a) {
    BDDFC_CHECK_EQ(static_cast<int>(a->arity()),
                   universe_->ArityOf(a->pred()));
  }
  store_->AddAtoms(begin, end);
}

Instance Instance::Restrict(
    const std::unordered_set<PredicateId>& preds) const {
  Instance out(universe_, storage());
  std::vector<Atom> kept;
  for (const Atom& a : atoms()) {
    if (preds.find(a.pred()) != preds.end()) kept.push_back(a);
  }
  out.AddAtoms(kept);
  return out;
}

Instance Instance::Map(const Substitution& sigma) const {
  Instance out(universe_, storage());
  std::vector<Atom> mapped;
  mapped.reserve(size());
  for (const Atom& a : atoms()) mapped.push_back(sigma.Apply(a));
  out.AddAtoms(mapped);
  return out;
}

Instance Instance::DisjointUnion(const Instance& a, const Instance& b) {
  BDDFC_CHECK_EQ(a.universe_, b.universe_);
  Universe* u = a.universe_;
  Instance out(u, a.storage());
  Substitution rename;
  for (Term t : b.ActiveDomain()) {
    if (t.IsRigid()) continue;
    rename.Bind(t, u->FreshNull());
  }
  std::vector<Atom> merged;
  merged.reserve(a.size() + b.size());
  for (const Atom& atom : a.atoms()) merged.push_back(atom);
  for (const Atom& atom : b.atoms()) merged.push_back(rename.Apply(atom));
  out.AddAtoms(merged);
  return out;
}

}  // namespace bddfc
