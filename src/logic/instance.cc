#include "logic/instance.h"

#include <algorithm>

#include "base/check.h"

namespace bddfc {

const std::vector<std::uint32_t> Instance::kEmptyIndex;

std::uint64_t Instance::PosIndexKey(PredicateId pred, int pos) {
  BDDFC_CHECK_GE(pos, 0);
  return (static_cast<std::uint64_t>(pred) << 32) |
         static_cast<std::uint32_t>(pos);
}

namespace {

// Clamps a sorted index vector to the atom-index range [lo, hi).
IndexView Clamp(const std::vector<std::uint32_t>& indices, std::uint32_t lo,
                std::uint32_t hi) {
  if (lo >= hi) return IndexView();
  const std::uint32_t* begin = indices.data();
  const std::uint32_t* end = begin + indices.size();
  if (lo > 0) begin = std::lower_bound(begin, end, lo);
  if (indices.empty() || hi <= indices.back()) {
    end = std::lower_bound(begin, end, hi);
  }
  return IndexView(begin, end);
}

}  // namespace

Instance::Instance(Universe* universe) : universe_(universe) {
  BDDFC_CHECK(universe != nullptr);
  AddAtom(Atom(universe->top(), {}));
}

bool Instance::AddAtom(const Atom& atom) {
  BDDFC_CHECK_EQ(static_cast<int>(atom.arity()),
                 universe_->ArityOf(atom.pred()));
  if (!pos_.emplace(atom, atoms_.size()).second) return false;
  std::uint32_t idx = static_cast<std::uint32_t>(atoms_.size());
  atoms_.push_back(atom);
  by_pred_[atom.pred()].push_back(idx);
  for (std::size_t pos = 0; pos < atom.arity(); ++pos) {
    std::uint64_t pred_pos = PosIndexKey(atom.pred(), static_cast<int>(pos));
    by_pos_[{pred_pos, atom.arg(pos)}].push_back(idx);
    Term t = atom.arg(pos);
    if (adom_set_.insert(t).second) adom_.push_back(t);
  }
  return true;
}

void Instance::AddAtoms(const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) AddAtom(a);
}

const std::vector<std::uint32_t>& Instance::AtomsWith(PredicateId pred) const {
  auto it = by_pred_.find(pred);
  return it == by_pred_.end() ? kEmptyIndex : it->second;
}

const std::vector<std::uint32_t>& Instance::AtomsWith(PredicateId pred,
                                                      int pos, Term t) const {
  auto it = by_pos_.find({PosIndexKey(pred, pos), t});
  return it == by_pos_.end() ? kEmptyIndex : it->second;
}

IndexView Instance::AtomsWithIn(PredicateId pred, std::uint32_t lo,
                                std::uint32_t hi) const {
  return Clamp(AtomsWith(pred), lo, hi);
}

IndexView Instance::AtomsWithIn(PredicateId pred, int pos, Term t,
                                std::uint32_t lo, std::uint32_t hi) const {
  return Clamp(AtomsWith(pred, pos, t), lo, hi);
}

Instance Instance::Restrict(
    const std::unordered_set<PredicateId>& preds) const {
  Instance out(universe_);
  for (const Atom& a : atoms_) {
    if (preds.find(a.pred()) != preds.end()) out.AddAtom(a);
  }
  return out;
}

Instance Instance::Map(const Substitution& sigma) const {
  Instance out(universe_);
  for (const Atom& a : atoms_) out.AddAtom(sigma.Apply(a));
  return out;
}

Instance Instance::DisjointUnion(const Instance& a, const Instance& b) {
  BDDFC_CHECK_EQ(a.universe_, b.universe_);
  Universe* u = a.universe_;
  Instance out(u);
  for (const Atom& atom : a.atoms()) out.AddAtom(atom);
  Substitution rename;
  for (Term t : b.ActiveDomain()) {
    if (t.IsRigid()) continue;
    rename.Bind(t, u->FreshNull());
  }
  for (const Atom& atom : b.atoms()) out.AddAtom(rename.Apply(atom));
  return out;
}

}  // namespace bddfc
