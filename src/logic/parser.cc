#include "logic/parser.h"

#include <cctype>
#include <unordered_set>
#include <vector>

#include "base/check.h"

namespace bddfc {
namespace {

enum class TokKind {
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,     // ->
  kTurnstile, // :-
  kQuestion,
  kLBracket,
  kRBracket,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
  int column;  // 1-based column of the token's first character
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Token Next() {
    SkipSpaceAndComments();
    const int col = Column();
    if (pos_ >= input_.size()) return {TokKind::kEnd, "", line_, col};
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '\'')) {
        ++pos_;
      }
      return {TokKind::kIdent, std::string(input_.substr(start, pos_ - start)),
              line_, col};
    }
    ++pos_;
    switch (c) {
      case '(':
        return {TokKind::kLParen, "(", line_, col};
      case ')':
        return {TokKind::kRParen, ")", line_, col};
      case ',':
        return {TokKind::kComma, ",", line_, col};
      case '.':
        return {TokKind::kDot, ".", line_, col};
      case '?':
        return {TokKind::kQuestion, "?", line_, col};
      case '[':
        return {TokKind::kLBracket, "[", line_, col};
      case ']':
        return {TokKind::kRBracket, "]", line_, col};
      case '-':
        if (pos_ < input_.size() && input_[pos_] == '>') {
          ++pos_;
          return {TokKind::kArrow, "->", line_, col};
        }
        break;
      case ':':
        if (pos_ < input_.size() && input_[pos_] == '-') {
          ++pos_;
          return {TokKind::kTurnstile, ":-", line_, col};
        }
        break;
      default:
        break;
    }
    return {TokKind::kEnd, std::string(1, c), line_, col};
  }

 private:
  int Column() const { return static_cast<int>(pos_ - line_start_) + 1; }

  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' || c == '%') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

// How identifiers inside atom argument lists are interpreted.
enum class TermMode { kVariables, kConstants, kQuery };

class ParserImpl {
 public:
  ParserImpl(Universe* universe, std::string_view text)
      : universe_(universe), lexer_(text) {
    Advance();
  }

  bool failed() const { return failed_; }
  const ParseError& error() const { return error_; }
  bool AtEnd() const { return cur_.kind == TokKind::kEnd && cur_.text.empty(); }

  void Advance() { cur_ = lexer_.Next(); }

  bool Expect(TokKind kind, const char* what) {
    if (cur_.kind != kind) {
      Fail(std::string("expected ") + what + " but found '" + cur_.text + "'");
      return false;
    }
    Advance();
    return true;
  }

  void Fail(std::string message) {
    FailAt(std::move(message), cur_.line, cur_.column);
  }

  void FailAt(std::string message, int line, int column) {
    if (!failed_) {
      failed_ = true;
      error_ = {std::move(message), line, column};
    }
  }

  Term MakeTerm(const std::string& name, TermMode mode) {
    switch (mode) {
      case TermMode::kVariables:
        return universe_->InternVariable(name);
      case TermMode::kConstants:
        return universe_->InternConstant(name);
      case TermMode::kQuery:
        return QueryTerm(name);
    }
    return Term();
  }

  Term QueryTerm(const std::string& name);

  // Parses `P(t1,...,tn)` or a bare nullary `P`.
  std::optional<Atom> ParseAtom(TermMode mode) {
    if (cur_.kind != TokKind::kIdent) {
      Fail("expected predicate name, found '" + cur_.text + "'");
      return std::nullopt;
    }
    std::string pred_name = cur_.text;
    const int pred_line = cur_.line;
    const int pred_column = cur_.column;
    Advance();
    std::vector<Term> args;
    if (cur_.kind == TokKind::kLParen) {
      Advance();
      if (cur_.kind != TokKind::kRParen) {
        for (;;) {
          if (cur_.kind != TokKind::kIdent) {
            Fail("expected term, found '" + cur_.text + "'");
            return std::nullopt;
          }
          args.push_back(MakeTerm(cur_.text, mode));
          Advance();
          if (cur_.kind == TokKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (!Expect(TokKind::kRParen, "')'")) return std::nullopt;
    }
    PredicateId existing = universe_->FindPredicate(pred_name);
    if (existing != Universe::kNoPredicate &&
        universe_->ArityOf(existing) != static_cast<int>(args.size())) {
      FailAt("predicate '" + pred_name + "' used with arity " +
                 std::to_string(args.size()) + " but declared with arity " +
                 std::to_string(universe_->ArityOf(existing)),
             pred_line, pred_column);
      return std::nullopt;
    }
    PredicateId pred = universe_->InternPredicate(
        pred_name, static_cast<int>(args.size()));
    return Atom(pred, std::move(args));
  }

  // Parses a comma-separated list of atoms, stopping before `stop` tokens.
  std::optional<std::vector<Atom>> ParseAtomList(TermMode mode) {
    std::vector<Atom> atoms;
    for (;;) {
      auto atom = ParseAtom(mode);
      if (!atom) return std::nullopt;
      atoms.push_back(std::move(*atom));
      if (cur_.kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return atoms;
  }

  std::optional<Rule> ParseOneRule() {
    std::string label;
    if (cur_.kind == TokKind::kLBracket) {
      Advance();
      if (cur_.kind != TokKind::kIdent) {
        Fail("expected rule label");
        return std::nullopt;
      }
      label = cur_.text;
      Advance();
      if (!Expect(TokKind::kRBracket, "']'")) return std::nullopt;
    }
    auto body = ParseAtomList(TermMode::kVariables);
    if (!body) return std::nullopt;
    if (!Expect(TokKind::kArrow, "'->'")) return std::nullopt;
    auto head = ParseAtomList(TermMode::kVariables);
    if (!head) return std::nullopt;
    if (cur_.kind == TokKind::kDot) Advance();
    return Rule(std::move(*body), std::move(*head), std::move(label));
  }

  std::optional<Cq> ParseOneCq() {
    if (!Expect(TokKind::kQuestion, "'?'")) return std::nullopt;
    struct AnswerName {
      std::string name;
      int line;
      int column;
    };
    std::vector<AnswerName> answer_names;
    std::unordered_set<std::string> answer_name_set;
    if (cur_.kind == TokKind::kLParen) {
      Advance();
      if (cur_.kind != TokKind::kRParen) {
        for (;;) {
          if (cur_.kind != TokKind::kIdent) {
            Fail("expected answer variable");
            return std::nullopt;
          }
          if (!answer_name_set.insert(cur_.text).second) {
            Fail("duplicate answer variable '" + cur_.text + "'");
            return std::nullopt;
          }
          answer_names.push_back({cur_.text, cur_.line, cur_.column});
          Advance();
          if (cur_.kind == TokKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (!Expect(TokKind::kRParen, "')'")) return std::nullopt;
    }
    if (!Expect(TokKind::kTurnstile, "':-'")) return std::nullopt;
    auto atoms = ParseAtomList(TermMode::kQuery);
    if (!atoms) return std::nullopt;
    // Every answer variable must occur (as a variable — constants resolved
    // by TermMode::kQuery don't count) in some body atom.
    std::unordered_set<Term> body_vars;
    for (const Atom& atom : *atoms) {
      for (Term t : atom.args()) {
        if (t.IsVariable()) body_vars.insert(t);
      }
    }
    std::vector<Term> answers;
    answers.reserve(answer_names.size());
    for (const AnswerName& answer : answer_names) {
      Term v = universe_->InternVariable(answer.name);
      if (body_vars.find(v) == body_vars.end()) {
        FailAt("answer variable '" + answer.name +
                   "' does not occur in the query body",
               answer.line, answer.column);
        return std::nullopt;
      }
      answers.push_back(v);
    }
    if (cur_.kind == TokKind::kDot) Advance();
    return Cq(std::move(*atoms), std::move(answers));
  }

  Universe* universe_;
  Lexer lexer_;
  Token cur_{TokKind::kEnd, "", 0, 0};
  bool failed_ = false;
  ParseError error_;
};

Term ParserImpl::QueryTerm(const std::string& name) {
  // A query identifier denotes a constant iff that constant name is already
  // interned (e.g. by a previously parsed instance); otherwise it is a
  // query variable.
  Term maybe_const = universe_->FindConstant(name);
  if (maybe_const.IsValid()) return maybe_const;
  return universe_->InternVariable(name);
}

}  // namespace

std::optional<Rule> ParseRule(Universe* universe, std::string_view text,
                              ParseError* error) {
  ParserImpl p(universe, text);
  auto rule = p.ParseOneRule();
  if (!rule || p.failed()) {
    if (error) *error = p.error();
    return std::nullopt;
  }
  return rule;
}

std::optional<RuleSet> ParseRuleSet(Universe* universe, std::string_view text,
                                    ParseError* error) {
  RuleSet rules;
  ParserImpl p(universe, text);
  while (!p.AtEnd()) {
    auto rule = p.ParseOneRule();
    if (!rule || p.failed()) {
      if (error) *error = p.error();
      return std::nullopt;
    }
    rules.push_back(std::move(*rule));
  }
  return rules;
}

std::optional<Instance> ParseInstance(Universe* universe,
                                      std::string_view text,
                                      ParseError* error) {
  Instance instance(universe);
  ParserImpl p(universe, text);
  while (!p.AtEnd()) {
    auto atom = p.ParseAtom(TermMode::kConstants);
    if (!atom || p.failed()) {
      if (error) *error = p.error();
      return std::nullopt;
    }
    instance.AddAtom(*atom);
    if (p.cur_.kind == TokKind::kDot) p.Advance();
  }
  return instance;
}

std::optional<Cq> ParseCq(Universe* universe, std::string_view text,
                          ParseError* error) {
  ParserImpl p(universe, text);
  auto cq = p.ParseOneCq();
  if (!cq || p.failed()) {
    if (error) *error = p.error();
    return std::nullopt;
  }
  return cq;
}

std::optional<std::vector<Cq>> ParseCqList(Universe* universe,
                                           std::string_view text,
                                           ParseError* error) {
  std::vector<Cq> queries;
  ParserImpl p(universe, text);
  while (!p.AtEnd()) {
    auto cq = p.ParseOneCq();
    if (!cq || p.failed()) {
      if (error) *error = p.error();
      return std::nullopt;
    }
    queries.push_back(std::move(*cq));
  }
  return queries;
}

Rule MustParseRule(Universe* universe, std::string_view text) {
  ParseError error;
  auto rule = ParseRule(universe, text, &error);
  if (!rule) {
    std::fprintf(stderr, "ParseRule failed (line %d:%d): %s\n", error.line, error.column,
                 error.message.c_str());
  }
  BDDFC_CHECK(rule.has_value());
  return *rule;
}

RuleSet MustParseRuleSet(Universe* universe, std::string_view text) {
  ParseError error;
  auto rules = ParseRuleSet(universe, text, &error);
  if (!rules) {
    std::fprintf(stderr, "ParseRuleSet failed (line %d:%d): %s\n", error.line, error.column,
                 error.message.c_str());
  }
  BDDFC_CHECK(rules.has_value());
  return *rules;
}

Instance MustParseInstance(Universe* universe, std::string_view text) {
  ParseError error;
  auto instance = ParseInstance(universe, text, &error);
  if (!instance) {
    std::fprintf(stderr, "ParseInstance failed (line %d:%d): %s\n", error.line, error.column,
                 error.message.c_str());
  }
  BDDFC_CHECK(instance.has_value());
  return *instance;
}

Cq MustParseCq(Universe* universe, std::string_view text) {
  ParseError error;
  auto cq = ParseCq(universe, text, &error);
  if (!cq) {
    std::fprintf(stderr, "ParseCq failed (line %d:%d): %s\n", error.line, error.column,
                 error.message.c_str());
  }
  BDDFC_CHECK(cq.has_value());
  return *cq;
}

}  // namespace bddfc
