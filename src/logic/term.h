// Terms of the first-order substrate.
//
// A Term is a tagged 32-bit value: a constant, a variable, or a labeled null
// (a fresh value invented by the chase, Section 2.2 of the paper). The tag
// lives in the top two bits so terms hash and compare as plain integers.
//
// Convention used throughout the library (it matches the paper's semantics):
//   * constants are rigid: every homomorphism maps a constant to itself;
//   * variables and nulls are flexible: homomorphisms may map them anywhere.
// The paper's instances are "sets of atoms over variables"; we parse database
// instances over constants, which realizes the same semantics because
// homomorphic equivalence of chases must fix the database elements.

#ifndef BDDFC_LOGIC_TERM_H_
#define BDDFC_LOGIC_TERM_H_

#include <cstdint>
#include <functional>

#include "base/check.h"

namespace bddfc {

/// The three kinds of term. See file comment for mapping semantics.
enum class TermKind : std::uint8_t {
  kConstant = 0,
  kVariable = 1,
  kNull = 2,
};

/// A compact, value-type term. Invalid (default-constructed) terms are used
/// as "unbound" sentinels by the homomorphism solver.
class Term {
 public:
  /// Constructs the invalid term.
  constexpr Term() : bits_(kInvalidBits) {}

  static constexpr Term MakeConstant(std::uint32_t index) {
    return Term(Pack(TermKind::kConstant, index));
  }
  static constexpr Term MakeVariable(std::uint32_t index) {
    return Term(Pack(TermKind::kVariable, index));
  }
  static constexpr Term MakeNull(std::uint32_t index) {
    return Term(Pack(TermKind::kNull, index));
  }

  constexpr bool IsValid() const { return bits_ != kInvalidBits; }
  constexpr TermKind kind() const {
    return static_cast<TermKind>(bits_ >> kShift);
  }
  constexpr std::uint32_t index() const { return bits_ & kIndexMask; }

  constexpr bool IsConstant() const {
    return IsValid() && kind() == TermKind::kConstant;
  }
  constexpr bool IsVariable() const {
    return IsValid() && kind() == TermKind::kVariable;
  }
  constexpr bool IsNull() const {
    return IsValid() && kind() == TermKind::kNull;
  }

  /// True if homomorphisms must map this term to itself.
  constexpr bool IsRigid() const { return IsConstant(); }

  /// Raw bits, suitable for hashing.
  constexpr std::uint32_t raw() const { return bits_; }

  friend constexpr bool operator==(Term a, Term b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Term a, Term b) {
    return a.bits_ != b.bits_;
  }
  friend constexpr bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

 private:
  static constexpr int kShift = 30;
  static constexpr std::uint32_t kIndexMask = (1u << kShift) - 1;
  static constexpr std::uint32_t kInvalidBits = 0xffffffffu;

  static constexpr std::uint32_t Pack(TermKind kind, std::uint32_t index) {
    return (static_cast<std::uint32_t>(kind) << kShift) | (index & kIndexMask);
  }

  explicit constexpr Term(std::uint32_t bits) : bits_(bits) {}

  std::uint32_t bits_;
};

}  // namespace bddfc

namespace std {
template <>
struct hash<bddfc::Term> {
  std::size_t operator()(bddfc::Term t) const {
    // splitmix-style finalizer over the raw bits.
    std::uint64_t z = t.raw() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
}  // namespace std

#endif  // BDDFC_LOGIC_TERM_H_
