#include "logic/rule.h"

#include "base/check.h"
#include "logic/instance.h"

namespace bddfc {

namespace {

// Collects the variables of `atoms` in first-occurrence order.
std::vector<Term> CollectVars(const std::vector<Atom>& atoms) {
  std::vector<Term> vars;
  std::unordered_set<Term> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.IsVariable() && seen.insert(t).second) vars.push_back(t);
    }
  }
  return vars;
}

}  // namespace

Rule::Rule(std::vector<Atom> body, std::vector<Atom> head, std::string label)
    : body_(std::move(body)), head_(std::move(head)), label_(std::move(label)) {
  BDDFC_CHECK(!body_.empty());
  BDDFC_CHECK(!head_.empty());
  body_vars_ = CollectVars(body_);
  head_vars_ = CollectVars(head_);
  std::unordered_set<Term> body_set(body_vars_.begin(), body_vars_.end());
  for (Term v : head_vars_) {
    if (body_set.find(v) != body_set.end()) {
      frontier_.push_back(v);
      frontier_set_.insert(v);
    } else {
      existentials_.push_back(v);
      existential_set_.insert(v);
    }
  }
}

std::unordered_set<PredicateId> SignatureOf(const RuleSet& rules) {
  std::unordered_set<PredicateId> sig;
  for (const Rule& r : rules) {
    for (const Atom& a : r.body()) sig.insert(a.pred());
    for (const Atom& a : r.head()) sig.insert(a.pred());
  }
  return sig;
}

std::unordered_set<PredicateId> SignatureOf(const Instance& instance) {
  std::unordered_set<PredicateId> sig;
  for (const Atom& a : instance.atoms()) sig.insert(a.pred());
  return sig;
}

int MaxArity(const RuleSet& rules, const Universe& universe) {
  int max_arity = 0;
  for (PredicateId p : SignatureOf(rules)) {
    max_arity = std::max(max_arity, universe.ArityOf(p));
  }
  return max_arity;
}

std::pair<RuleSet, RuleSet> SplitDatalog(const RuleSet& rules) {
  RuleSet datalog;
  RuleSet existential;
  for (const Rule& r : rules) {
    (r.IsDatalog() ? datalog : existential).push_back(r);
  }
  return {std::move(datalog), std::move(existential)};
}

}  // namespace bddfc
