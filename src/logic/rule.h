// Existential rules (Section 2.1): ∀x̄,ȳ B(x̄,ȳ) → ∃z̄ H(ȳ,z̄).
//
// The frontier fr(ρ) is the set of variables shared between body and head;
// existential variables are head variables outside the body. A rule is
// Datalog when it has no existential variables.

#ifndef BDDFC_LOGIC_RULE_H_
#define BDDFC_LOGIC_RULE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "logic/atom.h"
#include "logic/term.h"
#include "logic/universe.h"

namespace bddfc {

class Instance;

/// An existential rule, with body/head/frontier decomposition precomputed.
class Rule {
 public:
  /// Builds a rule; body and head must be non-empty conjunctions of atoms
  /// over variable terms (constants in rules are permitted and treated as
  /// rigid).
  Rule(std::vector<Atom> body, std::vector<Atom> head,
       std::string label = "");

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }
  const std::string& label() const { return label_; }

  /// Variables occurring in the body.
  const std::vector<Term>& body_vars() const { return body_vars_; }
  /// Variables occurring in the head.
  const std::vector<Term>& head_vars() const { return head_vars_; }
  /// Frontier: variables occurring in both body and head.
  const std::vector<Term>& frontier() const { return frontier_; }
  /// Existential variables: head variables not in the body.
  const std::vector<Term>& existentials() const { return existentials_; }

  bool IsDatalog() const { return existentials_.empty(); }

  bool IsFrontierVar(Term t) const {
    return frontier_set_.find(t) != frontier_set_.end();
  }
  bool IsExistentialVar(Term t) const {
    return existential_set_.find(t) != existential_set_.end();
  }

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.body_ == b.body_ && a.head_ == b.head_;
  }

 private:
  std::vector<Atom> body_;
  std::vector<Atom> head_;
  std::string label_;
  std::vector<Term> body_vars_;
  std::vector<Term> head_vars_;
  std::vector<Term> frontier_;
  std::vector<Term> existentials_;
  std::unordered_set<Term> frontier_set_;
  std::unordered_set<Term> existential_set_;
};

/// A rule set is an ordered collection of rules (order only matters for
/// reporting).
using RuleSet = std::vector<Rule>;

/// All predicates mentioned by the rule set (its signature).
std::unordered_set<PredicateId> SignatureOf(const RuleSet& rules);

/// All predicates mentioned by an instance.
std::unordered_set<PredicateId> SignatureOf(const Instance& instance);

/// Maximum predicate arity used in the rule set.
int MaxArity(const RuleSet& rules, const Universe& universe);

/// Splits a rule set into (Datalog rules, non-Datalog rules) — the
/// R_DL / R_∃ decomposition used throughout Section 5.
std::pair<RuleSet, RuleSet> SplitDatalog(const RuleSet& rules);

}  // namespace bddfc

#endif  // BDDFC_LOGIC_RULE_H_
