#include "chase/rule_scheduler.h"

#include <algorithm>

#include "obs/obs.h"

namespace bddfc {

std::size_t RuleSchedulerStats::fired_total() const {
  std::size_t n = 0;
  for (std::size_t f : fired) n += f;
  return n;
}

std::size_t RuleSchedulerStats::skipped_total() const {
  std::size_t n = 0;
  for (std::size_t s : skipped) n += s;
  return n;
}

RuleScheduler::RuleScheduler(std::size_t num_rules, bool naive)
    : num_rules_(num_rules), naive_(naive) {
  stats_.fired.assign(num_rules, 0);
  stats_.skipped.assign(num_rules, 0);
}

std::unique_ptr<RuleScheduler> RuleScheduler::Flat(std::size_t num_rules) {
  return std::unique_ptr<RuleScheduler>(
      new RuleScheduler(num_rules, /*naive=*/false));
}

std::unique_ptr<RuleScheduler> RuleScheduler::Stratified(
    const RuleSet& rules, Universe* universe, bool naive) {
  std::unique_ptr<RuleScheduler> out(
      new RuleScheduler(rules.size(), naive));
  out->graph_ = BuildRelianceGraph(rules, universe);
  out->stratification_ = Stratify(*out->graph_);
  out->saturated_.assign(out->stratification_->num_strata(), 0);
  out->cursor_.assign(rules.size(), 0);
  out->enumerated_.assign(rules.size(), 0);
  out->body_preds_.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::vector<PredicateId> preds;
    preds.reserve(rule.body().size());
    for (const Atom& a : rule.body()) preds.push_back(a.pred());
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    out->body_preds_.push_back(std::move(preds));
  }
  return out;
}

void RuleScheduler::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_skipped_ = nullptr;
    metric_active_rules_ = nullptr;
    metric_strata_ = nullptr;
    return;
  }
  metric_skipped_ = metrics->GetCounter("sched.rules_skipped");
  metric_active_rules_ = metrics->GetGauge("sched.active_rules");
  metric_strata_ = metrics->GetGauge("sched.strata");
  metric_strata_->Set(static_cast<std::int64_t>(num_strata()));
}

std::size_t RuleScheduler::num_strata() const {
  if (stratified()) return stratification_->num_strata();
  return num_rules_ == 0 ? 0 : 1;
}

const std::vector<std::size_t>* RuleScheduler::FiringRanks() const {
  return stratified() ? &stratification_->firing_rank : nullptr;
}

std::vector<exec::RuleJob> RuleScheduler::PlanRound(
    bool global_full, std::uint32_t global_delta_begin,
    const Instance& instance) {
  BDDFC_OBS_SPAN(plan_span, "sched", "sched.plan_round");
  std::vector<exec::RuleJob> jobs;
  if (!stratified()) {
    jobs.reserve(num_rules_);
    for (std::size_t r = 0; r < num_rules_; ++r) {
      jobs.push_back({r, global_full, global_delta_begin});
    }
    if (metric_active_rules_ != nullptr) {
      metric_active_rules_->Set(static_cast<std::int64_t>(jobs.size()));
    }
    plan_span.Arg("jobs", jobs.size());
    return jobs;
  }
  // The stratified schedule tracks its own per-rule windows; the chase's
  // global window is the flat schedule's business.
  (void)global_full;
  (void)global_delta_begin;

  // Observe every atom appended since the last round (chase output and
  // AddBaseFacts insertions alike) for the empty-delta skip.
  const std::vector<Atom>& atoms = instance.atoms();
  for (std::size_t i = scanned_upto_; i < atoms.size(); ++i) {
    const PredicateId p = atoms[i].pred();
    if (p >= last_atom_of_pred_.size()) {
      last_atom_of_pred_.resize(p + 1, -1);
    }
    last_atom_of_pred_[p] = static_cast<std::int64_t>(i);
  }
  scanned_upto_ = atoms.size();

  // A stratum is active once unsaturated with every predecessor stratum
  // saturated. The topologically least unsaturated stratum always
  // qualifies, so the active set is never empty before AllSaturated().
  const Stratification& strat = *stratification_;
  active_strata_.clear();
  active_rules_.clear();
  for (std::size_t s = 0; s < strat.num_strata(); ++s) {
    if (saturated_[s]) continue;
    bool ready = true;
    for (std::size_t p : strat.predecessors[s]) {
      if (!saturated_[p]) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    active_strata_.push_back(s);
    for (std::size_t r : strat.strata[s]) active_rules_.push_back(r);
    // Announce each stratum's activation once per activation period.
    if (announced_.size() < strat.num_strata()) {
      announced_.resize(strat.num_strata(), 0);
    }
    if (!announced_[s]) {
      announced_[s] = 1;
      obs::Instant("sched", "sched.stratum_active", "stratum", s);
    }
  }

  for (std::size_t r : active_rules_) {
    if (naive_ || !enumerated_[r]) {
      // First activation (or naive re-enumeration): full scan. No
      // empty-delta skip here — it must see the whole prefix once.
      jobs.push_back({r, true, 0});
      continue;
    }
    // Empty-delta skip: if no body predicate gained an atom at or above
    // the rule's cursor, no new body image can anchor in its window.
    bool has_delta = false;
    for (PredicateId p : body_preds_[r]) {
      if (p < last_atom_of_pred_.size() &&
          last_atom_of_pred_[p] >= static_cast<std::int64_t>(cursor_[r])) {
        has_delta = true;
        break;
      }
    }
    if (has_delta) jobs.push_back({r, false, cursor_[r]});
  }

  // Skip accounting: the flat schedule would have searched every rule.
  std::vector<char> planned(num_rules_, 0);
  std::size_t round_skipped = 0;
  for (const exec::RuleJob& job : jobs) planned[job.rule_index] = 1;
  for (std::size_t r = 0; r < num_rules_; ++r) {
    if (!planned[r]) {
      ++stats_.skipped[r];
      ++round_skipped;
      obs::Instant("sched", "sched.rule_skip", "rule", r);
    }
  }
  if (metric_skipped_ != nullptr && round_skipped > 0) {
    metric_skipped_->Add(round_skipped);
  }
  if (metric_active_rules_ != nullptr) {
    metric_active_rules_->Set(static_cast<std::int64_t>(jobs.size()));
  }
  plan_span.Arg("jobs", jobs.size()).Arg("skipped", round_skipped);
  return jobs;
}

void RuleScheduler::OnRoundEnd(std::uint32_t delta_end,
                               const std::vector<std::size_t>& fired,
                               bool truncated) {
  for (std::size_t r = 0; r < fired.size() && r < num_rules_; ++r) {
    stats_.fired[r] += fired[r];
  }
  if (!stratified() || truncated) return;
  // Every active rule's window has been searched (or proven empty) up to
  // delta_end; atoms this round appended sit above it and form the next
  // window. A rule skipped for an empty delta advances too — the skip
  // condition is exactly "nothing for it in [cursor, delta_end)".
  for (std::size_t r : active_rules_) {
    cursor_[r] = delta_end;
    enumerated_[r] = 1;
  }
  const Stratification& strat = *stratification_;
  for (std::size_t s : active_strata_) {
    bool any_fired = false;
    for (std::size_t r : strat.strata[s]) {
      if (fired[r] > 0) {
        any_fired = true;
        break;
      }
    }
    if (!any_fired) {
      saturated_[s] = 1;
      if (s < announced_.size()) announced_[s] = 0;
      obs::Instant("sched", "sched.stratum_saturated", "stratum", s);
    }
  }
  active_rules_.clear();
  active_strata_.clear();
}

bool RuleScheduler::AllSaturated() const {
  if (!stratified()) return true;
  for (char s : saturated_) {
    if (!s) return false;
  }
  return true;
}

void RuleScheduler::OnFactsInserted() {
  if (!stratified()) return;
  std::fill(saturated_.begin(), saturated_.end(), 0);
}

}  // namespace bddfc
