#include "chase/segment_engine.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "base/check.h"
#include "base/thread_pool.h"
#include "obs/obs.h"
#include "storage/fact_store.h"

namespace bddfc {

SegmentRulePlan CompileSegmentPlan(const Rule& rule) {
  using Kind = SegmentJoinStep::Kind;
  using Range = SegmentJoinStep::Range;
  SegmentRulePlan plan;
  const std::vector<Atom>& body = rule.body();
  plan.anchors.reserve(body.size());
  for (std::size_t anchor = 0; anchor < body.size(); ++anchor) {
    SegmentAnchorPlan ap;
    ap.anchor = anchor;
    std::unordered_map<Term, int> slot_of;
    int num_slots = 0;

    // Emits the step matching body atom `bi`: classify each argument
    // position against the variables slotted so far, pick the merge-join
    // probe (the first slotted position), and slot the atom's new
    // variables.
    const auto add_step = [&](std::size_t bi, Kind kind, Range range) {
      SegmentJoinStep step;
      step.kind = kind;
      step.range = range;
      step.body_index = bi;
      const Atom& atom = body[bi];
      step.pred = atom.pred();
      std::unordered_map<Term, int> new_var_pos;
      for (int pos = 0; pos < static_cast<int>(atom.arity()); ++pos) {
        const Term t = atom.arg(pos);
        if (t.IsConstant()) {
          step.const_checks.push_back({pos, t});
          continue;
        }
        // A repeat of a variable this atom itself introduced is an
        // atom-local dup check — it must be classified before the slot
        // lookup, because the introduction already claimed a slot, and
        // that slot is only filled by this step's own outputs (the scan
        // step has no tuple to slot-check against at all).
        const auto first = new_var_pos.find(t);
        if (first != new_var_pos.end()) {
          step.dup_checks.push_back({pos, first->second});
          continue;
        }
        const auto slotted = slot_of.find(t);
        if (slotted != slot_of.end()) {
          if (kind == Kind::kMergeJoin && step.probe_pos < 0) {
            step.probe_pos = pos;
            step.probe_slot = slotted->second;
          } else {
            step.slot_checks.push_back({pos, slotted->second});
          }
          continue;
        }
        new_var_pos.emplace(t, pos);
        const int slot = num_slots++;
        slot_of.emplace(t, slot);
        step.outputs.push_back({pos, slot});
      }
      ap.steps.push_back(std::move(step));
    };

    add_step(anchor, Kind::kScan, Range::kDelta);

    // Greedy join order: repeatedly take the remaining atom with the most
    // bound (slotted-variable or constant) positions; ties break toward
    // the lowest body index. An atom with at least one slotted variable
    // merge-joins; one with none cross-joins (disconnected component).
    std::vector<bool> placed(body.size(), false);
    placed[anchor] = true;
    for (std::size_t n = 1; n < body.size(); ++n) {
      std::size_t best = body.size();
      int best_bound = -1;
      bool best_joinable = false;
      for (std::size_t bi = 0; bi < body.size(); ++bi) {
        if (placed[bi]) continue;
        int bound = 0;
        bool joinable = false;
        for (const Term t : body[bi].args()) {
          if (t.IsConstant()) {
            ++bound;
          } else if (slot_of.find(t) != slot_of.end()) {
            ++bound;
            joinable = true;
          }
        }
        if (bound > best_bound) {
          best = bi;
          best_bound = bound;
          best_joinable = joinable;
        }
      }
      add_step(best, best_joinable ? Kind::kMergeJoin : Kind::kCross,
               best < anchor ? Range::kOld : Range::kFull);
      placed[best] = true;
    }

    ap.num_slots = static_cast<std::size_t>(num_slots);
    ap.body_var_slots.reserve(rule.body_vars().size());
    for (const Term v : rule.body_vars()) {
      ap.body_var_slots.push_back(slot_of.at(v));
    }
    plan.anchors.push_back(std::move(ap));
  }
  return plan;
}

namespace {

// First entry k in [lo, hi) with term(k) >= t (entries of one run are
// term-sorted).
std::uint32_t LowerBoundTerm(const SortedRunsView& runs, std::uint32_t lo,
                             std::uint32_t hi, Term t) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (runs.term(mid) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Residual checks of one step against one atom (and, for slot checks, one
// tuple — null for the opening scan, which has no slots yet).
bool StepMatches(const SegmentJoinStep& step, const Atom& atom,
                 const Term* tuple) {
  for (const auto& [pos, c] : step.const_checks) {
    if (atom.arg(pos) != c) return false;
  }
  for (const auto& [pos, slot] : step.slot_checks) {
    if (atom.arg(pos) != tuple[slot]) return false;
  }
  for (const auto& [pos, prev] : step.dup_checks) {
    if (atom.arg(pos) != atom.arg(prev)) return false;
  }
  return true;
}

}  // namespace

SegmentEngine::SegmentEngine(const Instance* instance, const RuleSet* rules)
    : instance_(instance), rules_(rules) {
  plans_.reserve(rules->size());
  for (const Rule& rule : *rules) plans_.push_back(CompileSegmentPlan(rule));
}

void SegmentEngine::ExecuteAnchor(std::size_t rule_index,
                                  const SegmentAnchorPlan& anchor_plan,
                                  std::uint32_t delta_begin,
                                  std::uint32_t delta_end,
                                  std::vector<exec::TriggerCandidate>* out)
    const {
  using Kind = SegmentJoinStep::Kind;
  using Range = SegmentJoinStep::Range;
  // One span per (rule, anchor) plan execution — the segment engine's unit
  // of work. Runs concurrently; the recorder's per-thread buffers keep it
  // lock-free.
  BDDFC_OBS_SPAN(anchor_span, "chase", "segment.anchor");
  anchor_span.Arg("rule", rule_index);
  const std::size_t out_before = out->size();
  const FactStore& store = instance_->store();
  const std::vector<Atom>& all = store.atoms();
  const std::size_t width = anchor_plan.num_slots;

  // The intermediate relation: `count` flat tuples of `width` slots.
  // (Tracked separately so fully ground bodies — width 0 — still count
  // their matches.)
  std::vector<Term> tuples;
  std::size_t count = 0;
  std::vector<Term> next;
  std::size_t next_count = 0;
  std::vector<std::uint32_t> order;  // tuple indices sorted by probe term
  std::vector<std::uint32_t> cursor;

  for (const SegmentJoinStep& step : anchor_plan.steps) {
    // The step's atom-index window [range_lo, range_hi).
    const std::uint32_t range_lo =
        step.range == Range::kDelta ? delta_begin : 0;
    const std::uint32_t range_hi =
        step.range == Range::kOld ? delta_begin : delta_end;
    if (range_lo >= range_hi) return;  // empty window: no homomorphisms

    if (step.kind == Kind::kScan || step.kind == Kind::kCross) {
      // Matching atom rows in the window (via the constant index when the
      // atom carries a constant; full predicate range otherwise).
      const IndexView view =
          step.const_checks.empty()
              ? store.AtomsWithIn(step.pred, range_lo, range_hi)
              : store.AtomsWithIn(step.pred, step.const_checks[0].first,
                                  step.const_checks[0].second, range_lo,
                                  range_hi);
      next.clear();
      next_count = 0;
      if (step.kind == Kind::kScan) {
        for (const std::uint32_t g : view) {
          const Atom& atom = all[g];
          if (!StepMatches(step, atom, nullptr)) continue;
          next.resize(next.size() + width);
          Term* emitted = next.data() + next.size() - width;
          for (const auto& [pos, slot] : step.outputs) {
            emitted[slot] = atom.arg(pos);
          }
          ++next_count;
        }
      } else {
        // Cross join: every matching atom pairs with every tuple. Collect
        // the matches once, then expand.
        std::vector<std::uint32_t> matches;
        for (const std::uint32_t g : view) {
          // A kCross atom shares no slotted variable with the tuples, so
          // only atom-local (const/dup) checks apply — like the scan.
          if (StepMatches(step, all[g], nullptr)) matches.push_back(g);
        }
        next.reserve(matches.size() * count * width);
        for (std::size_t i = 0; i < count; ++i) {
          const Term* tuple = tuples.data() + i * width;
          for (const std::uint32_t g : matches) {
            next.insert(next.end(), tuple, tuple + width);
            Term* emitted = next.data() + next.size() - width;
            for (const auto& [pos, slot] : step.outputs) {
              emitted[slot] = all[g].arg(pos);
            }
            ++next_count;
          }
        }
      }
    } else {
      // Merge join: sort the tuples by probe term and sweep the sorted
      // runs of (pred, probe_pos) once, galloping each run's cursor to
      // the probe's span. Within a span local rows (hence globals)
      // ascend, so the window's upper bound is an early exit.
      const SortedRunsView runs =
          store.SortedRuns(step.pred, step.probe_pos);
      next.clear();
      next_count = 0;
      if (!runs.empty() && count > 0) {
        order.resize(count);
        std::iota(order.begin(), order.end(), 0u);
        const Term* base = tuples.data();
        const int probe_slot = step.probe_slot;
        std::sort(order.begin(), order.end(),
                  [base, width, probe_slot](std::uint32_t a,
                                            std::uint32_t b) {
                    const Term ta = base[a * width + probe_slot];
                    const Term tb = base[b * width + probe_slot];
                    if (ta != tb) return ta < tb;
                    return a < b;
                  });
        const std::size_t num_runs = runs.num_runs();
        cursor.resize(num_runs);
        for (std::size_t r = 0; r < num_runs; ++r) {
          cursor[r] = runs.run_begin(r);
        }
        std::size_t gi = 0;
        while (gi < count) {
          const Term probe = base[order[gi] * width + probe_slot];
          std::size_t ge = gi;
          while (ge < count &&
                 base[order[ge] * width + probe_slot] == probe) {
            ++ge;
          }
          for (std::size_t r = 0; r < num_runs; ++r) {
            const std::uint32_t run_end = runs.run_end(r);
            // Probe terms ascend across groups, so each cursor only ever
            // moves forward.
            std::uint32_t k =
                LowerBoundTerm(runs, cursor[r], run_end, probe);
            cursor[r] = k;
            for (; k < run_end && runs.term(k) == probe; ++k) {
              const std::uint32_t g = runs.global(k);
              if (g >= range_hi) break;  // globals ascend within the span
              const Atom& atom = all[g];
              for (std::size_t t = gi; t < ge; ++t) {
                const Term* tuple = tuples.data() + order[t] * width;
                if (!StepMatches(step, atom, tuple)) continue;
                next.insert(next.end(), tuple, tuple + width);
                Term* emitted = next.data() + next.size() - width;
                for (const auto& [pos, slot] : step.outputs) {
                  emitted[slot] = atom.arg(pos);
                }
                ++next_count;
              }
            }
          }
          gi = ge;
        }
      }
    }
    tuples.swap(next);
    count = next_count;
    if (count == 0) return;
  }

  // Project each surviving tuple onto the rule's canonical body image.
  out->reserve(out->size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const Term* tuple = tuples.data() + i * width;
    exec::TriggerCandidate candidate{rule_index, {}};
    candidate.body_image.reserve(anchor_plan.body_var_slots.size());
    for (const int slot : anchor_plan.body_var_slots) {
      candidate.body_image.push_back(tuple[slot]);
    }
    out->push_back(std::move(candidate));
  }
  anchor_span.Arg("candidates", out->size() - out_before);
}

void SegmentEngine::Collect(std::uint32_t delta_begin,
                            std::uint32_t delta_end, ThreadPool* pool,
                            std::vector<exec::TriggerCandidate>* out) const {
  std::vector<exec::RuleJob> jobs;
  jobs.reserve(plans_.size());
  for (std::size_t r = 0; r < plans_.size(); ++r) {
    jobs.push_back({r, delta_begin == 0, delta_begin});
  }
  CollectJobs(jobs, delta_end, pool, out);
}

void SegmentEngine::CollectJobs(
    const std::vector<exec::RuleJob>& jobs, std::uint32_t delta_end,
    ThreadPool* pool, std::vector<exec::TriggerCandidate>* out) const {
  // One work unit per (job, anchor) plan. A full job — a rule's first
  // enumeration, searching the whole prefix as its delta — runs only the
  // anchor-0 plan (anchors > 0 require an earlier body atom strictly below
  // the delta, and a full window has no below-delta prefix).
  struct Unit {
    std::size_t rule_index;
    const SegmentAnchorPlan* plan;
    std::uint32_t delta_begin;
  };
  std::vector<Unit> units;
  for (const exec::RuleJob& job : jobs) {
    const std::uint32_t delta_begin = job.full ? 0 : job.delta_begin;
    if (!job.full && job.delta_begin >= delta_end) continue;
    for (const SegmentAnchorPlan& ap : plans_[job.rule_index].anchors) {
      if (delta_begin == 0 && ap.anchor > 0) continue;
      units.push_back({job.rule_index, &ap, delta_begin});
    }
  }
  if (pool == nullptr || units.size() <= 1) {
    for (const Unit& unit : units) {
      ExecuteAnchor(unit.rule_index, *unit.plan, unit.delta_begin,
                    delta_end, out);
    }
    return;
  }
  // Private per-unit batches, concatenated in unit order; the caller's
  // canonical sort erases any residual order sensitivity anyway.
  std::vector<std::vector<exec::TriggerCandidate>> batches(units.size());
  ParallelFor(pool, 0, units.size(), 1,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  ExecuteAnchor(units[i].rule_index, *units[i].plan,
                                units[i].delta_begin, delta_end,
                                &batches[i]);
                }
              });
  for (std::vector<exec::TriggerCandidate>& batch : batches) {
    out->insert(out->end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
}

}  // namespace bddfc
