// The (oblivious) chase of Section 2.2.
//
// Step semantics follow the paper exactly: Ch_0(I,R) = I and
// Ch_{n+1}(I,R) = Ch_n ∪ ⋃_{τ ∈ T_n} output(τ), where T_n is the set of
// triggers available on Ch_n that were not available on Ch_{n-1}. A trigger
// is a pair ⟨ρ, h⟩ of a rule and a homomorphism from body(ρ); its output
// maps existential variables to fresh labeled nulls.
//
// The chase is in general infinite; ObliviousChase runs a bounded prefix
// Ch_k and reports whether the chase saturated (no new trigger fired), in
// which case the prefix *is* the full chase — a finite universal model.
//
// Every chase term (labeled null) carries the provenance the Section 5
// machinery needs: its timestamp TS(t) (Definition 34: the first step whose
// active domain contains it), its frontier (the images h(fr(ρ)) of the
// creating trigger, Section 2.2), and the creating rule.

#ifndef BDDFC_CHASE_CHASE_H_
#define BDDFC_CHASE_CHASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/execution_config.h"
#include "homomorphism/homomorphism.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/substitution.h"

namespace bddfc {

class RuleScheduler;
class SegmentEngine;

namespace exec {
class ParallelChase;
struct TriggerCandidate;
}  // namespace exec

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

/// Which trigger-firing discipline to use.
enum class ChaseVariant {
  /// The paper's oblivious chase: every trigger fires exactly once,
  /// regardless of whether its output is already satisfied.
  kOblivious,
  /// The semi-oblivious (skolem) chase: triggers agreeing on the rule and
  /// the frontier image fire at most once — body variables outside the
  /// frontier cannot multiply nulls. Produces a hom-equivalent but often
  /// much smaller result; the ablation benches quantify the gap.
  kSemiOblivious,
  /// The restricted (standard) chase: a trigger fires only if its output is
  /// not already satisfied by an extension of the trigger homomorphism.
  /// Used when a finite universal model is wanted for saturation checks.
  kRestricted,
};

/// Variant selection and execution configuration for a chase run.
///
/// The execution knobs (engine, storage, threads, bounds) live in `exec`
/// (ExecutionConfig, src/exec/execution_config.h); the loose fields
/// max_steps / max_atoms / num_threads / pool / storage are deprecated
/// aliases kept for source compatibility.
struct ChaseOptions {
  /// Deprecated alias of exec.max_steps.
  std::size_t max_steps = 16;
  /// Deprecated alias of exec.max_atoms.
  std::size_t max_atoms = 200000;
  ChaseVariant variant = ChaseVariant::kOblivious;
  /// Escape hatch: re-enumerate every trigger from scratch at every step by
  /// running a full homomorphism search per rule (the pre-semi-naive
  /// behavior). The default delta-driven enumerator only matches triggers
  /// anchored in the atoms the previous step derived; both produce the same
  /// instance, trigger sequence, and provenance — the differential tests
  /// cross-check them atom for atom.
  bool naive_enumeration = false;
  /// Deprecated alias of exec.num_threads. Execution threads for trigger
  /// enumeration (and, in the restricted
  /// variant, the satisfaction precheck). 1 (the default) runs the
  /// unchanged serial path; 0 means "all hardware threads". Every thread
  /// count produces a bit-identical chase (atoms, trigger order,
  /// provenance, fresh-null numbering): workers only search the read-only
  /// instance, and their trigger batches are merged into the canonical
  /// (rule, body-image) order before the serial firing phase.
  std::size_t num_threads = 1;
  /// Deprecated alias of exec.pool. Optional shared execution pool (not
  /// owned; must outlive the chase).
  /// When set it overrides `num_threads`: the chase runs with
  /// pool->num_workers() + 1 execution threads and fans work out over this
  /// pool instead of spinning up its own. The Reasoner facade uses this so
  /// one session owns exactly one pool (chase + query evaluation); null
  /// (the default) keeps the self-owned-pool behavior.
  ThreadPool* pool = nullptr;
  /// Deprecated alias of exec.storage. Storage backend for the chase's
  /// working instance (the database copy
  /// the result grows in). Defaults to the database's own backend; every
  /// backend produces a bit-identical chase (same atoms, trigger order,
  /// provenance and fresh-null numbering) at every thread count.
  std::optional<StorageKind> storage = std::nullopt;
  /// The unified execution configuration: engine selection plus the
  /// storage / threading / bounds knobs shared with the Reasoner facade and
  /// chase_cli. The loose fields above predate it and survive as deprecated
  /// aliases; ResolvedExec() merges the two views (an alias overrides its
  /// `exec` twin only when it was set away from its default), so existing
  /// call sites — including designated initializers over the old field
  /// names — keep compiling and behaving unchanged.
  ExecutionConfig exec;

  /// The effective configuration the chase runs with: `exec`, with every
  /// non-default deprecated alias field overriding its twin. CHECK-fails
  /// when an alias and its twin are both set away from their defaults to
  /// different values — a conflict that used to be resolved silently in
  /// the alias's favor.
  ExecutionConfig ResolvedExec() const;
};

/// Provenance of a chase-created term.
struct ChaseTermInfo {
  /// TS(t): the chase step at which the term first appears.
  int timestamp = 0;
  /// h(fr(ρ)): images of the creating rule's frontier variables.
  std::vector<Term> frontier;
  /// Index (into the rule set) of the creating rule.
  std::size_t rule_index = 0;
  /// The full trigger homomorphism h' (body variables + existentials).
  Substitution trigger;
};

/// Bounded-prefix oblivious/restricted chase engine.
class ObliviousChase {
 public:
  /// Prepares a chase of `rules` from `database`. No steps run yet.
  ObliviousChase(const Instance& database, RuleSet rules,
                 ChaseOptions options = {});

  // The cached per-rule searches point into instance_.
  ObliviousChase(const ObliviousChase&) = delete;
  ObliviousChase& operator=(const ObliviousChase&) = delete;

  ~ObliviousChase();

  /// Runs until saturation or until the step/atom bounds hit. Returns the
  /// number of steps executed in total.
  std::size_t Run();

  /// Runs until at least `k` steps executed (or saturation/bounds).
  std::size_t RunSteps(std::size_t k);

  /// Incremental insertion: appends `facts` (atoms over constants or nulls,
  /// never variables) to the instance as database atoms and re-arms the
  /// chase, so the next RunSteps resumes from the existing materialization
  /// instead of re-chasing from scratch. The new atoms join the newest
  /// delta segment: the delta-driven enumerator finds exactly the triggers
  /// whose body image uses at least one of them (already-fired triggers are
  /// filtered by the trigger ledger). Returns the number of atoms actually
  /// added; atoms already present (database or derived) are skipped.
  /// Clears Saturated() when anything was added; HitBounds() is sticky — an
  /// atom-budget-stopped chase stays stopped. For the oblivious and
  /// semi-oblivious variants the resumed run fires the same trigger set a
  /// from-scratch chase of the extended instance fires, so the results are
  /// isomorphic (CanonicalAtoms() compares equal); the restricted variant
  /// yields a hom-equivalent but possibly smaller result.
  std::size_t AddBaseFacts(const std::vector<Atom>& facts);

  /// Order-independent rendering of Result(): every labeled null is renamed
  /// to its skolem term f<rule>_<existential>(identity images...), built
  /// recursively from the creating trigger (identity = body image for the
  /// oblivious/restricted variants, frontier image for the semi-oblivious
  /// one, matching the trigger ledger), and the atom strings are returned
  /// sorted. Two chases of the same rules agree on CanonicalAtoms() iff
  /// their results are equal up to null renaming — the yardstick the
  /// incremental-vs-scratch differential tests compare with. Intended for
  /// testing/debugging: string size grows with null nesting depth.
  std::vector<std::string> CanonicalAtoms() const;

  /// The chase result built so far (Ch_n for n = StepsExecuted()).
  const Instance& Result() const { return instance_; }

  Universe* universe() const { return instance_.universe(); }

  /// True if the last executed step fired no trigger: the instance is the
  /// full (finite) chase.
  bool Saturated() const { return saturated_; }

  /// True if the atom bound stopped the run before saturation.
  bool HitBounds() const { return hit_bounds_; }

  /// True if the atom bound cut the last counted step short: it fired some
  /// but not all of its available triggers, so Result() is a strict subset
  /// of Ch_{StepsExecuted()}. HitBounds() is also true in that case. When
  /// HitBounds() holds but LastStepTruncated() does not, the bound was
  /// already exhausted before any trigger of the next step could fire and no
  /// phantom step was counted.
  bool LastStepTruncated() const { return last_step_truncated_; }

  /// Steps that actually fired at least one trigger. A step cut off by
  /// max_atoms before firing anything is not counted.
  std::size_t StepsExecuted() const { return steps_executed_; }

  /// Number of atoms present after step k (k ≤ StepsExecuted()).
  std::size_t AtomCountAtStep(std::size_t k) const;

  /// The prefix Ch_k as a standalone instance (k ≤ StepsExecuted()).
  Instance Prefix(std::size_t k) const;

  /// Creation step of atom #idx of Result().atoms() (0 for database atoms).
  int StepOfAtom(std::size_t idx) const;

  /// TS(t): 0 for database terms, creation step for chase terms.
  int TimestampOf(Term t) const;

  /// Provenance of a chase term, or nullptr for database terms.
  const ChaseTermInfo* InfoOf(Term t) const;

  /// Number of triggers fired in total. Reads the scheduler's per-rule
  /// counters (the single source of truth since the stats unification), so
  /// this, RuleSchedulerStats::fired_total() and the metrics registry's
  /// `chase.triggers_fired` can never disagree.
  std::size_t TriggersFired() const;

  /// Resolved execution thread count (1 = serial).
  std::size_t num_threads() const { return num_threads_; }

  /// The rule scheduler driving the per-step rule loop (flat pass-through
  /// or reliance-stratified, per ExecutionConfig::schedule). Exposes
  /// per-rule fired/skipped counters, the stratification and the reliance
  /// graph (see src/chase/rule_scheduler.h).
  const RuleScheduler& scheduler() const { return *scheduler_; }

  /// Provenance of one atom of Result(): the trigger that first derived
  /// it (database atoms have `database == true`).
  struct AtomProvenance {
    bool database = true;
    int step = 0;
    std::size_t rule_index = 0;
    /// The full trigger homomorphism h' (body + existential images).
    Substitution trigger;
  };

  /// Provenance of Result().atoms()[idx].
  const AtomProvenance& ProvenanceOf(std::size_t idx) const;

  /// A textual derivation tree for `atom` (which must be in Result()):
  /// each line shows an atom and the rule/trigger that produced it, with
  /// its body atoms indented below (down to `max_depth` levels; database
  /// atoms are leaves).
  std::string Explain(const Atom& atom, int max_depth = 8) const;

  /// Observation 35: true if the binary atoms of the result form a directed
  /// acyclic graph (loops and longer cycles both count as cycles).
  bool IsDag() const;

  const RuleSet& rules() const { return rules_; }

 private:
  // Canonical identity of a trigger: rule index + images of body variables
  // in rule-variable order.
  using TriggerKey = std::pair<std::size_t, std::vector<Term>>;
  struct TriggerKeyHash {
    std::size_t operator()(const TriggerKey& k) const;
  };

  struct StepOutcome {
    bool fired = false;      // at least one trigger fired
    bool truncated = false;  // max_atoms stopped the step mid-way
  };
  StepOutcome StepOnce();

  // Restricted variant: true iff the head of `candidate`'s rule is already
  // satisfied by an extension of the trigger's frontier image. Read-only
  // and thread-safe (runs concurrently from the parallel precheck).
  bool HeadSatisfied(const exec::TriggerCandidate& candidate) const;

  // The resolved execution configuration (declared before instance_: the
  // constructor resolves it first and builds the instance from its storage
  // choice).
  ExecutionConfig exec_;
  Instance instance_;
  RuleSet rules_;
  ChaseOptions options_;
  // One cached homomorphism search per rule body; the searches reference
  // instance_ and see every appended atom (ObliviousChase is therefore
  // neither copyable nor movable).
  std::vector<HomSearch> rule_searches_;
  // Restricted variant only: one cached head search per rule.
  std::vector<HomSearch> head_searches_;
  // Positions of each rule's frontier variables within body_vars() — seeds
  // the restricted head check straight from a candidate's body image, and
  // derives the semi-oblivious trigger identity from segment-engine
  // candidates.
  std::vector<std::vector<std::size_t>> frontier_positions_;
  // Parallel executor (null when num_threads_ == 1: the serial path).
  std::size_t num_threads_ = 1;
  std::unique_ptr<exec::ParallelChase> parallel_;
  // Per-round rule scheduling (never null; flat by default).
  std::unique_ptr<RuleScheduler> scheduler_;
  // Segment-at-a-time enumerator (null under the default trigger engine).
  std::unique_ptr<SegmentEngine> segment_;
  std::size_t steps_executed_ = 0;
  bool saturated_ = false;
  bool hit_bounds_ = false;
  bool last_step_truncated_ = false;
  std::unordered_set<TriggerKey, TriggerKeyHash> fired_;
  // Metrics instruments (resolved from exec_.metrics; never null). The
  // gauges are updated mid-step so the progress heartbeat sees live
  // values; all updates are relaxed atomics and never steer execution.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* metric_step_ = nullptr;
  obs::Gauge* metric_atoms_ = nullptr;
  obs::Counter* metric_fired_ = nullptr;
  std::vector<std::size_t> atoms_at_step_;  // atom count after each step
  std::vector<int> atom_step_;              // creation step per atom index
  std::vector<AtomProvenance> atom_provenance_;  // parallel to atoms()
  std::unordered_map<Term, ChaseTermInfo> term_info_;
};

/// Convenience: runs the chase of `rules` on `database` and returns the
/// result instance (paper notation Ch(I,R), truncated per `options`).
Instance Chase(const Instance& database, const RuleSet& rules,
               ChaseOptions options = {});

/// Lemma 33 decomposition: chases `existential_rules` first, then saturates
/// with `datalog_rules` (restricted variant, which terminates whenever the
/// Datalog saturation is finite). Paper notation Ch(Ch(I,R∃),R_DL).
Instance ChaseThenDatalog(const Instance& database,
                          const RuleSet& existential_rules,
                          const RuleSet& datalog_rules,
                          ChaseOptions existential_options = {},
                          std::size_t datalog_max_steps = 64);

}  // namespace bddfc

#endif  // BDDFC_CHASE_CHASE_H_
