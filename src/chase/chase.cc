#include "chase/chase.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"
#include "homomorphism/homomorphism.h"

namespace bddfc {

std::size_t ObliviousChase::TriggerKeyHash::operator()(
    const TriggerKey& k) const {
  std::size_t seed = std::hash<std::size_t>{}(k.first);
  for (Term t : k.second) HashCombine(&seed, std::hash<Term>{}(t));
  return seed;
}

ObliviousChase::ObliviousChase(const Instance& database, RuleSet rules,
                               ChaseOptions options)
    : instance_(database), rules_(std::move(rules)), options_(options) {
  atoms_at_step_.push_back(instance_.size());
  atom_step_.assign(instance_.size(), 0);
  atom_provenance_.assign(instance_.size(), AtomProvenance{});
}

bool ObliviousChase::StepOnce() {
  // Enumerate all triggers on the current instance, keep the unfired ones.
  struct PendingTrigger {
    std::size_t rule_index;
    Substitution hom;
  };
  std::vector<PendingTrigger> pending;
  std::vector<TriggerKey> pending_keys;
  const bool semi = options_.variant == ChaseVariant::kSemiOblivious;
  std::unordered_set<TriggerKey, TriggerKeyHash> claimed_this_step;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    HomSearch search(rule.body(), &instance_);
    search.ForEach({}, [&](const Substitution& h) {
      // Trigger identity: full body image for the oblivious/restricted
      // chases, frontier image only for the semi-oblivious (skolem) one.
      TriggerKey key{r, {}};
      const std::vector<Term>& id_vars =
          semi ? rule.frontier() : rule.body_vars();
      key.second.reserve(id_vars.size());
      for (Term v : id_vars) key.second.push_back(h.Apply(v));
      if (fired_.find(key) == fired_.end() &&
          claimed_this_step.insert(key).second) {
        pending.push_back({r, h});
        pending_keys.push_back(std::move(key));
      }
      return true;
    });
  }

  bool any_fired = false;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (instance_.size() >= options_.max_atoms) {
      hit_bounds_ = true;
      break;
    }
    const Rule& rule = rules_[pending[i].rule_index];
    Substitution h = pending[i].hom;

    if (options_.variant == ChaseVariant::kRestricted) {
      // Fire only if no extension of h already satisfies the head.
      HomSearch head_search(rule.head(), &instance_);
      Substitution frontier_seed;
      for (Term v : rule.frontier()) frontier_seed.Bind(v, h.Apply(v));
      if (head_search.Exists(frontier_seed)) {
        fired_.insert(pending_keys[i]);  // never reconsider
        continue;
      }
    }

    // Extend h with fresh nulls for the existential variables.
    std::vector<Term> fresh;
    for (Term z : rule.existentials()) {
      Term null = universe()->FreshNull();
      h.Bind(z, null);
      fresh.push_back(null);
    }
    const int step = static_cast<int>(steps_executed_) + 1;
    for (const Atom& head_atom : rule.head()) {
      Atom out = h.Apply(head_atom);
      if (instance_.AddAtom(out)) {
        atom_step_.push_back(step);
        AtomProvenance provenance;
        provenance.database = false;
        provenance.step = step;
        provenance.rule_index = pending[i].rule_index;
        provenance.trigger = h;
        atom_provenance_.push_back(std::move(provenance));
      }
    }
    for (Term null : fresh) {
      ChaseTermInfo info;
      info.timestamp = step;
      info.rule_index = pending[i].rule_index;
      info.trigger = h;
      for (Term v : rule.frontier()) info.frontier.push_back(h.Apply(v));
      term_info_.emplace(null, std::move(info));
    }
    fired_.insert(pending_keys[i]);
    ++triggers_fired_;
    any_fired = true;
  }
  return any_fired;
}

std::size_t ObliviousChase::Run() { return RunSteps(options_.max_steps); }

std::size_t ObliviousChase::RunSteps(std::size_t k) {
  while (steps_executed_ < k && !saturated_ && !hit_bounds_) {
    bool fired = StepOnce();
    if (!fired && !hit_bounds_) {
      saturated_ = true;
      break;
    }
    ++steps_executed_;
    atoms_at_step_.push_back(instance_.size());
  }
  return steps_executed_;
}

std::size_t ObliviousChase::AtomCountAtStep(std::size_t k) const {
  BDDFC_CHECK_LT(k, atoms_at_step_.size());
  return atoms_at_step_[k];
}

Instance ObliviousChase::Prefix(std::size_t k) const {
  Instance out(universe());
  const std::size_t limit =
      k < atoms_at_step_.size() ? atoms_at_step_[k] : instance_.size();
  for (std::size_t i = 0; i < limit; ++i) {
    out.AddAtom(instance_.atoms()[i]);
  }
  return out;
}

int ObliviousChase::StepOfAtom(std::size_t idx) const {
  BDDFC_CHECK_LT(idx, atom_step_.size());
  return atom_step_[idx];
}

const ObliviousChase::AtomProvenance& ObliviousChase::ProvenanceOf(
    std::size_t idx) const {
  BDDFC_CHECK_LT(idx, atom_provenance_.size());
  return atom_provenance_[idx];
}

namespace {

void ExplainRec(const ObliviousChase& chase, const Atom& atom, int depth,
                int max_depth, std::string* out) {
  const Universe& u = *chase.universe();
  out->append(2 * depth, ' ');
  std::size_t idx = chase.Result().IndexOf(atom);
  if (idx == SIZE_MAX) {
    *out += u.PredicateName(atom.pred());
    *out += " <- NOT IN CHASE\n";
    return;
  }
  // Render the atom.
  *out += u.PredicateName(atom.pred());
  if (!atom.IsNullary()) {
    *out += '(';
    for (std::size_t i = 0; i < atom.arity(); ++i) {
      if (i > 0) *out += ',';
      *out += u.TermName(atom.arg(i));
    }
    *out += ')';
  }
  const auto& provenance = chase.ProvenanceOf(idx);
  if (provenance.database) {
    *out += "  [database]\n";
    return;
  }
  const Rule& rule = chase.rules()[provenance.rule_index];
  // Built piecewise (GCC 12's -Wrestrict mis-fires on chained string
  // operator+ here).
  *out += "  [step ";
  *out += std::to_string(provenance.step);
  *out += ", rule ";
  if (rule.label().empty()) {
    *out += '#';
    *out += std::to_string(provenance.rule_index);
  } else {
    *out += rule.label();
  }
  *out += "]\n";
  if (depth >= max_depth) {
    out->append(2 * (depth + 1), ' ');
    *out += "...\n";
    return;
  }
  for (const Atom& body_atom : rule.body()) {
    ExplainRec(chase, provenance.trigger.Apply(body_atom), depth + 1,
               max_depth, out);
  }
}

}  // namespace

std::string ObliviousChase::Explain(const Atom& atom, int max_depth) const {
  std::string out;
  ExplainRec(*this, atom, 0, max_depth, &out);
  return out;
}

int ObliviousChase::TimestampOf(Term t) const {
  auto it = term_info_.find(t);
  return it == term_info_.end() ? 0 : it->second.timestamp;
}

const ChaseTermInfo* ObliviousChase::InfoOf(Term t) const {
  auto it = term_info_.find(t);
  return it == term_info_.end() ? nullptr : &it->second;
}

bool ObliviousChase::IsDag() const {
  // Kahn's algorithm over the directed graph formed by all binary atoms.
  std::unordered_map<Term, std::vector<Term>> out_edges;
  std::unordered_map<Term, int> in_degree;
  std::size_t num_edges = 0;
  for (const Atom& a : instance_.atoms()) {
    if (!a.IsBinary()) continue;
    if (a.arg(0) == a.arg(1)) return false;  // loop
    out_edges[a.arg(0)].push_back(a.arg(1));
    ++in_degree[a.arg(1)];
    if (in_degree.find(a.arg(0)) == in_degree.end()) in_degree[a.arg(0)] = 0;
    ++num_edges;
  }
  std::vector<Term> queue;
  for (const auto& [t, d] : in_degree) {
    if (d == 0) queue.push_back(t);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    Term t = queue.back();
    queue.pop_back();
    ++processed;
    auto it = out_edges.find(t);
    if (it == out_edges.end()) continue;
    for (Term to : it->second) {
      if (--in_degree[to] == 0) queue.push_back(to);
    }
  }
  return processed == in_degree.size();
}

Instance Chase(const Instance& database, const RuleSet& rules,
               ChaseOptions options) {
  ObliviousChase chase(database, rules, options);
  chase.Run();
  return chase.Result();
}

Instance ChaseThenDatalog(const Instance& database,
                          const RuleSet& existential_rules,
                          const RuleSet& datalog_rules,
                          ChaseOptions existential_options,
                          std::size_t datalog_max_steps) {
  Instance first = Chase(database, existential_rules, existential_options);
  ChaseOptions datalog_options;
  datalog_options.max_steps = datalog_max_steps;
  datalog_options.max_atoms = existential_options.max_atoms;
  // Datalog saturation creates no terms; the restricted variant terminates
  // whenever the saturation is finite (it always is on a finite instance).
  datalog_options.variant = ChaseVariant::kRestricted;
  return Chase(first, datalog_rules, datalog_options);
}

}  // namespace bddfc
