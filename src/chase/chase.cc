#include "chase/chase.h"

#include <algorithm>
#include <functional>
#include <string>

#include "base/check.h"
#include "base/hash.h"
#include "base/thread_pool.h"
#include "chase/rule_scheduler.h"
#include "chase/segment_engine.h"
#include "exec/parallel_chase.h"
#include "homomorphism/homomorphism.h"
#include "obs/obs.h"

namespace bddfc {

ExecutionConfig ChaseOptions::ResolvedExec() const {
  ExecutionConfig resolved = exec;
  const ExecutionConfig defaults;
  // A deprecated alias overrides its exec twin only when it was set away
  // from its default — the alias defaults equal the exec defaults, so an
  // untouched alias never masks an explicit exec setting. Setting alias
  // AND twin to different non-default values is a configuration bug and
  // CHECK-fails instead of silently preferring the alias.
  if (max_steps != defaults.max_steps) {
    BDDFC_CHECK(exec.max_steps == defaults.max_steps ||
                exec.max_steps == max_steps);
    resolved.max_steps = max_steps;
  }
  if (max_atoms != defaults.max_atoms) {
    BDDFC_CHECK(exec.max_atoms == defaults.max_atoms ||
                exec.max_atoms == max_atoms);
    resolved.max_atoms = max_atoms;
  }
  if (num_threads != defaults.num_threads) {
    BDDFC_CHECK(exec.num_threads == defaults.num_threads ||
                exec.num_threads == num_threads);
    resolved.num_threads = num_threads;
  }
  if (pool != nullptr) {
    BDDFC_CHECK(exec.pool == nullptr || exec.pool == pool);
    resolved.pool = pool;
  }
  if (storage.has_value()) {
    BDDFC_CHECK(!exec.storage.has_value() || *exec.storage == *storage);
    resolved.storage = storage;
  }
  return resolved;
}

std::size_t ObliviousChase::TriggerKeyHash::operator()(
    const TriggerKey& k) const {
  std::size_t seed = std::hash<std::size_t>{}(k.first);
  for (Term t : k.second) HashCombine(&seed, std::hash<Term>{}(t));
  return seed;
}

ObliviousChase::ObliviousChase(const Instance& database, RuleSet rules,
                               ChaseOptions options)
    : exec_(options.ResolvedExec()),
      instance_(database, exec_.storage.value_or(database.storage())),
      rules_(std::move(rules)),
      options_(options) {
  atoms_at_step_.push_back(instance_.size());
  atom_step_.assign(instance_.size(), 0);
  atom_provenance_.assign(instance_.size(), AtomProvenance{});
  rule_searches_.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    rule_searches_.emplace_back(rule.body(), &instance_);
  }
  // Frontier-variable positions: the restricted head check seeds from them
  // and the segment engine's semi-oblivious trigger identity projects
  // through them. Cheap enough to build unconditionally.
  frontier_positions_.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    std::vector<std::size_t> positions;
    positions.reserve(rule.frontier().size());
    for (Term v : rule.frontier()) {
      const auto& vars = rule.body_vars();
      positions.push_back(static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), v) - vars.begin()));
    }
    frontier_positions_.push_back(std::move(positions));
  }
  if (options_.variant == ChaseVariant::kRestricted) {
    // Cached head searches (they see every atom appended to instance_),
    // shared by the serial check and the concurrent precheck.
    head_searches_.reserve(rules_.size());
    for (const Rule& rule : rules_) {
      head_searches_.emplace_back(rule.head(), &instance_);
    }
  }
  if (exec_.pool != nullptr) {
    num_threads_ = exec_.pool->num_workers() + 1;
    if (num_threads_ > 1) {
      parallel_ = std::make_unique<exec::ParallelChase>(exec_.pool);
    }
  } else {
    num_threads_ = ThreadPool::ResolveThreadCount(exec_.num_threads);
    if (num_threads_ > 1) {
      parallel_ = std::make_unique<exec::ParallelChase>(num_threads_);
    }
  }
  if (exec_.engine == ChaseEngine::kSegment) {
    segment_ = std::make_unique<SegmentEngine>(&instance_, &rules_);
  }
  if (exec_.schedule == ChaseSchedule::kStratified) {
    scheduler_ = RuleScheduler::Stratified(rules_, universe(),
                                           options_.naive_enumeration);
  } else {
    scheduler_ = RuleScheduler::Flat(rules_.size());
  }
  metrics_ = obs::ResolveMetrics(exec_.metrics);
  metric_step_ = metrics_->GetGauge("chase.step");
  metric_atoms_ = metrics_->GetGauge("chase.atoms");
  metric_fired_ = metrics_->GetCounter("chase.triggers_fired");
  metric_atoms_->Set(static_cast<std::int64_t>(instance_.size()));
  scheduler_->set_metrics(metrics_);
}

std::size_t ObliviousChase::TriggersFired() const {
  return scheduler_->stats().fired_total();
}

ObliviousChase::~ObliviousChase() = default;

bool ObliviousChase::HeadSatisfied(
    const exec::TriggerCandidate& candidate) const {
  const Rule& rule = rules_[candidate.rule_index];
  Substitution frontier_seed;
  const std::vector<std::size_t>& positions =
      frontier_positions_[candidate.rule_index];
  for (std::size_t i = 0; i < rule.frontier().size(); ++i) {
    frontier_seed.Bind(rule.frontier()[i],
                       candidate.body_image[positions[i]]);
  }
  return head_searches_[candidate.rule_index].Exists(frontier_seed);
}

ObliviousChase::StepOutcome ObliviousChase::StepOnce() {
  // Phase 1 — enumerate the triggers that became available last step and
  // have not fired. After the first step the delta-driven (semi-naive)
  // enumerator only searches for body images anchored in the atoms the
  // previous step appended: a trigger is new on Ch_n precisely when at least
  // one of its body atoms maps into the delta [count(n-1), count(n)), so
  // nothing is missed and nothing old is re-derived. With naive_enumeration
  // every homomorphism is re-enumerated and filtered against fired_; both
  // paths collect the same candidate set. With num_threads > 1 the same
  // enumeration fans out over the executor's pool — the instance and the
  // fired_ set are read-only until the firing phase, and the canonical sort
  // below erases the nondeterministic batch order.
  using exec::TriggerCandidate;
  BDDFC_OBS_SPAN(step_span, "chase", "chase.step");
  step_span.Arg("step", steps_executed_ + 1);
  std::vector<TriggerCandidate> candidates;
  const bool semi = options_.variant == ChaseVariant::kSemiOblivious;
  const bool delta_mode = !options_.naive_enumeration && steps_executed_ > 0;
  const std::uint32_t delta_begin =
      delta_mode
          ? static_cast<std::uint32_t>(atoms_at_step_[steps_executed_ - 1])
          : 0;
  const std::uint32_t delta_end =
      static_cast<std::uint32_t>(instance_.size());
  // The scheduler decides which rules enumerate this round and with which
  // window: the flat schedule hands every rule the global window computed
  // above (bit-identical to the pre-scheduler loop); the stratified one
  // plans only the active strata's rules, each at its own delta cursor.
  const std::vector<exec::RuleJob> jobs =
      scheduler_->PlanRound(!delta_mode, delta_begin, instance_);
  // Trigger identity: full body image for the oblivious/restricted
  // chases, frontier image only for the semi-oblivious (skolem) one.
  const auto collect = [&](std::size_t r, const Substitution& h,
                           std::vector<TriggerCandidate>* batch) {
    const Rule& rule = rules_[r];
    const std::vector<Term>& id_vars =
        semi ? rule.frontier() : rule.body_vars();
    TriggerKey probe{r, {}};
    probe.second.reserve(id_vars.size());
    for (Term v : id_vars) probe.second.push_back(h.Apply(v));
    if (fired_.find(probe) != fired_.end()) return;
    TriggerCandidate c{r, {}};
    c.body_image.reserve(rule.body_vars().size());
    for (Term v : rule.body_vars()) c.body_image.push_back(h.Apply(v));
    batch->push_back(std::move(c));
  };
  BDDFC_OBS_SPAN(enumerate_span, "chase", "chase.enumerate");
  if (segment_ != nullptr) {
    // Segment-at-a-time enumeration: one bulk merge-join plan execution
    // per (rule, anchor) yields the step's whole candidate segment, which
    // is then filtered against the fired ledger — the same candidate set
    // the trigger-at-a-time paths below collect, so the firing phase (and
    // hence the whole chase) is bit-identical across engines. Note the
    // engine is inherently delta-driven; naive_enumeration degrades it to
    // a full [0, size) enumeration via a `full` job, matching the naive
    // trigger engine's re-enumerate-and-filter semantics.
    std::vector<TriggerCandidate> raw;
    segment_->CollectJobs(jobs, delta_end,
                          parallel_ != nullptr ? parallel_->pool() : nullptr,
                          &raw);
    candidates.reserve(raw.size());
    for (TriggerCandidate& c : raw) {
      TriggerKey probe{c.rule_index, {}};
      if (semi) {
        const std::vector<std::size_t>& positions =
            frontier_positions_[c.rule_index];
        probe.second.reserve(positions.size());
        for (std::size_t p : positions) {
          probe.second.push_back(c.body_image[p]);
        }
      } else {
        probe.second = c.body_image;
      }
      if (fired_.find(probe) != fired_.end()) continue;
      candidates.push_back(std::move(c));
    }
  } else if (parallel_ != nullptr) {
    parallel_->CollectJobs(&rule_searches_, jobs, delta_end, collect,
                           &candidates);
  } else {
    for (const exec::RuleJob& job : jobs) {
      const std::size_t r = job.rule_index;
      BDDFC_OBS_SPAN(search_span, "chase", "chase.hom_search");
      search_span.Arg("rule", r);
      const auto visit = [&](const Substitution& h) {
        collect(r, h, &candidates);
        return true;
      };
      if (job.full) {
        rule_searches_[r].ForEach({}, visit);
      } else {
        rule_searches_[r].ForEachDelta({}, job.delta_begin, delta_end,
                                       visit);
      }
    }
  }
  enumerate_span.Arg("candidates", candidates.size()).End();

  // Phase 2 — canonical firing order. Sorting by (rule, body image) makes
  // the step independent of enumeration order, so the naive, semi-naive
  // and parallel engines produce bit-identical instances, null names and
  // provenance. The stratified schedule refines the order with the
  // restraint-topological firing rank: restrainers fire first, so the
  // restricted variant sees alternative head matches in time to skip the
  // triggers they pre-empt (still deterministic — rank, then the
  // canonical key).
  const std::vector<std::size_t>* ranks = scheduler_->FiringRanks();
  if (ranks == nullptr) {
    exec::SortCanonical(&candidates);
  } else {
    std::sort(candidates.begin(), candidates.end(),
              [&](const TriggerCandidate& a, const TriggerCandidate& b) {
                if ((*ranks)[a.rule_index] != (*ranks)[b.rule_index]) {
                  return (*ranks)[a.rule_index] < (*ranks)[b.rule_index];
                }
                return exec::CanonicalTriggerLess(a, b);
              });
  }

  // Restricted precheck: satisfaction is monotone (the instance only
  // grows), so any candidate whose head is satisfied *now* — before this
  // step fires anything — would also be skipped by the serial check. The
  // firing loop trusts positive prechecks and re-checks negatives only
  // once the step has added atoms.
  std::vector<char> satisfied_at_start;
  if (parallel_ != nullptr &&
      options_.variant == ChaseVariant::kRestricted && !candidates.empty()) {
    parallel_->ParallelCheck(
        candidates,
        [this](const TriggerCandidate& c) { return HeadSatisfied(c); },
        &satisfied_at_start);
  }
  const std::size_t step_start_size = instance_.size();

  StepOutcome outcome;
  BDDFC_OBS_SPAN(fire_span, "chase", "chase.fire");
  std::size_t fired_this_step = 0;
  std::vector<std::size_t> round_fired(rules_.size(), 0);
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const TriggerCandidate& candidate = candidates[ci];
    if (instance_.size() >= exec_.max_atoms) {
      hit_bounds_ = true;
      outcome.truncated = true;
      break;
    }
    // Cooperative cancellation (chase_cli's SIGINT path). Treated like an
    // atom-budget truncation so the scheduler's cursors stay valid; never
    // set during tests, so determinism is untouched.
    if (obs::CancelRequested()) {
      outcome.truncated = true;
      break;
    }
    const Rule& rule = rules_[candidate.rule_index];
    Substitution h;
    for (std::size_t i = 0; i < rule.body_vars().size(); ++i) {
      h.Bind(rule.body_vars()[i], candidate.body_image[i]);
    }
    TriggerKey key{candidate.rule_index, {}};
    const std::vector<Term>& id_vars =
        semi ? rule.frontier() : rule.body_vars();
    key.second.reserve(id_vars.size());
    for (Term v : id_vars) key.second.push_back(h.Apply(v));
    // Claims the key: duplicates within the step (possible under the
    // semi-oblivious identity) are skipped, keeping the canonically
    // smallest trigger as the representative.
    if (!fired_.insert(std::move(key)).second) continue;

    if (options_.variant == ChaseVariant::kRestricted) {
      // Fire only if no extension of h already satisfies the head. The
      // parallel precheck answers this against the step-start instance;
      // that answer stands unless atoms were fired in between (a satisfied
      // head stays satisfied, an unsatisfied one must be re-checked).
      bool satisfied;
      if (!satisfied_at_start.empty()) {
        satisfied = satisfied_at_start[ci] != 0 ||
                    (instance_.size() != step_start_size &&
                     HeadSatisfied(candidate));
      } else {
        satisfied = HeadSatisfied(candidate);
      }
      if (satisfied) continue;  // never reconsider
    }

    // Extend h with fresh nulls for the existential variables.
    std::vector<Term> fresh;
    for (Term z : rule.existentials()) {
      Term null = universe()->FreshNull();
      h.Bind(z, null);
      fresh.push_back(null);
    }
    const int step = static_cast<int>(steps_executed_) + 1;
    for (const Atom& head_atom : rule.head()) {
      Atom out = h.Apply(head_atom);
      if (instance_.AddAtom(out)) {
        atom_step_.push_back(step);
        AtomProvenance provenance;
        provenance.database = false;
        provenance.step = step;
        provenance.rule_index = candidate.rule_index;
        provenance.trigger = h;
        atom_provenance_.push_back(std::move(provenance));
      }
    }
    for (Term null : fresh) {
      ChaseTermInfo info;
      info.timestamp = step;
      info.rule_index = candidate.rule_index;
      info.trigger = h;
      for (Term v : rule.frontier()) info.frontier.push_back(h.Apply(v));
      term_info_.emplace(null, std::move(info));
    }
    ++round_fired[candidate.rule_index];
    outcome.fired = true;
    // Refresh the live-atom gauge periodically so the progress heartbeat
    // tracks long firing phases, not just step boundaries.
    if ((++fired_this_step & 0xFF) == 0) {
      metric_atoms_->Set(static_cast<std::int64_t>(instance_.size()));
    }
  }
  fire_span.Arg("fired", fired_this_step)
      .Arg("atoms", instance_.size())
      .End();
  metric_fired_->Add(fired_this_step);
  metric_atoms_->Set(static_cast<std::int64_t>(instance_.size()));
  obs::CounterEvent("chase", "chase.atoms_total", instance_.size());
  // Close the round: accumulate per-rule counters, advance the stratified
  // schedule's cursors and saturation flags (skipped when the atom budget
  // truncated the firing phase — unfired candidates must stay findable).
  scheduler_->OnRoundEnd(delta_end, round_fired, outcome.truncated);
  return outcome;
}

std::size_t ObliviousChase::Run() { return RunSteps(exec_.max_steps); }

std::size_t ObliviousChase::RunSteps(std::size_t k) {
  while (steps_executed_ < k && !saturated_ && !hit_bounds_ &&
         !obs::CancelRequested()) {
    StepOutcome outcome = StepOnce();
    if (outcome.fired) {
      // Only steps that actually fired count; a bound that stops the chase
      // before any trigger of a step fires must not add a phantom step.
      ++steps_executed_;
      atoms_at_step_.push_back(instance_.size());
      last_step_truncated_ = outcome.truncated;
      metric_step_->Set(static_cast<std::int64_t>(steps_executed_));
    } else if (!outcome.truncated) {
      // A no-fire round is saturation under the flat schedule. Under the
      // stratified one it may instead be a transition: the round
      // saturated its active strata, whose dependents activate next
      // round. Transition rounds are not chase steps.
      if (scheduler_->AllSaturated()) {
        saturated_ = true;
        obs::Instant("chase", "chase.saturated", "step", steps_executed_);
      }
    }
  }
  return steps_executed_;
}

std::size_t ObliviousChase::AddBaseFacts(const std::vector<Atom>& facts) {
  std::size_t added = 0;
  for (const Atom& fact : facts) {
    for (Term t : fact.args()) BDDFC_CHECK(!t.IsVariable());
    if (!instance_.AddAtom(fact)) continue;
    atom_step_.push_back(0);
    atom_provenance_.push_back(AtomProvenance{});
    ++added;
  }
  if (added == 0) return 0;
  // The appended atoms extend the newest delta segment: the next StepOnce
  // enumerates [atoms_at_step_[steps-1], size), which covers them (plus the
  // previous step's atoms, whose triggers the fired_ ledger filters). With
  // no steps executed yet the first step enumerates the full instance
  // anyway. Keeping the per-step atom counts consistent, the inserted facts
  // count into the segment of the last executed step (they are step-0
  // database atoms individually, see StepOfAtom).
  atoms_at_step_.back() = instance_.size();
  metric_atoms_->Set(static_cast<std::int64_t>(instance_.size()));
  obs::Instant("chase", "chase.add_base_facts", "added", added);
  saturated_ = false;
  // The stratified schedule re-checks every stratum in topological order;
  // its per-rule cursors stay valid (the new atoms sit above all of them).
  scheduler_->OnFactsInserted();
  return added;
}

std::vector<std::string> ObliviousChase::CanonicalAtoms() const {
  std::unordered_map<Term, std::string> null_names;
  const bool semi = options_.variant == ChaseVariant::kSemiOblivious;
  std::function<const std::string&(Term)> null_name =
      [&](Term t) -> const std::string& {
    auto it = null_names.find(t);
    if (it != null_names.end()) return it->second;
    const ChaseTermInfo* info = InfoOf(t);
    BDDFC_CHECK(info != nullptr);
    const Rule& rule = rules_[info->rule_index];
    std::size_t existential_index = 0;
    for (std::size_t i = 0; i < rule.existentials().size(); ++i) {
      if (info->trigger.Apply(rule.existentials()[i]) == t) {
        existential_index = i;
        break;
      }
    }
    const std::vector<Term>& id_vars =
        semi ? rule.frontier() : rule.body_vars();
    std::string name = "f";
    name += std::to_string(info->rule_index);
    name += '_';
    name += std::to_string(existential_index);
    name += '(';
    for (std::size_t i = 0; i < id_vars.size(); ++i) {
      if (i > 0) name += ',';
      Term image = info->trigger.Apply(id_vars[i]);
      if (image.IsNull()) {
        name += null_name(image);
      } else {
        name += universe()->TermName(image);
      }
    }
    name += ')';
    return null_names.emplace(t, std::move(name)).first->second;
  };
  std::vector<std::string> out;
  out.reserve(instance_.size());
  for (const Atom& atom : instance_.atoms()) {
    std::string s = universe()->PredicateName(atom.pred());
    if (!atom.IsNullary()) {
      s += '(';
      for (std::size_t i = 0; i < atom.arity(); ++i) {
        if (i > 0) s += ',';
        Term t = atom.arg(i);
        s += t.IsNull() ? null_name(t) : universe()->TermName(t);
      }
      s += ')';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ObliviousChase::AtomCountAtStep(std::size_t k) const {
  BDDFC_CHECK_LT(k, atoms_at_step_.size());
  return atoms_at_step_[k];
}

Instance ObliviousChase::Prefix(std::size_t k) const {
  Instance out(universe(), instance_.storage());
  const std::size_t limit =
      k < atoms_at_step_.size() ? atoms_at_step_[k] : instance_.size();
  const std::vector<Atom>& all = instance_.atoms();
  out.AddAtoms(all.data(), all.data() + limit);
  return out;
}

int ObliviousChase::StepOfAtom(std::size_t idx) const {
  BDDFC_CHECK_LT(idx, atom_step_.size());
  return atom_step_[idx];
}

const ObliviousChase::AtomProvenance& ObliviousChase::ProvenanceOf(
    std::size_t idx) const {
  BDDFC_CHECK_LT(idx, atom_provenance_.size());
  return atom_provenance_[idx];
}

namespace {

void ExplainRec(const ObliviousChase& chase, const Atom& atom, int depth,
                int max_depth, std::string* out) {
  const Universe& u = *chase.universe();
  out->append(2 * depth, ' ');
  std::size_t idx = chase.Result().IndexOf(atom);
  if (idx == SIZE_MAX) {
    *out += u.PredicateName(atom.pred());
    *out += " <- NOT IN CHASE\n";
    return;
  }
  // Render the atom.
  *out += u.PredicateName(atom.pred());
  if (!atom.IsNullary()) {
    *out += '(';
    for (std::size_t i = 0; i < atom.arity(); ++i) {
      if (i > 0) *out += ',';
      *out += u.TermName(atom.arg(i));
    }
    *out += ')';
  }
  const auto& provenance = chase.ProvenanceOf(idx);
  if (provenance.database) {
    *out += "  [database]\n";
    return;
  }
  const Rule& rule = chase.rules()[provenance.rule_index];
  // Built piecewise (GCC 12's -Wrestrict mis-fires on chained string
  // operator+ here).
  *out += "  [step ";
  *out += std::to_string(provenance.step);
  *out += ", rule ";
  if (rule.label().empty()) {
    *out += '#';
    *out += std::to_string(provenance.rule_index);
  } else {
    *out += rule.label();
  }
  *out += "]\n";
  if (depth >= max_depth) {
    out->append(2 * (depth + 1), ' ');
    *out += "...\n";
    return;
  }
  for (const Atom& body_atom : rule.body()) {
    ExplainRec(chase, provenance.trigger.Apply(body_atom), depth + 1,
               max_depth, out);
  }
}

}  // namespace

std::string ObliviousChase::Explain(const Atom& atom, int max_depth) const {
  std::string out;
  ExplainRec(*this, atom, 0, max_depth, &out);
  return out;
}

int ObliviousChase::TimestampOf(Term t) const {
  auto it = term_info_.find(t);
  return it == term_info_.end() ? 0 : it->second.timestamp;
}

const ChaseTermInfo* ObliviousChase::InfoOf(Term t) const {
  auto it = term_info_.find(t);
  return it == term_info_.end() ? nullptr : &it->second;
}

bool ObliviousChase::IsDag() const {
  // Kahn's algorithm over the directed graph formed by all binary atoms.
  std::unordered_map<Term, std::vector<Term>> out_edges;
  std::unordered_map<Term, int> in_degree;
  std::size_t num_edges = 0;
  for (const Atom& a : instance_.atoms()) {
    if (!a.IsBinary()) continue;
    if (a.arg(0) == a.arg(1)) return false;  // loop
    out_edges[a.arg(0)].push_back(a.arg(1));
    ++in_degree[a.arg(1)];
    if (in_degree.find(a.arg(0)) == in_degree.end()) in_degree[a.arg(0)] = 0;
    ++num_edges;
  }
  std::vector<Term> queue;
  for (const auto& [t, d] : in_degree) {
    if (d == 0) queue.push_back(t);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    Term t = queue.back();
    queue.pop_back();
    ++processed;
    auto it = out_edges.find(t);
    if (it == out_edges.end()) continue;
    for (Term to : it->second) {
      if (--in_degree[to] == 0) queue.push_back(to);
    }
  }
  return processed == in_degree.size();
}

Instance Chase(const Instance& database, const RuleSet& rules,
               ChaseOptions options) {
  ObliviousChase chase(database, rules, options);
  chase.Run();
  return chase.Result();
}

Instance ChaseThenDatalog(const Instance& database,
                          const RuleSet& existential_rules,
                          const RuleSet& datalog_rules,
                          ChaseOptions existential_options,
                          std::size_t datalog_max_steps) {
  Instance first = Chase(database, existential_rules, existential_options);
  // The Datalog phase inherits the existential phase's resolved execution
  // configuration (engine, storage, threads, atom budget) with its own
  // step bound.
  ChaseOptions datalog_options;
  datalog_options.exec = existential_options.ResolvedExec();
  datalog_options.exec.max_steps = datalog_max_steps;
  // Datalog saturation creates no terms; the restricted variant terminates
  // whenever the saturation is finite (it always is on a finite instance).
  datalog_options.variant = ChaseVariant::kRestricted;
  return Chase(first, datalog_rules, datalog_options);
}

}  // namespace bddfc
