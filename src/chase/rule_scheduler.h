// The rule-scheduling layer shared by both chase execution engines.
//
// ObliviousChase::StepOnce used to hard-code "every step considers every
// rule, anchored at the chase's global delta". That loop is now a plan the
// scheduler hands out: one RuleJob per rule to enumerate this round, each
// with its own delta window. Two disciplines exist (ExecutionConfig's
// `schedule` knob):
//
//   * flat — a stateless pass-through: every rule, the chase's global
//     window. Byte-for-byte the historical behavior (the bit-identity
//     guarantees of the engine/storage/threads knobs extend to it).
//   * stratified — driven by the positive-reliance stratification
//     (src/analysis/reliance.h). Strata are processed in topological
//     order: a stratum activates only when every predecessor stratum has
//     saturated, so its rules compile plans and search only once their
//     input is complete. Active rules keep per-rule delta cursors (first
//     activation is a full scan; afterwards exactly the atoms appended
//     since their last enumeration), rules none of whose body predicates
//     gained atoms since their cursor are skipped outright, and
//     independent same-level strata fan out across the engines' existing
//     thread-pool parallelism (their jobs are planned into the same
//     round). A round that fires nothing saturates every active stratum
//     and activates the next ones — such "transition rounds" are not
//     chase steps.
//
// Soundness of the stratified schedule rests on two facts. First, every
// appended atom enters every not-yet-saturated rule's window exactly once
// (cursors only advance past ranges that were searched or proven empty
// for that rule), so no trigger is lost to scheduling order. Second, a
// stratum marked saturated stays saturated only because rules that could
// enable it (positive-reliance predecessors, over-approximated) have all
// saturated too — later strata cannot re-arm it. The result equals the
// flat chase up to null renaming (CanonicalAtoms()); the restricted
// variant is hom-equivalent (firing order changes which triggers are
// pre-empted).

#ifndef BDDFC_CHASE_RULE_SCHEDULER_H_
#define BDDFC_CHASE_RULE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/reliance.h"
#include "exec/parallel_chase.h"
#include "logic/instance.h"
#include "logic/rule.h"

namespace bddfc {

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

/// Monotone scheduling counters, exposed through ObliviousChase for
/// ReasonerStats and chase_cli's per-rule reporting. The totals are also
/// mirrored into the metrics registry (`chase.triggers_fired`,
/// `sched.rules_skipped`) when set_metrics was called, so every reporting
/// surface derives from the same per-rule increments.
struct RuleSchedulerStats {
  /// Triggers fired per rule, over the whole run.
  std::vector<std::size_t> fired;
  /// Rule-enumerations avoided per rule: rounds in which the flat schedule
  /// would have searched the rule but the stratified one planned no job
  /// for it (stratum not active, already saturated, or empty delta).
  /// Always zero under the flat schedule.
  std::vector<std::size_t> skipped;

  std::size_t fired_total() const;
  std::size_t skipped_total() const;
};

/// Plans which rules enumerate in each chase round. See the file comment.
class RuleScheduler {
 public:
  /// The flat pass-through schedule over `num_rules` rules.
  static std::unique_ptr<RuleScheduler> Flat(std::size_t num_rules);

  /// The stratified schedule: builds the reliance graph and its
  /// stratification up front. `universe` gains fresh variable names during
  /// unification; nothing else is mutated. With `naive` every planned rule
  /// re-enumerates its full prefix each round (mirroring the trigger
  /// engine's naive_enumeration escape hatch) instead of using delta
  /// cursors.
  static std::unique_ptr<RuleScheduler> Stratified(const RuleSet& rules,
                                                   Universe* universe,
                                                   bool naive);

  bool stratified() const { return stratification_.has_value(); }

  /// Strata count: 1 for the flat schedule (one bag), the stratification's
  /// count otherwise.
  std::size_t num_strata() const;

  /// The stratification / reliance graph (stratified only, else null).
  const Stratification* stratification() const {
    return stratification_ ? &*stratification_ : nullptr;
  }
  const RelianceGraph* graph() const { return graph_ ? &*graph_ : nullptr; }

  /// Restraint-topological firing ranks (stratified only, else null): the
  /// chase sorts candidates by (rank, rule, body image) instead of the
  /// canonical (rule, body image) when present.
  const std::vector<std::size_t>* FiringRanks() const;

  /// Plans one enumeration round. `global_full` / `global_delta_begin`
  /// describe the chase's own window (the flat schedule forwards them
  /// verbatim; the stratified one tracks per-rule windows and scans
  /// `instance`'s new atoms to apply the empty-delta skip).
  std::vector<exec::RuleJob> PlanRound(bool global_full,
                                       std::uint32_t global_delta_begin,
                                       const Instance& instance);

  /// Completes the round PlanRound opened. `delta_end` is the instance
  /// size the round enumerated against; `fired[r]` counts rule r's fired
  /// triggers. With `truncated` (the atom budget cut the firing phase
  /// short) only the stats accumulate — cursors and saturation are left
  /// untouched, because unfired candidates would be lost otherwise.
  void OnRoundEnd(std::uint32_t delta_end,
                  const std::vector<std::size_t>& fired, bool truncated);

  /// After a round that fired nothing: is the whole schedule exhausted?
  /// Flat: yes (a no-fire flat round is saturation). Stratified: only once
  /// every stratum has saturated; otherwise the no-fire round was a
  /// transition that activated the next strata.
  bool AllSaturated() const;

  /// Base facts were appended: every stratum must re-check, in topological
  /// order (cursors stay valid — the new atoms sit above every cursor).
  void OnFactsInserted();

  const RuleSchedulerStats& stats() const { return stats_; }

  /// Attaches a metrics sink (the chase passes its resolved registry):
  /// skip counts and the live-rule gauge update as the schedule runs.
  /// Null detaches; without a sink the scheduler records nothing.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  RuleScheduler(std::size_t num_rules, bool naive);

  std::size_t num_rules_ = 0;
  bool naive_ = false;
  RuleSchedulerStats stats_;

  // Metrics instruments (null until set_metrics).
  obs::Counter* metric_skipped_ = nullptr;
  obs::Gauge* metric_active_rules_ = nullptr;
  obs::Gauge* metric_strata_ = nullptr;
  // Strata announced as active via a trace instant (stratified only):
  // cleared when a stratum saturates so re-activation after
  // OnFactsInserted announces again.
  std::vector<char> announced_;

  // Stratified state (unset for flat).
  std::optional<RelianceGraph> graph_;
  std::optional<Stratification> stratification_;
  std::vector<char> saturated_;        // per stratum
  std::vector<std::uint32_t> cursor_;  // per rule: next delta begin
  std::vector<char> enumerated_;       // per rule: had its first full scan
  std::vector<std::size_t> active_rules_;  // rules of the round's strata
  std::vector<std::size_t> active_strata_;
  // Per-predicate highest atom index seen, for the empty-delta skip.
  std::vector<std::int64_t> last_atom_of_pred_;
  std::size_t scanned_upto_ = 0;  // instance prefix already scanned
  // Body predicates per rule (deduplicated).
  std::vector<std::vector<PredicateId>> body_preds_;
};

}  // namespace bddfc

#endif  // BDDFC_CHASE_RULE_SCHEDULER_H_
