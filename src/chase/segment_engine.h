// The segment-at-a-time chase execution engine (VLog-style set-at-a-time
// rule execution).
//
// The trigger engine enumerates rule-body homomorphisms one at a time
// through a per-trigger backtracking search. This engine instead compiles
// each rule body *once* into relational join plans over the FactStore's
// sorted runs (SortedRunsView, src/storage/fact_store.h) and executes each
// plan *once per chase step*, producing the step's whole candidate segment
// in bulk: flat tuple vectors flow through merge joins instead of
// per-match Substitution maps, and probe terms are matched by
// binary-searching O(log n) sorted runs instead of hash lookups that
// materialize an index vector per probe.
//
// Semi-naive decomposition: a homomorphism is *new* on step n exactly when
// at least one body atom maps into the previous step's delta segment
// [delta_begin, delta_end). Per rule there is one plan per anchor a ∈
// [0, |body|): atom a's image is constrained to the delta, atoms before a
// to the old prefix [0, delta_begin), and atoms after a to the full range
// [0, delta_end). The anchor is thus the *first* body atom mapping into
// the delta, so each new homomorphism is produced by exactly one anchor
// plan, exactly once — the same exactly-once property the trigger engine's
// delta search has, which is why both engines hand the shared canonical
// firing phase the same candidate set and produce bit-identical chases.
//
// Join order within a plan is greedy: start at the anchor, then repeatedly
// take the body atom with the most bound (already-slotted or constant)
// positions. An atom joined on a bound variable becomes a merge join over
// the sorted runs of its (predicate, position); an atom with no binding to
// the current tuples becomes a cross join (disconnected body components).
// The plan structure is exposed for inspection (tests/segment_engine_test
// asserts the compiled shapes).

#ifndef BDDFC_CHASE_SEGMENT_ENGINE_H_
#define BDDFC_CHASE_SEGMENT_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/parallel_chase.h"
#include "logic/instance.h"
#include "logic/rule.h"

namespace bddfc {

class ThreadPool;

/// One stage of a compiled per-anchor join plan.
struct SegmentJoinStep {
  enum class Kind {
    /// Plan opener: scan the anchor atom's image range.
    kScan,
    /// Merge join: probe the sorted runs of (pred, probe_pos) with the
    /// term each current tuple holds in probe_slot.
    kMergeJoin,
    /// Cross join: the atom shares no bound variable with the tuples
    /// (disconnected body component); every matching atom pairs with
    /// every tuple.
    kCross,
  };
  /// Which atom-index range the body atom's image must fall in, realized
  /// against the step's [delta_begin, delta_end) at execution time.
  enum class Range {
    kDelta,  // [delta_begin, delta_end) — the anchor
    kOld,    // [0, delta_begin) — body atoms before the anchor
    kFull,   // [0, delta_end)  — body atoms after the anchor
  };

  Kind kind = Kind::kScan;
  Range range = Range::kFull;
  /// Index of the body atom this step matches.
  std::size_t body_index = 0;
  PredicateId pred = 0;
  /// kMergeJoin only: the probed argument position and the tuple slot
  /// whose term drives the probe.
  int probe_pos = -1;
  int probe_slot = -1;
  /// Positions that must equal a rule constant: (position, constant).
  std::vector<std::pair<int, Term>> const_checks;
  /// Positions bound to an earlier atom's variable: (position, slot).
  std::vector<std::pair<int, int>> slot_checks;
  /// A new variable repeated within this atom: (position, earlier
  /// position holding the same variable).
  std::vector<std::pair<int, int>> dup_checks;
  /// First occurrences of new variables: (position, output slot).
  std::vector<std::pair<int, int>> outputs;
};

/// The compiled plan for one (rule, anchor) pair.
struct SegmentAnchorPlan {
  std::size_t anchor = 0;  // body index of the delta-driving atom
  std::vector<SegmentJoinStep> steps;
  std::size_t num_slots = 0;  // width of the intermediate tuples
  /// Slot of body_vars()[i] — the final projection into a
  /// TriggerCandidate's canonical body image.
  std::vector<int> body_var_slots;
};

/// All anchor plans of one rule (anchors in body order).
struct SegmentRulePlan {
  std::vector<SegmentAnchorPlan> anchors;
};

/// Compiles the per-anchor join plans of `rule`. Deterministic: depends
/// only on the rule's body.
SegmentRulePlan CompileSegmentPlan(const Rule& rule);

/// Executes compiled plans against a growing instance. The engine holds
/// only borrowed pointers (instance and rules must outlive it) and caches
/// the compiled plans; all state mutated per step is local to Collect.
class SegmentEngine {
 public:
  SegmentEngine(const Instance* instance, const RuleSet* rules);

  const SegmentRulePlan& plan(std::size_t rule_index) const {
    return plans_[rule_index];
  }

  /// Appends to `out` every body homomorphism (as a TriggerCandidate body
  /// image) that is new for the step whose delta segment is
  /// [delta_begin, delta_end). With delta_begin == 0 this is the full
  /// first-step enumeration (only anchor-0 plans run). When `pool` is
  /// non-null the (rule, anchor) plan executions fan out over it; the
  /// caller's canonical sort erases the nondeterministic batch order.
  /// Read-only with respect to the instance.
  void Collect(std::uint32_t delta_begin, std::uint32_t delta_end,
               ThreadPool* pool,
               std::vector<exec::TriggerCandidate>* out) const;

  /// Job-based variant: each rule runs with its own delta window, as
  /// planned by a RuleScheduler. A `full` job executes only the rule's
  /// anchor-0 plan over [0, delta_end) (the first-step enumeration); a
  /// delta job executes every anchor plan over
  /// [job.delta_begin, delta_end). Collect(b, e, ...) is exactly
  /// CollectJobs with one job per rule and a common window.
  void CollectJobs(const std::vector<exec::RuleJob>& jobs,
                   std::uint32_t delta_end, ThreadPool* pool,
                   std::vector<exec::TriggerCandidate>* out) const;

 private:
  void ExecuteAnchor(std::size_t rule_index,
                     const SegmentAnchorPlan& anchor_plan,
                     std::uint32_t delta_begin, std::uint32_t delta_end,
                     std::vector<exec::TriggerCandidate>* out) const;

  const Instance* instance_;
  const RuleSet* rules_;
  std::vector<SegmentRulePlan> plans_;
};

}  // namespace bddfc

#endif  // BDDFC_CHASE_SEGMENT_ENGINE_H_
