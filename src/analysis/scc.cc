#include "analysis/scc.h"

#include <algorithm>

namespace bddfc {

namespace {
constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
}  // namespace

SccResult TarjanScc(const std::vector<std::vector<std::size_t>>& adj) {
  const std::size_t n = adj.size();
  SccResult out;
  out.component.assign(n, kUnvisited);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  struct Frame {
    std::size_t node;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  std::size_t next_index = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;
    frames.push_back({start, 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < adj[frame.node].size()) {
        const std::size_t to = adj[frame.node][frame.edge++];
        if (index[to] == kUnvisited) {
          index[to] = lowlink[to] = next_index++;
          stack.push_back(to);
          on_stack[to] = 1;
          frames.push_back({to, 0});
        } else if (on_stack[to]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[to]);
        }
        continue;
      }
      const std::size_t node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        for (;;) {
          const std::size_t v = stack.back();
          stack.pop_back();
          on_stack[v] = 0;
          out.component[v] = out.num_components;
          if (v == node) break;
        }
        ++out.num_components;
      }
    }
  }
  return out;
}

}  // namespace bddfc
