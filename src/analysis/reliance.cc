#include "analysis/reliance.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/positions.h"
#include "analysis/scc.h"
#include "logic/atom.h"
#include "logic/cq.h"
#include "rewriting/piece_unifier.h"

namespace bddfc {

namespace {

std::unordered_set<PredicateId> PredsOf(const std::vector<Atom>& atoms) {
  std::unordered_set<PredicateId> out;
  for (const Atom& a : atoms) out.insert(a.pred());
  return out;
}

bool Overlaps(const std::unordered_set<PredicateId>& a,
              const std::unordered_set<PredicateId>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (PredicateId p : small) {
    if (large.find(p) != large.end()) return true;
  }
  return false;
}

}  // namespace

bool RelianceGraph::HasPositive(std::size_t from, std::size_t to) const {
  const std::vector<std::size_t>& row = positive[from];
  return std::binary_search(row.begin(), row.end(), to);
}

bool RelianceGraph::HasRestraint(std::size_t from, std::size_t to) const {
  const std::vector<std::size_t>& row = restraint[from];
  return std::binary_search(row.begin(), row.end(), to);
}

std::size_t RelianceGraph::num_positive_edges() const {
  std::size_t n = 0;
  for (const auto& row : positive) n += row.size();
  return n;
}

std::size_t RelianceGraph::num_restraint_edges() const {
  std::size_t n = 0;
  for (const auto& row : restraint) n += row.size();
  return n;
}

RelianceGraph BuildRelianceGraph(const RuleSet& rules, Universe* universe) {
  RelianceGraph graph;
  const std::size_t n = rules.size();
  graph.positive.assign(n, {});
  graph.restraint.assign(n, {});

  std::vector<std::unordered_set<PredicateId>> body_preds;
  std::vector<std::unordered_set<PredicateId>> head_preds;
  body_preds.reserve(n);
  head_preds.reserve(n);
  for (const Rule& rule : rules) {
    body_preds.push_back(PredsOf(rule.body()));
    head_preds.push_back(PredsOf(rule.head()));
  }

  // The target queries (one per "to" rule): body(i) as a Boolean CQ for
  // positive reliance, head(i) with the frontier pinned as answer
  // variables for restraint. Restraint is only computed toward rules with
  // existentials — an all-frontier head has no alternative-match freedom
  // worth ordering around.
  std::vector<Cq> body_queries;
  body_queries.reserve(n);
  for (const Rule& rule : rules) {
    body_queries.emplace_back(rule.body(), std::vector<Term>{});
  }

  for (std::size_t j = 0; j < n; ++j) {
    RuleSet single{rules[j]};
    for (std::size_t i = 0; i < n; ++i) {
      if (!Overlaps(head_preds[j], body_preds[i])) continue;
      if (!EnumeratePieceRewritings(body_queries[i], single, universe)
               .empty()) {
        graph.positive[j].push_back(i);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (rules[i].existentials().empty()) continue;
      if (!Overlaps(head_preds[j], head_preds[i])) continue;
      Cq head_query(rules[i].head(), rules[i].frontier());
      if (!EnumeratePieceRewritings(head_query, single, universe).empty()) {
        graph.restraint[j].push_back(i);
      }
    }
  }
  return graph;
}

Stratification Stratify(const RelianceGraph& graph) {
  Stratification out;
  const std::size_t n = graph.num_rules();
  const SccResult scc = TarjanScc(graph.positive);
  const std::size_t m = scc.num_components;
  out.stratum_of.resize(n);
  out.strata.assign(m, {});
  for (std::size_t r = 0; r < n; ++r) {
    // Tarjan emits sinks first; flipping the ids makes every positive
    // edge run topologically forward (stratum_of[from] <= stratum_of[to]).
    out.stratum_of[r] = m - 1 - scc.component[r];
    out.strata[out.stratum_of[r]].push_back(r);
  }
  out.predecessors.assign(m, {});
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i : graph.positive[j]) {
      const std::size_t from = out.stratum_of[j];
      const std::size_t to = out.stratum_of[i];
      if (from != to) out.predecessors[to].push_back(from);
    }
  }
  for (std::vector<std::size_t>& preds : out.predecessors) {
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  }
  // Restraint ranks: fire restrainers before the rules they restrain, so
  // the restricted chase sees the alternative head match in time to skip.
  const SccResult rscc = TarjanScc(graph.restraint);
  out.firing_rank.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    out.firing_rank[r] = rscc.num_components - 1 - rscc.component[r];
  }
  return out;
}

const char* ToString(TerminationCertificate certificate) {
  switch (certificate) {
    case TerminationCertificate::kNone:
      return "none";
    case TerminationCertificate::kWeaklyAcyclic:
      return "weakly-acyclic";
    case TerminationCertificate::kJointlyAcyclic:
      return "jointly-acyclic";
  }
  return "?";
}

bool IsWeaklyAcyclic(const RuleSet& rules) {
  // Weakly acyclic iff no special edge stays inside one SCC of the shared
  // position-dependency graph — equivalently, no position has infinite
  // rank.
  const PositionsGraph graph = BuildPositionsGraph(rules);
  const SccResult scc = TarjanScc(graph.Adjacency());
  for (const PositionsGraph::Edge& e : graph.special) {
    if (scc.component[e.from] == scc.component[e.to]) return false;
  }
  return true;
}

bool IsJointlyAcyclic(const RuleSet& rules) {
  // Krötzsch & Rudolph's existential-variable graph. Ω(z) is the position
  // fixpoint reachable by nulls created for z: seeded with z's head
  // positions, closed under "a frontier variable whose body positions all
  // lie in Ω carries Ω into its head positions". Edge z → z' iff some
  // frontier variable of rule(z') has every body position inside Ω(z);
  // jointly acyclic iff the graph is acyclic.
  struct FrontierVar {
    std::size_t rule = 0;
    std::vector<std::uint64_t> body_positions;
    std::vector<std::uint64_t> head_positions;
  };
  std::vector<FrontierVar> frontier_vars;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (Term x : rules[r].frontier()) {
      FrontierVar fv;
      fv.rule = r;
      for (const Atom& a : rules[r].body()) {
        for (int pos = 0; pos < static_cast<int>(a.arity()); ++pos) {
          if (a.arg(pos) == x) fv.body_positions.push_back(PosId(a.pred(), pos));
        }
      }
      for (const Atom& a : rules[r].head()) {
        for (int pos = 0; pos < static_cast<int>(a.arity()); ++pos) {
          if (a.arg(pos) == x) fv.head_positions.push_back(PosId(a.pred(), pos));
        }
      }
      frontier_vars.push_back(std::move(fv));
    }
  }

  struct Evar {
    std::size_t rule = 0;
    Term var;
  };
  std::vector<Evar> evars;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (Term z : rules[r].existentials()) evars.push_back({r, z});
  }
  if (evars.empty()) return true;

  const auto covered = [](const FrontierVar& fv,
                          const std::unordered_set<std::uint64_t>& omega) {
    for (std::uint64_t p : fv.body_positions) {
      if (omega.find(p) == omega.end()) return false;
    }
    return true;
  };

  std::vector<std::unordered_set<std::uint64_t>> omegas(evars.size());
  for (std::size_t e = 0; e < evars.size(); ++e) {
    std::unordered_set<std::uint64_t>& omega = omegas[e];
    for (const Atom& a : rules[evars[e].rule].head()) {
      for (int pos = 0; pos < static_cast<int>(a.arity()); ++pos) {
        if (a.arg(pos) == evars[e].var) omega.insert(PosId(a.pred(), pos));
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const FrontierVar& fv : frontier_vars) {
        if (!covered(fv, omega)) continue;
        for (std::uint64_t p : fv.head_positions) {
          changed |= omega.insert(p).second;
        }
      }
    }
  }

  std::vector<std::vector<std::size_t>> adj(evars.size());
  for (std::size_t e = 0; e < evars.size(); ++e) {
    for (std::size_t f = 0; f < evars.size(); ++f) {
      const std::size_t target_rule = evars[f].rule;
      for (const FrontierVar& fv : frontier_vars) {
        if (fv.rule != target_rule) continue;
        if (covered(fv, omegas[e])) {
          adj[e].push_back(f);
          break;
        }
      }
    }
  }
  for (std::size_t e = 0; e < evars.size(); ++e) {
    for (std::size_t to : adj[e]) {
      if (to == e) return false;  // self-loop
    }
  }
  const SccResult scc = TarjanScc(adj);
  std::vector<std::size_t> size(scc.num_components, 0);
  for (std::size_t c : scc.component) ++size[c];
  for (std::size_t s : size) {
    if (s > 1) return false;
  }
  return true;
}

TerminationCertificate CertifyTermination(const RuleSet& rules) {
  if (IsWeaklyAcyclic(rules)) return TerminationCertificate::kWeaklyAcyclic;
  if (IsJointlyAcyclic(rules)) return TerminationCertificate::kJointlyAcyclic;
  return TerminationCertificate::kNone;
}

}  // namespace bddfc
