// Static decidable-class analysis of a rule program (the "analyze before
// you run" half of the strategy problem).
//
// The chase terminates — or the query is UCQ-rewritable — for well-known
// syntactic fragments of existential rules. This module decides, purely
// from the rule text, membership in the classic classes:
//
//   linear            every rule body is a single atom;
//   guarded           some body atom contains all body variables;
//   frontier-guarded  some body atom contains all frontier variables;
//   sticky            the Calì–Gottlob–Pieris marking leaves no join
//                     variable marked;
//   weakly-sticky     every marked join variable touches a finite-rank
//                     position of the positions graph;
//   weakly-acyclic    no special edge inside an SCC of the positions graph
//                     (the existing chase-termination certificate);
//   jointly-acyclic   the existential-variable graph is acyclic.
//
// From these it derives two actionable verdicts:
//
//   FUS  (finite-unification / first-order-rewritable): linear or sticky —
//        certain answers are computable by UCQ rewriting alone;
//   FES  (finite-expansion): weakly or jointly acyclic — the chase
//        saturates, so materialization is complete.
//
// Every negative membership answer carries a machine-checkable witness:
// the violating rule index plus a rendered explanation (the unguarded
// variable, the marked join variable, the special edge closing a cycle).
// `Reasoner` consults the report to pick a strategy before spending any
// probe budget; `bddfc_lint`, `chase_cli --analyze`, and the server
// `analyze` op surface it to users.

#ifndef BDDFC_ANALYSIS_PROGRAM_ANALYSIS_H_
#define BDDFC_ANALYSIS_PROGRAM_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/reliance.h"
#include "base/json.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// Membership in one syntactic class. When `holds` is false, the witness
/// names a rule whose shape violates the class definition (the first such
/// rule in program order, for determinism) and `detail` explains why.
struct ClassVerdict {
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  bool holds = false;
  std::size_t witness_rule = kNoRule;  // violating rule when !holds
  std::string detail;                  // rendered explanation (either way)

  JsonValue ToJson() const;
};

/// One special edge of the positions graph that stays inside an SCC: the
/// inducing rule can feed its own null-creating position, so the chase has
/// no rank-based termination argument through it.
struct DivergenceWitness {
  std::size_t rule = 0;
  std::string position;  // rendered "Pred[i]" of the cycle-closing target

  JsonValue ToJson() const;
};

/// The full analysis result for one rule set.
struct ProgramReport {
  ClassVerdict linear;
  ClassVerdict guarded;
  ClassVerdict frontier_guarded;
  ClassVerdict sticky;
  ClassVerdict weakly_sticky;
  ClassVerdict weakly_acyclic;
  ClassVerdict jointly_acyclic;

  TerminationCertificate certificate = TerminationCertificate::kNone;

  bool fus = false;
  std::string fus_reason;  // class that granted it, or why not
  bool fes = false;
  std::string fes_reason;

  /// All special-in-SCC edges (deduplicated per rule/position); empty iff
  /// weakly acyclic. Feeds the divergence-risk lint.
  std::vector<DivergenceWitness> divergence;

  /// Comma-separated names of the classes that hold, e.g.
  /// "linear, guarded, frontier-guarded, sticky"; "none" if empty.
  std::string ClassList() const;

  JsonValue ToJson() const;
};

/// Analyzes `rules`. `universe` is used only to render names in witness
/// strings. Pure function of the rule set; cost is near-linear in the
/// program size except for the marking/rank fixpoints, which are
/// polynomial in the number of (predicate, position) pairs.
ProgramReport AnalyzeProgram(const RuleSet& rules, const Universe& universe);

}  // namespace bddfc

#endif  // BDDFC_ANALYSIS_PROGRAM_ANALYSIS_H_
