#include "analysis/lint.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/program_analysis.h"
#include "homomorphism/homomorphism.h"
#include "logic/atom.h"
#include "logic/printer.h"
#include "logic/substitution.h"

namespace bddfc {

namespace {

std::string RuleName(const RuleSet& rules, std::size_t r) {
  if (!rules[r].label().empty()) return rules[r].label();
  return "rule #" + std::to_string(r);
}

struct Emitter {
  LintReport* report;

  void Emit(const char* id, LintSeverity severity, std::size_t rule,
            std::string message) {
    LintDiagnostic d;
    d.id = id;
    d.severity = severity;
    d.rule = rule;
    d.message = std::move(message);
    switch (severity) {
      case LintSeverity::kError:
        ++report->errors;
        break;
      case LintSeverity::kWarning:
        ++report->warnings;
        break;
      case LintSeverity::kNote:
        ++report->notes;
        break;
    }
    report->diagnostics.push_back(std::move(d));
  }
};

// Predicate facts the lint convention relies on. A predicate appearing in
// no head is assumed EDB (externally supplied); one appearing in some head
// is assumed derived-only unless the given database actually holds facts
// for it.
struct PredFacts {
  std::vector<bool> in_head;
  std::vector<bool> in_body;
  std::vector<bool> has_facts;  // false everywhere without a database

  bool EdbSeeded(PredicateId p, bool have_db) const {
    if (have_db) return has_facts[p] || !in_head[p];
    return !in_head[p];
  }
};

PredFacts CollectPredFacts(const RuleSet& rules, const Universe& universe,
                           const Instance* database) {
  PredFacts pf;
  const std::size_t n = universe.num_predicates();
  pf.in_head.assign(n, false);
  pf.in_body.assign(n, false);
  pf.has_facts.assign(n, false);
  for (const Rule& rule : rules) {
    for (const Atom& a : rule.body()) {
      if (a.pred() < n) pf.in_body[a.pred()] = true;
    }
    for (const Atom& a : rule.head()) {
      if (a.pred() < n) pf.in_head[a.pred()] = true;
    }
  }
  if (database != nullptr) {
    for (PredicateId p = 0; p < n; ++p) {
      pf.has_facts[p] = !database->AtomsWith(p).empty();
    }
  }
  return pf;
}

// ---- never-matching-body -------------------------------------------------

void CheckNeverMatching(const RuleSet& rules, const Universe& universe,
                        const Instance* database, const PredFacts& pf,
                        Emitter* out) {
  const bool have_db = database != nullptr;
  const PredicateId top = universe.top();
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (const Atom& a : rules[r].body()) {
      if (a.pred() == top) continue;
      // (a) Arity disagreement with the interned signature. Unreachable
      // through the parser (interning aborts on conflict) but possible for
      // programmatically assembled atoms.
      if (static_cast<int>(a.arity()) != universe.ArityOf(a.pred())) {
        out->Emit("never-matching-body", LintSeverity::kError, r,
                  RuleName(rules, r) + ": body atom over " +
                      universe.PredicateName(a.pred()) + " has arity " +
                      std::to_string(a.arity()) + ", declared " +
                      std::to_string(universe.ArityOf(a.pred())));
        continue;
      }
      // (b) With a database: a predicate with no facts and no deriving
      // rule never matches anything.
      if (have_db && !pf.in_head[a.pred()] && !pf.has_facts[a.pred()]) {
        out->Emit("never-matching-body", LintSeverity::kError, r,
                  RuleName(rules, r) + ": body atom over " +
                      universe.PredicateName(a.pred()) +
                      " — no facts in the database and no rule derives it");
        continue;
      }
      // (c) Constant contradiction: the atom pins position i to constant
      // c, but every derivation of the predicate writes a different
      // constant there (and no EDB facts can supply it).
      if (pf.EdbSeeded(a.pred(), have_db)) continue;
      for (std::size_t i = 0; i < a.arity(); ++i) {
        const Term c = a.arg(i);
        if (!c.IsConstant()) continue;
        bool producible = false;
        for (const Rule& producer : rules) {
          for (const Atom& h : producer.head()) {
            if (h.pred() != a.pred()) continue;
            const Term t = h.arg(i);
            if (!t.IsConstant() || t == c) {
              producible = true;
              break;
            }
          }
          if (producible) break;
        }
        if (!producible) {
          out->Emit("never-matching-body", LintSeverity::kError, r,
                    RuleName(rules, r) + ": body atom over " +
                        universe.PredicateName(a.pred()) +
                        " requires constant " + universe.TermName(c) +
                        " at position " + std::to_string(i) +
                        ", but every deriving rule writes a different "
                        "constant there");
          break;
        }
      }
    }
  }
}

// ---- unreachable-rule ----------------------------------------------------

void CheckUnreachable(const RuleSet& rules, const Universe& universe,
                      const Instance* database, const PredFacts& pf,
                      Emitter* out) {
  const bool have_db = database != nullptr;
  const std::size_t n = universe.num_predicates();
  std::vector<bool> reachable(n, false);
  reachable[universe.top()] = true;
  for (PredicateId p = 0; p < n; ++p) {
    if (pf.EdbSeeded(p, have_db)) reachable[p] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      bool fires = true;
      for (const Atom& a : rule.body()) {
        if (!reachable[a.pred()]) {
          fires = false;
          break;
        }
      }
      if (!fires) continue;
      for (const Atom& a : rule.head()) {
        if (!reachable[a.pred()]) {
          reachable[a.pred()] = true;
          changed = true;
        }
      }
    }
  }
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (const Atom& a : rules[r].body()) {
      if (!reachable[a.pred()]) {
        out->Emit("unreachable-rule", LintSeverity::kWarning, r,
                  RuleName(rules, r) + ": no derivation from the EDB " +
                      "predicates can ever supply " +
                      universe.PredicateName(a.pred()));
        break;
      }
    }
  }
}

// ---- duplicate-rule ------------------------------------------------------

// Canonical text of a rule with variables renamed in first-occurrence
// order. Two rules are duplicates iff their canonical texts agree (atom
// order is significant — this is a cheap syntactic check, not equivalence).
std::string CanonicalText(const Rule& rule) {
  std::unordered_map<std::uint32_t, std::size_t> rank;
  std::string out;
  const auto encode = [&rank, &out](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      out += 'p';
      out += std::to_string(a.pred());
      out += '(';
      for (Term t : a.args()) {
        if (t.IsVariable()) {
          const auto [it, _] = rank.emplace(t.raw(), rank.size());
          out += 'v';
          out += std::to_string(it->second);
        } else {
          out += 'c';
          out += std::to_string(t.raw());
        }
        out += ',';
      }
      out += ')';
    }
  };
  encode(rule.body());
  out += "->";
  encode(rule.head());
  return out;
}

// Returns the duplicate partition: dup_of[r] is the first rule with the
// same canonical text (== r when r is the first of its class).
std::vector<std::size_t> CheckDuplicates(const RuleSet& rules, Emitter* out) {
  std::unordered_map<std::string, std::size_t> first;
  std::vector<std::size_t> dup_of(rules.size());
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const auto [it, inserted] = first.emplace(CanonicalText(rules[r]), r);
    dup_of[r] = it->second;
    if (!inserted) {
      out->Emit("duplicate-rule", LintSeverity::kWarning, r,
                RuleName(rules, r) + " duplicates " +
                    RuleName(rules, it->second) +
                    " (equal up to variable renaming)");
    }
  }
  return dup_of;
}

// ---- subsumed-rule -------------------------------------------------------

// True iff general fires whenever specific does and derives at least
// specific's conclusions: freeze specific's variables into constants, map
// body(general) homomorphically into the frozen body, and require the
// image of head(general) to cover the frozen head. Datalog rules only —
// existential heads need piece-unification-grade care.
bool SubsumesRule(const Rule& general, const Rule& specific,
                  Universe* universe) {
  Substitution freeze;
  for (Term v : specific.body_vars()) {
    freeze.Bind(v, universe->InternConstant(
                       "__lint$" + std::to_string(v.index())));
  }
  Instance frozen(universe);
  frozen.AddAtoms(freeze.Apply(specific.body()));
  std::unordered_set<Atom> wanted;
  for (const Atom& h : specific.head()) wanted.insert(freeze.Apply(h));

  HomSearch search(general.body(), &frozen);
  bool found = false;
  search.ForEach({}, [&](const Substitution& hom) {
    for (const Atom& h : general.head()) {
      if (wanted.erase(hom.Apply(h)) && wanted.empty()) break;
    }
    if (wanted.empty()) {
      found = true;
      return false;
    }
    // Restore for the next homomorphism.
    for (const Atom& h : specific.head()) wanted.insert(freeze.Apply(h));
    return true;
  });
  return found;
}

void CheckSubsumed(const RuleSet& rules, Universe* universe,
                   const std::vector<std::size_t>& dup_of, Emitter* out) {
  const std::size_t n = rules.size();
  // Pred-set prefilter so the pass stays near-linear on programs whose
  // rules touch disjoint predicates (the common case at benchmark scale).
  std::vector<std::unordered_set<PredicateId>> body_preds(n);
  std::vector<std::unordered_set<PredicateId>> head_preds(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (const Atom& a : rules[r].body()) body_preds[r].insert(a.pred());
    for (const Atom& a : rules[r].head()) head_preds[r].insert(a.pred());
  }
  const auto subset = [](const std::unordered_set<PredicateId>& a,
                         const std::unordered_set<PredicateId>& b) {
    if (a.size() > b.size()) return false;
    for (PredicateId p : a) {
      if (b.find(p) == b.end()) return false;
    }
    return true;
  };
  // Candidate generals indexed under each of their head predicates; a
  // specific rule only consults the bucket of one of its head predicates
  // (any general whose head covers the specific's appears there).
  std::unordered_map<PredicateId, std::vector<std::size_t>> by_head_pred;
  for (std::size_t r = 0; r < n; ++r) {
    if (!rules[r].IsDatalog()) continue;
    for (PredicateId p : head_preds[r]) by_head_pred[p].push_back(r);
  }

  for (std::size_t spec = 0; spec < n; ++spec) {
    if (!rules[spec].IsDatalog() || head_preds[spec].empty()) continue;
    if (dup_of[spec] != spec) continue;  // already reported as duplicate
    const auto it =
        by_head_pred.find(rules[spec].head().front().pred());
    if (it == by_head_pred.end()) continue;
    for (std::size_t gen : it->second) {
      if (gen == spec || dup_of[gen] != gen) continue;
      if (rules[gen].body().size() > rules[spec].body().size()) continue;
      if (!subset(body_preds[gen], body_preds[spec])) continue;
      if (!subset(head_preds[spec], head_preds[gen])) continue;
      if (!SubsumesRule(rules[gen], rules[spec], universe)) continue;
      // Mutual subsumption (logically equivalent rules): keep the earlier
      // one, flag the later.
      if (SubsumesRule(rules[spec], rules[gen], universe) && gen > spec) {
        continue;
      }
      out->Emit("subsumed-rule", LintSeverity::kWarning, spec,
                RuleName(rules, spec) + " is subsumed by the more general " +
                    RuleName(rules, gen));
      break;
    }
  }
}

// ---- cartesian-body ------------------------------------------------------

void CheckCartesian(const RuleSet& rules, Emitter* out) {
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const std::vector<Atom>& body = rules[r].body();
    if (body.size() < 2) continue;
    // Union-find over body atoms, merged through shared variables.
    std::vector<std::size_t> parent(body.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const auto find = [&parent](std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::unordered_map<std::uint32_t, std::size_t> owner;  // var -> atom
    for (std::size_t i = 0; i < body.size(); ++i) {
      for (Term t : body[i].args()) {
        if (!t.IsVariable()) continue;
        const auto [it, inserted] = owner.emplace(t.raw(), i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::unordered_set<std::size_t> groups;
    for (std::size_t i = 0; i < body.size(); ++i) {
      bool has_var = false;
      for (Term t : body[i].args()) has_var |= t.IsVariable();
      if (has_var) groups.insert(find(i));
    }
    if (groups.size() >= 2) {
      out->Emit("cartesian-body", LintSeverity::kWarning, r,
                RuleName(rules, r) + ": body splits into " +
                    std::to_string(groups.size()) +
                    " variable-disjoint groups (matching is a cross "
                    "product)");
    }
  }
}

// ---- divergence-risk -----------------------------------------------------

void CheckDivergence(const RuleSet& rules, const ProgramReport& analysis,
                     Emitter* out) {
  if (analysis.certificate != TerminationCertificate::kNone) return;
  // One diagnostic per owning rule; the report's witnesses are already
  // deduplicated per (rule, position).
  std::unordered_map<std::size_t, std::vector<std::string>> by_rule;
  for (const DivergenceWitness& w : analysis.divergence) {
    by_rule[w.rule].push_back(w.position);
  }
  std::vector<std::size_t> order;
  for (const auto& [r, _] : by_rule) order.push_back(r);
  std::sort(order.begin(), order.end());
  for (std::size_t r : order) {
    std::string positions;
    for (const std::string& p : by_rule[r]) {
      if (!positions.empty()) positions += ", ";
      positions += p;
    }
    out->Emit("divergence-risk", LintSeverity::kWarning, r,
              RuleName(rules, r) + ": existential cycle through " +
                  positions + " with no acyclicity certificate — the "
                  "chase may not terminate");
  }
}

// ---- unused-predicate ----------------------------------------------------

void CheckUnused(const Universe& universe, const PredFacts& pf,
                 Emitter* out) {
  for (PredicateId p = 0; p < universe.num_predicates(); ++p) {
    if (p == universe.top()) continue;
    if (pf.in_head[p] && !pf.in_body[p]) {
      out->Emit("unused-predicate", LintSeverity::kNote,
                LintDiagnostic::kNoRule,
                "derived predicate " + universe.PredicateName(p) +
                    " is never read by any rule body");
    }
  }
}

}  // namespace

const char* ToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

JsonValue LintDiagnostic::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Str(id));
  v.Set("severity", JsonValue::Str(ToString(severity)));
  if (rule != kNoRule) {
    v.Set("rule", JsonValue::Int(static_cast<std::int64_t>(rule)));
  }
  v.Set("message", JsonValue::Str(message));
  return v;
}

bool LintReport::Has(const std::string& id) const {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.id == id) return true;
  }
  return false;
}

int LintReport::ExitCode(bool werror) const {
  if (errors > 0) return 2;
  if (warnings > 0) return werror ? 2 : 1;
  return 0;
}

JsonValue LintReport::ToJson() const {
  JsonValue v = JsonValue::Object();
  JsonValue diags = JsonValue::Array();
  for (const LintDiagnostic& d : diagnostics) diags.Push(d.ToJson());
  v.Set("diagnostics", std::move(diags));
  v.Set("errors", JsonValue::Int(static_cast<std::int64_t>(errors)));
  v.Set("warnings", JsonValue::Int(static_cast<std::int64_t>(warnings)));
  v.Set("notes", JsonValue::Int(static_cast<std::int64_t>(notes)));
  return v;
}

LintReport LintProgram(const RuleSet& rules, Universe* universe,
                       const Instance* database,
                       const ProgramReport* analysis) {
  LintReport report;
  Emitter out{&report};
  const PredFacts pf = CollectPredFacts(rules, *universe, database);

  CheckNeverMatching(rules, *universe, database, pf, &out);
  CheckUnreachable(rules, *universe, database, pf, &out);
  const std::vector<std::size_t> dup_of = CheckDuplicates(rules, &out);
  CheckSubsumed(rules, universe, dup_of, &out);
  CheckCartesian(rules, &out);
  if (analysis != nullptr) CheckDivergence(rules, *analysis, &out);
  CheckUnused(*universe, pf, &out);
  return report;
}

}  // namespace bddfc
