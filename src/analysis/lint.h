// Program linting: structural defects of a rule set that the chase and
// rewriting engines silently tolerate but a user almost certainly wants
// flagged. Complements the decidable-class analysis of
// program_analysis.h — lint answers "is this program *sensible*", the
// class analysis answers "is it *tractable*".
//
// Diagnostic ids (stable; the CLI and CI key on them):
//
//   never-matching-body   error    a body atom can never match: wrong
//                                  arity for its predicate, a constant no
//                                  derivation can produce, or (when a
//                                  database is given) a predicate with no
//                                  facts and no deriving rule;
//   unreachable-rule      warning  no derivation path from the EDB
//                                  predicates reaches every body atom of
//                                  the rule (e.g. mutual recursion with
//                                  no base case);
//   duplicate-rule        warning  a rule equal to an earlier one up to
//                                  variable renaming;
//   subsumed-rule         warning  a Datalog rule whose work an earlier,
//                                  more general rule already does;
//   cartesian-body        warning  the body splits into >= 2 variable-
//                                  disjoint groups, so matching is a
//                                  cross product;
//   divergence-risk       warning  an existential cycle not covered by
//                                  any acyclicity certificate (requires a
//                                  ProgramReport);
//   unused-predicate      note     a derived predicate no body ever reads.
//
// Severity decides the exit code contract used by bddfc_lint and CI:
// errors => 2, warnings => 1 (or 2 under --Werror), notes are free.

#ifndef BDDFC_ANALYSIS_LINT_H_
#define BDDFC_ANALYSIS_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/json.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

struct ProgramReport;

enum class LintSeverity { kNote, kWarning, kError };

const char* ToString(LintSeverity severity);

struct LintDiagnostic {
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  std::string id;        // stable diagnostic id, e.g. "duplicate-rule"
  LintSeverity severity = LintSeverity::kWarning;
  std::size_t rule = kNoRule;  // offending rule index, if rule-scoped
  std::string message;

  JsonValue ToJson() const;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  /// True iff some diagnostic has id `id`.
  bool Has(const std::string& id) const;

  /// The bddfc_lint exit code: 2 on errors (or any warning under
  /// `werror`), 1 on warnings, 0 otherwise.
  int ExitCode(bool werror = false) const;

  JsonValue ToJson() const;
};

/// Lints `rules`. `universe` is mutated only to intern the frozen
/// constants the subsumption check needs (never predicates). `database`,
/// when given, seeds reachability with its predicates and enables the
/// facts-missing never-matching check. `analysis`, when given, enables
/// divergence-risk. Diagnostics are emitted in a deterministic order:
/// grouped by check, then by rule index.
LintReport LintProgram(const RuleSet& rules, Universe* universe,
                       const Instance* database = nullptr,
                       const ProgramReport* analysis = nullptr);

}  // namespace bddfc

#endif  // BDDFC_ANALYSIS_LINT_H_
