// The position-dependency graph of a rule set — one node per (predicate,
// argument position), regular and special edges as in the classic weak-
// acyclicity construction — built once and shared by every structural
// check that reads positions: weak acyclicity (reliance.cc), the
// finite-rank positions of weak stickiness, and the divergence-risk lint
// (program_analysis.cc / lint.cc).
//
// Edges, per rule ρ and frontier variable y of ρ:
//   * regular  — every body position of y → every head position of y;
//   * special  — every body position of y ⇒ every head position holding an
//     existential variable of ρ (the propagation that invents nulls).
//
// Every edge records the rule that induced it, so violation witnesses
// (ProgramReport, lint diagnostics) can point back at source rules.

#ifndef BDDFC_ANALYSIS_POSITIONS_H_
#define BDDFC_ANALYSIS_POSITIONS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// (predicate, argument position) packed into one 64-bit key.
inline std::uint64_t PosId(PredicateId pred, int pos) {
  return (static_cast<std::uint64_t>(pred) << 32) |
         static_cast<std::uint32_t>(pos);
}

struct PositionsGraph {
  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

  struct Node {
    PredicateId pred = 0;
    int pos = 0;
  };
  /// One dependency edge; `rule` is the index of the inducing rule.
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    std::size_t rule = 0;
  };

  std::vector<Node> nodes;
  std::vector<Edge> regular;
  std::vector<Edge> special;
  std::unordered_map<std::uint64_t, std::size_t> node_of;

  /// Node index of (pred, pos), or kNoNode when that position carries no
  /// edge (such positions trivially have rank 0).
  std::size_t NodeOf(PredicateId pred, int pos) const {
    const auto it = node_of.find(PosId(pred, pos));
    return it == node_of.end() ? kNoNode : it->second;
  }

  /// Combined adjacency (regular ∪ special) over node indices.
  std::vector<std::vector<std::size_t>> Adjacency() const;
};

/// Builds the graph. Positions never touched by an edge are not
/// materialized as nodes (NodeOf returns kNoNode for them).
PositionsGraph BuildPositionsGraph(const RuleSet& rules);

/// Per-node flag: true iff the position has *infinite rank* — it is
/// reachable (along regular/special edges, reflexively) from an SCC that
/// contains a special edge, so arbitrarily many null-inventing steps can
/// feed it. A rule set is weakly acyclic iff no position has infinite
/// rank; weak stickiness reads the finite-rank complement.
std::vector<bool> InfiniteRankPositions(const PositionsGraph& graph);

}  // namespace bddfc

#endif  // BDDFC_ANALYSIS_POSITIONS_H_
