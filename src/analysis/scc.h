// Strongly connected components over small dense digraphs, shared by every
// analysis that condenses a graph: rule stratification (reliance.cc), the
// position-dependency certificates (positions.cc), and the decidable-class
// checks (program_analysis.cc).

#ifndef BDDFC_ANALYSIS_SCC_H_
#define BDDFC_ANALYSIS_SCC_H_

#include <cstddef>
#include <vector>

namespace bddfc {

/// The SCC partition of a digraph given as adjacency lists. Components are
/// numbered in Tarjan emission order, which is a *reverse* topological
/// order of the condensation (an SCC is emitted only after every SCC it
/// reaches); callers flip the numbering to get sources-first ids.
/// Deterministic for a fixed adjacency.
struct SccResult {
  std::vector<std::size_t> component;  // node -> component id
  std::size_t num_components = 0;
};

/// Iterative Tarjan over `adj` (no recursion, safe for deep graphs).
SccResult TarjanScc(const std::vector<std::vector<std::size_t>>& adj);

}  // namespace bddfc

#endif  // BDDFC_ANALYSIS_SCC_H_
