// Rule reliance analysis (VLog-style): the static dependency structure of
// a rule set, and the structural termination certificates it yields.
//
// Two edge families between rules are computed, both as sound
// over-approximations via the piece-unification machinery of
// src/rewriting/piece_unifier.h:
//
//   * positive reliance  j → i : applying rule j can enable a *new*
//     trigger of rule i. Approximated by "body(i), read as a Boolean CQ,
//     has an admissible piece-unifier with rule j": if some application of
//     j produces atoms that complete a body image of i, the produced head
//     atoms unify with the corresponding body atoms of i, and the
//     fresh-null images of j's existentials satisfy exactly the
//     admissibility constraints (a null equals no constant and no two
//     distinct nulls are forced equal by a single head application).
//     A pair without a unifier therefore has no reliance; a pair with one
//     might (the approximation never drops a real edge).
//   * restraint  j ⊸ i : an application of j can satisfy the head of a
//     pending trigger of rule i (so the restricted chase may skip i's
//     trigger once j has fired). Approximated by "head(i) with answer
//     variables fr(i) piece-unifies with rule j": the frontier is pinned
//     by i's body match — declaring it as answer variables forbids
//     unifying it with j's existentials — while i's own existentials may
//     be covered by anything j produces.
//
// The SCC condensation of the positive-reliance graph stratifies the rule
// set: within a stratum rules are mutually recursive; across strata all
// enablement flows along the topological order, so a scheduler may
// saturate each stratum before its dependents run (src/chase/
// rule_scheduler.h consumes exactly this).
//
// Termination certificates (decidable sufficient conditions, checked on
// the position graphs rather than the reliance graph):
//
//   * weak acyclicity  — the classic position-dependency graph (regular
//     edge: frontier body position → same variable's head position;
//     special edge: frontier body position ⇒ every existential head
//     position of the same rule) has no cycle through a special edge.
//   * joint acyclicity — the existential-variable graph over the Ω(y)
//     position fixpoints (Krötzsch & Rudolph); strictly more general than
//     weak acyclicity.
//
// Both certify termination of the *semi-oblivious and restricted* chase
// on every instance. They say nothing about the oblivious chase:
// P(x,y) → ∃z P(x,z) is weakly acyclic yet obliviously divergent, so
// consumers must gate on the chase variant (see Reasoner::Prepare).

#ifndef BDDFC_ANALYSIS_RELIANCE_H_
#define BDDFC_ANALYSIS_RELIANCE_H_

#include <cstddef>
#include <vector>

#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// The reliance edges of a rule set. Adjacency lists are sorted and
/// indexed by "from" rule: positive[j] holds every i with j → i.
struct RelianceGraph {
  std::vector<std::vector<std::size_t>> positive;
  std::vector<std::vector<std::size_t>> restraint;

  std::size_t num_rules() const { return positive.size(); }
  bool HasPositive(std::size_t from, std::size_t to) const;
  bool HasRestraint(std::size_t from, std::size_t to) const;
  std::size_t num_positive_edges() const;
  std::size_t num_restraint_edges() const;
};

/// Computes both edge families. `universe` is needed to freshen rule
/// copies during unification (it gains fresh variable names; nothing else
/// is mutated).
RelianceGraph BuildRelianceGraph(const RuleSet& rules, Universe* universe);

/// The SCC condensation of the positive-reliance graph, in topological
/// order: every positive edge runs from a stratum to itself or to a later
/// stratum.
struct Stratification {
  /// strata[s] = rule indices of stratum s, ascending. Strata appear in a
  /// topological order of the condensation.
  std::vector<std::vector<std::size_t>> strata;
  /// stratum_of[rule] = index into `strata`.
  std::vector<std::size_t> stratum_of;
  /// predecessors[s] = strata with a positive edge into s (excluding s
  /// itself), ascending — the strata that must saturate before s runs.
  std::vector<std::vector<std::size_t>> predecessors;
  /// firing_rank[rule]: topological position of the rule's restraint-SCC.
  /// Firing lower ranks first lets the restricted chase skip triggers a
  /// restraining rule has already satisfied; ranks are a total preorder
  /// (rules in one restraint-SCC share a rank).
  std::vector<std::size_t> firing_rank;

  std::size_t num_strata() const { return strata.size(); }
};

/// Stratifies `graph` (Tarjan SCC + topological condensation).
Stratification Stratify(const RelianceGraph& graph);

/// What the structural analysis can promise about chase termination.
enum class TerminationCertificate {
  kNone,
  kWeaklyAcyclic,
  kJointlyAcyclic,
};

/// Human-readable certificate name ("none" / "weakly-acyclic" /
/// "jointly-acyclic").
const char* ToString(TerminationCertificate certificate);

/// Weak acyclicity of the position-dependency graph.
bool IsWeaklyAcyclic(const RuleSet& rules);

/// Joint acyclicity of the existential-variable graph (implied by weak
/// acyclicity).
bool IsJointlyAcyclic(const RuleSet& rules);

/// The strongest certificate that holds: kWeaklyAcyclic if weakly
/// acyclic, else kJointlyAcyclic if jointly acyclic, else kNone. Any
/// non-kNone certificate guarantees the semi-oblivious and restricted
/// chases terminate on every instance (NOT the oblivious chase).
TerminationCertificate CertifyTermination(const RuleSet& rules);

}  // namespace bddfc

#endif  // BDDFC_ANALYSIS_RELIANCE_H_
