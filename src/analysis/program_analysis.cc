#include "analysis/program_analysis.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/positions.h"
#include "analysis/scc.h"
#include "logic/atom.h"

namespace bddfc {

namespace {

std::string RuleName(const RuleSet& rules, std::size_t r) {
  if (!rules[r].label().empty()) return rules[r].label();
  return "rule #" + std::to_string(r);
}

std::string PositionName(const Universe& u, PredicateId pred, int pos) {
  return u.PredicateName(pred) + "[" + std::to_string(pos) + "]";
}

ClassVerdict Holds(std::string detail) {
  ClassVerdict v;
  v.holds = true;
  v.detail = std::move(detail);
  return v;
}

ClassVerdict Fails(std::size_t rule, std::string detail) {
  ClassVerdict v;
  v.holds = false;
  v.witness_rule = rule;
  v.detail = std::move(detail);
  return v;
}

ClassVerdict CheckLinear(const RuleSet& rules) {
  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].body().size() != 1) {
      return Fails(r, RuleName(rules, r) + " has " +
                          std::to_string(rules[r].body().size()) +
                          " body atoms (linear rules have exactly one)");
    }
  }
  return Holds("every body is a single atom");
}

// Guarded when `frontier_only` is false (guard must cover all body
// variables), frontier-guarded when true.
ClassVerdict CheckGuarded(const RuleSet& rules, const Universe& u,
                          bool frontier_only) {
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const std::vector<Term>& need =
        frontier_only ? rule.frontier() : rule.body_vars();
    bool found_guard = false;
    for (const Atom& a : rule.body()) {
      bool covers = true;
      for (Term v : need) {
        bool present = false;
        for (std::size_t i = 0; i < a.arity() && !present; ++i) {
          present = a.arg(i) == v;
        }
        if (!present) {
          covers = false;
          break;
        }
      }
      if (covers) {
        found_guard = true;
        break;
      }
    }
    if (!found_guard) {
      // Name one variable no single atom manages to cover alongside the
      // rest — the first of `need` missing from the widest candidate is
      // good enough for a human; the rule index is the machine witness.
      std::string vars;
      for (Term v : need) {
        if (!vars.empty()) vars += ", ";
        vars += u.TermName(v);
      }
      return Fails(r, RuleName(rules, r) + " has no body atom containing {" +
                          vars + "}");
    }
  }
  return Holds(frontier_only ? "every rule has a frontier guard"
                             : "every rule has a guard");
}

// The Calì–Gottlob–Pieris marking. Occurrence marks live per rule as
// (body atom index, position); the derived predicate-position set drives
// propagation across rules.
struct Marking {
  // marked[r] holds packed (atom_index << 16 | pos) keys.
  std::vector<std::unordered_set<std::uint32_t>> marked;
  std::unordered_set<std::uint64_t> marked_positions;  // PosId keys

  static std::uint32_t OccKey(std::size_t atom, std::size_t pos) {
    return static_cast<std::uint32_t>((atom << 16) | pos);
  }

  bool IsMarked(std::size_t rule, std::size_t atom, std::size_t pos) const {
    return marked[rule].count(OccKey(atom, pos)) != 0;
  }
};

Marking ComputeStickyMarking(const RuleSet& rules) {
  Marking m;
  m.marked.assign(rules.size(), {});

  // Marks every body occurrence of `v` in rule r; returns true on change.
  const auto mark_var = [&m, &rules](std::size_t r, Term v) {
    bool changed = false;
    const std::vector<Atom>& body = rules[r].body();
    for (std::size_t a = 0; a < body.size(); ++a) {
      for (std::size_t pos = 0; pos < body[a].arity(); ++pos) {
        if (body[a].arg(pos) != v) continue;
        if (m.marked[r].insert(Marking::OccKey(a, pos)).second) {
          m.marked_positions.insert(
              PosId(body[a].pred(), static_cast<int>(pos)));
          changed = true;
        }
      }
    }
    return changed;
  };

  // Initial step: body variables that never reach the head.
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (Term v : rules[r].body_vars()) {
      if (!rules[r].IsFrontierVar(v)) mark_var(r, v);
    }
  }
  // Propagation: a variable exported to a head position that is marked in
  // some body gets all its own body occurrences marked.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      for (const Atom& h : rules[r].head()) {
        for (std::size_t pos = 0; pos < h.arity(); ++pos) {
          const Term v = h.arg(pos);
          if (!v.IsVariable() || !rules[r].IsFrontierVar(v)) continue;
          if (m.marked_positions.count(
                  PosId(h.pred(), static_cast<int>(pos))) == 0) {
            continue;
          }
          changed |= mark_var(r, v);
        }
      }
    }
  }
  return m;
}

// Join variables of rule r: variables with >= 2 body occurrences, together
// with those occurrences.
struct JoinVar {
  Term var;
  std::vector<std::pair<std::size_t, std::size_t>> occurrences;  // atom, pos
};

std::vector<JoinVar> JoinVarsOf(const Rule& rule) {
  std::vector<JoinVar> out;
  for (Term v : rule.body_vars()) {
    JoinVar jv;
    jv.var = v;
    const std::vector<Atom>& body = rule.body();
    for (std::size_t a = 0; a < body.size(); ++a) {
      for (std::size_t pos = 0; pos < body[a].arity(); ++pos) {
        if (body[a].arg(pos) == v) jv.occurrences.push_back({a, pos});
      }
    }
    if (jv.occurrences.size() >= 2) out.push_back(std::move(jv));
  }
  return out;
}

}  // namespace

JsonValue ClassVerdict::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("holds", JsonValue::Bool(holds));
  if (!holds && witness_rule != kNoRule) {
    v.Set("witness_rule", JsonValue::Int(static_cast<std::int64_t>(witness_rule)));
  }
  v.Set("detail", JsonValue::Str(detail));
  return v;
}

JsonValue DivergenceWitness::ToJson() const {
  JsonValue v = JsonValue::Object();
  v.Set("rule", JsonValue::Int(static_cast<std::int64_t>(rule)));
  v.Set("position", JsonValue::Str(position));
  return v;
}

std::string ProgramReport::ClassList() const {
  std::string out;
  const auto add = [&out](bool holds, const char* name) {
    if (!holds) return;
    if (!out.empty()) out += ", ";
    out += name;
  };
  add(linear.holds, "linear");
  add(guarded.holds, "guarded");
  add(frontier_guarded.holds, "frontier-guarded");
  add(sticky.holds, "sticky");
  add(weakly_sticky.holds, "weakly-sticky");
  add(weakly_acyclic.holds, "weakly-acyclic");
  add(jointly_acyclic.holds, "jointly-acyclic");
  return out.empty() ? "none" : out;
}

JsonValue ProgramReport::ToJson() const {
  JsonValue v = JsonValue::Object();
  JsonValue classes = JsonValue::Object();
  classes.Set("linear", linear.ToJson());
  classes.Set("guarded", guarded.ToJson());
  classes.Set("frontier_guarded", frontier_guarded.ToJson());
  classes.Set("sticky", sticky.ToJson());
  classes.Set("weakly_sticky", weakly_sticky.ToJson());
  classes.Set("weakly_acyclic", weakly_acyclic.ToJson());
  classes.Set("jointly_acyclic", jointly_acyclic.ToJson());
  v.Set("classes", std::move(classes));
  v.Set("class_list", JsonValue::Str(ClassList()));
  v.Set("certificate", JsonValue::Str(ToString(certificate)));
  v.Set("fus", JsonValue::Bool(fus));
  v.Set("fus_reason", JsonValue::Str(fus_reason));
  v.Set("fes", JsonValue::Bool(fes));
  v.Set("fes_reason", JsonValue::Str(fes_reason));
  JsonValue div = JsonValue::Array();
  for (const DivergenceWitness& w : divergence) div.Push(w.ToJson());
  v.Set("divergence", std::move(div));
  return v;
}

ProgramReport AnalyzeProgram(const RuleSet& rules, const Universe& universe) {
  ProgramReport report;

  report.linear = CheckLinear(rules);
  report.guarded = CheckGuarded(rules, universe, /*frontier_only=*/false);
  report.frontier_guarded =
      CheckGuarded(rules, universe, /*frontier_only=*/true);

  // Sticky / weakly-sticky via the marking and the shared positions graph.
  const Marking marking = ComputeStickyMarking(rules);
  const PositionsGraph graph = BuildPositionsGraph(rules);
  const std::vector<bool> infinite_rank = InfiniteRankPositions(graph);
  const auto finite_rank = [&graph, &infinite_rank](PredicateId pred,
                                                    int pos) {
    const std::size_t node = graph.NodeOf(pred, pos);
    // Positions no edge touches are never fed by nulls: rank 0.
    return node == PositionsGraph::kNoNode || !infinite_rank[node];
  };

  report.sticky = Holds("no join variable is marked");
  report.weakly_sticky =
      Holds("every marked join variable touches a finite-rank position");
  for (std::size_t r = 0; r < rules.size() && (report.sticky.holds ||
                                               report.weakly_sticky.holds);
       ++r) {
    for (const JoinVar& jv : JoinVarsOf(rules[r])) {
      bool any_marked = false;
      bool any_finite = false;
      for (const auto& [atom, pos] : jv.occurrences) {
        if (marking.IsMarked(r, atom, pos)) any_marked = true;
        const Atom& a = rules[r].body()[atom];
        if (finite_rank(a.pred(), static_cast<int>(pos))) any_finite = true;
      }
      if (!any_marked) continue;
      if (report.sticky.holds) {
        report.sticky =
            Fails(r, "join variable " + universe.TermName(jv.var) + " in " +
                         RuleName(rules, r) + " carries a marked occurrence");
      }
      if (!any_finite && report.weakly_sticky.holds) {
        report.weakly_sticky =
            Fails(r, "marked join variable " + universe.TermName(jv.var) +
                         " in " + RuleName(rules, r) +
                         " occurs only at infinite-rank positions");
      }
      if (!report.sticky.holds && !report.weakly_sticky.holds) break;
    }
  }

  // Acyclicity certificates over the same graph; JA reuses the existing
  // existential-variable-graph check.
  report.weakly_acyclic = Holds("no special edge closes a cycle");
  {
    const SccResult scc = TarjanScc(graph.Adjacency());
    std::unordered_set<std::uint64_t> seen;  // (rule, target node) pairs
    for (const PositionsGraph::Edge& e : graph.special) {
      if (scc.component[e.from] != scc.component[e.to]) continue;
      const PositionsGraph::Node& node = graph.nodes[e.to];
      if (report.weakly_acyclic.holds) {
        report.weakly_acyclic =
            Fails(e.rule,
                  "special edge of " + RuleName(rules, e.rule) + " into " +
                      PositionName(universe, node.pred, node.pos) +
                      " stays inside one dependency cycle");
      }
      const std::uint64_t key =
          static_cast<std::uint64_t>(e.rule) * graph.nodes.size() + e.to;
      if (seen.insert(key).second) {
        report.divergence.push_back(
            {e.rule, PositionName(universe, node.pred, node.pos)});
      }
    }
  }
  if (IsJointlyAcyclic(rules)) {
    report.jointly_acyclic = Holds("existential-variable graph is acyclic");
  } else {
    report.jointly_acyclic =
        Fails(ClassVerdict::kNoRule,
              "existential-variable graph has a cycle");
  }

  report.certificate = report.weakly_acyclic.holds
                           ? TerminationCertificate::kWeaklyAcyclic
                       : report.jointly_acyclic.holds
                           ? TerminationCertificate::kJointlyAcyclic
                           : TerminationCertificate::kNone;

  if (report.linear.holds) {
    report.fus = true;
    report.fus_reason = "linear";
  } else if (report.sticky.holds) {
    report.fus = true;
    report.fus_reason = "sticky";
  } else {
    report.fus_reason = "not linear (" + report.linear.detail +
                        "); not sticky (" + report.sticky.detail + ")";
  }
  if (report.weakly_acyclic.holds) {
    report.fes = true;
    report.fes_reason = "weakly-acyclic";
  } else if (report.jointly_acyclic.holds) {
    report.fes = true;
    report.fes_reason = "jointly-acyclic";
  } else {
    report.fes_reason = "no acyclicity certificate";
  }
  return report;
}

}  // namespace bddfc
