#include "analysis/positions.h"

#include "analysis/scc.h"

namespace bddfc {

std::vector<std::vector<std::size_t>> PositionsGraph::Adjacency() const {
  std::vector<std::vector<std::size_t>> adj(nodes.size());
  for (const Edge& e : regular) adj[e.from].push_back(e.to);
  for (const Edge& e : special) adj[e.from].push_back(e.to);
  return adj;
}

PositionsGraph BuildPositionsGraph(const RuleSet& rules) {
  PositionsGraph graph;
  const auto node = [&graph](PredicateId pred, int pos) {
    const auto [it, inserted] =
        graph.node_of.emplace(PosId(pred, pos), graph.nodes.size());
    if (inserted) graph.nodes.push_back({pred, pos});
    return it->second;
  };
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    for (Term y : rule.frontier()) {
      std::vector<std::size_t> body_nodes;
      for (const Atom& a : rule.body()) {
        for (int pos = 0; pos < static_cast<int>(a.arity()); ++pos) {
          if (a.arg(pos) == y) body_nodes.push_back(node(a.pred(), pos));
        }
      }
      std::vector<std::size_t> head_nodes;
      std::vector<std::size_t> exist_nodes;
      for (const Atom& a : rule.head()) {
        for (int pos = 0; pos < static_cast<int>(a.arity()); ++pos) {
          const Term t = a.arg(pos);
          if (t == y) {
            head_nodes.push_back(node(a.pred(), pos));
          } else if (rule.IsExistentialVar(t)) {
            exist_nodes.push_back(node(a.pred(), pos));
          }
        }
      }
      for (std::size_t u : body_nodes) {
        for (std::size_t v : head_nodes) graph.regular.push_back({u, v, r});
        for (std::size_t v : exist_nodes) graph.special.push_back({u, v, r});
      }
    }
  }
  return graph;
}

std::vector<bool> InfiniteRankPositions(const PositionsGraph& graph) {
  std::vector<std::vector<std::size_t>> adj = graph.Adjacency();
  const SccResult scc = TarjanScc(adj);
  // Seed: every node of an SCC closed over a special edge.
  std::vector<bool> infinite(graph.nodes.size(), false);
  std::vector<bool> cyclic_scc(scc.num_components, false);
  for (const PositionsGraph::Edge& e : graph.special) {
    if (scc.component[e.from] == scc.component[e.to]) {
      cyclic_scc[scc.component[e.from]] = true;
    }
  }
  std::vector<std::size_t> work;
  for (std::size_t v = 0; v < graph.nodes.size(); ++v) {
    if (cyclic_scc[scc.component[v]]) {
      infinite[v] = true;
      work.push_back(v);
    }
  }
  // Forward closure: anything a special cycle can reach also grows without
  // bound.
  while (!work.empty()) {
    const std::size_t v = work.back();
    work.pop_back();
    for (std::size_t to : adj[v]) {
      if (!infinite[to]) {
        infinite[to] = true;
        work.push_back(to);
      }
    }
  }
  return infinite;
}

}  // namespace bddfc
