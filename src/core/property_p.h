// Empirical Property (p) checker — Theorem 1 observed on bounded chases.
//
// For a rule set R, an instance I and a binary predicate E, the checker
// runs the chase step by step and records, per step, the size of the
// largest E-tournament and whether Loop_E = ∃x E(x,x) is entailed. For a
// bdd rule set, Theorem 1 predicts: if the tournament sizes keep growing,
// the loop must appear. The report captures the observable signal.

#ifndef BDDFC_CORE_PROPERTY_P_H_
#define BDDFC_CORE_PROPERTY_P_H_

#include <vector>

#include "chase/chase.h"
#include "graph/tournament.h"
#include "logic/instance.h"
#include "logic/rule.h"

namespace bddfc {

/// Options for the Property (p) probe.
struct PropertyPOptions {
  ChaseOptions chase = {};
  TournamentSearchOptions tournament = {};
};

/// One chase step's measurements.
struct PropertyPStep {
  std::size_t step = 0;
  std::size_t atoms = 0;
  std::size_t e_edges = 0;
  int max_tournament = 0;
  bool loop = false;
};

/// Aggregate Property (p) report.
struct PropertyPReport {
  std::vector<PropertyPStep> curve;
  bool loop_entailed = false;
  /// First step at which Loop_E appears (-1 when never).
  int first_loop_step = -1;
  int max_tournament = 0;
  /// Step at which the maximum tournament size was first reached.
  int max_tournament_step = 0;
  /// The chase saturated (the curve is the whole story).
  bool saturated = false;
  /// Candidate-counterexample signal: a saturated, loop-free chase with a
  /// tournament of size ≥ 4. This does NOT by itself refute Theorem 1
  /// (which concerns unbounded tournaments); it flags rule sets where the
  /// Section 5 machinery (the per-rule-set bound N(4,…,4) of Question 46)
  /// should be brought to bear.
  bool counterexample_signal = false;
};

/// Runs the probe: chases `rules` on `db` and measures per step.
PropertyPReport CheckPropertyP(const Instance& db, const RuleSet& rules,
                               PredicateId e, PropertyPOptions options = {});

}  // namespace bddfc

#endif  // BDDFC_CORE_PROPERTY_P_H_
