// Question 46 (Section 6): for a UCQ-rewritable rule set whose chase is
// loop-free, how large can a tournament in the chase be? The proof of
// Theorem 1 yields the bound N(4,…,4) with |Q♦| arguments — if a
// tournament of that size existed, the Section 5.2 machinery would force
// the loop. This module extracts that bound from a concrete rule set.

#ifndef BDDFC_CORE_TOURNAMENT_BOUND_H_
#define BDDFC_CORE_TOURNAMENT_BOUND_H_

#include <cstdint>

#include "logic/rule.h"
#include "logic/universe.h"
#include "rewriting/rewriter.h"

namespace bddfc {

/// Outcome of the Question 46 bound extraction.
struct TournamentBoundResult {
  /// The classical rewriting of E(x,y) saturated (required for the bound
  /// to be meaningful).
  bool rewriting_saturated = false;
  /// |rew(E)| — disjuncts of the minimized classical rewriting.
  std::size_t rewriting_size = 0;
  /// |Q♦| — disjuncts of the injective rewriting (the number of Ramsey
  /// colors).
  std::size_t q_inj_size = 0;
  /// N(4,…,4) with q_inj_size arguments, computed by the recurrence;
  /// kAstronomical when it overflows 64 bits or the color count exceeds
  /// the tractable range.
  std::uint64_t bound = 0;

  static constexpr std::uint64_t kAstronomical = ~std::uint64_t{0};
};

/// Computes the Question 46 bound for `rules` and tournament predicate
/// `e`. The rule set should be bdd (otherwise the rewriting will not
/// saturate and the result says so).
TournamentBoundResult TournamentSizeBound(const RuleSet& rules,
                                          PredicateId e, Universe* universe,
                                          RewriterOptions options = {});

}  // namespace bddfc

#endif  // BDDFC_CORE_TOURNAMENT_BOUND_H_
