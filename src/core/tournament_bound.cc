#include "core/tournament_bound.h"

#include "graph/ramsey.h"

namespace bddfc {

TournamentBoundResult TournamentSizeBound(const RuleSet& rules,
                                          PredicateId e, Universe* universe,
                                          RewriterOptions options) {
  TournamentBoundResult result;
  UcqRewriter rewriter(rules, universe, options);
  Cq edge = EdgeQuery(universe, e);
  RewriteResult classical = rewriter.Rewrite(edge);
  result.rewriting_saturated = classical.saturated;
  result.rewriting_size = classical.ucq.size();
  if (!classical.saturated) return result;

  Ucq q_inj = rewriter.InjectiveRewriting(edge);
  result.q_inj_size = q_inj.size();

  // The recurrence's memo space over k colors of size ≤ 4 is
  // O(k^3) states; past a few dozen colors the value overflows anyway.
  constexpr std::size_t kMaxTractableColors = 64;
  if (result.q_inj_size == 0) {
    result.bound = 0;  // E never holds: no tournaments at all
    return result;
  }
  if (result.q_inj_size > kMaxTractableColors) {
    result.bound = TournamentBoundResult::kAstronomical;
    return result;
  }
  std::vector<int> sizes(result.q_inj_size, 4);
  std::uint64_t bound = Ramsey::UpperBound(sizes);
  result.bound = bound == Ramsey::kUnboundedlyLarge
                     ? TournamentBoundResult::kAstronomical
                     : bound;
  return result;
}

}  // namespace bddfc
