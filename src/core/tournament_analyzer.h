// The Theorem 1 pipeline, end to end.
//
// Input: a bdd rule set R over a binary signature (typically with the
// instance already encoded via surgery::EncodeInstance, Section 4.1) and
// the tournament predicate E. The analyzer then executes the paper's
// proof as a computation:
//
//   1. Streamline (Section 4.3):       R ↦ ▽(R)         (fwd-∃, pred-unique)
//   2. Body-rewrite (Section 4.4):     ▽(R) ↦ rew(▽(R)) (quick ⇒ regal)
//   3. Regality audit (Definition 27)
//   4. Stratified chase (Lemma 33):    Ch(R∃), then Datalog saturation
//   5. Tournament search (Definition 9) in the E-graph of the saturation
//   6. Injective rewriting Q♦ of E(x,y) (Proposition 6)
//   7. Valley witnesses per edge (Definition 36 / Lemma 40), with the
//      peak-removal descent as fallback evidence
//   8. Ramsey extraction (Theorem 7): a subtournament monochromatic in one
//      valley query
//   9. Proposition 43: derive and verify the loop element
//
// Every stage reports success/detail so partial runs (bounded chases,
// truncated rewritings) degrade into an audit trail instead of a crash.

#ifndef BDDFC_CORE_TOURNAMENT_ANALYZER_H_
#define BDDFC_CORE_TOURNAMENT_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "graph/tournament.h"
#include "logic/cq.h"
#include "logic/rule.h"
#include "rewriting/rewriter.h"
#include "surgery/properties.h"
#include "valley/valley_tournament.h"

namespace bddfc {

/// Pipeline knobs.
struct AnalyzerOptions {
  RewriterOptions rewriter;
  ChaseOptions chase;  // for Ch(R∃); Datalog saturation reuses max_atoms
  std::size_t datalog_max_steps = 32;
  /// Size of the tournament to hunt for in stage 5 (the paper's machinery
  /// needs ≥ 4 in the monochromatic stage; hunting bigger tournaments
  /// feeds Ramsey more room).
  int tournament_size = 4;
  /// Monochromatic subtournament size for stage 8.
  int mono_size = 4;
  /// Cap on the number of saturation edges whose witness sets are
  /// computed in stage 7.
  std::size_t max_witnessed_edges = 400;
  TournamentSearchOptions tournament_search;
};

/// One pipeline stage's outcome.
struct AnalyzerStage {
  std::string name;
  bool ok = false;
  std::string detail;
};

/// Aggregate result.
struct AnalyzerResult {
  std::vector<AnalyzerStage> stages;
  surgery::RegalityReport regality;
  /// The regal rule set produced by stages 1–2.
  RuleSet regal_rules;
  /// Terms of the tournament found in the Datalog saturation (stage 5).
  std::vector<Term> tournament;
  /// Loop present in the saturation (direct observation).
  bool loop_in_chase = false;
  /// |Q♦| (number of colors available to Ramsey).
  std::size_t injective_rewriting_size = 0;
  /// The single valley query coloring the monochromatic subtournament.
  std::optional<Cq> mono_valley;
  std::vector<Term> mono_tournament;
  /// Stage 9 outcome.
  ValleyTournamentResult prop43;
  /// The pipeline derived (and verified) a loop element.
  bool pipeline_loop_derived = false;

  bool AllOk() const;
  std::string Summary(const Universe& universe) const;
};

/// Executes the pipeline. The rule set must be over a binary signature
/// (reify first if not — surgery::Reifier).
class TournamentAnalyzer {
 public:
  TournamentAnalyzer(RuleSet rules, PredicateId e, Universe* universe,
                     AnalyzerOptions options = {});

  AnalyzerResult Run();

 private:
  RuleSet rules_;
  PredicateId e_;
  Universe* universe_;
  AnalyzerOptions options_;
};

}  // namespace bddfc

#endif  // BDDFC_CORE_TOURNAMENT_ANALYZER_H_
