#include "core/tournament_analyzer.h"

#include <unordered_map>

#include "base/check.h"
#include "graph/digraph.h"
#include "graph/ramsey.h"
#include "homomorphism/homomorphism.h"
#include "surgery/body_rewrite.h"
#include "surgery/streamline.h"
#include "valley/statistics.h"
#include "valley/witnesses.h"

namespace bddfc {

bool AnalyzerResult::AllOk() const {
  for (const AnalyzerStage& s : stages) {
    if (!s.ok) return false;
  }
  return true;
}

std::string AnalyzerResult::Summary(const Universe& universe) const {
  std::string out;
  for (const AnalyzerStage& s : stages) {
    out += s.ok ? "[ok]   " : "[FAIL] ";
    out += s.name;
    if (!s.detail.empty()) {
      out += " — ";
      out += s.detail;
    }
    out += '\n';
  }
  out += "loop in chase: ";
  out += loop_in_chase ? "yes" : "no";
  out += "; pipeline loop derived: ";
  out += pipeline_loop_derived ? "yes" : "no";
  if (pipeline_loop_derived && prop43.loop_term.IsValid()) {
    out += " (at ";
    out += universe.TermName(prop43.loop_term);
    out += ")";
  }
  out += '\n';
  return out;
}

TournamentAnalyzer::TournamentAnalyzer(RuleSet rules, PredicateId e,
                                       Universe* universe,
                                       AnalyzerOptions options)
    : rules_(std::move(rules)),
      e_(e),
      universe_(universe),
      options_(options) {
  BDDFC_CHECK(universe != nullptr);
}

AnalyzerResult TournamentAnalyzer::Run() {
  AnalyzerResult result;
  const ExecutionConfig resolved_exec = options_.chase.ResolvedExec();
  auto stage = [&result](std::string name, bool ok, std::string detail) {
    result.stages.push_back({std::move(name), ok, std::move(detail)});
    return ok;
  };

  // --- Stage 1: streamline. -------------------------------------------------
  RuleSet streamlined = surgery::Streamline(rules_, universe_);
  stage("streamline (Section 4.3)", true,
        std::to_string(rules_.size()) + " rules -> " +
            std::to_string(streamlined.size()));

  // --- Stage 2: body rewriting. ---------------------------------------------
  surgery::BodyRewriteResult rew =
      surgery::BodyRewrite(streamlined, universe_, options_.rewriter);
  result.regal_rules = rew.rules;
  if (!stage("body rewriting (Section 4.4)", rew.complete,
             "added " + std::to_string(rew.added) + " rules" +
                 (rew.complete ? "" : " (INCOMPLETE: rewriter bounds)"))) {
    return result;
  }

  // --- Stage 3: regality audit. ----------------------------------------------
  std::vector<Instance> probes;
  probes.push_back(Instance(universe_));  // {⊤}
  result.regality = surgery::CheckRegal(
      result.regal_rules, universe_, probes, options_.rewriter,
      {.exec = {
          .max_steps = std::min<std::size_t>(resolved_exec.max_steps, 3),
          .max_atoms = resolved_exec.max_atoms}});
  stage("regality audit (Definition 27)", result.regality.IsRegal(),
        result.regality.IsRegal() ? "regal" : result.regality.ToString());

  // --- Stage 4: stratified chase (Lemma 33). ---------------------------------
  auto [datalog, existential] = SplitDatalog(result.regal_rules);
  Instance top(universe_);
  ObliviousChase chase_exists(top, existential, options_.chase);
  chase_exists.Run();
  ChaseOptions datalog_options;
  datalog_options.exec.max_steps = options_.datalog_max_steps;
  datalog_options.exec.max_atoms = resolved_exec.max_atoms;
  datalog_options.variant = ChaseVariant::kRestricted;
  ObliviousChase saturation(chase_exists.Result(), datalog, datalog_options);
  saturation.Run();
  stage("stratified chase (Lemma 33)", true,
        "Ch(R∃): " + std::to_string(chase_exists.Result().size()) +
            " atoms in " + std::to_string(chase_exists.StepsExecuted()) +
            " steps; saturation: " +
            std::to_string(saturation.Result().size()) + " atoms" +
            (chase_exists.IsDag() ? " (DAG ok)" : " (NOT a DAG!)"));

  const Instance& chased = saturation.Result();

  // --- Stage 5: tournament search. --------------------------------------------
  InstanceGraph eg = GraphOfPredicate(chased, e_);
  result.loop_in_chase = eg.graph.HasLoop();
  TournamentSearch tsearch(&eg.graph, options_.tournament_search);
  auto tournament_vertices = tsearch.FindOfSize(options_.tournament_size);
  if (tournament_vertices.has_value()) {
    for (int v : *tournament_vertices) {
      result.tournament.push_back(eg.vertex_terms[v]);
    }
  }
  if (!stage("tournament search (Definition 9)",
             tournament_vertices.has_value(),
             tournament_vertices.has_value()
                 ? "found size " + std::to_string(result.tournament.size())
                 : "no tournament of size " +
                       std::to_string(options_.tournament_size) +
                       " within the chase prefix")) {
    return result;
  }

  // --- Stage 6: injective rewriting of E(x,y). --------------------------------
  UcqRewriter rewriter(result.regal_rules, universe_, options_.rewriter);
  Cq edge_query = EdgeQuery(universe_, e_);
  RewriteResult classical = rewriter.Rewrite(edge_query);
  Ucq q_inj = rewriter.InjectiveRewriting(edge_query);
  result.injective_rewriting_size = q_inj.size();
  UcqValleyStats q_inj_stats = AnalyzeUcqValleys(q_inj);
  if (!stage("injective rewriting Q♦ (Proposition 6)", classical.saturated,
             "|rew(E)| = " + std::to_string(classical.ucq.size()) +
                 ", |Q♦| = " + std::to_string(q_inj.size()) + " (" +
                 std::to_string(q_inj_stats.valleys) + " valleys: " +
                 std::to_string(q_inj_stats.disconnected) + " disc/" +
                 std::to_string(q_inj_stats.single_maximal) + " single/" +
                 std::to_string(q_inj_stats.two_maximal) + " two-max)" +
                 (classical.saturated ? "" : " (rewriting did not saturate)"))) {
    return result;
  }

  // --- Stage 7: valley witnesses for every saturation edge. -------------------
  // For each E-edge, the set of valley disjuncts of Q♦ that witness it in
  // Ch(R∃) (Definition 36 / Lemma 40). These sets are the Ramsey colors.
  auto has_edge = [&](Term s, Term t) {
    return chased.Contains(Atom(e_, {s, t}));
  };
  struct EdgeWitnesses {
    Term s;
    Term t;
    std::vector<std::size_t> valleys;
  };
  std::vector<EdgeWitnesses> edges;
  bool all_edges_witnessed = true;
  std::string witness_detail;
  std::unordered_map<std::size_t, std::size_t> edge_count_per_valley;
  for (std::uint32_t idx : chased.AtomsWith(e_)) {
    const Atom& a = chased.atoms()[idx];
    if (a.arg(0) == a.arg(1)) continue;  // loops need no witness hunt
    if (edges.size() >= options_.max_witnessed_edges) break;
    EdgeWitnesses ew{a.arg(0), a.arg(1),
                     ValleyWitnesses(chase_exists.Result(), q_inj, a.arg(0),
                                     a.arg(1))};
    if (ew.valleys.empty()) {
      all_edges_witnessed = false;
      witness_detail = "edge (" + universe_->TermName(a.arg(0)) + "," +
                       universe_->TermName(a.arg(1)) +
                       ") has no valley witness (Lemma 40 would give one on "
                       "a complete rewriting)";
      break;
    }
    for (std::size_t v : ew.valleys) ++edge_count_per_valley[v];
    edges.push_back(std::move(ew));
  }
  if (!stage("valley witnesses (Definition 36 / Lemma 40)",
             all_edges_witnessed && !edges.empty(),
             all_edges_witnessed
                 ? std::to_string(edges.size()) + " edges, " +
                       std::to_string(edge_count_per_valley.size()) +
                       " valley queries in play"
                 : witness_detail)) {
    return result;
  }

  // --- Stage 8: single-valley tournament (Proposition 41 / Theorem 7). --------
  // Ramsey guarantees that a large enough tournament contains a
  // subtournament all of whose edges share one valley color; the bound
  // R(4,…,4) is astronomically beyond any bounded chase, so the executable
  // realization searches the colors directly: for each valley query q
  // (most-covering first), build the graph of edges q witnesses and look
  // for a tournament of size mono_size inside it.
  std::vector<std::pair<std::size_t, std::size_t>> by_coverage(
      edge_count_per_valley.begin(), edge_count_per_valley.end());
  std::sort(by_coverage.begin(), by_coverage.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<int> ramsey_sizes(
      std::max<std::size_t>(edge_count_per_valley.size(), 1),
      options_.mono_size);
  for (const auto& [valley_index, coverage] : by_coverage) {
    if (coverage + 1 < static_cast<std::size_t>(options_.mono_size)) break;
    // Graph of edges witnessed by this single valley query.
    Digraph hq;
    std::unordered_map<Term, int> ids;
    std::vector<Term> terms;
    auto vertex = [&](Term t) {
      auto it = ids.find(t);
      if (it != ids.end()) return it->second;
      int v = hq.AddVertex();
      ids.emplace(t, v);
      terms.push_back(t);
      return v;
    };
    for (const EdgeWitnesses& ew : edges) {
      for (std::size_t v : ew.valleys) {
        if (v == valley_index) {
          hq.AddEdge(vertex(ew.s), vertex(ew.t));
          break;
        }
      }
    }
    TournamentSearch hq_search(&hq, options_.tournament_search);
    auto mono = hq_search.FindOfSize(options_.mono_size);
    if (mono.has_value()) {
      for (int v : *mono) result.mono_tournament.push_back(terms[v]);
      result.mono_valley = q_inj.disjuncts()[valley_index];
      break;
    }
  }
  if (!stage("single-valley tournament (Prop. 41 / Theorem 7)",
             result.mono_valley.has_value(),
             result.mono_valley.has_value()
                 ? "size-" + std::to_string(result.mono_tournament.size()) +
                       " tournament defined by one valley query (generic "
                       "Ramsey bound: " +
                       [&] {
                         std::uint64_t bound =
                             Ramsey::UpperBound(ramsey_sizes);
                         return bound == Ramsey::kUnboundedlyLarge
                                    ? std::string("astronomical")
                                    : "R >= " + std::to_string(bound);
                       }() +
                       ")"
                 : "no single valley query defines a tournament of size " +
                       std::to_string(options_.mono_size) +
                       " in this chase prefix")) {
    return result;
  }

  // --- Stage 9: Proposition 43. ---------------------------------------------
  result.prop43 = AnalyzeValleyTournament(
      *result.mono_valley, chase_exists.Result(), result.mono_tournament,
      has_edge);
  result.pipeline_loop_derived = result.prop43.loop_derived;
  stage("Proposition 43 (loop derivation)",
        result.prop43.loop_derived || result.prop43.impossible,
        std::string(ValleyCaseName(result.prop43.valley_case)) + ": " +
            result.prop43.detail);
  return result;
}

}  // namespace bddfc
