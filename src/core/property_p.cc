#include "core/property_p.h"

#include "graph/digraph.h"

namespace bddfc {

PropertyPReport CheckPropertyP(const Instance& db, const RuleSet& rules,
                               PredicateId e, PropertyPOptions options) {
  PropertyPReport report;
  ObliviousChase chase(db, rules, options.chase);

  for (std::size_t step = 0;; ++step) {
    InstanceGraph eg = GraphOfPredicate(chase.Result(), e);
    PropertyPStep point;
    point.step = step;
    point.atoms = chase.Result().size();
    point.e_edges = eg.graph.num_edges();
    point.loop = eg.graph.HasLoop();
    TournamentSearch search(&eg.graph, options.tournament);
    point.max_tournament = search.MaximumSize();
    report.curve.push_back(point);

    if (point.loop && report.first_loop_step < 0) {
      report.first_loop_step = static_cast<int>(step);
      report.loop_entailed = true;
    }
    if (point.max_tournament > report.max_tournament) {
      report.max_tournament = point.max_tournament;
      report.max_tournament_step = static_cast<int>(step);
    }

    if (chase.Saturated() || chase.HitBounds() ||
        step >= options.chase.ResolvedExec().max_steps) {
      report.saturated = chase.Saturated();
      break;
    }
    chase.RunSteps(step + 1);
  }

  // Flag the signal worth escalating to the Section 5 machinery: a
  // complete, loop-free chase carrying a 4-tournament.
  if (report.saturated && !report.loop_entailed &&
      report.max_tournament >= 4) {
    report.counterexample_signal = true;
  }
  return report;
}

}  // namespace bddfc
