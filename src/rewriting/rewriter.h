// UCQ rewriting, bdd detection, and injective rewritings (Sections 2.3 and
// Proposition 6).
//
// The rewriter iterates the piece-rewriting operator breadth-first, coring
// every query and pruning by homomorphic subsumption, until no new
// (non-subsumed) query appears. Saturation at depth d certifies
// UCQ-rewritability of the input query against the rule set, and d plays
// the role of the bdd-constant (Definition 3): every entailment of the
// query is witnessed within d rule applications. Non-saturation within the
// configured bound is reported as "unknown / not bdd up to this depth" —
// exactly the observable behaviour of non-bdd sets like Example 1's
// transitivity rule, whose rewriting set grows without bound.

#ifndef BDDFC_REWRITING_REWRITER_H_
#define BDDFC_REWRITING_REWRITER_H_

#include <cstddef>
#include <vector>

#include "logic/cq.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// Bounds for the rewriting fixpoint.
struct RewriterOptions {
  /// Maximum rewriting depth (generations of the operator).
  std::size_t max_depth = 12;
  /// Abort when the minimized UCQ exceeds this many disjuncts.
  std::size_t max_disjuncts = 4096;
  /// Skip queries growing beyond this many atoms (guards blowup).
  std::size_t max_atoms_per_query = 24;
  /// Core every generated query (ablation toggle; keep on — cores keep
  /// the disjunct set canonical and small).
  bool core_queries = true;
  /// Prune by homomorphic subsumption (ablation toggle; with this off,
  /// only syntactic duplicates are dropped and the set usually explodes —
  /// the ablation bench quantifies by how much).
  bool minimize = true;
};

/// Outcome of a rewriting run.
struct RewriteResult {
  /// The minimized UCQ rewriting computed so far (complete iff saturated).
  Ucq ucq;
  /// True when the operator reached a fixpoint within the bounds.
  bool saturated = false;
  /// Depth at which the fixpoint was reached (valid when saturated).
  std::size_t depth = 0;
  /// True when a bound (depth/disjuncts/atom size) stopped the run.
  bool hit_bounds = false;
  /// Number of candidate rewritings generated (before pruning).
  std::size_t candidates_generated = 0;
};

/// Breadth-first UCQ rewriter over a fixed rule set.
class UcqRewriter {
 public:
  UcqRewriter(RuleSet rules, Universe* universe, RewriterOptions options = {});

  /// rew(q, R): the UCQ rewriting of a single CQ.
  RewriteResult Rewrite(const Cq& q) const;

  /// Rewriting of a UCQ (Lemma 5-style composition: union of the disjunct
  /// rewritings, minimized together).
  RewriteResult Rewrite(const Ucq& q) const;

  /// rewinj(q, R): the injective rewriting of Definition 2 (rephrased),
  /// obtained by expanding the classical rewriting into all specializations
  /// (Proposition 6). Complete iff the returned flag `saturated` of the
  /// classical phase was true — callers needing the distinction should call
  /// Rewrite first.
  Ucq InjectiveRewriting(const Cq& q) const;

  const RuleSet& rules() const { return rules_; }
  const RewriterOptions& options() const { return options_; }

 private:
  RuleSet rules_;
  Universe* universe_;
  RewriterOptions options_;
};

/// All specializations of q (Section 2.1): every idempotent merge of q's
/// variables, with answer-variable classes represented by answer variables.
/// The returned UCQ realizes Proposition 6: I |= q(ā) iff some disjunct
/// maps injectively.
Ucq AllSpecializations(const Cq& q);

/// Adds `q` to `ucq` unless subsumed by an existing disjunct; removes
/// existing disjuncts subsumed by `q`. Returns true if `q` was added.
bool AddMinimized(Ucq* ucq, const Cq& q);

/// Lemma 5 composition: rewrites `q` against `r_second`, then rewrites the
/// result against `r_first`. Yields a rewriting of q against
/// r_first ∪ r_second whenever Ch(Ch(I, r_first), r_second) is
/// homomorphically equivalent to Ch(I, r_first ∪ r_second) — e.g. for
/// stratified sets where r_second's output cannot re-trigger r_first, and
/// for the ⊤→J instance-encoding rule (Observation 13).
RewriteResult ComposeRewrite(const Cq& q, const RuleSet& r_first,
                             const RuleSet& r_second, Universe* universe,
                             RewriterOptions options = {});

/// Semantic equivalence of two UCQ rewritings: mutual coverage by
/// homomorphic subsumption (every disjunct of each is subsumed by some
/// disjunct of the other).
bool UcqEquivalent(const Ucq& a, const Ucq& b);

}  // namespace bddfc

#endif  // BDDFC_REWRITING_REWRITER_H_
