// Piece-unifiers: the single-step backward-chaining operator behind UCQ
// rewritability (Section 2.3, following König et al. [22]).
//
// A piece-unifier of a CQ q with a rule ρ = B → ∃z̄ H picks a non-empty
// subset q' of q's atoms, matches every atom of q' with some atom of H
// (same predicate), and merges terms positionwise. The merge is admissible
// when every equivalence class satisfies:
//   * at most one constant, and
//   * if the class contains an existential variable of ρ, it contains no
//     constant, no frontier variable of ρ, no second distinct existential,
//     no answer variable of q, and no query variable that also occurs in
//     q ∖ q' (a "separating" variable — it must survive the cut).
// The rewriting β(q, ρ, μ) = u(q ∖ q') ∪ u(B) then replaces the unified
// piece by the rule body, with u collapsing each class to a representative.
//
// Enumerating all subsets q' (not only single atoms) yields the *aggregated*
// unifiers needed for completeness of the rewriting operator.

#ifndef BDDFC_REWRITING_PIECE_UNIFIER_H_
#define BDDFC_REWRITING_PIECE_UNIFIER_H_

#include <vector>

#include "logic/cq.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {

/// One admissible piece-unifier application, already turned into the
/// rewritten query.
struct PieceRewriting {
  /// β(q, ρ, μ): the rewritten CQ (atoms deduplicated, answers mapped).
  Cq result;
  /// Indices (into q.atoms()) of the unified piece q'.
  std::vector<std::size_t> piece;
  /// Index of the rule used.
  std::size_t rule_index = 0;
};

/// Enumerates every admissible piece-unifier of `q` with any rule of
/// `rules` (each rule copy freshened so rule variables never collide with
/// query variables) and returns the rewritten queries.
///
/// Unifiers whose representative choice would force an answer variable onto
/// a constant are skipped (cannot be expressed as a Cq; does not arise for
/// constant-free rule sets like all of the paper's constructions).
std::vector<PieceRewriting> EnumeratePieceRewritings(const Cq& q,
                                                     const RuleSet& rules,
                                                     Universe* universe);

}  // namespace bddfc

#endif  // BDDFC_REWRITING_PIECE_UNIFIER_H_
