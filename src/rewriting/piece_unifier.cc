#include "rewriting/piece_unifier.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "logic/substitution.h"

namespace bddfc {

namespace {

// Union-find over terms, tracking per-class validity data lazily.
class TermUnionFind {
 public:
  int IdOf(Term t) {
    auto it = ids_.find(t);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(parent_.size());
    ids_.emplace(t, id);
    parent_.push_back(id);
    terms_.push_back(t);
    return id;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(Term a, Term b) {
    int ra = Find(IdOf(a));
    int rb = Find(IdOf(b));
    if (ra != rb) parent_[ra] = rb;
  }

  /// Groups all registered terms by representative.
  std::vector<std::vector<Term>> Classes() {
    std::unordered_map<int, std::vector<Term>> by_root;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
      by_root[Find(static_cast<int>(i))].push_back(terms_[i]);
    }
    std::vector<std::vector<Term>> out;
    out.reserve(by_root.size());
    for (auto& [root, members] : by_root) out.push_back(std::move(members));
    return out;
  }

 private:
  std::unordered_map<Term, int> ids_;
  std::vector<int> parent_;
  std::vector<Term> terms_;
};

// Context for one (query, freshened rule) pair.
struct UnifierContext {
  const Cq* q;
  const Rule* rule;  // freshened copy
  std::size_t rule_index;
  Universe* universe;
  std::vector<PieceRewriting>* out;

  // Variables of q occurring in atoms outside the current piece are
  // recomputed per piece; answer variables are always separating.
};

// Validates the merge and builds the rewritten query. `piece` holds query
// atom indices, `partners[i]` the head atom matched with piece[i].
void EmitIfAdmissible(UnifierContext* ctx,
                      const std::vector<std::size_t>& piece,
                      const std::vector<std::size_t>& partners) {
  const Cq& q = *ctx->q;
  const Rule& rule = *ctx->rule;

  TermUnionFind uf;
  // Register rule-body terms so representatives can be computed uniformly.
  for (const Atom& a : rule.body()) {
    for (Term t : a.args()) uf.IdOf(t);
  }
  for (std::size_t i = 0; i < piece.size(); ++i) {
    const Atom& qa = q.atoms()[piece[i]];
    const Atom& ha = rule.head()[partners[i]];
    BDDFC_CHECK_EQ(qa.pred(), ha.pred());
    for (std::size_t p = 0; p < qa.arity(); ++p) {
      uf.Union(qa.arg(p), ha.arg(p));
    }
  }

  // Separating variables: answer variables of q, and variables occurring in
  // q ∖ q'.
  std::unordered_set<std::size_t> piece_set(piece.begin(), piece.end());
  std::unordered_set<Term> separating;
  for (Term t : q.answers()) separating.insert(t);
  for (std::size_t i = 0; i < q.atoms().size(); ++i) {
    if (piece_set.find(i) != piece_set.end()) continue;
    for (Term t : q.atoms()[i].args()) {
      if (!t.IsRigid()) separating.insert(t);
    }
  }

  // Query variables (to distinguish from rule variables in shared classes).
  std::unordered_set<Term> query_vars(q.vars().begin(), q.vars().end());

  // Validate classes and pick representatives.
  Substitution u;
  for (const std::vector<Term>& cls : uf.Classes()) {
    Term constant;
    Term existential;
    Term frontier_var;
    Term separating_var;
    Term query_var;
    Term any_var;
    bool two_existentials = false;
    for (Term t : cls) {
      if (t.IsRigid()) {
        if (constant.IsValid() && constant != t) return;  // two constants
        constant = t;
      } else if (rule.IsExistentialVar(t)) {
        if (existential.IsValid() && existential != t) two_existentials = true;
        existential = t;
      } else if (rule.IsFrontierVar(t)) {
        frontier_var = t;
      } else if (query_vars.find(t) != query_vars.end()) {
        query_var = t;
        if (separating.find(t) != separating.end()) separating_var = t;
      } else {
        any_var = t;  // non-frontier rule body variable (shouldn't unify,
                      // but kept for representative completeness)
      }
    }
    if (existential.IsValid()) {
      // Admissibility of existential classes.
      if (constant.IsValid() || frontier_var.IsValid() || two_existentials ||
          separating_var.IsValid()) {
        return;
      }
      // Existential classes vanish with the piece: no binding needed for
      // the query vars they absorb (those vars occur only inside q').
      continue;
    }
    // Representative priority: constant > separating/query var > frontier
    // var > any.
    Term rep;
    if (constant.IsValid()) {
      rep = constant;
    } else if (separating_var.IsValid()) {
      rep = separating_var;
    } else if (query_var.IsValid()) {
      rep = query_var;
    } else if (frontier_var.IsValid()) {
      rep = frontier_var;
    } else if (any_var.IsValid()) {
      rep = any_var;
    } else {
      continue;
    }
    for (Term t : cls) {
      if (t != rep && !t.IsRigid()) u.Bind(t, rep);
    }
  }

  // Answer variables must stay variables.
  for (Term a : q.answers()) {
    if (u.Apply(a).IsRigid()) return;
  }

  // Build β(q, ρ, μ) = u(q ∖ q') ∪ u(B).
  std::vector<Atom> atoms;
  std::unordered_set<Atom> seen;
  for (std::size_t i = 0; i < q.atoms().size(); ++i) {
    if (piece_set.find(i) != piece_set.end()) continue;
    Atom mapped = u.Apply(q.atoms()[i]);
    if (seen.insert(mapped).second) atoms.push_back(std::move(mapped));
  }
  for (const Atom& a : rule.body()) {
    Atom mapped = u.Apply(a);
    if (seen.insert(mapped).second) atoms.push_back(std::move(mapped));
  }
  BDDFC_CHECK(!atoms.empty());

  PieceRewriting rewriting;
  rewriting.result = Cq(std::move(atoms), u.ApplyTuple(q.answers()));
  rewriting.piece = piece;
  rewriting.rule_index = ctx->rule_index;
  ctx->out->push_back(std::move(rewriting));
}

// Recursively extends the piece: each query atom is either skipped or
// matched with a same-predicate head atom. To enumerate every non-empty
// subset exactly once, atoms are considered in index order.
void ExtendPiece(UnifierContext* ctx, std::size_t next_atom,
                 std::vector<std::size_t>* piece,
                 std::vector<std::size_t>* partners) {
  if (next_atom == ctx->q->atoms().size()) {
    if (!piece->empty()) EmitIfAdmissible(ctx, *piece, *partners);
    return;
  }
  // Option 1: atom not in the piece.
  ExtendPiece(ctx, next_atom + 1, piece, partners);
  // Option 2: match it with each compatible head atom.
  const Atom& qa = ctx->q->atoms()[next_atom];
  for (std::size_t h = 0; h < ctx->rule->head().size(); ++h) {
    if (ctx->rule->head()[h].pred() != qa.pred()) continue;
    piece->push_back(next_atom);
    partners->push_back(h);
    ExtendPiece(ctx, next_atom + 1, piece, partners);
    piece->pop_back();
    partners->pop_back();
  }
}

// Returns a copy of `rule` with all variables replaced by fresh ones.
Rule FreshenRule(const Rule& rule, Universe* universe) {
  Substitution rename;
  for (Term v : rule.body_vars()) rename.Bind(v, universe->FreshVariable("r"));
  for (Term v : rule.head_vars()) {
    if (!rename.IsBound(v)) rename.Bind(v, universe->FreshVariable("r"));
  }
  return Rule(rename.Apply(rule.body()), rename.Apply(rule.head()),
              rule.label());
}

}  // namespace

std::vector<PieceRewriting> EnumeratePieceRewritings(const Cq& q,
                                                     const RuleSet& rules,
                                                     Universe* universe) {
  std::vector<PieceRewriting> out;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    Rule fresh = FreshenRule(rules[r], universe);
    UnifierContext ctx{&q, &fresh, r, universe, &out};
    std::vector<std::size_t> piece;
    std::vector<std::size_t> partners;
    ExtendPiece(&ctx, 0, &piece, &partners);
  }
  return out;
}

}  // namespace bddfc
