#include "rewriting/rewriter.h"

#include <algorithm>

#include "base/check.h"
#include "homomorphism/homomorphism.h"
#include "rewriting/piece_unifier.h"

namespace bddfc {

bool AddMinimized(Ucq* ucq, const Cq& q) {
  // Subsumed by an existing, more general disjunct?
  for (const Cq& existing : ucq->disjuncts()) {
    if (Subsumes(existing, q)) return false;
  }
  // Remove disjuncts that the newcomer generalizes.
  std::vector<Cq> kept;
  kept.reserve(ucq->disjuncts().size() + 1);
  for (const Cq& existing : ucq->disjuncts()) {
    if (!Subsumes(q, existing)) kept.push_back(existing);
  }
  kept.push_back(q);
  *ucq = Ucq(std::move(kept));
  return true;
}

UcqRewriter::UcqRewriter(RuleSet rules, Universe* universe,
                         RewriterOptions options)
    : rules_(std::move(rules)), universe_(universe), options_(options) {
  BDDFC_CHECK(universe != nullptr);
}

RewriteResult UcqRewriter::Rewrite(const Ucq& q) const {
  RewriteResult result;
  // With minimization off, deduplicate syntactically only (for the
  // ablation benches; isomorphic renamings still count as distinct, which
  // is exactly the explosion the ablation is meant to expose — up to the
  // fact that equal queries produced from one parent share variable names).
  auto add = [&](const Cq& cq) {
    if (options_.minimize) return AddMinimized(&result.ucq, cq);
    for (const Cq& existing : result.ucq.disjuncts()) {
      if (existing == cq) return false;
      // Cheap isomorphism filter: identical up to the canonical renaming
      // induced by first-occurrence order.
      if (Subsumes(existing, cq) && Subsumes(cq, existing) &&
          existing.size() == cq.size()) {
        return false;
      }
    }
    result.ucq.Add(cq);
    return true;
  };
  auto normalize = [&](const Cq& cq) {
    return options_.core_queries ? Core(cq, universe_) : cq;
  };

  std::vector<Cq> frontier;
  for (const Cq& disjunct : q.disjuncts()) {
    Cq normalized = normalize(disjunct);
    if (add(normalized)) frontier.push_back(normalized);
  }

  for (std::size_t depth = 1; depth <= options_.max_depth; ++depth) {
    std::vector<Cq> next;
    for (const Cq& query : frontier) {
      std::vector<PieceRewriting> rewritings =
          EnumeratePieceRewritings(query, rules_, universe_);
      result.candidates_generated += rewritings.size();
      for (PieceRewriting& pr : rewritings) {
        if (pr.result.size() > options_.max_atoms_per_query) {
          result.hit_bounds = true;
          continue;
        }
        Cq normalized = normalize(pr.result);
        if (add(normalized)) {
          next.push_back(std::move(normalized));
        }
        if (result.ucq.size() > options_.max_disjuncts) {
          result.hit_bounds = true;
          return result;
        }
      }
    }
    if (next.empty()) {
      result.saturated = true;
      result.depth = depth - 1;
      return result;
    }
    frontier = std::move(next);
  }
  result.hit_bounds = true;
  result.depth = options_.max_depth;
  return result;
}

RewriteResult UcqRewriter::Rewrite(const Cq& q) const {
  return Rewrite(Ucq({q}));
}

Ucq UcqRewriter::InjectiveRewriting(const Cq& q) const {
  RewriteResult classical = Rewrite(q);
  Ucq out;
  std::vector<Cq> all;
  for (const Cq& disjunct : classical.ucq.disjuncts()) {
    Ucq specs = AllSpecializations(disjunct);
    for (const Cq& s : specs.disjuncts()) all.push_back(s);
  }
  // Deduplicate syntactically (specializations of distinct disjuncts can
  // coincide after canonical representative choice).
  for (const Cq& candidate : all) {
    bool duplicate = false;
    for (const Cq& existing : out.disjuncts()) {
      if (existing == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.Add(candidate);
  }
  return out;
}

RewriteResult ComposeRewrite(const Cq& q, const RuleSet& r_first,
                             const RuleSet& r_second, Universe* universe,
                             RewriterOptions options) {
  UcqRewriter second(r_second, universe, options);
  RewriteResult intermediate = second.Rewrite(q);
  UcqRewriter first(r_first, universe, options);
  RewriteResult final_result = first.Rewrite(intermediate.ucq);
  final_result.saturated =
      intermediate.saturated && final_result.saturated;
  final_result.hit_bounds =
      intermediate.hit_bounds || final_result.hit_bounds;
  final_result.candidates_generated += intermediate.candidates_generated;
  return final_result;
}

bool UcqEquivalent(const Ucq& a, const Ucq& b) {
  auto covered = [](const Ucq& x, const Ucq& y) {
    // Every disjunct of x is subsumed by some disjunct of y.
    for (const Cq& qx : x.disjuncts()) {
      bool found = false;
      for (const Cq& qy : y.disjuncts()) {
        if (Subsumes(qy, qx)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return covered(a, b) && covered(b, a);
}

namespace {

// Enumerates set partitions of `vars` via restricted-growth strings,
// invoking `visit` with the class id of every variable.
void EnumeratePartitions(
    std::size_t n, std::vector<int>* assignment,
    const std::function<void(const std::vector<int>&)>& visit) {
  if (assignment->size() == n) {
    visit(*assignment);
    return;
  }
  int max_used = -1;
  for (int c : *assignment) max_used = std::max(max_used, c);
  for (int c = 0; c <= max_used + 1; ++c) {
    assignment->push_back(c);
    EnumeratePartitions(n, assignment, visit);
    assignment->pop_back();
  }
}

}  // namespace

Ucq AllSpecializations(const Cq& q) {
  const std::vector<Term>& vars = q.vars();
  Ucq out;
  std::vector<int> assignment;
  EnumeratePartitions(vars.size(), &assignment, [&](const std::vector<int>&
                                                        classes) {
    // Representative per class: prefer an answer variable (so the answer
    // tuple survives as a specialization of the original), else the first
    // member.
    std::unordered_map<int, Term> rep;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      auto it = rep.find(classes[i]);
      if (it == rep.end()) {
        rep.emplace(classes[i], vars[i]);
      } else if (q.IsAnswerVar(vars[i]) && !q.IsAnswerVar(it->second)) {
        it->second = vars[i];
      }
    }
    Substitution sigma;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      Term r = rep[classes[i]];
      if (vars[i] != r) sigma.Bind(vars[i], r);
    }
    // Deduplicate atoms created by the merge.
    std::vector<Atom> atoms;
    std::unordered_set<Atom> seen;
    for (const Atom& a : q.atoms()) {
      Atom mapped = sigma.Apply(a);
      if (seen.insert(mapped).second) atoms.push_back(std::move(mapped));
    }
    out.Add(Cq(std::move(atoms), sigma.ApplyTuple(q.answers())));
  });
  return out;
}

}  // namespace bddfc
