// Deterministic and pseudo-random workload generators: rule sets,
// instances and queries for the property-test suites and the benchmark
// harnesses. All randomness flows through an explicit Rng so every
// workload is reproducible from its seed.

#ifndef BDDFC_GENERATORS_WORKLOAD_H_
#define BDDFC_GENERATORS_WORKLOAD_H_

#include <vector>

#include "base/rng.h"
#include "logic/cq.h"
#include "logic/instance.h"
#include "logic/rule.h"
#include "logic/universe.h"

namespace bddfc {
namespace generators {

/// Knobs for RandomBinaryRuleSet.
struct RuleSetSpec {
  /// Number of binary predicates P0..P{n-1} to draw from.
  int num_predicates = 3;
  /// Rules to generate.
  int num_rules = 4;
  /// Body atoms per rule, uniform in [1, max_body_atoms].
  int max_body_atoms = 2;
  /// Head atoms per rule, uniform in [1, max_head_atoms].
  int max_head_atoms = 2;
  /// Probability that a rule is Datalog (no existential variables).
  double datalog_fraction = 0.5;
  /// Restrict non-Datalog heads to the forward-existential shape
  /// (Definition 21): binary head atoms E(frontier, existential).
  bool forward_existential_only = false;
};

/// A random rule set over binary predicates. Bodies are connected (each
/// atom shares a variable with an earlier one) so rules are triggerable.
RuleSet RandomBinaryRuleSet(Universe* universe, const RuleSetSpec& spec,
                            Rng* rng);

/// A random instance over the binary predicates used by `rules`:
/// `num_atoms` atoms over `num_constants` constants (named g0..g{n-1},
/// shared across calls with the same universe).
Instance RandomInstance(Universe* universe, const RuleSet& rules,
                        int num_constants, int num_atoms, Rng* rng);

/// A random Boolean CQ over the predicates of `rules`: `num_atoms` atoms
/// over `num_vars` variables (connected, so entailment is non-trivial).
Cq RandomBooleanCq(Universe* universe, const RuleSet& rules, int num_atoms,
                   int num_vars, Rng* rng);

/// Deterministic families --------------------------------------------------

/// P0(x) -> P1(x), …, P{n-1}(x) -> Pn(x) (unary Datalog chain).
RuleSet UnaryChain(Universe* universe, int length);

/// ⊤ -> the explicit loop-free k-tournament over fresh existentials
/// (edges oriented low-to-high index).
Rule ExplicitTournamentRule(Universe* universe, PredicateId e, int k);

/// The paper's flagship pair: Example 1 (transitivity; not bdd) and its
/// bdd-ification from the introduction.
RuleSet Example1(Universe* universe);
RuleSet BddifiedExample1(Universe* universe);

}  // namespace generators
}  // namespace bddfc

#endif  // BDDFC_GENERATORS_WORKLOAD_H_
