#include "generators/workload.h"

#include <string>
#include <unordered_set>

#include "base/check.h"
#include "logic/parser.h"

namespace bddfc {
namespace generators {

namespace {

std::vector<PredicateId> BinaryPredicates(Universe* universe, int n) {
  std::vector<PredicateId> preds;
  preds.reserve(n);
  for (int i = 0; i < n; ++i) {
    preds.push_back(
        universe->InternPredicate("P" + std::to_string(i), 2));
  }
  return preds;
}

std::vector<PredicateId> PredicatesOf(Universe* universe,
                                      const RuleSet& rules) {
  std::vector<PredicateId> preds;
  for (PredicateId p : SignatureOf(rules)) {
    if (universe->ArityOf(p) == 2) preds.push_back(p);
  }
  return preds;
}

}  // namespace

RuleSet RandomBinaryRuleSet(Universe* universe, const RuleSetSpec& spec,
                            Rng* rng) {
  BDDFC_CHECK_GE(spec.num_predicates, 1);
  std::vector<PredicateId> preds =
      BinaryPredicates(universe, spec.num_predicates);
  RuleSet rules;
  for (int r = 0; r < spec.num_rules; ++r) {
    // Variable pool for the body.
    std::vector<Term> vars;
    int num_body = 1 + static_cast<int>(rng->Below(spec.max_body_atoms));
    std::vector<Atom> body;
    for (int a = 0; a < num_body; ++a) {
      PredicateId p = preds[rng->Below(preds.size())];
      Term first;
      if (vars.empty()) {
        first = universe->FreshVariable("g");
        vars.push_back(first);
      } else {
        // Keep the body connected: reuse an existing variable.
        first = vars[rng->Below(vars.size())];
      }
      Term second;
      if (!vars.empty() && rng->Flip(0.5)) {
        second = vars[rng->Below(vars.size())];
      } else {
        second = universe->FreshVariable("g");
        vars.push_back(second);
      }
      body.push_back(Atom(p, {first, second}));
    }

    bool datalog = rng->Flip(spec.datalog_fraction);
    int num_head = 1 + static_cast<int>(rng->Below(spec.max_head_atoms));
    std::vector<Atom> head;
    std::vector<Term> existentials;
    for (int a = 0; a < num_head; ++a) {
      PredicateId p = preds[rng->Below(preds.size())];
      if (datalog) {
        Term x = vars[rng->Below(vars.size())];
        Term y = vars[rng->Below(vars.size())];
        head.push_back(Atom(p, {x, y}));
      } else if (spec.forward_existential_only) {
        Term x = vars[rng->Below(vars.size())];
        Term z = universe->FreshVariable("g");
        existentials.push_back(z);
        head.push_back(Atom(p, {x, z}));
      } else {
        // Mixed: frontier or existential on either side, but ensure at
        // least one existential somewhere in the head.
        Term x;
        Term y;
        if (a == 0 || rng->Flip(0.5)) {
          x = vars[rng->Below(vars.size())];
          Term z = existentials.empty() || rng->Flip(0.5)
                       ? universe->FreshVariable("g")
                       : existentials[rng->Below(existentials.size())];
          if (std::find(existentials.begin(), existentials.end(), z) ==
              existentials.end()) {
            existentials.push_back(z);
          }
          y = z;
        } else {
          x = existentials[rng->Below(existentials.size())];
          y = vars[rng->Below(vars.size())];
        }
        head.push_back(Atom(p, {x, y}));
      }
    }
    rules.push_back(Rule(std::move(body), std::move(head),
                         "rnd" + std::to_string(r)));
  }
  return rules;
}

Instance RandomInstance(Universe* universe, const RuleSet& rules,
                        int num_constants, int num_atoms, Rng* rng) {
  std::vector<PredicateId> preds = PredicatesOf(universe, rules);
  BDDFC_CHECK(!preds.empty());
  std::vector<Term> constants;
  constants.reserve(num_constants);
  for (int i = 0; i < num_constants; ++i) {
    constants.push_back(
        universe->InternConstant("g" + std::to_string(i)));
  }
  Instance db(universe);
  for (int i = 0; i < num_atoms; ++i) {
    PredicateId p = preds[rng->Below(preds.size())];
    db.AddAtom(Atom(p, {constants[rng->Below(constants.size())],
                        constants[rng->Below(constants.size())]}));
  }
  return db;
}

Cq RandomBooleanCq(Universe* universe, const RuleSet& rules, int num_atoms,
                   int num_vars, Rng* rng) {
  std::vector<PredicateId> preds = PredicatesOf(universe, rules);
  BDDFC_CHECK(!preds.empty());
  BDDFC_CHECK_GE(num_vars, 1);
  std::vector<Term> vars;
  vars.reserve(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    vars.push_back(universe->FreshVariable("q"));
  }
  std::vector<Atom> atoms;
  std::unordered_set<Term> used;
  for (int i = 0; i < num_atoms; ++i) {
    PredicateId p = preds[rng->Below(preds.size())];
    // Connectedness: after the first atom, one endpoint is already used.
    Term first = used.empty()
                     ? vars[rng->Below(vars.size())]
                     : *std::next(used.begin(), rng->Below(used.size()));
    Term second = vars[rng->Below(vars.size())];
    used.insert(first);
    used.insert(second);
    atoms.push_back(Atom(p, {first, second}));
  }
  return Cq(std::move(atoms), {});
}

RuleSet UnaryChain(Universe* universe, int length) {
  std::string text;
  for (int i = 0; i < length; ++i) {
    text += "U" + std::to_string(i) + "(x) -> U" + std::to_string(i + 1) +
            "(x)\n";
  }
  return MustParseRuleSet(universe, text);
}

Rule ExplicitTournamentRule(Universe* universe, PredicateId e, int k) {
  BDDFC_CHECK_GE(k, 2);
  std::vector<Term> vertices;
  for (int i = 0; i < k; ++i) {
    vertices.push_back(universe->FreshVariable("t"));
  }
  std::vector<Atom> head;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      head.push_back(Atom(e, {vertices[i], vertices[j]}));
    }
  }
  return Rule({Atom(universe->top(), {})}, std::move(head),
              "tournament" + std::to_string(k));
}

RuleSet Example1(Universe* universe) {
  return MustParseRuleSet(universe,
                          "E(x,y) -> E(y,z)\n"
                          "E(x,y), E(y,z) -> E(x,z)\n");
}

RuleSet BddifiedExample1(Universe* universe) {
  return MustParseRuleSet(universe,
                          "E(x,y) -> E(y,z)\n"
                          "E(x,x1), E(y,y1) -> E(x,y1)\n");
}

}  // namespace generators
}  // namespace bddfc
