// Interned string table: maps strings to dense 32-bit ids and back.
//
// All predicate and term names in the logic substrate are interned through a
// SymbolTable so that the hot paths (homomorphism search, chase, rewriting)
// compare and hash plain integers.

#ifndef BDDFC_BASE_SYMBOL_TABLE_H_
#define BDDFC_BASE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bddfc {

/// Dense id assigned by a SymbolTable.
using SymbolId = std::uint32_t;

/// Bidirectional string <-> dense-id map. Not thread-safe; each logical
/// "universe" (signature + terms) owns one table.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id of `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` if already interned, or `kNotFound`.
  SymbolId Find(std::string_view name) const;

  /// Returns the name for an interned id. `id` must be valid.
  const std::string& NameOf(SymbolId id) const;

  /// Number of interned symbols.
  std::size_t size() const { return names_.size(); }

  /// Interns a fresh symbol guaranteed not to collide with existing names.
  /// The generated name starts with `prefix` followed by a counter.
  SymbolId Fresh(std::string_view prefix);

  static constexpr SymbolId kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, SymbolId> index_;
  std::vector<std::string> names_;
  std::uint64_t fresh_counter_ = 0;
};

}  // namespace bddfc

#endif  // BDDFC_BASE_SYMBOL_TABLE_H_
