#include "base/thread_pool.h"

#include <algorithm>

namespace bddfc {

ThreadPool::ThreadPool(std::size_t num_workers) {
  queues_.reserve(std::max<std::size_t>(num_workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(num_workers, 1); ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  WaitAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::Submit(std::function<void()> task) {
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
  // A WaitAll() caller parked on done_cv_ can steal this task.
  done_cv_.notify_all();
}

bool ThreadPool::PopTask(std::size_t queue_index, bool steal,
                         std::function<void()>* task) {
  Queue& q = *queues_[queue_index];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  if (steal) {
    *task = std::move(q.tasks.back());
    q.tasks.pop_back();
  } else {
    *task = std::move(q.tasks.front());
    q.tasks.pop_front();
  }
  return true;
}

bool ThreadPool::RunOneTask(std::size_t home) {
  std::function<void()> task;
  bool found = PopTask(home % queues_.size(), /*steal=*/false, &task);
  for (std::size_t i = 1; !found && i < queues_.size(); ++i) {
    found = PopTask((home + i) % queues_.size(), /*steal=*/true, &task);
  }
  if (!found) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --queued_;
  }
  task();
  bool all_done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all_done = --pending_ == 0;
  }
  if (all_done) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop(std::size_t index) {
  for (;;) {
    if (RunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::WaitAll() {
  const std::size_t home = workers_.size();  // steal round-robin from all
  for (;;) {
    if (RunOneTask(home)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    // Wake when everything finished or when a new task appears (a running
    // task may Submit more work for this thread to steal).
    done_cv_.wait(lock, [this] { return pending_ == 0 || queued_ > 0; });
    if (pending_ == 0) return;
  }
}

void ParallelFor(
    ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t range = end - begin;
  if (pool == nullptr || pool->num_workers() == 0 || range <= grain) {
    chunk_fn(begin, end);
    return;
  }
  // At most ~4 chunks per participant (workers + the waiting caller) keeps
  // scheduling overhead low while still smoothing imbalance.
  const std::size_t max_chunks = 4 * (pool->num_workers() + 1);
  const std::size_t chunks =
      std::min(max_chunks, (range + grain - 1) / grain);
  const std::size_t size = (range + chunks - 1) / chunks;
  for (std::size_t k = 0; k < chunks; ++k) {
    const std::size_t lo = begin + k * size;
    const std::size_t hi = std::min(end, lo + size);
    if (lo >= hi) break;
    pool->Submit([&chunk_fn, lo, hi] { chunk_fn(lo, hi); });
  }
  pool->WaitAll();
}

}  // namespace bddfc
