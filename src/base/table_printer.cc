#include "base/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace bddfc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
  };
  emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < headers_.size()) sep += "  ";
  }
  out += sep + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

std::string FormatBool(bool b) { return b ? "yes" : "no"; }

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bddfc
