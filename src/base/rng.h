// Deterministic pseudo-random number generator (splitmix64) used by the
// experiment harnesses and property tests. Seeded explicitly so every run is
// reproducible; never seeded from wall-clock time.

#ifndef BDDFC_BASE_RNG_H_
#define BDDFC_BASE_RNG_H_

#include <cstdint>

namespace bddfc {

/// Small, fast, deterministic RNG (splitmix64). Adequate for workload
/// generation; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double Unit() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p`.
  bool Flip(double p) { return Unit() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace bddfc

#endif  // BDDFC_BASE_RNG_H_
