// Lightweight runtime-check macros in the spirit of glog's CHECK family.
//
// The library does not use exceptions on its main code paths (per the
// project style guide); programmer errors and violated invariants abort with
// a diagnostic instead. `BDDFC_CHECK` is always on; `BDDFC_DCHECK` compiles
// away in NDEBUG builds.

#ifndef BDDFC_BASE_CHECK_H_
#define BDDFC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bddfc {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace bddfc

#define BDDFC_CHECK(expr)                                    \
  do {                                                       \
    if (!(expr)) {                                           \
      ::bddfc::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                        \
  } while (0)

#define BDDFC_CHECK_EQ(a, b) BDDFC_CHECK((a) == (b))
#define BDDFC_CHECK_NE(a, b) BDDFC_CHECK((a) != (b))
#define BDDFC_CHECK_LT(a, b) BDDFC_CHECK((a) < (b))
#define BDDFC_CHECK_LE(a, b) BDDFC_CHECK((a) <= (b))
#define BDDFC_CHECK_GT(a, b) BDDFC_CHECK((a) > (b))
#define BDDFC_CHECK_GE(a, b) BDDFC_CHECK((a) >= (b))

#ifdef NDEBUG
#define BDDFC_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define BDDFC_DCHECK(expr) BDDFC_CHECK(expr)
#endif

#endif  // BDDFC_BASE_CHECK_H_
