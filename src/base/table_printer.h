// Plain-text aligned table printer used by the experiment harnesses in
// bench/. Each EXP-* binary prints one or more tables in the format recorded
// in EXPERIMENTS.md.

#ifndef BDDFC_BASE_TABLE_PRINTER_H_
#define BDDFC_BASE_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace bddfc {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (headers, separator, rows) to a string.
  std::string ToString() const;

  /// Prints the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience formatting helpers for table cells.
std::string FormatBool(bool b);
std::string FormatDouble(double v, int precision = 2);

}  // namespace bddfc

#endif  // BDDFC_BASE_TABLE_PRINTER_H_
