#include "base/symbol_table.h"

#include "base/check.h"

namespace bddfc {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNotFound : it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  BDDFC_CHECK_LT(id, names_.size());
  return names_[id];
}

SymbolId SymbolTable::Fresh(std::string_view prefix) {
  // The separator must be an identifier character of the logic lexer, or
  // printed fresh symbols could never be re-parsed ('#' — the old choice —
  // starts a comment there; the prime is the conventional "generated"
  // marker and round-trips).
  for (;;) {
    std::string candidate =
        std::string(prefix) + "'" + std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

}  // namespace bddfc
