// A small work-stealing thread pool, the substrate of the src/exec
// execution subsystem.
//
// Design: each worker owns a deque guarded by its own mutex. Submit()
// distributes tasks round-robin across the deques; a worker pops from the
// front of its own deque and, when empty, steals from the back of its
// siblings'. WaitAll() lets the *calling* thread participate in the same
// pop/steal loop, so a pool is never slower than serial execution by more
// than the bookkeeping, and a pool with zero workers degenerates to running
// every task inline in WaitAll().
//
// The pool makes no fairness or ordering promises — callers that need a
// deterministic result must merge task outputs themselves (the chase
// executor sorts trigger batches into the canonical firing order; the
// parallel homomorphism search concatenates per-chunk results in chunk
// order). Completion of every task submitted before WaitAll() returns
// happens-before the return (the counters are updated under a mutex), so
// task outputs may be read without further synchronization.
//
// Tasks must not throw; an escaping exception terminates (tasks run under
// noexcept workers by design — the codebase reports errors via CHECK).

#ifndef BDDFC_BASE_THREAD_POOL_H_
#define BDDFC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bddfc {

/// Work-stealing pool of `num_workers` threads. All methods are
/// thread-safe; tasks may themselves call Submit() (but not WaitAll(),
/// which is reserved for the owning thread).
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is allowed: every task then
  /// runs inline in WaitAll()).
  explicit ThreadPool(std::size_t num_workers);

  /// Joins all workers. Pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues `task` for execution.
  void Submit(std::function<void()> task);

  /// Runs and/or waits until every submitted task has completed. The
  /// calling thread joins the pop/steal loop while it waits.
  void WaitAll();

  /// Resolves a user-facing thread-count request: 0 means "all hardware
  /// threads", anything else is taken literally (minimum 1).
  static std::size_t ResolveThreadCount(std::size_t requested);

 private:
  // One deque per worker (slot 0 doubles as the external Submit target
  // when the pool has no workers). Guarded by its own mutex so stealing
  // only contends with the queue's owner.
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Pops one task (own queue first, then steals) and runs it. Returns
  // false when every deque was empty.
  bool RunOneTask(std::size_t home);
  bool PopTask(std::size_t queue_index, bool steal,
               std::function<void()>* task);
  void WorkerLoop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards the counters below
  std::condition_variable work_cv_;  // a task was queued / shutdown
  std::condition_variable done_cv_;  // pending_ may have reached zero
  std::size_t queued_ = 0;   // tasks sitting in some deque
  std::size_t pending_ = 0;  // tasks queued or currently running
  std::size_t next_queue_ = 0;  // round-robin Submit cursor
  bool stop_ = false;
};

/// Runs `chunk_fn(lo, hi)` over a partition of [begin, end) using `pool`,
/// blocking until every chunk is done. Chunks are at least `grain` wide
/// (the last may be shorter); with a null pool, zero workers, or a range
/// that fits one grain, the whole range runs inline on the caller. The
/// partition is deterministic: chunk k covers
/// [begin + k*size, begin + (k+1)*size).
void ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& chunk_fn);

}  // namespace bddfc

#endif  // BDDFC_BASE_THREAD_POOL_H_
