#include "base/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/check.h"

namespace bddfc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonValue ---------------------------------------------------------------

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  BDDFC_CHECK(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t JsonValue::AsInt() const {
  BDDFC_CHECK(is_number());
  return kind_ == Kind::kInt ? int_ : static_cast<std::int64_t>(double_);
}

double JsonValue::AsDouble() const {
  BDDFC_CHECK(is_number());
  return kind_ == Kind::kDouble ? double_ : static_cast<double>(int_);
}

const std::string& JsonValue::AsString() const {
  BDDFC_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  BDDFC_CHECK(kind_ == Kind::kArray);
  return array_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindString(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v : nullptr;
}

const JsonValue* JsonValue::FindInt(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v : nullptr;
}

const JsonValue* JsonValue::FindBool(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v : nullptr;
}

void JsonValue::Push(JsonValue v) {
  BDDFC_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  BDDFC_CHECK(kind_ == Kind::kObject);
  for (auto& [k, old] : object_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::Members()
    const {
  BDDFC_CHECK(kind_ == Kind::kObject);
  return object_;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {  // JSON has no Inf/NaN literals
        *out += "null";
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      break;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) *out += ',';
        first = false;
        v.DumpTo(out);
      }
      *out += ']';
      break;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(k);
        *out += "\":";
        v.DumpTo(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// --- Parser ------------------------------------------------------------------

namespace {

// Recursive-descent parser over a bounded view. Every advance is bounds
// checked; errors unwind via the `ok_` flag (no exceptions, no aborts).
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  std::optional<JsonValue> Run(std::string* error) {
    SkipWs();
    JsonValue v = ParseValue(0);
    if (ok_) {
      SkipWs();
      if (pos_ != text_.size()) Fail("trailing content after document");
    }
    if (!ok_) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(err_pos_) + ": " + err_msg_;
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  void Fail(const char* msg) {
    if (ok_) {
      ok_ = false;
      err_msg_ = msg;
      err_pos_ = pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char want) {
    if (AtEnd() || Peek() != want) return false;
    ++pos_;
    return true;
  }

  JsonValue ParseValue(std::size_t depth) {
    if (!ok_) return JsonValue();
    if (depth > max_depth_) {
      Fail("document nested too deeply");
      return JsonValue();
    }
    if (AtEnd()) {
      Fail("unexpected end of input");
      return JsonValue();
    }
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string s = ParseString();
        return ok_ ? JsonValue::Str(std::move(s)) : JsonValue();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseLiteral(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("invalid literal");
      return JsonValue();
    }
    pos_ += word.size();
    return value;
  }

  JsonValue ParseObject(std::size_t depth) {
    JsonValue obj = JsonValue::Object();
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return obj;
    while (ok_) {
      SkipWs();
      if (AtEnd() || Peek() != '"') {
        Fail("expected object key string");
        return JsonValue();
      }
      std::string key = ParseString();
      if (!ok_) return JsonValue();
      SkipWs();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return JsonValue();
      }
      SkipWs();
      JsonValue v = ParseValue(depth + 1);
      if (!ok_) return JsonValue();
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return JsonValue();
      }
    }
    return JsonValue();
  }

  JsonValue ParseArray(std::size_t depth) {
    JsonValue arr = JsonValue::Array();
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return arr;
    while (ok_) {
      SkipWs();
      JsonValue v = ParseValue(depth + 1);
      if (!ok_) return JsonValue();
      arr.Push(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return JsonValue();
      }
    }
    return JsonValue();
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  // Parses a \uXXXX escape body (pos_ past the 'u'); returns the code unit
  // or -1 on error.
  int ParseHex4() {
    if (pos_ + 4 > text_.size()) return -1;
    int value = 0;
    for (int i = 0; i < 4; ++i) {
      int d = HexDigit(text_[pos_ + i]);
      if (d < 0) return -1;
      value = value * 16 + d;
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string ParseString() {
    std::string out;
    ++pos_;  // opening '"'
    while (true) {
      if (AtEnd()) {
        Fail("unterminated string");
        return out;
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        Fail("unescaped control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) {
        Fail("unterminated escape");
        return out;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          int unit = ParseHex4();
          if (unit < 0) {
            Fail("invalid \\u escape");
            return out;
          }
          std::uint32_t cp = static_cast<std::uint32_t>(unit);
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              int low = ParseHex4();
              if (low < 0xDC00 || low > 0xDFFF) {
                Fail("invalid surrogate pair");
                return out;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) +
                   (static_cast<std::uint32_t>(low) - 0xDC00);
            } else {
              Fail("unpaired surrogate");
              return out;
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail("unpaired surrogate");
            return out;
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          Fail("invalid escape character");
          return out;
      }
    }
  }

  JsonValue ParseNumber() {
    std::size_t start = pos_;
    Consume('-');
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      Fail("invalid value");
      return JsonValue();
    }
    bool integral = true;
    const std::size_t int_start = pos_;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = int_start;
      Fail("leading zero in number");
      return JsonValue();
    }
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected digit after decimal point");
        return JsonValue();
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected digit in exponent");
        return JsonValue();
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size()) {
        return JsonValue::Int(v);
      }
      // Out-of-range integers fall through to double (lossy but defined).
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("invalid number");
      return JsonValue();
    }
    return JsonValue::Double(d);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_msg_;
  std::size_t err_pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonParse(std::string_view text, std::string* error,
                                   std::size_t max_depth) {
  return Parser(text, max_depth).Run(error);
}

}  // namespace bddfc
