// Hash-combining helpers shared across the library.

#ifndef BDDFC_BASE_HASH_H_
#define BDDFC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace bddfc {

/// Mixes `value` into the running hash `seed` (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes an arbitrary range of hashable elements.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    HashCombine(&seed, std::hash<std::decay_t<decltype(*first)>>{}(*first));
  }
  return seed;
}

/// std::hash-compatible functor for std::pair.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// std::hash-compatible functor for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace bddfc

#endif  // BDDFC_BASE_HASH_H_
