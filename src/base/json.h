// Minimal JSON support shared by every JSON producer/consumer in the tree:
// string escaping (the bench harness, chase_cli --json) and a small
// document model with a hardened parser (the bddfc_server wire protocol).
//
// The parser is written for hostile input — a server must survive any byte
// sequence a client sends. It never aborts or throws on malformed text; it
// returns std::nullopt and a position-annotated message instead. Nesting
// depth is capped so adversarially deep documents cannot exhaust the stack.

#ifndef BDDFC_BASE_JSON_H_
#define BDDFC_BASE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bddfc {

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, \n, \t, and all other control characters (as \u00xx).
std::string JsonEscape(std::string_view s);

/// One JSON document node. Objects keep their members in insertion order
/// (the wire protocol echoes fields back in a stable order); lookup is
/// linear, which is fine for the handful of keys a request carries.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(std::int64_t i);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors. Calling the wrong one aborts (programmer error, as
  /// elsewhere in the tree) — protocol code checks kind first.
  bool AsBool() const;
  std::int64_t AsInt() const;  // kDouble values are truncated
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Object member access: value of `key`, or nullptr when absent (or when
  /// this is not an object — so lookup chains never abort on bad input).
  const JsonValue* Find(std::string_view key) const;
  /// Find + kind filter: the member if present *and* of the wanted kind.
  const JsonValue* FindString(std::string_view key) const;
  const JsonValue* FindInt(std::string_view key) const;
  const JsonValue* FindBool(std::string_view key) const;

  /// Builders.
  void Push(JsonValue v);                       // array append
  void Set(std::string key, JsonValue v);       // object insert/replace
  const std::vector<std::pair<std::string, JsonValue>>& Members() const;

  /// Serializes to a single-line JSON document (no trailing newline).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one complete JSON document from `text`. Trailing content after
/// the document (other than whitespace) is an error. On failure returns
/// std::nullopt and, when `error` is non-null, a message of the form
/// "offset N: ...". Never aborts, throws, or reads out of bounds, whatever
/// the input; documents nested deeper than `max_depth` are rejected.
std::optional<JsonValue> JsonParse(std::string_view text,
                                   std::string* error = nullptr,
                                   std::size_t max_depth = 64);

}  // namespace bddfc

#endif  // BDDFC_BASE_JSON_H_
