// Minimal JSON string escaping, shared by every JSON reporter in the tree
// (the bench harness, chase_cli --json).

#ifndef BDDFC_BASE_JSON_H_
#define BDDFC_BASE_JSON_H_

#include <string>
#include <string_view>

namespace bddfc {

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes, \n, \t, and all other control characters (as \u00xx).
std::string JsonEscape(std::string_view s);

}  // namespace bddfc

#endif  // BDDFC_BASE_JSON_H_
