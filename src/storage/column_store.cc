#include "storage/column_store.h"

#include <algorithm>

#include "obs/obs.h"

namespace bddfc {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two

}  // namespace

std::size_t ColumnStore::FindSlot(const Atom& atom) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = AtomHash{}(atom) & mask;
  while (slots_[slot] != 0) {
    if (atoms()[slots_[slot] - 1] == atom) return slot;
    slot = (slot + 1) & mask;
  }
  return slot;
}

void ColumnStore::GrowSlots(std::size_t pending) {
  std::size_t capacity = slots_.empty() ? kInitialSlots : slots_.size();
  while (2 * (slots_used_ + pending) >= capacity) capacity *= 2;
  if (capacity == slots_.size()) return;
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(capacity, 0);
  const std::size_t mask = slots_.size() - 1;
  for (std::uint32_t stored : old) {
    if (stored == 0) continue;
    std::size_t slot = AtomHash{}(atoms()[stored - 1]) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = stored;
  }
}

std::unique_ptr<FactStore> ColumnStore::Clone() const {
  auto copy = std::make_unique<ColumnStore>();
  copy->CopyBaseFrom(*this);
  copy->slots_ = slots_;
  copy->slots_used_ = slots_used_;
  // Lock only to order against a concurrent lazy seal (EnsureRuns) on a
  // query thread; mutation is single-threaded per the thread model.
  std::lock_guard<std::mutex> lock(runs_mutex_);
  copy->tables_.reserve(tables_.size());
  for (const auto& table : tables_) {
    copy->tables_.push_back(table == nullptr ? nullptr
                                             : std::make_unique<PredTable>(
                                                   *table));
  }
  copy->runs_current_.store(runs_current_.load(std::memory_order_acquire),
                            std::memory_order_release);
  return copy;
}

std::size_t ColumnStore::IndexOf(const Atom& atom) const {
  if (slots_.empty()) return SIZE_MAX;
  const std::uint32_t stored = slots_[FindSlot(atom)];
  return stored == 0 ? SIZE_MAX : stored - 1;
}

ColumnStore::PredTable& ColumnStore::TableFor(PredicateId pred,
                                              std::size_t arity) {
  if (pred >= tables_.size()) tables_.resize(pred + 1);
  if (tables_[pred] == nullptr) {
    tables_[pred] = std::make_unique<PredTable>();
    tables_[pred]->columns.resize(arity);
    tables_[pred]->perms.resize(arity);
  }
  PredTable& table = *tables_[pred];
  // The first atom establishes the predicate's arity; a mismatch later
  // would silently misalign the columns (Instance CHECKs this against the
  // Universe, but the raw store API must hold its own invariant).
  BDDFC_CHECK_EQ(table.columns.size(), arity);
  return table;
}

bool ColumnStore::AddAtom(const Atom& atom) {
  GrowSlots(1);
  const std::size_t slot = FindSlot(atom);
  if (slots_[slot] != 0) return false;
  const std::uint32_t idx = RecordAtom(atom);
  slots_[slot] = idx + 1;
  ++slots_used_;
  PredTable& table = TableFor(atom.pred(), atom.arity());
  table.rows.push_back(idx);
  for (std::size_t pos = 0; pos < atom.arity(); ++pos) {
    table.columns[pos].push_back(atom.arg(pos));
  }
  runs_current_.store(false, std::memory_order_release);
  return true;
}

void ColumnStore::AddAtoms(const Atom* begin, const Atom* end) {
  const std::size_t count = static_cast<std::size_t>(end - begin);
  ReserveAtoms(count);
  GrowSlots(count);  // one rehash for the whole batch, not log n
  for (const Atom* a = begin; a != end; ++a) AddAtom(*a);
}

void ColumnStore::SealTable(PredTable* table) {
  const std::uint32_t n = static_cast<std::uint32_t>(table->rows.size());
  if (table->sealed == n) return;
  BDDFC_OBS_SPAN(seal_span, "storage", "storage.run_seal");
  seal_span.Arg("rows", n - table->sealed);
  static obs::Counter* seals = obs::Metrics().GetCounter("storage.run_seals");
  seals->Add(1);
  const std::size_t arity = table->columns.size();
  for (std::size_t pos = 0; pos < arity; ++pos) {
    const std::vector<Term>& column = table->columns[pos];
    std::vector<std::uint32_t>& perm = table->perms[pos];
    const std::size_t run_begin = perm.size();
    perm.reserve(n);
    for (std::uint32_t r = table->sealed; r < n; ++r) perm.push_back(r);
    std::sort(perm.begin() + run_begin, perm.end(),
              [&column](std::uint32_t a, std::uint32_t b) {
                if (column[a] != column[b]) return column[a] < column[b];
                return a < b;
              });
  }
  table->run_ends.push_back(n);
  table->sealed = n;
  // Lazy merge-sort discipline: merging whenever the newest run is no
  // shorter than its predecessor keeps run lengths strictly decreasing
  // (at most log n runs) at O(n log n) total maintenance cost.
  while (table->run_ends.size() >= 2) {
    const std::size_t k = table->run_ends.size();
    const std::uint32_t mid = table->run_ends[k - 2];
    const std::uint32_t begin = k >= 3 ? table->run_ends[k - 3] : 0;
    if (table->run_ends[k - 1] - mid < mid - begin) break;
    BDDFC_OBS_SPAN(merge_span, "storage", "storage.run_merge");
    merge_span.Arg("rows", table->run_ends[k - 1] - begin);
    static obs::Counter* merges =
        obs::Metrics().GetCounter("storage.run_merges");
    merges->Add(1);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      const std::vector<Term>& column = table->columns[pos];
      std::vector<std::uint32_t>& perm = table->perms[pos];
      std::inplace_merge(perm.begin() + begin, perm.begin() + mid,
                         perm.begin() + table->run_ends[k - 1],
                         [&column](std::uint32_t a, std::uint32_t b) {
                           if (column[a] != column[b]) {
                             return column[a] < column[b];
                           }
                           return a < b;
                         });
    }
    table->run_ends.erase(table->run_ends.end() - 2);
  }
}

void ColumnStore::EnsureRuns() const {
  if (runs_current_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(runs_mutex_);
  if (runs_current_.load(std::memory_order_relaxed)) return;
  for (const std::unique_ptr<PredTable>& table : tables_) {
    if (table != nullptr) SealTable(table.get());
  }
  runs_current_.store(true, std::memory_order_release);
}

const std::vector<std::uint32_t>& ColumnStore::AtomsWith(
    PredicateId pred) const {
  if (pred >= tables_.size() || tables_[pred] == nullptr) return kEmptyIndex;
  return tables_[pred]->rows;
}

IndexView ColumnStore::AtomsWith(PredicateId pred, int pos, Term t) const {
  return AtomsWithIn(pred, pos, t, 0, static_cast<std::uint32_t>(size()));
}

IndexView ColumnStore::AtomsWithIn(PredicateId pred, int pos, Term t,
                                   std::uint32_t lo, std::uint32_t hi) const {
  // A negative position is a programmer error on every backend (the row
  // store aborts inside its packed pos-key); a position beyond the
  // predicate's arity is merely an empty lookup on every backend.
  BDDFC_CHECK_GE(pos, 0);
  if (lo >= hi || pred >= tables_.size() || tables_[pred] == nullptr) {
    return IndexView();
  }
  const PredTable& table = *tables_[pred];
  if (static_cast<std::size_t>(pos) >= table.columns.size()) {
    return IndexView();
  }
  EnsureRuns();
  // Local rows whose global index falls in [lo, hi): `rows` is ascending,
  // so they form the contiguous local range [rlo, rhi).
  const auto rows_begin = table.rows.begin();
  const std::uint32_t rlo = static_cast<std::uint32_t>(
      std::lower_bound(rows_begin, table.rows.end(), lo) - rows_begin);
  const std::uint32_t rhi = static_cast<std::uint32_t>(
      std::lower_bound(rows_begin, table.rows.end(), hi) - rows_begin);
  if (rlo >= rhi) return IndexView();
  const std::vector<Term>& column = table.columns[pos];
  const std::vector<std::uint32_t>& perm = table.perms[pos];
  std::vector<std::uint32_t> out;
  std::uint32_t run_begin = 0;
  for (const std::uint32_t run_end : table.run_ends) {
    // Entries with term == t form a contiguous (term, row)-sorted span.
    auto first = std::lower_bound(
        perm.begin() + run_begin, perm.begin() + run_end, t,
        [&column](std::uint32_t r, Term v) { return column[r] < v; });
    auto last = std::upper_bound(
        first, perm.begin() + run_end, t,
        [&column](Term v, std::uint32_t r) { return v < column[r]; });
    // Within the span local rows ascend; clamp to [rlo, rhi).
    first = std::lower_bound(first, last, rlo);
    last = std::lower_bound(first, last, rhi);
    for (auto it = first; it != last; ++it) out.push_back(table.rows[*it]);
    run_begin = run_end;
  }
  // Each run contributed an ascending slice; interleave them into the
  // global ascending order the contract requires.
  if (table.run_ends.size() > 1) std::sort(out.begin(), out.end());
  return IndexView(std::move(out));
}

SortedRunsView ColumnStore::SortedRuns(PredicateId pred, int pos) const {
  BDDFC_CHECK_GE(pos, 0);
  if (pred >= tables_.size() || tables_[pred] == nullptr) {
    return SortedRunsView();
  }
  const PredTable& table = *tables_[pred];
  if (static_cast<std::size_t>(pos) >= table.columns.size() ||
      table.rows.empty()) {
    return SortedRunsView();
  }
  EnsureRuns();
  return BorrowRuns(table.columns[pos].data(), table.rows.data(),
                    table.perms[pos].data(), table.run_ends.data(),
                    static_cast<std::uint32_t>(table.rows.size()),
                    static_cast<std::uint32_t>(table.run_ends.size()));
}

std::size_t ColumnStore::NumRuns(PredicateId pred) const {
  if (pred >= tables_.size() || tables_[pred] == nullptr) return 0;
  return tables_[pred]->run_ends.size();
}

}  // namespace bddfc
