#include "storage/fact_store.h"

#include <algorithm>

#include "storage/column_store.h"
#include "storage/row_store.h"

namespace bddfc {

const std::vector<std::uint32_t> FactStore::kEmptyIndex;

const char* ToString(StorageKind kind) {
  switch (kind) {
    case StorageKind::kRow:
      return "row";
    case StorageKind::kColumn:
      return "column";
  }
  return "?";
}

std::unique_ptr<FactStore> FactStore::Create(StorageKind kind) {
  switch (kind) {
    case StorageKind::kRow:
      return std::make_unique<RowStore>();
    case StorageKind::kColumn:
      return std::make_unique<ColumnStore>();
  }
  BDDFC_CHECK(false);
  return nullptr;
}

IndexView FactStore::ClampView(const std::vector<std::uint32_t>& indices,
                               std::uint32_t lo, std::uint32_t hi) const {
  if (lo >= hi) return IndexView();
  const std::uint32_t* begin = indices.data();
  const std::uint32_t* end = begin + indices.size();
  if (lo > 0) begin = std::lower_bound(begin, end, lo);
  if (indices.empty() || hi <= indices.back()) {
    end = std::lower_bound(begin, end, hi);
  }
  return BorrowView(begin, end);
}

IndexView FactStore::AtomsWithIn(PredicateId pred, std::uint32_t lo,
                                 std::uint32_t hi) const {
  return ClampView(AtomsWith(pred), lo, hi);
}

}  // namespace bddfc
