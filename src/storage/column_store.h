// The columnar FactStore backend, inspired by VLog's dictionary-sorted
// column layout.
//
// Per predicate, atoms live in column vectors (one vector<Term> per
// argument position) aligned with a `rows` vector of global atom indices.
// Point lookups AtomsWith(pred, pos, t) binary-search per-position
// permutation arrays kept as *sorted runs*: each batch of appended rows is
// sealed into a run sorted by (term, row), and runs are merged lazily with
// a merge-sort discipline (merge while the newest run is no shorter than
// its predecessor), so maintenance is O(n log n) total and every lookup
// touches at most O(log n) runs.
//
// Versus the RowStore this trades hash-map point lookups (O(1), but one
// heap-allocated vector + hash node per distinct (pred, pos, term) key —
// O(atoms × arity) index entries with ~100 bytes of overhead each) for
// binary search over flat 4-byte-per-entry arrays: O(atoms) index memory.
// Exact membership (Contains/IndexOf) uses a flat open-addressing table of
// atom indices (8 bytes per atom at 50% load) instead of an Atom-copying
// unordered_map.
//
// Run sealing happens lazily on the first query after a mutation, behind
// the same double-checked lock discipline RowStore uses for its deferred
// index build, so bulk loads sort once per batch, not once per atom.

#ifndef BDDFC_STORAGE_COLUMN_STORE_H_
#define BDDFC_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/fact_store.h"

namespace bddfc {

class ColumnStore final : public FactStore {
 public:
  StorageKind kind() const override { return StorageKind::kColumn; }

  /// Deep copy preserving the membership table and the exact sorted-run
  /// layout (no re-seal, no re-merge: NumRuns agrees with the original).
  std::unique_ptr<FactStore> Clone() const override;

  bool AddAtom(const Atom& atom) override;

  /// Bulk append: grows the membership table to the batch's final size
  /// once instead of rehashing along the way (runs stay unsealed until
  /// the first query either way).
  void AddAtoms(const Atom* begin, const Atom* end) override;
  using FactStore::AddAtoms;

  bool Contains(const Atom& atom) const override {
    return IndexOf(atom) != SIZE_MAX;
  }

  std::size_t IndexOf(const Atom& atom) const override;

  const std::vector<std::uint32_t>& AtomsWith(PredicateId pred) const override;
  IndexView AtomsWith(PredicateId pred, int pos, Term t) const override;
  IndexView AtomsWithIn(PredicateId pred, int pos, Term t, std::uint32_t lo,
                        std::uint32_t hi) const override;

  /// The native run structure, borrowed zero-copy from the predicate's
  /// table after sealing: at most O(log n) runs, each sorted by (term,
  /// local row) — and local rows ascend in global order, so each run is
  /// (term, global)-sorted as the contract requires. Invalidated by
  /// mutation like every borrowed view.
  SortedRunsView SortedRuns(PredicateId pred, int pos) const override;

  /// Number of unmerged sorted runs of `pred`'s tables as of the last
  /// seal (diagnostics and the merge-policy tests; 0 when the predicate
  /// is absent). Atoms appended since the last query are not yet sealed
  /// into a run and are not reflected here.
  std::size_t NumRuns(PredicateId pred) const;

 private:
  struct PredTable {
    /// Global atom indices, ascending (this *is* AtomsWith(pred)).
    std::vector<std::uint32_t> rows;
    /// columns[pos][r] = argument `pos` of local row r.
    std::vector<std::vector<Term>> columns;
    /// perms[pos]: local rows permuted into sorted runs ordered by
    /// (columns[pos][r], r). All positions share the run boundaries.
    std::vector<std::vector<std::uint32_t>> perms;
    /// Exclusive ends of the sorted runs within perms[*].
    std::vector<std::uint32_t> run_ends;
    /// Local rows [0, sealed) are covered by runs; [sealed, rows.size())
    /// is the unsealed tail awaiting the next EnsureRuns().
    std::uint32_t sealed = 0;
  };

  PredTable& TableFor(PredicateId pred, std::size_t arity);

  // Open-addressing membership table: slots_ holds atom index + 1 (0 =
  // empty); keys are the atoms themselves, compared against atoms()[idx].
  std::size_t FindSlot(const Atom& atom) const;
  // Ensures capacity for `pending` further insertions (50% max load).
  void GrowSlots(std::size_t pending);

  // Seals unsealed tails into new sorted runs and applies the lazy merge
  // policy. Thread-safe double-checked lock (concurrent first queries).
  void EnsureRuns() const;
  static void SealTable(PredTable* table);

  // Indexed by PredicateId. Entries are heap-allocated so references the
  // store hands out (AtomsWith(pred) returns a PredTable's `rows` by
  // reference) survive the vector growing for new predicate ids — the
  // same stability the row store's node-based map gives for free.
  mutable std::vector<std::unique_ptr<PredTable>> tables_;
  std::vector<std::uint32_t> slots_;
  std::size_t slots_used_ = 0;
  mutable std::atomic<bool> runs_current_{true};
  mutable std::mutex runs_mutex_;
};

}  // namespace bddfc

#endif  // BDDFC_STORAGE_COLUMN_STORE_H_
