// The row-oriented FactStore backend: the historical Instance layout.
//
// One hash entry per atom (exact membership), plus hash-map indexes
// by predicate and by (predicate, position, term). Index vectors are
// appended in insertion order, so every lookup result is ascending by
// construction.
//
// The hash-map indexes are built lazily on the first index query (and
// maintained incrementally afterwards): a store that is only ever scanned
// via atoms() — a Restrict/Map/DisjointUnion result consumed once — never
// pays the O(atoms × arity) index build at all.

#ifndef BDDFC_STORAGE_ROW_STORE_H_
#define BDDFC_STORAGE_ROW_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "storage/fact_store.h"

namespace bddfc {

class RowStore final : public FactStore {
 public:
  StorageKind kind() const override { return StorageKind::kRow; }

  /// Deep copy: membership + (if built) hash indexes are copied, cached
  /// run snapshots are shared (they are immutable once published).
  std::unique_ptr<FactStore> Clone() const override;

  bool AddAtom(const Atom& atom) override;

  /// Bulk append: reserves the membership map for the batch's final size
  /// once instead of rehashing along the way.
  void AddAtoms(const Atom* begin, const Atom* end) override {
    ReserveAtoms(static_cast<std::size_t>(end - begin));
    pos_.reserve(size() + static_cast<std::size_t>(end - begin));
    for (const Atom* a = begin; a != end; ++a) AddAtom(*a);
  }
  using FactStore::AddAtoms;

  bool Contains(const Atom& atom) const override {
    return pos_.find(atom) != pos_.end();
  }

  std::size_t IndexOf(const Atom& atom) const override {
    auto it = pos_.find(atom);
    return it == pos_.end() ? SIZE_MAX : it->second;
  }

  const std::vector<std::uint32_t>& AtomsWith(PredicateId pred) const override;
  IndexView AtomsWith(PredicateId pred, int pos, Term t) const override;
  IndexView AtomsWithIn(PredicateId pred, int pos, Term t, std::uint32_t lo,
                        std::uint32_t hi) const override;

  /// Satisfies the widened contract by materializing one fully sorted
  /// permutation of the predicate's atoms on demand (correct, slower than
  /// the column store's native runs: O(n log n) per build). Snapshots are
  /// cached per (pred, pos) and rebuilt when the predicate has grown;
  /// handed-out views share ownership of their snapshot, so they survive
  /// both mutation and cache replacement (they just go stale).
  SortedRunsView SortedRuns(PredicateId pred, int pos) const override;

 private:
  // (predicate, position) packed into disjoint 32-bit halves. PredicateId
  // is 32 bits and positions are bounded by the predicate arity (an int),
  // so neither half can truncate.
  using PosKey = std::pair<std::uint64_t, Term>;
  static std::uint64_t PosIndexKey(PredicateId pred, int pos) {
    BDDFC_CHECK_GE(pos, 0);
    return (static_cast<std::uint64_t>(pred) << 32) |
           static_cast<std::uint32_t>(pos);
  }
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint64_t>{}(k.first);
      HashCombine(&seed, std::hash<Term>{}(k.second));
      return seed;
    }
  };

  // Appends atom #idx to the (built) indexes.
  void IndexAtom(const Atom& atom, std::uint32_t idx) const;
  // Builds the indexes from atoms() if they do not exist yet. Thread-safe
  // double-checked lock: concurrent first queries (the parallel chase)
  // build exactly once.
  void EnsureIndexes() const;

  // One materialized sorted permutation (a single run) of a predicate's
  // atoms at one position, snapshotted at `size_stamp` atoms.
  struct RunSnapshot {
    std::size_t size_stamp = 0;
    std::vector<Term> column;          // term at `pos` per local row
    std::vector<std::uint32_t> rows;   // global index per local row
    std::vector<std::uint32_t> perm;   // local rows sorted by (term, row)
    std::uint32_t run_end = 0;         // the single run's exclusive end
  };

  std::unordered_map<Atom, std::size_t> pos_;
  mutable std::unordered_map<PredicateId, std::vector<std::uint32_t>>
      by_pred_;
  mutable std::unordered_map<PosKey, std::vector<std::uint32_t>, PosKeyHash>
      by_pos_;
  mutable std::atomic<bool> indexes_built_{false};
  mutable std::mutex index_mutex_;
  // Keyed by PosIndexKey(pred, pos); guarded by runs_mutex_ (concurrent
  // first queries from the parallel segment engine build exactly once).
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const RunSnapshot>>
      runs_cache_;
  mutable std::mutex runs_mutex_;
};

}  // namespace bddfc

#endif  // BDDFC_STORAGE_ROW_STORE_H_
