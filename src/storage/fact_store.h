// The pluggable fact-storage API: the narrow contract every engine (chase,
// parallel exec, homomorphism search, rewriting evaluation, the Reasoner
// facade) relies on, extracted from the historical all-in-one Instance.
//
// A FactStore is an append-only set of ground atoms with
//   * a stable insertion order (atom index i never changes; the chase uses
//     contiguous index ranges as per-step deltas),
//   * exact membership (Contains / IndexOf),
//   * per-predicate and per-(predicate, position, term) index lookups whose
//     results are always in ascending atom-index order, and
//   * range-filtered delta views (AtomsWithIn) over those lookups.
//
// Two backends implement the contract:
//   * RowStore (row_store.h) — the historical Instance layout: one hash
//     entry per atom plus eager hash-map indexes. Fastest point lookups,
//     O(atoms × arity) index entries.
//   * ColumnStore (column_store.h) — a VLog-inspired columnar layout:
//     per-predicate column vectors with lazily merged sorted runs and
//     binary-search point lookups. O(atoms) index memory; built for
//     large-EDB materializations.
//
// Both backends return identical results for every query (the storage
// differential suite in tests/storage_test.cc enumerates the contract), so
// chase runs are bit-identical across backends at every thread count.
//
// Thread model: mutation (AddAtom/AddAtoms) is single-threaded; queries are
// const and may run concurrently from many threads (the parallel chase
// does). Lazily built indexes are guarded by a double-checked lock, so the
// first concurrent query wave is safe.

#ifndef BDDFC_STORAGE_FACT_STORE_H_
#define BDDFC_STORAGE_FACT_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/check.h"
#include "logic/atom.h"
#include "logic/term.h"
#include "logic/universe.h"  // PredicateId only — a header-only alias

namespace bddfc {

/// Which FactStore backend to use. See the file comment for the trade-off.
enum class StorageKind {
  kRow,
  kColumn,
};

/// Human-readable backend name ("row" / "column").
const char* ToString(StorageKind kind);

/// A view over atom indices in ascending order. Views either *borrow* a
/// contiguous range of one of the store's index vectors (row-store lookups,
/// per-predicate scans) or *own* a materialized result (column-store point
/// lookups merge several sorted runs into a private buffer).
///
/// Borrowed views are invalidated by any mutation of the store — the
/// underlying vectors may reallocate — so never hold one across AddAtom /
/// AddAtoms. In debug builds a borrowed view captures the store's
/// generation counter and every deref checks it, turning the silent
/// use-after-invalidation footgun into an immediate CHECK failure.
class IndexView {
 public:
  IndexView() = default;

  /// Borrowed view without a generation guard (tests, scratch buffers).
  IndexView(const std::uint32_t* begin, const std::uint32_t* end)
      : begin_(begin), end_(end) {}

  /// Borrowed view guarded by the issuing store's generation counter (the
  /// guard compiles away in NDEBUG builds). The counter is shared-owned so
  /// the check stays safe even for a view that outlives its store — the
  /// store's destructor poisons the counter, turning that use into a CHECK
  /// failure rather than a read of freed memory.
  IndexView(const std::uint32_t* begin, const std::uint32_t* end,
            const std::shared_ptr<const std::uint64_t>& generation)
      : begin_(begin), end_(end) {
#ifndef NDEBUG
    generation_ = generation;
    expected_generation_ = generation == nullptr ? 0 : *generation;
#else
    (void)generation;
#endif
  }

  /// Owning view over a materialized (ascending) index list.
  explicit IndexView(std::vector<std::uint32_t> owned)
      : owned_(std::move(owned)) {
    begin_ = owned_.data();
    end_ = owned_.data() + owned_.size();
  }

  IndexView(const IndexView& other) { *this = other; }
  IndexView& operator=(const IndexView& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    if (owned_.empty()) {
      begin_ = other.begin_;
      end_ = other.end_;
    } else {
      begin_ = owned_.data();
      end_ = owned_.data() + owned_.size();
    }
#ifndef NDEBUG
    generation_ = other.generation_;
    expected_generation_ = other.expected_generation_;
#endif
    return *this;
  }
  // std::vector's heap buffer survives a move, so borrowed pointers into
  // `owned_` stay valid; rebase anyway to keep the invariant obvious.
  IndexView(IndexView&& other) noexcept { *this = std::move(other); }
  IndexView& operator=(IndexView&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    if (owned_.empty()) {
      begin_ = other.begin_;
      end_ = other.end_;
    } else {
      begin_ = owned_.data();
      end_ = owned_.data() + owned_.size();
    }
#ifndef NDEBUG
    generation_ = other.generation_;
    expected_generation_ = other.expected_generation_;
#endif
    other.begin_ = other.end_ = nullptr;
    return *this;
  }

  const std::uint32_t* begin() const {
    CheckGeneration();
    return begin_;
  }
  const std::uint32_t* end() const {
    CheckGeneration();
    return end_;
  }
  std::size_t size() const {
    CheckGeneration();
    return static_cast<std::size_t>(end_ - begin_);
  }
  bool empty() const {
    CheckGeneration();
    return begin_ == end_;
  }
  std::uint32_t operator[](std::size_t i) const {
    CheckGeneration();
    return begin_[i];
  }

 private:
  void CheckGeneration() const {
#ifndef NDEBUG
    // A borrowed view whose store has since mutated points into memory the
    // index vectors may have vacated; fail fast instead of reading it.
    BDDFC_CHECK(generation_ == nullptr ||
                *generation_ == expected_generation_);
#endif
  }

  const std::uint32_t* begin_ = nullptr;
  const std::uint32_t* end_ = nullptr;
  std::vector<std::uint32_t> owned_;
#ifndef NDEBUG
  std::shared_ptr<const std::uint64_t> generation_;
  std::uint64_t expected_generation_ = 0;
#endif
};

/// A read-only view of one (predicate, position)'s *sorted runs*: the
/// first-class iteration API the segment engine's merge joins consume,
/// generalizing the point lookups above.
///
/// The view covers every atom of the predicate, as a sequence of `size()`
/// entries partitioned into `num_runs()` runs. Entry k exposes the term at
/// the viewed position (`term(k)`) and the atom's global index
/// (`global(k)`); within each run the (term, global) pairs are strictly
/// ascending, so equal-term entries form a contiguous span per run and
/// their globals ascend — a merge join can binary-search each run for a
/// probe term and early-exit a span once the globals leave its delta
/// range. The column store hands out its native run structure (at most
/// O(log n) runs, zero copies); the row store materializes one fully
/// sorted run on demand (correct, slower — see RowStore::SortedRuns).
///
/// Lifetime mirrors IndexView: a borrowed view (column store) is
/// invalidated by any mutation of the store, and in debug builds carries
/// the store's generation counter so a stale deref fails a CHECK instead
/// of reading vacated memory. A view backed by `keepalive` (row store)
/// owns a snapshot and stays valid across mutation — it just goes stale.
class SortedRunsView {
 public:
  SortedRunsView() = default;

  SortedRunsView(const Term* column, const std::uint32_t* rows,
                 const std::uint32_t* perm, const std::uint32_t* run_ends,
                 std::uint32_t size, std::uint32_t num_runs,
                 std::shared_ptr<const void> keepalive,
                 const std::shared_ptr<const std::uint64_t>& generation)
      : column_(column),
        rows_(rows),
        perm_(perm),
        run_ends_(run_ends),
        size_(size),
        num_runs_(num_runs),
        keepalive_(std::move(keepalive)) {
#ifndef NDEBUG
    generation_ = generation;
    expected_generation_ = generation == nullptr ? 0 : *generation;
#else
    (void)generation;
#endif
  }

  /// Total entries (== the number of atoms over the predicate).
  std::size_t size() const {
    CheckGeneration();
    return size_;
  }
  bool empty() const {
    CheckGeneration();
    return size_ == 0;
  }

  std::size_t num_runs() const {
    CheckGeneration();
    return num_runs_;
  }

  /// Entry range [run_begin(r), run_end(r)) of run r.
  std::uint32_t run_begin(std::size_t r) const {
    CheckGeneration();
    return r == 0 ? 0 : run_ends_[r - 1];
  }
  std::uint32_t run_end(std::size_t r) const {
    CheckGeneration();
    return run_ends_[r];
  }

  /// The viewed position's term of entry k.
  Term term(std::uint32_t k) const {
    CheckGeneration();
    return column_[perm_[k]];
  }

  /// Global atom index of entry k.
  std::uint32_t global(std::uint32_t k) const {
    CheckGeneration();
    return rows_[perm_[k]];
  }

 private:
  void CheckGeneration() const {
#ifndef NDEBUG
    BDDFC_CHECK(generation_ == nullptr ||
                *generation_ == expected_generation_);
#endif
  }

  const Term* column_ = nullptr;           // term per local row
  const std::uint32_t* rows_ = nullptr;    // global index per local row
  const std::uint32_t* perm_ = nullptr;    // local rows in run-sorted order
  const std::uint32_t* run_ends_ = nullptr;  // exclusive entry end per run
  std::uint32_t size_ = 0;
  std::uint32_t num_runs_ = 0;
  std::shared_ptr<const void> keepalive_;  // row-store snapshot owner
#ifndef NDEBUG
  std::shared_ptr<const std::uint64_t> generation_;
  std::uint64_t expected_generation_ = 0;
#endif
};

/// Abstract fact storage. Owns the atom sequence and active domain (shared
/// by every backend); subclasses own the index structures. All index query
/// results list atom indices in ascending order — the engines' determinism
/// guarantee (bit-identical chase runs on every backend) rests on it.
class FactStore {
 public:
  /// Creates an empty store of the given backend.
  static std::unique_ptr<FactStore> Create(StorageKind kind);

  virtual ~FactStore() {
#ifndef NDEBUG
    // Poison the shared counter: any further deref of a borrowed view
    // (store destroyed) becomes a CHECK failure.
    *generation_ = ~std::uint64_t{0};
#endif
  }

  virtual StorageKind kind() const = 0;

  /// Deep-copies the store, preserving atom order, index structures and
  /// (for the column store) the exact sorted-run layout, so the copy
  /// answers every contract query identically to the original — including
  /// run-structure diagnostics — without re-hashing or re-sealing anything.
  /// Much faster than replaying atoms() through AddAtoms on a fresh store;
  /// this is the epoch-snapshot path of the server (src/serve/snapshot.h).
  /// The copy is fully independent: mutating either store never affects
  /// the other (immutable cached artifacts may be shared). Thread-safe
  /// against concurrent const queries, like any other const operation.
  virtual std::unique_ptr<FactStore> Clone() const = 0;

  /// Adds an atom; returns true if it was not already present.
  virtual bool AddAtom(const Atom& atom) = 0;

  /// Bulk append over a contiguous range (no intermediate vector needed to
  /// batch a slice of an existing sequence). The batch size is known up
  /// front, so backends reserve their growth structures once (the column
  /// store also pre-grows its membership table); index construction is
  /// deferred for the whole batch — and beyond: indexes are built lazily
  /// on first query, so a store that is only ever scanned via atoms()
  /// never pays for them.
  virtual void AddAtoms(const Atom* begin, const Atom* end) {
    ReserveAtoms(static_cast<std::size_t>(end - begin));
    for (const Atom* a = begin; a != end; ++a) AddAtom(*a);
  }

  void AddAtoms(const std::vector<Atom>& atoms) {
    AddAtoms(atoms.data(), atoms.data() + atoms.size());
  }

  virtual bool Contains(const Atom& atom) const = 0;

  /// Position of `atom` in atoms(), or SIZE_MAX when absent.
  virtual std::size_t IndexOf(const Atom& atom) const = 0;

  /// All atoms in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  std::size_t size() const { return atoms_.size(); }

  /// Indices (into atoms()) of atoms over `pred`, ascending.
  virtual const std::vector<std::uint32_t>& AtomsWith(
      PredicateId pred) const = 0;

  /// Indices of atoms over `pred` whose argument `pos` equals `t`,
  /// ascending.
  virtual IndexView AtomsWith(PredicateId pred, int pos, Term t) const = 0;

  /// View of AtomsWith(pred) restricted to atom indices in [lo, hi).
  IndexView AtomsWithIn(PredicateId pred, std::uint32_t lo,
                        std::uint32_t hi) const;

  /// View of AtomsWith(pred, pos, t) restricted to atom indices in
  /// [lo, hi).
  virtual IndexView AtomsWithIn(PredicateId pred, int pos, Term t,
                                std::uint32_t lo,
                                std::uint32_t hi) const = 0;

  /// The sorted-run structure of (pred, pos): every atom of `pred` exactly
  /// once, partitioned into runs each strictly ascending by (term at pos,
  /// global atom index). Empty view when the predicate is absent or `pos`
  /// is beyond its arity. Thread-safe against concurrent queries (lazy
  /// structures are built behind the backends' double-checked locks), not
  /// against concurrent mutation — the usual FactStore thread model.
  virtual SortedRunsView SortedRuns(PredicateId pred, int pos) const = 0;

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<Term>& ActiveDomain() const { return adom_; }

  bool InActiveDomain(Term t) const {
    return adom_set_.find(t) != adom_set_.end();
  }

#ifndef NDEBUG
  /// Mutation counter backing the debug-build IndexView guard. Bumped by
  /// every successful insertion; poisoned by the destructor. Debug builds
  /// only, like the guard itself.
  std::uint64_t generation() const { return *generation_; }
#endif

 protected:
  /// Appends `atom` to the shared sequence + active domain and bumps the
  /// generation counter. Callers have already checked for duplicates.
  /// Returns the new atom's index.
  std::uint32_t RecordAtom(const Atom& atom) {
    const std::uint32_t idx = static_cast<std::uint32_t>(atoms_.size());
    atoms_.push_back(atom);
    for (Term t : atom.args()) {
      if (adom_set_.insert(t).second) adom_.push_back(t);
    }
#ifndef NDEBUG
    ++*generation_;
#endif
    return idx;
  }

  /// Reserves room for `extra` further atoms (bulk loads).
  void ReserveAtoms(std::size_t extra) {
    atoms_.reserve(atoms_.size() + extra);
  }

  /// Copies the base-class state (atom sequence + active domain) from
  /// `other` into this freshly created store. The generation counter stays
  /// this store's own — no views borrowed from `other` can ever observe
  /// the copy. Backends' Clone() implementations call this first.
  void CopyBaseFrom(const FactStore& other) {
    BDDFC_CHECK(atoms_.empty());
    atoms_ = other.atoms_;
    adom_ = other.adom_;
    adom_set_ = other.adom_set_;
  }

  /// Borrowed view with this store's generation guard attached (release
  /// builds hand out an unguarded view; the counter is never read there).
  IndexView BorrowView(const std::uint32_t* begin,
                       const std::uint32_t* end) const {
#ifndef NDEBUG
    return IndexView(begin, end, generation_);
#else
    return IndexView(begin, end);
#endif
  }

  /// Clamps a sorted index vector to the atom-index range [lo, hi),
  /// returning a guarded borrowed view.
  IndexView ClampView(const std::vector<std::uint32_t>& indices,
                      std::uint32_t lo, std::uint32_t hi) const;

  /// Borrowed sorted-runs view with this store's generation guard attached
  /// (release builds hand out an unguarded view, mirroring BorrowView).
  /// Snapshot-backed views should construct SortedRunsView directly with
  /// their keepalive and a null generation instead.
  SortedRunsView BorrowRuns(const Term* column, const std::uint32_t* rows,
                            const std::uint32_t* perm,
                            const std::uint32_t* run_ends, std::uint32_t size,
                            std::uint32_t num_runs) const {
#ifndef NDEBUG
    return SortedRunsView(column, rows, perm, run_ends, size, num_runs,
                          nullptr, generation_);
#else
    return SortedRunsView(column, rows, perm, run_ends, size, num_runs,
                          nullptr, nullptr);
#endif
  }

  static const std::vector<std::uint32_t> kEmptyIndex;

 private:
  std::vector<Atom> atoms_;
  std::vector<Term> adom_;
  std::unordered_set<Term> adom_set_;
#ifndef NDEBUG
  // Shared with borrowed IndexViews (debug guard) so the check survives
  // the store; the destructor poisons it.
  std::shared_ptr<std::uint64_t> generation_ =
      std::make_shared<std::uint64_t>(0);
#endif
};

}  // namespace bddfc

#endif  // BDDFC_STORAGE_FACT_STORE_H_
