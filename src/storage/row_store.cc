#include "storage/row_store.h"

#include <algorithm>
#include <memory>

#include "obs/obs.h"

namespace bddfc {

std::unique_ptr<FactStore> RowStore::Clone() const {
  auto copy = std::make_unique<RowStore>();
  copy->CopyBaseFrom(*this);
  copy->pos_ = pos_;
  {
    // Lock only to order against a concurrent first-query index build;
    // mutation is single-threaded per the FactStore thread model.
    std::lock_guard<std::mutex> lock(index_mutex_);
    if (indexes_built_.load(std::memory_order_acquire)) {
      copy->by_pred_ = by_pred_;
      copy->by_pos_ = by_pos_;
      copy->indexes_built_.store(true, std::memory_order_release);
    }
  }
  {
    // Published RunSnapshots are immutable; sharing them is safe and makes
    // the clone's first SortedRuns query free.
    std::lock_guard<std::mutex> lock(runs_mutex_);
    copy->runs_cache_ = runs_cache_;
  }
  return copy;
}

bool RowStore::AddAtom(const Atom& atom) {
  if (!pos_.emplace(atom, size()).second) return false;
  const std::uint32_t idx = RecordAtom(atom);
  // Deferred index construction: before the first index query nothing is
  // indexed (EnsureIndexes builds from atoms() wholesale); afterwards every
  // insertion appends incrementally. Acquire pairs with EnsureIndexes'
  // release so a build on a query thread is fully visible here even if the
  // caller provided no other happens-before edge.
  if (indexes_built_.load(std::memory_order_acquire)) IndexAtom(atom, idx);
  return true;
}

void RowStore::IndexAtom(const Atom& atom, std::uint32_t idx) const {
  by_pred_[atom.pred()].push_back(idx);
  for (std::size_t pos = 0; pos < atom.arity(); ++pos) {
    by_pos_[{PosIndexKey(atom.pred(), static_cast<int>(pos)), atom.arg(pos)}]
        .push_back(idx);
  }
}

void RowStore::EnsureIndexes() const {
  if (indexes_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexes_built_.load(std::memory_order_relaxed)) return;
  BDDFC_OBS_SPAN(index_span, "storage", "storage.index_build");
  const std::vector<Atom>& all = atoms();
  index_span.Arg("atoms", all.size());
  for (std::uint32_t idx = 0; idx < all.size(); ++idx) {
    IndexAtom(all[idx], idx);
  }
  // Stores have no per-run config, so their telemetry goes to the
  // process-global registry (pointer interned once).
  static obs::Counter* builds =
      obs::Metrics().GetCounter("storage.index_builds");
  builds->Add(1);
  indexes_built_.store(true, std::memory_order_release);
}

const std::vector<std::uint32_t>& RowStore::AtomsWith(
    PredicateId pred) const {
  EnsureIndexes();
  auto it = by_pred_.find(pred);
  return it == by_pred_.end() ? kEmptyIndex : it->second;
}

IndexView RowStore::AtomsWith(PredicateId pred, int pos, Term t) const {
  EnsureIndexes();
  auto it = by_pos_.find({PosIndexKey(pred, pos), t});
  if (it == by_pos_.end()) return IndexView();
  return BorrowView(it->second.data(), it->second.data() + it->second.size());
}

IndexView RowStore::AtomsWithIn(PredicateId pred, int pos, Term t,
                                std::uint32_t lo, std::uint32_t hi) const {
  EnsureIndexes();
  auto it = by_pos_.find({PosIndexKey(pred, pos), t});
  if (it == by_pos_.end()) return IndexView();
  return ClampView(it->second, lo, hi);
}

SortedRunsView RowStore::SortedRuns(PredicateId pred, int pos) const {
  EnsureIndexes();
  auto it = by_pred_.find(pred);
  if (it == by_pred_.end()) return SortedRunsView();
  const std::vector<std::uint32_t>& globals = it->second;
  const std::vector<Atom>& all = atoms();
  if (static_cast<std::size_t>(pos) >= all[globals.front()].arity()) {
    return SortedRunsView();
  }
  const std::uint64_t key = PosIndexKey(pred, pos);
  std::shared_ptr<const RunSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    std::shared_ptr<const RunSnapshot>& slot = runs_cache_[key];
    if (slot == nullptr || slot->size_stamp != globals.size()) {
      auto fresh = std::make_shared<RunSnapshot>();
      const std::uint32_t n = static_cast<std::uint32_t>(globals.size());
      fresh->size_stamp = n;
      fresh->column.reserve(n);
      fresh->rows.reserve(n);
      fresh->perm.reserve(n);
      for (std::uint32_t r = 0; r < n; ++r) {
        fresh->column.push_back(all[globals[r]].arg(pos));
        fresh->rows.push_back(globals[r]);
        fresh->perm.push_back(r);
      }
      const std::vector<Term>& column = fresh->column;
      std::sort(fresh->perm.begin(), fresh->perm.end(),
                [&column](std::uint32_t a, std::uint32_t b) {
                  if (column[a] != column[b]) return column[a] < column[b];
                  return a < b;
                });
      fresh->run_end = n;
      slot = std::move(fresh);
    }
    snapshot = slot;
  }
  return SortedRunsView(snapshot->column.data(), snapshot->rows.data(),
                        snapshot->perm.data(), &snapshot->run_end,
                        snapshot->run_end, 1, snapshot, nullptr);
}

}  // namespace bddfc
