// chase_cli: run the chase and answer queries on file-based workloads,
// through the bddfc::Reasoner facade (src/api/reasoner.h).
//
//   chase_cli [flags] RULES_FILE INSTANCE_FILE
//
// Flags:
//   --variant=oblivious|semi|restricted   trigger discipline (default
//                                         oblivious)
//   --engine=trigger|segment   chase execution engine (default trigger).
//                      trigger enumerates body homomorphisms one at a
//                      time; segment compiles each rule into merge-join
//                      plans over the storage's sorted runs and derives
//                      whole candidate segments per step. Both reach the
//                      same saturation — the chase is bit-identical
//                      (atoms, trigger order, nulls, provenance) across
//                      engines.
//   --storage=row|column   fact-storage backend for the base instance and
//                      the materialization (default row). Both backends
//                      produce bit-identical chases and answers; column
//                      (VLog-style columnar tables) uses O(atoms) index
//                      memory and is built for large instances.
//   --threads=N        execution threads; 1 = serial, 0 = all hardware
//                      threads (default 1). Answers and the chase are
//                      identical at any thread count.
//   --schedule=flat|stratified   rule scheduling discipline (default
//                      flat). flat searches every rule each step and is
//                      bit-identical to the historical chase; stratified
//                      runs the positive-reliance strata in topological
//                      order with empty-delta rule skipping, producing
//                      the same atom set up to null renaming (step
//                      boundaries and null numbering may differ).
//   --max-steps=N      chase step budget (default 16)
//   --max-atoms=N      atom budget (default 200000)
//   --query=FILE       answer the conjunctive queries in FILE (one
//                      '?(x,..) :- ...' per line) through the Reasoner
//   --strategy=materialize|rewrite|auto   answer strategy for --query
//                      (default auto: rewrite when the rewriting
//                      saturates, materialize otherwise)
//   --json             machine-readable output: one JSON object with the
//                      run configuration, per-step chase stats, a flat
//                      "metrics" object (the obs registry snapshot), and
//                      per-query answers (suppresses the human output)
//   --trace=FILE       record a Chrome/Perfetto trace of the run (spans
//                      from the chase, scheduler, storage, and reasoner
//                      layers) and write trace-event JSON to FILE; open
//                      it in https://ui.perfetto.dev or chrome://tracing
//   --progress[=MS]    print a heartbeat line to stderr every MS ms
//                      (default 1000) with step/atom/trigger/RSS
//                      progress; doubles as a divergence watchdog that
//                      warns when the run nears its atom budget
//   --quiet            suppress the per-step table
//
// File formats are those of src/logic/parser.h: one rule per line
// (`E(x,y), E(y,z) -> E(x,z)`, optional `[label]` prefix), '.'-separated
// facts over constants (`E(a,b). E(b,c).`), and one CQ per line
// (`?(s) :- Advises(p,s)`; `? :- E(x,x)` is Boolean). `#` and `%` start
// comments. See examples/university.{rules,facts,queries} for a runnable
// triple.
//
// Without --query the tool materializes and prints the per-step table
// exactly as before; with --query, only the strategies that need the chase
// run it (kRewrite answers straight off the database). Query answers are
// certain answers (all-constant tuples), printed in the Reasoner's
// deterministic first-derivation order.
//
// SIGINT (Ctrl-C) cancels the chase cooperatively: the engine stops at the
// next firing boundary, partial results (and a partial --trace file) are
// still written, and the process exits with status 130.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "analysis/program_analysis.h"
#include "analysis/reliance.h"
#include "api/reasoner.h"
#include "base/json.h"
#include "chase/rule_scheduler.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/universe.h"
#include "obs/obs.h"
#include "obs/progress.h"

namespace {

using bddfc::AnswerStrategy;
using bddfc::AnswerTuple;
using bddfc::ChaseEngine;
using bddfc::ChaseOptions;
using bddfc::ChaseVariant;
using bddfc::JsonEscape;
using bddfc::ReasonerOptions;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--variant=oblivious|semi|restricted]\n"
      "          [--engine=trigger|segment] [--threads=N]\n"
      "          [--schedule=flat|stratified]\n"
      "          [--storage=row|column] [--max-steps=N] [--max-atoms=N]\n"
      "          [--query=FILE] [--strategy=materialize|rewrite|auto]\n"
      "          [--trace=FILE] [--progress[=MS]] [--analyze]\n"
      "          [--json] [--quiet] RULES_FILE INSTANCE_FILE\n",
      argv0);
  return 2;
}

// Parses a non-negative integer flag value; rejects junk and negatives.
bool ParseCount(std::string_view value, const char* flag, std::size_t* out) {
  const std::string text(value);
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "chase_cli: %s needs a non-negative integer, got "
                 "\"%s\"\n",
                 flag, text.c_str());
    return false;
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Accepts "--name=VALUE"; returns the value via `out`.
bool FlagValue(std::string_view arg, std::string_view name,
               std::string_view* out) {
  if (arg.substr(0, name.size()) != name) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *out = arg.substr(1);
  return true;
}

const char* VariantName(ChaseVariant v) {
  switch (v) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The "analysis" object shared by --analyze and --json: the full class
// report plus the lint report and the kAuto strategy decision.
bddfc::JsonValue AnalysisJson(const bddfc::ProgramReport& report,
                              const bddfc::LintReport& lint,
                              const char* strategy_decision) {
  bddfc::JsonValue v = report.ToJson();
  v.Set("lint", lint.ToJson());
  v.Set("strategy_decision", bddfc::JsonValue::Str(strategy_decision));
  return v;
}

// One prepared-and-executed query, ready for reporting.
struct QueryReport {
  std::string text;        // the query as parsed (printer rendering)
  const char* strategy;    // resolved strategy name
  bool complete = false;
  std::size_t disjuncts = 0;  // disjuncts of the evaluated UCQ
  double prepare_ms = 0;
  double answer_ms = 0;
  std::vector<AnswerTuple> answers;
};

}  // namespace

int main(int argc, char** argv) {
  ChaseOptions chase_options;
  AnswerStrategy strategy = AnswerStrategy::kAuto;
  bddfc::StorageKind storage = bddfc::StorageKind::kRow;
  bool quiet = false;
  bool json = false;
  bool analyze = false;
  std::string rules_path, instance_path, query_path, trace_path;
  std::size_t progress_ms = 0;  // 0 = no heartbeat
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view value;
    if (FlagValue(arg, "--variant", &value)) {
      if (value == "oblivious") {
        chase_options.variant = ChaseVariant::kOblivious;
      } else if (value == "semi" || value == "semi-oblivious" ||
                 value == "skolem") {
        chase_options.variant = ChaseVariant::kSemiOblivious;
      } else if (value == "restricted" || value == "standard") {
        chase_options.variant = ChaseVariant::kRestricted;
      } else {
        std::fprintf(stderr, "chase_cli: unknown variant \"%.*s\"\n",
                     static_cast<int>(value.size()), value.data());
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--engine", &value)) {
      if (value == "trigger") {
        chase_options.exec.engine = ChaseEngine::kTrigger;
      } else if (value == "segment") {
        chase_options.exec.engine = ChaseEngine::kSegment;
      } else {
        std::fprintf(stderr, "chase_cli: unknown engine \"%.*s\"\n",
                     static_cast<int>(value.size()), value.data());
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--schedule", &value)) {
      if (value == "flat") {
        chase_options.exec.schedule = bddfc::ChaseSchedule::kFlat;
      } else if (value == "stratified") {
        chase_options.exec.schedule = bddfc::ChaseSchedule::kStratified;
      } else {
        std::fprintf(stderr, "chase_cli: unknown schedule \"%.*s\"\n",
                     static_cast<int>(value.size()), value.data());
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--storage", &value)) {
      if (value == "row") {
        storage = bddfc::StorageKind::kRow;
      } else if (value == "column" || value == "columnar") {
        storage = bddfc::StorageKind::kColumn;
      } else {
        std::fprintf(stderr, "chase_cli: unknown storage backend \"%.*s\"\n",
                     static_cast<int>(value.size()), value.data());
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--strategy", &value)) {
      if (value == "materialize" || value == "chase") {
        strategy = AnswerStrategy::kMaterialize;
      } else if (value == "rewrite" || value == "rewriting") {
        strategy = AnswerStrategy::kRewrite;
      } else if (value == "auto") {
        strategy = AnswerStrategy::kAuto;
      } else {
        std::fprintf(stderr, "chase_cli: unknown strategy \"%.*s\"\n",
                     static_cast<int>(value.size()), value.data());
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--threads", &value)) {
      if (!ParseCount(value, "--threads", &chase_options.exec.num_threads)) {
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--max-steps", &value)) {
      if (!ParseCount(value, "--max-steps", &chase_options.exec.max_steps)) {
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--max-atoms", &value)) {
      if (!ParseCount(value, "--max-atoms", &chase_options.exec.max_atoms)) {
        return Usage(argv[0]);
      }
    } else if (FlagValue(arg, "--query", &value)) {
      query_path = std::string(value);
    } else if (FlagValue(arg, "--trace", &value)) {
      trace_path = std::string(value);
      if (trace_path.empty()) {
        std::fprintf(stderr, "chase_cli: --trace needs a file path\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--progress") {
      progress_ms = 1000;
    } else if (FlagValue(arg, "--progress", &value)) {
      if (!ParseCount(value, "--progress", &progress_ms)) {
        return Usage(argv[0]);
      }
      if (progress_ms == 0) progress_ms = 1000;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "chase_cli: unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    } else if (rules_path.empty()) {
      rules_path = std::string(arg);
    } else if (instance_path.empty()) {
      instance_path = std::string(arg);
    } else {
      return Usage(argv[0]);
    }
  }
  if (rules_path.empty() || instance_path.empty()) return Usage(argv[0]);

  std::string rules_text, instance_text, query_text;
  if (!ReadFile(rules_path, &rules_text)) {
    std::fprintf(stderr, "chase_cli: cannot read %s\n", rules_path.c_str());
    return 2;
  }
  if (!ReadFile(instance_path, &instance_text)) {
    std::fprintf(stderr, "chase_cli: cannot read %s\n",
                 instance_path.c_str());
    return 2;
  }
  if (!query_path.empty() && !ReadFile(query_path, &query_text)) {
    std::fprintf(stderr, "chase_cli: cannot read %s\n", query_path.c_str());
    return 2;
  }

  bddfc::Universe universe;
  bddfc::ParseError error;
  auto rules = bddfc::ParseRuleSet(&universe, rules_text, &error);
  if (!rules) {
    std::fprintf(stderr, "chase_cli: %s:%d:%d: %s\n", rules_path.c_str(),
                 error.line, error.column, error.message.c_str());
    return 2;
  }
  auto database = bddfc::ParseInstance(&universe, instance_text, &error);
  if (!database) {
    std::fprintf(stderr, "chase_cli: %s:%d:%d: %s\n", instance_path.c_str(),
                 error.line, error.column, error.message.c_str());
    return 2;
  }
  // Queries are parsed after the instance, so identifiers naming database
  // constants resolve to those constants.
  std::vector<bddfc::Cq> queries;
  if (!query_path.empty()) {
    auto parsed = bddfc::ParseCqList(&universe, query_text, &error);
    if (!parsed) {
      std::fprintf(stderr, "chase_cli: %s:%d:%d: %s\n", query_path.c_str(),
                   error.line, error.column, error.message.c_str());
      return 2;
    }
    queries = std::move(*parsed);
  }

  // --analyze: report the static analysis and lint of the program, then
  // exit without running any chase or query.
  if (analyze) {
    const bddfc::ProgramReport report =
        bddfc::AnalyzeProgram(*rules, universe);
    const bddfc::LintReport lint =
        bddfc::LintProgram(*rules, &universe, &*database, &report);
    if (json) {
      std::printf("{\n");
      std::printf("  \"rules_file\": \"%s\",\n",
                  JsonEscape(rules_path).c_str());
      std::printf("  \"instance_file\": \"%s\",\n",
                  JsonEscape(instance_path).c_str());
      std::printf("  \"analysis\": %s\n}\n",
                  AnalysisJson(report, lint, "none").Dump().c_str());
    } else {
      std::printf("rules:    %s (%zu rules)\n", rules_path.c_str(),
                  rules->size());
      std::printf("classes:  %s\n", report.ClassList().c_str());
      std::printf("fus: %s (%s)\n", report.fus ? "yes" : "no",
                  report.fus_reason.c_str());
      std::printf("fes: %s (%s)\n", report.fes ? "yes" : "no",
                  report.fes_reason.c_str());
      std::printf("certificate: %s\n", bddfc::ToString(report.certificate));
      for (const bddfc::LintDiagnostic& d : lint.diagnostics) {
        std::printf("%s: [%s] %s\n", bddfc::ToString(d.severity),
                    d.id.c_str(), d.message.c_str());
      }
      std::printf("%zu error(s), %zu warning(s), %zu note(s)\n",
                  lint.errors, lint.warnings, lint.notes);
    }
    return 0;
  }

  // The trace session opens before the Reasoner is built so the base
  // instance's storage spans (index builds, run seals) are captured too.
  if (!trace_path.empty()) bddfc::obs::TraceSession::Global().Start();
  // SIGINT requests cooperative cancellation (the shared tool discipline,
  // obs::InstallSigintCancel), observed by the chase at the next firing
  // boundary.
  bddfc::obs::InstallSigintCancel();

  // Everything execution-related travels through the one ExecutionConfig.
  chase_options.exec.storage = storage;
  ReasonerOptions reasoner_options;
  reasoner_options.strategy = strategy;
  reasoner_options.chase = chase_options;
  bddfc::Reasoner reasoner(*database, std::move(*rules), reasoner_options);

  // The heartbeat samples the process-global registry (the Reasoner uses
  // it when no explicit registry is configured) from its own thread.
  std::unique_ptr<bddfc::obs::ProgressMonitor> progress;
  if (progress_ms > 0) {
    bddfc::obs::ProgressMonitor::Options monitor_options;
    monitor_options.interval_ms = static_cast<int>(progress_ms);
    monitor_options.watchdog_max_atoms = chase_options.exec.max_atoms;
    progress = std::make_unique<bddfc::obs::ProgressMonitor>(
        nullptr, monitor_options);
  }

  const auto total_start = std::chrono::steady_clock::now();
  // Without queries the tool's job is the materialization itself; with
  // queries the chase runs only if some query's resolved strategy needs it.
  if (queries.empty()) reasoner.Materialize();

  std::vector<QueryReport> reports;
  reports.reserve(queries.size());
  for (const bddfc::Cq& q : queries) {
    if (bddfc::obs::CancelRequested()) break;
    QueryReport report;
    report.text = bddfc::ToString(universe, q);
    const auto prepare_start = std::chrono::steady_clock::now();
    bddfc::PreparedQuery prepared = reasoner.Prepare(q);
    report.prepare_ms = MsSince(prepare_start);
    const auto answer_start = std::chrono::steady_clock::now();
    report.answers = prepared.All();
    report.answer_ms = MsSince(answer_start);
    report.strategy = bddfc::ToString(prepared.strategy());
    report.complete = prepared.complete();
    report.disjuncts = prepared.evaluated().size();
    reports.push_back(std::move(report));
  }
  const double total_ms = MsSince(total_start);
  const bool interrupted = bddfc::obs::CancelRequested();

  if (progress != nullptr) progress->Stop();
  // Stop + flush the trace before reporting: a partial trace from an
  // interrupted run is exactly what the flag is for.
  if (!trace_path.empty()) {
    bddfc::obs::TraceSession::Global().Stop();
    if (!bddfc::obs::TraceSession::Global().WriteChromeJson(trace_path)) {
      std::fprintf(stderr, "chase_cli: cannot write trace to %s\n",
                   trace_path.c_str());
      return 2;
    }
    if (!json) {
      std::fprintf(stderr, "chase_cli: wrote %zu trace events to %s\n",
                   bddfc::obs::TraceSession::Global().EventCount(),
                   trace_path.c_str());
    }
  }
  if (interrupted) {
    std::fprintf(stderr,
                 "chase_cli: interrupted — partial results follow\n");
  }
  const bddfc::ReasonerStats& stats = reasoner.stats();
  // The Reasoner constructor freezes the fully-resolved execution config
  // (engine, schedule, storage, thread count) into its options; report
  // those, not the raw flag values.
  const bddfc::ExecutionConfig& resolved_exec = reasoner.options().chase.exec;
  const bddfc::StorageKind resolved_storage =
      resolved_exec.storage.value_or(storage);
  const bddfc::ObliviousChase* chase = reasoner.materialization();
  const bddfc::RuleSchedulerStats* sched_stats =
      chase != nullptr ? &chase->scheduler().stats() : nullptr;

  if (json) {
    std::printf("{\n");
    std::printf("  \"rules_file\": \"%s\",\n",
                JsonEscape(rules_path).c_str());
    std::printf("  \"instance_file\": \"%s\",\n",
                JsonEscape(instance_path).c_str());
    if (!query_path.empty()) {
      std::printf("  \"query_file\": \"%s\",\n",
                  JsonEscape(query_path).c_str());
    }
    std::printf("  \"variant\": \"%s\",\n",
                VariantName(chase_options.variant));
    std::printf("  \"engine\": \"%s\",\n",
                bddfc::ToString(resolved_exec.engine));
    std::printf("  \"schedule\": \"%s\",\n",
                bddfc::ToString(resolved_exec.schedule));
    std::printf("  \"strategy\": \"%s\",\n", bddfc::ToString(strategy));
    std::printf("  \"storage\": \"%s\",\n", bddfc::ToString(resolved_storage));
    std::printf("  \"threads\": %zu,\n", reasoner.num_threads());
    std::printf("  \"max_steps\": %zu,\n", chase_options.exec.max_steps);
    std::printf("  \"max_atoms\": %zu,\n", chase_options.exec.max_atoms);
    std::printf("  \"database_atoms\": %zu,\n", reasoner.database().size());
    std::printf("  \"rules\": %zu,\n", reasoner.rules().size());
    std::printf("  \"steps\": [");
    for (std::size_t i = 0; i < stats.chase_steps.size(); ++i) {
      const bddfc::ChaseStepStats& s = stats.chase_steps[i];
      std::printf("%s\n    {\"step\": %zu, \"atoms_added\": %zu, "
                  "\"atoms_total\": %zu, \"wall_ms\": %.3f, "
                  "\"incremental\": %s}",
                  i == 0 ? "" : ",", s.step, s.atoms_added, s.atoms_total,
                  s.wall_ms, s.incremental ? "true" : "false");
    }
    std::printf("%s],\n", stats.chase_steps.empty() ? "" : "\n  ");
    std::printf("  \"materialized\": %s,\n",
                stats.materialized ? "true" : "false");
    std::printf("  \"saturated\": %s,\n",
                stats.chase_saturated ? "true" : "false");
    std::printf("  \"hit_bounds\": %s,\n",
                stats.chase_hit_bounds ? "true" : "false");
    std::printf("  \"atoms\": %zu,\n", stats.chase_atoms);
    std::printf("  \"triggers_fired\": %zu,\n", stats.triggers_fired);
    std::printf("  \"num_strata\": %zu,\n", stats.num_strata);
    std::printf("  \"rules_skipped\": %zu,\n", stats.rules_skipped);
    std::printf("  \"certificate\": \"%s\",\n",
                bddfc::ToString(reasoner.certificate()));
    {
      const bddfc::ProgramReport& report = reasoner.analysis();
      const bddfc::LintReport lint = bddfc::LintProgram(
          reasoner.rules(), &universe, &reasoner.database(), &report);
      std::printf("  \"analysis\": %s,\n",
                  AnalysisJson(report, lint,
                               bddfc::ToString(stats.last_decision))
                      .Dump()
                      .c_str());
    }
    std::printf("  \"rules_detail\": [");
    if (sched_stats != nullptr) {
      for (std::size_t r = 0; r < reasoner.rules().size(); ++r) {
        const std::string& label = reasoner.rules()[r].label();
        std::printf("%s\n    {\"rule\": %zu, \"label\": \"%s\", "
                    "\"fired\": %zu, \"skipped\": %zu}",
                    r == 0 ? "" : ",", r, JsonEscape(label).c_str(),
                    sched_stats->fired[r], sched_stats->skipped[r]);
      }
    }
    std::printf("%s],\n",
                sched_stats != nullptr && !reasoner.rules().empty() ? "\n  "
                                                                    : "");
    std::printf("  \"nulls\": %zu,\n", universe.num_nulls());
    std::printf("  \"wall_ms\": %.3f,\n", total_ms);
    std::printf("  \"interrupted\": %s,\n", interrupted ? "true" : "false");
    // The flat obs registry snapshot: every layer's counters/gauges/
    // histograms under dotted names (chase.*, sched.*, storage.*,
    // reasoner.*), the machine-readable twin of --trace.
    std::printf("  \"metrics\": %s,\n",
                bddfc::obs::Metrics().ToJson().c_str());
    std::printf("  \"queries\": [");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const QueryReport& r = reports[i];
      std::printf("%s\n    {\"query\": \"%s\", \"strategy\": \"%s\", "
                  "\"complete\": %s, \"disjuncts\": %zu, "
                  "\"prepare_ms\": %.3f, \"answer_ms\": %.3f,\n"
                  "     \"answers\": [",
                  i == 0 ? "" : ",", JsonEscape(r.text).c_str(), r.strategy,
                  r.complete ? "true" : "false", r.disjuncts, r.prepare_ms,
                  r.answer_ms);
      for (std::size_t a = 0; a < r.answers.size(); ++a) {
        std::printf("%s[", a == 0 ? "" : ", ");
        for (std::size_t t = 0; t < r.answers[a].size(); ++t) {
          std::printf("%s\"%s\"", t == 0 ? "" : ", ",
                      JsonEscape(universe.TermName(r.answers[a][t])).c_str());
        }
        std::printf("]");
      }
      std::printf("]}");
    }
    std::printf("%s]\n", reports.empty() ? "" : "\n  ");
    std::printf("}\n");
    return interrupted ? bddfc::obs::kExitInterrupted : 0;
  }

  std::printf("rules:    %s (%zu rules)\n", rules_path.c_str(),
              reasoner.rules().size());
  std::printf("instance: %s (%zu atoms incl. the implicit top fact)\n",
              instance_path.c_str(), reasoner.database().size());
  std::printf("variant:  %s, engine: %s, schedule: %s, storage: %s, "
              "threads: %zu, max steps: %zu, max atoms: %zu\n",
              VariantName(chase_options.variant),
              bddfc::ToString(resolved_exec.engine),
              bddfc::ToString(resolved_exec.schedule),
              bddfc::ToString(resolved_storage), reasoner.num_threads(),
              resolved_exec.max_steps, resolved_exec.max_atoms);

  if (stats.materialized) {
    if (!quiet) {
      std::printf("\n  step      +atoms       atoms        ms\n");
      for (const bddfc::ChaseStepStats& s : stats.chase_steps) {
        std::printf("  %4zu  %10zu  %10zu  %8.2f\n", s.step, s.atoms_added,
                    s.atoms_total, s.wall_ms);
      }
    }
    std::printf("\n");
    if (stats.chase_saturated) {
      std::printf("saturated after %zu steps: the result is the full chase "
                  "(a finite universal model).\n",
                  stats.chase_steps.size());
    } else if (stats.chase_hit_bounds) {
      const bddfc::ObliviousChase* chase = reasoner.materialization();
      std::printf("stopped by the atom budget after %zu steps%s.\n",
                  stats.chase_steps.size(),
                  chase != nullptr && chase->LastStepTruncated()
                      ? " (the last step was cut short mid-firing)"
                      : "");
    } else {
      std::printf("stopped at the step budget (%zu steps); the chase may "
                  "continue.\n",
                  stats.chase_steps.size());
    }
    std::printf("atoms: %zu, triggers fired: %zu, labeled nulls: %zu, "
                "materialize: %.2f ms\n",
                stats.chase_atoms, stats.triggers_fired,
                universe.num_nulls(), stats.materialize_ms);
    std::printf("strata: %zu, rule searches skipped: %zu, "
                "termination certificate: %s\n",
                stats.num_strata, stats.rules_skipped,
                bddfc::ToString(reasoner.certificate()));
  } else if (!queries.empty()) {
    std::printf("\nno materialization needed: every query answered by "
                "rewriting.\n");
  }

  for (const QueryReport& r : reports) {
    std::printf("\nquery: %s\n", r.text.c_str());
    std::printf("  strategy: %s (%zu disjunct%s, %s), prepared in %.2f ms\n",
                r.strategy, r.disjuncts, r.disjuncts == 1 ? "" : "s",
                r.complete ? "complete" : "incomplete: bounds hit",
                r.prepare_ms);
    std::printf("  %zu answer%s in %.2f ms%s\n", r.answers.size(),
                r.answers.size() == 1 ? "" : "s", r.answer_ms,
                r.answers.empty() ? "" : ":");
    for (const AnswerTuple& tuple : r.answers) {
      std::string line = "    (";
      for (std::size_t t = 0; t < tuple.size(); ++t) {
        if (t > 0) line += ", ";
        line += universe.TermName(tuple[t]);
      }
      line += ")";
      std::printf("%s\n", line.c_str());
    }
  }
  std::printf("\nwall: %.2f ms\n", total_ms);
  return interrupted ? bddfc::obs::kExitInterrupted : 0;
}
